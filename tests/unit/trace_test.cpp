// Tests for the flight-recorder tracing subsystem (src/trace):
// ring-buffer semantics, category filtering, Chrome JSON export validity,
// determinism of traces across identical runs, and the causal chains the
// instrumented layers record (DSM faults, futex wait -> wake).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "testutil.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"

namespace dqemu {
namespace {

using trace::Cat;
using trace::Kind;
using trace::Record;
using trace::Tracer;

// Instrumentation sites vanish when built with -DDQEMU_ENABLE_TRACING=OFF;
// tests that rely on records from a cluster run are skipped in that build.
#if DQEMU_TRACING_ENABLED
#define SKIP_WITHOUT_TRACING() (void)0
#else
#define SKIP_WITHOUT_TRACING() \
  GTEST_SKIP() << "built with DQEMU_ENABLE_TRACING=OFF"
#endif

Record make_record(std::uint64_t seq) {
  Record r;
  r.time = seq * 100;
  r.name = "test.event";
  r.kind = Kind::kInstant;
  r.cat = Cat::kSim;
  r.a = seq;
  return r;
}

// ---------------------------------------------------------------------------
// Tracer core
// ---------------------------------------------------------------------------

TEST(Tracer, RingKeepsNewestOnOverflow) {
  trace::TraceConfig config;
  config.capacity = 8;
  Tracer tracer(config);
  for (std::uint64_t i = 0; i < 20; ++i) tracer.record(make_record(i));

  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const std::vector<Record> records = tracer.records();
  ASSERT_EQ(records.size(), 8u);
  // Flight-recorder semantics: the oldest survivors are 12..19, in order.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(records[i].a, 12 + i);
  }
}

TEST(Tracer, RecordsBelowCapacityKeepInsertionOrder) {
  trace::TraceConfig config;
  config.capacity = 64;
  Tracer tracer(config);
  for (std::uint64_t i = 0; i < 10; ++i) tracer.record(make_record(i));
  EXPECT_EQ(tracer.size(), 10u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::vector<Record> records = tracer.records();
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(records[i].a, i);
}

TEST(Tracer, CategoryMaskGatesWants) {
  trace::TraceConfig config;
  config.categories = trace::cat_bit(Cat::kNet) | trace::cat_bit(Cat::kDsm);
  Tracer tracer(config);
#if DQEMU_TRACING_ENABLED
  EXPECT_TRUE(trace::wants(&tracer, Cat::kNet));
  EXPECT_TRUE(trace::wants(&tracer, Cat::kDsm));
#endif
  EXPECT_FALSE(trace::wants(&tracer, Cat::kSim));
  EXPECT_FALSE(trace::wants(&tracer, Cat::kCounter));
  // Null tracer: every site is off.
  EXPECT_FALSE(trace::wants(nullptr, Cat::kNet));
}

TEST(Tracer, DefaultCategoriesExcludeQueueFirehose) {
  Tracer tracer;
  EXPECT_TRUE(tracer.wants(Cat::kSim));
  EXPECT_TRUE(tracer.wants(Cat::kCounter));
  EXPECT_FALSE(tracer.wants(Cat::kQueue));
}

TEST(Tracer, FlowIdsAreUniqueAndNonZero) {
  Tracer tracer;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t flow = tracer.new_flow();
    EXPECT_NE(flow, 0u);
    EXPECT_TRUE(seen.insert(flow).second);
  }
}

TEST(Tracer, InternReturnsStablePointers) {
  Tracer tracer;
  const char* a = tracer.intern("dsm.read_requests");
  const char* b = tracer.intern("dsm.read_requests");
  const char* c = tracer.intern("dsm.write_requests");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "dsm.read_requests");
}

TEST(Tracer, ParseCategories) {
  EXPECT_EQ(trace::parse_categories("all"), trace::kAllCategories);
  EXPECT_EQ(trace::parse_categories("default"), trace::kDefaultCategories);
  EXPECT_EQ(trace::parse_categories("net"), trace::cat_bit(Cat::kNet));
  EXPECT_EQ(trace::parse_categories("net,dsm,sys"),
            trace::cat_bit(Cat::kNet) | trace::cat_bit(Cat::kDsm) |
                trace::cat_bit(Cat::kSys));
  EXPECT_FALSE(trace::parse_categories("bogus").has_value());
  EXPECT_FALSE(trace::parse_categories("net,bogus").has_value());
}

// ---------------------------------------------------------------------------
// A minimal JSON parser: enough to prove the export is well-formed without
// pulling in a dependency. Parses the full document, rejects any syntax
// error.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t at = haystack.find(needle); at != std::string::npos;
       at = haystack.find(needle, at + 1)) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Instrumented cluster runs
// ---------------------------------------------------------------------------

struct TracedRun {
  // The tracer owns interned record names, so it must outlive `records`.
  std::unique_ptr<Tracer> tracer;
  core::Cluster::RunResult result;
  std::vector<Record> records;
  std::string json;
  std::string text;
};

TracedRun run_traced(const ClusterConfig& config, const isa::Program& program,
                     trace::TraceConfig trace_config = {}) {
  TracedRun out;
  out.tracer = std::make_unique<Tracer>(trace_config);
  core::Cluster cluster(config, out.tracer.get());
  const Status load = cluster.load(program);
  EXPECT_TRUE(load.is_ok()) << load.to_string();
  auto run = cluster.run();
  EXPECT_TRUE(run.is_ok()) << run.status().to_string();
  if (run.is_ok()) out.result = run.take();
  out.records = out.tracer->records();
  out.json = trace::to_chrome_json(*out.tracer);
  out.text = trace::to_text(*out.tracer);
  return out;
}

TEST(TraceExport, ChromeJsonIsValidAndCoversAllLayers) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::mutex_stress(4, 20, /*global=*/true).take();
  const TracedRun run = run_traced(test::test_config(2), program);
  ASSERT_FALSE(run.records.empty());

  JsonChecker checker(run.json);
  EXPECT_TRUE(checker.valid()) << run.json.substr(0, 400);

  // Spans/instants from every instrumented layer, plus counter timelines.
  EXPECT_GT(count_occurrences(run.json, "\"name\":\"sim.slice\""), 0u);
  EXPECT_GT(count_occurrences(run.json, "\"cat\":\"net\""), 0u);
  EXPECT_GT(count_occurrences(run.json, "\"name\":\"dsm.fault\""), 0u);
  EXPECT_GT(count_occurrences(run.json, "\"name\":\"sys.delegate\""), 0u);
  EXPECT_GT(count_occurrences(run.json, "\"cat\":\"counter\""), 0u);
  EXPECT_GT(count_occurrences(run.json, "\"name\":\"time.execute\""), 0u);
  // Perfetto labels: per-node processes and per-core lanes.
  EXPECT_GT(count_occurrences(run.json, "\"name\":\"process_name\""), 0u);
  EXPECT_GT(count_occurrences(run.json, "\"name\":\"core 0\""), 0u);
}

TEST(TraceExport, SpanBeginEndBalancePerTrack) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::pi_taylor(2, 2, 50).take();
  const TracedRun run = run_traced(test::test_config(2), program);

  // Sync spans (B/E) must balance on every (node, track) lane or the
  // Chrome viewer renders garbage.
  std::map<std::pair<NodeId, std::uint16_t>, std::int64_t> depth;
  for (const Record& r : run.records) {
    if (r.kind == Kind::kSpanBegin) ++depth[{r.node, r.track}];
    if (r.kind == Kind::kSpanEnd) {
      auto& d = depth[{r.node, r.track}];
      --d;
      EXPECT_GE(d, 0) << "span end without begin on node " << unsigned(r.node)
                      << " track " << r.track;
    }
  }
  for (const auto& [lane, d] : depth) EXPECT_EQ(d, 0);
}

TEST(TraceExport, TimestampsAreMonotonic) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::pi_taylor(2, 2, 50).take();
  const TracedRun run = run_traced(test::test_config(2), program);
  ASSERT_FALSE(run.records.empty());
  TimePs last = 0;
  for (const Record& r : run.records) {
    EXPECT_GE(r.time, last);
    last = r.time;
  }
}

TEST(TraceDeterminism, IdenticalRunsProduceIdenticalTraces) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::mutex_stress(4, 15, /*global=*/true).take();
  const TracedRun a = run_traced(test::test_config(2), program);
  const TracedRun b = run_traced(test::test_config(2), program);
  EXPECT_EQ(a.result.sim_time, b.result.sim_time);
  EXPECT_EQ(a.text, b.text);  // byte-identical exports
  EXPECT_EQ(a.json, b.json);
}

TEST(TraceDeterminism, TracingDoesNotPerturbVirtualTime) {
  const auto program = workloads::mutex_stress(4, 15, /*global=*/true).take();
  // Off / default / full-firehose tracing: same simulation.
  const auto off = test::run_program(test::test_config(2), program);
  ASSERT_TRUE(off.ok) << off.error;
  const TracedRun on = run_traced(test::test_config(2), program);
  trace::TraceConfig everything;
  everything.categories = trace::kAllCategories;
  const TracedRun full = run_traced(test::test_config(2), program, everything);
  EXPECT_EQ(off.result.sim_time, on.result.sim_time);
  EXPECT_EQ(off.result.sim_time, full.result.sim_time);
  EXPECT_EQ(off.result.guest_insns, on.result.guest_insns);
}

TEST(TraceFlows, RemotePageFaultHasBeginAndEnd) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::mutex_stress(4, 10, /*global=*/true).take();
  const TracedRun run = run_traced(test::test_config(2), program);

  std::set<std::uint64_t> begun;
  std::size_t ended = 0;
  for (const Record& r : run.records) {
    if (std::string(r.name) != "dsm.fault") continue;
    if (r.kind == Kind::kFlowBegin) begun.insert(r.flow);
    if (r.kind == Kind::kFlowEnd) {
      EXPECT_TRUE(begun.contains(r.flow)) << "fault end without begin";
      ++ended;
    }
  }
  EXPECT_GT(begun.size(), 0u);
  EXPECT_GT(ended, 0u);
}

TEST(TraceFlows, FutexWaitAndWakeShareACausalChain) {
  SKIP_WITHOUT_TRACING();
  // Cross-node mutex contention: some thread must lose the lock race,
  // futex-wait on the master, and later be woken by the holder's unlock.
  const auto program = workloads::mutex_stress(4, 20, /*global=*/true).take();
  const TracedRun run = run_traced(test::test_config(2), program);

  std::set<std::uint64_t> waited;
  std::set<std::uint64_t> woken_chains;
  for (const Record& r : run.records) {
    const std::string name(r.name);
    if (name == "sys.futex_wait" && r.flow != 0) waited.insert(r.flow);
    if (name == "sys.futex_wake" && r.flow != 0) woken_chains.insert(r.flow);
  }
  ASSERT_GT(waited.size(), 0u) << "workload produced no futex waits";
  ASSERT_GT(woken_chains.size(), 0u);

  // Every wake edge continues a chain some waiter opened: the wait -> wake
  // lifetime is reconstructible from the trace alone.
  std::size_t matched = 0;
  for (const std::uint64_t flow : woken_chains) {
    if (waited.contains(flow)) ++matched;
  }
  EXPECT_GT(matched, 0u);

  // And those chains close: the woken thread's delegation records kFlowEnd.
  std::set<std::uint64_t> closed;
  for (const Record& r : run.records) {
    if (r.kind == Kind::kFlowEnd && std::string(r.name) == "sys.delegate") {
      closed.insert(r.flow);
    }
  }
  std::size_t closed_waits = 0;
  for (const std::uint64_t flow : waited) {
    if (closed.contains(flow)) ++closed_waits;
  }
  EXPECT_GT(closed_waits, 0u);
}

TEST(TraceFlows, SendRecordsReconcileWithWireStats) {
  SKIP_WITHOUT_TRACING();
  // Census invariant: every message leaves exactly one send-side NIC record,
  // and every such record is either a wire message or a loopback. Without
  // the net.loopback counter the two sides cannot be reconciled.
  const auto program = workloads::mutex_stress(4, 20, /*global=*/true).take();
  Tracer tracer;
  core::Cluster cluster(test::test_config(2), &tracer);
  ASSERT_TRUE(cluster.load(program).is_ok());
  ASSERT_TRUE(cluster.run().is_ok());
  ASSERT_EQ(tracer.dropped(), 0u) << "ring too small for an exact census";

  std::size_t send_side = 0;
  for (const Record& r : tracer.records()) {
    if (r.cat != Cat::kNet || r.track != trace::kTrackNic) continue;
    const std::string name(r.name);
    if ((r.kind == Kind::kFlowBegin && name == "net.msg") ||
        (r.kind == Kind::kFlowStep &&
         (name == "net.send" || name == "net.retrans"))) {
      ++send_side;
    }
  }
  auto& stats = cluster.stats();
  EXPECT_GT(stats.get("net.loopback"), 0u);  // master self-sends exist
  EXPECT_GT(stats.get("net.messages"), 0u);
  EXPECT_EQ(send_side,
            stats.get("net.messages") + stats.get("net.loopback"));
}

TEST(TraceCounters, SnapshotsAreMonotonicTimelines) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::pi_taylor(2, 3, 100).take();
  const TracedRun run = run_traced(test::test_config(2), program);

  std::map<std::string, std::uint64_t> last;
  std::size_t samples = 0;
  for (const Record& r : run.records) {
    if (r.kind != Kind::kCounter) continue;
    ++samples;
    auto [it, fresh] = last.try_emplace(r.name, r.a);
    if (!fresh) {
      EXPECT_GE(r.a, it->second) << "counter " << r.name << " went backwards";
      it->second = r.a;
    }
  }
  EXPECT_GT(samples, 0u);
  EXPECT_TRUE(last.contains("time.execute"));
  EXPECT_TRUE(last.contains("dbt.insns"));
}

TEST(TraceCategories, MaskSuppressesLayers) {
  SKIP_WITHOUT_TRACING();
  const auto program = workloads::mutex_stress(4, 10, /*global=*/true).take();
  trace::TraceConfig net_only;
  net_only.categories = trace::cat_bit(Cat::kNet);
  const TracedRun run = run_traced(test::test_config(2), program, net_only);
  ASSERT_FALSE(run.records.empty());
  for (const Record& r : run.records) {
    EXPECT_EQ(r.cat, Cat::kNet);
  }
}

}  // namespace
}  // namespace dqemu
