// Unit tests: address space and shadow-page mapping.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "mem/shadow_map.hpp"

namespace dqemu::mem {
namespace {

TEST(AddressSpace, ScalarRoundtripAllWidths) {
  AddressSpace space(1 << 20, 4096);
  space.store(0x100, 0xAB, 1);
  space.store(0x102, 0xCDEF, 2);
  space.store(0x104, 0x12345678, 4);
  space.store(0x108, 0x1122334455667788ULL, 8);
  EXPECT_EQ(space.load(0x100, 1), 0xABu);
  EXPECT_EQ(space.load(0x102, 2), 0xCDEFu);
  EXPECT_EQ(space.load(0x104, 4), 0x12345678u);
  EXPECT_EQ(space.load(0x108, 8), 0x1122334455667788ULL);
}

TEST(AddressSpace, UntouchedMemoryReadsZero) {
  AddressSpace space(1 << 20, 4096);
  EXPECT_EQ(space.load(0x5000, 4), 0u);
  EXPECT_FALSE(space.page_materialized(5));
}

TEST(AddressSpace, LazyMaterialization) {
  AddressSpace space(64u << 20, 4096);
  EXPECT_FALSE(space.page_materialized(100));
  space.store(100 * 4096 + 8, 1, 4);
  EXPECT_TRUE(space.page_materialized(100));
  EXPECT_FALSE(space.page_materialized(101));
}

TEST(AddressSpace, PageMath) {
  AddressSpace space(1 << 20, 4096);
  EXPECT_EQ(space.page_shift(), 12u);
  EXPECT_EQ(space.num_pages(), (1u << 20) / 4096);
  EXPECT_EQ(space.page_of(0x3FFF), 3u);
  EXPECT_EQ(space.page_base(3), 0x3000u);
  EXPECT_EQ(space.offset_in_page(0x3FFF), 0xFFFu);
  EXPECT_TRUE(space.contains((1u << 20) - 1));
  EXPECT_FALSE(space.contains(1u << 20));
}

TEST(AddressSpace, BulkCrossesPages) {
  AddressSpace space(1 << 20, 4096);
  std::vector<std::uint8_t> out(8192);
  std::vector<std::uint8_t> in(8192);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = std::uint8_t(i * 7);
  space.write_bytes(4000, in);  // spans 3 pages
  space.read_bytes(4000, out);
  EXPECT_EQ(in, out);
}

TEST(AddressSpace, BulkReadOfUntouchedIsZero) {
  AddressSpace space(1 << 20, 4096);
  std::vector<std::uint8_t> out(100, 0xFF);
  space.read_bytes(0x9000, out);
  for (const auto b : out) EXPECT_EQ(b, 0);
}

TEST(AddressSpace, CStringRead) {
  AddressSpace space(1 << 20, 4096);
  const char* msg = "hello";
  space.write_bytes(0x200, {reinterpret_cast<const std::uint8_t*>(msg), 6});
  EXPECT_EQ(space.read_cstring(0x200), "hello");
  EXPECT_EQ(space.read_cstring(0x200, 3), "hel");  // bounded
}

TEST(AddressSpace, ProtectionDefaultsNoneAndIsSettable) {
  AddressSpace space(1 << 20, 4096);
  EXPECT_EQ(space.access(0), PageAccess::kNone);
  space.set_access(7, PageAccess::kRead);
  EXPECT_EQ(space.access(7), PageAccess::kRead);
  space.set_all_access(PageAccess::kReadWrite);
  EXPECT_EQ(space.access(0), PageAccess::kReadWrite);
  EXPECT_EQ(space.access(7), PageAccess::kReadWrite);
}

TEST(AddressSpace, PageDataViewIsWritable) {
  AddressSpace space(1 << 20, 4096);
  auto view = space.page_data(2);
  ASSERT_EQ(view.size(), 4096u);
  view[5] = 0x42;
  EXPECT_EQ(space.load(2 * 4096 + 5, 1), 0x42u);
}

TEST(AddressSpace, LoadProgramPlacesSections) {
  AddressSpace space(1 << 20, 4096);
  isa::Program program;
  program.sections.push_back({0x10000, {1, 2, 3, 4}});
  program.sections.push_back({0x20000, {9, 9}});
  space.load_program(program);
  EXPECT_EQ(space.load(0x10000, 4), 0x04030201u);
  EXPECT_EQ(space.load(0x20000, 2), 0x0909u);
}

// ---- ShadowMap ------------------------------------------------------------

class ShadowMapOffsets : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShadowMapOffsets, TranslateKeepsPageOffset) {
  ShadowMap shadow(4096, 4);
  const std::uint32_t shadows[4] = {100, 101, 102, 103};
  shadow.add_split(5, shadows);
  const std::uint32_t offset = GetParam();
  const GuestAddr addr = 5 * 4096 + offset;
  const GuestAddr translated = shadow.translate(addr);
  // Same offset, shadow page = shard index.
  EXPECT_EQ(translated & 0xFFFu, offset);
  EXPECT_EQ(translated >> 12, 100 + offset / 1024);
}

INSTANTIATE_TEST_SUITE_P(OffsetSweep, ShadowMapOffsets,
                         ::testing::Values(0u, 1u, 1023u, 1024u, 2047u, 2048u,
                                           3071u, 3072u, 4095u));

TEST(ShadowMap, IdentityForUnsplitPages) {
  ShadowMap shadow(4096, 4);
  EXPECT_TRUE(shadow.empty());
  EXPECT_EQ(shadow.translate(0x12345), 0x12345u);
  const std::uint32_t shadows[4] = {100, 101, 102, 103};
  shadow.add_split(5, shadows);
  EXPECT_FALSE(shadow.empty());
  EXPECT_EQ(shadow.translate(0x12345), 0x12345u);  // page 0x12 not split
}

TEST(ShadowMap, ShardGeometry) {
  ShadowMap shadow(4096, 8);
  EXPECT_EQ(shadow.shards(), 8u);
  EXPECT_EQ(shadow.shard_size(), 512u);
}

TEST(ShadowMap, TracksSplitPages) {
  ShadowMap shadow(4096, 2);
  const std::uint32_t shadows[2] = {50, 51};
  EXPECT_FALSE(shadow.is_split(9));
  shadow.add_split(9, shadows);
  EXPECT_TRUE(shadow.is_split(9));
  EXPECT_EQ(shadow.split_count(), 1u);
  const auto view = shadow.shadow_pages(9);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view[0], 50u);
  EXPECT_TRUE(shadow.shadow_pages(10).empty());
}

TEST(ShadowMap, AlignedAccessNeverCrossesShard) {
  // Property: for every naturally aligned width-w access, the whole access
  // maps into one shard (so scalar loads/stores stay contiguous).
  ShadowMap shadow(4096, 4);
  const std::uint32_t shadows[4] = {200, 201, 202, 203};
  shadow.add_split(1, shadows);
  for (std::uint32_t w : {1u, 2u, 4u, 8u}) {
    for (std::uint32_t offset = 0; offset + w <= 4096; offset += w) {
      const GuestAddr first = shadow.translate(4096 + offset);
      const GuestAddr last = shadow.translate(4096 + offset + w - 1);
      EXPECT_EQ(first + w - 1, last);
    }
  }
}

}  // namespace
}  // namespace dqemu::mem
