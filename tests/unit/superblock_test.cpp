// Unit tests: DBT superblock hot-trace tier (DESIGN.md section 15).
//
// Formation, micro-op fusion cost equivalence, side exits, invalidation
// and the virtual-time contract (byte-identical results with the tier on,
// off, or compiled out). The equivalence tests run unconditionally — they
// must hold with DQEMU_ENABLE_SUPERBLOCKS=OFF too; formation-introspection
// tests are compiled only when the tier is present.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "dbt/exec.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/superblock.hpp"
#include "dbt/translation.hpp"
#include "isa/assembler.hpp"

namespace dqemu::dbt {
namespace {

using isa::Assembler;
using enum isa::Reg;

constexpr GuestAddr kData = 0x00100000;  // scratch page, RW in the harness

/// Same single-space harness as dbt_test, with superblock knobs exposed.
struct Harness {
  explicit Harness(std::function<void(Assembler&)> emit,
                   bool check_protection = false, DbtConfig dbt_config = {})
      : space(32u << 20, 4096),
        config(dbt_config),
        llsc(&stats),
        cache(space, config, check_protection, &stats),
        engine(space, &shadow, llsc, cache, config, check_protection, &stats),
        shadow(4096, 4) {
    Assembler a;
    emit(a);
    auto result = a.finalize();
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    program = result.take();
    space.load_program(program);
    if (!check_protection) {
      space.set_all_access(mem::PageAccess::kReadWrite);
    }
    ctx.pc = program.entry;
    ctx.tid = 1;
  }

  ExecResult run(std::uint64_t max_insns = 100000) {
    return engine.run(ctx, max_insns);
  }

  StatsRegistry stats;
  mem::AddressSpace space;
  DbtConfig config;
  LlscTable llsc;
  TranslationCache cache;
  ExecEngine engine;
  mem::ShadowMap shadow;
  isa::Program program;
  CpuContext ctx;
};

DbtConfig hot_config(bool superblocks = true, bool fusion = true) {
  DbtConfig dbt;
  dbt.enable_superblocks = superblocks;
  dbt.sb_hot_threshold = 4;  // form traces almost immediately
  dbt.sb_fusion = fusion;
  return dbt;
}

/// A loop body exercising every fusion shape: load+ALU, ALU+store and
/// compare+branch, plus an unfused store. Iterates `reps` times.
void emit_fusion_loop(Assembler& a, std::int64_t reps) {
  a.li(kT1, kData);
  a.li(kT0, reps);
  a.li(kT3, 0);
  Assembler::Label loop = a.here();
  a.lw(kT2, kT1, 0);        // load+ALU pair head
  a.add(kT3, kT3, kT2);     //   ...fused companion (reads kT2)
  a.addi(kT4, kT3, 1);      // ALU+store pair head
  a.sw(kT1, kT4, 0);        //   ...fused companion (stores kT4)
  a.addi(kT0, kT0, -1);     // compare+branch pair head
  a.bne(kT0, kZero, loop);  //   ...fused companion (reads kT0)
  a.syscall(1);
}

/// Reference model of emit_fusion_loop's final state.
struct FusionLoopModel {
  std::uint32_t t3 = 0;
  std::uint32_t mem = 0;
};
FusionLoopModel fusion_loop_model(std::int64_t reps) {
  FusionLoopModel m;
  for (std::int64_t i = 0; i < reps; ++i) {
    m.t3 += m.mem;
    m.mem = m.t3 + 1;
  }
  return m;
}

// ---- virtual-time contract (runs with the tier on, off or compiled out) ----

TEST(SuperblockEquivalence, VirtualTimeAndStateIdenticalOnOff) {
  const std::int64_t reps = 200;
  auto emit = [&](Assembler& a) { emit_fusion_loop(a, reps); };
  Harness on(emit, false, hot_config(/*superblocks=*/true));
  Harness off(emit, false, hot_config(/*superblocks=*/false));

  // Lockstep quanta so every intermediate stop agrees, not just the end.
  for (int step = 0; step < 100; ++step) {
    const ExecResult ra = on.run(257);  // odd quantum: stops mid-loop
    const ExecResult rb = off.run(257);
    ASSERT_EQ(ra.reason, rb.reason) << "step " << step;
    ASSERT_EQ(ra.insns, rb.insns) << "step " << step;
    ASSERT_EQ(ra.exec_cycles, rb.exec_cycles) << "step " << step;
    ASSERT_EQ(on.ctx.pc, off.ctx.pc) << "step " << step;
    if (ra.reason != StopReason::kQuantum) {
      ASSERT_EQ(ra.reason, StopReason::kSyscall);
      break;
    }
  }
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(on.ctx.gpr[r], off.ctx.gpr[r]) << "r" << r;
  }
  const FusionLoopModel model = fusion_loop_model(reps);
  EXPECT_EQ(on.ctx.gpr[kT3], model.t3);
  EXPECT_EQ(on.space.load(kData, 4), model.mem);
  EXPECT_EQ(off.space.load(kData, 4), model.mem);
}

TEST(SuperblockEquivalence, FusionOffMatchesFusionOn) {
  const std::int64_t reps = 150;
  auto emit = [&](Assembler& a) { emit_fusion_loop(a, reps); };
  Harness fused(emit, false, hot_config(true, /*fusion=*/true));
  Harness unfused(emit, false, hot_config(true, /*fusion=*/false));
  std::uint64_t insns_a = 0, insns_b = 0, cycles_a = 0, cycles_b = 0;
  ExecResult ra, rb;
  do {
    ra = fused.run(331);
    rb = unfused.run(331);
    insns_a += ra.insns;
    insns_b += rb.insns;
    cycles_a += ra.exec_cycles;
    cycles_b += rb.exec_cycles;
  } while (ra.reason == StopReason::kQuantum &&
           rb.reason == StopReason::kQuantum);
  EXPECT_EQ(ra.reason, StopReason::kSyscall);
  EXPECT_EQ(rb.reason, StopReason::kSyscall);
  EXPECT_EQ(insns_a, insns_b);
  EXPECT_EQ(cycles_a, cycles_b);
  for (unsigned r = 0; r < 16; ++r) {
    EXPECT_EQ(fused.ctx.gpr[r], unfused.ctx.gpr[r]) << "r" << r;
  }
}

TEST(SuperblockEquivalence, ProtectionFaultMidLoopMatchesBlockEngine) {
  // Flip the data page read-only after a few quanta: the trace's store
  // must fault at the same instruction count, pc and fault address as the
  // block engine — including the ALU half of a fused ALU+store retiring
  // before the store half faults.
  struct Out {
    std::uint64_t insns = 0, cycles = 0;
    GuestAddr pc = 0;
    std::uint32_t t3 = 0;
  };
  auto emit = [&](Assembler& a) { emit_fusion_loop(a, 100000); };
  auto run_one = [&](bool superblocks) -> Out {
    Harness h(emit, /*check_protection=*/true,
              hot_config(superblocks));
    h.space.set_all_access(mem::PageAccess::kReadWrite);
    std::uint64_t insns = 0, cycles = 0;
    ExecResult r;
    int steps = 0;
    for (;;) {
      r = h.run(509);
      insns += r.insns;
      cycles += r.exec_cycles;
      if (++steps == 3) {
        h.space.set_access(h.space.page_of(kData),
                           mem::PageAccess::kRead);
      }
      if (r.reason != StopReason::kQuantum || steps >= 100) break;
    }
    EXPECT_EQ(r.reason, StopReason::kPageFault);
    EXPECT_TRUE(r.fault_is_write);
    EXPECT_EQ(r.fault_addr, kData);
    return Out{insns, cycles, h.ctx.pc, h.ctx.gpr[kT3]};
  };
  const auto on = run_one(true);
  const auto off = run_one(false);
  EXPECT_EQ(on.insns, off.insns);
  EXPECT_EQ(on.cycles, off.cycles);
  EXPECT_EQ(on.pc, off.pc);
  EXPECT_EQ(on.t3, off.t3);
}

TEST(SuperblockEquivalence, RuntimeDisabledFormsNothing) {
  Harness h([](Assembler& a) { emit_fusion_loop(a, 100); }, false,
            hot_config(/*superblocks=*/false));
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.cache.superblock_count(), 0u);
  EXPECT_EQ(h.stats.get("dbt.sb_formed"), 0u);
  EXPECT_EQ(h.stats.get("dbt.sb_exec"), 0u);
  EXPECT_EQ(h.stats.get("dbt.fused_ops"), 0u);
}

#if DQEMU_SUPERBLOCKS_ENABLED

// ---- formation introspection (needs the tier compiled in) ------------------

TEST(SuperblockFormation, HotLoopFormsLoopingTraceWithFusedPairs) {
  Harness h([](Assembler& a) { emit_fusion_loop(a, 200); }, false,
            hot_config());
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);

  EXPECT_EQ(h.stats.get("dbt.sb_formed"), 1u);
  EXPECT_EQ(h.cache.superblock_count(), 1u);
  EXPECT_GE(h.stats.get("dbt.sb_exec"), 1u);
  EXPECT_GT(h.stats.get("dbt.fused_ops"), 100u);  // 3 pairs x most iterations

  const std::vector<SuperblockInfo> census = h.cache.superblock_census();
  ASSERT_EQ(census.size(), 1u);
  EXPECT_TRUE(census[0].loops);
  EXPECT_EQ(census[0].blocks, 1u);
  EXPECT_EQ(census[0].insns, 6u);
  EXPECT_EQ(census[0].fused_pairs, 3u);  // lw+add, addi+sw, addi+bne
  EXPECT_GE(census[0].exec_count, 1u);

  bool head_flagged = false;
  for (const HotBlockInfo& b : h.cache.hot_census()) {
    if (b.pc == census[0].entry_pc) {
      head_flagged = b.has_sb;
      EXPECT_GE(b.hot_count, h.config.sb_hot_threshold);
    }
  }
  EXPECT_TRUE(head_flagged);
}

TEST(SuperblockFormation, FusedOpsChargeExactlyTheUnfusedCosts) {
  // Satellite: cost equivalence pinned against both the per-insn cost
  // source (op_cost) and the constituent blocks' MicroOps.
  Harness h([](Assembler& a) { emit_fusion_loop(a, 64); }, false,
            hot_config());
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  const std::vector<SuperblockInfo> census = h.cache.superblock_census();
  ASSERT_EQ(census.size(), 1u);
  const Superblock* sb = h.cache.superblock_at(census[0].entry_pc);
  ASSERT_NE(sb, nullptr);

  std::uint64_t sb_cost = 0;
  std::uint32_t sb_insns = 0;
  for (const SbOp& op : sb->ops) {
    EXPECT_EQ(op.cost_a, h.cache.op_cost(op.a));
    sb_cost += op.cost_a;
    sb_insns += 1;
    if (op.n_insns == 2) {
      EXPECT_EQ(op.cost_b, h.cache.op_cost(op.b));
      sb_cost += op.cost_b;
      sb_insns += 1;
    }
  }
  std::uint64_t block_cost = 0;
  std::uint32_t block_insns = 0;
  for (const GuestAddr pc : sb->block_pcs) {
    TranslationBlock* tb = h.cache.lookup(pc);
    ASSERT_NE(tb, nullptr);
    for (const MicroOp& mop : tb->ops) {
      block_cost += mop.cost_cycles;
      ++block_insns;
    }
  }
  EXPECT_EQ(sb_cost, block_cost);
  EXPECT_EQ(sb_insns, block_insns);
  EXPECT_EQ(sb_insns, sb->guest_insns);
}

TEST(SuperblockFormation, InnerLoopExitIsACountedSideExit) {
  DbtConfig dbt = hot_config();
  Harness h(
      [](Assembler& a) {
        a.li(kS0, 50);  // outer
        Assembler::Label outer = a.here();
        a.li(kT0, 8);  // inner
        Assembler::Label inner = a.here();
        a.addi(kT0, kT0, -1);
        a.bne(kT0, kZero, inner);
        a.addi(kS0, kS0, -1);
        a.bne(kS0, kZero, outer);
        a.syscall(1);
      },
      false, dbt);
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_GE(h.stats.get("dbt.sb_formed"), 1u);
  // Every completed inner loop leaves its trace through the guarded
  // branch's off-trace direction.
  EXPECT_GE(h.stats.get("dbt.sb_side_exit"), 10u);
  EXPECT_EQ(h.ctx.gpr[kS0], 0u);
  EXPECT_EQ(h.ctx.gpr[kT0], 0u);
}

TEST(SuperblockInvalidation, DroppingAConstituentPageKillsTheTrace) {
  // Lay the loop out across a page boundary: ~1000 filler instructions
  // push the loop body toward the end of the first code page, and a
  // 90-instruction straight-line body forces a cut block that lands on
  // the next page. The formed trace then has constituent blocks on two
  // pages; invalidating the second page must kill the whole trace while
  // the head block (first page) survives.
  Harness h(
      [](Assembler& a) {
        for (int i = 0; i < 1000; ++i) a.addi(kT4, kT4, 1);
        a.li(kT0, 400);
        Assembler::Label loop = a.here();
        for (int i = 0; i < 90; ++i) a.addi(kT3, kT3, 1);
        a.addi(kT0, kT0, -1);
        a.bne(kT0, kZero, loop);
        a.syscall(1);
      },
      false, hot_config());
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  ASSERT_GE(h.cache.superblock_count(), 1u);

  const std::vector<SuperblockInfo> census = h.cache.superblock_census();
  const Superblock* sb = h.cache.superblock_at(census[0].entry_pc);
  ASSERT_NE(sb, nullptr);
  ASSERT_GE(sb->pages.size(), 2u) << "layout regression: trace fits a page";
  ASSERT_GE(sb->block_pcs.size(), 2u);
  const GuestAddr entry = sb->entry_pc;
  const std::uint32_t head_page = h.space.page_of(entry);
  std::uint32_t tail_page = 0;
  for (const std::uint32_t page : sb->pages) {
    if (page != head_page) tail_page = page;
  }
  ASSERT_NE(tail_page, head_page);

  TranslationBlock* head_tb = h.cache.lookup(entry);
  ASSERT_NE(head_tb, nullptr);
  h.cache.invalidate_page(tail_page);

  EXPECT_EQ(h.cache.superblock_count(), 0u);
  EXPECT_EQ(h.cache.superblock_at(entry), nullptr);
  EXPECT_EQ(h.stats.get("dbt.sb_invalidated"), 1u);
  EXPECT_TRUE(h.cache.contains_block(head_tb));  // block outlives its trace
  EXPECT_EQ(head_tb->sb, nullptr);
}

TEST(SuperblockInvalidation, EventHookSeesFormationAndFlush) {
  Harness h([](Assembler& a) { emit_fusion_loop(a, 100); }, false,
            hot_config());
  std::vector<SbEvent> events;
  std::vector<GuestAddr> entries;
  h.cache.set_sb_event_hook([&](SbEvent e, const Superblock& sb) {
    events.push_back(e);
    entries.push_back(sb.entry_pc);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], SbEvent::kFormed);

  h.cache.flush();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1], SbEvent::kInvalidated);
  EXPECT_EQ(entries[0], entries[1]);
  EXPECT_EQ(h.cache.superblock_count(), 0u);
}

#endif  // DQEMU_SUPERBLOCKS_ENABLED

}  // namespace
}  // namespace dqemu::dbt
