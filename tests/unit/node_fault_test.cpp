// Whole-node fault plane (DESIGN.md §18): crash and pause-rejoin faults,
// lease/home revocation, thread re-homing, bounded retransmission give-up,
// and the cooperative checkpoint/restore digests.
//
// The load-bearing claims under test:
//   - a seeded crash mid-serving-run still retires every request with zero
//     checksum errors (recovery is complete, not just survived), and two
//     same-seed runs are identical counter-for-counter;
//   - the result does not depend on --host-threads;
//   - a checkpoint captured at a virtual-time cut is bit-identical between
//     a fresh run and a re-executed ("restored") run;
//   - a peer that stops acking is declared dead after the configured number
//     of zero-progress retransmit rounds, and the sender then goes quiet;
//   - with the plane compiled out, a node-fault config fails loudly.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/cluster.hpp"
#include "dsm/placement.hpp"
#include "dsm/wire.hpp"
#include "net/fault/node_faults.hpp"
#include "net/network.hpp"
#include "serve/serve.hpp"
#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "testutil.hpp"
#include "workloads/serve.hpp"

namespace dqemu {
namespace {

using time_literals::kMs;
using time_literals::kUs;

#if DQEMU_NODE_FAULTS_ENABLED && DQEMU_FAULTS_ENABLED
#define SKIP_WITHOUT_NODE_FAULTS() (void)0
#else
#define SKIP_WITHOUT_NODE_FAULTS() \
  GTEST_SKIP() << "built without the node-fault plane"
#endif

// ---- full-cluster crash/pause scenarios ----------------------------------

/// Serving cluster with one scripted node fault. The serving workload is
/// the natural victim: it has a master-side invariant (every request
/// retires with a verified checksum) that fails if recovery loses or
/// double-counts anything.
ClusterConfig fault_config(FaultConfig::NodeFault::Kind kind, NodeId node,
                           TimePs at, DurationPs pause_for = 0) {
  ClusterConfig config = test::test_config(4);
  config.serve.enabled = true;
  config.serve.requests = 200;
  config.serve.rate = 4000.0;
  config.serve.workers = 12;
  config.faults.enabled = true;
  FaultConfig::NodeFault nf;
  nf.kind = kind;
  nf.node = node;
  nf.at = at;
  nf.pause_for = pause_for;
  config.faults.node_faults.push_back(nf);
  return config;
}

struct ServeRun {
  bool ok = false;
  std::string error;
  core::Cluster::RunResult result;
  /// Full counter dump: the determinism fingerprint (virtual time, message
  /// counts, recovery actions — everything but host-side wall clock).
  std::string stats;
  std::uint64_t retired = 0;
  std::uint64_t checksum_errors = 0;
  std::vector<NodeId> dead;
  std::optional<core::CheckpointImage> checkpoint;
};

ServeRun run_serving(const ClusterConfig& config,
                     std::optional<TimePs> checkpoint_at = std::nullopt) {
  workloads::ServePoolParams pool;
  pool.workers = config.serve.workers;
  auto program = workloads::serve_pool(pool);
  EXPECT_TRUE(program.is_ok()) << program.status().to_string();
  ServeRun out;
  if (!program.is_ok()) return out;

  core::Cluster cluster(config);
  if (checkpoint_at.has_value()) cluster.arm_checkpoint(*checkpoint_at);
  const Status loaded = cluster.load(program.value());
  if (!loaded.is_ok()) {
    out.error = loaded.to_string();
    return out;
  }
  auto run = cluster.run();
  if (!run.is_ok()) {
    out.error = run.status().to_string();
    return out;
  }
  out.ok = true;
  out.result = run.take();
  out.stats = cluster.stats().to_string();
  out.retired = cluster.stats().get("serve.retired");
  out.checksum_errors = cluster.stats().get("serve.checksum_errors");
  out.dead = cluster.dead_nodes();
  out.checkpoint = cluster.checkpoint_image();
  return out;
}

TEST(NodeCrash, MidServingRunRecoversCompletely) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  const auto config =
      fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  const ServeRun run = run_serving(config);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.result.exit_code, 0u);
  EXPECT_EQ(run.dead, (std::vector<NodeId>{2}));
  // Completeness: the dead node's checked-out work was re-queued and its
  // threads re-homed — nothing lost, nothing retired twice.
  EXPECT_EQ(run.retired, config.serve.requests);
  EXPECT_EQ(run.checksum_errors, 0u);
}

TEST(NodeCrash, SameSeedRunsAreIdentical) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  const auto config =
      fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  const ServeRun a = run_serving(config);
  const ServeRun b = run_serving(config);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.result.sim_time, b.result.sim_time);
  EXPECT_EQ(a.stats, b.stats);
}

TEST(NodeCrash, DrawnTargetAndTimeAreSeeded) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  // node == 0 and at == 0 mean "draw from the fault seed": two runs with
  // the same seed must pick the same victim at the same instant.
  auto config = fault_config(FaultConfig::NodeFault::Kind::kCrash, 0, 0);
  config.faults.seed = 11;
  const ServeRun a = run_serving(config);
  const ServeRun b = run_serving(config);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  ASSERT_EQ(a.dead.size(), 1u);
  EXPECT_EQ(a.dead, b.dead);
  EXPECT_EQ(a.stats, b.stats);
  EXPECT_EQ(a.retired, config.serve.requests);
}

#if DQEMU_PARALLEL_SIM_ENABLED
TEST(NodeCrash, IdenticalAcrossHostThreads) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  auto config = fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  const ServeRun serial = run_serving(config);
  ASSERT_TRUE(serial.ok) << serial.error;
  for (const std::uint32_t threads : {2u, 4u}) {
    config.sim.host_threads = threads;
    const ServeRun parallel = run_serving(config);
    ASSERT_TRUE(parallel.ok) << parallel.error;
    EXPECT_EQ(parallel.result.sim_time, serial.result.sim_time)
        << "host_threads=" << threads;
    EXPECT_EQ(parallel.stats, serial.stats) << "host_threads=" << threads;
  }
}
#endif

TEST(NodePause, RejoinRecoversAndIsDeterministic) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  const auto config = fault_config(FaultConfig::NodeFault::Kind::kPause, 3,
                                   800 * kUs, 500 * kUs);
  const ServeRun a = run_serving(config);
  const ServeRun b = run_serving(config);
  ASSERT_TRUE(a.ok) << a.error;
  // A pause is not a death: the node buffers, rejoins, and finishes its
  // own work — nothing is revoked or re-homed.
  EXPECT_TRUE(a.dead.empty());
  EXPECT_EQ(a.retired, config.serve.requests);
  EXPECT_EQ(a.checksum_errors, 0u);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.stats, b.stats);
}

TEST(NodeCrash, ShardedHomeHandsOffToMaster) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  if (!dsm::home_sharding_compiled_in())
    GTEST_SKIP() << "home sharding compiled out";
  // The hardest recovery: the dead node hosted a directory shard and a
  // futex home. Its shard state must hand off to the master, survivors'
  // learned routes must invalidate, and the run must still fully retire.
  auto config = fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  config.dsm.enable_home_sharding = true;
  config.dsm.home_placement = HomePlacement::kFirstTouch;
  config.sys.enable_hierarchical_locking = true;
  const ServeRun a = run_serving(config);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.retired, config.serve.requests);
  EXPECT_EQ(a.checksum_errors, 0u);
  const ServeRun b = run_serving(config);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.stats, b.stats);
}

TEST(NodeCrash, LossyWireCrashQuiescesWatchdogs) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  // Crash on an already-lossy wire: protocol watchdogs are armed when the
  // node dies, and the teardown must cancel every timer its agents own
  // (ASan builds of this test catch a timer firing into freed state).
  auto config = fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  config.faults.drop_pct = 2.0;
  config.faults.giveup_retrans = 8;
  const ServeRun a = run_serving(config);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.retired, config.serve.requests);
  EXPECT_EQ(a.checksum_errors, 0u);
  const ServeRun b = run_serving(config);
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.stats, b.stats);
}

// ---- checkpoint / restore ------------------------------------------------

TEST(Checkpoint, RestoredRunMatchesUninterrupted) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  const auto config =
      fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  const TimePs cut = 20 * kMs;
  // "Restore" is deterministic re-execution to the cut: the second run is
  // the restore of the first, and every state digest must agree.
  const ServeRun original = run_serving(config, cut);
  const ServeRun restored = run_serving(config, cut);
  ASSERT_TRUE(original.ok) << original.error;
  ASSERT_TRUE(restored.ok) << restored.error;
  ASSERT_TRUE(original.checkpoint.has_value());
  ASSERT_TRUE(restored.checkpoint.has_value());
  EXPECT_EQ(original.checkpoint->virtual_time, cut);
  EXPECT_TRUE(original.checkpoint->diff(*restored.checkpoint).empty());
  // The capture is an observer: arming it must not perturb the run.
  const ServeRun unarmed = run_serving(config);
  ASSERT_TRUE(unarmed.ok) << unarmed.error;
  EXPECT_EQ(unarmed.stats, original.stats);
}

TEST(Checkpoint, DivergentConfigIsDetected) {
  SKIP_WITHOUT_NODE_FAULTS();
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  const auto config =
      fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  auto other = config;
  other.serve.seed = config.serve.seed + 1;
  const TimePs cut = 20 * kMs;
  const ServeRun a = run_serving(config, cut);
  const ServeRun b = run_serving(other, cut);
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  ASSERT_TRUE(a.checkpoint.has_value() && b.checkpoint.has_value());
  EXPECT_FALSE(a.checkpoint->diff(*b.checkpoint).empty());
}

TEST(Checkpoint, ImageRoundTripsThroughDisk) {
  core::CheckpointImage image;
  image.virtual_time = 123456789;
  image.add("space.0", 0xDEADBEEFCAFEF00DULL);
  image.add("insns", 42);
  image.normalize();
  const std::string path = ::testing::TempDir() + "node_fault_ckpt.img";
  ASSERT_TRUE(image.save(path));
  core::CheckpointImage loaded;
  ASSERT_TRUE(loaded.load(path));
  EXPECT_EQ(loaded.virtual_time, image.virtual_time);
  EXPECT_TRUE(loaded.diff(image).empty());
  EXPECT_EQ(loaded.digests, image.digests);
}

// ---- feature gate --------------------------------------------------------

TEST(NodeFaultGate, RuntimeEnabledButCompiledOutFailsLoudly) {
#if DQEMU_NODE_FAULTS_ENABLED
  GTEST_SKIP() << "node-fault plane compiled in";
#else
  if (!serve::compiled_in()) GTEST_SKIP() << "serving plane compiled out";
  const auto config =
      fault_config(FaultConfig::NodeFault::Kind::kCrash, 2, 900 * kUs);
  const ServeRun run = run_serving(config);
  EXPECT_FALSE(run.ok);
  EXPECT_NE(run.error.find("compiled out"), std::string::npos) << run.error;
#endif
}

// ---- bounded give-up (net.peer_dead) -------------------------------------

TEST(ReliableGiveUp, DeclaresDeadPeerAndGoesQuiet) {
#if !DQEMU_FAULTS_ENABLED
  GTEST_SKIP() << "built with DQEMU_ENABLE_FAULTS=OFF";
#else
  // A link that makes zero progress for giveup_retrans consecutive
  // retransmit rounds declares the peer dead and stops retransmitting.
  // Without the bound this queue never drains (retransmit forever).
  sim::EventQueue queue;
  StatsRegistry stats;
  NetworkConfig config;
  FaultConfig faults;
  faults.enabled = true;
  faults.drop_pct = 100.0;
  faults.giveup_retrans = 3;
  net::Network network(queue, config, 2, &stats, nullptr, faults);
  std::vector<std::pair<NodeId, NodeId>> declared;
  network.set_peer_dead_hook([&](NodeId self, NodeId peer) {
    declared.emplace_back(self, peer);
  });
  for (NodeId n = 0; n < 2; ++n) {
    network.attach(n, [](net::Message) {});
  }
  net::Message msg;
  msg.src = 0;
  msg.dst = 1;
  msg.type = 0x100;
  network.send(std::move(msg));

  std::uint64_t fired = 0;
  while (queue.run_one() && ++fired < 100000) {
  }
  ASSERT_LT(fired, 100000u) << "sender never gave up; queue did not drain";
  EXPECT_EQ(stats.get("net.peer_dead"), 1u);
  ASSERT_EQ(declared.size(), 1u);
  EXPECT_EQ(declared[0], (std::pair<NodeId, NodeId>(0, 1)));
  EXPECT_TRUE(network.peer_dead(0, 1));

  // A message to a declared-dead peer is dropped at the sender: a crashed
  // peer stops generating wire traffic entirely.
  const std::uint64_t wire_before = stats.get("net.messages");
  net::Message late;
  late.src = 0;
  late.dst = 1;
  late.type = 0x101;
  network.send(std::move(late));
  while (queue.run_one()) {
  }
  EXPECT_EQ(stats.get("net.messages"), wire_before);
  EXPECT_GE(stats.get("net.dead_dropped"), 1u);
#endif
}

// ---- HomeView invalidation -----------------------------------------------

TEST(HomeViewCrash, InvalidateDropsLearnedRoutesAndRefusesRelearning) {
  ClusterConfig config = test::test_config(4);
  config.dsm.enable_home_sharding = true;
  config.dsm.home_placement = HomePlacement::kFirstTouch;
  const dsm::HomeLayout layout = dsm::home_layout(config);
  dsm::HomeView view(config.dsm, layout);
  if (!view.sharded()) GTEST_SKIP() << "home sharding compiled out";

  // An ordinary (non-shadow) page: shadow-pool pages are statically sliced
  // and never learned.
  const std::uint64_t page = 1;
  view.learn(page, 3);
  ASSERT_EQ(view.home_of(page), 3);

  // Crash notification: the learned route falls back to the master (which
  // adopted the shard). Without this the first request after the crash
  // would chase the dead home forever (relay loop).
  view.invalidate_home(3);
  EXPECT_EQ(view.home_of(page), kMasterNode);

  // Late in-flight traffic from the dying home must not resurrect it.
  view.learn(page, 3);
  EXPECT_EQ(view.home_of(page), kMasterNode);
  // A new learned home (post-recovery first touch) is accepted.
  view.learn(page, 1);
  EXPECT_EQ(view.home_of(page), 1);
}

}  // namespace
}  // namespace dqemu
