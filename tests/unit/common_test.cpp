// Unit tests: common module (status/result, rng, stats, config, time).
#include <gtest/gtest.h>

#include <set>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace dqemu {
namespace {

// ---- Status / Result -------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status s = Status::invalid_argument("bad thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.to_string(), "INVALID_ARGUMENT: bad thing");
}

TEST(Status, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::not_found("a"), Status::not_found("b"));
  EXPECT_FALSE(Status::not_found("a") == Status::internal("a"));
}

TEST(Status, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kResourceExhausted);
       ++code) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::not_found("missing"));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, TakeMoves) {
  Result<std::string> r(std::string("payload"));
  const std::string taken = r.take();
  EXPECT_EQ(taken, "payload");
}

TEST(Result, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::internal("boom"); };
  auto wrapper = [&]() -> Status {
    DQEMU_RETURN_IF_ERROR(fails());
    return Status::ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

// ---- Rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double(5.0, 6.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 6.0);
  }
}

TEST(Rng, ReasonableSpread) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 256; ++i) seen.insert(rng.next_below(1u << 20));
  EXPECT_GT(seen.size(), 250u);  // collisions should be rare
}

// ---- Stats ------------------------------------------------------------------

TEST(Stats, AddCreatesAndAccumulates) {
  StatsRegistry stats;
  EXPECT_EQ(stats.get("x"), 0u);
  EXPECT_FALSE(stats.has("x"));
  stats.add("x");
  stats.add("x", 9);
  EXPECT_EQ(stats.get("x"), 10u);
  EXPECT_TRUE(stats.has("x"));
}

TEST(Stats, SetOverwrites) {
  StatsRegistry stats;
  stats.add("gauge", 5);
  stats.set("gauge", 2);
  EXPECT_EQ(stats.get("gauge"), 2u);
  stats.set("fresh", 7);
  EXPECT_EQ(stats.get("fresh"), 7u);
}

TEST(Stats, DumpIsSorted) {
  StatsRegistry stats;
  stats.add("zeta", 1);
  stats.add("alpha", 2);
  EXPECT_EQ(stats.to_string(), "alpha = 2\nzeta = 1\n");
}

TEST(Stats, ClearRemovesEverything) {
  StatsRegistry stats;
  stats.add("a");
  stats.clear();
  EXPECT_TRUE(stats.counters().empty());
}

TEST(TimeBreakdown, SumsAndAccumulates) {
  TimeBreakdown a{1, 2, 3, 4, 5};
  TimeBreakdown b{10, 20, 30, 40, 50};
  a += b;
  EXPECT_EQ(a.execute, 11u);
  EXPECT_EQ(a.idle, 55u);
  EXPECT_EQ(a.total(), 11u + 22 + 33 + 44 + 55);
}

// ---- time conversions --------------------------------------------------------

TEST(Time, CyclesToPicosecondsAt3p3GHz) {
  // 3.3 GHz -> 303.03 ps per cycle.
  EXPECT_EQ(cycles_to_ps(1, 3.3), 303u);
  EXPECT_EQ(cycles_to_ps(3300, 3.3), 1'000'000u);  // 1 us
}

TEST(Time, PsToSeconds) {
  using time_literals::kSec;
  EXPECT_DOUBLE_EQ(ps_to_seconds(kSec), 1.0);
  EXPECT_DOUBLE_EQ(ps_to_us(time_literals::kUs), 1.0);
}

// ---- config ------------------------------------------------------------------

TEST(Config, DefaultValidates) {
  ClusterConfig config;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(Config, RejectsZeroSlavesUnlessBaseline) {
  ClusterConfig config;
  config.slave_nodes = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.single_node_baseline = true;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(Config, RejectsBadPageSize) {
  ClusterConfig config;
  config.machine.page_size = 3000;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(Config, RejectsShardsNotDividingPage) {
  ClusterConfig config;
  config.dsm.split_shards = 3;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(Config, RejectsTinyGuestMemory) {
  ClusterConfig config;
  config.guest_mem_bytes = 1024 * 1024;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(Config, TotalNodesCountsMaster) {
  ClusterConfig config;
  config.slave_nodes = 6;
  EXPECT_EQ(config.total_nodes(), 7u);
  config.single_node_baseline = true;
  EXPECT_EQ(config.total_nodes(), 1u);
}

TEST(Config, WireTimeScalesWithBytes) {
  NetworkConfig net;
  // 4096+64 bytes at 1 Gb/s = 33.28 us.
  const DurationPs t = net.wire_time(4096);
  EXPECT_NEAR(static_cast<double>(t) / 1e6, 33.28, 0.01);
  EXPECT_GT(net.wire_time(8192), net.wire_time(4096));
}

}  // namespace
}  // namespace dqemu
