// Unit tests: VFS, futex table, syscall classification and the master
// delegation engine.
#include <gtest/gtest.h>

#include <memory>

#include "isa/syscall_abi.hpp"
#include "net/network.hpp"
#include "sys/classify.hpp"
#include "sys/futex_table.hpp"
#include "sys/master_syscalls.hpp"
#include "sys/vfs.hpp"
#include "sys/wire.hpp"

namespace dqemu::sys {
namespace {

using isa::Sys;

// ---- Vfs --------------------------------------------------------------------

TEST(VfsTest, StdoutCapture) {
  Vfs vfs;
  const char* msg = "hello";
  EXPECT_EQ(vfs.write(1, {reinterpret_cast<const std::uint8_t*>(msg), 5}), 5);
  EXPECT_EQ(vfs.stdout_text(), "hello");
  EXPECT_EQ(vfs.write(2, {reinterpret_cast<const std::uint8_t*>(msg), 2}), 2);
  EXPECT_EQ(vfs.stderr_text(), "he");
}

TEST(VfsTest, OpenMissingFileFails) {
  Vfs vfs;
  EXPECT_EQ(vfs.open("nope.txt", isa::kOpenRead), -isa::kENOENT);
}

TEST(VfsTest, CreateWriteReadRoundtrip) {
  Vfs vfs;
  const std::int32_t wfd = vfs.open("f.txt", isa::kOpenWrite | isa::kOpenCreate);
  ASSERT_GE(wfd, 3);
  const char* content = "data!";
  EXPECT_EQ(vfs.write(wfd, {reinterpret_cast<const std::uint8_t*>(content), 5}), 5);
  EXPECT_EQ(vfs.close(wfd), 0);

  const std::int32_t rfd = vfs.open("f.txt", isa::kOpenRead);
  ASSERT_GE(rfd, 3);
  std::uint8_t buf[16] = {};
  EXPECT_EQ(vfs.read(rfd, {buf, 16}), 5);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 5), "data!");
  EXPECT_EQ(vfs.read(rfd, {buf, 16}), 0);  // EOF
}

TEST(VfsTest, PreloadAndFileContent) {
  Vfs vfs;
  vfs.preload("input.dat", std::string_view("abc"));
  const auto content = vfs.file_content("input.dat");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(content->size(), 3u);
  EXPECT_FALSE(vfs.file_content("other").has_value());
}

TEST(VfsTest, LseekWhence) {
  Vfs vfs;
  vfs.preload("f", std::string_view("0123456789"));
  const std::int32_t fd = vfs.open("f", isa::kOpenRead);
  EXPECT_EQ(vfs.lseek(fd, 4, isa::kSeekSet), 4);
  std::uint8_t b = 0;
  EXPECT_EQ(vfs.read(fd, {&b, 1}), 1);
  EXPECT_EQ(b, '4');
  EXPECT_EQ(vfs.lseek(fd, 2, isa::kSeekCur), 7);
  EXPECT_EQ(vfs.lseek(fd, -1, isa::kSeekEnd), 9);
  EXPECT_EQ(vfs.lseek(fd, -100, isa::kSeekSet), -isa::kEINVAL);
  EXPECT_EQ(vfs.lseek(fd, 0, 99), -isa::kEINVAL);
}

TEST(VfsTest, BadFdErrors) {
  Vfs vfs;
  std::uint8_t b = 0;
  EXPECT_EQ(vfs.read(77, {&b, 1}), -isa::kEBADF);
  EXPECT_EQ(vfs.close(77), -isa::kEBADF);
  EXPECT_EQ(vfs.close(-1), -isa::kEBADF);
  EXPECT_EQ(vfs.read(1, {&b, 1}), -isa::kEBADF);  // stdout not readable
}

TEST(VfsTest, FdSlotsReused) {
  Vfs vfs;
  vfs.preload("a", std::string_view("x"));
  const std::int32_t fd1 = vfs.open("a", isa::kOpenRead);
  EXPECT_EQ(vfs.close(fd1), 0);
  const std::int32_t fd2 = vfs.open("a", isa::kOpenRead);
  EXPECT_EQ(fd1, fd2);  // lowest free slot, POSIX-style
  EXPECT_EQ(vfs.open_fd_count(), 4u);  // stdin/out/err + fd2
}

TEST(VfsTest, WriteExtendsFile) {
  Vfs vfs;
  const std::int32_t fd = vfs.open("g", isa::kOpenWrite | isa::kOpenCreate);
  const std::uint8_t bytes[4] = {1, 2, 3, 4};
  EXPECT_EQ(vfs.write(fd, bytes), 4);
  EXPECT_EQ(vfs.lseek(fd, 2, isa::kSeekSet), 2);
  EXPECT_EQ(vfs.write(fd, bytes), 4);  // overwrite + extend to 6
  EXPECT_EQ(vfs.file_content("g")->size(), 6u);
}

// ---- FutexTable ---------------------------------------------------------------

TEST(FutexTableTest, FifoWakeOrder) {
  FutexTable table;
  table.wait(0x100, {1, 10});
  table.wait(0x100, {2, 20});
  table.wait(0x100, {1, 30});
  EXPECT_EQ(table.waiters(0x100), 3u);
  const auto first = table.wake(0x100, 2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].tid, 10u);
  EXPECT_EQ(first[1].tid, 20u);
  EXPECT_EQ(table.waiters(0x100), 1u);
}

TEST(FutexTableTest, WakeOnEmptyAddressReturnsNothing) {
  FutexTable table;
  EXPECT_TRUE(table.wake(0x500, 100).empty());
}

TEST(FutexTableTest, AddressesAreIndependent) {
  FutexTable table;
  table.wait(0x100, {1, 1});
  table.wait(0x200, {2, 2});
  EXPECT_EQ(table.wake(0x100, 10).size(), 1u);
  EXPECT_EQ(table.waiters(0x200), 1u);
  EXPECT_EQ(table.total_waiters(), 1u);
}

// ---- classify / pre_access -----------------------------------------------------

TEST(Classify, LocalVsGlobal) {
  EXPECT_EQ(classify(Sys::kGettid), SysClass::kLocal);
  EXPECT_EQ(classify(Sys::kYield), SysClass::kLocal);
  EXPECT_EQ(classify(Sys::kClockGettime), SysClass::kLocal);
  EXPECT_EQ(classify(Sys::kWrite), SysClass::kGlobal);
  EXPECT_EQ(classify(Sys::kClone), SysClass::kGlobal);
  EXPECT_EQ(classify(Sys::kFutex), SysClass::kGlobal);
  EXPECT_EQ(classify(Sys::kBrk), SysClass::kGlobal);
  EXPECT_EQ(classify(Sys::kExit), SysClass::kGlobal);
}

TEST(PreAccess, WriteNeedsReadableBuffer) {
  const auto ranges = pre_access(Sys::kWrite, {1, 0x5000, 64, 0});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].addr, 0x5000u);
  EXPECT_EQ(ranges[0].len, 64u);
  EXPECT_FALSE(ranges[0].write);
}

TEST(PreAccess, ReadNeedsWritableBuffer) {
  const auto ranges = pre_access(Sys::kRead, {0, 0x6000, 128, 0});
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_TRUE(ranges[0].write);
}

TEST(PreAccess, ZeroLengthSkipped) {
  EXPECT_TRUE(pre_access(Sys::kWrite, {1, 0x5000, 0, 0}).empty());
}

TEST(PreAccess, FutexWaitNeedsWord) {
  const auto wait = pre_access(Sys::kFutex, {0x7000, isa::kFutexWait, 1, 0});
  ASSERT_EQ(wait.size(), 1u);
  EXPECT_EQ(wait[0].len, 4u);
  EXPECT_TRUE(pre_access(Sys::kFutex, {0x7000, isa::kFutexWake, 1, 0}).empty());
}

// ---- MasterSyscalls over the network --------------------------------------------

struct DelegationFixture : ::testing::Test {
  DelegationFixture()
      : network(queue, NetworkConfig{}, 2, &stats),
        master(network, queue, MachineConfig{}, 1500, &stats) {
    master.configure_memory(0x100000, 0x800000, 0xF00000);
    network.attach(0, [this](net::Message msg) {
      master.handle_message(msg);
    });
    network.attach(1, [this](net::Message msg) {
      responses.push_back(std::move(msg));
    });
  }

  /// Sends a request from node 1 and runs to quiescence.
  void call(isa::Sys num, std::array<std::uint32_t, 4> args,
            std::span<const std::uint8_t> payload = {}) {
    network.send(make_syscall_request(1, /*tid=*/7, num, args, payload));
    queue.run(10000);
  }

  std::int64_t last_result() const {
    return static_cast<std::int64_t>(responses.back().a);
  }

  sim::EventQueue queue;
  StatsRegistry stats;
  net::Network network;
  MasterSyscalls master;
  std::vector<net::Message> responses;
};

TEST_F(DelegationFixture, WriteToStdout) {
  const char* msg = "out!";
  call(Sys::kWrite, {1, 0, 4, 0},
       {reinterpret_cast<const std::uint8_t*>(msg), 4});
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(last_result(), 4);
  EXPECT_EQ(responses.back().b, 7u);  // routed by tid
  EXPECT_EQ(master.vfs().stdout_text(), "out!");
}

TEST_F(DelegationFixture, BrkQueryAndExtend) {
  call(Sys::kBrk, {0, 0, 0, 0});
  EXPECT_EQ(last_result(), 0x100000);
  call(Sys::kBrk, {0x180000, 0, 0, 0});
  EXPECT_EQ(last_result(), 0x180000);
  EXPECT_EQ(master.current_brk(), 0x180000u);
  // Out-of-range request leaves brk unchanged.
  call(Sys::kBrk, {0xE00000, 0, 0, 0});
  EXPECT_EQ(last_result(), 0x180000);
}

TEST_F(DelegationFixture, MmapAllocatesPageAligned) {
  call(Sys::kMmap, {100, 0, 0, 0});
  const auto first = last_result();
  EXPECT_EQ(first, 0x800000);
  call(Sys::kMmap, {8192, 0, 0, 0});
  EXPECT_EQ(last_result(), 0x801000);  // previous rounded to one page
  call(Sys::kMmap, {0x700000, 0, 0, 0});
  EXPECT_EQ(last_result(), -isa::kENOMEM);  // pool exhausted
}

TEST_F(DelegationFixture, OpenReadThroughPayloads) {
  master.vfs().preload("cfg", std::string_view("xyz"));
  const char* path = "cfg";
  call(Sys::kOpen, {0, 0, 0, 0},
       {reinterpret_cast<const std::uint8_t*>(path), 4});
  const auto fd = last_result();
  ASSERT_GE(fd, 3);
  call(Sys::kRead, {std::uint32_t(fd), 0x9000, 16, 0});
  EXPECT_EQ(last_result(), 3);
  EXPECT_EQ(responses.back().data.size(), 3u);  // payload carries the bytes
  EXPECT_EQ(responses.back().data[0], 'x');
}

TEST_F(DelegationFixture, FutexWaitDefersUntilWake) {
  call(Sys::kFutex, {0x4000, isa::kFutexWait, 1, 0});
  EXPECT_TRUE(responses.empty());  // no response yet: thread blocked
  EXPECT_EQ(master.futexes().waiters(0x4000), 1u);

  // Another thread wakes it.
  network.send(make_syscall_request(1, /*tid=*/8, Sys::kFutex,
                                    {0x4000, isa::kFutexWake, 1, 0}, {}));
  queue.run(10000);
  ASSERT_EQ(responses.size(), 2u);
  // Waiter's deferred response (result 0) and waker's count (1).
  bool saw_waiter = false;
  bool saw_waker = false;
  for (const auto& msg : responses) {
    if (msg.b == 7 && msg.a == 0) saw_waiter = true;
    if (msg.b == 8 && msg.a == 1) saw_waker = true;
  }
  EXPECT_TRUE(saw_waiter);
  EXPECT_TRUE(saw_waker);
}

TEST_F(DelegationFixture, FutexInvalidOp) {
  call(Sys::kFutex, {0x4000, 99, 0, 0});
  EXPECT_EQ(last_result(), -isa::kEINVAL);
}

TEST_F(DelegationFixture, UnknownSyscallReturnsEnosys) {
  call(static_cast<Sys>(200), {0, 0, 0, 0});
  EXPECT_EQ(last_result(), -isa::kENOSYS);
}

TEST_F(DelegationFixture, ExitWakesJoinersOnCtid) {
  // A joiner waits on the ctid address; exit(status, ctid) must wake it.
  call(Sys::kFutex, {0xABC0, isa::kFutexWait, 1, 0});
  EXPECT_TRUE(responses.empty());
  bool exited = false;
  MasterSyscalls::Hooks hooks;
  hooks.on_exit = [&](const SyscallRequest&) { exited = true; };
  master.set_hooks(std::move(hooks));
  network.send(make_syscall_request(1, /*tid=*/9, Sys::kExit,
                                    {0, 0xABC0, 0, 0}, {}));
  queue.run(10000);
  EXPECT_TRUE(exited);
  ASSERT_EQ(responses.size(), 1u);  // only the joiner's wakeup
  EXPECT_EQ(responses.back().b, 7u);
}

TEST_F(DelegationFixture, CloneHookInvoked) {
  MasterSyscalls::Hooks hooks;
  hooks.on_clone = [](const SyscallRequest& req) {
    EXPECT_EQ(req.args[1], 0x5555u);
    return 42;
  };
  master.set_hooks(std::move(hooks));
  call(Sys::kClone, {0, 0x5555, 0x6666, 0});
  EXPECT_EQ(last_result(), 42);
}

}  // namespace
}  // namespace dqemu::sys
