// Cross-cutting property tests: model-based event-queue checking, network
// ordering invariants, I-type semantics sweep, generator determinism, and
// syscall payloads spanning split pages.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "dbt/exec.hpp"
#include "dbt/translation.hpp"
#include "guestlib/runtime.hpp"
#include "isa/assembler.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "testutil.hpp"
#include "workloads/micro.hpp"
#include "workloads/parsec.hpp"

namespace dqemu {
namespace {

using isa::Assembler;
using enum isa::Reg;

// ---------------------------------------------------------------------------
// EventQueue vs a trivial model: random schedule/cancel sequences must fire
// the same (time, id) multiset in the same order as a sorted reference.
// ---------------------------------------------------------------------------

class EventQueueModel : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueModel, MatchesSortedReference) {
  Rng rng(GetParam());
  sim::EventQueue queue;
  std::vector<std::pair<TimePs, int>> fired;
  // Model: (time, seq, id, cancelled).
  struct ModelEvent {
    TimePs time;
    std::uint64_t seq;
    int id;
    bool cancelled = false;
  };
  std::vector<ModelEvent> model;
  std::vector<sim::EventId> handles;

  for (int i = 0; i < 300; ++i) {
    if (rng.next_below(5) == 0 && !handles.empty()) {
      const std::size_t pick = rng.next_below(handles.size());
      if (queue.cancel(handles[pick])) {
        // Mark the matching model event cancelled (by seq order of insert).
        model[pick].cancelled = true;
      }
    } else {
      const TimePs when = rng.next_below(10'000);
      const int id = i;
      handles.push_back(
          queue.schedule_at(when, [&fired, id, &queue] {
            fired.emplace_back(queue.now(), id);
          }));
      model.push_back({std::max<TimePs>(when, queue.now()),
                       static_cast<std::uint64_t>(i), id});
    }
  }
  queue.run();

  std::vector<std::pair<TimePs, int>> expected;
  std::stable_sort(model.begin(), model.end(),
                   [](const ModelEvent& a, const ModelEvent& b) {
                     return a.time < b.time;
                   });
  for (const ModelEvent& event : model) {
    if (!event.cancelled) expected.emplace_back(event.time, event.id);
  }
  EXPECT_EQ(fired, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueModel,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Network ordering: under random traffic, per-channel delivery order must
// equal send order, and per-node egress must never overlap transmissions.
// ---------------------------------------------------------------------------

class NetworkOrdering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkOrdering, ChannelFifoHolds) {
  Rng rng(GetParam());
  sim::EventQueue queue;
  net::Network network(queue, NetworkConfig{}, 4, nullptr);
  // delivered[src][dst] = sequence numbers in delivery order.
  std::map<std::pair<NodeId, NodeId>, std::vector<std::uint64_t>> delivered;
  for (NodeId n = 0; n < 4; ++n) {
    network.attach(n, [&delivered](net::Message msg) {
      delivered[{msg.src, msg.dst}].push_back(msg.a);
    });
  }
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> next_seq;
  for (int i = 0; i < 400; ++i) {
    net::Message msg;
    msg.src = static_cast<NodeId>(rng.next_below(4));
    msg.dst = static_cast<NodeId>(rng.next_below(4));
    msg.type = 1;
    msg.a = next_seq[{msg.src, msg.dst}]++;
    msg.data.resize(rng.next_below(8192));
    network.send(std::move(msg));
    if (rng.next_below(4) == 0) queue.run(50);
  }
  queue.run();
  for (const auto& [channel, seqs] : delivered) {
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "channel " << channel.first << "->"
                            << channel.second;
    }
    EXPECT_EQ(seqs.size(), next_seq[channel]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkOrdering,
                         ::testing::Range<std::uint64_t>(20, 26));

// ---------------------------------------------------------------------------
// I-type semantics sweep (complements the R-type sweep in dbt_test).
// ---------------------------------------------------------------------------

struct ImmCase {
  const char* name;
  void (Assembler::*emit)(isa::Reg, isa::Reg, std::int32_t);
  std::uint32_t input;
  std::int32_t imm;
  std::uint32_t expected;
};

class ImmSemantics : public ::testing::TestWithParam<ImmCase> {};

TEST_P(ImmSemantics, ComputesExpected) {
  const ImmCase& c = GetParam();
  dbt::CpuContext ctx;
  mem::AddressSpace space(16u << 20, 4096);
  Assembler a;
  a.li(kT0, static_cast<std::int64_t>(static_cast<std::int32_t>(c.input)));
  (a.*c.emit)(kT1, kT0, c.imm);
  a.syscall(1);
  auto program = a.finalize().take();
  space.load_program(program);
  space.set_all_access(mem::PageAccess::kReadWrite);
  DbtConfig config;
  dbt::LlscTable llsc;
  dbt::TranslationCache cache(space, config, false, nullptr);
  dbt::ExecEngine engine(space, nullptr, llsc, cache, config, false, nullptr);
  ctx.pc = program.entry;
  ASSERT_EQ(engine.run(ctx, 1000).reason, dbt::StopReason::kSyscall);
  EXPECT_EQ(ctx.gpr[kT1], c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ImmSemantics,
    ::testing::Values(
        ImmCase{"addi_neg", &Assembler::addi, 10, -20, std::uint32_t(-10)},
        ImmCase{"addi_signext", &Assembler::addi, 0, -1, 0xFFFFFFFF},
        ImmCase{"andi_signext", &Assembler::andi, 0xFFFF00FF, -256,
                0xFFFF0000},
        ImmCase{"ori", &Assembler::ori, 0xF0, 0x0F, 0xFF},
        ImmCase{"xori_invert_low", &Assembler::xori, 0xAAAA, -1, 0xFFFF5555},
        ImmCase{"slli", &Assembler::slli, 3, 4, 48},
        ImmCase{"slli_mod32", &Assembler::slli, 1, 33, 2},
        ImmCase{"srli", &Assembler::srli, 0x80000000, 4, 0x08000000},
        ImmCase{"srai", &Assembler::srai, 0x80000000, 4, 0xF8000000},
        ImmCase{"slti_true", &Assembler::slti, std::uint32_t(-5), -1, 1},
        ImmCase{"slti_false", &Assembler::slti, 5, -1, 0},
        ImmCase{"sltiu_signext", &Assembler::sltiu, 5, -1, 1}),
    [](const ::testing::TestParamInfo<ImmCase>& param) {
      return param.param.name;
    });

// ---------------------------------------------------------------------------
// Workload generators are pure functions of their parameters.
// ---------------------------------------------------------------------------

TEST(GeneratorDeterminism, SameParamsSameImage) {
  workloads::BlackscholesParams params;
  params.threads = 8;
  params.options_n = 512;
  params.reps = 2;
  const auto a = workloads::blackscholes_like(params).take();
  const auto b = workloads::blackscholes_like(params).take();
  ASSERT_EQ(a.sections.size(), b.sections.size());
  for (std::size_t i = 0; i < a.sections.size(); ++i) {
    EXPECT_EQ(a.sections[i].addr, b.sections[i].addr);
    EXPECT_EQ(a.sections[i].bytes, b.sections[i].bytes);
  }
  EXPECT_EQ(a.entry, b.entry);
  EXPECT_EQ(a.symbols, b.symbols);
}

TEST(GeneratorDeterminism, AllGeneratorsFinalize) {
  EXPECT_TRUE(workloads::pi_taylor(4, 1, 16).is_ok());
  EXPECT_TRUE(workloads::mutex_stress(4, 2, true).is_ok());
  EXPECT_TRUE(workloads::mutex_stress(4, 2, false).is_ok());
  EXPECT_TRUE(workloads::memwalk(8192, 1, false).is_ok());
  EXPECT_TRUE(workloads::false_sharing_walk(4, 128, 1, 2).is_ok());
  EXPECT_TRUE(
      workloads::blackscholes_like({.threads = 2, .options_n = 64, .reps = 1})
          .is_ok());
  EXPECT_TRUE(
      workloads::swaptions_like({.threads = 2, .swaptions_n = 4, .trials = 8})
          .is_ok());
  workloads::X264Params x264;
  x264.threads = 4;
  x264.groups = 2;
  x264.rounds = 1;
  x264.compute_words = 16;
  EXPECT_TRUE(workloads::x264_like(x264).is_ok());
  workloads::FluidanimateParams fluid;
  fluid.threads = 2;
  fluid.rows_per_thread = 1;
  fluid.cols = 16;
  fluid.iters = 1;
  EXPECT_TRUE(workloads::fluidanimate_like(fluid).is_ok());
}

// ---------------------------------------------------------------------------
// Syscall payload gathering across a SPLIT page: after false sharing
// triggers page splitting, the guest write()s a buffer that spans several
// shards of the split page — the node's shadow-aware block copy must
// stitch the bytes back together.
// ---------------------------------------------------------------------------

TEST(SplitPages, WritePayloadSpansShards) {
  using isa::Sys;
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label page = a.make_label("page");
  Assembler::Label handles = a.make_label("handles");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // worker(idx): hammer its own 1KiB shard of the page with writes (the
  // shard boundary matches split_shards=4) so the master splits it; each
  // pass stamps 'A'+idx over the shard.
  {
    a.bind(worker);
    a.la(kT0, page);
    a.slli(kT1, kA0, 10);
    a.add(kT0, kT0, kT1);
    a.addi(kT2, kA0, 'A');
    a.li(kS1, 60);  // passes
    Assembler::Label pass = a.make_label();
    Assembler::Label bytes = a.make_label();
    a.bind(pass);
    a.mov(kT1, kT0);
    a.li(kT3, 1024);
    a.bind(bytes);
    a.sb(kT1, kT2, 0);
    a.addi(kT1, kT1, 1);
    a.addi(kT3, kT3, -1);
    a.bne(kT3, kZero, bytes);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, pass);
    a.li(kA0, 0);
    a.ret();
  }

  // main: spawn 4 workers (hint groups 0..3 so each lands on its own
  // node), join, then write(1, page + 1000, 100) — a buffer crossing the
  // shard-0/shard-1 boundary of the (by now split) page.
  {
    a.bind(main_fn);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    for (int i = 0; i < 4; ++i) {
      a.hint(i);
      a.la(kA0, worker);
      a.li(kA1, i);
      a.call(rt.thread_create);
      a.la(kT0, handles);
      a.sw(kT0, kA0, i * 4);
    }
    a.hint(0xFFFF);
    for (int i = 0; i < 4; ++i) {
      a.la(kT0, handles);
      a.lw(kA0, kT0, i * 4);
      a.call(rt.thread_join);
    }
    a.li(kA0, 1);
    a.la(kA1, page);
    a.li(kT0, 1000);
    a.add(kA1, kA1, kT0);
    a.li(kA2, 100);
    a.syscall(static_cast<std::int32_t>(Sys::kWrite));
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  a.d_align(4096);
  a.bind_data(page);
  a.d_space(4096);
  a.bind_data(handles);
  a.d_space(16);
  const auto program = test::must_finalize(a);

  ClusterConfig config = test::test_config(4);
  config.sched.policy = SchedPolicy::kHintLocality;
  config.dsm.enable_splitting = true;
  config.dsm.split_threshold = 6;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  const auto result = cluster.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  // The page must actually have been split...
  EXPECT_GE(cluster.stats().get("dir.splits"), 1u);
  // ...and the payload must read 24 x 'A' (bytes 1000..1023 of shard 0)
  // followed by 76 x 'B' (bytes 1024..1099 of shard 1).
  const std::string out = result.value().guest_stdout;
  ASSERT_EQ(out.size(), 100u);
  EXPECT_EQ(out, std::string(24, 'A') + std::string(76, 'B'));
}

}  // namespace
}  // namespace dqemu
