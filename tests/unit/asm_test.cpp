// Unit tests: programmatic assembler and text assembler front-end.
#include <gtest/gtest.h>

#include <cstring>

#include "isa/assembler.hpp"
#include "isa/text_asm.hpp"

namespace dqemu::isa {
namespace {

Insn decode_at(const Program& program, std::size_t index) {
  const auto& code = program.sections.at(0).bytes;
  std::uint32_t word = 0;
  std::memcpy(&word, code.data() + index * 4, 4);
  const auto insn = decode(word);
  EXPECT_TRUE(insn.has_value());
  return insn.value_or(Insn{});
}

// ---- builder -----------------------------------------------------------------

TEST(Assembler, LiSmallUsesAddi) {
  Assembler a;
  a.li(kA0, 42);
  const auto program = a.finalize().take();
  EXPECT_EQ(program.sections[0].bytes.size(), 4u);
  const Insn insn = decode_at(program, 0);
  EXPECT_EQ(insn.op, Opcode::kAddi);
  EXPECT_EQ(insn.imm, 42);
}

TEST(Assembler, LiLargeUsesLuiOri) {
  Assembler a;
  a.li(kA0, 0x12345678);
  const auto program = a.finalize().take();
  ASSERT_EQ(program.sections[0].bytes.size(), 8u);
  EXPECT_EQ(decode_at(program, 0).op, Opcode::kLui);
  EXPECT_EQ(decode_at(program, 0).imm, 0x12345);
  EXPECT_EQ(decode_at(program, 1).op, Opcode::kOri);
  EXPECT_EQ(decode_at(program, 1).imm, 0x678);
}

TEST(Assembler, LiNegativeRoundtrips) {
  Assembler a;
  a.li(kA0, -100000);
  const auto program = a.finalize().take();
  // lui 0xFFFE7 ; ori 0x960 -> 0xFFFE7960 = -100000.
  const std::uint32_t hi = static_cast<std::uint32_t>(decode_at(program, 0).imm) << 12;
  const std::uint32_t lo = static_cast<std::uint32_t>(decode_at(program, 1).imm);
  EXPECT_EQ(static_cast<std::int32_t>(hi | lo), -100000);
}

TEST(Assembler, BackwardBranchOffset) {
  Assembler a;
  auto loop = a.here("loop");
  a.addi(kT0, kT0, -1);
  a.bne(kT0, kZero, loop);
  const auto program = a.finalize().take();
  // bne at index 1; target = entry: offset = (0 - (4+4))/4 = -2.
  EXPECT_EQ(decode_at(program, 1).imm, -2);
}

TEST(Assembler, ForwardBranchPatched) {
  Assembler a;
  auto skip = a.make_label("skip");
  a.beq(kA0, kZero, skip);
  a.nop();
  a.nop();
  a.bind(skip);
  a.nop();
  const auto program = a.finalize().take();
  EXPECT_EQ(decode_at(program, 0).imm, 2);
}

TEST(Assembler, UnboundReferencedLabelFails) {
  Assembler a;
  auto ghost = a.make_label("ghost");
  a.j(ghost);
  const auto result = a.finalize();
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Assembler, UnboundUnreferencedLabelIsFine) {
  Assembler a;
  (void)a.make_label("never_used");
  a.nop();
  EXPECT_TRUE(a.finalize().is_ok());
}

TEST(Assembler, DoubleBindFails) {
  Assembler a;
  auto label = a.here("x");
  a.nop();
  a.bind(label);
  EXPECT_FALSE(a.finalize().is_ok());
}

TEST(Assembler, BranchToDataFails) {
  Assembler a;
  auto data = a.make_label("d");
  a.j(data);
  a.bind_data(data);
  a.d_word(0);
  EXPECT_FALSE(a.finalize().is_ok());
}

TEST(Assembler, LaResolvesDataAddress) {
  Assembler a;
  auto value = a.make_label("value");
  a.la(kA0, value);
  a.bind_data(value);
  a.d_word(7);
  const auto program = a.finalize().take();
  const GuestAddr addr = program.symbol("value");
  const std::uint32_t hi = static_cast<std::uint32_t>(decode_at(program, 0).imm) << 12;
  const std::uint32_t lo = static_cast<std::uint32_t>(decode_at(program, 1).imm);
  EXPECT_EQ(hi | lo, addr);
  // Data lands on the page after code.
  EXPECT_EQ(addr % 4096, 0u);
  EXPECT_GT(addr, kDefaultCodeOrigin);
}

TEST(Assembler, LiteralPoolDeduplicates) {
  Assembler a;
  a.fli(kF0, 3.5);
  a.fli(kF1, 3.5);
  a.fli(kF2, 2.5);
  const auto program = a.finalize().take();
  // Two distinct constants -> 16 bytes of pool data.
  EXPECT_EQ(program.sections.at(1).bytes.size(), 16u);
}

TEST(Assembler, DataDirectivesLayout) {
  Assembler a;
  a.nop();
  auto w = a.make_label("w");
  a.bind_data(w);
  a.d_word(0xDEADBEEF);
  a.d_align(8);
  auto d = a.make_label("d");
  a.bind_data(d);
  a.d_double(1.5);
  auto s = a.make_label("s");
  a.bind_data(s);
  a.d_asciz("hi");
  const auto program = a.finalize().take();
  EXPECT_EQ(program.symbol("d") - program.symbol("w"), 8u);
  EXPECT_EQ(program.symbol("s") - program.symbol("d"), 8u);
  const auto& data = program.sections.at(1).bytes;
  EXPECT_EQ(data[0], 0xEF);
  EXPECT_EQ(data[16], 'h');
  EXPECT_EQ(data[18], '\0');
}

TEST(Assembler, EntryDefaultsToOriginAndCanBeSet) {
  Assembler a;
  a.nop();
  auto main_fn = a.here("main");
  a.nop();
  {
    Assembler b;
    b.nop();
    EXPECT_EQ(b.finalize().take().entry, kDefaultCodeOrigin);
  }
  a.set_entry(main_fn);
  EXPECT_EQ(a.finalize().take().entry, kDefaultCodeOrigin + 4);
}

TEST(Assembler, BrkStartPageAlignedAfterData) {
  Assembler a;
  a.nop();
  a.d_space(100);
  const auto program = a.finalize().take();
  EXPECT_EQ(program.brk_start % 4096, 0u);
  EXPECT_GE(program.brk_start,
            program.sections.back().addr +
                static_cast<GuestAddr>(program.sections.back().bytes.size()));
}

// ---- text assembler --------------------------------------------------------

TEST(TextAsm, BasicProgram) {
  const auto result = assemble_text(R"(
      ; compute 6*7 and exit
      li   a0, 6
      li   a1, 7
      mul  a0, a0, a1
      syscall 15
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(decode_at(result.value(), 2).op, Opcode::kMul);
}

TEST(TextAsm, LabelsAndBranches) {
  const auto result = assemble_text(R"(
      li t0, 10
  loop:
      addi t0, t0, -1
      bne  t0, zero, loop
      syscall 15
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  // li(10) = 1 insn; addi at 1; bne at 2 targeting the addi: offset -2.
  EXPECT_EQ(decode_at(result.value(), 2).imm, -2);
}

TEST(TextAsm, MemOperandBothForms) {
  const auto a = assemble_text("lw a0, 4(sp)\n");
  const auto b = assemble_text("lw a0, sp, 4\n");
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().sections[0].bytes, b.value().sections[0].bytes);
}

TEST(TextAsm, StoreSourceFirst) {
  const auto result = assemble_text("sw a1, -8(sp)\n");
  ASSERT_TRUE(result.is_ok());
  const Insn insn = decode_at(result.value(), 0);
  EXPECT_EQ(insn.op, Opcode::kSw);
  EXPECT_EQ(insn.rs1, kSp);  // base
  EXPECT_EQ(insn.rs2, kA1);  // source
  EXPECT_EQ(insn.imm, -8);
}

TEST(TextAsm, DataSectionAndEntry) {
  const auto result = assemble_text(R"(
      .entry main
      helper: ret
      main:   la a0, msg
              syscall 15
      .data
      msg: .asciz "hello\n"
      tbl: .word 1, 2, 3
           .space 8
      pi:  .align 8
           .double 3.25
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  const Program& program = result.value();
  EXPECT_EQ(program.entry, program.symbol("main"));
  EXPECT_EQ(program.symbol("tbl") - program.symbol("msg"), 7u);
  const auto& data = program.sections.at(1).bytes;
  EXPECT_EQ(data[5], '\n');
}

TEST(TextAsm, HexAndNegativeImmediates) {
  const auto result = assemble_text("li a0, 0x7FFF\naddi a0, a0, -1\n");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(decode_at(result.value(), 0).imm, 0x7FFF);
  EXPECT_EQ(decode_at(result.value(), 1).imm, -1);
}

TEST(TextAsm, RawRegisterNames) {
  const auto result = assemble_text("add r1, r2, r15\n");
  ASSERT_TRUE(result.is_ok());
  const Insn insn = decode_at(result.value(), 0);
  EXPECT_EQ(insn.rd, 1);
  EXPECT_EQ(insn.rs2, 15);
}

TEST(TextAsm, FpInstructions) {
  const auto result = assemble_text(R"(
      fld f0, 0(sp)
      fadd f1, f0, f0
      fsqrt f2, f1
      fcvt.w.d a0, f2
      fsd f2, 8(sp)
  )");
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(decode_at(result.value(), 2).op, Opcode::kFsqrt);
}

TEST(TextAsm, ErrorsCarryLineNumbers) {
  const auto result = assemble_text("nop\nnop\nbogus a0, a1\n");
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("line 3"), std::string::npos);
}

TEST(TextAsm, RejectsInstructionInData) {
  const auto result = assemble_text(".data\nnop\n");
  EXPECT_FALSE(result.is_ok());
}

TEST(TextAsm, RejectsBadOperandCount) {
  const auto result = assemble_text("add a0, a1\n");
  EXPECT_FALSE(result.is_ok());
}

TEST(TextAsm, RejectsOutOfRangeImmediate) {
  const auto result = assemble_text("addi a0, a0, 1000000\n");
  EXPECT_FALSE(result.is_ok());
}

TEST(TextAsm, CommentsInAllStyles) {
  const auto result = assemble_text(
      "nop ; semicolon\nnop # hash\nnop // slashes\n");
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value().sections[0].bytes.size(), 12u);
}

}  // namespace
}  // namespace dqemu::isa
