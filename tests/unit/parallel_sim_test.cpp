// Parallel conservative-window scheduler (DESIGN.md §16).
//
// Three layers under test:
//   1. sim::ThreadPool — the spin-then-park batch barrier: exactly-once
//      task execution, straggler safety across thousands of batches, and
//      the happens-before edge run_tasks() promises its caller.
//   2. sim::EventQueue edge semantics the window scheduler leans on:
//      same-time tie-break order, run_window end-exclusivity vs run_until
//      deadline-inclusivity, in-the-past clamping at a window boundary,
//      cancellation of cross-window events, and the (when, poster, order)
//      total order of the post/drain_posted mailbox.
//   3. Cluster determinism — host_threads N ∈ {2, 4} must be byte-identical
//      to the serial kernel in every virtual-time observable: RunResult,
//      all stats counters, histograms, and the exported trace (counter
//      records excluded: parallel snapshots land on barrier horizons, so
//      their timestamps — never their values — may differ).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "net/network.hpp"  // DQEMU_FAULTS_ENABLED
#include "serve/serve.hpp"  // serve::compiled_in()
#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "testutil.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"
#include "workloads/serve.hpp"

namespace dqemu {
namespace {

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, SingleThreadDegeneratesToSerialLoop) {
  sim::ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> hits(8, 0);
  pool.run_tasks(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce) {
  sim::ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run_tasks(kTasks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroTasksIsANoOp) {
  sim::ThreadPool pool(2);
  bool ran = false;
  pool.run_tasks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ManySmallBatchesStaySound) {
  // The window loop issues thousands of tiny batches back to back; a
  // straggler from batch k must never claim into batch k+1. The per-batch
  // sum catches both lost and double-claimed tasks.
  sim::ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  std::uint64_t expected = 0;
  for (int batch = 0; batch < 5000; ++batch) {
    const std::size_t n = 1 + static_cast<std::size_t>(batch % 5);
    pool.run_tasks(n, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    expected += n * (n + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPool, ReturnEstablishesHappensBefore) {
  // Plain (non-atomic) writes in tasks must be visible to the caller after
  // run_tasks returns; under TSan this is the test that proves the barrier
  // publishes task effects.
  sim::ThreadPool pool(4);
  std::vector<std::uint64_t> values(32, 0);
  pool.run_tasks(values.size(), [&](std::size_t i) { values[i] = i * i; });
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(values[i], i * i);
}

// ------------------------------------------------- EventQueue edge semantics

TEST(EventQueueWindow, SameTimeFiresInSchedulingOrder) {
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule_at(100, [&] { order.push_back(1); });
  q.schedule_at(100, [&] { order.push_back(2); });
  q.schedule_at(50, [&] { order.push_back(0); });
  q.schedule_at(100, [&] { order.push_back(3); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueWindow, RunWindowEndIsExclusive) {
  // An event at exactly `end` belongs to the next window — the scheduler's
  // window [H, H+L) must not leak it — and the clock stays at the last
  // fired event instead of jumping to `end`.
  sim::EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { fired++; });
  q.schedule_at(20, [&] { fired++; });
  EXPECT_EQ(q.run_window(20), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 10u);
  ASSERT_TRUE(q.next_time().has_value());
  EXPECT_EQ(*q.next_time(), 20u);
  EXPECT_EQ(q.run_window(21), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueWindow, RunUntilDeadlineIsInclusive) {
  // run_until is the contrast: an event at exactly the deadline fires, and
  // an empty remainder still advances the clock to the deadline.
  sim::EventQueue q;
  int fired = 0;
  q.schedule_at(30, [&] { fired++; });
  q.schedule_at(31, [&] { fired++; });
  EXPECT_EQ(q.run_until(30), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 30u);
  EXPECT_EQ(q.run_until(100), 1u);
  EXPECT_EQ(q.now(), 100u);  // clock advances past the last event
}

TEST(EventQueueWindow, ScheduleInThePastClampsAtWindowBoundary) {
  // A callback firing at t=100 that schedules for t=50 gets clamped to
  // now (100) and still fires inside the same window, after everything
  // already queued for 100 — identical to the single-queue kernel, because
  // run_window leaves the clock at the last fired event.
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule_at(100, [&] {
    order.push_back(1);
    q.schedule_at(50, [&] { order.push_back(3); });  // clamped to 100
  });
  q.schedule_at(100, [&] { order.push_back(2); });
  EXPECT_EQ(q.run_window(101), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueueWindow, CancelCrossWindowEventBeforeItFires) {
  // An event scheduled beyond the current window can be cancelled by a
  // handler running inside the window (a retransmission timer that an ACK
  // kills is exactly this shape).
  sim::EventQueue q;
  int fired = 0;
  const sim::EventId timer = q.schedule_at(500, [&] { fired = -1; });
  q.schedule_at(10, [&] { fired++; });
  EXPECT_EQ(q.run_window(100), 1u);
  EXPECT_TRUE(q.cancel(timer));
  EXPECT_FALSE(q.cancel(timer));  // second cancel reports already-gone
  EXPECT_EQ(q.run(), 0u);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueueWindow, DrainPostedOrdersByWhenPosterOrder) {
  // Posts arrive in arbitrary host order; drain_posted must fold them into
  // the queue in (when, poster, order) order, assigning fresh local seqs —
  // a total order no matter how host threads interleaved the posts.
  sim::EventQueue q;
  std::vector<int> order;
  q.post(200, /*poster=*/2, /*order=*/0, [&] { order.push_back(4); });
  q.post(100, /*poster=*/1, /*order=*/1, [&] { order.push_back(2); });
  q.post(100, /*poster=*/2, /*order=*/0, [&] { order.push_back(3); });
  q.post(100, /*poster=*/1, /*order=*/0, [&] { order.push_back(1); });
  EXPECT_EQ(q.drain_posted(), 4u);
  EXPECT_EQ(q.drain_posted(), 0u);  // mailbox is empty after a drain
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueWindow, PostedEventsInvisibleUntilDrained) {
  sim::EventQueue q;
  int fired = 0;
  q.post(10, 1, 0, [&] { fired++; });
  EXPECT_FALSE(q.next_time().has_value());
  EXPECT_EQ(q.run_window(1000), 0u);
  EXPECT_EQ(fired, 0);
  q.drain_posted();
  ASSERT_TRUE(q.next_time().has_value());
  EXPECT_EQ(*q.next_time(), 10u);
  EXPECT_EQ(q.run_window(1000), 1u);
  EXPECT_EQ(fired, 1);
}

// --------------------------------------------- Cluster-level determinism

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

#if DQEMU_PARALLEL_SIM_ENABLED

struct Observation {
  core::Cluster::RunResult result;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::string trace_json;  ///< counter records excluded (see header comment)
  std::string hist_dump;
};

Observation observe(const isa::Program& program, ClusterConfig config,
                    std::uint32_t host_threads) {
  config.sim.host_threads = host_threads;
  trace::TraceConfig trace_config;
  trace_config.categories =
      trace::kDefaultCategories & ~trace::cat_bit(trace::Cat::kCounter);
  trace::Tracer tracer(trace_config);

  core::Cluster cluster(config, &tracer);
  Observation obs;
  const Status load_status = cluster.load(program);
  EXPECT_TRUE(load_status.is_ok()) << load_status.to_string();
  auto run = cluster.run();
  EXPECT_TRUE(run.is_ok()) << run.status().to_string();
  if (run.is_ok()) obs.result = run.take();

  obs.counters = cluster.stats().counters();
  for (const auto& [name, hist] : cluster.stats().histograms()) {
    obs.hist_dump += name + " " + hist.to_string() + "\n";
  }
  std::ostringstream out;
  trace::write_chrome_json(tracer, out);
  obs.trace_json = out.str();
  return obs;
}

void expect_identical(const Observation& serial, const Observation& parallel,
                      std::uint32_t host_threads) {
  SCOPED_TRACE("host_threads=" + std::to_string(host_threads));
  EXPECT_EQ(serial.result.exit_code, parallel.result.exit_code);
  EXPECT_EQ(serial.result.sim_time, parallel.result.sim_time);
  EXPECT_EQ(serial.result.guest_insns, parallel.result.guest_insns);
  EXPECT_EQ(serial.result.guest_stdout, parallel.result.guest_stdout);

  ASSERT_EQ(serial.result.per_thread.size(), parallel.result.per_thread.size());
  for (const auto& [tid, b] : serial.result.per_thread) {
    const auto it = parallel.result.per_thread.find(tid);
    ASSERT_NE(it, parallel.result.per_thread.end()) << "tid " << tid;
    EXPECT_EQ(b.execute, it->second.execute) << "tid " << tid;
    EXPECT_EQ(b.translate, it->second.translate) << "tid " << tid;
    EXPECT_EQ(b.pagefault, it->second.pagefault) << "tid " << tid;
    EXPECT_EQ(b.syscall, it->second.syscall) << "tid " << tid;
    EXPECT_EQ(b.idle, it->second.idle) << "tid " << tid;
  }

  EXPECT_EQ(serial.counters, parallel.counters);
  if (serial.counters != parallel.counters) {
    for (const auto& [key, value] : serial.counters) {
      const auto it = parallel.counters.find(key);
      if (it == parallel.counters.end()) {
        ADD_FAILURE() << key << " missing in the parallel run";
      } else if (it->second != value) {
        ADD_FAILURE() << key << ": serial=" << value
                      << " parallel=" << it->second;
      }
    }
  }
  EXPECT_EQ(serial.trace_json, parallel.trace_json);
  EXPECT_EQ(serial.hist_dump, parallel.hist_dump);
}

void expect_thread_count_invisible(const isa::Program& program,
                                   const ClusterConfig& config) {
  const Observation serial = observe(program, config, 1);
  for (const std::uint32_t threads : {2u, 4u}) {
    expect_identical(serial, observe(program, config, threads), threads);
  }
}

TEST(ParallelSimDeterminism, MutexStressGlobalLock) {
  // Contended futexes + counter-page migration: the master plane and every
  // slave exchange messages constantly, the worst case for window ordering.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  expect_thread_count_invisible(program, test::test_config(4));
}

TEST(ParallelSimDeterminism, MemwalkMultiWorker) {
  // One page-disjoint walker per slave: every queue busy every window —
  // maximum genuine concurrency between the per-node queues.
  const auto program =
      must(workloads::memwalk(512 * 1024, 2, /*touch_first=*/true,
                              /*workers=*/4));
  expect_thread_count_invisible(program, test::test_config(4));
}

TEST(ParallelSimDeterminism, FalseSharing) {
  const auto program = must(workloads::false_sharing_walk(8, 128, 4, 4));
  expect_thread_count_invisible(program, test::test_config(4));
}

#if DQEMU_FAULTS_ENABLED
TEST(ParallelSimDeterminism, MutexStressUnderFaults) {
  // The lossy wire adds retransmission timers and duplicate deliveries —
  // all modeled delays, so the lookahead bound and the byte-identity
  // guarantee must hold unchanged.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  ClusterConfig config = test::test_config(2);
  config.faults.enabled = true;
  config.faults.drop_pct = 2.0;
  config.faults.dup_pct = 1.0;
  config.faults.jitter_pct = 5.0;
  expect_thread_count_invisible(program, config);
}
#endif

TEST(ParallelSimDeterminism, ServingPlane) {
  if (!serve::compiled_in()) {
    GTEST_SKIP() << "serving plane compiled out";
  }
  workloads::ServePoolParams pool;
  pool.workers = 8;
  const auto program = must(workloads::serve_pool(pool));
  ClusterConfig config = test::test_config(2);
  config.serve.enabled = true;
  config.serve.requests = 300;
  config.serve.rate = 4000.0;
  config.serve.workers = pool.workers;
  // hist_dump covers the latency histogram: every quantile byte-identical.
  expect_thread_count_invisible(program, config);
}

TEST(ParallelSim, SingleNodeFallsBackToSerialKernel) {
  // host_threads > 1 with nothing to parallelize (single node) must run on
  // the serial kernel and still produce identical results.
  const auto program = must(workloads::pi_taylor(2, 1, 50));
  ClusterConfig config = test::baseline_config();
  expect_identical(observe(program, config, 1), observe(program, config, 4),
                   4);
}

TEST(ParallelSim, ValidateRejectsZeroLookahead) {
  ClusterConfig config = test::test_config(2);
  config.sim.host_threads = 2;
  config.net.endpoint_overhead = 0;
  config.net.one_way_latency = 0;
  config.net.bandwidth_gbps = 0.0;  // wire_time(0) == 0
  EXPECT_FALSE(config.validate().is_ok());
}

#else  // !DQEMU_PARALLEL_SIM_ENABLED

TEST(ParallelSim, CompiledOutRejectsHostThreads) {
  // With the scheduler compiled out, asking for host threads must fail
  // loudly instead of silently running serial.
  const auto program = must(workloads::pi_taylor(2, 1, 50));
  ClusterConfig config = test::test_config(2);
  config.sim.host_threads = 2;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  const auto run = cluster.run();
  ASSERT_FALSE(run.is_ok());
  EXPECT_NE(run.status().to_string().find("compiled out"), std::string::npos)
      << run.status().to_string();
}

#endif  // DQEMU_PARALLEL_SIM_ENABLED

TEST(ParallelSim, ValidateRejectsZeroHostThreads) {
  ClusterConfig config = test::test_config(2);
  config.sim.host_threads = 0;
  EXPECT_FALSE(config.validate().is_ok());
}

}  // namespace
}  // namespace dqemu
