// Unit tests: the guest runtime library (mutex, barrier, malloc, threads,
// printing), exercised by running guest programs on a cluster.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>

#include "guestlib/runtime.hpp"
#include "isa/syscall_abi.hpp"
#include "testutil.hpp"

namespace dqemu {
namespace {

using isa::Assembler;
using isa::Sys;
using test::baseline_config;
using test::must_finalize;
using test::run_program;
using test::test_config;
using enum isa::Reg;

/// Builds a main()-only program around `body` (which must leave a0 = exit
/// code for main's return).
isa::Program main_program(
    const std::function<void(Assembler&, const guestlib::Runtime&)>& body) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);
  a.bind(main_fn);
  a.addi(kSp, kSp, -32);
  a.sw(kSp, kRa, 0);
  body(a, rt);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 32);
  a.ret();
  return must_finalize(a);
}

class PrintU32Values : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PrintU32Values, PrintsDecimal) {
  const std::uint32_t value = GetParam();
  const auto program = main_program([&](Assembler& a, const guestlib::Runtime& rt) {
    a.li(kA0, static_cast<std::int64_t>(value));
    a.call(rt.print_u32);
    a.li(kA0, 0);
  });
  auto outcome = run_program(baseline_config(), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, std::to_string(value) + "\n");
}

INSTANTIATE_TEST_SUITE_P(Values, PrintU32Values,
                         ::testing::Values(0u, 1u, 9u, 10u, 12345u,
                                           4294967295u));

TEST(Guestlib, PrintWritesExactBytes) {
  const auto program = main_program([&](Assembler& a, const guestlib::Runtime& rt) {
    auto msg = a.make_label("msg");
    a.la(kA0, msg);
    a.li(kA1, 3);
    a.call(rt.print);
    a.li(kA0, 0);
    a.bind_data(msg);
    a.d_asciz("abcdef");
  });
  auto outcome = run_program(baseline_config(), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "abc");
}

TEST(Guestlib, MallocReturnsAlignedDistinctChunks) {
  const auto program = main_program([&](Assembler& a, const guestlib::Runtime& rt) {
    a.li(kA0, 24);
    a.call(rt.malloc_fn);
    a.mov(kS0, kA0);
    a.li(kA0, 100);
    a.call(rt.malloc_fn);
    // print alignment of first (addr & 7) and gap to second
    a.andi(kT0, kS0, 7);
    a.mov(kA0, kT0);
    a.call(rt.print_u32);       // expect 0
    a.sub(kA0, kA0, kA0);
    a.li(kA0, 24);
    a.call(rt.malloc_fn);
    a.sub(kA0, kA0, kS0);
    a.call(rt.print_u32);       // gap >= 24+100 (prints some value >= 124)
    a.li(kA0, 0);
  });
  auto outcome = run_program(baseline_config(), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  std::istringstream in(outcome.result.guest_stdout);
  long align = -1;
  long gap = -1;
  in >> align >> gap;
  EXPECT_EQ(align, 0);
  EXPECT_GE(gap, 124);
}

TEST(Guestlib, MutexProtectsUnderContention) {
  // 6 threads x 50 non-atomic read-modify-writes under the runtime mutex;
  // the counter must be exactly 300 (a lost update would show).
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label lock = a.make_label("lock");
  Assembler::Label counter = a.make_label("counter");
  Assembler::Label handles = a.make_label("handles");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  a.bind(worker);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  a.li(kS1, 50);
  Assembler::Label loop = a.make_label();
  a.bind(loop);
  a.la(kA0, lock);
  a.call(rt.mutex_lock);
  a.la(kT0, counter);
  a.lw(kT1, kT0, 0);
  a.addi(kT1, kT1, 1);
  a.sw(kT0, kT1, 0);
  a.la(kA0, lock);
  a.call(rt.mutex_unlock);
  a.addi(kS1, kS1, -1);
  a.bne(kS1, kZero, loop);
  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();

  a.bind(main_fn);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  for (int i = 0; i < 6; ++i) {
    a.la(kA0, worker);
    a.li(kA1, i);
    a.call(rt.thread_create);
    a.la(kT0, handles);
    a.sw(kT0, kA0, i * 4);
  }
  for (int i = 0; i < 6; ++i) {
    a.la(kT0, handles);
    a.lw(kA0, kT0, i * 4);
    a.call(rt.thread_join);
  }
  a.la(kT0, counter);
  a.lw(kA0, kT0, 0);
  a.call(rt.print_u32);
  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();

  a.d_align(4);
  a.bind_data(lock);
  a.d_word(0);
  a.bind_data(counter);
  a.d_word(0);
  a.bind_data(handles);
  a.d_space(24);
  const auto program = must_finalize(a);

  // Use a tiny quantum so threads interleave aggressively within a node.
  ClusterConfig config = test_config(3);
  config.dbt.quantum_insns = 50;
  auto outcome = run_program(config, program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "300\n");
}

TEST(Guestlib, BarrierReusableAcrossGenerations) {
  // 4 threads pass the same barrier 5 times; a counter is incremented by
  // thread 0 only, between barriers; every thread checks the count after
  // each round by contributing to a checksum.
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label barrier = a.make_label("barrier");
  Assembler::Label rounds_done = a.make_label("rounds_done");
  Assembler::Label handles = a.make_label("handles");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  a.bind(worker);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  a.mov(kS0, kA0);
  a.li(kS1, 5);
  Assembler::Label loop = a.make_label();
  a.bind(loop);
  a.la(kA0, barrier);
  a.call(rt.barrier_wait);
  // Thread 0 bumps the round counter after each barrier.
  Assembler::Label not_zero = a.make_label();
  a.bne(kS0, kZero, not_zero);
  a.la(kT0, rounds_done);
  a.lw(kT1, kT0, 0);
  a.addi(kT1, kT1, 1);
  a.sw(kT0, kT1, 0);
  a.bind(not_zero);
  a.addi(kS1, kS1, -1);
  a.bne(kS1, kZero, loop);
  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();

  a.bind(main_fn);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  for (int i = 0; i < 4; ++i) {
    a.la(kA0, worker);
    a.li(kA1, i);
    a.call(rt.thread_create);
    a.la(kT0, handles);
    a.sw(kT0, kA0, i * 4);
  }
  for (int i = 0; i < 4; ++i) {
    a.la(kT0, handles);
    a.lw(kA0, kT0, i * 4);
    a.call(rt.thread_join);
  }
  a.la(kT0, rounds_done);
  a.lw(kA0, kT0, 0);
  a.call(rt.print_u32);
  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();

  a.d_align(4);
  a.bind_data(barrier);
  a.d_word(0);
  a.d_word(0);
  a.d_word(4);  // total
  a.bind_data(rounds_done);
  a.d_word(0);
  a.bind_data(handles);
  a.d_space(16);
  const auto program = must_finalize(a);

  auto outcome = run_program(test_config(2), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "5\n");
}

TEST(Guestlib, ThreadReturnValueFlowsToExitStatus) {
  // Worker returns 0; join completes. (Return-value plumbing is via the
  // exit syscall; verified indirectly by successful join + no deadlock.)
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);
  a.bind(worker);
  a.li(kA0, 123);
  a.ret();
  a.bind(main_fn);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  a.la(kA0, worker);
  a.li(kA1, 0);
  a.call(rt.thread_create);
  a.call(rt.thread_join);
  a.li(kA0, 11);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();
  auto outcome = run_program(test_config(1), must_finalize(a));
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.exit_code, 11u);
}

TEST(Guestlib, UnameBanner) {
  const auto program = main_program([&](Assembler& a, const guestlib::Runtime& rt) {
    auto buf = a.make_label("buf");
    a.la(kA0, buf);
    a.syscall(static_cast<std::int32_t>(Sys::kUname));
    a.la(kA0, buf);
    a.li(kA1, 5);
    a.call(rt.print);
    a.li(kA0, 0);
    a.bind_data(buf);
    a.d_space(64);
  });
  auto outcome = run_program(baseline_config(), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "DQEMU");
}

}  // namespace
}  // namespace dqemu
