// Home-node sharding regression suite (DESIGN.md §17).
//
// Sharding is a *protocol* change, not a host-side one: with it on, page
// and futex traffic spreads across per-page home nodes, so virtual time
// legitimately shifts against the single-master run. What must hold:
//
//   - placement is a pure function: home_of is stable across instances,
//     runs and host thread counts (the master relays what it must under
//     first-touch, but a home never moves once assigned);
//   - the guest-visible results (exit code, stdout) are identical to the
//     single-master run — sharding may move picoseconds, never bytes;
//   - each sharded mode is individually byte-deterministic, run to run and
//     at every --host-threads count;
//   - the dual-gate contract: enable_home_sharding=false reproduces the
//     single-master run bit-for-bit even with every sharding knob set;
//   - the protocol survives a lossy wire (home recalls ride the same
//     reliable channel as everything else).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "dsm/placement.hpp"
#include "net/network.hpp"  // for DQEMU_FAULTS_ENABLED
#include "testutil.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"

namespace dqemu {
namespace {

#if DQEMU_HOME_SHARDING_ENABLED
#define SKIP_WITHOUT_SHARDING() (void)0
#else
#define SKIP_WITHOUT_SHARDING() \
  GTEST_SKIP() << "built with DQEMU_ENABLE_HOME_SHARDING=OFF"
#endif

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

ClusterConfig sharded_config(std::uint32_t nodes,
                             HomePlacement placement = HomePlacement::kHash) {
  ClusterConfig config = test::test_config(nodes);
  config.dsm.enable_home_sharding = true;
  config.dsm.home_placement = placement;
  return config;
}

struct Observation {
  core::Cluster::RunResult result;
  std::map<std::string, std::uint64_t, std::less<>> counters;
  std::string trace_json;
  std::string hist_dump;
};

Observation observe(const isa::Program& program, ClusterConfig config) {
  trace::TraceConfig trace_config;
  trace_config.categories =
      trace::kDefaultCategories & ~trace::cat_bit(trace::Cat::kCounter);
  trace::Tracer tracer(trace_config);

  core::Cluster cluster(config, &tracer);
  Observation obs;
  const Status load_status = cluster.load(program);
  EXPECT_TRUE(load_status.is_ok()) << load_status.to_string();
  auto run = cluster.run();
  EXPECT_TRUE(run.is_ok()) << run.status().to_string();
  if (run.is_ok()) obs.result = run.take();

  obs.counters = cluster.stats().counters();
  for (const auto& [name, hist] : cluster.stats().histograms()) {
    obs.hist_dump += name + " " + hist.to_string() + "\n";
  }
  std::ostringstream out;
  trace::write_chrome_json(tracer, out);
  obs.trace_json = out.str();
  return obs;
}

void expect_identical(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.result.exit_code, b.result.exit_code);
  EXPECT_EQ(a.result.sim_time, b.result.sim_time);
  EXPECT_EQ(a.result.guest_insns, b.result.guest_insns);
  EXPECT_EQ(a.result.guest_stdout, b.result.guest_stdout);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.hist_dump, b.hist_dump);
}

void expect_same_guest_results(const Observation& a, const Observation& b) {
  EXPECT_EQ(a.result.exit_code, b.result.exit_code);
  EXPECT_EQ(a.result.guest_stdout, b.result.guest_stdout);
}

// ---- placement purity ------------------------------------------------------

TEST(HomePlacement_, HashHomeIsPureStableAndCoversOnlySlaves) {
  SKIP_WITHOUT_SHARDING();
  const ClusterConfig config = sharded_config(7);
  const dsm::HomeLayout layout = dsm::home_layout(config);
  dsm::HomeMap map_a(config.dsm, layout);
  dsm::HomeMap map_b(config.dsm, layout);
  const dsm::HomeView view(config.dsm, layout);

  std::set<NodeId> seen;
  for (std::uint64_t page = 0; page < 4096; ++page) {
    const NodeId home = map_a.home_of(page);
    // Pure function: a second instance and the per-node view all agree,
    // and repeated lookups never move (the unit form of the "stable across
    // runs and host thread counts" guarantee — there is no state to vary).
    EXPECT_EQ(home, map_b.home_of(page));
    EXPECT_EQ(home, view.home_of(page));
    EXPECT_EQ(home, map_a.home_of(page));
    EXPECT_GE(home, 1u);
    EXPECT_LE(home, config.slave_nodes);
    seen.insert(home);
  }
  // 4096 pages over 7 homes: every home must serve some of them.
  EXPECT_EQ(seen.size(), config.slave_nodes);
}

TEST(HomePlacement_, ShadowSlicesPartitionThePool) {
  const ClusterConfig config = sharded_config(5);
  const dsm::HomeLayout layout = dsm::home_layout(config);
  ASSERT_GT(layout.shadow_page_count, 0u);

  std::uint64_t covered = 0;
  for (NodeId home = 1; home <= config.slave_nodes; ++home) {
    const std::uint64_t first = layout.slice_first(home);
    const std::uint64_t count = layout.slice_count(home);
    covered += count;
    for (std::uint64_t p = first; p < first + count; ++p) {
      EXPECT_TRUE(layout.is_shadow(p));
      EXPECT_EQ(layout.shadow_home(p), home) << "page " << p;
    }
  }
  EXPECT_EQ(covered, layout.shadow_page_count);
}

TEST(HomePlacement_, FirstTouchAssignsOnceAndNeverMoves) {
  SKIP_WITHOUT_SHARDING();
  const ClusterConfig config = sharded_config(4, HomePlacement::kFirstTouch);
  const dsm::HomeLayout layout = dsm::home_layout(config);
  dsm::HomeMap map(config.dsm, layout);

  EXPECT_EQ(map.home_of(10), kMasterNode);  // unassigned: master fields it
  EXPECT_EQ(map.home_for(10, 3), 3u);       // first touch assigns
  EXPECT_EQ(map.home_for(10, 1), 3u);       // ...and the home never moves
  EXPECT_EQ(map.home_of(10), 3u);
}

TEST(HomePlacement_, ShardingOffMapsEverythingToTheMaster) {
  ClusterConfig config = sharded_config(4);
  config.dsm.enable_home_sharding = false;
  const dsm::HomeLayout layout = dsm::home_layout(config);
  dsm::HomeMap map(config.dsm, layout);
  EXPECT_FALSE(map.sharded());
  for (std::uint64_t page = 0; page < 256; ++page) {
    EXPECT_EQ(map.home_of(page), kMasterNode);
  }
}

// ---- guest equivalence and determinism -------------------------------------

TEST(ShardingDeterminism, HashShardingSameGuestResultsAsSingleMaster) {
  SKIP_WITHOUT_SHARDING();
  const auto memwalk = must(workloads::memwalk(256 * 1024, 2, true));
  const auto mutex = must(workloads::mutex_stress(8, 100, /*global=*/true));
  for (const auto* program : {&memwalk, &mutex}) {
    const Observation on = observe(*program, sharded_config(4));
    const Observation off = observe(*program, test::test_config(4));
    expect_same_guest_results(on, off);
  }
}

TEST(ShardingDeterminism, FirstTouchSameGuestResultsAndRelays) {
  SKIP_WITHOUT_SHARDING();
  const auto program = must(workloads::memwalk(256 * 1024, 2, true));
  const Observation ft =
      observe(program, sharded_config(4, HomePlacement::kFirstTouch));
  const Observation off = observe(program, test::test_config(4));
  expect_same_guest_results(ft, off);
  // The policy handoff actually happened: some requests reached the master
  // before the requester learned the home and were forwarded on.
  ASSERT_TRUE(ft.counters.contains("dsm.home_relays"));
  EXPECT_GT(ft.counters.at("dsm.home_relays"), 0u);
  // And after the handoff the homes served traffic directly: the per-home
  // counters prove slave-hosted directories carried real load.
  std::uint64_t slave_home_msgs = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    const auto it = ft.counters.find("dsm.home_msgs." + std::to_string(n));
    if (it != ft.counters.end()) slave_home_msgs += it->second;
  }
  EXPECT_GT(slave_home_msgs, 0u);
}

TEST(ShardingDeterminism, EachPlacementIsRunToRunByteIdentical) {
  SKIP_WITHOUT_SHARDING();
  const auto program = must(workloads::mutex_stress(8, 100, /*global=*/true));
  for (const HomePlacement placement :
       {HomePlacement::kHash, HomePlacement::kFirstTouch}) {
    expect_identical(observe(program, sharded_config(4, placement)),
                     observe(program, sharded_config(4, placement)));
  }
}

TEST(ShardingDeterminism, HostThreadCountIsInvisible) {
  SKIP_WITHOUT_SHARDING();
#if !DQEMU_PARALLEL_SIM_ENABLED
  GTEST_SKIP() << "built with DQEMU_ENABLE_PARALLEL_SIM=OFF";
#endif
  const auto program = must(workloads::mutex_stress(8, 100, /*global=*/true));
  ClusterConfig serial = sharded_config(4);
  ClusterConfig parallel = sharded_config(4);
  parallel.sim.host_threads = 4;
  expect_identical(observe(program, serial), observe(program, parallel));
}

TEST(ShardingDeterminism, DisabledShardingReproducesTheBaselineBitForBit) {
  // The dual-gate contract: sharding knobs set but enabled=false must not
  // move a single picosecond. Runs in every build flavor — with sharding
  // compiled out this doubles as the compiled-out-identity gate.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  ClusterConfig off = test::test_config(2);
  ClusterConfig constructed = test::test_config(2);
  constructed.dsm.enable_home_sharding = false;
  constructed.dsm.home_placement = HomePlacement::kFirstTouch;  // ignored
  expect_identical(observe(program, off), observe(program, constructed));
}

// ---- load spread -----------------------------------------------------------

TEST(ShardingLoad, HashSpreadsDirectoryLoadAcrossHomes) {
  SKIP_WITHOUT_SHARDING();
  // A multi-page walk touches enough distinct pages that splitmix64 should
  // spread the per-home message counts within the 2x evenness gate the
  // bench enforces at 64 nodes.
  const auto program = must(workloads::memwalk(1024 * 1024, 4, true));
  const Observation obs = observe(program, sharded_config(4));
  std::vector<std::uint64_t> loads;
  for (NodeId n = 1; n <= 4; ++n) {
    const auto it = obs.counters.find("dsm.home_msgs." + std::to_string(n));
    ASSERT_NE(it, obs.counters.end()) << "home " << n << " served nothing";
    loads.push_back(it->second);
  }
  const std::uint64_t lo = *std::min_element(loads.begin(), loads.end());
  const std::uint64_t hi = *std::max_element(loads.begin(), loads.end());
  ASSERT_GT(lo, 0u);
  EXPECT_LE(hi, 2 * lo) << "per-home load spread exceeds 2x";
  // The master is out of the page-serving business entirely under hash.
  const auto master = obs.counters.find("dsm.home_msgs.0");
  EXPECT_TRUE(master == obs.counters.end() || master->second == 0u);
}

TEST(ShardingLoad, FutexLeasesAreArbitratedByTheHome) {
  SKIP_WITHOUT_SHARDING();
  // Contended global mutex with hierarchical locking: the lease protocol
  // must run against the futex's home, not the master.
  const auto program = must(workloads::mutex_stress(16, 300, /*global=*/true));
  ClusterConfig config = sharded_config(4);
  config.dbt.quantum_insns = 500;
  config.sys.enable_hierarchical_locking = true;
  const Observation obs = observe(program, config);
  EXPECT_NE(obs.result.guest_stdout.find("4800"), std::string::npos)
      << "lost wakeup under sharded lease protocol";
  std::uint64_t futex_home_msgs = 0;
  for (NodeId n = 1; n <= 4; ++n) {
    const auto it =
        obs.counters.find("sys.futex_home_msgs." + std::to_string(n));
    if (it != obs.counters.end()) futex_home_msgs += it->second;
  }
  EXPECT_GT(futex_home_msgs, 0u) << "no futex traffic reached a slave home";
}

// ---- fault tolerance -------------------------------------------------------

TEST(ShardingFaults, HomeRecallsSurviveALossyWire) {
#if !DQEMU_FAULTS_ENABLED
  GTEST_SKIP() << "built with DQEMU_ENABLE_FAULTS=OFF";
#endif
  SKIP_WITHOUT_SHARDING();
  const auto program = must(workloads::mutex_stress(8, 100, /*global=*/true));
  ClusterConfig lossy = sharded_config(2);
  lossy.dbt.quantum_insns = 500;
  lossy.faults.enabled = true;
  lossy.faults.seed = 7;
  lossy.faults.drop_pct = 2;
  lossy.faults.dup_pct = 1;
  lossy.faults.jitter_pct = 5;
  ClusterConfig clean = lossy;
  clean.faults.enabled = false;

  const Observation faulty = observe(program, lossy);
  const Observation base = observe(program, clean);
  expect_same_guest_results(faulty, base);
  EXPECT_NE(faulty.result.guest_stdout.find("800"), std::string::npos);
  // Lossy runs stay byte-reproducible, like every other subsystem.
  expect_identical(faulty, observe(program, lossy));
}

// ---- scale -----------------------------------------------------------------

TEST(ShardingScale, SixtyFourHomesServeAWalk) {
  SKIP_WITHOUT_SHARDING();
  // 64 slave homes with a small per-node memory so the test stays light;
  // the Release-mode CI scale-smoke job runs the full scenario through
  // dqemu_run with byte-identity checked across two runs.
  ClusterConfig config = sharded_config(64);
  config.guest_mem_bytes = 16u * 1024 * 1024;  // validate()'s floor
  const auto program = must(workloads::memwalk(512 * 1024, 8, true));
  const Observation obs = observe(program, config);
  EXPECT_EQ(obs.result.exit_code, 0u);
  std::uint32_t homes_hit = 0;
  for (NodeId n = 1; n <= 64; ++n) {
    if (obs.counters.contains("dsm.home_msgs." + std::to_string(n))) {
      ++homes_hit;
    }
  }
  // A 128-page walk over 64 hash buckets cannot hit every home, but it
  // must spread far beyond any single hot spot.
  EXPECT_GE(homes_hit, 32u);
}

}  // namespace
}  // namespace dqemu
