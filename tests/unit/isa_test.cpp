// Unit tests: GA32 encoding, decoding, metadata and disassembly.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "isa/isa.hpp"

namespace dqemu::isa {
namespace {

/// Every assigned opcode value.
std::vector<Opcode> all_opcodes() {
  std::vector<Opcode> out;
  for (unsigned raw = 0; raw < 256; ++raw) {
    if (is_valid_opcode(static_cast<std::uint8_t>(raw))) {
      out.push_back(static_cast<Opcode>(raw));
    }
  }
  return out;
}

/// A representative valid instruction for an opcode (fields respect the
/// encoding format).
Insn sample(Opcode op, Rng& rng) {
  const InsnInfo& info = insn_info(op);
  Insn insn;
  insn.op = op;
  switch (info.format) {
    case Format::kR:
      insn.rd = std::uint8_t(rng.next_below(16));
      insn.rs1 = std::uint8_t(rng.next_below(16));
      insn.rs2 = std::uint8_t(rng.next_below(16));
      break;
    case Format::kI:
      insn.rd = std::uint8_t(rng.next_below(16));
      insn.rs1 = std::uint8_t(rng.next_below(16));
      insn.imm = std::int32_t(rng.next_below(65536)) - 32768;
      break;
    case Format::kU:
      insn.rd = std::uint8_t(rng.next_below(16));
      insn.imm = op == Opcode::kJal
                     ? std::int32_t(rng.next_below(1u << 20)) - (1 << 19)
                     : std::int32_t(rng.next_below(1u << 20));
      break;
    case Format::kB:
    case Format::kS:
      insn.rs1 = std::uint8_t(rng.next_below(16));
      insn.rs2 = std::uint8_t(rng.next_below(16));
      insn.imm = std::int32_t(rng.next_below(65536)) - 32768;
      break;
    case Format::kN:
      insn.imm = std::int32_t(rng.next_below(32768));
      break;
  }
  return insn;
}

class OpcodeRoundtrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(OpcodeRoundtrip, EncodeDecodeIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int i = 0; i < 50; ++i) {
    const Insn insn = sample(GetParam(), rng);
    const auto decoded = decode(encode(insn));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, insn);
  }
}

TEST_P(OpcodeRoundtrip, HasMnemonicAndDisassembles) {
  const InsnInfo& info = insn_info(GetParam());
  EXPECT_FALSE(info.mnemonic.empty());
  Rng rng(1);
  const std::string text = disassemble(sample(GetParam(), rng), 0x10000);
  EXPECT_NE(text.find(info.mnemonic.substr(0, 2)), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, OpcodeRoundtrip, ::testing::ValuesIn(all_opcodes()),
    [](const ::testing::TestParamInfo<Opcode>& param_info) {
      std::string name(insn_info(param_info.param).mnemonic);
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(IsaDecode, RejectsUnassignedOpcodes) {
  EXPECT_FALSE(decode(0x00000000u).has_value());  // opcode 0 unassigned
  EXPECT_FALSE(decode(0xFF000000u).has_value());
  EXPECT_FALSE(is_valid_opcode(0));
}

TEST(IsaDecode, SignExtendsImm16) {
  const Insn insn{Opcode::kAddi, 1, 2, 0, -1};
  const auto decoded = decode(encode(insn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, -1);
}

TEST(IsaDecode, JalSignExtendsImm20) {
  const Insn insn{Opcode::kJal, 14, 0, 0, -(1 << 19)};
  const auto decoded = decode(encode(insn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, -(1 << 19));
}

TEST(IsaDecode, LuiZeroExtendsImm20) {
  const Insn insn{Opcode::kLui, 3, 0, 0, 0xFFFFF};
  const auto decoded = decode(encode(insn));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->imm, 0xFFFFF);
}

TEST(IsaInfo, MemoryFlagsAndWidths) {
  EXPECT_TRUE(insn_info(Opcode::kLw).is_load);
  EXPECT_EQ(insn_info(Opcode::kLw).mem_bytes, 4);
  EXPECT_TRUE(insn_info(Opcode::kSb).is_store);
  EXPECT_EQ(insn_info(Opcode::kSb).mem_bytes, 1);
  EXPECT_EQ(insn_info(Opcode::kFld).mem_bytes, 8);
  EXPECT_TRUE(insn_info(Opcode::kLl).is_load);
  EXPECT_TRUE(insn_info(Opcode::kSc).is_store);
  EXPECT_FALSE(insn_info(Opcode::kAdd).is_load);
}

TEST(IsaInfo, BlockEnders) {
  for (const Opcode op : {Opcode::kBeq, Opcode::kBne, Opcode::kJal,
                          Opcode::kJalr, Opcode::kSyscall}) {
    EXPECT_TRUE(insn_info(op).ends_block) << insn_info(op).mnemonic;
  }
  for (const Opcode op : {Opcode::kAdd, Opcode::kLw, Opcode::kSc,
                          Opcode::kHint, Opcode::kFence}) {
    EXPECT_FALSE(insn_info(op).ends_block) << insn_info(op).mnemonic;
  }
}

TEST(IsaInfo, FpSpecialCostClass) {
  EXPECT_TRUE(insn_info(Opcode::kFexp).is_fp_special);
  EXPECT_TRUE(insn_info(Opcode::kFsqrt).is_fp_special);
  EXPECT_FALSE(insn_info(Opcode::kFadd).is_fp_special);
}

TEST(IsaRegs, AbiNames) {
  EXPECT_EQ(gpr_name(0), "zero");
  EXPECT_EQ(gpr_name(kSp), "sp");
  EXPECT_EQ(gpr_name(kRa), "ra");
  EXPECT_EQ(gpr_name(kTp), "tp");
  EXPECT_EQ(fpr_name(15), "f15");
}

TEST(IsaDisasm, BranchTargetsAreAbsolute) {
  // beq at 0x1000 with offset +4 words -> target 0x1014.
  const Insn insn{Opcode::kBeq, 0, 1, 2, 4};
  EXPECT_EQ(disassemble(insn, 0x1000), "beq a0, a1, 0x1014");
}

TEST(IsaDisasm, LoadStoreSyntax) {
  EXPECT_EQ(disassemble({Opcode::kLw, 1, 13, 0, 8}), "lw a0, 8(sp)");
  EXPECT_EQ(disassemble({Opcode::kSw, 0, 13, 1, -4}), "sw a0, -4(sp)");
}

TEST(IsaDisasm, SyscallAndHint) {
  EXPECT_EQ(disassemble({Opcode::kSyscall, 0, 0, 0, 9}), "syscall 9");
  EXPECT_EQ(disassemble({Opcode::kHint, 0, 0, 0, 3}), "hint 3");
}

TEST(IsaImmRanges, Fit16And20) {
  EXPECT_TRUE(fits_imm16(32767));
  EXPECT_TRUE(fits_imm16(-32768));
  EXPECT_FALSE(fits_imm16(32768));
  EXPECT_FALSE(fits_imm16(-32769));
  EXPECT_TRUE(fits_imm20((1 << 19) - 1));
  EXPECT_FALSE(fits_imm20(1 << 19));
}

}  // namespace
}  // namespace dqemu::isa
