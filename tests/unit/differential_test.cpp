// Differential property tests: random programs through the production
// ExecEngine vs the independent reference interpreter must produce
// bit-identical final CPU and memory state.
#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "dbt/exec.hpp"
#include "dbt/reference_interp.hpp"
#include "dbt/translation.hpp"
#include "isa/assembler.hpp"

namespace dqemu::dbt {
namespace {

using isa::Assembler;
using enum isa::Reg;
using enum isa::FReg;

constexpr std::uint32_t kScratchBytes = 2048;

/// Emits a random but well-defined program: ALU/imm/FP ops over all
/// registers, aligned loads/stores into a scratch buffer addressed via s2,
/// short forward branches, LL/SC pairs — ending in a syscall.
isa::Program random_program(std::uint64_t seed, unsigned length) {
  Rng rng(seed);
  Assembler a;
  auto scratch = a.make_label("scratch");
  a.la(kS2, scratch);  // stable base register for memory ops

  auto any_gpr = [&] {
    // Never rd = s2 (the base would wander off the scratch region).
    std::uint8_t reg;
    do {
      reg = static_cast<std::uint8_t>(rng.next_below(16));
    } while (reg == kS2);
    return static_cast<isa::Reg>(reg);
  };
  auto any_src = [&] { return static_cast<isa::Reg>(rng.next_below(16)); };
  auto any_fpr = [&] { return static_cast<isa::FReg>(rng.next_below(16)); };
  auto imm16 = [&] { return std::int32_t(rng.next_below(65536)) - 32768; };

  // Seed registers with random values.
  for (unsigned reg = 1; reg < 16; ++reg) {
    if (reg == kS2) continue;
    a.li(static_cast<isa::Reg>(reg), std::int64_t(std::int32_t(rng.next())));
  }
  for (unsigned reg = 0; reg < 16; ++reg) {
    a.fli(static_cast<isa::FReg>(reg), rng.next_double(-100.0, 100.0), kT4);
  }
  // (fli clobbered t4; reseed it.)
  a.li(kT4, std::int64_t(std::int32_t(rng.next())));

  for (unsigned i = 0; i < length; ++i) {
    switch (rng.next_below(10)) {
      case 0: case 1: case 2: {  // R-type integer
        static constexpr void (Assembler::*kOps[])(isa::Reg, isa::Reg,
                                                   isa::Reg) = {
            &Assembler::add, &Assembler::sub, &Assembler::mul,
            &Assembler::div, &Assembler::divu, &Assembler::rem,
            &Assembler::remu, &Assembler::and_, &Assembler::or_,
            &Assembler::xor_, &Assembler::sll, &Assembler::srl,
            &Assembler::sra, &Assembler::slt, &Assembler::sltu};
        (a.*kOps[rng.next_below(std::size(kOps))])(any_gpr(), any_src(),
                                                   any_src());
        break;
      }
      case 3: case 4: {  // I-type integer
        static constexpr void (Assembler::*kOps[])(isa::Reg, isa::Reg,
                                                   std::int32_t) = {
            &Assembler::addi, &Assembler::andi, &Assembler::ori,
            &Assembler::xori, &Assembler::slli, &Assembler::srli,
            &Assembler::srai, &Assembler::slti, &Assembler::sltiu};
        (a.*kOps[rng.next_below(std::size(kOps))])(any_gpr(), any_src(),
                                                   imm16());
        break;
      }
      case 5: {  // aligned store into scratch
        const std::uint32_t width = 1u << rng.next_below(3);  // 1/2/4
        const auto offset = static_cast<std::int32_t>(
            rng.next_below(kScratchBytes / width) * width);
        if (width == 1) a.sb(kS2, any_src(), offset);
        else if (width == 2) a.sh(kS2, any_src(), offset);
        else a.sw(kS2, any_src(), offset);
        break;
      }
      case 6: {  // aligned load from scratch
        const std::uint32_t width = 1u << rng.next_below(3);
        const auto offset = static_cast<std::int32_t>(
            rng.next_below(kScratchBytes / width) * width);
        if (width == 1) a.lbu(any_gpr(), kS2, offset);
        else if (width == 2) a.lh(any_gpr(), kS2, offset);
        else a.lw(any_gpr(), kS2, offset);
        break;
      }
      case 7: {  // FP arithmetic (total functions only: keep values finite)
        static constexpr void (Assembler::*kOps[])(isa::FReg, isa::FReg,
                                                   isa::FReg) = {
            &Assembler::fadd, &Assembler::fsub, &Assembler::fmul,
            &Assembler::fmin, &Assembler::fmax};
        (a.*kOps[rng.next_below(std::size(kOps))])(any_fpr(), any_fpr(),
                                                   any_fpr());
        break;
      }
      case 8: {  // short forward branch over 1-3 instructions
        auto skip = a.make_label();
        if (rng.next_below(2) == 0) {
          a.beq(any_src(), any_src(), skip);
        } else {
          a.blt(any_src(), any_src(), skip);
        }
        const std::uint64_t body = 1 + rng.next_below(3);
        for (std::uint64_t k = 0; k < body; ++k) {
          a.addi(any_gpr(), any_src(), imm16());
        }
        a.bind(skip);
        break;
      }
      case 9: {  // LL/SC pair on a scratch word
        const auto offset = static_cast<std::int32_t>(
            rng.next_below(kScratchBytes / 4) * 4);
        a.addi(kT4, kS2, offset);
        a.ll(kT3, kT4);
        a.addi(kT3, kT3, 1);
        a.sc(kT3, kT4, kT3);
        break;
      }
    }
  }
  a.syscall(1);
  a.d_align(8);
  a.bind_data(scratch);
  a.d_space(kScratchBytes);
  auto result = a.finalize();
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.take() : isa::Program{};
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, EngineMatchesReference) {
  const isa::Program program = random_program(GetParam(), 400);

  // Production engine.
  mem::AddressSpace engine_space(32u << 20, 4096);
  engine_space.load_program(program);
  engine_space.set_all_access(mem::PageAccess::kReadWrite);
  DbtConfig config;
  LlscTable llsc;
  TranslationCache cache(engine_space, config, false, nullptr);
  ExecEngine engine(engine_space, nullptr, llsc, cache, config, false,
                    nullptr);
  CpuContext engine_ctx;
  engine_ctx.pc = program.entry;
  engine_ctx.tid = 1;
  const ExecResult engine_result = engine.run(engine_ctx, 1'000'000);
  ASSERT_EQ(engine_result.reason, StopReason::kSyscall)
      << engine_result.error;

  // Reference interpreter.
  mem::AddressSpace ref_space(32u << 20, 4096);
  ref_space.load_program(program);
  CpuContext ref_ctx;
  ref_ctx.pc = program.entry;
  ref_ctx.tid = 1;
  const ReferenceResult ref_result =
      reference_run(ref_ctx, ref_space, 1'000'000);
  ASSERT_EQ(ref_result.stop, ReferenceResult::Stop::kSyscall)
      << ref_result.error;

  // Bit-identical outcomes.
  EXPECT_EQ(engine_result.insns, ref_result.insns);
  EXPECT_EQ(engine_ctx.pc, ref_ctx.pc);
  EXPECT_EQ(engine_ctx.gpr, ref_ctx.gpr);
  for (unsigned i = 0; i < isa::kNumFpr; ++i) {
    std::uint64_t a_bits;
    std::uint64_t b_bits;
    std::memcpy(&a_bits, &engine_ctx.fpr[i], 8);
    std::memcpy(&b_bits, &ref_ctx.fpr[i], 8);
    EXPECT_EQ(a_bits, b_bits) << "f" << i;
  }
  const GuestAddr scratch = program.symbol("scratch");
  for (std::uint32_t off = 0; off < kScratchBytes; off += 8) {
    EXPECT_EQ(engine_space.load(scratch + off, 8),
              ref_space.load(scratch + off, 8))
        << "scratch+" << off;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace dqemu::dbt
