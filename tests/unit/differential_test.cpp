// Differential property tests: random programs through the production
// ExecEngine vs the independent reference interpreter must produce
// bit-identical final CPU and memory state.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "dbt/exec.hpp"
#include "dbt/reference_interp.hpp"
#include "dbt/translation.hpp"
#include "isa/assembler.hpp"

namespace dqemu::dbt {
namespace {

using isa::Assembler;
using enum isa::Reg;
using enum isa::FReg;

constexpr std::uint32_t kScratchBytes = 2048;

/// Emits `length` random but well-defined operations: ALU/imm/FP ops over
/// all registers, aligned loads/stores into a scratch buffer addressed via
/// s2, short forward branches, LL/SC pairs. With `reserve_s1`, s1 is never
/// a destination (the looped programs use it as their trip counter).
void emit_random_ops(Rng& rng, Assembler& a, unsigned length,
                     bool reserve_s1) {
  auto any_gpr = [&] {
    // Never rd = s2 (the base would wander off the scratch region), nor
    // s1 when it is the caller's loop counter.
    std::uint8_t reg;
    do {
      reg = static_cast<std::uint8_t>(rng.next_below(16));
    } while (reg == kS2 || (reserve_s1 && reg == kS1));
    return static_cast<isa::Reg>(reg);
  };
  auto any_src = [&] { return static_cast<isa::Reg>(rng.next_below(16)); };
  auto any_fpr = [&] { return static_cast<isa::FReg>(rng.next_below(16)); };
  auto imm16 = [&] { return std::int32_t(rng.next_below(65536)) - 32768; };

  for (unsigned i = 0; i < length; ++i) {
    switch (rng.next_below(10)) {
      case 0: case 1: case 2: {  // R-type integer
        static constexpr void (Assembler::*kOps[])(isa::Reg, isa::Reg,
                                                   isa::Reg) = {
            &Assembler::add, &Assembler::sub, &Assembler::mul,
            &Assembler::div, &Assembler::divu, &Assembler::rem,
            &Assembler::remu, &Assembler::and_, &Assembler::or_,
            &Assembler::xor_, &Assembler::sll, &Assembler::srl,
            &Assembler::sra, &Assembler::slt, &Assembler::sltu};
        (a.*kOps[rng.next_below(std::size(kOps))])(any_gpr(), any_src(),
                                                   any_src());
        break;
      }
      case 3: case 4: {  // I-type integer
        static constexpr void (Assembler::*kOps[])(isa::Reg, isa::Reg,
                                                   std::int32_t) = {
            &Assembler::addi, &Assembler::andi, &Assembler::ori,
            &Assembler::xori, &Assembler::slli, &Assembler::srli,
            &Assembler::srai, &Assembler::slti, &Assembler::sltiu};
        (a.*kOps[rng.next_below(std::size(kOps))])(any_gpr(), any_src(),
                                                   imm16());
        break;
      }
      case 5: {  // aligned store into scratch
        const std::uint32_t width = 1u << rng.next_below(3);  // 1/2/4
        const auto offset = static_cast<std::int32_t>(
            rng.next_below(kScratchBytes / width) * width);
        if (width == 1) a.sb(kS2, any_src(), offset);
        else if (width == 2) a.sh(kS2, any_src(), offset);
        else a.sw(kS2, any_src(), offset);
        break;
      }
      case 6: {  // aligned load from scratch
        const std::uint32_t width = 1u << rng.next_below(3);
        const auto offset = static_cast<std::int32_t>(
            rng.next_below(kScratchBytes / width) * width);
        if (width == 1) a.lbu(any_gpr(), kS2, offset);
        else if (width == 2) a.lh(any_gpr(), kS2, offset);
        else a.lw(any_gpr(), kS2, offset);
        break;
      }
      case 7: {  // FP arithmetic (total functions only: keep values finite)
        static constexpr void (Assembler::*kOps[])(isa::FReg, isa::FReg,
                                                   isa::FReg) = {
            &Assembler::fadd, &Assembler::fsub, &Assembler::fmul,
            &Assembler::fmin, &Assembler::fmax};
        (a.*kOps[rng.next_below(std::size(kOps))])(any_fpr(), any_fpr(),
                                                   any_fpr());
        break;
      }
      case 8: {  // short forward branch over 1-3 instructions
        auto skip = a.make_label();
        if (rng.next_below(2) == 0) {
          a.beq(any_src(), any_src(), skip);
        } else {
          a.blt(any_src(), any_src(), skip);
        }
        const std::uint64_t body = 1 + rng.next_below(3);
        for (std::uint64_t k = 0; k < body; ++k) {
          a.addi(any_gpr(), any_src(), imm16());
        }
        a.bind(skip);
        break;
      }
      case 9: {  // LL/SC pair on a scratch word
        const auto offset = static_cast<std::int32_t>(
            rng.next_below(kScratchBytes / 4) * 4);
        a.addi(kT4, kS2, offset);
        a.ll(kT3, kT4);
        a.addi(kT3, kT3, 1);
        a.sc(kT3, kT4, kT3);
        break;
      }
    }
  }
}

/// Seeds every GPR/FPR with random values (s2 keeps the scratch base).
void seed_registers(Rng& rng, Assembler& a) {
  for (unsigned reg = 1; reg < 16; ++reg) {
    if (reg == kS2) continue;
    a.li(static_cast<isa::Reg>(reg), std::int64_t(std::int32_t(rng.next())));
  }
  for (unsigned reg = 0; reg < 16; ++reg) {
    a.fli(static_cast<isa::FReg>(reg), rng.next_double(-100.0, 100.0), kT4);
  }
  // (fli clobbered t4; reseed it.)
  a.li(kT4, std::int64_t(std::int32_t(rng.next())));
}

isa::Program finalize_program(Assembler& a, Assembler::Label scratch) {
  a.syscall(1);
  a.d_align(8);
  a.bind_data(scratch);
  a.d_space(kScratchBytes);
  auto result = a.finalize();
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.take() : isa::Program{};
}

/// Straight-line random program ending in a syscall.
isa::Program random_program(std::uint64_t seed, unsigned length) {
  Rng rng(seed);
  Assembler a;
  auto scratch = a.make_label("scratch");
  a.la(kS2, scratch);  // stable base register for memory ops
  seed_registers(rng, a);
  emit_random_ops(rng, a, length, /*reserve_s1=*/false);
  return finalize_program(a, scratch);
}

/// Random body wrapped in a counted loop (s1 = trip counter). The backward
/// branch makes the body hot, so with a low sb_hot_threshold the superblock
/// tier stitches and re-executes it — and the loop-closing addi+bne is
/// exactly the compare-and-branch fusion shape, so fusion always fires.
isa::Program looped_random_program(std::uint64_t seed, unsigned body_length,
                                   std::uint32_t reps) {
  Rng rng(seed);
  Assembler a;
  auto scratch = a.make_label("scratch");
  a.la(kS2, scratch);
  seed_registers(rng, a);
  a.li(kS1, static_cast<std::int64_t>(reps));
  Assembler::Label loop = a.here();
  emit_random_ops(rng, a, body_length, /*reserve_s1=*/true);
  a.addi(kS1, kS1, -1);
  a.bne(kS1, kZero, loop);
  return finalize_program(a, scratch);
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, EngineMatchesReference) {
  const isa::Program program = random_program(GetParam(), 400);

  // Production engine.
  mem::AddressSpace engine_space(32u << 20, 4096);
  engine_space.load_program(program);
  engine_space.set_all_access(mem::PageAccess::kReadWrite);
  DbtConfig config;
  LlscTable llsc;
  TranslationCache cache(engine_space, config, false, nullptr);
  ExecEngine engine(engine_space, nullptr, llsc, cache, config, false,
                    nullptr);
  CpuContext engine_ctx;
  engine_ctx.pc = program.entry;
  engine_ctx.tid = 1;
  const ExecResult engine_result = engine.run(engine_ctx, 1'000'000);
  ASSERT_EQ(engine_result.reason, StopReason::kSyscall)
      << engine_result.error;

  // Reference interpreter.
  mem::AddressSpace ref_space(32u << 20, 4096);
  ref_space.load_program(program);
  CpuContext ref_ctx;
  ref_ctx.pc = program.entry;
  ref_ctx.tid = 1;
  const ReferenceResult ref_result =
      reference_run(ref_ctx, ref_space, 1'000'000);
  ASSERT_EQ(ref_result.stop, ReferenceResult::Stop::kSyscall)
      << ref_result.error;

  // Bit-identical outcomes.
  EXPECT_EQ(engine_result.insns, ref_result.insns);
  EXPECT_EQ(engine_ctx.pc, ref_ctx.pc);
  EXPECT_EQ(engine_ctx.gpr, ref_ctx.gpr);
  for (unsigned i = 0; i < isa::kNumFpr; ++i) {
    std::uint64_t a_bits;
    std::uint64_t b_bits;
    std::memcpy(&a_bits, &engine_ctx.fpr[i], 8);
    std::memcpy(&b_bits, &ref_ctx.fpr[i], 8);
    EXPECT_EQ(a_bits, b_bits) << "f" << i;
  }
  const GuestAddr scratch = program.symbol("scratch");
  for (std::uint32_t off = 0; off < kScratchBytes; off += 8) {
    EXPECT_EQ(engine_space.load(scratch + off, 8),
              ref_space.load(scratch + off, 8))
        << "scratch+" << off;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---------------------------------------------------------------------------
// Looped variants: the counted loop makes its blocks hot, so with a low
// sb_hot_threshold the superblock tier stitches and re-executes them. Every
// engine mode — superblocks with fusion, superblocks without fusion, and
// superblocks disabled — must match the reference interpreter bit for bit,
// including the retired-instruction count.

struct EngineRun {
  ExecResult result;
  CpuContext ctx;
  std::vector<std::uint64_t> scratch;  // final scratch buffer, 8B words
  std::size_t superblocks = 0;         // traces formed during the run
};

EngineRun run_engine(const isa::Program& program, const DbtConfig& dbt) {
  mem::AddressSpace space(32u << 20, 4096);
  space.load_program(program);
  space.set_all_access(mem::PageAccess::kReadWrite);
  LlscTable llsc;
  TranslationCache cache(space, dbt, false, nullptr);
  ExecEngine engine(space, nullptr, llsc, cache, dbt, false, nullptr);
  EngineRun out;
  out.ctx.pc = program.entry;
  out.ctx.tid = 1;
  out.result = engine.run(out.ctx, 10'000'000);
  out.superblocks = cache.superblock_count();
  const GuestAddr scratch = program.symbol("scratch");
  for (std::uint32_t off = 0; off < kScratchBytes; off += 8) {
    out.scratch.push_back(space.load(scratch + off, 8));
  }
  return out;
}

class LoopedDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LoopedDifferential, SuperblockEngineMatchesReference) {
  const isa::Program program =
      looped_random_program(GetParam(), /*body_length=*/60, /*reps=*/40);

  // Reference interpreter.
  mem::AddressSpace ref_space(32u << 20, 4096);
  ref_space.load_program(program);
  CpuContext ref_ctx;
  ref_ctx.pc = program.entry;
  ref_ctx.tid = 1;
  const ReferenceResult ref = reference_run(ref_ctx, ref_space, 10'000'000);
  ASSERT_EQ(ref.stop, ReferenceResult::Stop::kSyscall) << ref.error;

  DbtConfig sb_fused;
  sb_fused.enable_superblocks = true;
  sb_fused.sb_hot_threshold = 4;
  sb_fused.sb_fusion = true;
  DbtConfig sb_plain = sb_fused;
  sb_plain.sb_fusion = false;
  DbtConfig no_sb;
  no_sb.enable_superblocks = false;

  const struct {
    const char* name;
    const DbtConfig* dbt;
  } kModes[] = {
      {"superblocks+fusion", &sb_fused},
      {"superblocks, fusion off", &sb_plain},
      {"block engine", &no_sb},
  };
  const GuestAddr scratch = program.symbol("scratch");
  for (const auto& mode : kModes) {
    SCOPED_TRACE(mode.name);
    const EngineRun run = run_engine(program, *mode.dbt);
    ASSERT_EQ(run.result.reason, StopReason::kSyscall) << run.result.error;
#if DQEMU_SUPERBLOCKS_ENABLED
    // The looped programs must actually reach the trace tier — a fuzz
    // pass that never forms a superblock would prove nothing.
    if (mode.dbt->enable_superblocks) {
      EXPECT_GT(run.superblocks, 0u);
    }
#endif
    EXPECT_EQ(run.result.insns, ref.insns);
    EXPECT_EQ(run.ctx.pc, ref_ctx.pc);
    EXPECT_EQ(run.ctx.gpr, ref_ctx.gpr);
    for (unsigned i = 0; i < isa::kNumFpr; ++i) {
      std::uint64_t a_bits;
      std::uint64_t b_bits;
      std::memcpy(&a_bits, &run.ctx.fpr[i], 8);
      std::memcpy(&b_bits, &ref_ctx.fpr[i], 8);
      EXPECT_EQ(a_bits, b_bits) << "f" << i;
    }
    for (std::uint32_t off = 0; off < kScratchBytes; off += 8) {
      EXPECT_EQ(run.scratch[off / 8], ref_space.load(scratch + off, 8))
          << "scratch+" << off;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LoopedDifferential,
                         ::testing::Range<std::uint64_t>(100, 116));

}  // namespace
}  // namespace dqemu::dbt
