// Unit tests: DBT translation cache, execution engine semantics, LL/SC.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "dbt/exec.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "isa/assembler.hpp"

namespace dqemu::dbt {
namespace {

using isa::Assembler;
using enum isa::Reg;
using enum isa::FReg;

/// Single-space harness: assemble, load, run with full access.
struct Harness {
  explicit Harness(std::function<void(Assembler&)> emit,
                   bool check_protection = false, DbtConfig dbt_config = {})
      : space(32u << 20, 4096),
        config(dbt_config),
        llsc(&stats),
        cache(space, config, check_protection, &stats),
        engine(space, &shadow, llsc, cache, config, check_protection, &stats),
        shadow(4096, 4) {
    Assembler a;
    emit(a);
    auto result = a.finalize();
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    program = result.take();
    space.load_program(program);
    if (!check_protection) {
      space.set_all_access(mem::PageAccess::kReadWrite);
    }
    ctx.pc = program.entry;
    ctx.tid = 1;
  }

  ExecResult run(std::uint64_t max_insns = 100000) {
    return engine.run(ctx, max_insns);
  }

  StatsRegistry stats;
  mem::AddressSpace space;
  DbtConfig config;
  LlscTable llsc;
  TranslationCache cache;
  ExecEngine engine;
  mem::ShadowMap shadow;
  isa::Program program;
  CpuContext ctx;
};

// ---- integer semantics (parameterized sweep) --------------------------------

struct AluCase {
  const char* name;
  void (Assembler::*emit)(isa::Reg, isa::Reg, isa::Reg);
  std::uint32_t a;
  std::uint32_t b;
  std::uint32_t expected;
};

class AluSemantics : public ::testing::TestWithParam<AluCase> {};

TEST_P(AluSemantics, ComputesExpected) {
  const AluCase& c = GetParam();
  Harness h([&](Assembler& a) {
    a.li(kT0, static_cast<std::int64_t>(static_cast<std::int32_t>(c.a)));
    a.li(kT1, static_cast<std::int64_t>(static_cast<std::int32_t>(c.b)));
    (a.*c.emit)(kT2, kT0, kT1);
    a.syscall(1);
  });
  const ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT2], c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    IntegerOps, AluSemantics,
    ::testing::Values(
        AluCase{"add", &Assembler::add, 7, 8, 15},
        AluCase{"add_wraps", &Assembler::add, 0xFFFFFFFF, 1, 0},
        AluCase{"sub", &Assembler::sub, 5, 9, std::uint32_t(-4)},
        AluCase{"mul", &Assembler::mul, 100, 200, 20000},
        AluCase{"mul_wraps", &Assembler::mul, 0x10000, 0x10000, 0},
        AluCase{"div_signed", &Assembler::div, std::uint32_t(-20), 3,
                std::uint32_t(-6)},
        AluCase{"div_by_zero", &Assembler::div, 20, 0, 0xFFFFFFFF},
        AluCase{"div_overflow", &Assembler::div, 0x80000000,
                std::uint32_t(-1), 0x80000000},
        AluCase{"divu", &Assembler::divu, 0xFFFFFFFE, 2, 0x7FFFFFFF},
        AluCase{"divu_by_zero", &Assembler::divu, 5, 0, 0xFFFFFFFF},
        AluCase{"rem_signed", &Assembler::rem, std::uint32_t(-20), 3,
                std::uint32_t(-2)},
        AluCase{"rem_by_zero", &Assembler::rem, 17, 0, 17},
        AluCase{"rem_overflow", &Assembler::rem, 0x80000000,
                std::uint32_t(-1), 0},
        AluCase{"remu", &Assembler::remu, 10, 3, 1},
        AluCase{"and", &Assembler::and_, 0xF0F0, 0xFF00, 0xF000},
        AluCase{"or", &Assembler::or_, 0xF0F0, 0x0F0F, 0xFFFF},
        AluCase{"xor", &Assembler::xor_, 0xFF, 0x0F, 0xF0},
        AluCase{"sll", &Assembler::sll, 1, 31, 0x80000000},
        AluCase{"sll_mod32", &Assembler::sll, 1, 33, 2},
        AluCase{"srl", &Assembler::srl, 0x80000000, 31, 1},
        AluCase{"sra_negative", &Assembler::sra, 0x80000000, 31, 0xFFFFFFFF},
        AluCase{"slt_true", &Assembler::slt, std::uint32_t(-1), 0, 1},
        AluCase{"slt_false", &Assembler::slt, 0, std::uint32_t(-1), 0},
        AluCase{"sltu_true", &Assembler::sltu, 0, std::uint32_t(-1), 1},
        AluCase{"sltu_false", &Assembler::sltu, std::uint32_t(-1), 0, 0}),
    [](const ::testing::TestParamInfo<AluCase>& param) {
      return param.param.name;
    });

TEST(ExecSemantics, ZeroRegisterIsImmutable) {
  Harness h([](Assembler& a) {
    a.addi(kZero, kZero, 123);
    a.li(kT0, 5);
    a.add(kZero, kT0, kT0);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[0], 0u);
}

TEST(ExecSemantics, LuiAuipc) {
  Harness h([](Assembler& a) {
    a.lui(kT0, 0x12345);
    a.auipc(kT1, 1);  // pc of auipc + 0x1000
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT0], 0x12345000u);
  EXPECT_EQ(h.ctx.gpr[kT1], isa::kDefaultCodeOrigin + 4 + 0x1000);
}

TEST(ExecSemantics, LoadSignExtension) {
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.lb(kT1, kT0, 0);
    a.lbu(kT2, kT0, 0);
    a.lh(kT3, kT0, 0);
    a.lhu(kT4, kT0, 0);
    a.syscall(1);
    a.bind_data(data);
    a.d_word(0x0000FF80);  // byte 0 = 0x80, half = 0xFF80
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT1], 0xFFFFFF80u);
  EXPECT_EQ(h.ctx.gpr[kT2], 0x80u);
  EXPECT_EQ(h.ctx.gpr[kT3], 0xFFFFFF80u);
  EXPECT_EQ(h.ctx.gpr[kT4], 0xFF80u);
}

TEST(ExecSemantics, StoreWidths) {
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.li(kT1, 0x11223344);
    a.sb(kT0, kT1, 0);
    a.sh(kT0, kT1, 2);
    a.sw(kT0, kT1, 4);
    a.syscall(1);
    a.bind_data(data);
    a.d_space(8);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  const GuestAddr base = h.program.symbol("data");
  EXPECT_EQ(h.space.load(base, 4), 0x33440044u);
  EXPECT_EQ(h.space.load(base + 4, 4), 0x11223344u);
}

TEST(ExecSemantics, BranchTakenAndNotTaken) {
  Harness h([](Assembler& a) {
    auto target = a.make_label();
    auto join = a.make_label();
    a.li(kT0, 1);
    a.beq(kT0, kZero, target);  // not taken
    a.li(kT1, 10);
    a.bne(kT0, kZero, join);    // taken
    a.bind(target);
    a.li(kT1, 20);
    a.bind(join);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT1], 10u);
}

TEST(ExecSemantics, JalLinksAndJalrReturns) {
  Harness h([](Assembler& a) {
    auto func = a.make_label("func");
    a.call(func);           // jal ra
    a.li(kT1, 99);
    a.syscall(1);
    a.bind(func);
    a.li(kT0, 55);
    a.ret();                // jalr zero, ra
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT0], 55u);
  EXPECT_EQ(h.ctx.gpr[kT1], 99u);
}

TEST(ExecSemantics, JalrClearsLowBits) {
  Harness h([](Assembler& a) {
    auto target = a.make_label("t");
    a.la(kT0, target);
    a.ori(kT0, kT0, 2);  // misalign on purpose
    a.jalr(kRa, kT0, 0); // & ~3 -> lands on target
    a.bind(target);
    a.li(kT1, 7);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT1], 7u);
}

TEST(ExecSemantics, HintSetsGroupAndSentinelClears) {
  Harness h([](Assembler& a) {
    a.hint(5);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.hint_group, 5);

  Harness h2([](Assembler& a) {
    a.hint(3);
    a.hint(0xFFFF);
    a.syscall(1);
  });
  ASSERT_EQ(h2.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h2.ctx.hint_group, -1);
}

TEST(ExecSemantics, SyscallAdvancesPcAndReportsNumber) {
  Harness h([](Assembler& a) {
    a.nop();
    a.syscall(13);
  });
  const ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  EXPECT_EQ(r.syscall_num, 13);
  EXPECT_EQ(h.ctx.pc, isa::kDefaultCodeOrigin + 8);
  EXPECT_EQ(r.insns, 2u);
}

// ---- FP ----------------------------------------------------------------------

TEST(ExecSemantics, FpArithmetic) {
  Harness h([](Assembler& a) {
    a.fli(kF0, 3.0);
    a.fli(kF1, 4.0);
    a.fmul(kF2, kF0, kF1);   // 12
    a.fadd(kF2, kF2, kF1);   // 16
    a.fsqrt(kF3, kF2);       // 4
    a.fdiv(kF4, kF3, kF0);   // 4/3
    a.fneg(kF5, kF4);
    a.fabs_(kF6, kF5);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_DOUBLE_EQ(h.ctx.fpr[kF2], 16.0);
  EXPECT_DOUBLE_EQ(h.ctx.fpr[kF3], 4.0);
  EXPECT_DOUBLE_EQ(h.ctx.fpr[kF6], 4.0 / 3.0);
  EXPECT_LT(h.ctx.fpr[kF5], 0.0);
}

TEST(ExecSemantics, FpSpecials) {
  Harness h([](Assembler& a) {
    a.fli(kF0, 1.0);
    a.fexp(kF1, kF0);   // e
    a.flog(kF2, kF1);   // 1
    a.fli(kF3, 2.0);
    a.fpow(kF4, kF3, kF3);  // 4
    a.ferf(kF5, kF0);
    a.fsin(kF6, kF0);
    a.fcos(kF7, kF0);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_NEAR(h.ctx.fpr[kF1], std::exp(1.0), 1e-12);
  EXPECT_NEAR(h.ctx.fpr[kF2], 1.0, 1e-12);
  EXPECT_NEAR(h.ctx.fpr[kF4], 4.0, 1e-12);
  EXPECT_NEAR(h.ctx.fpr[kF5], std::erf(1.0), 1e-12);
  EXPECT_NEAR(h.ctx.fpr[kF6], std::sin(1.0), 1e-12);
  EXPECT_NEAR(h.ctx.fpr[kF7], std::cos(1.0), 1e-12);
}

TEST(ExecSemantics, FpConversionsAndCompares) {
  Harness h([](Assembler& a) {
    a.li(kT0, -7);
    a.fcvt_d_w(kF0, kT0);     // -7.0
    a.fli(kF1, 2.5);
    a.fcvt_w_d(kT1, kF1);     // trunc -> 2
    a.flt(kT2, kF0, kF1);     // -7 < 2.5 -> 1
    a.fle(kT3, kF1, kF1);     // 1
    a.feq(kT4, kF0, kF1);     // 0
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_DOUBLE_EQ(h.ctx.fpr[kF0], -7.0);
  EXPECT_EQ(h.ctx.gpr[kT1], 2u);
  EXPECT_EQ(h.ctx.gpr[kT2], 1u);
  EXPECT_EQ(h.ctx.gpr[kT3], 1u);
  EXPECT_EQ(h.ctx.gpr[kT4], 0u);
}

TEST(ExecSemantics, FcvtSaturates) {
  Harness h([](Assembler& a) {
    a.fli(kF0, 1e20);
    a.fcvt_w_d(kT0, kF0);
    a.fli(kF1, -1e20);
    a.fcvt_w_d(kT1, kF1);
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT0], 0x7FFFFFFFu);
  EXPECT_EQ(h.ctx.gpr[kT1], 0x80000000u);
}

TEST(ExecSemantics, FldFsdRoundtrip) {
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.fld(kF0, kT0, 0);
    a.fadd(kF0, kF0, kF0);
    a.fsd(kT0, kF0, 8);
    a.syscall(1);
    a.bind_data(data);
    a.d_align(8);
    a.d_double(1.25);
    a.d_space(8);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  const GuestAddr base = h.program.symbol("data");
  double out = 0;
  const std::uint64_t raw = h.space.load(base + 8, 8);
  std::memcpy(&out, &raw, 8);
  EXPECT_DOUBLE_EQ(out, 2.5);
}

// ---- guest errors -------------------------------------------------------------

TEST(ExecErrors, MisalignedLoadIsGuestError) {
  Harness h([](Assembler& a) {
    a.li(kT0, 0x1001);
    a.lw(kT1, kT0, 0);
  });
  const ExecResult r = h.run();
  EXPECT_EQ(r.reason, StopReason::kGuestError);
  EXPECT_NE(r.error.find("misaligned"), std::string::npos);
}

TEST(ExecErrors, OutOfBoundsIsGuestError) {
  Harness h([](Assembler& a) {
    a.li(kT0, -4);  // 0xFFFFFFFC, beyond the 32 MiB space
    a.lw(kT1, kT0, 0);
  });
  EXPECT_EQ(h.run().reason, StopReason::kGuestError);
}

TEST(ExecErrors, InvalidOpcodeIsGuestError) {
  Harness h([](Assembler& a) {
    a.nop();  // placeholder; we jump into data below
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.jalr(kZero, kT0, 0);
    a.bind_data(data);
    a.d_word(0);  // opcode 0: unassigned
  });
  EXPECT_EQ(h.run().reason, StopReason::kGuestError);
}

// ---- faults (protection on) -----------------------------------------------------

TEST(ExecFaults, ReadFaultReportsAddress) {
  Harness h(
      [](Assembler& a) {
        a.li(kT0, 0x00800000);
        a.lw(kT1, kT0, 0);
        a.syscall(1);
      },
      /*check_protection=*/true);
  // Code pages readable; target page not.
  for (std::uint32_t p = 0; p < h.space.num_pages(); ++p) {
    h.space.set_access(p, mem::PageAccess::kRead);
  }
  h.space.set_access(0x00800000 / 4096, mem::PageAccess::kNone);
  const ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kPageFault);
  EXPECT_EQ(r.fault_addr, 0x00800000u);
  EXPECT_FALSE(r.fault_is_write);
  EXPECT_FALSE(r.fault_is_ifetch);
  // pc points at the faulting instruction for re-execution.
  const auto pc_insn = isa::decode(
      static_cast<std::uint32_t>(h.space.load(h.ctx.pc, 4)));
  ASSERT_TRUE(pc_insn.has_value());
  EXPECT_EQ(pc_insn->op, isa::Opcode::kLw);
}

TEST(ExecFaults, WriteToReadOnlyFaults) {
  Harness h(
      [](Assembler& a) {
        a.li(kT0, 0x00800000);
        a.sw(kT0, kT0, 0);
        a.syscall(1);
      },
      /*check_protection=*/true);
  for (std::uint32_t p = 0; p < h.space.num_pages(); ++p) {
    h.space.set_access(p, mem::PageAccess::kRead);
  }
  const ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kPageFault);
  EXPECT_TRUE(r.fault_is_write);
  // Grant write access; re-running retries the store and completes.
  h.space.set_access(0x00800000 / 4096, mem::PageAccess::kReadWrite);
  EXPECT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.space.load(0x00800000, 4), 0x00800000u);
}

TEST(ExecFaults, CodeFetchFaultIsIfetch) {
  Harness h(
      [](Assembler& a) {
        a.nop();
        a.syscall(1);
      },
      /*check_protection=*/true);
  // No page readable: translation itself faults.
  const ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kPageFault);
  EXPECT_TRUE(r.fault_is_ifetch);
  EXPECT_EQ(r.fault_addr, h.program.entry);
}

TEST(ExecFaults, QuantumStopsAtBlockBoundary) {
  Harness h([](Assembler& a) {
    auto loop = a.here();
    a.addi(kT0, kT0, 1);
    a.j(loop);
  });
  const ExecResult r = h.run(10);
  EXPECT_EQ(r.reason, StopReason::kQuantum);
  EXPECT_GE(r.insns, 10u);
  EXPECT_LE(r.insns, 12u);  // may overshoot by one block
  // Resuming continues counting where it stopped.
  const std::uint32_t before = h.ctx.gpr[kT0];
  (void)h.run(10);
  EXPECT_GT(h.ctx.gpr[kT0], before);
}

// ---- translation cache ---------------------------------------------------------

TEST(TranslationCacheTest, CachesAndChains) {
  // Block-engine chaining behavior: superblocks off, or the hot loop would
  // migrate onto a trace and stop exercising the chain slots.
  DbtConfig no_sb;
  no_sb.enable_superblocks = false;
  Harness h(
      [](Assembler& a) {
        auto loop = a.here();
        a.addi(kT0, kT0, 1);
        a.slti(kT1, kT0, 100);
        a.bne(kT1, kZero, loop);
        a.syscall(1);
      },
      /*check_protection=*/false, no_sb);
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT0], 100u);
  EXPECT_GT(h.stats.get("dbt.tcache_hit") + h.stats.get("dbt.chain_hit"), 90u);
  EXPECT_LE(h.stats.get("dbt.blocks_translated"), 3u);
}

TEST(TranslationCacheTest, BlocksEndAtMaxLength) {
  Harness h([](Assembler& a) {
    for (std::uint32_t i = 0; i < 2 * kMaxBlockInsns; ++i) a.nop();
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  const auto* tb = h.cache.lookup(h.program.entry);
  ASSERT_NE(tb, nullptr);
  EXPECT_EQ(tb->insn_count(), kMaxBlockInsns);
}

TEST(TranslationCacheTest, InvalidatePageDropsBlocks) {
  Harness h([](Assembler& a) {
    a.nop();
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_GT(h.cache.size(), 0u);
  h.cache.invalidate_page(h.program.entry / 4096);
  EXPECT_EQ(h.cache.size(), 0u);
}

TEST(TranslationCacheTest, TranslateChargesOneTimeCost) {
  Harness h([](Assembler& a) {
    a.nop();
    a.syscall(1);
  });
  const ExecResult first = h.run();
  EXPECT_GT(first.translate_cycles, 0u);
  h.ctx.pc = h.program.entry;
  const ExecResult second = h.run();
  EXPECT_EQ(second.translate_cycles, 0u);  // cached now
}

TEST(TranslationCacheTest, InvalidatePagePreservesSurvivingChains) {
  // Regression: invalidate_page used to wipe EVERY chain pointer in the
  // cache. Only chains into the dropped page may be cleared; chains
  // between surviving blocks must stay linked (and no dangling pointer to
  // a dropped block may survive).
  Harness h([](Assembler& a) {
    auto loop = a.make_label("loop");
    auto far = a.make_label("far");
    a.li(kT0, 2);
    a.bind(loop);
    a.addi(kT0, kT0, -1);
    a.bne(kT0, kZero, far);  // taken on the 1st iteration, not on the 2nd
    a.syscall(1);
    for (int i = 0; i < 1200; ++i) a.nop();  // push `far` onto another page
    a.bind(far);
    a.addi(kT2, kT2, 1);
    a.j(loop);
  });
  // Two runs so both arcs get chained (targets translate on first touch).
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  h.ctx.pc = h.program.entry;
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT2], 2u);

  const GuestAddr loop_pc = h.program.symbol("loop");
  const GuestAddr far_pc = h.program.symbol("far");
  TranslationBlock* entry_tb = h.cache.lookup(h.program.entry);
  TranslationBlock* loop_tb = h.cache.lookup(loop_pc);
  ASSERT_NE(entry_tb, nullptr);
  ASSERT_NE(loop_tb, nullptr);
  ASSERT_NE(entry_tb->next_taken, nullptr);  // entry block -> far
  EXPECT_EQ(entry_tb->next_taken->start_pc, far_pc);
  TranslationBlock* fall_tb = loop_tb->next_fall;  // loop block -> syscall
  ASSERT_NE(fall_tb, nullptr);

  const std::uint32_t far_page = far_pc / 4096;
  ASSERT_NE(far_page, loop_pc / 4096);
  const std::uint64_t gen_before = h.cache.generation();
  h.cache.invalidate_page(far_page);
  EXPECT_GT(h.cache.generation(), gen_before);
  EXPECT_EQ(entry_tb->next_taken, nullptr);  // into dropped page: cleared
  EXPECT_EQ(loop_tb->next_fall, fall_tb);    // surviving chain: intact
  EXPECT_TRUE(h.cache.contains_block(fall_tb));

  // Re-running retranslates `far` and still computes correctly — with the
  // fast paths on this also exercises indirect-jump-cache invalidation
  // across invalidate_page (its generation snapshot is now stale).
  h.ctx.pc = h.program.entry;
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT2], 3u);
}

// ---- software TLB ---------------------------------------------------------------

TEST(FastPathTlb, ProtectionDowngradeInvalidates) {
  // DSM-style revoke: after a page is downgraded to read-only, a cached
  // write permission must not survive into the next quantum.
  Harness h(
      [](Assembler& a) {
        a.li(kT0, 0x00800000);
        a.li(kT1, 1);
        a.sw(kT0, kT1, 0);
        a.syscall(1);
      },
      /*check_protection=*/true);
  for (std::uint32_t p = 0; p < h.space.num_pages(); ++p) {
    h.space.set_access(p, mem::PageAccess::kReadWrite);
  }
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);  // store OK, TLB warm
  h.ctx.pc = h.program.entry;
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);  // served from the TLB
  h.space.set_access(0x00800000 / 4096, mem::PageAccess::kRead);
  h.ctx.pc = h.program.entry;
  const ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kPageFault);
  EXPECT_TRUE(r.fault_is_write);
  EXPECT_EQ(r.fault_addr, 0x00800000u);
}

TEST(FastPathTlb, ShadowSplitInvalidates) {
  // After add_split the page's identity mapping is gone: the next run must
  // re-resolve through the shadow map, not a stale TLB entry.
  Harness h([](Assembler& a) {
    a.li(kT0, 0x00900000);
    a.li(kT2, 0x00900C00);
    a.li(kT1, 0xAB);
    a.sb(kT0, kT1, 0);   // shard 0
    a.sb(kT2, kT1, 0);   // shard 3
    a.syscall(1);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);  // identity entry cached
  const std::uint32_t page = 0x00900000 / 4096;
  EXPECT_TRUE(h.space.page_materialized(page));
  const std::uint32_t shadows[4] = {0x1000, 0x1001, 0x1002, 0x1003};
  h.shadow.add_split(page, shadows);
  h.ctx.pc = h.program.entry;
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.space.load(0x1000u * 4096 + 0, 1), 0xABu);
  EXPECT_EQ(h.space.load(0x1003u * 4096 + 0xC00, 1), 0xABu);
}

#if DQEMU_FASTPATH_ENABLED
TEST(FastPathTlb, ManualInvalidateForcesRefill) {
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.lw(kT1, kT0, 0);
    a.syscall(1);
    a.bind_data(data);
    a.d_word(5);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  const std::uint64_t misses_warm = h.stats.get("dbt.tlb_miss");
  EXPECT_GE(misses_warm, 1u);
  h.ctx.pc = h.program.entry;
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  // Nothing changed between quanta: the warm entry keeps serving.
  EXPECT_EQ(h.stats.get("dbt.tlb_miss"), misses_warm);
  EXPECT_GE(h.stats.get("dbt.tlb_hit"), 1u);
  h.engine.invalidate_fast_caches();
  h.ctx.pc = h.program.entry;
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_GT(h.stats.get("dbt.tlb_miss"), misses_warm);
}
#endif

// ---- LL/SC ---------------------------------------------------------------------

TEST(Llsc, PairSucceedsUncontended) {
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.ll(kT1, kT0);
    a.addi(kT1, kT1, 1);
    a.sc(kT2, kT0, kT1);
    a.syscall(1);
    a.bind_data(data);
    a.d_word(41);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT2], 0u);  // success
  EXPECT_EQ(h.space.load(h.program.symbol("data"), 4), 42u);
}

TEST(Llsc, ScWithoutLlFails) {
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    a.la(kT0, data);
    a.li(kT1, 7);
    a.sc(kT2, kT0, kT1);
    a.syscall(1);
    a.bind_data(data);
    a.d_word(0);
  });
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  EXPECT_EQ(h.ctx.gpr[kT2], 1u);  // failure
  EXPECT_EQ(h.space.load(h.program.symbol("data"), 4), 0u);  // no store
}

TEST(Llsc, InterveningStoreBreaksReservationAba) {
  // The ABA scenario of section 4.4: another thread writes the SAME value
  // between LL and SC. A CAS-based emulation would succeed (value matches);
  // the hash-table scheme must fail the SC regardless of the value.
  LlscTable table;
  table.on_ll(0x1000, /*tid=*/1);       // thread 1 reads A
  table.on_store(0x1000, /*tid=*/2);    // thread 2 stores B then A again
  table.on_store(0x1000, /*tid=*/2);
  EXPECT_FALSE(table.on_sc(0x1000, 1));  // SC fails: no ABA window
}

TEST(Llsc, OwnStoreKeepsReservation) {
  LlscTable table;
  table.on_ll(0x2000, 3);
  table.on_store(0x2000, 3);  // same thread
  EXPECT_TRUE(table.on_sc(0x2000, 3));
}

TEST(Llsc, ReservationIsPerAddressAndConsumed) {
  LlscTable table;
  table.on_ll(0x100, 1);
  table.on_ll(0x200, 2);
  EXPECT_FALSE(table.on_sc(0x100, 2));  // wrong thread
  EXPECT_TRUE(table.on_sc(0x100, 1));
  EXPECT_FALSE(table.on_sc(0x100, 1));  // consumed
  EXPECT_TRUE(table.on_sc(0x200, 2));
}

TEST(Llsc, PageInvalidationKillsReservationsFalsePositive) {
  LlscTable table;
  table.on_ll(0x3000, 1);
  table.on_ll(0x3004, 2);
  table.on_ll(0x5000, 3);
  table.on_page_invalidate(3, 12);  // page 3 = addresses 0x3000..0x3FFF
  EXPECT_FALSE(table.on_sc(0x3000, 1));  // killed (possibly falsely)
  EXPECT_FALSE(table.on_sc(0x3004, 2));
  EXPECT_TRUE(table.on_sc(0x5000, 3));   // other page untouched
}

TEST(Llsc, LineFilterScreensStores) {
  // may_match is the DBT's LL/SC store-filter: false must PROVE no
  // reservation can match. Line bit = (addr >> 6) & 63.
  LlscTable table;
  EXPECT_FALSE(table.may_match(0x1000));  // empty table: everything screened
  table.on_ll(0x1000, 1);                 // line bit 0
  EXPECT_TRUE(table.may_match(0x1000));
  EXPECT_TRUE(table.may_match(0x1020));   // same 64-byte line
  EXPECT_FALSE(table.may_match(0x1040));  // next line: provably clean
  EXPECT_TRUE(table.may_match(0x2000));   // aliases bit 0 (conservative true)

  table.on_ll(0x1040, 2);                 // line bit 1
  EXPECT_TRUE(table.may_match(0x1040));
  // Draining one reservation must NOT clear the filter (bits are shared).
  EXPECT_TRUE(table.on_sc(0x1000, 1));
  EXPECT_TRUE(table.may_match(0x1040));
  // Draining to empty resets it.
  EXPECT_TRUE(table.on_sc(0x1040, 2));
  EXPECT_FALSE(table.may_match(0x1000));
  EXPECT_FALSE(table.may_match(0x1040));
}

TEST(Llsc, EngineFastPathStillBreaksReservationAcrossThreads) {
  // Engine-level: thread 1 opens a reservation and yields at a syscall;
  // thread 2 stores to the reserved word. The LL/SC store filter must NOT
  // let that store skip the snoop — thread 1's SC has to fail.
  Harness h([](Assembler& a) {
    auto data = a.make_label("data");
    auto t2code = a.make_label("t2code");
    a.la(kT0, data);
    a.ll(kT1, kT0);
    a.syscall(2);          // yield point: thread 2 runs here
    a.sc(kT2, kT0, kT1);   // must fail
    a.syscall(1);
    a.bind(t2code);
    a.la(kT0, data);
    a.li(kT1, 99);
    a.sw(kT0, kT1, 0);
    a.li(kT3, 7);          // unrelated line: filter may screen this one
    a.sw(kT0, kT3, 64);
    a.syscall(1);
    a.d_align(4096);       // line bits deterministic: data -> 0, data+64 -> 1
    a.bind_data(data);
    a.d_word(7);
    a.d_space(64);
  });
  ExecResult r = h.run();
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  ASSERT_EQ(r.syscall_num, 2);
  ASSERT_TRUE(h.llsc.has_reservation(h.program.symbol("data")));

  CpuContext ctx2;
  ctx2.pc = h.program.symbol("t2code");
  ctx2.tid = 2;
  ASSERT_EQ(h.engine.run(ctx2, 100000).reason, StopReason::kSyscall);
  EXPECT_FALSE(h.llsc.has_reservation(h.program.symbol("data")));
  EXPECT_GE(h.stats.get("llsc.store_kill"), 1u);

  r = h.run();  // thread 1 resumes at the SC
  ASSERT_EQ(r.reason, StopReason::kSyscall);
  ASSERT_EQ(r.syscall_num, 1);
  EXPECT_EQ(h.ctx.gpr[kT2], 1u);  // SC failed
  EXPECT_EQ(h.space.load(h.program.symbol("data"), 4), 99u);
#if DQEMU_FASTPATH_ENABLED
  // The off-line store (data+64) was screened without a table probe.
  EXPECT_GE(h.stats.get("dbt.llsc_fastpath"), 1u);
#endif
}

TEST(Llsc, RetargetingLlMovesReservation) {
  LlscTable table;
  table.on_ll(0x100, 1);
  table.on_ll(0x200, 1);  // same thread reserves elsewhere
  EXPECT_TRUE(table.on_sc(0x200, 1));
  // The first reservation still exists (per-address table).
  EXPECT_TRUE(table.on_sc(0x100, 1));
}

// ---- shadow-map integration -----------------------------------------------------

TEST(ExecShadow, AccessesRedirectToShadowPages) {
  Harness h([](Assembler& a) {
    a.li(kT0, 0x00900000);  // page 0x900
    a.li(kT1, 0xAB);
    a.sb(kT0, kT1, 0);      // offset 0 -> shard 0
    a.li(kT2, 0x00900C00);  // offset 0xC00 -> shard 3
    a.sb(kT2, kT1, 0);
    a.syscall(1);
  });
  const std::uint32_t page = 0x00900000 / 4096;
  const std::uint32_t shadows[4] = {0x1000, 0x1001, 0x1002, 0x1003};
  h.shadow.add_split(page, shadows);
  ASSERT_EQ(h.run().reason, StopReason::kSyscall);
  // Original page untouched; shadow pages hold the bytes at same offsets.
  EXPECT_FALSE(h.space.page_materialized(page));
  EXPECT_EQ(h.space.load(0x1000u * 4096 + 0, 1), 0xABu);
  EXPECT_EQ(h.space.load(0x1003u * 4096 + 0xC00, 1), 0xABu);
}

// ---- CpuContext ------------------------------------------------------------------

TEST(CpuContextTest, SerializeRoundtrip) {
  CpuContext ctx;
  for (unsigned i = 0; i < isa::kNumGpr; ++i) ctx.gpr[i] = i * 1000;
  for (unsigned i = 0; i < isa::kNumFpr; ++i) ctx.fpr[i] = i * 0.5;
  ctx.pc = 0x12340;
  ctx.tid = 77;
  ctx.hint_group = 3;
  std::vector<std::uint8_t> bytes(CpuContext::kWireBytes);
  ctx.serialize(bytes);
  const CpuContext back = CpuContext::deserialize(bytes);
  EXPECT_EQ(back.gpr, ctx.gpr);
  EXPECT_EQ(back.fpr, ctx.fpr);
  EXPECT_EQ(back.pc, ctx.pc);
  EXPECT_EQ(back.tid, ctx.tid);
  EXPECT_EQ(back.hint_group, ctx.hint_group);
}

}  // namespace
}  // namespace dqemu::dbt
