// Fault injection + reliable delivery (DESIGN.md §13).
//
// Three layers of coverage: the deterministic injector itself (pure decision
// stream), the reliable channel over a lossy raw Network (drop / duplicate /
// reorder / backoff / pure acks / pause windows), and full-cluster recovery
// scenarios (drop-the-grant, drop-the-ack, duplicated lease recall,
// watchdog re-issue) where the guest result must come out exactly as on a
// perfect wire.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dsm/wire.hpp"
#include "net/fault/fault_injector.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"
#include "sys/wire.hpp"
#include "testutil.hpp"
#include "workloads/micro.hpp"

namespace dqemu {
namespace {

using time_literals::kMs;
using time_literals::kUs;

// The injector and Timer are plain classes that always compile, but the
// Network only routes through the reliable channel when the fault plane is
// built in; with -DDQEMU_ENABLE_FAULTS=OFF every wire is perfect and the
// recovery scenarios are unreachable.
#if DQEMU_FAULTS_ENABLED
#define SKIP_WITHOUT_FAULTS() (void)0
#else
#define SKIP_WITHOUT_FAULTS() \
  GTEST_SKIP() << "built with DQEMU_ENABLE_FAULTS=OFF"
#endif

// ---- sim::Timer ----------------------------------------------------------

TEST(SimTimer, FiresOnceAndDisarms) {
  sim::EventQueue queue;
  sim::Timer timer(queue);
  int fired = 0;
  timer.arm(100, [&] { ++fired; });
  EXPECT_TRUE(timer.armed());
  queue.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.armed());
}

TEST(SimTimer, RearmCancelsThePreviousShot) {
  sim::EventQueue queue;
  sim::Timer timer(queue);
  std::vector<int> fired;
  timer.arm(100, [&] { fired.push_back(1); });
  timer.arm(200, [&] { fired.push_back(2); });
  queue.run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_EQ(queue.now(), 200u);
}

TEST(SimTimer, CancelPreventsFiring) {
  sim::EventQueue queue;
  sim::Timer timer(queue);
  bool fired = false;
  timer.arm(100, [&] { fired = true; });
  timer.cancel();
  queue.run();
  EXPECT_FALSE(fired);
}

TEST(SimTimer, DestructionCancels) {
  sim::EventQueue queue;
  bool fired = false;
  {
    sim::Timer timer(queue);
    timer.arm(100, [&] { fired = true; });
  }
  queue.run();
  EXPECT_FALSE(fired);
}

TEST(SimTimer, CallbackMayRearm) {
  sim::EventQueue queue;
  sim::Timer timer(queue);
  int fired = 0;
  std::function<void()> tick = [&] {
    if (++fired < 3) timer.arm(50, tick);
  };
  timer.arm(50, tick);
  queue.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(queue.now(), 150u);
}

// ---- FaultInjector -------------------------------------------------------

net::Message typed(std::uint32_t type, NodeId src = 1, NodeId dst = 0) {
  net::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.type = type;
  return msg;
}

TEST(FaultInjector, SameSeedSameDecisions) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 7;
  config.drop_pct = 10;
  config.dup_pct = 10;
  config.jitter_pct = 20;
  config.reorder_pct = 5;
  net::FaultInjector a(config, 3), b(config, 3);
  for (int i = 0; i < 2000; ++i) {
    const net::Message msg =
        typed(0x100u + std::uint32_t(i % 7), NodeId(i % 3));
    const net::WireFate fa = a.decide(msg);
    const net::WireFate fb = b.decide(msg);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.duplicate, fb.duplicate);
    EXPECT_EQ(fa.extra_delay, fb.extra_delay);
    EXPECT_EQ(fa.dup_extra_delay, fb.dup_extra_delay);
  }
}

TEST(FaultInjector, DifferentSeedsDiffer) {
  FaultConfig config;
  config.enabled = true;
  config.drop_pct = 30;
  config.seed = 1;
  net::FaultInjector a(config, 3);
  FaultConfig other = config;
  other.seed = 2;
  net::FaultInjector b(other, 3);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    const net::Message msg = typed(0x100);
    if (a.decide(msg).drop != b.decide(msg).drop) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, ZeroRatesNeverFault) {
  FaultConfig config;
  config.enabled = true;
  net::FaultInjector injector(config, 3);
  for (int i = 0; i < 1000; ++i) {
    const net::WireFate fate = injector.decide(typed(0x100));
    EXPECT_FALSE(fate.drop);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_EQ(fate.extra_delay, 0u);
  }
}

TEST(FaultInjector, RatesRoughlyMatchProbabilities) {
  FaultConfig config;
  config.enabled = true;
  config.drop_pct = 25;
  net::FaultInjector injector(config, 3);
  int drops = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (injector.decide(typed(0x100)).drop) ++drops;
  }
  EXPECT_GT(drops, n / 8);      // well above half the target rate
  EXPECT_LT(drops, n * 3 / 8);  // well below 1.5x the target rate
}

TEST(FaultInjector, RuleTargetsTypeLinkAndBudget) {
  // Baseline is clean; one rule drops exactly the first two kPageData
  // transmissions on the 0->2 link.
  FaultConfig config;
  config.enabled = true;
  FaultConfig::Rule rule;
  rule.type = static_cast<std::uint32_t>(dsm::DsmMsg::kPageData);
  rule.src = 0;
  rule.dst = 2;
  rule.drop_pct = 100;
  rule.max_matches = 2;
  config.rules.push_back(rule);
  net::FaultInjector injector(config, 3);

  EXPECT_FALSE(injector.decide(typed(rule.type, 0, 1)).drop);  // other link
  EXPECT_FALSE(injector.decide(typed(0x101, 0, 2)).drop);      // other type
  EXPECT_TRUE(injector.decide(typed(rule.type, 0, 2)).drop);   // match 1
  EXPECT_TRUE(injector.decide(typed(rule.type, 0, 2)).drop);   // match 2
  EXPECT_FALSE(injector.decide(typed(rule.type, 0, 2)).drop);  // budget spent
}

// ---- Reliable channel over a lossy raw Network ---------------------------

struct LossyNetFixture : ::testing::Test {
  void SetUp() override { SKIP_WITHOUT_FAULTS(); }

  /// Builds the network lazily so each test can set `faults` first.
  net::Network& build() {
    faults.enabled = true;
    network = std::make_unique<net::Network>(queue, config, 3, &stats,
                                             nullptr, faults);
    for (NodeId n = 0; n < 3; ++n) {
      network->attach(n, [this, n](net::Message msg) {
        deliveries.push_back({n, queue.now(), std::move(msg)});
      });
    }
    return *network;
  }

  net::Message make(NodeId src, NodeId dst, std::uint64_t tag = 0) {
    net::Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.type = 0x100;
    msg.a = tag;
    return msg;
  }

  struct Delivery {
    NodeId node;
    TimePs at;
    net::Message msg;
  };

  sim::EventQueue queue;
  NetworkConfig config;
  FaultConfig faults;
  StatsRegistry stats;
  std::unique_ptr<net::Network> network;
  std::vector<Delivery> deliveries;
};

TEST_F(LossyNetFixture, CleanWireDeliversExactlyOnceAndDrains) {
  net::Network& net = build();
  net.send(make(0, 1, 1));
  net.send(make(0, 1, 2));
  queue.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].msg.a, 1u);
  EXPECT_EQ(deliveries[1].msg.a, 2u);
  EXPECT_EQ(stats.get("net.retrans"), 0u);
  // The queue drained: acks flowed and all timers stood down.
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_GE(stats.get("net.acks"), 1u);
}

TEST_F(LossyNetFixture, DroppedMessageIsRetransmittedAndDelivered) {
  FaultConfig::Rule rule;
  rule.type = 0x100;
  rule.drop_pct = 100;
  rule.max_matches = 1;
  faults.rules.push_back(rule);
  net::Network& net = build();
  net.send(make(0, 1, 42));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].msg.a, 42u);
  EXPECT_EQ(stats.get("net.dropped"), 1u);
  EXPECT_GE(stats.get("net.retrans"), 1u);
  // Recovery cost one RTO: delivery happened after the first retransmit.
  EXPECT_GT(deliveries[0].at, faults.retrans_timeout);
}

TEST_F(LossyNetFixture, RetransmitBacksOffExponentially) {
  // Drop the first transmission AND the first retransmission: the second
  // retransmission fires one base RTO plus one doubled RTO after the send.
  FaultConfig::Rule rule;
  rule.type = 0x100;
  rule.drop_pct = 100;
  rule.max_matches = 2;
  faults.rules.push_back(rule);
  net::Network& net = build();
  net.send(make(0, 1, 7));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(stats.get("net.dropped"), 2u);
  EXPECT_EQ(stats.get("net.retrans"), 2u);
  EXPECT_GT(deliveries[0].at, faults.retrans_timeout * 3);  // 1x + 2x
  EXPECT_EQ(queue.pending(), 0u);
}

TEST_F(LossyNetFixture, DuplicatesAreSuppressed) {
  faults.dup_pct = 100;  // the switch duplicates every transmission
  net::Network& net = build();
  net.send(make(0, 1, 1));
  net.send(make(0, 1, 2));
  queue.run();
  ASSERT_EQ(deliveries.size(), 2u);  // app sees each message exactly once
  EXPECT_EQ(deliveries[0].msg.a, 1u);
  EXPECT_EQ(deliveries[1].msg.a, 2u);
  EXPECT_GE(stats.get("net.wire_dup"), 2u);
  EXPECT_GE(stats.get("net.dup_suppressed"), 2u);
}

TEST_F(LossyNetFixture, ReorderedArrivalsAreHeldForFifo) {
  // Reorder-delay exactly the first message: it physically arrives after
  // the second, but delivery order must stay send order.
  FaultConfig::Rule rule;
  rule.type = 0x100;
  rule.reorder_pct = 100;
  rule.max_matches = 1;
  faults.rules.push_back(rule);
  faults.reorder_delay = 2 * kMs;
  net::Network& net = build();
  net.send(make(0, 1, 1));
  net.send(make(0, 1, 2));
  queue.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].msg.a, 1u);
  EXPECT_EQ(deliveries[1].msg.a, 2u);
  EXPECT_GE(stats.get("net.ooo_held"), 1u);
  // The held message was released the instant the gap filled.
  EXPECT_EQ(deliveries[0].at, deliveries[1].at);
}

TEST_F(LossyNetFixture, PauseWindowDefersDelivery) {
  FaultConfig::Pause pause;
  pause.node = 1;
  pause.start = 0;
  pause.duration = 5 * kMs;
  faults.pauses.push_back(pause);
  net::Network& net = build();
  net.send(make(0, 1, 9));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_GE(deliveries[0].at, pause.start + pause.duration);
  EXPECT_GE(stats.get("net.paused_deferrals"), 1u);
}

TEST_F(LossyNetFixture, HeavyLossStillDeliversEverythingInOrder) {
  faults.drop_pct = 20;
  faults.dup_pct = 10;
  faults.jitter_pct = 30;
  faults.reorder_pct = 10;
  faults.seed = 3;
  net::Network& net = build();
  const int n = 60;
  for (int i = 0; i < n; ++i) net.send(make(0, 1, std::uint64_t(i) + 1));
  for (int i = 0; i < n / 2; ++i) {
    net.send(make(1, 0, 1000u + std::uint64_t(i)));
  }
  queue.run();
  ASSERT_EQ(deliveries.size(), std::size_t(n + n / 2));
  std::uint64_t expect_fwd = 1, expect_rev = 1000;
  for (const Delivery& d : deliveries) {
    if (d.node == 1) {
      EXPECT_EQ(d.msg.a, expect_fwd++);
    } else {
      EXPECT_EQ(d.msg.a, expect_rev++);
    }
  }
  EXPECT_GT(stats.get("net.dropped"), 0u);
  EXPECT_GT(stats.get("net.retrans"), 0u);
  EXPECT_EQ(queue.pending(), 0u);  // everything acked, all timers idle
}

TEST_F(LossyNetFixture, LoopbackBypassesTheLossyWire) {
  faults.drop_pct = 100;  // even a black-hole wire can't touch loopback
  net::Network& net = build();
  net.send(make(1, 1, 5));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at, config.loopback_latency);
  EXPECT_EQ(stats.get("net.loopback"), 1u);
  EXPECT_EQ(stats.get("net.dropped"), 0u);
}

// ---- Full-cluster recovery scenarios -------------------------------------

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

/// Faulty-cluster config; tests add rules / tune timeouts on top.
ClusterConfig faulty_config(std::uint32_t nodes) {
  ClusterConfig config = test::test_config(nodes);
  config.faults.enabled = true;
  return config;
}

TEST(FaultRecovery, DropTheGrantStillCompletes) {
  SKIP_WITHOUT_FAULTS();
  // The very first kPageData grant from the master vanishes; the reliable
  // channel must retransmit it and the guest must never notice.
  const auto program = must(workloads::memwalk(64 * 1024, 1, true));
  ClusterConfig config = faulty_config(2);
  FaultConfig::Rule rule;
  rule.type = static_cast<std::uint32_t>(dsm::DsmMsg::kPageData);
  rule.src = kMasterNode;
  rule.drop_pct = 100;
  rule.max_matches = 1;
  config.faults.rules.push_back(rule);

  const auto outcome = test::run_program(config, program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  const auto clean = test::run_program(test::test_config(2), program);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(outcome.result.exit_code, clean.result.exit_code);
  EXPECT_EQ(outcome.result.guest_stdout, clean.result.guest_stdout);
  EXPECT_EQ(outcome.result.guest_insns, clean.result.guest_insns);
}

TEST(FaultRecovery, DropTheAckStillCompletes) {
  SKIP_WITHOUT_FAULTS();
  // An ownership-recall writeback (kInvAck, carrying the only fresh copy of
  // a dirty page) is dropped: retransmission must recover the content.
  const auto program =
      must(workloads::mutex_stress(8, 50, /*global=*/true));
  ClusterConfig config = faulty_config(2);
  config.dbt.quantum_insns = 500;
  FaultConfig::Rule rule;
  rule.type = static_cast<std::uint32_t>(dsm::DsmMsg::kInvAck);
  rule.drop_pct = 100;
  rule.max_matches = 1;
  config.faults.rules.push_back(rule);

  const auto outcome = test::run_program(config, program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ClusterConfig clean_config = test::test_config(2);
  clean_config.dbt.quantum_insns = 500;
  const auto clean = test::run_program(clean_config, program);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(outcome.result.exit_code, clean.result.exit_code);
  EXPECT_EQ(outcome.result.guest_stdout, clean.result.guest_stdout);
  // The checksum epilogue proves mutual exclusion held and no wakeup was
  // lost despite the dropped writeback.
  EXPECT_NE(outcome.result.guest_stdout.find("400"), std::string::npos);
}

TEST(FaultRecovery, RandomLossMutexStressMatchesCleanRun) {
  SKIP_WITHOUT_FAULTS();
  const auto program =
      must(workloads::mutex_stress(16, 100, /*global=*/true));
  ClusterConfig config = faulty_config(2);
  config.dbt.quantum_insns = 500;
  config.faults.drop_pct = 2;

  const auto faulty = test::run_program(config, program);
  ASSERT_TRUE(faulty.ok) << faulty.error;
  ClusterConfig clean_config = test::test_config(2);
  clean_config.dbt.quantum_insns = 500;
  const auto clean = test::run_program(clean_config, program);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(faulty.result.exit_code, clean.result.exit_code);
  EXPECT_EQ(faulty.result.guest_stdout, clean.result.guest_stdout);
  EXPECT_NE(faulty.result.guest_stdout.find("1600"), std::string::npos);
  // Loss costs virtual time, but recovery must bound the inflation.
  EXPECT_LT(faulty.result.sim_time, clean.result.sim_time * 3);
}

TEST(FaultRecovery, DuplicatedRecallIsIgnoredByTheAgent) {
  SKIP_WITHOUT_FAULTS();
  // Force the master's recall watchdog to fire while the lease return is
  // still in flight: the RTO is huge (so the dropped return sits unsent for
  // a long time) and the watchdog short (so the master re-recalls first).
  // The agent no longer owns the lease and must treat the duplicate recall
  // as a no-op instead of tripping its ownership assert.
  const auto program =
      must(workloads::mutex_stress(16, 200, /*global=*/true));
  ClusterConfig config = faulty_config(2);
  config.dbt.quantum_insns = 500;
  config.sys.enable_hierarchical_locking = true;
  config.sys.lease_min_hold = 1 * kMs;
  config.faults.retrans_timeout = 20 * kMs;
  config.faults.retrans_cap = 40 * kMs;
  config.faults.request_timeout = 2 * kMs;
  FaultConfig::Rule rule;
  rule.type = static_cast<std::uint32_t>(sys::SysMsg::kLeaseReturn);
  rule.drop_pct = 100;
  rule.max_matches = 1;
  config.faults.rules.push_back(rule);

  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  auto run = cluster.run();
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  EXPECT_NE(run.value().guest_stdout.find("3200"), std::string::npos);
  // The scenario only proves something if the recall actually went twice.
  EXPECT_GE(cluster.stats().get("sys.recall_timeouts"), 1u);
  EXPECT_GE(cluster.stats().get("sys.dup_recalls_ignored"), 1u);
}

TEST(FaultRecovery, DsmWatchdogReissuesAStuckRequest) {
  SKIP_WITHOUT_FAULTS();
  // Same trick for the DSM fault watchdog: the grant is dropped and the
  // channel's RTO is far beyond the watchdog, so the client re-issues the
  // request and the directory's benign re-grant completes the fault.
  const auto program = must(workloads::memwalk(32 * 1024, 1, true));
  ClusterConfig config = faulty_config(2);
  config.faults.retrans_timeout = 50 * kMs;
  config.faults.retrans_cap = 100 * kMs;
  config.faults.request_timeout = 2 * kMs;
  FaultConfig::Rule rule;
  rule.type = static_cast<std::uint32_t>(dsm::DsmMsg::kPageData);
  rule.src = kMasterNode;
  rule.drop_pct = 100;
  rule.max_matches = 1;
  config.faults.rules.push_back(rule);

  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  auto run = cluster.run();
  ASSERT_TRUE(run.is_ok()) << run.status().to_string();
  EXPECT_GE(cluster.stats().get("dsm.timeouts"), 1u);
  const auto clean = test::run_program(test::test_config(2), program);
  ASSERT_TRUE(clean.ok) << clean.error;
  EXPECT_EQ(run.value().exit_code, clean.result.exit_code);
  EXPECT_EQ(run.value().guest_stdout, clean.result.guest_stdout);
}

}  // namespace
}  // namespace dqemu
