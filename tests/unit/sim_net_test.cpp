// Unit tests: event queue (sim) and simulated network (net).
#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"
#include "sim/event_queue.hpp"

namespace dqemu {
namespace {

using sim::EventQueue;
using time_literals::kUs;

// ---- EventQueue --------------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(300, [&] { order.push_back(3); });
  queue.schedule_at(100, [&] { order.push_back(1); });
  queue.schedule_at(200, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.now(), 300u);
}

TEST(EventQueue, EqualTimesFifoBySchedulingOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  queue.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(EventQueue, ScheduleInThePastClampsToNow) {
  EventQueue queue;
  queue.schedule_at(100, [] {});
  queue.run_one();
  bool fired = false;
  queue.schedule_at(50, [&] { fired = true; });  // the past
  queue.run_one();
  EXPECT_TRUE(fired);
  EXPECT_EQ(queue.now(), 100u);  // clock did not go backwards
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue queue;
  bool fired = false;
  const auto id = queue.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // second cancel is a no-op
  queue.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) queue.schedule_in(10, chain);
  };
  queue.schedule_at(0, chain);
  queue.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(queue.now(), 40u);
}

TEST(EventQueue, RunUntilLeavesLaterEventsPending) {
  EventQueue queue;
  int count = 0;
  queue.schedule_at(10, [&] { ++count; });
  queue.schedule_at(20, [&] { ++count; });
  queue.schedule_at(30, [&] { ++count; });
  EXPECT_EQ(queue.run_until(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_EQ(queue.now(), 20u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue queue;
  queue.run_until(500);
  EXPECT_EQ(queue.now(), 500u);
}

TEST(EventQueue, RunRespectsMaxEvents) {
  EventQueue queue;
  for (TimePs i = 0; i < 10; ++i) queue.schedule_at(i, [] {});
  EXPECT_EQ(queue.run(4), 4u);
  EXPECT_EQ(queue.pending(), 6u);
}

TEST(EventQueue, FiredCounts) {
  EventQueue queue;
  queue.schedule_at(1, [] {});
  queue.schedule_at(2, [] {});
  queue.run();
  EXPECT_EQ(queue.fired(), 2u);
}

// ---- Network -------------------------------------------------------------------

struct NetFixture : ::testing::Test {
  NetFixture() : network(queue, config, 3, &stats) {
    for (NodeId n = 0; n < 3; ++n) {
      network.attach(n, [this, n](net::Message msg) {
        deliveries.push_back({n, queue.now(), std::move(msg)});
      });
    }
  }

  net::Message make(NodeId src, NodeId dst, std::uint32_t bytes = 0) {
    net::Message msg;
    msg.src = src;
    msg.dst = dst;
    msg.type = 1;
    msg.data.resize(bytes);
    return msg;
  }

  struct Delivery {
    NodeId node;
    TimePs at;
    net::Message msg;
  };

  sim::EventQueue queue;
  NetworkConfig config;
  StatsRegistry stats;
  net::Network network;
  std::vector<Delivery> deliveries;
};

TEST_F(NetFixture, DeliveryLatencyMatchesModel) {
  network.send(make(0, 1, 0));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  // endpoint + wire(36 payload+64 hdr bytes) + one-way latency + endpoint.
  const TimePs expected = config.endpoint_overhead +
                          config.wire_time(36) + config.one_way_latency +
                          config.endpoint_overhead;
  EXPECT_EQ(deliveries[0].at, expected);
}

TEST_F(NetFixture, LoopbackIsCheap) {
  network.send(make(1, 1, 4096));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].at, config.loopback_latency);
}

TEST_F(NetFixture, PerChannelFifo) {
  // A big message then a small one on the same channel: the small one
  // must not overtake.
  network.send(make(0, 1, 65536));
  network.send(make(0, 1, 0));
  queue.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].msg.data.size(), 65536u);
  EXPECT_LE(deliveries[0].at, deliveries[1].at);
}

TEST_F(NetFixture, EgressLinkSerializesSends) {
  // Two page-sized messages from node 0 to different destinations share
  // node 0's egress link: the second is delayed by one wire time.
  network.send(make(0, 1, 4096));
  network.send(make(0, 2, 4096));
  queue.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const TimePs gap = deliveries[1].at - deliveries[0].at;
  EXPECT_EQ(gap, config.wire_time(4096 + 36));
}

TEST_F(NetFixture, DistinctSourcesDoNotSerialize) {
  network.send(make(0, 2, 4096));
  network.send(make(1, 2, 4096));
  queue.run();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].at, deliveries[1].at);  // parallel links
}

TEST_F(NetFixture, CountsMessagesAndBytes) {
  network.send(make(0, 1, 100));
  network.send(make(1, 1, 100));  // loopback: not wire traffic
  queue.run();
  EXPECT_EQ(stats.get("net.messages"), 1u);
  EXPECT_EQ(stats.get("net.bytes"), 100u + 36 + config.header_bytes);
}

TEST_F(NetFixture, LoopbackMessagesAreCountedSeparately) {
  network.send(make(1, 1, 100));
  network.send(make(2, 2, 0));
  network.send(make(0, 1, 0));
  queue.run();
  EXPECT_EQ(stats.get("net.loopback"), 2u);
  EXPECT_EQ(stats.get("net.messages"), 1u);
}

// The misdelivery paths must die loudly in every build type: in Release an
// assert vanishes and invoking the empty std::function handler (or indexing
// past handlers_) is undefined behaviour.
using NetDeathTest = NetFixture;

TEST_F(NetDeathTest, SendToOutOfRangeNodeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(network.send(make(0, 7)), "out-of-range endpoint");
}

TEST_F(NetDeathTest, SendFromOutOfRangeNodeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(network.send(make(9, 1)), "out-of-range endpoint");
}

TEST(NetDeath, DeliverToUnattachedNodeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::EventQueue queue;
        net::Network network(queue, NetworkConfig{}, 2);
        network.attach(0, [](net::Message) {});
        net::Message msg;
        msg.src = 0;
        msg.dst = 1;  // node 1 never attached a handler
        msg.type = 1;
        network.send(std::move(msg));
        queue.run();
      },
      "no handler attached");
}

TEST(NetDeath, AttachOutOfRangeNodeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::EventQueue queue;
        net::Network network(queue, NetworkConfig{}, 2);
        network.attach(5, [](net::Message) {});
      },
      "out-of-range node");
}

TEST_F(NetFixture, ScalarFieldsSurviveTransit) {
  net::Message msg = make(2, 0, 8);
  msg.a = 0xAABB;
  msg.b = 42;
  msg.c = 7;
  msg.d = ~0ULL;
  msg.data = {1, 2, 3};
  network.send(std::move(msg));
  queue.run();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0].msg.a, 0xAABBu);
  EXPECT_EQ(deliveries[0].msg.b, 42u);
  EXPECT_EQ(deliveries[0].msg.c, 7u);
  EXPECT_EQ(deliveries[0].msg.d, ~0ULL);
  EXPECT_EQ(deliveries[0].msg.data, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(NetFixture, EgressFreeAtTracksOccupancy) {
  EXPECT_EQ(network.egress_free_at(0), 0u);
  network.send(make(0, 1, 4096));
  EXPECT_GT(network.egress_free_at(0), 0u);
  EXPECT_EQ(network.egress_free_at(1), 0u);
}

}  // namespace
}  // namespace dqemu
