// Determinism regression for the DBT fast paths (DESIGN.md section 10).
//
// The software TLB, indirect-jump cache and LL/SC store filter are host-side
// accelerations only: with them enabled or disabled (DbtConfig::
// enable_fastpath), every virtual-time observable must be byte-identical —
// final stats, per-thread time breakdowns, guest output, and the exported
// trace. Only the host-side instrumentation counters may differ:
//   dbt.tlb_hit / dbt.tlb_miss / dbt.jmp_cache_hit / dbt.llsc_fastpath
//     exist only when the fast paths run, and
//   dbt.tcache_hit
//     shrinks when jump-cache hits skip the hash lookup.
// Everything else — including dbt.tcache_miss, dbt.chain_hit and all
// translation counters — must match exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "net/network.hpp"   // for DQEMU_FAULTS_ENABLED
#include "serve/serve.hpp"   // for DQEMU_SERVING_ENABLED
#include "testutil.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"
#include "workloads/serve.hpp"

namespace dqemu {
namespace {

/// Counters that measure the host-side fast paths themselves; everything
/// else must be identical with the fast paths on or off.
const std::set<std::string> kHostOnlyCounters = {
    "dbt.tlb_hit",       "dbt.tlb_miss", "dbt.jmp_cache_hit",
    "dbt.llsc_fastpath", "dbt.tcache_hit",
};

/// Additional counters that legitimately shift when the superblock tier is
/// toggled (DESIGN.md section 15): the sb.* family exists only while traces
/// form and run, and trace dispatch bypasses the per-block tcache/chain
/// bookkeeping, so those hit/miss counts move too. Everything virtual-time
/// related must still match exactly.
std::set<std::string> superblock_divergent_counters() {
  std::set<std::string> keys = kHostOnlyCounters;
  keys.insert({"dbt.tcache_miss", "dbt.chain_hit", "dbt.sb_formed",
               "dbt.sb_invalidated", "dbt.sb_exec", "dbt.sb_side_exit",
               "dbt.fused_ops", "dbt.sb_blocks", "dbt.sb_insns",
               "dbt.fused_pairs"});
  return keys;
}

struct Observation {
  core::Cluster::RunResult result;
  std::map<std::string, std::uint64_t, std::less<>> counters;  ///< host-only keys removed
  std::string trace_json;                         ///< counter records excluded
  std::string hist_dump;  ///< every registry histogram (latency distributions)
};

Observation observe_with(const isa::Program& program, ClusterConfig config,
                         const std::set<std::string>& host_only =
                             kHostOnlyCounters) {
  // Counter snapshots sample the host-only counters into the trace, so the
  // export would trivially differ; every other category must match.
  trace::TraceConfig trace_config;
  trace_config.categories =
      trace::kDefaultCategories & ~trace::cat_bit(trace::Cat::kCounter);
  trace::Tracer tracer(trace_config);

  core::Cluster cluster(config, &tracer);
  Observation obs;
  const Status load_status = cluster.load(program);
  EXPECT_TRUE(load_status.is_ok()) << load_status.to_string();
  auto run = cluster.run();
  EXPECT_TRUE(run.is_ok()) << run.status().to_string();
  if (run.is_ok()) obs.result = run.take();

  obs.counters = cluster.stats().counters();
  for (const auto& key : host_only) obs.counters.erase(key);
  for (const auto& [name, hist] : cluster.stats().histograms()) {
    obs.hist_dump += name + " " + hist.to_string() + "\n";
  }

  std::ostringstream out;
  trace::write_chrome_json(tracer, out);
  obs.trace_json = out.str();
  return obs;
}

Observation observe(const isa::Program& program, std::uint32_t nodes,
                    bool fastpath) {
  ClusterConfig config = test::test_config(nodes);
  config.dbt.enable_fastpath = fastpath;
  return observe_with(program, config);
}

void expect_identical(const Observation& on, const Observation& off) {
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.sim_time, off.result.sim_time);
  EXPECT_EQ(on.result.guest_insns, off.result.guest_insns);
  EXPECT_EQ(on.result.guest_stdout, off.result.guest_stdout);

  ASSERT_EQ(on.result.per_thread.size(), off.result.per_thread.size());
  for (const auto& [tid, b] : on.result.per_thread) {
    const auto it = off.result.per_thread.find(tid);
    ASSERT_NE(it, off.result.per_thread.end()) << "tid " << tid;
    EXPECT_EQ(b.execute, it->second.execute) << "tid " << tid;
    EXPECT_EQ(b.translate, it->second.translate) << "tid " << tid;
    EXPECT_EQ(b.pagefault, it->second.pagefault) << "tid " << tid;
    EXPECT_EQ(b.syscall, it->second.syscall) << "tid " << tid;
    EXPECT_EQ(b.idle, it->second.idle) << "tid " << tid;
  }

  // Whole-map equality gives a readable diff on failure via the dump below.
  EXPECT_EQ(on.counters, off.counters);
  if (on.counters != off.counters) {
    for (const auto& [key, value] : on.counters) {
      const auto it = off.counters.find(key);
      if (it == off.counters.end()) {
        ADD_FAILURE() << key << " only exists with fastpath on";
      } else if (it->second != value) {
        ADD_FAILURE() << key << ": on=" << value << " off=" << it->second;
      }
    }
  }

  EXPECT_EQ(on.trace_json, off.trace_json);
  EXPECT_EQ(on.hist_dump, off.hist_dump);
}

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

TEST(FastPathDeterminism, MutexStressGlobalLock) {
  // Heavy LL/SC contention plus DSM page migration: exercises the LL/SC
  // store filter and TLB invalidation on protection changes.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  expect_identical(observe(program, 4, /*fastpath=*/true),
                   observe(program, 4, /*fastpath=*/false));
}

TEST(FastPathDeterminism, FalseSharingWalkWithSplitting) {
  // Page splitting rewrites the shadow map mid-run: exercises TLB
  // invalidation on split and the identity-only caching rule.
  const auto program = must(workloads::false_sharing_walk(8, 128, 4, 4));
  expect_identical(observe(program, 4, /*fastpath=*/true),
                   observe(program, 4, /*fastpath=*/false));
}

TEST(FastPathDeterminism, MemwalkMultiNode) {
  // Bulk sequential memory traffic across nodes: the TLB hot path carries
  // nearly every access; jump-cache serves the function-return jalrs.
  const auto program = must(workloads::memwalk(256 * 1024, 2, true));
  expect_identical(observe(program, 3, /*fastpath=*/true),
                   observe(program, 3, /*fastpath=*/false));
}

// The superblock hot-trace tier (DESIGN.md section 15) is the same kind of
// host-side acceleration as the fast paths: with it enabled or disabled
// (DbtConfig::enable_superblocks), every virtual-time observable must be
// byte-identical. Only the counters in superblock_divergent_counters() may
// move. A low hot threshold makes traces form inside these small workloads.

Observation observe_sb(const isa::Program& program, std::uint32_t nodes,
                       bool superblocks, bool fusion = true) {
  ClusterConfig config = test::test_config(nodes);
  config.dbt.enable_superblocks = superblocks;
  config.dbt.sb_hot_threshold = 4;
  config.dbt.sb_fusion = fusion;
  return observe_with(program, config, superblock_divergent_counters());
}

TEST(SuperblockDeterminism, MutexStressGlobalLock) {
  // LL/SC retry loops are hot and full of side exits; traces form and die
  // across DSM protection changes.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  expect_identical(observe_sb(program, 4, /*superblocks=*/true),
                   observe_sb(program, 4, /*superblocks=*/false));
}

TEST(SuperblockDeterminism, MemwalkMultiNode) {
  // The walk loop is the canonical straight-line trace: load+ALU and
  // compare-branch fusion both fire on every iteration.
  const auto program = must(workloads::memwalk(256 * 1024, 2, true));
  expect_identical(observe_sb(program, 3, /*superblocks=*/true),
                   observe_sb(program, 3, /*superblocks=*/false));
}

TEST(SuperblockDeterminism, FusionToggleIsInvisible) {
  // Fusion is a second, inner gate: traces still form either way, but the
  // fused dispatch must charge exactly the unfused costs.
  const auto program = must(workloads::memwalk(128 * 1024, 2, true));
  expect_identical(observe_sb(program, 2, /*superblocks=*/true,
                              /*fusion=*/true),
                   observe_sb(program, 2, /*superblocks=*/true,
                              /*fusion=*/false));
}

// Hierarchical locking (DESIGN.md section 11) is a *protocol* change, not a
// host-side one: it legitimately shifts virtual time and retired-instruction
// counts (LL/SC spins end sooner when lock handoff is faster). What must
// hold instead: the guest-visible results are byte-identical in both modes
// (the mutex_stress checksum catches any lost wakeup or broken mutual
// exclusion), the optimization never makes the contended case slower, and
// each mode is individually deterministic run to run.

/// Contended lock regime: a quantum short enough to preempt threads inside
/// the critical section, so waiters actually park in the futex.
ClusterConfig locking_config(std::uint32_t nodes, bool hier) {
  ClusterConfig config = test::test_config(nodes);
  config.dbt.quantum_insns = 500;
  config.sys.enable_hierarchical_locking = hier;
  return config;
}

TEST(HierLockingDeterminism, GlobalMutexSameGuestResultsAndNoSlower) {
  // Enough threads and iterations that workers outlive the spawn span and
  // genuinely contend — below that the lock is usually free and leasing has
  // nothing to win (see bench/ablation_locking.cpp for the swept version).
  const auto program =
      must(workloads::mutex_stress(32, 1000, /*global=*/true));
  const Observation on = observe_with(program, locking_config(4, true));
  const Observation off = observe_with(program, locking_config(4, false));
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.guest_stdout, off.result.guest_stdout);
  // The checksum epilogue prints threads * iters iff no wakeup was lost.
  EXPECT_NE(on.result.guest_stdout.find("32000"), std::string::npos);
  EXPECT_LE(on.result.sim_time, off.result.sim_time);
}

TEST(HierLockingDeterminism, PrivateMutexSameGuestResultsAndNoSlower) {
  const auto program =
      must(workloads::mutex_stress(8, 200, /*global=*/false));
  const Observation on = observe_with(program, locking_config(4, true));
  const Observation off = observe_with(program, locking_config(4, false));
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.guest_stdout, off.result.guest_stdout);
  EXPECT_LE(on.result.sim_time, off.result.sim_time);
}

TEST(HierLockingDeterminism, EnabledModeIsRunToRunDeterministic) {
  const auto program = must(workloads::mutex_stress(16, 200, /*global=*/true));
  expect_identical(observe_with(program, locking_config(4, true)),
                   observe_with(program, locking_config(4, true)));
}

// Fault injection (DESIGN.md section 13) replays faults from a counter-based
// PRNG keyed only by FaultConfig::seed and the transmission number, so a
// lossy run is exactly as reproducible as a clean one: same seed, same
// drops, same retransmits, same virtual times — down to the exported trace.
// And because the reliable channel hides every fault from the layers above,
// the *guest-visible* results of a faulty run must equal the clean run's.

// With -DDQEMU_ENABLE_FAULTS=OFF the wire is always perfect; the tests that
// need actual faults to prove anything are skipped in that build (the
// bit-identity gates below still run).
#if DQEMU_FAULTS_ENABLED
#define SKIP_WITHOUT_FAULTS() (void)0
#else
#define SKIP_WITHOUT_FAULTS() \
  GTEST_SKIP() << "built with DQEMU_ENABLE_FAULTS=OFF"
#endif

ClusterConfig fault_config(std::uint32_t nodes, std::uint32_t seed) {
  ClusterConfig config = test::test_config(nodes);
  config.dbt.quantum_insns = 500;
  config.faults.enabled = true;
  config.faults.seed = seed;
  config.faults.drop_pct = 2;
  config.faults.dup_pct = 1;
  config.faults.jitter_pct = 5;
  return config;
}

TEST(FaultDeterminism, SameSeedLossyRunsAreByteIdentical) {
  const auto program = must(workloads::mutex_stress(16, 100, /*global=*/true));
  expect_identical(observe_with(program, fault_config(2, 7)),
                   observe_with(program, fault_config(2, 7)));
}

TEST(FaultDeterminism, DifferentSeedsChangeTheWireButNotTheGuest) {
  SKIP_WITHOUT_FAULTS();
  const auto program = must(workloads::mutex_stress(16, 100, /*global=*/true));
  const Observation a = observe_with(program, fault_config(2, 1));
  const Observation b = observe_with(program, fault_config(2, 2));
  EXPECT_EQ(a.result.exit_code, b.result.exit_code);
  EXPECT_EQ(a.result.guest_stdout, b.result.guest_stdout);
  EXPECT_NE(a.result.guest_stdout.find("1600"), std::string::npos);
  // Different fault schedules: the runs are honestly different on the wire.
  EXPECT_NE(a.counters.at("net.dropped"), b.counters.at("net.dropped"));
}

TEST(FaultDeterminism, LossyGuestResultsMatchTheCleanRun) {
  SKIP_WITHOUT_FAULTS();
  // Guest *results* (exit code, stdout) must survive the lossy wire
  // untouched. Retired-instruction counts may legitimately shift: delayed
  // lock handoffs change how long LL/SC retry loops spin.
  std::uint64_t total_retrans = 0;
  for (const auto* name : {"mutex_stress", "false_sharing", "memwalk"}) {
    isa::Program program;
    if (std::string(name) == "mutex_stress") {
      program = must(workloads::mutex_stress(16, 100, /*global=*/true));
    } else if (std::string(name) == "false_sharing") {
      program = must(workloads::false_sharing_walk(8, 128, 4, 2));
    } else {
      program = must(workloads::memwalk(128 * 1024, 2, true));
    }
    ClusterConfig clean = fault_config(2, 1);
    clean.faults.enabled = false;
    const Observation faulty = observe_with(program, fault_config(2, 1));
    const Observation base = observe_with(program, clean);
    EXPECT_EQ(faulty.result.exit_code, base.result.exit_code) << name;
    EXPECT_EQ(faulty.result.guest_stdout, base.result.guest_stdout) << name;
    // Loss costs virtual time; recovery must bound the inflation.
    EXPECT_LT(faulty.result.sim_time, base.result.sim_time * 3) << name;
    const auto it = faulty.counters.find("net.retrans");
    if (it != faulty.counters.end()) total_retrans += it->second;
  }
  // At 2% loss at least one of the three runs must have actually recovered
  // something, or this test proves nothing.
  EXPECT_GT(total_retrans, 0u);
}

TEST(FaultDeterminism, DisabledFaultsLeaveTheCleanRunUntouched) {
  // The master determinism gate for this PR: constructing the fault
  // machinery but leaving it disabled must not move a single picosecond.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  ClusterConfig off = test::test_config(2);
  ClusterConfig constructed = test::test_config(2);
  constructed.faults.seed = 99;      // non-default knobs, gate still off
  constructed.faults.drop_pct = 50;  // ignored while enabled=false
  expect_identical(observe_with(program, off),
                   observe_with(program, constructed));
}

// The serving plane (DESIGN.md §14) must inherit the simulator's
// bit-reproducibility: every arrival, dispatch and latency is a pure
// function of (config, seed), so two same-seed runs agree on everything —
// including the latency histograms (hist_dump) and the per-request trace
// flows — and a serving-disabled config cannot perturb a batch run.

#if DQEMU_SERVING_ENABLED
#define SKIP_WITHOUT_SERVING() (void)0
#else
#define SKIP_WITHOUT_SERVING() \
  GTEST_SKIP() << "built with DQEMU_ENABLE_SERVING=OFF"
#endif

ClusterConfig serving_config(std::uint32_t nodes, std::uint64_t seed) {
  ClusterConfig config = test::test_config(nodes);
  config.serve.enabled = true;
  config.serve.seed = seed;
  config.serve.requests = 200;
  config.serve.rate = 8000.0;
  config.serve.workers = 8;
  return config;
}

TEST(ServeDeterminism, SameSeedRunsAreByteIdentical) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 8}));
  expect_identical(observe_with(program, serving_config(2, 7)),
                   observe_with(program, serving_config(2, 7)));
}

TEST(ServeDeterminism, SameSeedRunsAreByteIdenticalUnderLoss) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 8}));
  ClusterConfig config = serving_config(2, 7);
  config.faults.enabled = true;
  config.faults.seed = 3;
  config.faults.drop_pct = 2;
  config.faults.dup_pct = 1;
  config.faults.jitter_pct = 5;
  expect_identical(observe_with(program, config),
                   observe_with(program, config));
}

TEST(ServeDeterminism, DifferentServeSeedChangesOnlyTheServingPlane) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 8}));
  const Observation a = observe_with(program, serving_config(2, 7));
  const Observation b = observe_with(program, serving_config(2, 8));
  // The guest-visible results are seed-invariant: the pool completes every
  // execution whatever the arrival schedule.
  EXPECT_EQ(a.result.exit_code, b.result.exit_code);
  EXPECT_EQ(a.result.guest_stdout, b.result.guest_stdout);
  EXPECT_EQ(a.result.guest_stdout, "200\n");
  EXPECT_EQ(a.counters.at("serve.retired"), b.counters.at("serve.retired"));
  // But the serving plane honestly changed: different arrival times mean a
  // different latency distribution.
  EXPECT_NE(a.hist_dump, b.hist_dump);
}

TEST(ServeDeterminism, DisabledServingReproducesTheBatchBaseline) {
  // The dual-gate contract: serve knobs set but enabled=false must not
  // move a single picosecond of a batch run. Runs in every build flavor —
  // with serving compiled out this doubles as the compiled-out-identity
  // gate.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  ClusterConfig off = test::test_config(2);
  ClusterConfig constructed = test::test_config(2);
  constructed.serve.seed = 99;        // non-default knobs, gate still off
  constructed.serve.requests = 5000;  // ignored while enabled=false
  constructed.serve.rate = 1e6;
  expect_identical(observe_with(program, off),
                   observe_with(program, constructed));
}

}  // namespace
}  // namespace dqemu
