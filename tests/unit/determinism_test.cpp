// Determinism regression for the DBT fast paths (DESIGN.md section 10).
//
// The software TLB, indirect-jump cache and LL/SC store filter are host-side
// accelerations only: with them enabled or disabled (DbtConfig::
// enable_fastpath), every virtual-time observable must be byte-identical —
// final stats, per-thread time breakdowns, guest output, and the exported
// trace. Only the host-side instrumentation counters may differ:
//   dbt.tlb_hit / dbt.tlb_miss / dbt.jmp_cache_hit / dbt.llsc_fastpath
//     exist only when the fast paths run, and
//   dbt.tcache_hit
//     shrinks when jump-cache hits skip the hash lookup.
// Everything else — including dbt.tcache_miss, dbt.chain_hit and all
// translation counters — must match exactly.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "testutil.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"

namespace dqemu {
namespace {

/// Counters that measure the host-side fast paths themselves; everything
/// else must be identical with the fast paths on or off.
const std::set<std::string> kHostOnlyCounters = {
    "dbt.tlb_hit",       "dbt.tlb_miss", "dbt.jmp_cache_hit",
    "dbt.llsc_fastpath", "dbt.tcache_hit",
};

struct Observation {
  core::Cluster::RunResult result;
  std::map<std::string, std::uint64_t, std::less<>> counters;  ///< host-only keys removed
  std::string trace_json;                         ///< counter records excluded
};

Observation observe_with(const isa::Program& program, ClusterConfig config) {
  // Counter snapshots sample the host-only counters into the trace, so the
  // export would trivially differ; every other category must match.
  trace::TraceConfig trace_config;
  trace_config.categories =
      trace::kDefaultCategories & ~trace::cat_bit(trace::Cat::kCounter);
  trace::Tracer tracer(trace_config);

  core::Cluster cluster(config, &tracer);
  Observation obs;
  const Status load_status = cluster.load(program);
  EXPECT_TRUE(load_status.is_ok()) << load_status.to_string();
  auto run = cluster.run();
  EXPECT_TRUE(run.is_ok()) << run.status().to_string();
  if (run.is_ok()) obs.result = run.take();

  obs.counters = cluster.stats().counters();
  for (const auto& key : kHostOnlyCounters) obs.counters.erase(key);

  std::ostringstream out;
  trace::write_chrome_json(tracer, out);
  obs.trace_json = out.str();
  return obs;
}

Observation observe(const isa::Program& program, std::uint32_t nodes,
                    bool fastpath) {
  ClusterConfig config = test::test_config(nodes);
  config.dbt.enable_fastpath = fastpath;
  return observe_with(program, config);
}

void expect_identical(const Observation& on, const Observation& off) {
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.sim_time, off.result.sim_time);
  EXPECT_EQ(on.result.guest_insns, off.result.guest_insns);
  EXPECT_EQ(on.result.guest_stdout, off.result.guest_stdout);

  ASSERT_EQ(on.result.per_thread.size(), off.result.per_thread.size());
  for (const auto& [tid, b] : on.result.per_thread) {
    const auto it = off.result.per_thread.find(tid);
    ASSERT_NE(it, off.result.per_thread.end()) << "tid " << tid;
    EXPECT_EQ(b.execute, it->second.execute) << "tid " << tid;
    EXPECT_EQ(b.translate, it->second.translate) << "tid " << tid;
    EXPECT_EQ(b.pagefault, it->second.pagefault) << "tid " << tid;
    EXPECT_EQ(b.syscall, it->second.syscall) << "tid " << tid;
    EXPECT_EQ(b.idle, it->second.idle) << "tid " << tid;
  }

  // Whole-map equality gives a readable diff on failure via the dump below.
  EXPECT_EQ(on.counters, off.counters);
  if (on.counters != off.counters) {
    for (const auto& [key, value] : on.counters) {
      const auto it = off.counters.find(key);
      if (it == off.counters.end()) {
        ADD_FAILURE() << key << " only exists with fastpath on";
      } else if (it->second != value) {
        ADD_FAILURE() << key << ": on=" << value << " off=" << it->second;
      }
    }
  }

  EXPECT_EQ(on.trace_json, off.trace_json);
}

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

TEST(FastPathDeterminism, MutexStressGlobalLock) {
  // Heavy LL/SC contention plus DSM page migration: exercises the LL/SC
  // store filter and TLB invalidation on protection changes.
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  expect_identical(observe(program, 4, /*fastpath=*/true),
                   observe(program, 4, /*fastpath=*/false));
}

TEST(FastPathDeterminism, FalseSharingWalkWithSplitting) {
  // Page splitting rewrites the shadow map mid-run: exercises TLB
  // invalidation on split and the identity-only caching rule.
  const auto program = must(workloads::false_sharing_walk(8, 128, 4, 4));
  expect_identical(observe(program, 4, /*fastpath=*/true),
                   observe(program, 4, /*fastpath=*/false));
}

TEST(FastPathDeterminism, MemwalkMultiNode) {
  // Bulk sequential memory traffic across nodes: the TLB hot path carries
  // nearly every access; jump-cache serves the function-return jalrs.
  const auto program = must(workloads::memwalk(256 * 1024, 2, true));
  expect_identical(observe(program, 3, /*fastpath=*/true),
                   observe(program, 3, /*fastpath=*/false));
}

// Hierarchical locking (DESIGN.md section 11) is a *protocol* change, not a
// host-side one: it legitimately shifts virtual time and retired-instruction
// counts (LL/SC spins end sooner when lock handoff is faster). What must
// hold instead: the guest-visible results are byte-identical in both modes
// (the mutex_stress checksum catches any lost wakeup or broken mutual
// exclusion), the optimization never makes the contended case slower, and
// each mode is individually deterministic run to run.

/// Contended lock regime: a quantum short enough to preempt threads inside
/// the critical section, so waiters actually park in the futex.
ClusterConfig locking_config(std::uint32_t nodes, bool hier) {
  ClusterConfig config = test::test_config(nodes);
  config.dbt.quantum_insns = 500;
  config.sys.enable_hierarchical_locking = hier;
  return config;
}

TEST(HierLockingDeterminism, GlobalMutexSameGuestResultsAndNoSlower) {
  // Enough threads and iterations that workers outlive the spawn span and
  // genuinely contend — below that the lock is usually free and leasing has
  // nothing to win (see bench/ablation_locking.cpp for the swept version).
  const auto program =
      must(workloads::mutex_stress(32, 1000, /*global=*/true));
  const Observation on = observe_with(program, locking_config(4, true));
  const Observation off = observe_with(program, locking_config(4, false));
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.guest_stdout, off.result.guest_stdout);
  // The checksum epilogue prints threads * iters iff no wakeup was lost.
  EXPECT_NE(on.result.guest_stdout.find("32000"), std::string::npos);
  EXPECT_LE(on.result.sim_time, off.result.sim_time);
}

TEST(HierLockingDeterminism, PrivateMutexSameGuestResultsAndNoSlower) {
  const auto program =
      must(workloads::mutex_stress(8, 200, /*global=*/false));
  const Observation on = observe_with(program, locking_config(4, true));
  const Observation off = observe_with(program, locking_config(4, false));
  EXPECT_EQ(on.result.exit_code, off.result.exit_code);
  EXPECT_EQ(on.result.guest_stdout, off.result.guest_stdout);
  EXPECT_LE(on.result.sim_time, off.result.sim_time);
}

TEST(HierLockingDeterminism, EnabledModeIsRunToRunDeterministic) {
  const auto program = must(workloads::mutex_stress(16, 200, /*global=*/true));
  expect_identical(observe_with(program, locking_config(4, true)),
                   observe_with(program, locking_config(4, true)));
}

}  // namespace
}  // namespace dqemu
