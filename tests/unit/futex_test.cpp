// FutexTable unit tests: FIFO wake ordering across nodes, count semantics,
// flow propagation, the lease state machine of hierarchical locking
// (DESIGN.md section 11), and the waiter wire packing.
#include "sys/futex_table.hpp"

#include <gtest/gtest.h>

namespace dqemu::sys {
namespace {

using Waiter = FutexTable::Waiter;

constexpr GuestAddr kAddr = 0x2000;

TEST(FutexTableTest, WakesCrossNodeWaitersInFifoOrder) {
  FutexTable table;
  table.wait(kAddr, Waiter{1, 10, 0});
  table.wait(kAddr, Waiter{3, 30, 0});
  table.wait(kAddr, Waiter{2, 20, 0});
  ASSERT_EQ(table.waiters(kAddr), 3u);

  const auto first = table.wake(kAddr, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].node, 1);
  EXPECT_EQ(first[0].tid, 10u);

  const auto rest = table.wake(kAddr, 2);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].node, 3);
  EXPECT_EQ(rest[1].node, 2);
  EXPECT_EQ(table.waiters(kAddr), 0u);
}

TEST(FutexTableTest, WakeCountLargerThanQueueDrainsIt) {
  FutexTable table;
  table.wait(kAddr, Waiter{1, 10, 0});
  table.wait(kAddr, Waiter{1, 11, 0});
  const auto woken = table.wake(kAddr, 100);
  EXPECT_EQ(woken.size(), 2u);
  EXPECT_EQ(table.waiters(kAddr), 0u);
  EXPECT_EQ(table.total_waiters(), 0u);
}

TEST(FutexTableTest, WakeOnEmptyAddressReturnsNothing) {
  FutexTable table;
  EXPECT_TRUE(table.wake(kAddr, 1).empty());
  table.wait(0x3000, Waiter{1, 10, 0});
  EXPECT_TRUE(table.wake(kAddr, 1).empty());  // other addresses untouched
  EXPECT_EQ(table.waiters(0x3000), 1u);
}

TEST(FutexTableTest, WaiterFlowSurvivesQueueAndWake) {
  FutexTable table;
  table.wait(kAddr, Waiter{1, 10, 0xABCD});
  table.wait(kAddr, Waiter{2, 20, 0x1234});
  const auto woken = table.wake(kAddr, 2);
  ASSERT_EQ(woken.size(), 2u);
  EXPECT_EQ(woken[0].flow, 0xABCDu);
  EXPECT_EQ(woken[1].flow, 0x1234u);
}

TEST(FutexTableTest, GrantLeaseDetachesQueueInOrder) {
  FutexTable table;
  table.wait(kAddr, Waiter{1, 10, 7});
  table.wait(kAddr, Waiter{2, 20, 8});
  ASSERT_EQ(table.lease_phase(kAddr), FutexTable::LeasePhase::kNone);

  const auto queue = table.grant_lease(kAddr, /*owner=*/2, /*now=*/1000);
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue[0].tid, 10u);
  EXPECT_EQ(queue[1].tid, 20u);
  EXPECT_EQ(table.waiters(kAddr), 0u);  // queue travels with the lease
  EXPECT_EQ(table.lease_phase(kAddr), FutexTable::LeasePhase::kGranted);
  EXPECT_EQ(table.lease_owner(kAddr), 2);
  EXPECT_EQ(table.lease_granted_at(kAddr), 1000u);
  EXPECT_EQ(table.leases_out(), 1u);
}

TEST(FutexTableTest, RecallSplicesReturnedWaitersToFront) {
  FutexTable table;
  (void)table.grant_lease(kAddr, /*owner=*/1, /*now=*/0);
  table.begin_recall(kAddr, /*requester=*/3);
  EXPECT_EQ(table.lease_phase(kAddr), FutexTable::LeasePhase::kRecalling);
  EXPECT_EQ(table.lease_owner(kAddr), 1);
  EXPECT_EQ(table.lease_pending_requester(kAddr), 3);

  // An op that raced the recall was buffered by the caller and replayed
  // after finish_recall; a wait that reached the master FIRST (before the
  // lease ever moved) must still be ahead of it -> returned waiters go to
  // the queue front.
  table.wait(kAddr, Waiter{3, 31, 0});  // replayed-buffer order stand-in
  const NodeId next = table.finish_recall(
      kAddr, {Waiter{1, 11, 0}, Waiter{2, 21, 0}});
  EXPECT_EQ(next, 3);
  EXPECT_EQ(table.lease_phase(kAddr), FutexTable::LeasePhase::kNone);

  const auto woken = table.wake(kAddr, 3);
  ASSERT_EQ(woken.size(), 3u);
  EXPECT_EQ(woken[0].tid, 11u);  // owner's queue first, FIFO preserved
  EXPECT_EQ(woken[1].tid, 21u);
  EXPECT_EQ(woken[2].tid, 31u);
}

TEST(FutexTableTest, LeaseCanMoveAgainAfterRecall) {
  FutexTable table;
  (void)table.grant_lease(kAddr, 1, 0);
  table.begin_recall(kAddr, 2);
  (void)table.finish_recall(kAddr, {});
  EXPECT_EQ(table.leases_out(), 0u);
  const auto queue = table.grant_lease(kAddr, 2, 500);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(table.lease_owner(kAddr), 2);
}

TEST(FutexTableTest, WaiterPackingRoundTrips) {
  const std::vector<Waiter> waiters = {
      Waiter{1, 10, 0xDEADBEEFCAFEull},
      Waiter{0xFFFE, 0xFFFFFFFFu, 0},
      Waiter{3, 30, 42},
  };
  std::vector<std::uint8_t> wire;
  FutexTable::pack_waiters(waiters, wire);
  EXPECT_EQ(wire.size(), waiters.size() * FutexTable::kWaiterWireBytes);

  const auto back = FutexTable::unpack_waiters(wire);
  ASSERT_EQ(back.size(), waiters.size());
  for (std::size_t i = 0; i < waiters.size(); ++i) {
    EXPECT_EQ(back[i].node, waiters[i].node);
    EXPECT_EQ(back[i].tid, waiters[i].tid);
    EXPECT_EQ(back[i].flow, waiters[i].flow);
  }
}

}  // namespace
}  // namespace dqemu::sys
