// Serving plane (DESIGN.md §14): load-generator unit tests against a fake
// worker pool on a bare event queue, then end-to-end cluster runs driving
// the real guest worker pool through the delegated-syscall machinery.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "serve/load_generator.hpp"
#include "serve/serve.hpp"
#include "sim/event_queue.hpp"
#include "testutil.hpp"
#include "workloads/serve.hpp"

namespace dqemu {
namespace {

#if DQEMU_SERVING_ENABLED
#define SKIP_WITHOUT_SERVING() (void)0
#else
#define SKIP_WITHOUT_SERVING() \
  GTEST_SKIP() << "built with DQEMU_ENABLE_SERVING=OFF"
#endif

// ---------------------------------------------------------------------------
// LoadGenerator against a fake pool: workers are (node, tid) pairs that ask
// for work immediately, service each descriptor after a fixed virtual
// delay, reply with the contract checksum and ask again.
// ---------------------------------------------------------------------------

struct FakePool {
  sim::EventQueue& queue;
  serve::LoadGenerator* gen = nullptr;
  DurationPs service_ps = 50 * time_literals::kUs;
  bool wrong_checksum = false;
  std::uint32_t completions = 0;
  std::uint32_t eofs = 0;

  // The responder. Descriptors are strictly positive (work >= 1); 0 is the
  // kServeDone ack; negative is EOF.
  void on_response(NodeId node, GuestTid tid, std::int64_t result,
                   std::uint64_t /*flow*/) {
    if (result == serve::LoadGenerator::kNoMoreWork) {
      ++eofs;
      return;
    }
    if (result <= 0) return;  // done-ack
    const auto desc = static_cast<std::uint32_t>(result);
    const std::uint32_t work = desc & serve::LoadGenerator::kWorkMask;
    queue.schedule_in(service_ps, [this, node, tid, work] {
      ++completions;
      const std::uint32_t sum =
          wrong_checksum ? 0xDEADBEEF
                         : serve::LoadGenerator::expected_checksum(work);
      gen->on_done(node, tid, sum, 0);
      gen->on_get_request(node, tid, 0);
    });
  }
};

struct Harness {
  sim::EventQueue queue;
  StatsRegistry stats;
  FakePool pool{queue};
  serve::LoadGenerator gen;

  explicit Harness(const ServeConfig& config)
      : gen(queue, config, &stats, nullptr,
            [this](NodeId node, GuestTid tid, std::int64_t result,
                   std::uint64_t flow) {
              pool.on_response(node, tid, result, flow);
            }) {
    pool.gen = &gen;
  }

  void run(std::uint32_t workers) {
    gen.start();
    for (std::uint32_t w = 0; w < workers; ++w) {
      gen.on_get_request(/*src=*/static_cast<NodeId>(1 + w % 3),
                         /*tid=*/static_cast<GuestTid>(100 + w), 0);
    }
    while (queue.run_one()) {
    }
  }
};

ServeConfig open_loop_config(std::uint64_t seed = 7) {
  ServeConfig config;
  config.enabled = true;
  config.seed = seed;
  config.requests = 200;
  config.rate = 10000.0;
  return config;
}

TEST(LoadGenerator, SameSeedReproducesScheduleAndLatencies) {
  SKIP_WITHOUT_SERVING();
  Harness a(open_loop_config());
  Harness b(open_loop_config());
  a.run(4);
  b.run(4);
  EXPECT_EQ(a.gen.issued(), 200u);
  EXPECT_EQ(a.gen.retired(), 200u);
  EXPECT_EQ(a.gen.arrival_times(), b.gen.arrival_times());
  EXPECT_EQ(a.gen.latencies(), b.gen.latencies());
  EXPECT_EQ(a.stats.to_string(), b.stats.to_string());
}

TEST(LoadGenerator, DifferentSeedsChangeThePoissonSchedule) {
  SKIP_WITHOUT_SERVING();
  Harness a(open_loop_config(7));
  Harness b(open_loop_config(8));
  a.run(4);
  b.run(4);
  EXPECT_EQ(a.gen.issued(), b.gen.issued());
  EXPECT_EQ(a.gen.retired(), b.gen.retired());
  EXPECT_NE(a.gen.arrival_times(), b.gen.arrival_times());
}

TEST(LoadGenerator, UniformArrivalsAreEquallySpaced) {
  SKIP_WITHOUT_SERVING();
  ServeConfig config = open_loop_config();
  config.arrival = ArrivalProcess::kUniform;
  config.rate = 1000.0;  // gap = exactly 1 ms
  Harness h(config);
  h.run(4);
  const auto& arrivals = h.gen.arrival_times();
  ASSERT_EQ(arrivals.size(), 200u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], time_literals::kMs)
        << "gap " << i;
  }
}

TEST(LoadGenerator, PoissonArrivalRateIsRoughlyTheConfiguredRate) {
  SKIP_WITHOUT_SERVING();
  ServeConfig config = open_loop_config();
  config.requests = 2000;
  config.rate = 10000.0;
  Harness h(config);
  h.run(8);
  // 2000 draws at 10k req/s: the span estimator is within ±15% with
  // overwhelming probability (and this seed is fixed anyway).
  const double span_s =
      ps_to_seconds(h.gen.arrival_times().back() - h.gen.arrival_times()[0]);
  const double measured = 1999.0 / span_s;
  EXPECT_GT(measured, 8500.0);
  EXPECT_LT(measured, 11500.0);
}

TEST(LoadGenerator, CloningRunsEveryCloneButRetiresOnce) {
  SKIP_WITHOUT_SERVING();
  ServeConfig config = open_loop_config();
  config.requests = 100;
  config.clones = 2;
  Harness h(config);
  h.run(8);
  EXPECT_EQ(h.gen.issued(), 100u);
  EXPECT_EQ(h.gen.retired(), 100u);
  EXPECT_EQ(h.gen.dispatched(), 200u);
  EXPECT_EQ(h.pool.completions, 200u);
  EXPECT_EQ(h.stats.get("serve.clone_wins"), 100u);
  EXPECT_EQ(h.stats.get("serve.clone_wasted"), 100u);
  EXPECT_EQ(h.stats.get("serve.checksum_errors"), 0u);
}

TEST(LoadGenerator, ClosedLoopIssuesExactlyTheConfiguredRequests) {
  SKIP_WITHOUT_SERVING();
  ServeConfig config;
  config.enabled = true;
  config.arrival = ArrivalProcess::kClosed;
  config.requests = 150;
  config.clients = 5;
  config.think_mean = time_literals::kMs;
  Harness h(config);
  h.run(6);
  EXPECT_EQ(h.gen.issued(), 150u);
  EXPECT_EQ(h.gen.retired(), 150u);
  EXPECT_EQ(h.stats.get("serve.checksum_errors"), 0u);
}

TEST(LoadGenerator, EveryWorkerGetsExactlyOneEofAtDrain) {
  SKIP_WITHOUT_SERVING();
  ServeConfig config = open_loop_config();
  config.requests = 50;
  Harness h(config);
  h.run(12);  // far more workers than concurrent offered load: most park
  EXPECT_EQ(h.gen.retired(), 50u);
  EXPECT_EQ(h.pool.eofs, 12u);
  EXPECT_EQ(h.stats.get("serve.stop_signals"), 12u);
  EXPECT_GT(h.stats.get("serve.parks"), 0u);
}

TEST(LoadGenerator, ChecksumMismatchesAreCounted) {
  SKIP_WITHOUT_SERVING();
  ServeConfig config = open_loop_config();
  config.requests = 30;
  Harness h(config);
  h.pool.wrong_checksum = true;
  h.run(4);
  EXPECT_EQ(h.gen.retired(), 30u);
  EXPECT_EQ(h.stats.get("serve.checksum_errors"), 30u);
}

TEST(LoadGenerator, LatencyHistogramMatchesRetiredCount) {
  SKIP_WITHOUT_SERVING();
  Harness h(open_loop_config());
  h.run(4);
  const LogHistogram* lat = h.stats.find_histogram("serve.latency_ns");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count(), 200u);
  // Latency >= the fake pool's fixed service time, minus nothing: queueing
  // only adds. (service_ps is 50 us = 50000 ns.)
  EXPECT_GE(lat->min(), 50000u);
  EXPECT_LE(lat->quantile(0.5), lat->quantile(0.999));
  const LogHistogram* queue_ns = h.stats.find_histogram("serve.queue_ns");
  ASSERT_NE(queue_ns, nullptr);
  EXPECT_EQ(queue_ns->count(), 200u);
}

// ---------------------------------------------------------------------------
// End-to-end: the real guest worker pool on a simulated cluster.
// ---------------------------------------------------------------------------

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

ClusterConfig serving_config(std::uint32_t nodes, std::uint32_t requests,
                             std::uint32_t workers) {
  ClusterConfig config = test::test_config(nodes);
  config.serve.enabled = true;
  config.serve.requests = requests;
  config.serve.rate = 8000.0;
  config.serve.workers = workers;
  return config;
}

struct ClusterOutcome {
  core::Cluster::RunResult result;
  std::uint64_t retired = 0;
  std::uint64_t executions = 0;
  std::uint64_t checksum_errors = 0;
  std::uint64_t latency_count = 0;
  std::string error;
  bool ok = false;
};

ClusterOutcome run_serving(const ClusterConfig& config,
                           const isa::Program& program) {
  core::Cluster cluster(config, nullptr);
  ClusterOutcome outcome;
  const Status load_status = cluster.load(program);
  if (!load_status.is_ok()) {
    outcome.error = load_status.to_string();
    return outcome;
  }
  auto run = cluster.run();
  if (!run.is_ok()) {
    outcome.error = run.status().to_string();
    return outcome;
  }
  outcome.result = run.take();
  outcome.retired = cluster.stats().get("serve.retired");
  outcome.executions = cluster.stats().get("serve.executions");
  outcome.checksum_errors = cluster.stats().get("serve.checksum_errors");
  if (const LogHistogram* lat =
          cluster.stats().find_histogram("serve.latency_ns")) {
    outcome.latency_count = lat->count();
  }
  outcome.ok = true;
  return outcome;
}

TEST(ServeCluster, EndToEndRetiresEverythingAndChecksums) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 8}));
  const auto outcome = run_serving(serving_config(2, 300, 8), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.exit_code, 0u);
  // The guest's only output: total executions = requests x clones.
  EXPECT_EQ(outcome.result.guest_stdout, "300\n");
  EXPECT_EQ(outcome.retired, 300u);
  EXPECT_EQ(outcome.executions, 300u);
  EXPECT_EQ(outcome.checksum_errors, 0u);
  EXPECT_EQ(outcome.latency_count, 300u);
}

TEST(ServeCluster, CloningDoublesExecutionsNotRetirements) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 8}));
  ClusterConfig config = serving_config(2, 150, 8);
  config.serve.clones = 2;
  const auto outcome = run_serving(config, program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "300\n");  // 150 x 2 executions
  EXPECT_EQ(outcome.retired, 150u);
  EXPECT_EQ(outcome.executions, 300u);
  EXPECT_EQ(outcome.checksum_errors, 0u);
}

TEST(ServeCluster, ClosedLoopOnFourNodes) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 12}));
  ClusterConfig config = serving_config(4, 240, 12);
  config.serve.arrival = ArrivalProcess::kClosed;
  config.serve.clients = 6;
  config.serve.think_mean = time_literals::kMs;
  const auto outcome = run_serving(config, program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "240\n");
  EXPECT_EQ(outcome.retired, 240u);
  EXPECT_EQ(outcome.checksum_errors, 0u);
}

TEST(ServeCluster, SurvivesTheLossyWire) {
  SKIP_WITHOUT_SERVING();
  const auto program = must(workloads::serve_pool({.workers = 8}));
  ClusterConfig config = serving_config(2, 200, 8);
  config.faults.enabled = true;
  config.faults.seed = 7;
  config.faults.drop_pct = 2;
  config.faults.dup_pct = 1;
  const auto outcome = run_serving(config, program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout, "200\n");
  EXPECT_EQ(outcome.retired, 200u);
  EXPECT_EQ(outcome.checksum_errors, 0u);
}

TEST(ServeGate, RuntimeEnabledButCompiledOutFailsLoudly) {
  if (serve::compiled_in()) {
    GTEST_SKIP() << "serving compiled in; gate refusal untestable";
  }
  const auto program = must(workloads::serve_pool({.workers = 4}));
  const auto outcome = run_serving(serving_config(2, 10, 4), program);
  EXPECT_FALSE(outcome.ok);
  EXPECT_NE(outcome.error.find("compiled out"), std::string::npos)
      << outcome.error;
}

TEST(ServeGate, ServePoolRejectsBadParams) {
  workloads::ServePoolParams bad;
  bad.workers = 0;
  EXPECT_FALSE(workloads::serve_pool(bad).is_ok());
  bad.workers = 4;
  bad.table_words = 1000;  // not a power of two
  EXPECT_FALSE(workloads::serve_pool(bad).is_ok());
}

}  // namespace
}  // namespace dqemu
