// Log-bucketed histogram (src/common/histogram): bucket geometry, bounded
// relative error of quantile queries, exact merging, and the stats-registry
// surface the serving plane records latencies through.
#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace dqemu {
namespace {

TEST(LogHistogram, SmallValuesHaveExactBuckets) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSubBucketCount; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_upper(static_cast<std::uint32_t>(v)), v);
    h.record(v);
  }
  // With one sample per exact bucket, every quantile is an exact sample.
  EXPECT_EQ(h.quantile(0.0), 0u);
  EXPECT_EQ(h.quantile(0.5), 15u);
  EXPECT_EQ(h.quantile(1.0), 31u);
}

TEST(LogHistogram, BucketUpperIsTightestContainingBound) {
  // For any value, bucket_upper(bucket_index(v)) >= v, and the bucket one
  // below (when it exists) cannot contain v.
  for (std::uint64_t v : {1ULL, 31ULL, 32ULL, 33ULL, 500ULL, 1000ULL,
                          4095ULL, 4096ULL, 1ULL << 31, (1ULL << 62) + 17}) {
    const std::uint32_t index = LogHistogram::bucket_index(v);
    EXPECT_GE(LogHistogram::bucket_upper(index), v) << v;
    if (index > 0) {
      EXPECT_LT(LogHistogram::bucket_upper(index - 1), v) << v;
    }
  }
}

TEST(LogHistogram, QuantileErrorIsBounded) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  // Rank 500's bucket is [496, 503] (32 sub-buckets in [256, 512)), so the
  // p50 answer is the bucket's upper bound: 503 — within 1/32 of the true
  // median, and never an understatement.
  EXPECT_EQ(h.quantile(0.5), 503u);
  EXPECT_EQ(h.quantile(0.0), 1u);    // exact min
  EXPECT_EQ(h.quantile(1.0), 1000u);  // exact max (clamped)
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST(LogHistogram, QuantilesAreMonotone) {
  LogHistogram h;
  std::uint64_t v = 1;
  for (int i = 0; i < 200; ++i) {
    h.record(v);
    v = v * 3 + 1;
    if (v > (1ULL << 40)) v = 1;
  }
  std::uint64_t prev = 0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const std::uint64_t value = h.quantile(q);
    EXPECT_GE(value, prev) << q;
    prev = value;
  }
}

TEST(LogHistogram, WeightedRecordEqualsRepeatedRecord) {
  LogHistogram repeated;
  LogHistogram weighted;
  for (int i = 0; i < 7; ++i) repeated.record(12345);
  weighted.record(12345, 7);
  EXPECT_EQ(repeated, weighted);
}

TEST(LogHistogram, MergeIsExactBucketwiseAddition) {
  LogHistogram a;
  LogHistogram b;
  LogHistogram combined;
  for (std::uint64_t v = 1; v <= 500; ++v) {
    a.record(v * 17);
    combined.record(v * 17);
  }
  for (std::uint64_t v = 1; v <= 300; ++v) {
    b.record(v * 1001);
    combined.record(v * 1001);
  }
  a.merge(b);
  EXPECT_EQ(a, combined);
  EXPECT_EQ(a.to_string(), combined.to_string());
}

TEST(LogHistogram, EmptyAndClear) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.record(99);
  EXPECT_FALSE(h.empty());
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h, LogHistogram{});
}

TEST(LogHistogram, ToStringIsDeterministic) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * v);
  const std::string dump = h.to_string();
  EXPECT_EQ(dump, h.to_string());
  EXPECT_NE(dump.find("count=100"), std::string::npos);
  EXPECT_NE(dump.find("max=10000"), std::string::npos);
  EXPECT_NE(dump.find("p99="), std::string::npos);
}

TEST(StatsRegistryHistograms, CreateOnTouchFindAndClear) {
  StatsRegistry stats;
  EXPECT_EQ(stats.find_histogram("serve.latency_ns"), nullptr);
  stats.histogram("serve.latency_ns").record(250);
  stats.histogram("serve.latency_ns").record(750);
  const LogHistogram* found = stats.find_histogram("serve.latency_ns");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(), 2u);
  // Histograms ride the same to_string dump as the counters.
  EXPECT_NE(stats.to_string().find("serve.latency_ns"), std::string::npos);
  stats.clear();
  EXPECT_EQ(stats.find_histogram("serve.latency_ns"), nullptr);
}

}  // namespace
}  // namespace dqemu
