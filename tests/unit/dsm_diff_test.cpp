// Unit tests: diff-encoded DSM data plane (DESIGN.md §12).
//
// Covers the mem/page_diff.hpp codec (mask / encode / apply round-trips,
// malformed-payload rejection, twin bookkeeping) and the protocol behavior
// with DsmConfig::enable_diff_transfers on: diff writebacks, diff grants to
// stale readers, epoch fallback to full pages, and the recall/grant races.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "dsm/client.hpp"
#include "dsm/directory.hpp"
#include "dsm/wire.hpp"
#include "mem/page_diff.hpp"
#include "net/network.hpp"

namespace dqemu::dsm {
namespace {

constexpr std::uint32_t kMem = 32u << 20;
constexpr std::uint32_t kPage = 4096;
constexpr std::uint32_t kLine = mem::diff_line_bytes(kPage);

// ---- codec -----------------------------------------------------------------

std::vector<std::uint8_t> pattern_page(std::uint8_t seed) {
  std::vector<std::uint8_t> page(kPage);
  for (std::size_t i = 0; i < page.size(); ++i) {
    page[i] = static_cast<std::uint8_t>(seed + i * 7);
  }
  return page;
}

TEST(PageDiffCodec, LineSizeKeepsBitmapInOneWord) {
  EXPECT_EQ(mem::diff_line_bytes(1024), 64u);
  EXPECT_EQ(mem::diff_line_bytes(4096), 64u);
  EXPECT_EQ(mem::diff_line_count(4096), 64u);
  EXPECT_EQ(mem::diff_line_bytes(65536), 1024u);
  EXPECT_EQ(mem::diff_line_count(65536), 64u);
  for (std::uint32_t ps = 256; ps <= (1u << 20); ps *= 2) {
    EXPECT_LE(mem::diff_line_count(ps), 64u) << ps;
    EXPECT_EQ(ps % mem::diff_line_bytes(ps), 0u) << ps;
  }
}

TEST(PageDiffCodec, EmptyDiffRoundTrip) {
  const auto base = pattern_page(1);
  auto cur = base;
  EXPECT_EQ(mem::diff_mask(base, cur, kLine), 0u);
  const auto payload = mem::encode_diff(0, cur, kLine);
  EXPECT_EQ(payload.size(), 8u);  // bitmap only
  EXPECT_EQ(mem::decode_diff_mask(payload), 0u);
  auto target = pattern_page(1);
  ASSERT_TRUE(mem::apply_diff(payload, target, kLine));
  EXPECT_EQ(target, base);
}

TEST(PageDiffCodec, SingleLineRoundTrip) {
  const auto base = pattern_page(2);
  auto cur = base;
  cur[5 * kLine + 17] ^= 0xFF;  // one byte in line 5
  const std::uint64_t mask = mem::diff_mask(base, cur, kLine);
  EXPECT_EQ(mask, 1ull << 5);
  const auto payload = mem::encode_diff(mask, cur, kLine);
  EXPECT_EQ(payload.size(), 8u + kLine);
  auto target = base;  // stale copy
  ASSERT_TRUE(mem::apply_diff(payload, target, kLine));
  EXPECT_EQ(target, cur);
}

TEST(PageDiffCodec, FullPageRoundTrip) {
  const auto base = pattern_page(3);
  auto cur = base;
  for (std::uint32_t line = 0; line < mem::diff_line_count(kPage); ++line) {
    cur[line * kLine] ^= 0x5A;
  }
  const std::uint64_t mask = mem::diff_mask(base, cur, kLine);
  EXPECT_EQ(mask, ~0ull);  // 64 lines, all dirty
  const auto payload = mem::encode_diff(mask, cur, kLine);
  EXPECT_EQ(payload.size(), 8u + kPage);
  auto target = base;
  ASSERT_TRUE(mem::apply_diff(payload, target, kLine));
  EXPECT_EQ(target, cur);
}

TEST(PageDiffCodec, ShardConfinedDirtyLines) {
  // A shard-split page (mem/shadow_map.hpp) confines one node's writes to
  // one shard: with 4 shards of a 4 KiB page, shard 2 spans lines 32..47.
  const auto base = pattern_page(4);
  auto cur = base;
  const std::uint32_t shard_bytes = kPage / 4;
  for (std::uint32_t off = 2 * shard_bytes; off < 3 * shard_bytes; off += 96) {
    cur[off] ^= 0x11;
  }
  const std::uint64_t mask = mem::diff_mask(base, cur, kLine);
  EXPECT_NE(mask, 0u);
  const std::uint64_t shard_lines = 0xFFFFull << 32;  // lines 32..47
  EXPECT_EQ(mask & ~shard_lines, 0u);
  auto target = base;
  ASSERT_TRUE(mem::apply_diff(mem::encode_diff(mask, cur, kLine), target,
                              kLine));
  EXPECT_EQ(target, cur);
}

TEST(PageDiffCodec, SparseNonContiguousLines) {
  const auto base = pattern_page(5);
  auto cur = base;
  cur[0] ^= 1;                    // line 0
  cur[31 * kLine + kLine - 1] ^= 1;  // line 31, last byte
  cur[63 * kLine] ^= 1;           // line 63
  const std::uint64_t mask = mem::diff_mask(base, cur, kLine);
  EXPECT_EQ(mask, (1ull << 0) | (1ull << 31) | (1ull << 63));
  const auto payload = mem::encode_diff(mask, cur, kLine);
  EXPECT_EQ(payload.size(), 8u + 3 * kLine);
  auto target = base;
  ASSERT_TRUE(mem::apply_diff(payload, target, kLine));
  EXPECT_EQ(target, cur);
}

TEST(PageDiffCodec, MalformedPayloadsRejected) {
  std::vector<std::uint8_t> page(kPage, 0);
  // Short header.
  std::vector<std::uint8_t> short_hdr(4, 0);
  EXPECT_FALSE(mem::apply_diff(short_hdr, page, kLine));
  // Size does not match popcount: claims 2 lines, carries 1.
  auto payload = mem::encode_diff(0b11, pattern_page(6), kLine);
  payload.resize(8 + kLine);
  EXPECT_FALSE(mem::apply_diff(payload, page, kLine));
  // Line index past the end of a smaller page.
  const auto big = mem::encode_diff(1ull << 63, pattern_page(7), kLine);
  std::vector<std::uint8_t> small_page(1024, 0);  // only 16 lines
  EXPECT_FALSE(mem::apply_diff(big, small_page, kLine));
  // Sanity: untouched page after rejections.
  EXPECT_TRUE(std::all_of(page.begin(), page.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(PageDiffCodec, TwinStoreNeverRefreshes) {
  mem::TwinStore twins;
  const auto first = pattern_page(8);
  twins.capture(7, first);
  ASSERT_TRUE(twins.has(7));
  // A re-grant must not refresh the twin: earlier-dirtied lines would
  // otherwise vanish from the next diff.
  twins.capture(7, pattern_page(9));
  EXPECT_TRUE(std::equal(twins.twin(7).begin(), twins.twin(7).end(),
                         first.begin(), first.end()));
  twins.drop(7);
  EXPECT_FALSE(twins.has(7));
  twins.drop(7);  // idempotent
  EXPECT_EQ(twins.size(), 0u);
}

// ---- protocol with the diff plane enabled ----------------------------------

struct DiffProtocolFixture : ::testing::Test {
  DiffProtocolFixture() {
    DsmConfig dsm;
    dsm.enable_diff_transfers = true;
    build(dsm);
  }

  void build(DsmConfig dsm) {
    queue = std::make_unique<sim::EventQueue>();
    network = std::make_unique<net::Network>(*queue, NetworkConfig{}, 3,
                                             &stats);
    for (int i = 0; i < 3; ++i) {
      spaces[i] = std::make_unique<mem::AddressSpace>(kMem, kPage);
      shadows[i] = std::make_unique<mem::ShadowMap>(kPage, 4);
    }
    Directory::Params params;
    params.dsm = dsm;
    params.node_count = 3;
    params.shadow_pool_first_page = (kMem / kPage) - 1024;
    params.shadow_pool_page_count = 1024;
    directory = std::make_unique<Directory>(*network, *queue, *spaces[0],
                                            params, &stats);
    for (NodeId n = 0; n < 3; ++n) {
      clients[n] = std::make_unique<DsmClient>(
          n, *network, *spaces[n], *shadows[n], nullptr, nullptr, &stats,
          [this, n](std::uint32_t page) { wakes[n].push_back(page); },
          nullptr, dsm.enable_diff_transfers);
    }
    network->attach(0, [this](net::Message msg) {
      switch (static_cast<DsmMsg>(msg.type)) {
        case DsmMsg::kReadReq:
        case DsmMsg::kWriteReq:
        case DsmMsg::kInvAck:
        case DsmMsg::kDowngradeAck:
        case DsmMsg::kInvAckDiff:
        case DsmMsg::kDowngradeAckDiff:
          directory->handle_message(msg);
          break;
        default:
          clients[0]->handle_message(msg);
      }
    });
    for (NodeId n = 1; n < 3; ++n) {
      DsmClient* client = clients[n].get();
      network->attach(n, [client](net::Message msg) {
        client->handle_message(msg);
      });
    }
  }

  void settle() { queue->run(100000); }

  StatsRegistry stats;
  std::unique_ptr<sim::EventQueue> queue;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<mem::AddressSpace> spaces[3];
  std::unique_ptr<mem::ShadowMap> shadows[3];
  std::unique_ptr<Directory> directory;
  std::unique_ptr<DsmClient> clients[3];
  std::vector<std::uint32_t> wakes[3];
};

#if DQEMU_DSM_DIFF_ENABLED

TEST_F(DiffProtocolFixture, WriteGrantCapturesTwin) {
  clients[1]->request_page(10, 0, /*write=*/true, 1);
  settle();
  EXPECT_TRUE(clients[1]->diff_enabled());
  EXPECT_TRUE(clients[1]->has_twin(10));
  // Read grants don't need a twin.
  clients[2]->request_page(11, 0, /*write=*/false, 2);
  settle();
  EXPECT_FALSE(clients[2]->has_twin(11));
}

TEST_F(DiffProtocolFixture, DirtyWritebackTravelsAsDiff) {
  spaces[0]->store(20 * kPage + 128, 0xAABB, 4);
  clients[1]->request_page(20, 0, /*write=*/true, 1);
  settle();
  spaces[1]->store(20 * kPage, 0x12345678, 4);
  const auto wire_before = stats.get("dsm.bytes_on_wire");
  clients[2]->request_page(20, 0, /*write=*/false, 2);
  settle();
  // The recall of node 1 carried a one-line diff, not the whole page.
  EXPECT_GE(stats.get("dsm.diff_writebacks"), 1u);
  EXPECT_GE(stats.get("dsm.diff_writebacks_applied"), 1u);
  EXPECT_GT(stats.get("dsm.bytes_saved"), 0u);
  EXPECT_GT(stats.get("dsm.bytes_on_wire"), wire_before);
  // Coherence is intact: home and the next reader see both stores.
  EXPECT_EQ(spaces[0]->load(20 * kPage, 4), 0x12345678u);
  EXPECT_EQ(spaces[2]->load(20 * kPage, 4), 0x12345678u);
  EXPECT_EQ(spaces[2]->load(20 * kPage + 128, 4), 0xAABBu);
  // The ex-owner's twin is gone with its write access.
  EXPECT_FALSE(clients[1]->has_twin(20));
}

TEST_F(DiffProtocolFixture, StaleReaderServedByDiffGrant) {
  // Node 1 fetches the page cold (full transfer, version recorded), gets
  // invalidated by node 2's write, then re-reads: the directory knows node
  // 1 still retains the old bytes and ships only node 2's dirty lines.
  clients[1]->request_page(30, 0, /*write=*/false, 1);
  settle();
  EXPECT_GE(stats.get("dsm.diff_fallback_unknown"), 1u);  // cold fetch
  clients[2]->request_page(30, 0, /*write=*/true, 2);
  settle();
  spaces[2]->store(30 * kPage + 64, 0xDEAD, 4);
  EXPECT_EQ(spaces[1]->access(30), mem::PageAccess::kNone);
  clients[1]->request_page(30, 0, /*write=*/false, 1);
  settle();
  EXPECT_GE(stats.get("dsm.diff_grants"), 1u);
  EXPECT_GE(stats.get("dsm.diff_grants_received"), 1u);
  EXPECT_EQ(spaces[1]->load(30 * kPage + 64, 4), 0xDEADu);
  EXPECT_EQ(spaces[1]->access(30), mem::PageAccess::kRead);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(DiffProtocolFixture, DiffGrantRacingInvalidation) {
  // Regression for the in-flight-grant race (DESIGN.md §12): node 1's
  // retained stale bytes are the diff base for a *write* grant that is
  // issued right after node 1 was invalidated by the previous owner's
  // recall. Per-channel FIFO delivers invalidate before the diff grant;
  // applying the diff onto the retained bytes must reconstruct the exact
  // current content, and the new twin must snapshot it.
  spaces[0]->store(40 * kPage + 512, 0xCAFE, 4);
  clients[1]->request_page(40, 0, /*write=*/false, 1);
  settle();
  clients[2]->request_page(40, 0, /*write=*/true, 2);
  settle();
  spaces[2]->store(40 * kPage, 0xBEEF, 4);
  // Node 1 wants it back as a writer while node 2 still owns it: the
  // directory recalls node 2 (diff writeback) and grants node 1 a diff
  // against the epoch-0 bytes node 1 kept across its invalidation.
  clients[1]->request_page(40, 0, /*write=*/true, 1);
  settle();
  EXPECT_EQ(directory->owner(40), 1);
  EXPECT_EQ(spaces[1]->access(40), mem::PageAccess::kReadWrite);
  EXPECT_EQ(spaces[1]->load(40 * kPage, 4), 0xBEEFu);
  EXPECT_EQ(spaces[1]->load(40 * kPage + 512, 4), 0xCAFEu);
  EXPECT_TRUE(clients[1]->has_twin(40));
  EXPECT_GE(stats.get("dsm.diff_grants"), 1u);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(DiffProtocolFixture, EpochHistoryOverflowFallsBackToFullPage) {
  DsmConfig dsm;
  dsm.enable_diff_transfers = true;
  dsm.diff_history_depth = 1;  // only the latest transition survives
  build(dsm);

  clients[1]->request_page(50, 0, /*write=*/false, 1);  // held epoch e0
  settle();
  const auto held = directory->node_epoch(50, 1);
  ASSERT_NE(held, Directory::kNoEpoch);
  // Two write/recall rounds by node 2 advance the epoch twice; with a
  // depth-1 history the union mask back to node 1's version is gone.
  for (std::uint32_t round = 0; round < 2; ++round) {
    clients[2]->request_page(50, 0, /*write=*/true, 2);
    settle();
    spaces[2]->store(50 * kPage + 64u * round, 0x1000u + round, 4);
    clients[0]->request_page(50, 0, /*write=*/false, 0);  // recall owner
    settle();
  }
  EXPECT_GE(directory->epoch(50), held + 2);
  const auto stale_before = stats.get("dsm.diff_fallback_stale");
  const auto grants_before = stats.get("dsm.diff_grants");
  clients[1]->request_page(50, 0, /*write=*/false, 1);
  settle();
  EXPECT_EQ(stats.get("dsm.diff_fallback_stale"), stale_before + 1);
  EXPECT_EQ(stats.get("dsm.diff_grants"), grants_before);  // full page sent
  EXPECT_EQ(spaces[1]->load(50 * kPage + 64, 4), 0x1001u);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(DiffProtocolFixture, ForwardedDiffsStayCoherent) {
  DsmConfig dsm;
  dsm.enable_diff_transfers = true;
  dsm.enable_forwarding = true;
  dsm.forward_trigger = 2;
  dsm.forward_depth = 4;
  build(dsm);
  spaces[0]->store(112 * kPage, 0x77, 4);

  clients[1]->request_page(110, 0, false, 1);
  settle();
  clients[1]->request_page(111, 0, false, 1);
  settle();
  // Pushes to a node with no retained version travel as full pages.
  ASSERT_EQ(spaces[1]->access(112), mem::PageAccess::kRead);
  EXPECT_EQ(spaces[1]->load(112 * kPage, 4), 0x77u);
  // Invalidate the forwarded copy via a remote write, recall the writer so
  // the home copy is fresh again, then stream again: the write-affinity
  // heuristic (a page last written by another node is never pushed) must
  // keep holding with the diff plane on, so 112 stays uncached on node 1.
  clients[2]->request_page(112, 0, /*write=*/true, 2);
  settle();
  EXPECT_EQ(spaces[1]->access(112), mem::PageAccess::kNone);
  spaces[2]->store(112 * kPage, 0x99, 4);
  clients[0]->request_page(112, 0, /*write=*/false, 0);  // recall the owner
  settle();
  clients[1]->request_page(110, 0, false, 1);
  settle();
  clients[1]->request_page(111, 0, false, 1);
  settle();
  EXPECT_EQ(spaces[1]->access(112), mem::PageAccess::kNone);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(DiffProtocolFixture, ClientAppliesForwardDiffOntoRetainedBytes) {
  // Client-side half of the diff-forward path, driven directly: node 1
  // retains invalidated (stale) bytes; a kForwardDiff replaying the dirty
  // lines must reconstruct the current content and grant read access.
  spaces[0]->store(120 * kPage + 256, 0x5150, 4);
  clients[1]->request_page(120, 0, /*write=*/false, 1);
  settle();
  clients[2]->request_page(120, 0, /*write=*/true, 2);
  settle();
  ASSERT_EQ(spaces[1]->access(120), mem::PageAccess::kNone);
  spaces[2]->store(120 * kPage, 0x99, 4);
  clients[0]->request_page(120, 0, /*write=*/false, 0);  // refresh home
  settle();

  net::Message push;
  push.src = kMasterNode;
  push.dst = 1;
  push.type = static_cast<std::uint32_t>(DsmMsg::kForwardDiff);
  push.a = 120;
  push.data = mem::encode_diff(1ull << 0, spaces[0]->page_data(120), kLine);
  network->send(std::move(push));
  settle();

  EXPECT_EQ(spaces[1]->access(120), mem::PageAccess::kRead);
  EXPECT_EQ(spaces[1]->load(120 * kPage, 4), 0x99u);
  EXPECT_EQ(spaces[1]->load(120 * kPage + 256, 4), 0x5150u);
  EXPECT_EQ(stats.get("dsm.diff_forwards_received"), 1u);
  EXPECT_GE(stats.get("dsm.forwards_installed"), 1u);
}

TEST_F(DiffProtocolFixture, UpgradeStillCarriesNoPayload) {
  clients[1]->request_page(60, 0, /*write=*/false, 1);
  settle();
  const auto wire = stats.get("dsm.bytes_on_wire");
  clients[1]->request_page(60, 0, /*write=*/true, 1);
  settle();
  EXPECT_EQ(directory->owner(60), 1);
  // The upgrade grant carried no content, so no data-plane bytes moved.
  EXPECT_EQ(stats.get("dsm.bytes_on_wire"), wire);
  // The upgrade snapshots the twin from the local (current) read copy.
  EXPECT_TRUE(clients[1]->has_twin(60));
}

#endif  // DQEMU_DSM_DIFF_ENABLED

// ---- diff on/off equivalence ------------------------------------------------

// Drives the same request/store script through a diff-on and a diff-off
// cluster and demands bit-identical memory + directory state. This is the
// unit-level version of the bench's guest-output equivalence gate.
TEST(DiffEquivalence, ProtocolStateMatchesFullPagePlane) {
  auto run_script = [](bool diff_on) {
    struct World {
      StatsRegistry stats;
      std::unique_ptr<sim::EventQueue> queue;
      std::unique_ptr<net::Network> network;
      std::unique_ptr<mem::AddressSpace> spaces[3];
      std::unique_ptr<mem::ShadowMap> shadows[3];
      std::unique_ptr<Directory> directory;
      std::unique_ptr<DsmClient> clients[3];
    };
    auto w = std::make_unique<World>();
    w->queue = std::make_unique<sim::EventQueue>();
    w->network = std::make_unique<net::Network>(*w->queue, NetworkConfig{}, 3,
                                                &w->stats);
    for (int i = 0; i < 3; ++i) {
      w->spaces[i] = std::make_unique<mem::AddressSpace>(kMem, kPage);
      w->shadows[i] = std::make_unique<mem::ShadowMap>(kPage, 4);
    }
    Directory::Params params;
    params.dsm.enable_diff_transfers = diff_on;
    params.node_count = 3;
    params.shadow_pool_first_page = (kMem / kPage) - 1024;
    params.shadow_pool_page_count = 1024;
    w->directory = std::make_unique<Directory>(*w->network, *w->queue,
                                               *w->spaces[0], params,
                                               &w->stats);
    for (NodeId n = 0; n < 3; ++n) {
      w->clients[n] = std::make_unique<DsmClient>(
          n, *w->network, *w->spaces[n], *w->shadows[n], nullptr, nullptr,
          &w->stats, [](std::uint32_t) {}, nullptr, diff_on);
    }
    World* wp = w.get();
    w->network->attach(0, [wp](net::Message msg) {
      switch (static_cast<DsmMsg>(msg.type)) {
        case DsmMsg::kReadReq:
        case DsmMsg::kWriteReq:
        case DsmMsg::kInvAck:
        case DsmMsg::kDowngradeAck:
        case DsmMsg::kInvAckDiff:
        case DsmMsg::kDowngradeAckDiff:
          wp->directory->handle_message(msg);
          break;
        default:
          wp->clients[0]->handle_message(msg);
      }
    });
    for (NodeId n = 1; n < 3; ++n) {
      DsmClient* client = wp->clients[n].get();
      w->network->attach(n, [client](net::Message msg) {
        client->handle_message(msg);
      });
    }

    // Script: ping-pong writes, interleaved reads, a revisit after
    // invalidation, all over three pages.
    auto settle = [wp] { wp->queue->run(100000); };
    for (std::uint32_t round = 0; round < 4; ++round) {
      const NodeId writer = static_cast<NodeId>(1 + (round & 1));
      const NodeId reader = static_cast<NodeId>(3 - writer);
      w->clients[writer]->request_page(70, 0, true, writer);
      settle();
      w->spaces[writer]->store(70 * kPage + 8u * round, 0xA0u + round, 4);
      w->clients[reader]->request_page(70, 0, false, reader);
      settle();
      w->clients[writer]->request_page(71u + (round & 1), 0, true, writer);
      settle();
      w->spaces[writer]->store((71u + (round & 1)) * kPage, round, 4);
    }
    w->clients[1]->request_page(70, 0, false, 1);
    w->clients[2]->request_page(71, 0, false, 2);
    settle();
    return w;
  };

  const auto on = run_script(true);
  const auto off = run_script(false);
  for (std::uint32_t page = 70; page <= 72; ++page) {
    EXPECT_EQ(on->directory->state(page), off->directory->state(page)) << page;
    EXPECT_EQ(on->directory->owner(page), off->directory->owner(page)) << page;
    for (int n = 0; n < 3; ++n) {
      EXPECT_EQ(on->spaces[n]->access(page), off->spaces[n]->access(page))
          << "node " << n << " page " << page;
      const auto a = on->spaces[n]->page_data(page);
      const auto b = off->spaces[n]->page_data(page);
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
          << "node " << n << " page " << page;
    }
  }
#if DQEMU_DSM_DIFF_ENABLED
  EXPECT_GT(on->stats.get("dsm.diff_writebacks"), 0u);
  EXPECT_GT(on->stats.get("dsm.bytes_saved"), 0u);
#endif
  EXPECT_EQ(off->stats.get("dsm.diff_writebacks"), 0u);
  EXPECT_EQ(off->stats.get("dsm.bytes_saved"), 0u);
}

TEST(DiffEquivalence, RuntimeOffSendsNoDiffMessages) {
  // enable_diff_transfers defaults to false: the wire must carry only the
  // classic vocabulary even in a diff-capable build.
  StatsRegistry stats;
  sim::EventQueue queue;
  net::Network network(queue, NetworkConfig{}, 2, &stats);
  mem::AddressSpace home(kMem, kPage);
  mem::AddressSpace remote(kMem, kPage);
  mem::ShadowMap shadow_home(kPage, 4);
  mem::ShadowMap shadow_remote(kPage, 4);
  Directory::Params params;
  params.node_count = 2;
  params.shadow_pool_first_page = (kMem / kPage) - 1024;
  params.shadow_pool_page_count = 1024;
  Directory directory(network, queue, home, params, &stats);
  DsmClient master(0, network, home, shadow_home, nullptr, nullptr, &stats,
                   [](std::uint32_t) {});
  DsmClient slave(1, network, remote, shadow_remote, nullptr, nullptr, &stats,
                  [](std::uint32_t) {});
  network.attach(0, [&](net::Message msg) {
    switch (static_cast<DsmMsg>(msg.type)) {
      case DsmMsg::kReadReq:
      case DsmMsg::kWriteReq:
      case DsmMsg::kInvAck:
      case DsmMsg::kDowngradeAck:
        directory.handle_message(msg);
        break;
      default:
        master.handle_message(msg);
    }
  });
  network.attach(1, [&](net::Message msg) { slave.handle_message(msg); });

  EXPECT_FALSE(slave.diff_enabled());
  slave.request_page(10, 0, /*write=*/true, 1);
  queue.run(100000);
  remote.store(10 * kPage, 0xF00D, 4);
  master.request_page(10, 0, /*write=*/false, 0);  // recall the owner
  queue.run(100000);
  EXPECT_EQ(home.load(10 * kPage, 4), 0xF00Du);
  EXPECT_FALSE(slave.has_twin(10));
  EXPECT_EQ(stats.get("dsm.diff_writebacks"), 0u);
  EXPECT_EQ(stats.get("dsm.diff_grants"), 0u);
  EXPECT_EQ(stats.get("dsm.diff_fallback_unknown"), 0u);
}

}  // namespace
}  // namespace dqemu::dsm
