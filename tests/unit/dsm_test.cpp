// Unit tests: DSM directory protocol + client, driven over a real
// simulated network (master = node 0 hosting the directory; nodes 1 and 2
// run DsmClients).
#include <gtest/gtest.h>

#include <memory>

#include "dsm/client.hpp"
#include "dsm/directory.hpp"
#include "dsm/stream_detector.hpp"
#include "dsm/wire.hpp"
#include "net/network.hpp"

namespace dqemu::dsm {
namespace {

constexpr std::uint32_t kMem = 32u << 20;
constexpr std::uint32_t kPage = 4096;

struct ProtocolFixture : ::testing::Test {
  ProtocolFixture() { build({}); }

  void build(DsmConfig dsm) {
    queue = std::make_unique<sim::EventQueue>();
    network = std::make_unique<net::Network>(*queue, NetworkConfig{}, 3,
                                             &stats);
    for (int i = 0; i < 3; ++i) {
      spaces[i] = std::make_unique<mem::AddressSpace>(kMem, kPage);
      shadows[i] = std::make_unique<mem::ShadowMap>(kPage, 4);
    }
    Directory::Params params;
    params.dsm = dsm;
    params.node_count = 3;
    params.shadow_pool_first_page = (kMem / kPage) - 1024;
    params.shadow_pool_page_count = 1024;
    directory = std::make_unique<Directory>(*network, *queue, *spaces[0],
                                            params, &stats);
    for (NodeId n = 0; n < 3; ++n) {
      clients[n] = std::make_unique<DsmClient>(
          n, *network, *spaces[n], *shadows[n], nullptr, nullptr, &stats,
          [this, n](std::uint32_t page) { wakes[n].push_back(page); });
    }
    network->attach(0, [this](net::Message msg) {
      switch (static_cast<DsmMsg>(msg.type)) {
        case DsmMsg::kReadReq:
        case DsmMsg::kWriteReq:
        case DsmMsg::kInvAck:
        case DsmMsg::kDowngradeAck:
          directory->handle_message(msg);
          break;
        default:
          clients[0]->handle_message(msg);
      }
    });
    for (NodeId n = 1; n < 3; ++n) {
      DsmClient* client = clients[n].get();
      network->attach(n, [client](net::Message msg) {
        client->handle_message(msg);
      });
    }
  }

  void settle() { queue->run(100000); }

  StatsRegistry stats;
  std::unique_ptr<sim::EventQueue> queue;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<mem::AddressSpace> spaces[3];
  std::unique_ptr<mem::ShadowMap> shadows[3];
  std::unique_ptr<Directory> directory;
  std::unique_ptr<DsmClient> clients[3];
  std::vector<std::uint32_t> wakes[3];
};

TEST_F(ProtocolFixture, BootState) {
  // Master owns everything outside the shadow pool.
  EXPECT_EQ(directory->state(10), Directory::PageState::kModified);
  EXPECT_EQ(directory->owner(10), kMasterNode);
  EXPECT_EQ(spaces[0]->access(10), mem::PageAccess::kReadWrite);
  const std::uint32_t pool_page = (kMem / kPage) - 1024;
  EXPECT_EQ(directory->state(pool_page), Directory::PageState::kHome);
  EXPECT_EQ(spaces[0]->access(pool_page), mem::PageAccess::kNone);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(ProtocolFixture, ReadGrantDowngradesMasterAndShares) {
  spaces[0]->store(10 * kPage + 4, 0xBEEF, 4);
  clients[1]->request_page(10, 4, /*write=*/false, 1);
  EXPECT_TRUE(clients[1]->pending(10));
  settle();
  EXPECT_FALSE(clients[1]->pending(10));
  EXPECT_EQ(directory->state(10), Directory::PageState::kShared);
  EXPECT_EQ(directory->sharer_mask(10) & 0b110, 0b010u);
  EXPECT_EQ(spaces[0]->access(10), mem::PageAccess::kRead);   // downgraded
  EXPECT_EQ(spaces[1]->access(10), mem::PageAccess::kRead);
  EXPECT_EQ(spaces[1]->load(10 * kPage + 4, 4), 0xBEEFu);  // content moved
  ASSERT_EQ(wakes[1].size(), 1u);
  EXPECT_EQ(wakes[1][0], 10u);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(ProtocolFixture, WriteGrantInvalidatesEveryoneElse) {
  clients[1]->request_page(20, 0, /*write=*/false, 1);
  settle();
  clients[2]->request_page(20, 8, /*write=*/true, 2);
  settle();
  EXPECT_EQ(directory->state(20), Directory::PageState::kModified);
  EXPECT_EQ(directory->owner(20), 2);
  EXPECT_EQ(spaces[1]->access(20), mem::PageAccess::kNone);
  EXPECT_EQ(spaces[0]->access(20), mem::PageAccess::kNone);
  EXPECT_EQ(spaces[2]->access(20), mem::PageAccess::kReadWrite);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(ProtocolFixture, DirtyWritebackReachesNextReader) {
  // Node 1 takes the page M and writes; node 2 then reads and must see it.
  clients[1]->request_page(30, 0, /*write=*/true, 1);
  settle();
  spaces[1]->store(30 * kPage, 0x12345678, 4);
  clients[2]->request_page(30, 0, /*write=*/false, 2);
  settle();
  EXPECT_EQ(spaces[2]->load(30 * kPage, 4), 0x12345678u);
  // Home copy refreshed by the owner recall.
  EXPECT_EQ(spaces[0]->load(30 * kPage, 4), 0x12345678u);
  EXPECT_EQ(directory->state(30), Directory::PageState::kShared);
}

TEST_F(ProtocolFixture, UpgradeFromSharedGrantsWithoutData) {
  clients[1]->request_page(40, 0, /*write=*/false, 1);
  settle();
  const auto grants_with_data = stats.get("dir.grants_with_data");
  clients[1]->request_page(40, 0, /*write=*/true, 1);
  settle();
  EXPECT_EQ(directory->owner(40), 1);
  EXPECT_EQ(spaces[1]->access(40), mem::PageAccess::kReadWrite);
  // The upgrade carried no page payload.
  EXPECT_EQ(stats.get("dir.grants_with_data"), grants_with_data);
  EXPECT_GE(stats.get("dir.grants_no_data"), 1u);
}

TEST_F(ProtocolFixture, ConcurrentRequestsSerializePerPage) {
  clients[1]->request_page(50, 0, /*write=*/true, 1);
  clients[2]->request_page(50, 0, /*write=*/true, 2);
  settle();
  // Both eventually succeeded; exactly one owner remains.
  EXPECT_EQ(directory->state(50), Directory::PageState::kModified);
  const NodeId owner = directory->owner(50);
  EXPECT_TRUE(owner == 1 || owner == 2);
  EXPECT_EQ(spaces[owner]->access(50), mem::PageAccess::kReadWrite);
  EXPECT_EQ(spaces[owner == 1 ? 2 : 1]->access(50), mem::PageAccess::kNone);
  EXPECT_GE(stats.get("dir.queued_reqs"), 1u);
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(ProtocolFixture, RequestCoalescingOnClient) {
  clients[1]->request_page(60, 0, /*write=*/false, 1);
  clients[1]->request_page(60, 16, /*write=*/false, 2);  // second thread
  EXPECT_EQ(stats.get("dsm.coalesced_faults"), 1u);
  settle();
  EXPECT_EQ(stats.get("dsm.grants_received"), 1u);
}

TEST_F(ProtocolFixture, SplittingAfterFalseSharing) {
  DsmConfig dsm;
  dsm.enable_splitting = true;
  dsm.split_threshold = 4;
  build(dsm);

  spaces[0]->store(70 * kPage + 0, 0xAA, 4);
  spaces[0]->store(70 * kPage + 2048, 0xBB, 4);
  // Alternate writers from different nodes at different shards.
  for (int round = 0; round < 4; ++round) {
    clients[1]->request_page(70, 0, /*write=*/true, 1);
    settle();
    clients[2]->request_page(70, 2048, /*write=*/true, 2);
    settle();
  }
  EXPECT_EQ(directory->splits_performed(), 1u);
  EXPECT_EQ(directory->state(70), Directory::PageState::kSplit);
  // Every node learned the mapping.
  for (int n = 0; n < 3; ++n) {
    EXPECT_TRUE(shadows[n]->is_split(70)) << n;
  }
  // Content was distributed to shadow pages at identical offsets.
  const auto pages = shadows[1]->shadow_pages(70);
  ASSERT_EQ(pages.size(), 4u);
  EXPECT_EQ(spaces[0]->load(pages[0] * kPage + 0, 4), 0xAAu);
  EXPECT_EQ(spaces[0]->load(pages[2] * kPage + 2048, 4), 0xBBu);
  // Requesters got retries so they re-fault through the map.
  EXPECT_GE(stats.get("dsm.retries"), 1u);
  EXPECT_TRUE(directory->check_invariants());

  // The shadow pages are independently grantable now.
  clients[1]->request_page(pages[0], 0, /*write=*/true, 1);
  clients[2]->request_page(pages[2], 2048, /*write=*/true, 2);
  settle();
  EXPECT_EQ(directory->owner(pages[0]), 1);
  EXPECT_EQ(directory->owner(pages[2]), 2);
}

TEST_F(ProtocolFixture, NoSplittingWhenDisabled) {
  for (int round = 0; round < 30; ++round) {
    clients[1]->request_page(80, 0, /*write=*/true, 1);
    settle();
    clients[2]->request_page(80, 2048, /*write=*/true, 2);
    settle();
  }
  EXPECT_EQ(directory->splits_performed(), 0u);
}

TEST_F(ProtocolFixture, ForwardingPushesSequentialStream) {
  DsmConfig dsm;
  dsm.enable_forwarding = true;
  dsm.forward_trigger = 3;
  dsm.forward_depth = 8;
  build(dsm);

  for (std::uint32_t page = 100; page < 103; ++page) {
    clients[1]->request_page(page, 0, /*write=*/false, 1);
    settle();
  }
  EXPECT_GT(stats.get("dir.forwards"), 0u);
  // Pages ahead of the stream are now readable on node 1 without requests.
  EXPECT_EQ(spaces[1]->access(103), mem::PageAccess::kRead);
  EXPECT_EQ(spaces[1]->access(104), mem::PageAccess::kRead);
  EXPECT_EQ(stats.get("dsm.forwards_installed"),
            stats.get("dir.forwards"));
  EXPECT_TRUE(directory->check_invariants());
}

TEST_F(ProtocolFixture, ForwardedPagesAreCoherent) {
  DsmConfig dsm;
  dsm.enable_forwarding = true;
  dsm.forward_trigger = 2;
  dsm.forward_depth = 4;
  build(dsm);
  spaces[0]->store(112 * kPage, 0x77, 4);

  clients[1]->request_page(110, 0, false, 1);
  settle();
  clients[1]->request_page(111, 0, false, 1);
  settle();
  ASSERT_EQ(spaces[1]->access(112), mem::PageAccess::kRead);
  EXPECT_EQ(spaces[1]->load(112 * kPage, 4), 0x77u);
  // A later write by node 2 must invalidate the forwarded copy.
  clients[2]->request_page(112, 0, /*write=*/true, 2);
  settle();
  EXPECT_EQ(spaces[1]->access(112), mem::PageAccess::kNone);
  EXPECT_EQ(directory->owner(112), 2);
}

TEST(StreamDetectorTest, RunsGrowOnSequentialHits) {
  StreamDetector detector(4);
  EXPECT_EQ(detector.on_request(10), 1u);
  EXPECT_EQ(detector.on_request(11), 2u);
  EXPECT_EQ(detector.on_request(12), 3u);
  EXPECT_EQ(detector.on_request(50), 1u);  // new stream
  EXPECT_EQ(detector.on_request(13), 4u);  // original continues
}

TEST(StreamDetectorTest, TracksInterleavedStreams) {
  StreamDetector detector(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(detector.on_request(100 + i), i + 1);
    EXPECT_EQ(detector.on_request(200 + i), i + 1);
  }
}

TEST(StreamDetectorTest, EvictsLruStream) {
  StreamDetector detector(2);
  (void)detector.on_request(10);  // stream A
  (void)detector.on_request(20);  // stream B
  (void)detector.on_request(30);  // evicts A (LRU)
  EXPECT_EQ(detector.on_request(11), 1u);  // A was forgotten
  EXPECT_EQ(detector.on_request(31), 2u);  // C survived
}

TEST(StreamDetectorTest, RetargetSkipsPushedWindow) {
  StreamDetector detector(4);
  (void)detector.on_request(10);
  (void)detector.on_request(11);
  detector.retarget(12, 20);  // pages 12..19 were pushed
  EXPECT_EQ(detector.on_request(20), 3u);  // run continues
}

TEST(StreamDetectorTest, RetargetMergesDuplicateStreams) {
  StreamDetector detector(4);
  // Stream A: 10, 11 -> expects 12 with run 2. Stream B seeded at 11
  // (matched by nothing: A already expects 12) -> expects 12 with run 1.
  (void)detector.on_request(10);
  (void)detector.on_request(11);
  EXPECT_EQ(detector.on_request(11), 1u);  // duplicate expectation seeded
  ASSERT_EQ(detector.active_streams(), 2u);

  detector.retarget(12, 20);  // pages 12..19 were pushed
  // Both duplicates moved and merged into one stream keeping the longer
  // run; the stale one must not survive to re-trigger forwarding.
  EXPECT_EQ(detector.active_streams(), 1u);
  EXPECT_EQ(detector.on_request(20), 3u);
}

TEST(StreamDetectorTest, RetargetMergesWithExistingTarget) {
  StreamDetector detector(4);
  // Stream A expects 20 with run 3; stream B expects 12 with run 1.
  (void)detector.on_request(17);
  (void)detector.on_request(18);
  (void)detector.on_request(19);
  (void)detector.on_request(11);
  ASSERT_EQ(detector.active_streams(), 2u);

  // B's window 12..19 was pushed: B lands on 20, where A already sits.
  detector.retarget(12, 20);
  EXPECT_EQ(detector.active_streams(), 1u);
  EXPECT_EQ(detector.on_request(20), 4u);  // A's longer run won the merge
}

TEST(StreamDetectorTest, RetargetWithoutMatchIsNoOp) {
  StreamDetector detector(4);
  (void)detector.on_request(10);
  detector.retarget(99, 200);  // no stream expects 99
  EXPECT_EQ(detector.active_streams(), 1u);
  EXPECT_EQ(detector.on_request(11), 2u);
}

}  // namespace
}  // namespace dqemu::dsm
