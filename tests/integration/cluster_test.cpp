// Integration tests: Cluster lifecycle, scheduling policies, migration,
// futex across nodes, limits, determinism properties.
#include <gtest/gtest.h>

#include <set>

#include "guestlib/runtime.hpp"
#include "isa/syscall_abi.hpp"
#include "testutil.hpp"
#include "workloads/micro.hpp"
#include "workloads/parsec.hpp"

namespace dqemu {
namespace {

using isa::Assembler;
using isa::Sys;
using test::baseline_config;
using test::must_finalize;
using test::run_program;
using test::test_config;
using enum isa::Reg;

isa::Program exit_with(std::uint32_t code) {
  Assembler a;
  a.li(kA0, static_cast<std::int64_t>(code));
  a.syscall(static_cast<std::int32_t>(Sys::kExitGroup));
  return must_finalize(a);
}

TEST(Cluster, ExitCodePropagates) {
  auto outcome = run_program(test_config(1), exit_with(77));
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.exit_code, 77u);
}

TEST(Cluster, LoadTwiceFails) {
  core::Cluster cluster(test_config(1));
  EXPECT_TRUE(cluster.load(exit_with(0)).is_ok());
  EXPECT_FALSE(cluster.load(exit_with(0)).is_ok());
}

TEST(Cluster, RunWithoutLoadFails) {
  core::Cluster cluster(test_config(1));
  EXPECT_FALSE(cluster.run().is_ok());
}

TEST(Cluster, GuestErrorSurfacesAsInternal) {
  Assembler a;
  a.li(kT0, 0x1002);
  a.lw(kT1, kT0, 0);  // misaligned
  core::Cluster cluster(test_config(1));
  ASSERT_TRUE(cluster.load(must_finalize(a)).is_ok());
  const auto result = cluster.run();
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("misaligned"), std::string::npos);
}

TEST(Cluster, DeadlockIsDetectedAndDumped) {
  // A thread futex-waits on a value nobody will ever change.
  Assembler a;
  auto word = a.make_label("word");
  a.la(kA0, word);
  a.li(kA1, static_cast<std::int32_t>(isa::kFutexWait));
  a.li(kA2, 1);
  a.syscall(static_cast<std::int32_t>(Sys::kFutex));
  a.bind_data(word);
  a.d_word(1);
  core::Cluster cluster(test_config(1));
  ASSERT_TRUE(cluster.load(must_finalize(a)).is_ok());
  const auto result = cluster.run();
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("deadlock"), std::string::npos);
  EXPECT_NE(result.status().message().find("tid 1"), std::string::npos);
}

TEST(Cluster, EventLimitTrips) {
  Assembler a;
  auto loop = a.here();
  a.j(loop);  // infinite loop
  core::Cluster cluster(test_config(1));
  ASSERT_TRUE(cluster.load(must_finalize(a)).is_ok());
  core::Cluster::RunLimits limits;
  limits.max_events = 1000;
  const auto result = cluster.run(limits);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Cluster, SimTimeLimitTrips) {
  Assembler a;
  auto loop = a.here();
  a.j(loop);
  core::Cluster cluster(test_config(1));
  ASSERT_TRUE(cluster.load(must_finalize(a)).is_ok());
  core::Cluster::RunLimits limits;
  limits.max_sim_time = time_literals::kMs;
  const auto result = cluster.run(limits);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Cluster, LocalSyscallsAnswerLocally) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);
  a.bind(main_fn);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  a.syscall(static_cast<std::int32_t>(Sys::kGettid));
  a.call(rt.print_u32);
  a.syscall(static_cast<std::int32_t>(Sys::kGetpid));
  a.call(rt.print_u32);
  a.syscall(static_cast<std::int32_t>(Sys::kGetcpu));
  a.call(rt.print_u32);
  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();
  auto outcome = run_program(test_config(2), must_finalize(a));
  ASSERT_TRUE(outcome.ok) << outcome.error;
  // main: tid 1, pid 1, on the master (cpu 0).
  EXPECT_EQ(outcome.result.guest_stdout, "1\n1\n0\n");
}

TEST(Cluster, ClockGettimeAdvances) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);
  Assembler::Label buf = a.make_label("buf");
  a.bind(main_fn);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  a.li(kA0, 0);
  a.la(kA1, buf);
  a.syscall(static_cast<std::int32_t>(Sys::kClockGettime));
  // sleep 2ms, then read the clock again
  a.li(kA0, 2000000);
  a.syscall(static_cast<std::int32_t>(Sys::kNanosleep));
  a.li(kA0, 0);
  a.la(kA1, buf);
  a.addi(kA1, kA1, 8);
  a.syscall(static_cast<std::int32_t>(Sys::kClockGettime));
  // print nsec delta (assumes same second; fine at t < 1s)
  a.la(kT0, buf);
  a.lw(kT1, kT0, 4);
  a.lw(kT2, kT0, 12);
  a.sub(kA0, kT2, kT1);
  a.call(rt.print_u32);
  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.addi(kSp, kSp, 16);
  a.ret();
  a.bind_data(buf);
  a.d_space(16);
  auto outcome = run_program(test_config(1), must_finalize(a));
  ASSERT_TRUE(outcome.ok) << outcome.error;
  const long delta = std::stol(outcome.result.guest_stdout);
  EXPECT_GE(delta, 2000000);          // at least the sleep
  EXPECT_LT(delta, 10000000);         // but not wildly more
}

TEST(Cluster, RoundRobinSpreadsThreads) {
  // Workers report getcpu; with RR over 3 slaves all of 1,2,3 appear.
  const auto program = workloads::pi_taylor(6, 1, 10).take();
  ClusterConfig config = test_config(3);
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  ASSERT_TRUE(cluster.run().is_ok());
  // Thread table: tids 2..7 spread over nodes 1..3.
  std::set<NodeId> nodes;
  for (GuestTid tid = 2; tid <= 7; ++tid) {
    nodes.insert(cluster.thread_node(tid));
  }
  EXPECT_EQ(nodes, (std::set<NodeId>{1, 2, 3}));
}

TEST(Cluster, HintLocalityGroupsThreads) {
  workloads::FluidanimateParams params;
  params.threads = 8;
  params.rows_per_thread = 1;
  params.cols = 64;
  params.iters = 2;
  params.hint_groups = 2;
  const auto program = workloads::fluidanimate_like(params).take();
  ClusterConfig config = test_config(2);
  config.sched.policy = SchedPolicy::kHintLocality;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  ASSERT_TRUE(cluster.run().is_ok());
  // block_groups(8, 2): threads 0-3 group 0 -> node 1; 4-7 group 1 -> node 2.
  for (GuestTid tid = 2; tid <= 5; ++tid)
    EXPECT_EQ(cluster.thread_node(tid), 1) << tid;
  for (GuestTid tid = 6; tid <= 9; ++tid)
    EXPECT_EQ(cluster.thread_node(tid), 2) << tid;
}

TEST(Cluster, HeterogeneousPlacementIsCapacityWeighted) {
  const auto program = workloads::pi_taylor(12, 1, 10).take();
  ClusterConfig config = test_config(2);
  config.node_machines.resize(3);
  config.node_machines[0] = config.machine;
  config.node_machines[1] = {3.3, 8, 4096};  // big node
  config.node_machines[2] = {3.3, 4, 4096};  // small node
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.load(program).is_ok());
  ASSERT_TRUE(cluster.run().is_ok());
  unsigned census[3] = {};
  for (GuestTid tid = 2; tid <= 13; ++tid) {
    const NodeId node = cluster.thread_node(tid);
    ASSERT_LT(node, 3);
    ++census[node];
  }
  EXPECT_EQ(census[1], 8u);  // 2:1 capacity ratio
  EXPECT_EQ(census[2], 4u);
}

TEST(Cluster, HeterogeneousConfigValidation) {
  ClusterConfig config = test_config(2);
  config.node_machines.resize(2);  // wrong size (needs 3 incl. master)
  EXPECT_FALSE(config.validate().is_ok());
  config.node_machines.resize(3, config.machine);
  EXPECT_TRUE(config.validate().is_ok());
  config.node_machines[1].page_size = 8192;  // mismatched page size
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(Cluster, BaselineHasNoDsmTraffic) {
  const auto program = workloads::pi_taylor(4, 1, 50).take();
  core::Cluster cluster(baseline_config());
  ASSERT_TRUE(cluster.load(program).is_ok());
  ASSERT_TRUE(cluster.run().is_ok());
  EXPECT_EQ(cluster.stats().get("core.page_faults"), 0u);
  EXPECT_EQ(cluster.stats().get("dir.read_reqs"), 0u);
  EXPECT_EQ(cluster.directory(), nullptr);
}

TEST(Cluster, MultiNodeRunsHaveFaultsAndInvariantsHold) {
  const auto program = workloads::false_sharing_walk(4, 128, 4, 2).take();
  core::Cluster cluster(test_config(2));
  ASSERT_TRUE(cluster.load(program).is_ok());
  ASSERT_TRUE(cluster.run().is_ok());
  EXPECT_GT(cluster.stats().get("core.page_faults"), 0u);
  ASSERT_NE(cluster.directory(), nullptr);
  EXPECT_TRUE(cluster.directory()->check_invariants());
}

TEST(Cluster, MigrationMovesThread) {
  // Spawn long-running workers, migrate one mid-run, expect completion and
  // an updated thread table.
  const auto program = workloads::pi_taylor(2, 4000, 1000).take();
  core::Cluster cluster(test_config(3));
  ASSERT_TRUE(cluster.load(program).is_ok());
  // Let the workers get created but not finish.
  (void)cluster.queue().run(600);
  const GuestTid victim = 2;
  const NodeId before = cluster.thread_node(victim);
  ASSERT_NE(before, kInvalidNode);
  const NodeId target = before == 1 ? 2 : 1;
  ASSERT_TRUE(cluster.migrate_thread(victim, target).is_ok());
  const auto result = cluster.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_EQ(cluster.thread_node(victim), target);
  EXPECT_GE(cluster.stats().get("core.migrations_sent"), 1u);
}

TEST(Cluster, MigrationValidation) {
  core::Cluster cluster(test_config(2));
  ASSERT_TRUE(cluster.load(exit_with(0)).is_ok());
  EXPECT_FALSE(cluster.migrate_thread(1, 99).is_ok());  // bad target
  EXPECT_FALSE(cluster.migrate_thread(42, 1).is_ok());  // unknown tid
  EXPECT_TRUE(cluster.migrate_thread(1, 0).is_ok());    // already there: ok
}

class NodeCountEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NodeCountEquivalence, MutexCounterResultIndependentOfPlacement) {
  // The coherence-correctness property: guest output must not depend on
  // how many nodes the threads are spread over.
  const auto program = workloads::mutex_stress(6, 40, /*global=*/true).take();
  auto reference = run_program(baseline_config(), program);
  ASSERT_TRUE(reference.ok) << reference.error;
  auto multi = run_program(test_config(GetParam()), program);
  ASSERT_TRUE(multi.ok) << multi.error;
  EXPECT_EQ(multi.result.exit_code, reference.result.exit_code);
  EXPECT_EQ(multi.result.guest_stdout, reference.result.guest_stdout);
}

INSTANTIATE_TEST_SUITE_P(OneToSix, NodeCountEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Cluster, PerThreadBreakdownsCoverLifetime) {
  const auto program = workloads::pi_taylor(4, 2, 100).take();
  auto outcome = run_program(test_config(2), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  ASSERT_EQ(outcome.result.per_thread.size(), 5u);  // main + 4 workers
  for (const auto& [tid, breakdown] : outcome.result.per_thread) {
    EXPECT_GT(breakdown.execute, 0u) << tid;
    // A thread's last slice is charged when it starts, so the breakdown
    // may overshoot the end of the run by up to one slice.
    EXPECT_LE(breakdown.total(),
              outcome.result.sim_time + time_literals::kMs) << tid;
  }
  EXPECT_GT(outcome.result.guest_insns, 0u);
}

}  // namespace
}  // namespace dqemu
