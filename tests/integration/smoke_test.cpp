// End-to-end smoke tests: tiny guest programs through the full stack
// (assembler -> DBT -> DSM -> syscall delegation) on baseline and
// multi-node clusters.
#include <gtest/gtest.h>

#include "guestlib/runtime.hpp"
#include "isa/syscall_abi.hpp"
#include "testutil.hpp"

namespace dqemu {
namespace {

using isa::Assembler;
using isa::Sys;
using test::baseline_config;
using test::must_finalize;
using test::run_program;
using test::test_config;
using enum isa::Reg;

isa::Program hello_program() {
  Assembler a;
  Assembler::Label msg = a.make_label("msg");
  a.la(kA1, msg);
  a.li(kA0, 1);
  a.li(kA2, 14);
  a.syscall(static_cast<std::int32_t>(Sys::kWrite));
  a.li(kA0, 42);
  a.syscall(static_cast<std::int32_t>(Sys::kExitGroup));
  a.bind_data(msg);
  a.d_asciz("hello, dqemu!\n");
  return must_finalize(a);
}

TEST(Smoke, HelloBaseline) {
  auto outcome = run_program(baseline_config(), hello_program());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.exit_code, 42u);
  EXPECT_EQ(outcome.result.guest_stdout, "hello, dqemu!\n");
  EXPECT_GT(outcome.result.sim_time, 0u);
}

TEST(Smoke, HelloOneSlave) {
  auto outcome = run_program(test_config(1), hello_program());
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.exit_code, 42u);
  EXPECT_EQ(outcome.result.guest_stdout, "hello, dqemu!\n");
}

/// main spawns `threads` workers; each locks a mutex and adds its id+1 to
/// a shared counter `iters` times; main joins all and prints the counter.
isa::Program mutex_counter_program(std::uint32_t threads,
                                   std::uint32_t iters) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label counter = a.make_label("counter");
  Assembler::Label lock = a.make_label("lock");
  Assembler::Label handles = a.make_label("handles");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // worker(a0 = id): for iters: lock; counter += id+1; unlock.
  {
    a.bind(worker);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.sw(kSp, kS0, 4);
    a.sw(kSp, kS1, 8);
    a.addi(kS0, kA0, 1);                       // contribution
    a.li(kS1, static_cast<std::int64_t>(iters));
    Assembler::Label loop = a.make_label();
    a.bind(loop);
    a.la(kA0, lock);
    a.call(rt.mutex_lock);
    a.la(kT0, counter);
    a.lw(kT1, kT0, 0);
    a.add(kT1, kT1, kS0);
    a.sw(kT0, kT1, 0);
    a.la(kA0, lock);
    a.call(rt.mutex_unlock);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, loop);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.lw(kS0, kSp, 4);
    a.lw(kS1, kSp, 8);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  // main: spawn, join, print counter, return 0.
  {
    a.bind(main_fn);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.sw(kSp, kS0, 4);
    a.li(kS0, 0);  // i
    Assembler::Label spawn = a.make_label();
    Assembler::Label join = a.make_label();
    Assembler::Label joined = a.make_label();
    a.bind(spawn);
    a.la(kA0, worker);
    a.mov(kA1, kS0);
    a.call(rt.thread_create);
    a.la(kT0, handles);
    a.slli(kT1, kS0, 2);
    a.add(kT0, kT0, kT1);
    a.sw(kT0, kA0, 0);
    a.addi(kS0, kS0, 1);
    a.li(kT1, static_cast<std::int64_t>(threads));
    a.bne(kS0, kT1, spawn);
    a.li(kS0, 0);
    a.bind(join);
    a.la(kT0, handles);
    a.slli(kT1, kS0, 2);
    a.add(kT0, kT0, kT1);
    a.lw(kA0, kT0, 0);
    a.call(rt.thread_join);
    a.addi(kS0, kS0, 1);
    a.li(kT1, static_cast<std::int64_t>(threads));
    a.bne(kS0, kT1, join);
    a.bind(joined);
    a.la(kT0, counter);
    a.lw(kA0, kT0, 0);
    a.call(rt.print_u32);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.lw(kS0, kSp, 4);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  a.d_align(4);
  a.bind_data(counter);
  a.d_word(0);
  a.bind_data(lock);
  a.d_word(0);
  a.bind_data(handles);
  a.d_space(threads * 4);
  return must_finalize(a);
}

std::uint64_t expected_counter(std::uint32_t threads, std::uint32_t iters) {
  std::uint64_t total = 0;
  for (std::uint32_t i = 1; i <= threads; ++i) total += i;
  return total * iters;
}

TEST(Smoke, MutexCounterBaseline) {
  const auto program = mutex_counter_program(4, 100);
  auto outcome = run_program(baseline_config(), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout,
            std::to_string(expected_counter(4, 100)) + "\n");
}

TEST(Smoke, MutexCounterTwoSlaves) {
  const auto program = mutex_counter_program(4, 100);
  auto outcome = run_program(test_config(2), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout,
            std::to_string(expected_counter(4, 100)) + "\n");
}

TEST(Smoke, MutexCounterManyThreadsFourSlaves) {
  const auto program = mutex_counter_program(12, 50);
  auto outcome = run_program(test_config(4), program);
  ASSERT_TRUE(outcome.ok) << outcome.error;
  EXPECT_EQ(outcome.result.guest_stdout,
            std::to_string(expected_counter(12, 50)) + "\n");
}

}  // namespace
}  // namespace dqemu
