// Integration tests: every workload generator runs to completion on
// baseline and multi-node clusters, and multi-node results match the
// single-node reference (the key DSM-correctness property: only protocol
// messages move bytes between nodes, so a coherence bug changes output).
#include <gtest/gtest.h>

#include "testutil.hpp"
#include "workloads/micro.hpp"
#include "workloads/parsec.hpp"

namespace dqemu {
namespace {

using test::baseline_config;
using test::run_program;
using test::test_config;

isa::Program must(Result<isa::Program> r) {
  EXPECT_TRUE(r.is_ok()) << r.status().to_string();
  return r.is_ok() ? r.take() : isa::Program{};
}

/// Runs `program` on the baseline and on `nodes` slaves; expects identical
/// guest stdout and returns it.
std::string check_equivalence(const isa::Program& program,
                              std::uint32_t nodes) {
  auto base = run_program(baseline_config(), program);
  EXPECT_TRUE(base.ok) << base.error;
  auto multi = run_program(test_config(nodes), program);
  EXPECT_TRUE(multi.ok) << multi.error;
  if (base.ok && multi.ok) {
    EXPECT_EQ(base.result.guest_stdout, multi.result.guest_stdout);
    EXPECT_EQ(base.result.exit_code, multi.result.exit_code);
  }
  return base.ok ? base.result.guest_stdout : std::string();
}

TEST(Workloads, PiTaylorMatchesAcrossNodeCounts) {
  const auto program = must(workloads::pi_taylor(8, 2, 200));
  const std::string out = check_equivalence(program, 3);
  // Leibniz with 200 terms: pi ~ 3.1366; checksum = floor(pi*1e6).
  ASSERT_FALSE(out.empty());
  const long value = std::stol(out);
  EXPECT_NEAR(static_cast<double>(value), 3.1365926e6, 3000.0);
}

TEST(Workloads, MutexStressGlobalLock) {
  const auto program = must(workloads::mutex_stress(8, 50, /*global=*/true));
  check_equivalence(program, 4);
}

TEST(Workloads, MutexStressPrivateLocks) {
  const auto program = must(workloads::mutex_stress(8, 200, /*global=*/false));
  check_equivalence(program, 4);
}

TEST(Workloads, MemwalkRuns) {
  const auto program = must(workloads::memwalk(64 * 1024, 2, true));
  check_equivalence(program, 2);
}

TEST(Workloads, FalseSharingWalk) {
  const auto program = must(workloads::false_sharing_walk(8, 128, 4, 4));
  check_equivalence(program, 4);
}

TEST(Workloads, BlackscholesSmall) {
  workloads::BlackscholesParams params;
  params.threads = 8;
  params.options_n = 256;
  params.reps = 2;
  const auto program = must(workloads::blackscholes_like(params));
  const std::string out = check_equivalence(program, 3);
  ASSERT_FALSE(out.empty());
  EXPECT_GT(std::stol(out), 0);  // option prices are positive
}

TEST(Workloads, SwaptionsSmall) {
  workloads::SwaptionsParams params;
  params.threads = 6;
  params.swaptions_n = 12;
  params.trials = 100;
  const auto program = must(workloads::swaptions_like(params));
  const std::string out = check_equivalence(program, 3);
  EXPECT_FALSE(out.empty());
}

TEST(Workloads, X264Small) {
  workloads::X264Params params;
  params.threads = 8;
  params.groups = 2;
  params.rounds = 4;
  params.compute_words = 512;
  const auto program = must(workloads::x264_like(params));
  check_equivalence(program, 3);
}

TEST(Workloads, X264HintVsRoundRobinSameResult) {
  workloads::X264Params params;
  params.threads = 8;
  params.groups = 2;
  params.rounds = 4;
  params.compute_words = 512;
  const auto program = must(workloads::x264_like(params));
  auto rr = run_program(test_config(2), program);
  ASSERT_TRUE(rr.ok) << rr.error;
  ClusterConfig hint_config = test_config(2);
  hint_config.sched.policy = SchedPolicy::kHintLocality;
  auto hint = run_program(hint_config, program);
  ASSERT_TRUE(hint.ok) << hint.error;
  EXPECT_EQ(rr.result.guest_stdout, hint.result.guest_stdout);
}

TEST(Workloads, FluidanimateSmall) {
  workloads::FluidanimateParams params;
  params.threads = 8;
  params.rows_per_thread = 1;
  params.cols = 64;
  params.iters = 4;
  params.hint_groups = 2;
  const auto program = must(workloads::fluidanimate_like(params));
  const std::string out = check_equivalence(program, 3);
  // Diffusion from the all-ones ghost row must have reached row 1.
  ASSERT_FALSE(out.empty());
  EXPECT_GT(std::stol(out), 0);
}

TEST(Workloads, FluidanimateDeterministicAcrossRuns) {
  workloads::FluidanimateParams params;
  params.threads = 4;
  params.rows_per_thread = 1;
  params.cols = 64;
  params.iters = 3;
  const auto program = must(workloads::fluidanimate_like(params));
  auto a = run_program(test_config(2), program);
  auto b = run_program(test_config(2), program);
  ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
  EXPECT_EQ(a.result.guest_stdout, b.result.guest_stdout);
  EXPECT_EQ(a.result.sim_time, b.result.sim_time);  // bit-deterministic
}

}  // namespace
}  // namespace dqemu
