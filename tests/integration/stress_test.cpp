// Stress & property tests: randomized protocol storms, optimization
// equivalence, and guest file I/O across nodes.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dsm/client.hpp"
#include "dsm/directory.hpp"
#include "guestlib/runtime.hpp"
#include "isa/syscall_abi.hpp"
#include "testutil.hpp"
#include "workloads/micro.hpp"
#include "workloads/parsec.hpp"

namespace dqemu {
namespace {

using isa::Assembler;
using isa::Sys;
using test::baseline_config;
using test::must_finalize;
using test::run_program;
using test::test_config;
using enum isa::Reg;

// ---------------------------------------------------------------------------
// Randomized DSM protocol storm: random read/write requests from random
// nodes over a small page set; after quiescence the directory invariants
// must hold and every node's view of every page must match the freshest
// writer's content.
// ---------------------------------------------------------------------------

class ProtocolStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProtocolStorm, InvariantsAndConvergence) {
  constexpr std::uint32_t kMem = 32u << 20;
  constexpr std::uint32_t kPage = 4096;
  constexpr NodeId kNodes = 4;

  sim::EventQueue queue;
  StatsRegistry stats;
  net::Network network(queue, NetworkConfig{}, kNodes, &stats);
  std::vector<std::unique_ptr<mem::AddressSpace>> spaces;
  std::vector<std::unique_ptr<mem::ShadowMap>> shadows;
  std::vector<std::unique_ptr<dsm::DsmClient>> clients;
  for (NodeId n = 0; n < kNodes; ++n) {
    spaces.push_back(std::make_unique<mem::AddressSpace>(kMem, kPage));
    shadows.push_back(std::make_unique<mem::ShadowMap>(kPage, 4));
  }
  dsm::Directory::Params params;
  params.node_count = kNodes;
  params.shadow_pool_first_page = (kMem / kPage) - 256;
  params.shadow_pool_page_count = 256;
  dsm::Directory directory(network, queue, *spaces[0], params, &stats);
  for (NodeId n = 0; n < kNodes; ++n) {
    clients.push_back(std::make_unique<dsm::DsmClient>(
        n, network, *spaces[n], *shadows[n], nullptr, nullptr, &stats,
        [](std::uint32_t) {}));
  }
  network.attach(0, [&](net::Message msg) {
    switch (static_cast<dsm::DsmMsg>(msg.type)) {
      case dsm::DsmMsg::kReadReq:
      case dsm::DsmMsg::kWriteReq:
      case dsm::DsmMsg::kInvAck:
      case dsm::DsmMsg::kDowngradeAck:
        directory.handle_message(msg);
        break;
      default:
        clients[0]->handle_message(msg);
    }
  });
  for (NodeId n = 1; n < kNodes; ++n) {
    dsm::DsmClient* client = clients[n].get();
    network.attach(n,
                   [client](net::Message msg) { client->handle_message(msg); });
  }

  Rng rng(GetParam());
  constexpr std::uint32_t kPages[] = {100, 101, 102, 103, 104};
  std::uint32_t last_value[std::size(kPages)] = {};

  for (int round = 0; round < 120; ++round) {
    const auto node = static_cast<NodeId>(rng.next_below(kNodes));
    const std::uint32_t page_index =
        static_cast<std::uint32_t>(rng.next_below(std::size(kPages)));
    const std::uint32_t page = kPages[page_index];
    const bool write = rng.next_below(2) == 0;
    clients[node]->request_page(
        page, static_cast<std::uint32_t>(rng.next_below(kPage)), write,
        /*tid=*/node);
    // Occasionally let traffic drain, and have the current owner write a
    // sentinel (only when it actually holds write access).
    if (rng.next_below(3) == 0) {
      queue.run(50000);
      if (write &&
          spaces[node]->access(page) == mem::PageAccess::kReadWrite) {
        const auto value = static_cast<std::uint32_t>(rng.next());
        spaces[node]->store(page * kPage + 8, value, 4);
        last_value[page_index] = value;
      }
    }
  }
  queue.run(2'000'000);

  EXPECT_TRUE(directory.check_invariants());
  for (std::uint32_t i = 0; i < std::size(kPages); ++i) {
    const std::uint32_t page = kPages[i];
    // Cross-node agreement: every node with read access sees the home value.
    for (NodeId n = 0; n < kNodes; ++n) {
      if (spaces[n]->access(page) != mem::PageAccess::kNone) {
        EXPECT_EQ(spaces[n]->load(page * kPage + 8, 4),
                  last_value[i] == 0
                      ? spaces[n]->load(page * kPage + 8, 4)
                      : last_value[i])
            << "node " << n << " page " << page;
      }
    }
    // At most one writable copy.
    int writers = 0;
    for (NodeId n = 0; n < kNodes; ++n) {
      if (spaces[n]->access(page) == mem::PageAccess::kReadWrite) ++writers;
    }
    EXPECT_LE(writers, 1) << "page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolStorm,
                         ::testing::Range<std::uint64_t>(100, 112));

// ---------------------------------------------------------------------------
// Optimization equivalence: forwarding/splitting/hint scheduling are pure
// performance features — guest output must be identical with any of them.
// ---------------------------------------------------------------------------

struct OptimizationCase {
  const char* name;
  bool forwarding;
  bool splitting;
  SchedPolicy policy;
};

class OptimizationEquivalence
    : public ::testing::TestWithParam<OptimizationCase> {};

TEST_P(OptimizationEquivalence, GuestOutputUnchanged) {
  workloads::FluidanimateParams params;
  params.threads = 8;
  params.rows_per_thread = 1;
  params.cols = 128;
  params.iters = 4;
  params.hint_groups = 3;
  const auto program = workloads::fluidanimate_like(params).take();

  auto reference = run_program(baseline_config(), program);
  ASSERT_TRUE(reference.ok) << reference.error;

  ClusterConfig config = test_config(3);
  config.dsm.enable_forwarding = GetParam().forwarding;
  config.dsm.enable_splitting = GetParam().splitting;
  config.dsm.split_threshold = 4;  // make splits likely
  config.sched.policy = GetParam().policy;
  auto run = run_program(config, program);
  ASSERT_TRUE(run.ok) << run.error;
  EXPECT_EQ(run.result.guest_stdout, reference.result.guest_stdout);
  EXPECT_EQ(run.result.exit_code, reference.result.exit_code);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, OptimizationEquivalence,
    ::testing::Values(
        OptimizationCase{"plain", false, false, SchedPolicy::kRoundRobin},
        OptimizationCase{"forwarding", true, false, SchedPolicy::kRoundRobin},
        OptimizationCase{"splitting", false, true, SchedPolicy::kRoundRobin},
        OptimizationCase{"both", true, true, SchedPolicy::kRoundRobin},
        OptimizationCase{"hint", false, false, SchedPolicy::kHintLocality},
        OptimizationCase{"hint_both", true, true, SchedPolicy::kHintLocality}),
    [](const ::testing::TestParamInfo<OptimizationCase>& param) {
      return param.param.name;
    });

// ---------------------------------------------------------------------------
// Guest file I/O across nodes: a worker on a slave opens a preloaded file,
// reads it into an mmap'd buffer (exercising the delegated read + commit
// path with DSM pre-faulting), transforms it, and writes it back to a new
// file on the master's VFS.
// ---------------------------------------------------------------------------

TEST(GuestFileIo, ReadTransformWriteAcrossNodes) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label in_path = a.make_label("in_path");
  Assembler::Label out_path = a.make_label("out_path");
  Assembler::Label buf_ptr = a.make_label("buf_ptr");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // worker: fd = open(in); n = read(fd, buf, 64); uppercase; out = open(out,
  // create|write); write(out, buf, n); close both.
  {
    a.bind(worker);
    a.addi(kSp, kSp, -32);
    a.sw(kSp, kRa, 0);
    a.la(kA0, in_path);
    a.li(kA1, static_cast<std::int32_t>(isa::kOpenRead));
    a.syscall(static_cast<std::int32_t>(Sys::kOpen));
    a.sw(kSp, kA0, 4);  // in fd
    a.la(kT0, buf_ptr);
    a.lw(kT0, kT0, 0);
    a.mov(kA1, kT0);
    a.li(kA2, 64);
    a.syscall(static_cast<std::int32_t>(Sys::kRead));
    a.sw(kSp, kA0, 8);  // n
    // Uppercase ASCII in place: c -= 32 if 'a' <= c <= 'z'.
    Assembler::Label up_loop = a.make_label();
    Assembler::Label up_next = a.make_label();
    Assembler::Label up_done = a.make_label();
    a.la(kT0, buf_ptr);
    a.lw(kT0, kT0, 0);
    a.lw(kT1, kSp, 8);
    a.bind(up_loop);
    a.beq(kT1, kZero, up_done);
    a.lbu(kT2, kT0, 0);
    a.li(kT3, 'a');
    a.blt(kT2, kT3, up_next);
    a.li(kT3, 'z' + 1);
    a.bge(kT2, kT3, up_next);
    a.addi(kT2, kT2, -32);
    a.sb(kT0, kT2, 0);
    a.bind(up_next);
    a.addi(kT0, kT0, 1);
    a.addi(kT1, kT1, -1);
    a.j(up_loop);
    a.bind(up_done);
    // Write to the output file.
    a.la(kA0, out_path);
    a.li(kA1, static_cast<std::int32_t>(isa::kOpenWrite | isa::kOpenCreate));
    a.syscall(static_cast<std::int32_t>(Sys::kOpen));
    a.sw(kSp, kA0, 12);
    a.la(kT0, buf_ptr);
    a.lw(kA1, kT0, 0);
    a.lw(kA2, kSp, 8);
    a.syscall(static_cast<std::int32_t>(Sys::kWrite));
    a.lw(kA0, kSp, 12);
    a.syscall(static_cast<std::int32_t>(Sys::kClose));
    a.lw(kA0, kSp, 4);
    a.syscall(static_cast<std::int32_t>(Sys::kClose));
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 32);
    a.ret();
  }

  // main: buf = mmap(4096); spawn worker; join.
  {
    a.bind(main_fn);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.li(kA0, 4096);
    a.syscall(static_cast<std::int32_t>(Sys::kMmap));
    a.la(kT0, buf_ptr);
    a.sw(kT0, kA0, 0);
    a.la(kA0, worker);
    a.li(kA1, 0);
    a.call(rt.thread_create);
    a.call(rt.thread_join);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  a.bind_data(in_path);
  a.d_asciz("input.txt");
  a.bind_data(out_path);
  a.d_asciz("output.txt");
  a.d_align(4);
  a.bind_data(buf_ptr);
  a.d_word(0);
  const auto program = must_finalize(a);

  core::Cluster cluster(test_config(2));
  cluster.vfs().preload("input.txt", std::string_view("hello, Dqemu FILE io"));
  ASSERT_TRUE(cluster.load(program).is_ok());
  const auto result = cluster.run();
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();

  const auto output = cluster.vfs().file_content("output.txt");
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(std::string(output->begin(), output->end()),
            "HELLO, DQEMU FILE IO");
}

}  // namespace
}  // namespace dqemu
