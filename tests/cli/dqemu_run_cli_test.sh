#!/usr/bin/env sh
# CLI contract for dqemu_run: bad invocations must fail loudly with usage,
# good ones must run. Invoked by CTest as:
#   dqemu_run_cli_test.sh <dqemu_run> <guest.s>
set -u

RUN="$1"
GUEST="$2"
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# Byte-identity comparisons must ignore the host-side cost line: wall-clock
# seconds and guest-MIPS are real time, not virtual time, and jitter is
# expected there. Everything else must match exactly.
strip_host() {
  printf '%s\n' "$1" | grep -v '^\[dqemu_run\] host:'
}

# Unknown flags are an error: non-zero exit, a diagnostic naming the flag,
# and the usage text so the caller can self-correct.
out=$("$RUN" "$GUEST" --no-such-flag 2>&1)
status=$?
[ "$status" -ne 0 ] || fail "unknown flag exited 0"
case "$out" in
  *"unknown option: --no-such-flag"*) ;;
  *) fail "diagnostic does not name the bad flag: $out" ;;
esac
case "$out" in
  *usage:*) ;;
  *) fail "unknown flag did not print usage" ;;
esac

# Same contract for a flag that is missing its required value.
"$RUN" "$GUEST" --nodes >/dev/null 2>&1 && fail "--nodes without value exited 0"

# And for no program at all.
"$RUN" >/dev/null 2>&1 && fail "no arguments exited 0"

# The usage text must mention every accepted flag — it is generated from
# the same table the parser matches against, and this list is the external
# contract. A flag added to the parser but missing here (or vice versa)
# must fail the test.
usage=$("$RUN" 2>&1)
for flag in --nodes --cores --quantum --rtt-us --gbps --forwarding \
            --splitting --dsm-diff --hier-locking --hint-sched \
            --home-sharding --placement \
            --host-threads --faults --fault-seed --drop-pct \
            --serve --requests --arrival --rate --clients --think-us \
            --clone --serve-workers --serve-seed \
            --stats --breakdown --trace --trace-categories --verbose --help; do
  case "$usage" in
    *"$flag"*) ;;
    *) fail "usage does not mention $flag" ;;
  esac
done

# --help prints the same usage text and exits 0.
"$RUN" --help >/dev/null 2>&1 || fail "--help exited non-zero"

# A good invocation (with the new flags) still runs to completion.
out=$("$RUN" "$GUEST" --nodes 2 --faults --fault-seed 3 --drop-pct 2 2>&1)
status=$?
[ "$status" -eq 0 ] || fail "clean run with --faults exited $status: $out"
case "$out" in
  *"exit="*) ;;
  *) fail "clean run printed no result summary: $out" ;;
esac
case "$out" in
  *"retrans="*) ;;
  *) fail "fault run printed no net summary: $out" ;;
esac

# A bad placement policy fails loudly and names the accepted values.
out=$("$RUN" "$GUEST" --home-sharding --placement sticky 2>&1)
status=$?
[ "$status" -ne 0 ] || fail "bad --placement exited 0"
case "$out" in
  *"first-touch"*) ;;
  *) fail "bad --placement diagnostic lists no valid policies: $out" ;;
esac

# Home sharding: the run completes, prints the per-home evenness summary,
# and is byte-reproducible. With the feature compiled out the flag is a
# documented no-op (bit-for-bit single-master), so only exit status and
# reproducibility are checked unconditionally.
s1=$("$RUN" "$GUEST" --nodes 3 --home-sharding --placement hash 2>&1)
status=$?
[ "$status" -eq 0 ] || fail "--home-sharding run exited $status: $s1"
case "$s1" in
  *"homes: active="*) ;;
  *) fail "--home-sharding printed no homes summary: $s1" ;;
esac
s2=$("$RUN" "$GUEST" --nodes 3 --home-sharding --placement hash 2>&1)
[ "$(strip_host "$s1")" = "$(strip_host "$s2")" ] ||
  fail "same-seed --home-sharding runs differ"

# Serving mode: --serve takes no program argument...
"$RUN" "$GUEST" --serve >/dev/null 2>&1 && fail "--serve with a program exited 0"

# ...and either runs the built-in pool (serving compiled in) or refuses
# loudly (DQEMU_ENABLE_SERVING=OFF build).
out=$("$RUN" --serve --nodes 2 --requests 200 --rate 4000 \
      --serve-workers 8 --serve-seed 5 2>&1)
status=$?
case "$out" in
  *"compiled out"*)
    [ "$status" -ne 0 ] || fail "compiled-out --serve exited 0"
    ;;
  *)
    [ "$status" -eq 0 ] || fail "--serve run exited $status: $out"
    case "$out" in
      *"serve: requests=200 retired=200"*) ;;
      *) fail "--serve printed no serve summary: $out" ;;
    esac
    case "$out" in
      *"p99="*) ;;
      *) fail "--serve summary has no tail percentiles: $out" ;;
    esac
    # Same seed, same everything: the whole output must be byte-identical,
    # lossy wire included.
    two=$("$RUN" --serve --nodes 2 --requests 200 --rate 4000 \
          --serve-workers 8 --serve-seed 5 2>&1)
    [ "$(strip_host "$out")" = "$(strip_host "$two")" ] ||
      fail "same-seed --serve runs differ"
    f1=$("$RUN" --serve --nodes 2 --requests 200 --rate 4000 \
         --serve-workers 8 --faults --drop-pct 2 2>&1)
    f2=$("$RUN" --serve --nodes 2 --requests 200 --rate 4000 \
         --serve-workers 8 --faults --drop-pct 2 2>&1)
    [ "$(strip_host "$f1")" = "$(strip_host "$f2")" ] ||
      fail "same-seed --serve --faults runs differ"
    ;;
esac

# The parallel scheduler must not change a single byte of the summary
# (virtual time, counters, serve percentiles) — only the host cost line.
par=$("$RUN" --serve --nodes 2 --requests 200 --rate 4000 \
      --serve-workers 8 --serve-seed 5 --host-threads 2 2>&1)
status=$?
case "$par" in
  *"compiled out"*)
    [ "$status" -ne 0 ] || fail "compiled-out --host-threads exited 0"
    ;;
  *)
    [ "$status" -eq 0 ] || fail "--host-threads 2 run exited $status: $par"
    one=$("$RUN" --serve --nodes 2 --requests 200 --rate 4000 \
          --serve-workers 8 --serve-seed 5 2>&1)
    [ "$(strip_host "$par")" = "$(strip_host "$one")" ] ||
      fail "--host-threads 2 output differs from --host-threads 1"
    ;;
esac

[ "$failures" -eq 0 ] && echo "PASS"
exit "$failures"
