#!/usr/bin/env sh
# CLI contract for dqemu_run: bad invocations must fail loudly with usage,
# good ones must run. Invoked by CTest as:
#   dqemu_run_cli_test.sh <dqemu_run> <guest.s>
set -u

RUN="$1"
GUEST="$2"
failures=0

fail() {
  echo "FAIL: $1" >&2
  failures=$((failures + 1))
}

# Unknown flags are an error: non-zero exit, a diagnostic naming the flag,
# and the usage text so the caller can self-correct.
out=$("$RUN" "$GUEST" --no-such-flag 2>&1)
status=$?
[ "$status" -ne 0 ] || fail "unknown flag exited 0"
case "$out" in
  *"unknown option: --no-such-flag"*) ;;
  *) fail "diagnostic does not name the bad flag: $out" ;;
esac
case "$out" in
  *usage:*) ;;
  *) fail "unknown flag did not print usage" ;;
esac

# Same contract for a flag that is missing its required value.
"$RUN" "$GUEST" --nodes >/dev/null 2>&1 && fail "--nodes without value exited 0"

# And for no program at all.
"$RUN" >/dev/null 2>&1 && fail "no arguments exited 0"

# The usage text must mention every fault-injection flag this PR added.
usage=$("$RUN" 2>&1)
for flag in --faults --fault-seed --drop-pct --hier-locking; do
  case "$usage" in
    *"$flag"*) ;;
    *) fail "usage does not mention $flag" ;;
  esac
done

# A good invocation (with the new flags) still runs to completion.
out=$("$RUN" "$GUEST" --nodes 2 --faults --fault-seed 3 --drop-pct 2 2>&1)
status=$?
[ "$status" -eq 0 ] || fail "clean run with --faults exited $status: $out"
case "$out" in
  *"exit="*) ;;
  *) fail "clean run printed no result summary: $out" ;;
esac
case "$out" in
  *"retrans="*) ;;
  *) fail "fault run printed no net summary: $out" ;;
esac

[ "$failures" -eq 0 ] && echo "PASS"
exit "$failures"
