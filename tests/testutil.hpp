// Shared helpers for DQEMU tests.
#pragma once

#include <gtest/gtest.h>

#include <string>

#include "common/config.hpp"
#include "core/cluster.hpp"
#include "isa/assembler.hpp"
#include "isa/program.hpp"

namespace dqemu::test {

/// Finalizes `a` or fails the current test.
inline isa::Program must_finalize(isa::Assembler& a) {
  auto result = a.finalize();
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? result.take() : isa::Program{};
}

/// Small-memory config so tests construct clusters quickly.
inline ClusterConfig test_config(std::uint32_t slave_nodes) {
  ClusterConfig config;
  config.slave_nodes = slave_nodes;
  config.guest_mem_bytes = 64u * 1024 * 1024;
  return config;
}

inline ClusterConfig baseline_config() {
  ClusterConfig config;
  config.single_node_baseline = true;
  config.slave_nodes = 0;
  config.guest_mem_bytes = 64u * 1024 * 1024;
  return config;
}

struct RunOutcome {
  core::Cluster::RunResult result;
  std::string error;
  bool ok = false;
};

/// Loads and runs `program` on a fresh cluster with `config`.
inline RunOutcome run_program(const ClusterConfig& config,
                              const isa::Program& program,
                              core::Cluster::RunLimits limits = {}) {
  core::Cluster cluster(config);
  RunOutcome outcome;
  const Status load_status = cluster.load(program);
  if (!load_status.is_ok()) {
    outcome.error = load_status.to_string();
    return outcome;
  }
  auto run = cluster.run(limits);
  if (!run.is_ok()) {
    outcome.error = run.status().to_string();
    return outcome;
  }
  outcome.result = run.take();
  outcome.ok = true;
  return outcome;
}

}  // namespace dqemu::test
