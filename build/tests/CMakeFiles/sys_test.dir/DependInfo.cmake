
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/unit/sys_test.cpp" "tests/CMakeFiles/sys_test.dir/unit/sys_test.cpp.o" "gcc" "tests/CMakeFiles/sys_test.dir/unit/sys_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dqemu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guestlib/CMakeFiles/dqemu_guestlib.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dqemu_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/dqemu_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/dbt/CMakeFiles/dqemu_dbt.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dqemu_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/dqemu_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dqemu_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dqemu_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dqemu_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dqemu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
