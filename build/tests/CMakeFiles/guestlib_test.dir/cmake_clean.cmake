file(REMOVE_RECURSE
  "CMakeFiles/guestlib_test.dir/unit/guestlib_test.cpp.o"
  "CMakeFiles/guestlib_test.dir/unit/guestlib_test.cpp.o.d"
  "guestlib_test"
  "guestlib_test.pdb"
  "guestlib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guestlib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
