file(REMOVE_RECURSE
  "CMakeFiles/dbt_test.dir/unit/dbt_test.cpp.o"
  "CMakeFiles/dbt_test.dir/unit/dbt_test.cpp.o.d"
  "dbt_test"
  "dbt_test.pdb"
  "dbt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
