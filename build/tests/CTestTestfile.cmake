# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_net_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/dbt_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sys_test[1]_include.cmake")
include("/root/repo/build/tests/guestlib_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
