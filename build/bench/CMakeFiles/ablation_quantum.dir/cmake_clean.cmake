file(REMOVE_RECURSE
  "CMakeFiles/ablation_quantum.dir/ablation_quantum.cpp.o"
  "CMakeFiles/ablation_quantum.dir/ablation_quantum.cpp.o.d"
  "ablation_quantum"
  "ablation_quantum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quantum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
