file(REMOVE_RECURSE
  "CMakeFiles/fig8_locality.dir/fig8_locality.cpp.o"
  "CMakeFiles/fig8_locality.dir/fig8_locality.cpp.o.d"
  "fig8_locality"
  "fig8_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
