file(REMOVE_RECURSE
  "CMakeFiles/fig7_parsec.dir/fig7_parsec.cpp.o"
  "CMakeFiles/fig7_parsec.dir/fig7_parsec.cpp.o.d"
  "fig7_parsec"
  "fig7_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
