# Empty dependencies file for fig7_parsec.
# This may be replaced when dependencies are built.
