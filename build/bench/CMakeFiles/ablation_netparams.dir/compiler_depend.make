# Empty compiler generated dependencies file for ablation_netparams.
# This may be replaced when dependencies are built.
