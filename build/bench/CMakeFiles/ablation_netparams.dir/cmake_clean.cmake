file(REMOVE_RECURSE
  "CMakeFiles/ablation_netparams.dir/ablation_netparams.cpp.o"
  "CMakeFiles/ablation_netparams.dir/ablation_netparams.cpp.o.d"
  "ablation_netparams"
  "ablation_netparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_netparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
