file(REMOVE_RECURSE
  "CMakeFiles/fig6_mutex.dir/fig6_mutex.cpp.o"
  "CMakeFiles/fig6_mutex.dir/fig6_mutex.cpp.o.d"
  "fig6_mutex"
  "fig6_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
