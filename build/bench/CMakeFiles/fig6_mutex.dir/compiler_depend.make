# Empty compiler generated dependencies file for fig6_mutex.
# This may be replaced when dependencies are built.
