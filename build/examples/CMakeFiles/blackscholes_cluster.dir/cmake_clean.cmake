file(REMOVE_RECURSE
  "CMakeFiles/blackscholes_cluster.dir/blackscholes_cluster.cpp.o"
  "CMakeFiles/blackscholes_cluster.dir/blackscholes_cluster.cpp.o.d"
  "blackscholes_cluster"
  "blackscholes_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackscholes_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
