# Empty dependencies file for blackscholes_cluster.
# This may be replaced when dependencies are built.
