# Empty compiler generated dependencies file for dsm_inspector.
# This may be replaced when dependencies are built.
