file(REMOVE_RECURSE
  "CMakeFiles/dsm_inspector.dir/dsm_inspector.cpp.o"
  "CMakeFiles/dsm_inspector.dir/dsm_inspector.cpp.o.d"
  "dsm_inspector"
  "dsm_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
