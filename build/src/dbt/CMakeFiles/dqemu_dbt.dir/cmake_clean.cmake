file(REMOVE_RECURSE
  "CMakeFiles/dqemu_dbt.dir/exec.cpp.o"
  "CMakeFiles/dqemu_dbt.dir/exec.cpp.o.d"
  "CMakeFiles/dqemu_dbt.dir/reference_interp.cpp.o"
  "CMakeFiles/dqemu_dbt.dir/reference_interp.cpp.o.d"
  "CMakeFiles/dqemu_dbt.dir/translation.cpp.o"
  "CMakeFiles/dqemu_dbt.dir/translation.cpp.o.d"
  "libdqemu_dbt.a"
  "libdqemu_dbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
