file(REMOVE_RECURSE
  "libdqemu_dbt.a"
)
