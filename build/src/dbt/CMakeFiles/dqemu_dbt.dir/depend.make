# Empty dependencies file for dqemu_dbt.
# This may be replaced when dependencies are built.
