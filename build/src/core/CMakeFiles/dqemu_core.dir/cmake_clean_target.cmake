file(REMOVE_RECURSE
  "libdqemu_core.a"
)
