file(REMOVE_RECURSE
  "CMakeFiles/dqemu_core.dir/cluster.cpp.o"
  "CMakeFiles/dqemu_core.dir/cluster.cpp.o.d"
  "CMakeFiles/dqemu_core.dir/node.cpp.o"
  "CMakeFiles/dqemu_core.dir/node.cpp.o.d"
  "libdqemu_core.a"
  "libdqemu_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
