# Empty dependencies file for dqemu_core.
# This may be replaced when dependencies are built.
