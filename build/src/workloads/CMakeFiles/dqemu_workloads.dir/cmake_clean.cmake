file(REMOVE_RECURSE
  "CMakeFiles/dqemu_workloads.dir/common.cpp.o"
  "CMakeFiles/dqemu_workloads.dir/common.cpp.o.d"
  "CMakeFiles/dqemu_workloads.dir/micro.cpp.o"
  "CMakeFiles/dqemu_workloads.dir/micro.cpp.o.d"
  "CMakeFiles/dqemu_workloads.dir/parsec.cpp.o"
  "CMakeFiles/dqemu_workloads.dir/parsec.cpp.o.d"
  "libdqemu_workloads.a"
  "libdqemu_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
