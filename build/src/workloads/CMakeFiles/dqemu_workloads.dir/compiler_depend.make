# Empty compiler generated dependencies file for dqemu_workloads.
# This may be replaced when dependencies are built.
