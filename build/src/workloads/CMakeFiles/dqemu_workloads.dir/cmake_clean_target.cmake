file(REMOVE_RECURSE
  "libdqemu_workloads.a"
)
