file(REMOVE_RECURSE
  "libdqemu_common.a"
)
