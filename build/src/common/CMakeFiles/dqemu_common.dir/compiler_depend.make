# Empty compiler generated dependencies file for dqemu_common.
# This may be replaced when dependencies are built.
