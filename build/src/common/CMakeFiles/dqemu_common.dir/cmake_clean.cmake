file(REMOVE_RECURSE
  "CMakeFiles/dqemu_common.dir/log.cpp.o"
  "CMakeFiles/dqemu_common.dir/log.cpp.o.d"
  "CMakeFiles/dqemu_common.dir/stats.cpp.o"
  "CMakeFiles/dqemu_common.dir/stats.cpp.o.d"
  "libdqemu_common.a"
  "libdqemu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
