file(REMOVE_RECURSE
  "libdqemu_guestlib.a"
)
