file(REMOVE_RECURSE
  "CMakeFiles/dqemu_guestlib.dir/runtime.cpp.o"
  "CMakeFiles/dqemu_guestlib.dir/runtime.cpp.o.d"
  "libdqemu_guestlib.a"
  "libdqemu_guestlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_guestlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
