# Empty compiler generated dependencies file for dqemu_guestlib.
# This may be replaced when dependencies are built.
