file(REMOVE_RECURSE
  "CMakeFiles/dqemu_sim.dir/event_queue.cpp.o"
  "CMakeFiles/dqemu_sim.dir/event_queue.cpp.o.d"
  "libdqemu_sim.a"
  "libdqemu_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
