file(REMOVE_RECURSE
  "libdqemu_sim.a"
)
