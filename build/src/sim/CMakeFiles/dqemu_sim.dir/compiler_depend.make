# Empty compiler generated dependencies file for dqemu_sim.
# This may be replaced when dependencies are built.
