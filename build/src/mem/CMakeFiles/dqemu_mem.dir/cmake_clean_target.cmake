file(REMOVE_RECURSE
  "libdqemu_mem.a"
)
