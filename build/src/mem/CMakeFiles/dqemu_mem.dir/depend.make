# Empty dependencies file for dqemu_mem.
# This may be replaced when dependencies are built.
