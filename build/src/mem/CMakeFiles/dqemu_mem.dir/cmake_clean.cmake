file(REMOVE_RECURSE
  "CMakeFiles/dqemu_mem.dir/address_space.cpp.o"
  "CMakeFiles/dqemu_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/dqemu_mem.dir/shadow_map.cpp.o"
  "CMakeFiles/dqemu_mem.dir/shadow_map.cpp.o.d"
  "libdqemu_mem.a"
  "libdqemu_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
