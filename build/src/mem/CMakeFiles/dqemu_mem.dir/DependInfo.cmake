
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_space.cpp" "src/mem/CMakeFiles/dqemu_mem.dir/address_space.cpp.o" "gcc" "src/mem/CMakeFiles/dqemu_mem.dir/address_space.cpp.o.d"
  "/root/repo/src/mem/shadow_map.cpp" "src/mem/CMakeFiles/dqemu_mem.dir/shadow_map.cpp.o" "gcc" "src/mem/CMakeFiles/dqemu_mem.dir/shadow_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dqemu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dqemu_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
