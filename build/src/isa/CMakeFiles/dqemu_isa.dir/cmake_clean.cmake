file(REMOVE_RECURSE
  "CMakeFiles/dqemu_isa.dir/assembler.cpp.o"
  "CMakeFiles/dqemu_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/dqemu_isa.dir/isa.cpp.o"
  "CMakeFiles/dqemu_isa.dir/isa.cpp.o.d"
  "CMakeFiles/dqemu_isa.dir/text_asm.cpp.o"
  "CMakeFiles/dqemu_isa.dir/text_asm.cpp.o.d"
  "libdqemu_isa.a"
  "libdqemu_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
