# Empty compiler generated dependencies file for dqemu_isa.
# This may be replaced when dependencies are built.
