file(REMOVE_RECURSE
  "libdqemu_isa.a"
)
