file(REMOVE_RECURSE
  "CMakeFiles/dqemu_dsm.dir/client.cpp.o"
  "CMakeFiles/dqemu_dsm.dir/client.cpp.o.d"
  "CMakeFiles/dqemu_dsm.dir/directory.cpp.o"
  "CMakeFiles/dqemu_dsm.dir/directory.cpp.o.d"
  "libdqemu_dsm.a"
  "libdqemu_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
