# Empty dependencies file for dqemu_dsm.
# This may be replaced when dependencies are built.
