file(REMOVE_RECURSE
  "libdqemu_dsm.a"
)
