# Empty compiler generated dependencies file for dqemu_sys.
# This may be replaced when dependencies are built.
