file(REMOVE_RECURSE
  "CMakeFiles/dqemu_sys.dir/master_syscalls.cpp.o"
  "CMakeFiles/dqemu_sys.dir/master_syscalls.cpp.o.d"
  "CMakeFiles/dqemu_sys.dir/vfs.cpp.o"
  "CMakeFiles/dqemu_sys.dir/vfs.cpp.o.d"
  "libdqemu_sys.a"
  "libdqemu_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
