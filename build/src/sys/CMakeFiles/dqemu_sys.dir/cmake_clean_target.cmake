file(REMOVE_RECURSE
  "libdqemu_sys.a"
)
