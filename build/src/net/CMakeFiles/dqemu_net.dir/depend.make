# Empty dependencies file for dqemu_net.
# This may be replaced when dependencies are built.
