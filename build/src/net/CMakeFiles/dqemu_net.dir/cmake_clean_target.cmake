file(REMOVE_RECURSE
  "libdqemu_net.a"
)
