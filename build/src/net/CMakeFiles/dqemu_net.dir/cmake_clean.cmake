file(REMOVE_RECURSE
  "CMakeFiles/dqemu_net.dir/network.cpp.o"
  "CMakeFiles/dqemu_net.dir/network.cpp.o.d"
  "libdqemu_net.a"
  "libdqemu_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
