# Empty compiler generated dependencies file for dqemu_run.
# This may be replaced when dependencies are built.
