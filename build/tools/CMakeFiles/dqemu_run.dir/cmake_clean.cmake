file(REMOVE_RECURSE
  "CMakeFiles/dqemu_run.dir/dqemu_run.cpp.o"
  "CMakeFiles/dqemu_run.dir/dqemu_run.cpp.o.d"
  "dqemu_run"
  "dqemu_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dqemu_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
