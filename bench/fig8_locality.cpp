// Figure 8 — hint-based locality-aware scheduling on x264 and
// fluidanimate (128 threads).
//
// For each node count the workload runs twice: with the hint-based
// locality-aware scheduler (left bars in the paper) and with round-robin
// placement (right bars). Each result is the average per-thread time,
// normalized to the QEMU-4.2.0 single-node run, broken down into
// execute / page-fault / syscall shares — the paper's stacked bars. The
// expected shape: both fall with more nodes, but round-robin's page-fault
// share explodes while hint placement keeps it small.
#include "bench_util.hpp"
#include "workloads/parsec.hpp"

using namespace dqemu;
using namespace dqemu::bench;

namespace {

struct Breakdown {
  double execute = 0;
  double pagefault = 0;
  double syscall = 0;
  double idle = 0;  ///< core queueing + futex waits (not stacked by paper)

  [[nodiscard]] double total() const {
    return execute + pagefault + syscall + idle;
  }
};

/// Average per-thread breakdown (seconds) over worker threads.
Breakdown avg_breakdown(const BenchRun& run) {
  Breakdown out;
  std::size_t n = 0;
  for (const auto& [tid, b] : run.result.per_thread) {
    if (tid == 1) continue;  // main
    out.execute += ps_to_seconds(b.execute + b.translate);
    out.pagefault += ps_to_seconds(b.pagefault);
    out.syscall += ps_to_seconds(b.syscall);
    out.idle += ps_to_seconds(b.idle);
    ++n;
  }
  if (n != 0) {
    out.execute /= double(n);
    out.pagefault /= double(n);
    out.syscall /= double(n);
    out.idle /= double(n);
  }
  return out;
}

void print_bar(const char* label, const Breakdown& b, double norm) {
  std::printf(
      "  %-12s total %6.3f  exec %6.3f  fault %6.3f  syscall %6.3f  (idle %5.3f)\n",
      label, b.total() / norm, b.execute / norm, b.pagefault / norm,
      b.syscall / norm, b.idle / norm);
}

template <typename MakeProgram>
void run_figure(const char* name, MakeProgram make_program) {
  std::printf("\n%s (128 threads; values normalized to QEMU-4.2.0)\n", name);

  // QEMU baseline: grouping irrelevant on one node; use 4 groups.
  const auto qemu_prog = make_program(4);
  BenchRun qemu = run_cluster(paper_config(0), qemu_prog);
  must_ok(qemu, "fig8 qemu");
  const double norm = avg_breakdown(qemu).total();
  std::printf("  QEMU-4.2.0   total %6.3f\n", 1.0);

  for (std::uint32_t slaves = 2; slaves <= 6; slaves += 2) {
    // Grouping strategy follows the node count (the paper embeds several
    // strategies and picks by available nodes).
    const auto program = make_program(slaves);
    ClusterConfig hint_config = paper_config(slaves);
    hint_config.sched.policy = SchedPolicy::kHintLocality;
    BenchRun hint = run_cluster(hint_config, program);
    must_ok(hint, "fig8 hint");
    BenchRun rr = run_cluster(paper_config(slaves), program);
    must_ok(rr, "fig8 rr");
    std::printf(" %u slave nodes:\n", slaves);
    print_bar("hint", avg_breakdown(hint), norm);
    print_bar("round-robin", avg_breakdown(rr), norm);
  }
}

}  // namespace

int main() {
  print_header("Figure 8: hint-based locality-aware scheduling, 128 threads",
               "paper Fig.8: hint bars lower; round-robin page-fault share "
               "grows dramatically with node count");

  run_figure("x264-like (pipelined frame groups)", [](std::uint32_t groups) {
    workloads::X264Params params;
    params.threads = 128;
    params.groups = groups;
    params.rounds = scaled(24, 3);
    params.frame_bytes = 4096;
    params.compute_words = scaled(32768, 4);
    return must_program(workloads::x264_like(params), "x264");
  });

  run_figure("fluidanimate-like (row stencil)", [](std::uint32_t groups) {
    workloads::FluidanimateParams params;
    params.threads = 128;
    params.rows_per_thread = 4;
    params.cols = 512;
    params.iters = scaled(16, 3);
    params.hint_groups = groups;
    return must_program(workloads::fluidanimate_like(params), "fluidanimate");
  });
  return 0;
}
