// ablation_dsm_diff — diff-encoded DSM page transfers on/off.
//
// The table1 write-heavy scenarios move the same few pages between nodes
// over and over, but each handoff only dirties a handful of cache lines.
// The diff data plane (DESIGN.md §12) ships twin-based diffs instead of
// full pages on writebacks and version-covered grants; this bench runs the
// write-heavy workloads with the plane on and off and reports the modeled
// bytes-on-wire reduction and the virtual-time (sim_seconds) speedup.
//
// Guest results must be identical in both modes — the run aborts if the
// exit code or stdout diverge (a mis-applied diff shows up here as a wrong
// checksum). The write-heavy scenarios must also show at least a 25%
// reduction in dsm.bytes_on_wire, and the read-streaming control must not
// regress: cold fetches have no diff base and stay full-page.
//
// Results land in BENCH_dsm.json (or argv[1]); compare runs with
// tools/bench_compare.py. DQEMU_BENCH_QUICK=1 shrinks the workloads ~8x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/micro.hpp"

namespace dqemu::bench {
namespace {

struct Scenario {
  std::string name;
  isa::Program program;
  ClusterConfig config;
  bool write_heavy = false;  ///< gate the 25% bytes-on-wire reduction
};

struct Sample {
  std::string scenario;
  bool diff = false;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t bytes_on_wire = 0;
  std::uint64_t bytes_saved = 0;
  std::uint64_t diff_writebacks = 0;
  std::uint64_t diff_grants = 0;
  std::string guest_stdout;
  std::uint32_t exit_code = 0;
};

Sample measure(const Scenario& s, bool diff) {
  ClusterConfig config = s.config;
  config.dsm.enable_diff_transfers = diff;
  const BenchRun run = run_cluster(config, s.program);
  must_ok(run, s.name.c_str());
  Sample out;
  out.scenario = s.name;
  out.diff = diff;
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  out.bytes_on_wire = run.stats.get("dsm.bytes_on_wire");
  out.bytes_saved = run.stats.get("dsm.bytes_saved");
  out.diff_writebacks = run.stats.get("dsm.diff_writebacks");
  out.diff_grants = run.stats.get("dsm.diff_grants");
  out.guest_stdout = run.result.guest_stdout;
  out.exit_code = run.result.exit_code;
  return out;
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_dsm.json";
  print_header("ablation_dsm_diff — diff-encoded page transfers on/off",
               "table 1 write-heavy transfer volume (DESIGN.md §12)");

  const auto mutex_prog = must_program(
      workloads::mutex_stress(32, scaled(20'000, 4), /*global=*/true),
      "mutex_stress global");
  const auto fs_prog = must_program(
      workloads::false_sharing_walk(8, 512, scaled(800), 4),
      "false_sharing_walk");
  const auto memwalk_prog = must_program(
      workloads::memwalk(scaled(2u << 20), 2, /*touch_first=*/true),
      "memwalk");

  std::vector<Scenario> scenarios;
  {
    // Fig6 worst case: one counter page ping-pongs between every locker,
    // but each critical section dirties a single line of it.
    Scenario s;
    s.name = "mutex_global_4slaves";
    s.program = mutex_prog;
    s.config = paper_config(4);
    s.config.dbt.quantum_insns = 500;  // contended regime
    s.write_heavy = true;
    scenarios.push_back(std::move(s));
  }
  {
    // Table 1 false sharing: 8 writers share one page, each touching only
    // its own 512-byte slice — the textbook case for line-granular diffs.
    Scenario s;
    s.name = "false_sharing_4slaves";
    s.program = fs_prog;
    s.config = paper_config(4);
    s.config.dbt.quantum_insns = 500;
    s.write_heavy = true;
    scenarios.push_back(std::move(s));
  }
  {
    // Control: sequential read streaming of master-dirty pages. Every
    // fetch is cold (no retained version), so the diff plane must neither
    // help nor hurt: identical transfer volume and virtual time.
    Scenario s;
    s.name = "memwalk_2slaves";
    s.program = memwalk_prog;
    s.config = paper_config(2);
    scenarios.push_back(std::move(s));
  }

  std::vector<Sample> samples;
  std::printf("%-22s %5s %12s %10s %12s %14s %12s\n", "scenario", "diff",
              "insns", "wall s", "sim s", "wire bytes", "saved");
  bool ok = true;
  for (const Scenario& s : scenarios) {
    for (const bool diff : {true, false}) {
      const Sample sample = measure(s, diff);
      std::printf("%-22s %5s %12llu %10.3f %12.6f %14llu %12llu\n",
                  sample.scenario.c_str(), sample.diff ? "on" : "off",
                  static_cast<unsigned long long>(sample.guest_insns),
                  sample.wall_seconds, sample.sim_seconds,
                  static_cast<unsigned long long>(sample.bytes_on_wire),
                  static_cast<unsigned long long>(sample.bytes_saved));
      samples.push_back(sample);
    }
    const Sample& on = samples[samples.size() - 2];
    const Sample& off = samples.back();
    // Guest-visible behaviour must not change: same exit code and output.
    if (on.exit_code != off.exit_code || on.guest_stdout != off.guest_stdout) {
      std::fprintf(stderr,
                   "FATAL: %s: guest results diverge between diff modes\n",
                   s.name.c_str());
      return 1;
    }
    if (s.write_heavy) {
      // The acceptance gate: diffs must cut the modeled transfer volume of
      // the write-heavy scenarios by at least a quarter, and the smaller
      // messages must not slow the virtual clock down.
      if (static_cast<double>(on.bytes_on_wire) >
          0.75 * static_cast<double>(off.bytes_on_wire)) {
        std::fprintf(stderr,
                     "FATAL: %s: bytes_on_wire %llu -> %llu is under a 25%%"
                     " reduction\n",
                     s.name.c_str(),
                     static_cast<unsigned long long>(off.bytes_on_wire),
                     static_cast<unsigned long long>(on.bytes_on_wire));
        ok = false;
      }
      if (on.sim_seconds > off.sim_seconds) {
        std::fprintf(stderr, "FATAL: %s: diff mode slowed virtual time"
                     " (%.6f s -> %.6f s)\n",
                     s.name.c_str(), off.sim_seconds, on.sim_seconds);
        ok = false;
      }
      if (on.diff_writebacks == 0) {
        std::fprintf(stderr, "FATAL: %s: no diff writebacks recorded\n",
                     s.name.c_str());
        ok = false;
      }
    }
  }
  if (!ok) return 1;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_dsm_diff\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fastpath\": %s, \"guest_insns\": "
                 "%llu, \"wall_seconds\": %.6f, \"guest_mips\": %.2f, "
                 "\"sim_seconds\": %.6f, \"bytes_on_wire\": %llu, "
                 "\"bytes_saved\": %llu, \"diff_writebacks\": %llu, "
                 "\"diff_grants\": %llu}%s\n",
                 s.scenario.c_str(), s.diff ? "true" : "false",
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds,
                 static_cast<unsigned long long>(s.bytes_on_wire),
                 static_cast<unsigned long long>(s.bytes_saved),
                 static_cast<unsigned long long>(s.diff_writebacks),
                 static_cast<unsigned long long>(s.diff_grants),
                 i + 1 < samples.size() ? "," : "");
  }
  // Transfer-volume reduction and virtual-time speedup per scenario
  // (pairs are adjacent: diff on first, then off).
  std::fprintf(f, "  ],\n  \"speedups\": {\n");
  for (std::size_t i = 0; i + 1 < samples.size(); i += 2) {
    const Sample& on = samples[i];
    const Sample& off = samples[i + 1];
    const double ratio = off.sim_seconds / on.sim_seconds;
    const double reduction =
        off.bytes_on_wire == 0
            ? 0.0
            : 1.0 - static_cast<double>(on.bytes_on_wire) /
                        static_cast<double>(off.bytes_on_wire);
    std::fprintf(f, "    \"%s\": %.3f%s\n", on.scenario.c_str(), ratio,
                 i + 2 < samples.size() ? "," : "");
    std::printf("%-22s bytes-on-wire reduction: %5.1f%%  sim speedup: %.2fx\n",
                on.scenario.c_str(), reduction * 100.0, ratio);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
