// Table 1 — memory performance of DQEMU.
//
// Rows 1-3: a single walker thread reads a master-owned region
// byte-by-byte — on vanilla QEMU (local), on DQEMU with every page a
// remote fetch, and on DQEMU with data forwarding pushing pages ahead.
// Also reports the average remote-page latency (the paper's 410.5 us and
// 83.2 us column).
//
// Rows 4-6: 32 threads write 128-byte sections of one page — on QEMU, on
// DQEMU across 4 slave nodes with false sharing, and with page splitting.
//
// Paper values:
//   QEMU sequential  173.06 MB/s            | QEMU 128B   20,259 MB/s
//   remote sequential  7.88 MB/s @ 410.5 us | false shr    2,216 MB/s
//   forwarding       108.01 MB/s @  83.2 us | splitting   75,294 MB/s
#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

namespace {

struct Row {
  const char* name;
  double mbps;
  double latency_us;  // < 0: not applicable
  double paper_mbps;
  double paper_latency_us;
};

void print_row(const Row& row) {
  std::printf("%-28s %12.2f", row.name, row.mbps);
  if (row.latency_us >= 0) {
    std::printf(" %10.1f", row.latency_us);
  } else {
    std::printf(" %10s", "-");
  }
  std::printf(" %14.2f", row.paper_mbps);
  if (row.paper_latency_us >= 0) {
    std::printf(" %12.1f", row.paper_latency_us);
  } else {
    std::printf(" %12s", "-");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  print_header("Table 1: memory performance",
               "paper Table 1 (seq 173/7.88/108 MB/s; 128B 20259/2216/75294 MB/s)");

  const std::uint32_t walk_bytes = scaled(8u << 20, 4);
  const std::uint32_t walk_reps = 1;
  const auto walk_prog = must_program(
      workloads::memwalk(walk_bytes, walk_reps, /*touch_first=*/true),
      "memwalk");
  const double walked_mb =
      static_cast<double>(walk_bytes) * walk_reps / (1024.0 * 1024.0);

  std::printf("%-28s %12s %10s %14s %12s\n", "access type", "MB/s", "lat_us",
              "paper_MB/s", "paper_lat");

  const double pages_walked = double(walk_bytes) / 4096.0 * walk_reps;

  // Row 1: QEMU sequential access (single-node baseline).
  {
    BenchRun run = run_cluster(paper_config(0), walk_prog);
    must_ok(run, "qemu seq");
    print_row({"QEMU sequential", walked_mb / run.max_worker_seconds(), -1,
               173.06, -1});
  }

  // Row 2: remote sequential access (1 slave, no optimizations).
  {
    BenchRun run = run_cluster(paper_config(1), walk_prog);
    must_ok(run, "remote seq");
    // Average remote-page service time seen by the walker thread.
    const auto& walker = run.result.per_thread.rbegin()->second;
    // Per-page cost of acquiring a remote page, amortized over the walk.
    const double latency_us = ps_to_us(walker.pagefault) / pages_walked;
    print_row({"remote sequential", walked_mb / run.max_worker_seconds(),
               latency_us, 7.88, 410.5});
  }

  // Row 3: data forwarding enabled.
  {
    ClusterConfig config = paper_config(1);
    config.dsm.enable_forwarding = true;
    BenchRun run = run_cluster(config, walk_prog);
    must_ok(run, "forwarding seq");
    const auto& walker = run.result.per_thread.rbegin()->second;
    const double latency_us = ps_to_us(walker.pagefault) / pages_walked;
    print_row({"page forwarding enabled", walked_mb / run.max_worker_seconds(),
               latency_us, 108.01, 83.2});
    std::printf("    (forwards sent: %llu, installed: %llu)\n",
                static_cast<unsigned long long>(run.stats.get("dir.forwards")),
                static_cast<unsigned long long>(
                    run.stats.get("dsm.forwards_installed")));
  }

  // Rows 4-6: 32 threads, 128-byte sections of one page.
  const std::uint32_t fs_threads = 32;
  const std::uint32_t fs_section = 128;
  const std::uint32_t fs_reps = scaled(20000);
  const auto fs_prog = must_program(
      workloads::false_sharing_walk(fs_threads, fs_section, fs_reps, 4),
      "false_sharing_walk");
  const double fs_mb = static_cast<double>(fs_threads) * fs_section * fs_reps /
                       (1024.0 * 1024.0);

  // Row 4: QEMU (single node, no coherence).
  {
    BenchRun run = run_cluster(paper_config(0), fs_prog);
    must_ok(run, "qemu 128B");
    print_row({"QEMU access of 128 bytes", fs_mb / run.sim_seconds(),
               -1, 20259, -1});
  }

  // Row 5: false sharing across 4 slave nodes (hint placement, no split).
  ClusterConfig fs_config = paper_config(4);
  fs_config.sched.policy = SchedPolicy::kHintLocality;
  {
    BenchRun run = run_cluster(fs_config, fs_prog);
    must_ok(run, "false sharing");
    print_row({"false sharing of 1 page", fs_mb / run.sim_seconds(),
               -1, 2216, -1});
  }

  // Row 6: page splitting enabled.
  {
    ClusterConfig config = fs_config;
    config.dsm.enable_splitting = true;
    BenchRun run = run_cluster(config, fs_prog);
    must_ok(run, "page splitting");
    print_row({"page splitting enabled", fs_mb / run.sim_seconds(), -1,
               75294, -1});
    std::printf("    (pages split: %llu)\n",
                static_cast<unsigned long long>(run.stats.get("dir.splits")));
  }
  return 0;
}
