// bench_host_mips — HOST-performance benchmark: emulated guest MIPS.
//
// Unlike the fig*/table* benches (which report *virtual* time), this bench
// measures how fast the DBT engine itself runs on the host: guest
// instructions retired per host wall-clock second. It is the repo's
// perf-trajectory datapoint for the execution hot path (software TLB,
// indirect-jump cache, LL/SC store filter — DESIGN.md section 10 — and the
// superblock hot-trace tier — DESIGN.md section 15).
//
// Scenarios:
//   * hotloop_1node      — single-node baseline; main thread runs a
//     memory-heavy loop (lw/sw per iteration) calling a leaf function via
//     jal/jalr, so every layer of the fast path is exercised.
//   * memwalk_4node      — 4 slave nodes; workloads::memwalk with protection
//     checks and remote page faults in the loop.
//   * mutex_stress_4node — 4 slave nodes; lock-heavy loop (ll/sc + futex)
//     with short straight-line critical sections between side exits.
//
// Each scenario runs three configurations — (fastpath on, superblocks on),
// (fastpath on, superblocks off) and (fastpath off, superblocks off) — and
// the per-scenario speedups (superblocks on/off at fastpath on; fastpath
// on/off with superblocks off) land in BENCH_dbt.json (or argv[1]).
// guest_insns and sim_seconds must be byte-identical across the three rows
// of a scenario: both accelerations are host-side only. Compare two result
// files with tools/bench_compare.py (which enforces exactly that).
//
// DQEMU_BENCH_QUICK=1 shrinks the workloads ~8x (CI smoke runs).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "guestlib/runtime.hpp"
#include "isa/assembler.hpp"
#include "workloads/micro.hpp"

namespace dqemu::bench {
namespace {

using isa::Assembler;
using enum isa::Reg;

/// Memory-heavy hot loop: `reps` calls of a leaf that walks a 1 KiB array
/// with lw + sw + branch per element. The data all lives on one page, so a
/// software TLB should hit essentially always; the call/return pair makes
/// every iteration cross an indirect jump (ret = jalr).
Result<isa::Program> hotloop_program(std::uint32_t reps) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);
  Assembler::Label leaf = a.make_label("leaf");
  Assembler::Label data = a.make_label("data");

  // leaf(a0 = array): t3 += sum of 256 words, stores each word back.
  {
    a.bind(leaf);
    a.li(kT0, 256);
    a.mov(kT1, kA0);
    Assembler::Label loop = a.here();
    a.lw(kT2, kT1, 0);
    a.add(kT3, kT3, kT2);
    a.sw(kT1, kT2, 0);
    a.addi(kT1, kT1, 4);
    a.addi(kT0, kT0, -1);
    a.bne(kT0, kZero, loop);
    a.ret();
  }
  {
    a.bind(main_fn);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.li(kT3, 0);
    a.li(kS0, static_cast<std::int64_t>(reps));
    Assembler::Label loop = a.here();
    a.la(kA0, data);
    a.call(leaf);
    a.addi(kS0, kS0, -1);
    a.bne(kS0, kZero, loop);
    a.mov(kA0, kT3);  // checksum
    a.call(rt.print_u32);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 16);
    a.ret();
  }
  a.d_align(4096);
  a.bind_data(data);
  for (std::uint32_t i = 0; i < 256; ++i) a.d_word(i * 3 + 1);
  return a.finalize();
}

struct Scenario {
  std::string name;
  isa::Program program;
  ClusterConfig config;
};

struct Sample {
  std::string scenario;
  bool fastpath = false;
  bool superblocks = false;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
};

Sample measure(const Scenario& s, bool fastpath, bool superblocks) {
  ClusterConfig config = s.config;
  config.dbt.enable_fastpath = fastpath;
  config.dbt.enable_superblocks = superblocks;
  // Warm-up run (page cache, allocator); then the measured run.
  must_ok(run_cluster(config, s.program), s.name.c_str());
  const BenchRun run = run_cluster(config, s.program);
  must_ok(run, s.name.c_str());
  Sample out;
  out.scenario = s.name;
  out.fastpath = fastpath;
  out.superblocks = superblocks;
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  return out;
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_dbt.json";
  print_header("bench_host_mips — emulated guest MIPS (host wall clock)",
               "perf trajectory of the DBT hot path (not a paper figure)");

  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "hotloop_1node";
    s.program = must_program(hotloop_program(scaled(40'000)), "hotloop");
    s.config = paper_config(0);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "memwalk_4node";
    s.program = must_program(
        workloads::memwalk(scaled(2u << 20, 4), /*reps=*/4,
                           /*touch_first=*/true),
        "memwalk");
    s.config = paper_config(4);
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "mutex_stress_4node";
    s.program = must_program(
        workloads::mutex_stress(/*threads=*/8, scaled(20'000, 4),
                                /*global_lock=*/false),
        "mutex_stress");
    s.config = paper_config(4);
    s.config.sys.enable_hierarchical_locking = true;
    scenarios.push_back(std::move(s));
  }

  // Per scenario: superblocks on/off at fastpath on, then the legacy
  // fastpath on/off pair (superblocks off) — triples are adjacent in
  // `samples` and the speedup loop below indexes into them.
  struct Mode {
    bool fastpath;
    bool superblocks;
  };
  constexpr Mode kModes[] = {{true, true}, {true, false}, {false, false}};

  std::vector<Sample> samples;
  std::printf("%-18s %9s %12s %12s %9s %10s\n", "scenario", "fastpath",
              "superblocks", "insns", "wall s", "MIPS");
  for (const Scenario& s : scenarios) {
    for (const Mode mode : kModes) {
      const Sample sample = measure(s, mode.fastpath, mode.superblocks);
      std::printf("%-18s %9s %12s %12llu %9.3f %10.1f\n",
                  sample.scenario.c_str(), sample.fastpath ? "on" : "off",
                  sample.superblocks ? "on" : "off",
                  static_cast<unsigned long long>(sample.guest_insns),
                  sample.wall_seconds, sample.guest_mips);
      samples.push_back(sample);
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"bench_host_mips\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fastpath\": %s, \"superblocks\": "
                 "%s, \"guest_insns\": %llu, \"wall_seconds\": %.6f, "
                 "\"guest_mips\": %.2f, \"sim_seconds\": %.6f}%s\n",
                 s.scenario.c_str(), s.fastpath ? "true" : "false",
                 s.superblocks ? "true" : "false",
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"speedups\": {\n");
  for (std::size_t i = 0; i + 2 < samples.size(); i += 3) {
    const Sample& both = samples[i];      // fastpath on, superblocks on
    const Sample& fp_only = samples[i + 1];  // fastpath on, superblocks off
    const Sample& neither = samples[i + 2];  // fastpath off, superblocks off
    const double sb_ratio = both.guest_mips / fp_only.guest_mips;
    const double fp_ratio = fp_only.guest_mips / neither.guest_mips;
    std::fprintf(f,
                 "    \"%s\": {\"superblocks\": %.3f, \"fastpath\": %.3f}%s\n",
                 both.scenario.c_str(), sb_ratio, fp_ratio,
                 i + 3 < samples.size() ? "," : "");
    std::printf("%-18s superblock speedup: %.2fx   fastpath speedup: %.2fx\n",
                both.scenario.c_str(), sb_ratio, fp_ratio);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
