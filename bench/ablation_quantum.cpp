// Ablation — scheduling quantum (DESIGN.md design choice #1).
//
// The simulator interleaves guest threads at quantum granularity. This
// sweep shows the tradeoff on a contended workload (global-lock mutex
// stress): small quanta model fine-grained interleaving (more faithful
// lock handoffs, more scheduler events), large quanta batch execution.
// Simulated time should be fairly stable across 2-3 orders of magnitude —
// evidence the results are not an artifact of the default (20000).
#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main() {
  print_header("Ablation: execution quantum (insns per scheduling slice)",
               "DESIGN.md: determinism/granularity tradeoff");

  const auto contended = must_program(
      workloads::mutex_stress(32, scaled(1000), /*global=*/true), "mutex");
  const auto parallel = must_program(
      workloads::pi_taylor(32, scaled(200), 1000), "pi");

  std::printf("%-10s %18s %18s %14s\n", "quantum", "mutex_sim_s",
              "pi_sim_s", "wall_s");
  for (const std::uint32_t quantum : {500u, 2000u, 20000u, 100000u}) {
    ClusterConfig config = paper_config(4);
    config.dbt.quantum_insns = quantum;
    BenchRun m = run_cluster(config, contended);
    must_ok(m, "quantum mutex");
    BenchRun p = run_cluster(config, parallel);
    must_ok(p, "quantum pi");
    std::printf("%-10u %18.4f %18.4f %14.2f\n", quantum, m.sim_seconds(),
                p.sim_seconds(), m.wall_seconds + p.wall_seconds);
  }
  return 0;
}
