// Figure 7 — PARSEC blackscholes & swaptions scalability + optimizations.
//
// 32 threads, 1..6 slave nodes, speedup normalized to the 1-slave run of
// the unoptimized ("origin") configuration. blackscholes is data-intensive
// with a regular access pattern, so data forwarding helps (paper: +17.98%
// avg) and forwarding+splitting helps more (+23.8% avg); swaptions has
// little sharing and only gains from splitting (paper: +6.1%..14.7%).
// The QEMU-4.2.0 single-node baseline is the flat reference.
#include "bench_util.hpp"
#include "workloads/parsec.hpp"

using namespace dqemu;
using namespace dqemu::bench;

namespace {

enum class Variant { kOrigin, kForwarding, kForwardSplit, kSplitOnly };

ClusterConfig variant_config(std::uint32_t slaves, Variant variant) {
  ClusterConfig config = paper_config(slaves);
  switch (variant) {
    case Variant::kOrigin: break;
    case Variant::kForwarding:
      config.dsm.enable_forwarding = true;
      break;
    case Variant::kForwardSplit:
      config.dsm.enable_forwarding = true;
      config.dsm.enable_splitting = true;
      break;
    case Variant::kSplitOnly:
      config.dsm.enable_splitting = true;
      break;
  }
  return config;
}

}  // namespace

int main() {
  print_header(
      "Figure 7: blackscholes & swaptions speedup, 1-6 slave nodes",
      "paper Fig.7: near-linear blackscholes; forwarding +17.98% avg, "
      "+splitting +23.8% avg; swaptions splitting +6.1..14.7%");

  // --- blackscholes ------------------------------------------------------
  {
    workloads::BlackscholesParams params;
    params.threads = 32;
    params.options_n = 65536;  // 2048 options/thread, 16 input pages each
    params.reps = scaled(30, 6);
    const auto program =
        must_program(workloads::blackscholes_like(params), "blackscholes");

    std::printf("\nblackscholes (32 threads, %u options x %u reps)\n",
                params.options_n, params.reps);
    std::printf("%-8s %10s %12s %14s %10s\n", "slaves", "origin", "forwarding",
                "fwd+split", "speedup");
    double base = 0.0;
    for (std::uint32_t slaves = 1; slaves <= 6; ++slaves) {
      BenchRun origin =
          run_cluster(variant_config(slaves, Variant::kOrigin), program);
      must_ok(origin, "bs origin");
      BenchRun fwd =
          run_cluster(variant_config(slaves, Variant::kForwarding), program);
      must_ok(fwd, "bs forwarding");
      BenchRun full =
          run_cluster(variant_config(slaves, Variant::kForwardSplit), program);
      must_ok(full, "bs fwd+split");
      if (slaves == 1) base = origin.sim_seconds();
      std::printf("%-8u %9.2fx %11.2fx %13.2fx  (+fwd %4.1f%%, +split %4.1f%%)\n",
                  slaves, base / origin.sim_seconds(),
                  base / fwd.sim_seconds(), base / full.sim_seconds(),
                  100.0 * (origin.sim_seconds() / fwd.sim_seconds() - 1.0),
                  100.0 * (origin.sim_seconds() / full.sim_seconds() - 1.0));
    }
    BenchRun qemu = run_cluster(paper_config(0), program);
    must_ok(qemu, "bs qemu");
    std::printf("QEMU     %9.2fx  (paper: 1.26)\n",
                base / qemu.sim_seconds());
  }

  // --- swaptions -----------------------------------------------------------
  {
    workloads::SwaptionsParams params;
    params.threads = 32;
    params.swaptions_n = 64;
    params.trials = scaled(100000, 8);
    const auto program =
        must_program(workloads::swaptions_like(params), "swaptions");

    std::printf("\nswaptions (32 threads, %u swaptions x %u trials)\n",
                params.swaptions_n, params.trials);
    std::printf("%-8s %10s %12s\n", "slaves", "origin", "splitting");
    double base = 0.0;
    for (std::uint32_t slaves = 1; slaves <= 6; ++slaves) {
      BenchRun origin =
          run_cluster(variant_config(slaves, Variant::kOrigin), program);
      must_ok(origin, "sw origin");
      BenchRun split =
          run_cluster(variant_config(slaves, Variant::kSplitOnly), program);
      must_ok(split, "sw splitting");
      if (slaves == 1) base = origin.sim_seconds();
      std::printf("%-8u %9.2fx %11.2fx  (+split %4.1f%%)\n", slaves,
                  base / origin.sim_seconds(), base / split.sim_seconds(),
                  100.0 * (origin.sim_seconds() / split.sim_seconds() - 1.0));
    }
    BenchRun qemu = run_cluster(paper_config(0), program);
    must_ok(qemu, "sw qemu");
    std::printf("QEMU     %9.2fx\n", base / qemu.sim_seconds());
  }
  return 0;
}
