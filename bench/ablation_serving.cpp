// ablation_serving — offered load vs tail latency on the serving plane.
//
// The request-serving subsystem (DESIGN.md §14) turns the cluster into a
// request-serving system: a virtual-time load generator on the master
// injects seeded arrivals, guest worker pools pull them through delegated
// syscalls, and every arrival->completion latency lands in a log-bucketed
// histogram. This bench sweeps offered load across node counts (open-loop
// Poisson), plus a closed-loop and a request-cloning scenario, and reports
// throughput with p50/p99/p999/max.
//
// Acceptance gates: every issued request must retire with a verified
// checksum; percentiles must be monotone; and the saturated sweep point
// must show a fatter tail than the underloaded one (otherwise the sweep
// never left the flat region and proves nothing).
//
// Results land in BENCH_serving.json (or argv[1]); two runs of the same
// build must produce identical virtual-time numbers and latency quantiles
// (tools/bench_compare.py gates this in CI). DQEMU_BENCH_QUICK=1 shrinks
// the request counts ~8x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/serve.hpp"
#include "workloads/serve.hpp"

namespace dqemu::bench {
namespace {

constexpr std::uint32_t kWorkers = 16;

struct Sample {
  std::string name;
  std::uint32_t slaves = 0;
  double rate = 0.0;  ///< 0 for closed-loop
  std::uint32_t requests = 0;
  std::uint64_t retired = 0;
  std::uint64_t executions = 0;
  std::uint64_t clone_wasted = 0;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
  std::uint32_t exit_code = 0;
};

Sample measure(const std::string& name, const ClusterConfig& config,
               const isa::Program& program) {
  const BenchRun run = run_cluster(config, program);
  must_ok(run, name.c_str());
  Sample out;
  out.name = name;
  out.slaves = config.slave_nodes;
  out.rate = config.serve.arrival == ArrivalProcess::kClosed
                 ? 0.0
                 : config.serve.rate;
  out.requests = config.serve.requests;
  out.retired = run.stats.get("serve.retired");
  out.executions = run.stats.get("serve.executions");
  out.clone_wasted = run.stats.get("serve.clone_wasted");
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  out.throughput_rps =
      out.sim_seconds > 0 ? static_cast<double>(out.retired) / out.sim_seconds
                          : 0.0;
  out.exit_code = run.result.exit_code;
  if (const LogHistogram* lat = run.stats.find_histogram("serve.latency_ns");
      lat != nullptr && !lat->empty()) {
    // Integer nanoseconds out of the histogram: the printed milliseconds
    // are bit-stable run to run, which is what the CI determinism gate
    // compares.
    out.p50_ms = static_cast<double>(lat->quantile(0.5)) / 1e6;
    out.p99_ms = static_cast<double>(lat->quantile(0.99)) / 1e6;
    out.p999_ms = static_cast<double>(lat->quantile(0.999)) / 1e6;
    out.max_ms = static_cast<double>(lat->max()) / 1e6;
  }
  // Gate: the serving contract — everything issued retires, every reply
  // carried the right checksum, and the distribution is coherent.
  bool ok = out.exit_code == 0 && out.retired == out.requests &&
            run.stats.get("serve.checksum_errors") == 0;
  ok = ok && out.p50_ms <= out.p99_ms && out.p99_ms <= out.p999_ms &&
       out.p999_ms <= out.max_ms;
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: %s: retired=%llu/%u checksum_errors=%llu exit=%u "
                 "p50=%.3f p99=%.3f p999=%.3f max=%.3f\n",
                 name.c_str(), static_cast<unsigned long long>(out.retired),
                 out.requests,
                 static_cast<unsigned long long>(
                     run.stats.get("serve.checksum_errors")),
                 out.exit_code, out.p50_ms, out.p99_ms, out.p999_ms,
                 out.max_ms);
    std::exit(1);
  }
  return out;
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  print_header("ablation_serving — offered load vs tail latency",
               "request-serving plane, open/closed loop (DESIGN.md §14)");
  if (!serve::compiled_in()) {
    std::printf("serving plane compiled out (DQEMU_ENABLE_SERVING=OFF);"
                " nothing to measure\n");
    return 0;
  }

  const std::uint32_t requests = scaled(8000);
  workloads::ServePoolParams pool;
  pool.workers = kWorkers;
  const auto program = must_program(workloads::serve_pool(pool),
                                    "serve_pool");

  std::vector<Sample> samples;
  std::printf("%-22s %7s %8s %10s %9s %9s %9s %9s\n", "scenario", "slaves",
              "rate", "thru r/s", "p50 ms", "p99 ms", "p999 ms", "max ms");
  auto report = [&](const Sample& s) {
    std::printf("%-22s %7u %8.0f %10.1f %9.3f %9.3f %9.3f %9.3f\n",
                s.name.c_str(), s.slaves, s.rate, s.throughput_rps, s.p50_ms,
                s.p99_ms, s.p999_ms, s.max_ms);
    samples.push_back(s);
  };

  // Open-loop Poisson sweep: offered load under, near and past saturation
  // (kWorkers workers bound service capacity), across cluster sizes.
  const double rates[] = {2000.0, 8000.0, 32000.0};
  for (const std::uint32_t slaves : {1u, 2u, 4u}) {
    for (const double rate : rates) {
      ClusterConfig config = paper_config(slaves);
      config.serve.enabled = true;
      config.serve.requests = requests;
      config.serve.rate = rate;
      config.serve.workers = kWorkers;
      char name[64];
      std::snprintf(name, sizeof name, "poisson_s%u_r%.0f", slaves, rate);
      report(measure(name, config, program));
    }
  }
  // Closed loop: concurrency capped by the client population, so the tail
  // stays flat where the saturated open-loop tail blows up.
  {
    ClusterConfig config = paper_config(2);
    config.serve.enabled = true;
    config.serve.arrival = ArrivalProcess::kClosed;
    config.serve.requests = requests;
    config.serve.clients = 16;
    config.serve.think_mean = 2 * time_literals::kMs;
    config.serve.workers = kWorkers;
    report(measure("closed_s2_c16", config, program));
  }
  // Request cloning: two executions per request, first reply wins.
  {
    ClusterConfig config = paper_config(2);
    config.serve.enabled = true;
    config.serve.requests = requests;
    config.serve.rate = 4000.0;
    config.serve.clones = 2;
    config.serve.workers = kWorkers;
    report(measure("clone2_s2_r4000", config, program));
  }

  // Sweep-shape gates: saturation must actually hurt the tail, and the
  // cloning run must have burned clone executions.
  for (const std::uint32_t slaves : {1u, 2u, 4u}) {
    char low[64];
    char high[64];
    std::snprintf(low, sizeof low, "poisson_s%u_r2000", slaves);
    std::snprintf(high, sizeof high, "poisson_s%u_r32000", slaves);
    const Sample* under = nullptr;
    const Sample* over = nullptr;
    for (const Sample& s : samples) {
      if (s.name == low) under = &s;
      if (s.name == high) over = &s;
    }
    if (under == nullptr || over == nullptr ||
        over->p99_ms <= under->p99_ms) {
      std::fprintf(stderr,
                   "FATAL: slaves=%u: saturated p99 (%.3f ms) not above"
                   " underloaded p99 (%.3f ms) — the sweep never saturated\n",
                   slaves, over != nullptr ? over->p99_ms : 0.0,
                   under != nullptr ? under->p99_ms : 0.0);
      return 1;
    }
  }
  if (samples.back().clone_wasted == 0 ||
      samples.back().executions != 2ull * requests) {
    std::fprintf(stderr, "FATAL: cloning scenario ran no redundant clones\n");
    return 1;
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_serving\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    // "fastpath" is the cross-bench comparison key of bench_compare.py;
    // the serving plane has no off-variant rows, so it is always true.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fastpath\": true, "
                 "\"slaves\": %u, \"rate\": %g, \"requests\": %u, "
                 "\"retired\": %llu, \"executions\": %llu, "
                 "\"clone_wasted\": %llu, \"guest_insns\": %llu, "
                 "\"wall_seconds\": %.6f, \"guest_mips\": %.2f, "
                 "\"sim_seconds\": %.6f, \"throughput_rps\": %.3f, "
                 "\"p50_ms\": %.6f, \"p99_ms\": %.6f, \"p999_ms\": %.6f, "
                 "\"max_ms\": %.6f}%s\n",
                 s.name.c_str(), s.slaves, s.rate, s.requests,
                 static_cast<unsigned long long>(s.retired),
                 static_cast<unsigned long long>(s.executions),
                 static_cast<unsigned long long>(s.clone_wasted),
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds,
                 s.throughput_rps, s.p50_ms, s.p99_ms, s.p999_ms, s.max_ms,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
