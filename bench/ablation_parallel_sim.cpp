// ablation_parallel_sim — host threads vs wall clock, virtual time fixed.
//
// The conservative-window scheduler (DESIGN.md §16) partitions the event
// queue per simulated node and runs windows of modeled-latency width on a
// host thread pool. Its contract is asymmetric: virtual-time observables
// (sim_seconds, guest_insns, guest results, latency quantiles) must be
// byte-identical at every host thread count, while wall clock should drop
// as host threads are added. This bench sweeps host threads x node counts
// over the workloads that exercise the scheduler differently:
//
//   * memwalk (2 and 4 slave nodes, one page-disjoint walker per node) —
//     embarrassingly node-parallel DSM streaming, the scheduler's best
//     case and the acceptance scenario for the >= 2x @ 4-thread gate;
//   * mutex_stress private (4 nodes) — intra-node locking, moderate
//     cross-node traffic;
//   * the serving plane (2 and 4 slaves, open-loop Poisson) — master-heavy
//     arrival plumbing plus slave worker pools.
//
// The binary hard-gates the identity half itself: any virtual-time field
// that differs across host thread counts is a FATAL. The speedup half is
// recorded into the JSON together with per-scenario floors
// ("speedup_floor"), which tools/bench_compare.py --gate-parallel enforces
// — floors carry margin (and shrink in quick mode) because wall clock
// jitters on shared CI runners while virtual time does not.
//
// Results land in BENCH_parallel.json (or argv[1]); two runs of the same
// build must produce identical virtual-time numbers (tools/bench_compare.py
// gates this in CI). DQEMU_BENCH_QUICK=1 shrinks the workloads ~8x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/serve.hpp"
#include "sim/parallel.hpp"
#include "workloads/micro.hpp"
#include "workloads/serve.hpp"

namespace dqemu::bench {
namespace {
#if DQEMU_PARALLEL_SIM_ENABLED

struct Scenario {
  std::string name;  ///< group name; samples append "_htN"
  isa::Program program;
  ClusterConfig config;
  /// Wall-clock floors gated by bench_compare.py --gate-parallel
  /// (serial wall / this-thread-count wall must be >= floor).
  double floor_ht2 = 0.0;
  double floor_ht4 = 0.0;
};

struct Sample {
  std::string group;
  std::uint32_t host_threads = 1;
  std::uint32_t slaves = 0;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
  bool serving = false;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::string guest_stdout;
  std::uint32_t exit_code = 0;
};

Sample measure(const Scenario& s, std::uint32_t host_threads) {
  ClusterConfig config = s.config;
  config.sim.host_threads = host_threads;
  const BenchRun run = run_cluster(config, s.program);
  must_ok(run, s.name.c_str());
  Sample out;
  out.group = s.name;
  out.host_threads = host_threads;
  out.slaves = config.slave_nodes;
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  out.guest_stdout = run.result.guest_stdout;
  out.exit_code = run.result.exit_code;
  if (const LogHistogram* lat = run.stats.find_histogram("serve.latency_ns");
      lat != nullptr && !lat->empty()) {
    out.serving = true;
    out.throughput_rps = out.sim_seconds > 0
                             ? static_cast<double>(run.stats.get(
                                   "serve.retired")) / out.sim_seconds
                             : 0.0;
    out.p50_ms = static_cast<double>(lat->quantile(0.5)) / 1e6;
    out.p99_ms = static_cast<double>(lat->quantile(0.99)) / 1e6;
  }
  return out;
}

/// The identity half of the scheduler's contract: everything virtual must
/// be byte-identical to the serial (host_threads == 1) run.
bool identical_virtual_time(const Sample& base, const Sample& s) {
  return s.guest_insns == base.guest_insns &&
         s.sim_seconds == base.sim_seconds &&
         s.exit_code == base.exit_code &&
         s.guest_stdout == base.guest_stdout &&
         s.serving == base.serving && s.throughput_rps == base.throughput_rps &&
         s.p50_ms == base.p50_ms && s.p99_ms == base.p99_ms;
}

#endif  // DQEMU_PARALLEL_SIM_ENABLED
}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  print_header("ablation_parallel_sim — host threads vs wall clock",
               "conservative-window parallel scheduler (DESIGN.md §16)");
#if !DQEMU_PARALLEL_SIM_ENABLED
  std::printf("parallel scheduler compiled out (DQEMU_ENABLE_PARALLEL_SIM="
              "OFF); nothing to measure\n");
  (void)out_path;
  return 0;
#else
  const bool quick = quick_mode();

  // A speedup floor is only meaningful when the host can physically run
  // that many threads: on a 1-core container the sweep still proves the
  // identity half (virtual time must not move), but every wall-clock floor
  // is waived (0.0) and the JSON records host_cores so a reader knows why.
  const unsigned host_cores = std::thread::hardware_concurrency();

  // Floors tolerate host-time jitter: the committed full-size run must
  // clear the acceptance bar (2x on the 4-node memwalk at 4 threads) with
  // margin, while quick CI runs on noisy shared runners only have to show
  // the scheduler is not a slowdown.
  const double memwalk4_floor_ht4 =
      host_cores >= 4 ? (quick ? 1.25 : 2.0) : 0.0;
  const double modest = host_cores >= 4 ? (quick ? 0.85 : 1.02) : 0.0;
  if (host_cores < 4) {
    std::printf("note: host has %u core(s); wall-clock speedup floors are"
                " waived (identity gates still apply)\n", host_cores);
  }

  std::vector<Scenario> scenarios;
  // One page-disjoint walker per slave node; each slice is a page multiple
  // so the walkers never share a page and every node streams from the
  // master independently — maximum node-level parallelism for the windows
  // to exploit.
  const std::uint32_t slice = scaled(4u << 20, 2);
  {
    Scenario s;
    s.name = "memwalk_4node";
    s.program = must_program(
        workloads::memwalk(4 * slice, 3, /*touch_first=*/true, /*workers=*/4),
        "memwalk 4 workers");
    s.config = paper_config(4);
    s.floor_ht2 = host_cores >= 2 ? (quick ? 1.0 : 1.4) : 0.0;
    s.floor_ht4 = memwalk4_floor_ht4;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "memwalk_2node";
    s.program = must_program(
        workloads::memwalk(2 * slice, 3, /*touch_first=*/true, /*workers=*/2),
        "memwalk 2 workers");
    s.config = paper_config(2);
    s.floor_ht2 = host_cores >= 2 ? (quick ? 0.95 : 1.3) : 0.0;
    s.floor_ht4 = host_cores >= 4 ? (quick ? 0.95 : 1.3) : 0.0;  // 3 queues
    scenarios.push_back(std::move(s));
  }
  {
    // Private locks: each worker spins on its own page, so the slaves run
    // near-independently and the master only sees clone/exit traffic.
    Scenario s;
    s.name = "mutex_private_4node";
    s.program = must_program(
        workloads::mutex_stress(8, scaled(40'000), /*global=*/false),
        "mutex_stress private");
    s.config = paper_config(4);
    s.floor_ht2 = modest;
    s.floor_ht4 = modest;
    scenarios.push_back(std::move(s));
  }
  if (serve::compiled_in()) {
    workloads::ServePoolParams pool;
    pool.workers = 16;
    const auto program = must_program(workloads::serve_pool(pool),
                                      "serve_pool");
    for (const std::uint32_t slaves : {2u, 4u}) {
      Scenario s;
      s.name = "serve_s" + std::to_string(slaves);
      s.program = program;
      s.config = paper_config(slaves);
      s.config.serve.enabled = true;
      s.config.serve.requests = scaled(16'000);
      s.config.serve.rate = 8000.0;
      s.config.serve.workers = pool.workers;
      s.floor_ht2 = modest;
      s.floor_ht4 = modest;
      scenarios.push_back(std::move(s));
    }
  } else {
    std::printf("note: serving plane compiled out; serve scenarios skipped\n");
  }

  const std::uint32_t thread_counts[] = {1, 2, 4};
  std::vector<Sample> samples;
  std::printf("%-22s %4s %12s %12s %10s %9s %9s\n", "scenario", "ht", "insns",
              "sim s", "wall s", "mips", "speedup");
  for (const Scenario& s : scenarios) {
    Sample base;
    for (const std::uint32_t ht : thread_counts) {
      const Sample sample = measure(s, ht);
      if (ht == 1) base = sample;
      const double speedup = sample.wall_seconds > 0
                                 ? base.wall_seconds / sample.wall_seconds
                                 : 0.0;
      std::printf("%-22s %4u %12llu %12.6f %10.6f %9.2f %8.2fx\n",
                  s.name.c_str(), ht,
                  static_cast<unsigned long long>(sample.guest_insns),
                  sample.sim_seconds, sample.wall_seconds, sample.guest_mips,
                  speedup);
      // The non-negotiable half: the host thread count must be invisible
      // in virtual time. Fail immediately, not via the compare tool.
      if (!identical_virtual_time(base, sample)) {
        std::fprintf(stderr,
                     "FATAL: %s: host_threads=%u diverges from the serial"
                     " run in virtual time (insns %llu vs %llu, sim %.9f vs"
                     " %.9f, exit %u vs %u)\n",
                     s.name.c_str(), ht,
                     static_cast<unsigned long long>(sample.guest_insns),
                     static_cast<unsigned long long>(base.guest_insns),
                     sample.sim_seconds, base.sim_seconds, sample.exit_code,
                     base.exit_code);
        return 1;
      }
      samples.push_back(sample);
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_parallel_sim\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    // "fastpath" is the cross-bench comparison key of bench_compare.py;
    // the thread count is part of the name, so it is always true here.
    // "group"/"host_threads" drive the --gate-parallel within-file check.
    std::fprintf(f,
                 "    {\"name\": \"%s_ht%u\", \"fastpath\": true, "
                 "\"group\": \"%s\", \"host_threads\": %u, \"slaves\": %u, "
                 "\"guest_insns\": %llu, \"wall_seconds\": %.6f, "
                 "\"guest_mips\": %.2f, \"sim_seconds\": %.6f",
                 s.group.c_str(), s.host_threads, s.group.c_str(),
                 s.host_threads, s.slaves,
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds);
    if (s.serving) {
      std::fprintf(f,
                   ", \"throughput_rps\": %.1f, \"p50_ms\": %.6f, "
                   "\"p99_ms\": %.6f",
                   s.throughput_rps, s.p50_ms, s.p99_ms);
    }
    std::fprintf(f, "}%s\n", i + 1 < samples.size() ? "," : "");
  }
  // Wall-clock floors for --gate-parallel: serial wall / ht-N wall must
  // be >= floor for every group that declares one.
  std::fprintf(f, "  ],\n  \"speedup_floor\": {\n");
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const Scenario& s = scenarios[i];
    std::fprintf(f, "    \"%s\": {\"ht2\": %.2f, \"ht4\": %.2f}%s\n",
                 s.name.c_str(), s.floor_ht2, s.floor_ht4,
                 i + 1 < scenarios.size() ? "," : "");
  }
  // Measured speedups, for the record (and EXPERIMENTS.md).
  std::fprintf(f, "  },\n  \"speedup\": {\n");
  const std::size_t levels = sizeof(thread_counts) / sizeof(thread_counts[0]);
  for (std::size_t i = 0; i < samples.size(); i += levels) {
    for (std::size_t j = 1; j < levels; ++j) {
      const Sample& base = samples[i];
      const Sample& par = samples[i + j];
      const bool last = i + levels >= samples.size() && j + 1 == levels;
      std::fprintf(f, "    \"%s_ht%u\": %.3f%s\n", par.group.c_str(),
                   par.host_threads, base.wall_seconds / par.wall_seconds,
                   last ? "" : ",");
    }
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
#endif
}
