// Figure 6 — atomic instructions and mutex performance.
//
// 32 threads acquire and release a lock. Scenario 1 (worst case): one
// global lock, 5000 acquisitions per thread — contention grows with node
// count as the lock page and futex delegation ping-pong across the
// cluster. Scenario 2 (best case): a private lock per thread (each on its
// own page), 500K acquisitions — purely intra-node, so more nodes means
// more cores and *less* time.
//
// Paper series (Fig. 6, elapsed seconds):
//   DQEMU-1 (global):  5.2 6.8 9.5 16.5 21.3 25.6   QEMU-1: 0.48
//   DQEMU-2 (private): 4.0 2.1 1.6 1.4 1.2 1.2      QEMU-2: 3.4
#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main() {
  print_header("Figure 6: mutex stress, 32 threads, 1-6 slave nodes",
               "paper Fig.6: global 5.2->25.6s rising; private 4.0->1.2s falling");

  const std::uint32_t threads = 32;
  const std::uint32_t global_iters = scaled(2000);
  const std::uint32_t private_iters = scaled(100'000);

  // A finer scheduling quantum makes same-node lock handoffs interleave
  // realistically (one quantum covers many criticial sections otherwise).
  const auto global_prog = must_program(
      workloads::mutex_stress(threads, global_iters, /*global=*/true),
      "mutex_stress global");
  const auto private_prog = must_program(
      workloads::mutex_stress(threads, private_iters, /*global=*/false),
      "mutex_stress private");

  static const double kPaperGlobal[6] = {5.2, 6.8, 9.5, 16.5, 21.3, 25.6};
  static const double kPaperPrivate[6] = {4.0, 2.1, 1.6, 1.4, 1.2, 1.2};

  std::printf("%-10s %16s %12s %16s %12s\n", "slaves", "global_sim_s",
              "paper_rel", "private_sim_s", "paper_rel");
  double g1 = 0.0;
  double p1 = 0.0;
  for (std::uint32_t slaves = 1; slaves <= 6; ++slaves) {
    ClusterConfig config = paper_config(slaves);
    config.dbt.quantum_insns = 2000;
    BenchRun g = run_cluster(config, global_prog);
    must_ok(g, "fig6 global");
    BenchRun p = run_cluster(config, private_prog);
    must_ok(p, "fig6 private");
    if (slaves == 1) {
      g1 = g.sim_seconds();
      p1 = p.sim_seconds();
    }
    // paper_rel: the paper's time for this point relative to its 1-node
    // time — compare against measured/measured-1-node to check the shape.
    std::printf("%-10u %10.4f (%4.2fx) %10.2f %10.4f (%4.2fx) %10.2f\n",
                slaves, g.sim_seconds(), g.sim_seconds() / g1,
                kPaperGlobal[slaves - 1] / kPaperGlobal[0], p.sim_seconds(),
                p.sim_seconds() / p1, kPaperPrivate[slaves - 1] / kPaperPrivate[0]);
  }

  ClusterConfig qemu_config = paper_config(0);
  qemu_config.dbt.quantum_insns = 2000;
  BenchRun gq = run_cluster(qemu_config, global_prog);
  must_ok(gq, "fig6 global qemu");
  BenchRun pq = run_cluster(qemu_config, private_prog);
  must_ok(pq, "fig6 private qemu");
  std::printf("QEMU       %10.4f (%4.2fx) %10.2f %10.4f (%4.2fx) %10.2f\n",
              gq.sim_seconds(), gq.sim_seconds() / g1, 0.48 / 5.2,
              pq.sim_seconds(), pq.sim_seconds() / p1, 3.4 / 4.0);
  return 0;
}
