// Figure 6 — atomic instructions and mutex performance.
//
// 32 threads acquire and release a lock. Scenario 1 (worst case): one
// global lock, 5000 acquisitions per thread — contention grows with node
// count as the lock page and futex delegation ping-pong across the
// cluster. Scenario 2 (best case): a private lock per thread (each on its
// own page), 500K acquisitions — purely intra-node, so more nodes means
// more cores and *less* time.
//
// Paper series (Fig. 6, elapsed seconds):
//   DQEMU-1 (global):  5.2 6.8 9.5 16.5 21.3 25.6   QEMU-1: 0.48
//   DQEMU-2 (private): 4.0 2.1 1.6 1.4 1.2 1.2      QEMU-2: 3.4
//
// Flags: --hier-locking enables the hierarchical-locking fast path
// (DESIGN.md section 11); --bench-out <path> writes the series as JSON.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main(int argc, char** argv) {
  bool hier = false;
  const char* out_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--hier-locking") == 0) {
      hier = true;
    } else if (std::strcmp(argv[i], "--bench-out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: fig6_mutex [--hier-locking] [--bench-out file]\n");
      return 2;
    }
  }

  print_header("Figure 6: mutex stress, 32 threads, 1-6 slave nodes",
               "paper Fig.6: global 5.2->25.6s rising; private 4.0->1.2s falling");
  if (hier) std::printf("(hierarchical locking enabled)\n");

  const std::uint32_t threads = 32;
  const std::uint32_t global_iters = scaled(20'000, 4);
  const std::uint32_t private_iters = scaled(100'000);

  const auto global_prog = must_program(
      workloads::mutex_stress(threads, global_iters, /*global=*/true),
      "mutex_stress global");
  const auto private_prog = must_program(
      workloads::mutex_stress(threads, private_iters, /*global=*/false),
      "mutex_stress private");

  static const double kPaperGlobal[6] = {5.2, 6.8, 9.5, 16.5, 21.3, 25.6};
  static const double kPaperPrivate[6] = {4.0, 2.1, 1.6, 1.4, 1.2, 1.2};

  struct Point {
    std::uint32_t slaves;
    double global_sim;
    double private_sim;
  };
  std::vector<Point> series;

  std::printf("%-10s %16s %12s %16s %12s\n", "slaves", "global_sim_s",
              "paper_rel", "private_sim_s", "paper_rel");
  double g1 = 0.0;
  double p1 = 0.0;
  for (std::uint32_t slaves = 1; slaves <= 6; ++slaves) {
    ClusterConfig config = paper_config(slaves);
    // A fine scheduling quantum preempts threads *inside* the critical
    // section, so contenders actually park in the futex instead of always
    // finding the lock free — the serialized regime Fig. 6 measures.
    config.dbt.quantum_insns = 500;
    config.sys.enable_hierarchical_locking = hier;
    BenchRun g = run_cluster(config, global_prog);
    must_ok(g, "fig6 global");
    BenchRun p = run_cluster(config, private_prog);
    must_ok(p, "fig6 private");
    if (slaves == 1) {
      g1 = g.sim_seconds();
      p1 = p.sim_seconds();
    }
    series.push_back(Point{slaves, g.sim_seconds(), p.sim_seconds()});
    // paper_rel: the paper's time for this point relative to its 1-node
    // time — compare against measured/measured-1-node to check the shape.
    std::printf("%-10u %10.4f (%4.2fx) %10.2f %10.4f (%4.2fx) %10.2f\n",
                slaves, g.sim_seconds(), g.sim_seconds() / g1,
                kPaperGlobal[slaves - 1] / kPaperGlobal[0], p.sim_seconds(),
                p.sim_seconds() / p1, kPaperPrivate[slaves - 1] / kPaperPrivate[0]);
  }

  ClusterConfig qemu_config = paper_config(0);
  qemu_config.dbt.quantum_insns = 500;
  BenchRun gq = run_cluster(qemu_config, global_prog);
  must_ok(gq, "fig6 global qemu");
  BenchRun pq = run_cluster(qemu_config, private_prog);
  must_ok(pq, "fig6 private qemu");
  std::printf("QEMU       %10.4f (%4.2fx) %10.2f %10.4f (%4.2fx) %10.2f\n",
              gq.sim_seconds(), gq.sim_seconds() / g1, 0.48 / 5.2,
              pq.sim_seconds(), pq.sim_seconds() / p1, 3.4 / 4.0);

  if (out_path != nullptr) {
    std::FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig6_mutex\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
    std::fprintf(f, "  \"hier_locking\": %s,\n", hier ? "true" : "false");
    std::fprintf(f, "  \"points\": [\n");
    for (std::size_t i = 0; i < series.size(); ++i) {
      const Point& pt = series[i];
      std::fprintf(f,
                   "    {\"slaves\": %u, \"global_sim_seconds\": %.6f, "
                   "\"private_sim_seconds\": %.6f}%s\n",
                   pt.slaves, pt.global_sim, pt.private_sim,
                   i + 1 < series.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  }
  return 0;
}
