// Ablation — page splitting parameters (design choices of section 5.1).
//
// Sweeps the false-sharing trigger threshold and the shard count on the
// Table-1 false-sharing walker (32 threads x 128-byte sections of one
// page, 4 slave nodes, hint placement). Expected: lower thresholds split
// sooner (less transient ping-pong); shard counts that match the per-node
// section layout (4 shards = 1 KiB = one node's 8 x 128 B sections)
// eliminate all cross-node sharing, finer shards add no benefit, coarser
// ones leave residual sharing.
#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main() {
  print_header("Ablation: page splitting threshold/shards",
               "design choice behind paper section 5.1 defaults");

  const std::uint32_t threads = 32;
  const std::uint32_t reps = scaled(20000);
  const auto program = must_program(
      workloads::false_sharing_walk(threads, 128, reps, 4),
      "false_sharing_walk");
  const double mb =
      static_cast<double>(threads) * 128 * reps / (1024.0 * 1024.0);

  std::printf("%-12s %-8s %12s %10s\n", "threshold", "shards", "MB/s",
              "splits");
  for (const std::uint32_t threshold : {4u, 10u, 40u, 200u}) {
    for (const std::uint32_t shards : {2u, 4u, 8u, 16u}) {
      ClusterConfig config = paper_config(4);
      config.sched.policy = SchedPolicy::kHintLocality;
      config.dsm.enable_splitting = true;
      config.dsm.split_threshold = threshold;
      config.dsm.split_shards = shards;
      BenchRun run = run_cluster(config, program);
      must_ok(run, "splitting ablation");
      std::printf("%-12u %-8u %12.2f %10llu\n", threshold, shards,
                  mb / run.sim_seconds(),
                  static_cast<unsigned long long>(run.stats.get("dir.splits")));
    }
  }

  ClusterConfig off = paper_config(4);
  off.sched.policy = SchedPolicy::kHintLocality;
  BenchRun run = run_cluster(off, program);
  must_ok(run, "splitting off");
  std::printf("%-12s %-8s %12.2f %10u\n", "off", "-", mb / run.sim_seconds(),
              0);
  return 0;
}
