// ablation_faults — the cluster under a deterministic lossy wire.
//
// The fault-injection plane (DESIGN.md §13) drops, duplicates and delays
// wire messages from a seeded counter-based PRNG while the reliable channel
// under Network::send retransmits and deduplicates. This bench sweeps the
// drop rate over the contended workloads and reports what the faults cost
// in virtual time and what the recovery machinery did.
//
// The acceptance gates: guest results (exit code and stdout) at every loss
// level must be byte-identical to the clean run — a lost wakeup or a
// mis-sequenced page grant shows up here as a wrong checksum; the lossy
// runs must actually drop and retransmit something; and the virtual-time
// inflation at <= 5% loss must stay under 3x.
//
// Results land in BENCH_faults.json (or argv[1]); two runs of the same
// build must produce identical virtual-time numbers (tools/bench_compare.py
// gates this in CI). DQEMU_BENCH_QUICK=1 shrinks the workloads ~8x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/micro.hpp"

namespace dqemu::bench {
namespace {

struct Scenario {
  std::string name;
  isa::Program program;
  ClusterConfig config;
};

struct Sample {
  std::string scenario;
  bool faults = false;
  double drop_pct = 0.0;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t dropped = 0;
  std::uint64_t retrans = 0;
  std::uint64_t dup_suppressed = 0;
  std::uint64_t dsm_timeouts = 0;
  std::string guest_stdout;
  std::uint32_t exit_code = 0;
};

Sample measure(const Scenario& s, double drop_pct) {
  ClusterConfig config = s.config;
  if (drop_pct > 0.0) {
    config.faults.enabled = true;
    config.faults.drop_pct = drop_pct;
    config.faults.dup_pct = 1.0;
    config.faults.jitter_pct = 5.0;
  }
  const BenchRun run = run_cluster(config, s.program);
  must_ok(run, s.name.c_str());
  Sample out;
  out.scenario = s.name;
  out.faults = drop_pct > 0.0;
  out.drop_pct = drop_pct;
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  out.dropped = run.stats.get("net.dropped");
  out.retrans = run.stats.get("net.retrans");
  out.dup_suppressed = run.stats.get("net.dup_suppressed");
  out.dsm_timeouts = run.stats.get("dsm.timeouts");
  out.guest_stdout = run.result.guest_stdout;
  out.exit_code = run.result.exit_code;
  return out;
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_faults.json";
  print_header("ablation_faults — loss sweep under the reliable channel",
               "fault tolerance of the distributed protocols (DESIGN.md §13)");

  const auto mutex_prog = must_program(
      workloads::mutex_stress(32, scaled(10'000, 4), /*global=*/true),
      "mutex_stress global");
  const auto fs_prog = must_program(
      workloads::false_sharing_walk(8, 512, scaled(800), 4),
      "false_sharing_walk");
  const auto memwalk_prog = must_program(
      workloads::memwalk(scaled(2u << 20), 2, /*touch_first=*/true),
      "memwalk");

  std::vector<Scenario> scenarios;
  {
    // Fig6 worst case: every lock handoff and counter-page migration is
    // wire traffic a drop can stall — the hardest test of no-lost-wakeup.
    Scenario s;
    s.name = "mutex_global_2slaves";
    s.program = mutex_prog;
    s.config = paper_config(2);
    s.config.dbt.quantum_insns = 500;
    scenarios.push_back(std::move(s));
  }
  {
    // Table 1 false sharing: a steady stream of page grants and writebacks
    // in both directions; drops hit data-carrying messages.
    Scenario s;
    s.name = "false_sharing_2slaves";
    s.program = fs_prog;
    s.config = paper_config(2);
    s.config.dbt.quantum_insns = 500;
    scenarios.push_back(std::move(s));
  }
  {
    // Sequential read streaming: long page-fault chains where a dropped
    // grant blocks the one running thread until retransmission.
    Scenario s;
    s.name = "memwalk_2slaves";
    s.program = memwalk_prog;
    s.config = paper_config(2);
    scenarios.push_back(std::move(s));
  }

  const double losses[] = {0.0, 1.0, 2.0, 5.0};
  std::vector<Sample> samples;
  std::printf("%-24s %6s %12s %12s %9s %9s %9s\n", "scenario", "loss%",
              "insns", "sim s", "dropped", "retrans", "inflate");
  bool ok = true;
  for (const Scenario& s : scenarios) {
    Sample clean;
    for (const double loss : losses) {
      const Sample sample = measure(s, loss);
      if (loss == 0.0) clean = sample;
      const double inflation = sample.sim_seconds / clean.sim_seconds;
      std::printf("%-24s %6.1f %12llu %12.6f %9llu %9llu %8.2fx\n",
                  sample.scenario.c_str(), loss,
                  static_cast<unsigned long long>(sample.guest_insns),
                  sample.sim_seconds,
                  static_cast<unsigned long long>(sample.dropped),
                  static_cast<unsigned long long>(sample.retrans), inflation);
      // Gate 1: the guest must never see the lossy wire.
      if (sample.exit_code != clean.exit_code ||
          sample.guest_stdout != clean.guest_stdout) {
        std::fprintf(stderr,
                     "FATAL: %s @ %.1f%% loss: guest results diverge from"
                     " the clean run\n",
                     s.name.c_str(), loss);
        return 1;
      }
      // Gate 2: recovery must be cheap — under 3x virtual time at <=5%.
      if (inflation >= 3.0) {
        std::fprintf(stderr,
                     "FATAL: %s @ %.1f%% loss: virtual time inflated %.2fx"
                     " (>= 3x)\n",
                     s.name.c_str(), loss, inflation);
        ok = false;
      }
      // Gate 3: every drop must be answered by a retransmission.
      if (sample.dropped > 0 && sample.retrans == 0) {
        std::fprintf(stderr,
                     "FATAL: %s @ %.1f%% loss: %llu drops but no"
                     " retransmissions\n",
                     s.name.c_str(), loss,
                     static_cast<unsigned long long>(sample.dropped));
        ok = false;
      }
      samples.push_back(sample);
    }
    // Gate 4: the sweep's top loss level must actually exercise recovery.
    if (samples.back().dropped == 0 || samples.back().retrans == 0) {
      std::fprintf(stderr,
                   "FATAL: %s: 5%% loss dropped nothing — the sweep is"
                   " vacuous\n",
                   s.name.c_str());
      ok = false;
    }
  }
  if (!ok) return 1;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_faults\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    // "fastpath" is the cross-bench comparison key used by
    // tools/bench_compare.py; here it distinguishes lossy from clean runs
    // (the loss level itself is part of the name via drop_pct below).
    std::fprintf(f,
                 "    {\"name\": \"%s_loss%g\", \"fastpath\": %s, "
                 "\"drop_pct\": %g, \"guest_insns\": %llu, "
                 "\"wall_seconds\": %.6f, \"guest_mips\": %.2f, "
                 "\"sim_seconds\": %.6f, \"dropped\": %llu, "
                 "\"retrans\": %llu, \"dup_suppressed\": %llu, "
                 "\"dsm_timeouts\": %llu}%s\n",
                 s.scenario.c_str(), s.drop_pct,
                 s.faults ? "true" : "false", s.drop_pct,
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds,
                 static_cast<unsigned long long>(s.dropped),
                 static_cast<unsigned long long>(s.retrans),
                 static_cast<unsigned long long>(s.dup_suppressed),
                 static_cast<unsigned long long>(s.dsm_timeouts),
                 i + 1 < samples.size() ? "," : "");
  }
  // Virtual-time inflation per lossy scenario relative to its clean run
  // (each scenario contributes len(losses) adjacent samples, clean first).
  std::fprintf(f, "  ],\n  \"inflation\": {\n");
  const std::size_t levels = sizeof(losses) / sizeof(losses[0]);
  for (std::size_t i = 0; i < samples.size(); i += levels) {
    for (std::size_t j = 1; j < levels; ++j) {
      const Sample& clean = samples[i];
      const Sample& lossy = samples[i + j];
      const bool last = i + levels >= samples.size() && j + 1 == levels;
      std::fprintf(f, "    \"%s_loss%g\": %.3f%s\n", lossy.scenario.c_str(),
                   lossy.drop_pct, lossy.sim_seconds / clean.sim_seconds,
                   last ? "" : ",");
    }
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
