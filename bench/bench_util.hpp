// Shared harness for the paper-reproduction benchmarks.
//
// Every bench binary regenerates one table or figure of the DQEMU paper:
// it runs guest programs on simulated clusters, prints the same rows or
// series the paper reports, and cites the paper's values next to the
// measured ones. Absolute numbers differ (our substrate is a calibrated
// simulator, not the authors' testbed); the *shape* is the claim.
//
// Set DQEMU_BENCH_QUICK=1 to scale workloads down ~8x for smoke runs.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/config.hpp"
#include "core/cluster.hpp"
#include "isa/program.hpp"

namespace dqemu::bench {

/// True when the environment requests a reduced-size run.
inline bool quick_mode() {
  const char* env = std::getenv("DQEMU_BENCH_QUICK");
  return env != nullptr && env[0] != '0';
}

/// Scales a workload parameter down in quick mode.
inline std::uint32_t scaled(std::uint32_t full, std::uint32_t divisor = 8) {
  return quick_mode() ? std::max(1u, full / divisor) : full;
}

struct BenchRun {
  core::Cluster::RunResult result;
  StatsRegistry stats;        ///< snapshot of the cluster's counters
  double wall_seconds = 0.0;
  bool ok = false;
  std::string error;

  [[nodiscard]] double sim_seconds() const {
    return ps_to_seconds(result.sim_time);
  }
  /// Longest worker-thread lifetime (excludes the main thread): the
  /// steady-state denominator for bandwidth-style metrics.
  [[nodiscard]] double max_worker_seconds() const {
    DurationPs best = 0;
    for (const auto& [tid, breakdown] : result.per_thread) {
      if (tid == 1) continue;  // main
      best = std::max(best, breakdown.total());
    }
    return ps_to_seconds(best);
  }
};

/// Loads and runs `program` on a cluster built from `config`.
inline BenchRun run_cluster(const ClusterConfig& config,
                            const isa::Program& program) {
  BenchRun out;
  core::Cluster cluster(config);
  const Status load_status = cluster.load(program);
  if (!load_status.is_ok()) {
    out.error = load_status.to_string();
    return out;
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto run = cluster.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (!run.is_ok()) {
    out.error = run.status().to_string();
    return out;
  }
  out.result = run.take();
  out.stats = cluster.stats();
  out.ok = true;
  return out;
}

/// The paper's testbed configuration (section 6.1) with `slaves` slave
/// nodes; pass slaves = 0 for the QEMU single-node baseline.
inline ClusterConfig paper_config(std::uint32_t slaves) {
  ClusterConfig config;
  if (slaves == 0) {
    config.single_node_baseline = true;
    config.slave_nodes = 0;
  } else {
    config.slave_nodes = slaves;
  }
  return config;
}

/// Unwraps a workload-generator result or aborts the bench.
inline isa::Program must_program(Result<isa::Program> r, const char* what) {
  if (!r.is_ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, r.status().to_string().c_str());
    std::exit(1);
  }
  return r.take();
}

/// Aborts the bench on a failed run.
inline void must_ok(const BenchRun& run, const char* what) {
  if (!run.ok) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, run.error.c_str());
    std::exit(1);
  }
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  if (quick_mode()) std::printf("(DQEMU_BENCH_QUICK: reduced workload sizes)\n");
  std::printf("==========================================================\n");
}

}  // namespace dqemu::bench
