// ablation_locking — hierarchical distributed locking on/off.
//
// The fig6 global-mutex scenario is the worst case of the PR-0 futex
// design: every FUTEX_WAIT/WAKE of 32 threads funnels through the master,
// so lock handoff costs a full delegation round trip no matter where the
// waiter lives. Hierarchical locking (DESIGN.md section 11) leases the
// futex queue to the contending node's lock agent; this bench sweeps the
// cluster size with the optimization on and off and reports the
// virtual-time (sim_seconds) speedup per point.
//
// Guest results must be identical in both modes — the run aborts if the
// exit code, stdout, or retired-instruction count diverge (a lost wakeup
// would show up here as a deadlock or a different interleaving count).
//
// Results land in BENCH_locking.json (or argv[1]); compare runs with
// tools/bench_compare.py. DQEMU_BENCH_QUICK=1 shrinks the workloads ~8x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/micro.hpp"

namespace dqemu::bench {
namespace {

struct Scenario {
  std::string name;
  isa::Program program;
  ClusterConfig config;
};

struct Sample {
  std::string scenario;
  bool hier = false;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
  std::string guest_stdout;
  std::uint32_t exit_code = 0;
};

Sample measure(const Scenario& s, bool hier) {
  ClusterConfig config = s.config;
  config.sys.enable_hierarchical_locking = hier;
  const BenchRun run = run_cluster(config, s.program);
  must_ok(run, s.name.c_str());
  Sample out;
  out.scenario = s.name;
  out.hier = hier;
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  out.guest_stdout = run.result.guest_stdout;
  out.exit_code = run.result.exit_code;
  return out;
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_locking.json";
  print_header("ablation_locking — hierarchical locking on/off",
               "section 5 lock optimization against the fig6 mutex series");

  const std::uint32_t threads = 32;
  const auto global_prog = must_program(
      workloads::mutex_stress(threads, scaled(20'000, 4), /*global=*/true),
      "mutex_stress global");
  const auto private_prog = must_program(
      workloads::mutex_stress(threads, scaled(20'000), /*global=*/false),
      "mutex_stress private");

  std::vector<Scenario> scenarios;
  for (const std::uint32_t slaves : {1u, 2u, 4u, 6u}) {
    Scenario s;
    s.name = "global_" + std::to_string(slaves) + "slaves";
    s.program = global_prog;
    s.config = paper_config(slaves);
    s.config.dbt.quantum_insns = 500;  // match fig6_mutex: contended regime
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "private_6slaves";
    s.program = private_prog;
    s.config = paper_config(6);
    s.config.dbt.quantum_insns = 500;
    scenarios.push_back(std::move(s));
  }

  std::vector<Sample> samples;
  std::printf("%-18s %6s %12s %10s %12s\n", "scenario", "hier", "insns",
              "wall s", "sim s");
  for (const Scenario& s : scenarios) {
    for (const bool hier : {true, false}) {
      const Sample sample = measure(s, hier);
      std::printf("%-18s %6s %12llu %10.3f %12.6f\n", sample.scenario.c_str(),
                  sample.hier ? "on" : "off",
                  static_cast<unsigned long long>(sample.guest_insns),
                  sample.wall_seconds, sample.sim_seconds);
      samples.push_back(sample);
    }
    // Guest-visible behaviour must not change: same exit code and output.
    // (Retired-instruction counts legitimately differ — faster lock
    // handoff changes how long the guest's LL/SC spin loops run, exactly
    // as the DSM optimizations do.)
    const Sample& on = samples[samples.size() - 2];
    const Sample& off = samples.back();
    if (on.exit_code != off.exit_code ||
        on.guest_stdout != off.guest_stdout) {
      std::fprintf(stderr,
                   "FATAL: %s: guest results diverge between locking modes\n",
                   s.name.c_str());
      return 1;
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_locking\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fastpath\": %s, \"guest_insns\": "
                 "%llu, \"wall_seconds\": %.6f, \"guest_mips\": %.2f, "
                 "\"sim_seconds\": %.6f}%s\n",
                 s.scenario.c_str(), s.hier ? "true" : "false",
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds,
                 i + 1 < samples.size() ? "," : "");
  }
  // Virtual-time speedup of hierarchical locking per scenario (pairs are
  // adjacent: on first, then off; speedup = off / on).
  std::fprintf(f, "  ],\n  \"speedups\": {\n");
  for (std::size_t i = 0; i + 1 < samples.size(); i += 2) {
    const double ratio = samples[i + 1].sim_seconds / samples[i].sim_seconds;
    std::fprintf(f, "    \"%s\": %.3f%s\n", samples[i].scenario.c_str(),
                 ratio, i + 2 < samples.size() ? "," : "");
    std::printf("%-18s hierarchical-locking sim speedup: %.2fx\n",
                samples[i].scenario.c_str(), ratio);
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
