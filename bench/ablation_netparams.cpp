// Ablation — interconnect parameters (where does cross-node stop paying?).
//
// Sweeps RTT and bandwidth around the paper's testbed (55 us / 1 Gb/s) on
// blackscholes with 4 slave nodes, reporting speedup over the QEMU
// single-node baseline. Expected: faster networks push DQEMU further past
// QEMU; at high RTT the DSM overhead swallows the extra cores — the
// crossover the paper's Ethernet numbers sit near.
#include "bench_util.hpp"
#include "workloads/parsec.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main() {
  print_header("Ablation: network RTT / bandwidth sweep",
               "sensitivity of the paper's results to the testbed network");

  workloads::BlackscholesParams params;
  params.threads = 32;
  params.options_n = 65536;
  params.reps = scaled(30, 6);
  const auto program =
      must_program(workloads::blackscholes_like(params), "blackscholes");

  BenchRun qemu = run_cluster(paper_config(0), program);
  must_ok(qemu, "qemu baseline");
  const double qemu_s = qemu.sim_seconds();
  std::printf("QEMU single-node baseline: %.4f s\n\n", qemu_s);

  std::printf("%-12s %-12s %14s %16s\n", "rtt_us", "gbps", "dqemu4_sim_s",
              "speedup_vs_qemu");
  using time_literals::kUs;
  for (const std::uint64_t rtt_us : {10ull, 55ull, 200ull, 1000ull}) {
    for (const double gbps : {1.0, 10.0}) {
      ClusterConfig config = paper_config(4);
      config.net.one_way_latency = rtt_us * kUs / 2;
      config.net.bandwidth_gbps = gbps;
      // Faster fabrics come with leaner software stacks (RDMA-class).
      if (gbps > 1.0) {
        config.net.endpoint_overhead /= 4;
        config.dsm.manager_service /= 4;
      }
      config.dsm.enable_forwarding = true;
      BenchRun run = run_cluster(config, program);
      must_ok(run, "netparams run");
      std::printf("%-12llu %-12.1f %14.4f %15.2fx\n",
                  static_cast<unsigned long long>(rtt_us), gbps,
                  run.sim_seconds(), qemu_s / run.sim_seconds());
    }
  }
  return 0;
}
