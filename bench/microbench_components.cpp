// google-benchmark microbenchmarks of the simulator's own hot paths:
// instruction decode, the DBT execute loop, translation-cache lookup, the
// event queue, the LL/SC table and a DSM page round-trip. These measure
// host performance of the framework (how fast experiments run), not guest
// performance.
#include <benchmark/benchmark.h>

#include "common/config.hpp"
#include "dbt/exec.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "isa/assembler.hpp"
#include "core/cluster.hpp"
#include "mem/address_space.hpp"
#include "mem/shadow_map.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"
#include "workloads/micro.hpp"

namespace {

using namespace dqemu;

void BM_Decode(benchmark::State& state) {
  const std::uint32_t word =
      isa::encode({isa::Opcode::kAddi, 1, 2, 0, 1234});
  for (auto _ : state) {
    benchmark::DoNotOptimize(isa::decode(word));
  }
}
BENCHMARK(BM_Decode);

void BM_EncodeDecodeRoundtrip(benchmark::State& state) {
  isa::Insn insn{isa::Opcode::kBne, 0, 3, 4, -42};
  for (auto _ : state) {
    const std::uint32_t word = isa::encode(insn);
    benchmark::DoNotOptimize(isa::decode(word));
  }
}
BENCHMARK(BM_EncodeDecodeRoundtrip);

void BM_EventQueue(benchmark::State& state) {
  sim::EventQueue queue;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    queue.schedule_in(1000, [&counter] { ++counter; });
    queue.run_one();
  }
  benchmark::DoNotOptimize(counter);
}
BENCHMARK(BM_EventQueue);

void BM_LlscTable(benchmark::State& state) {
  dbt::LlscTable table;
  for (auto _ : state) {
    table.on_ll(0x1000, 1);
    benchmark::DoNotOptimize(table.on_sc(0x1000, 1));
  }
}
BENCHMARK(BM_LlscTable);

void BM_ShadowTranslateUnsplit(benchmark::State& state) {
  mem::ShadowMap shadow(4096, 4);
  std::uint32_t shadows[4] = {100, 101, 102, 103};
  shadow.add_split(5, shadows);
  GuestAddr addr = 0x40000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(shadow.translate(addr));
    addr += 8;
  }
}
BENCHMARK(BM_ShadowTranslateUnsplit);

/// Guest instructions-per-second of the interpreter on a register-only
/// arithmetic loop (the engine's steady state).
void BM_ExecuteLoop(benchmark::State& state) {
  isa::Assembler a;
  auto loop = a.make_label();
  a.li(isa::kT0, 1 << 20);
  a.bind(loop);
  a.addi(isa::kT1, isa::kT1, 1);
  a.xor_(isa::kT2, isa::kT1, isa::kT0);
  a.addi(isa::kT0, isa::kT0, -1);
  a.bne(isa::kT0, isa::kZero, loop);
  a.syscall(1);
  auto program = a.finalize().take();

  mem::AddressSpace space(32u << 20, 4096);
  space.load_program(program);
  space.set_all_access(mem::PageAccess::kReadWrite);
  DbtConfig config;
  StatsRegistry stats;
  dbt::LlscTable llsc;
  dbt::TranslationCache cache(space, config, /*check_protection=*/false,
                              &stats);
  dbt::ExecEngine engine(space, nullptr, llsc, cache, config,
                         /*check_protection=*/false, &stats);

  std::uint64_t insns = 0;
  for (auto _ : state) {
    dbt::CpuContext ctx;
    ctx.pc = program.entry;
    ctx.tid = 1;
    const auto r = engine.run(ctx, 1'000'000);
    insns += r.insns;
  }
  state.counters["guest_insn_per_s"] = benchmark::Counter(
      static_cast<double>(insns), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteLoop)->Unit(benchmark::kMillisecond);

/// Host-side cost of the tracing subsystem on a full cluster run: the same
/// pi workload with no tracer, the default categories, and the full
/// firehose (queue dispatch included). The virtual-time result is asserted
/// identical — tracing observes, never perturbs.
void run_pi_cluster(benchmark::State& state, trace::Tracer* tracer) {
  const auto program = workloads::pi_taylor(4, 2, 400).take();
  TimePs sim_time = 0;
  std::uint64_t records = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.slave_nodes = 2;
    config.guest_mem_bytes = 64u << 20;
    if (tracer != nullptr) tracer->clear();
    core::Cluster cluster(config, tracer);
    if (!cluster.load(program).is_ok()) state.SkipWithError("load failed");
    auto run = cluster.run();
    if (!run.is_ok()) state.SkipWithError("run failed");
    const TimePs t = run.value().sim_time;
    if (sim_time == 0) sim_time = t;
    if (t != sim_time) state.SkipWithError("tracing changed virtual time");
    if (tracer != nullptr) records += tracer->size() + tracer->dropped();
  }
  if (tracer != nullptr) {
    state.counters["records_per_run"] = benchmark::Counter(
        static_cast<double>(records) /
        static_cast<double>(state.iterations()));
  }
}

void BM_ClusterPiTracingOff(benchmark::State& state) {
  run_pi_cluster(state, nullptr);
}
BENCHMARK(BM_ClusterPiTracingOff)->Unit(benchmark::kMillisecond);

void BM_ClusterPiTracingDefault(benchmark::State& state) {
  trace::Tracer tracer;
  run_pi_cluster(state, &tracer);
}
BENCHMARK(BM_ClusterPiTracingDefault)->Unit(benchmark::kMillisecond);

void BM_ClusterPiTracingAll(benchmark::State& state) {
  trace::TraceConfig config;
  config.categories = trace::kAllCategories;
  trace::Tracer tracer(config);
  run_pi_cluster(state, &tracer);
}
BENCHMARK(BM_ClusterPiTracingAll)->Unit(benchmark::kMillisecond);

void BM_TracerRecord(benchmark::State& state) {
  trace::Tracer tracer;
  trace::Record r;
  r.name = "bench.event";
  r.kind = trace::Kind::kInstant;
  r.cat = trace::Cat::kSim;
  for (auto _ : state) {
    r.time += 100;
    tracer.record(r);
  }
}
BENCHMARK(BM_TracerRecord);

void BM_TranslationCacheLookup(benchmark::State& state) {
  isa::Assembler a;
  for (int i = 0; i < 64; ++i) a.nop();
  a.syscall(1);
  auto program = a.finalize().take();
  mem::AddressSpace space(32u << 20, 4096);
  space.load_program(program);
  space.set_all_access(mem::PageAccess::kReadWrite);
  DbtConfig config;
  dbt::TranslationCache cache(space, config, false, nullptr);
  (void)cache.translate(program.entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(program.entry));
  }
}
BENCHMARK(BM_TranslationCacheLookup);

}  // namespace

BENCHMARK_MAIN();
