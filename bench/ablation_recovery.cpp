// ablation_recovery — whole-node crash and pause-rejoin under serving load.
//
// The node-fault plane (DESIGN.md §18) extends fault injection from lossy
// links to dying nodes: a seeded crash tears a slave out of a serving
// cluster mid-run, its leases and directory homes are revoked, its guest
// threads re-home over the migration path, and the load generator re-queues
// the work the node took to its grave. This bench runs the serving workload
// through a baseline (no fault), a crash, a pause-and-rejoin, and a crash
// with the directory sharded onto the dying node, and reports what the
// recovery cost in virtual time and what the machinery did.
//
// Acceptance gates: every scenario must retire every request with a
// verified checksum (recovery is complete, not merely survived); the crash
// scenarios must actually kill a node and re-home its threads; each
// scenario run twice must produce identical virtual time (determinism
// under faults); and the virtual-time inflation over the baseline must
// stay under 2x — losing 1-of-4 nodes cannot cost more than doubling.
//
// Results land in BENCH_recovery.json (or argv[1]); DQEMU_BENCH_QUICK=1
// shrinks the request count ~8x.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dsm/wire.hpp"
#include "net/fault/node_faults.hpp"
#include "serve/serve.hpp"
#include "workloads/serve.hpp"

namespace dqemu::bench {
namespace {

using time_literals::kUs;

constexpr std::uint32_t kWorkers = 16;
constexpr std::uint32_t kSlaves = 4;

struct Sample {
  std::string name;
  std::uint32_t requests = 0;
  std::uint64_t retired = 0;
  std::uint64_t checksum_errors = 0;
  std::uint64_t nodes_dead = 0;
  std::uint64_t pauses = 0;
  std::uint64_t threads_rehomed = 0;
  std::uint64_t crash_flushes = 0;
  std::uint64_t lease_returns = 0;
  std::uint64_t futex_handoffs = 0;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  double p99_ms = 0.0;
  std::uint32_t exit_code = 0;
};

ClusterConfig serve_config() {
  ClusterConfig config = paper_config(kSlaves);
  config.serve.enabled = true;
  config.serve.requests = scaled(2000);
  config.serve.rate = 8000.0;
  config.serve.workers = kWorkers;
  return config;
}

Sample measure(const std::string& name, const ClusterConfig& config,
               const isa::Program& program) {
  const BenchRun run = run_cluster(config, program);
  must_ok(run, name.c_str());
  Sample out;
  out.name = name;
  out.requests = config.serve.requests;
  out.retired = run.stats.get("serve.retired");
  out.checksum_errors = run.stats.get("serve.checksum_errors");
  out.nodes_dead = run.stats.get("core.nodes_dead");
  out.pauses = run.stats.get("core.node_pauses");
  out.threads_rehomed = run.stats.get("core.threads_rehomed_sent");
  out.crash_flushes = run.stats.get("core.crash_flushes_sent");
  out.lease_returns = run.stats.get("sys.crash_lease_returns");
  out.futex_handoffs = run.stats.get("sys.futex_handoffs_adopted");
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.sim_seconds = run.sim_seconds();
  out.exit_code = run.result.exit_code;
  if (const LogHistogram* lat = run.stats.find_histogram("serve.latency_ns");
      lat != nullptr && !lat->empty()) {
    out.p99_ms = static_cast<double>(lat->quantile(0.99)) / 1e6;
  }
  return out;
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  print_header("ablation_recovery — node crash / pause under serving load",
               "whole-node fault plane (DESIGN.md §18)");
  if (!serve::compiled_in()) {
    std::fprintf(stderr, "serving plane compiled out; nothing to measure\n");
    return 0;
  }
  {
    FaultConfig probe;
    probe.enabled = true;
    probe.node_faults.emplace_back();
    if (!net::node_faults_on(probe)) {
      std::fprintf(stderr,
                   "node-fault plane compiled out; nothing to measure\n");
      return 0;
    }
  }

  workloads::ServePoolParams pool;
  pool.workers = kWorkers;
  const auto program =
      must_program(workloads::serve_pool(pool), "serve_pool");

  struct Scenario {
    std::string name;
    ClusterConfig config;
  };
  std::vector<Scenario> scenarios;
  {
    Scenario s;
    s.name = "baseline_4slaves";
    s.config = serve_config();
    scenarios.push_back(std::move(s));
  }
  {
    // One of four slaves dies a quarter-way into the offered load.
    Scenario s;
    s.name = "crash_1of4";
    s.config = serve_config();
    s.config.faults.enabled = true;
    FaultConfig::NodeFault nf;
    nf.kind = FaultConfig::NodeFault::Kind::kCrash;
    nf.node = 2;
    nf.at = 900 * kUs;
    s.config.faults.node_faults.push_back(nf);
    scenarios.push_back(std::move(s));
  }
  {
    // Same instant, but the node comes back: nothing is revoked, the
    // buffered work drains on rejoin.
    Scenario s;
    s.name = "pause_1of4_2ms";
    s.config = serve_config();
    s.config.faults.enabled = true;
    FaultConfig::NodeFault nf;
    nf.kind = FaultConfig::NodeFault::Kind::kPause;
    nf.node = 2;
    nf.at = 900 * kUs;
    nf.pause_for = 2000 * kUs;
    s.config.faults.node_faults.push_back(nf);
    scenarios.push_back(std::move(s));
  }
  if (dsm::home_sharding_compiled_in()) {
    // The hardest case: the dying node hosts a directory shard and a futex
    // home, so recovery includes the shard handoff and lease revocation.
    Scenario s;
    s.name = "crash_1of4_sharded";
    s.config = serve_config();
    s.config.dsm.enable_home_sharding = true;
    s.config.dsm.home_placement = HomePlacement::kFirstTouch;
    s.config.sys.enable_hierarchical_locking = true;
    s.config.faults.enabled = true;
    FaultConfig::NodeFault nf;
    nf.kind = FaultConfig::NodeFault::Kind::kCrash;
    nf.node = 2;
    nf.at = 900 * kUs;
    s.config.faults.node_faults.push_back(nf);
    scenarios.push_back(std::move(s));
  }

  std::vector<Sample> samples;
  double baseline_sim = 0.0;
  bool ok = true;
  std::printf("%-20s %9s %9s %6s %8s %8s %10s %9s\n", "scenario", "retired",
              "requests", "dead", "rehomed", "flushes", "sim s", "inflate");
  for (const Scenario& s : scenarios) {
    const Sample sample = measure(s.name, s.config, program);
    // Determinism gate: the same seeded fault must replay bit-identically.
    const Sample again = measure(s.name, s.config, program);
    if (again.sim_seconds != sample.sim_seconds ||
        again.guest_insns != sample.guest_insns ||
        again.p99_ms != sample.p99_ms) {
      std::fprintf(stderr, "FATAL: %s: two same-seed runs diverge\n",
                   s.name.c_str());
      ok = false;
    }
    if (baseline_sim == 0.0) baseline_sim = sample.sim_seconds;
    const double inflation = sample.sim_seconds / baseline_sim;
    std::printf("%-20s %9llu %9u %6llu %8llu %8llu %10.6f %8.2fx\n",
                sample.name.c_str(),
                static_cast<unsigned long long>(sample.retired),
                sample.requests,
                static_cast<unsigned long long>(sample.nodes_dead),
                static_cast<unsigned long long>(sample.threads_rehomed),
                static_cast<unsigned long long>(sample.crash_flushes),
                sample.sim_seconds, inflation);
    // Completeness gate: recovery means every request retires verified.
    if (sample.exit_code != 0 || sample.retired != sample.requests ||
        sample.checksum_errors != 0) {
      std::fprintf(stderr,
                   "FATAL: %s: retired %llu of %u (checksum_errors=%llu)\n",
                   s.name.c_str(),
                   static_cast<unsigned long long>(sample.retired),
                   sample.requests,
                   static_cast<unsigned long long>(sample.checksum_errors));
      ok = false;
    }
    // The fault must actually bite: a crash kills a node and re-homes its
    // threads; a pause pauses.
    if (s.name.rfind("crash", 0) == 0 &&
        (sample.nodes_dead != 1 || sample.threads_rehomed == 0)) {
      std::fprintf(stderr, "FATAL: %s: the crash never happened\n",
                   s.name.c_str());
      ok = false;
    }
    if (s.name.rfind("pause", 0) == 0 &&
        (sample.pauses != 1 || sample.nodes_dead != 0)) {
      std::fprintf(stderr, "FATAL: %s: the pause never happened\n",
                   s.name.c_str());
      ok = false;
    }
    // Cost gate: losing 1-of-4 nodes must not double the run.
    if (inflation >= 2.0) {
      std::fprintf(stderr, "FATAL: %s: virtual time inflated %.2fx (>= 2x)\n",
                   s.name.c_str(), inflation);
      ok = false;
    }
    samples.push_back(sample);
  }
  if (!ok) return 1;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_recovery\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    // "fastpath" is the cross-bench comparison key used by
    // tools/bench_compare.py; here it distinguishes faulted runs from the
    // baseline.
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"fastpath\": %s, \"requests\": %u, "
        "\"retired\": %llu, \"nodes_dead\": %llu, \"pauses\": %llu, "
        "\"threads_rehomed\": %llu, \"crash_flushes\": %llu, "
        "\"lease_returns\": %llu, \"futex_handoffs\": %llu, "
        "\"guest_insns\": %llu, \"wall_seconds\": %.6f, "
        "\"guest_mips\": %.2f, \"sim_seconds\": %.6f, \"p99_ms\": %.6f, "
        "\"inflation\": %.3f}%s\n",
        s.name.c_str(), i == 0 ? "false" : "true", s.requests,
        static_cast<unsigned long long>(s.retired),
        static_cast<unsigned long long>(s.nodes_dead),
        static_cast<unsigned long long>(s.pauses),
        static_cast<unsigned long long>(s.threads_rehomed),
        static_cast<unsigned long long>(s.crash_flushes),
        static_cast<unsigned long long>(s.lease_returns),
        static_cast<unsigned long long>(s.futex_handoffs),
        static_cast<unsigned long long>(s.guest_insns), s.wall_seconds,
        s.wall_seconds > 0.0
            ? static_cast<double>(s.guest_insns) / s.wall_seconds / 1e6
            : 0.0,
        s.sim_seconds, s.p99_ms, s.sim_seconds / baseline_sim,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
