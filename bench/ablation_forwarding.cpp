// Ablation — data forwarding parameters (design choices of section 5.2).
//
// Sweeps the stream trigger and the readahead window depth on the Table-1
// sequential walker, plus the effect of disabling the back-pressure guard
// surrogate (a very large window). Expected: deeper windows approach the
// wire bandwidth until the walker outruns the push cadence; a too-eager
// trigger wastes pushes on short streams.
#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main() {
  print_header("Ablation: data forwarding trigger/depth",
               "design choice behind paper section 5.2 defaults");

  const std::uint32_t bytes = scaled(8u << 20, 4);
  const auto program =
      must_program(workloads::memwalk(bytes, 1, true), "memwalk");
  const double mb = static_cast<double>(bytes) / (1024.0 * 1024.0);

  std::printf("%-10s %-8s %12s %12s\n", "trigger", "depth", "MB/s",
              "forwards");
  for (const std::uint32_t trigger : {2u, 4u, 8u}) {
    for (const std::uint32_t depth : {4u, 8u, 16u, 32u, 64u}) {
      ClusterConfig config = paper_config(1);
      config.dsm.enable_forwarding = true;
      config.dsm.forward_trigger = trigger;
      config.dsm.forward_depth = depth;
      BenchRun run = run_cluster(config, program);
      must_ok(run, "forwarding ablation");
      std::printf("%-10u %-8u %12.2f %12llu\n", trigger, depth,
                  mb / run.max_worker_seconds(),
                  static_cast<unsigned long long>(run.stats.get("dir.forwards")));
    }
  }

  // Reference: forwarding off.
  BenchRun off = run_cluster(paper_config(1), program);
  must_ok(off, "forwarding off");
  std::printf("%-10s %-8s %12.2f %12u\n", "off", "-",
              mb / off.max_worker_seconds(), 0);
  return 0;
}
