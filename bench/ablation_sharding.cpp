// ablation_sharding — single-master vs home-sharded protocol planes.
//
// Home-node sharding (DESIGN.md §17) distributes the coherence directory
// and the futex/lease tables across per-page home nodes instead of
// funneling every protocol action through node 0. This bench measures the
// two claims that motivate it:
//
//   1. Tail latency under load: the request-serving plane (DESIGN.md §14)
//      at a FIXED offered load, single-master vs sharded, across cluster
//      sizes. Gate: the sharded p99 must stay within kServeP99Slack of the
//      single-master p99 — sharding must never wreck the serving tail.
//   2. Directory-load evenness: a page-disjoint memwalk under hash
//      placement. Gate: every slave hosts a home shard that saw traffic,
//      and the per-home message counts stay within kSpreadGate (max/min)
//      — including at 64 homes. A first-touch variant checks the master's
//      relay path carries real traffic and converges (relays stop growing
//      once every hot page's home is learned).
//
// Guest results (exit code + stdout) must be identical between the
// single-master and sharded runs of the same workload — sharding moves
// protocol state, never semantics.
//
// Results land in BENCH_sharding.json (or argv[1]); two runs of the same
// build must produce identical virtual-time numbers and latency quantiles
// (tools/bench_compare.py gates this in CI). DQEMU_BENCH_QUICK=1 shrinks
// the workloads ~8x.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dsm/wire.hpp"
#include "serve/serve.hpp"
#include "workloads/micro.hpp"
#include "workloads/serve.hpp"

namespace dqemu::bench {
namespace {

constexpr std::uint32_t kWorkers = 16;      ///< serving pool size
constexpr double kServeRate = 8000.0;       ///< fixed offered load, req/s
constexpr double kServeP99Slack = 2.0;      ///< sharded p99 <= slack * master
constexpr double kSpreadGate = 2.0;         ///< hash home_msgs max/min bound

struct Sample {
  std::string name;
  bool sharded = false;
  std::string placement;  ///< "-", "hash" or "first-touch"
  std::uint32_t slaves = 0;
  std::uint64_t guest_insns = 0;
  double wall_seconds = 0.0;
  double guest_mips = 0.0;
  double sim_seconds = 0.0;
  std::uint32_t exit_code = 0;
  std::string guest_stdout;
  // Home-plane load (zero when sharding is off).
  std::uint32_t homes_active = 0;
  std::uint64_t home_msgs_min = 0;
  std::uint64_t home_msgs_max = 0;
  std::uint64_t home_msgs_total = 0;
  double home_spread = 0.0;
  std::uint64_t home_relays = 0;
  // Serving plane (zero for the batch workloads).
  bool serving = false;
  std::uint64_t retired = 0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double max_ms = 0.0;
};

Sample measure(const std::string& name, const ClusterConfig& config,
               const isa::Program& program) {
  const BenchRun run = run_cluster(config, program);
  must_ok(run, name.c_str());
  Sample out;
  out.name = name;
  out.sharded = config.dsm.enable_home_sharding;
  out.placement = !config.dsm.enable_home_sharding ? "-"
                  : config.dsm.home_placement == HomePlacement::kHash
                      ? "hash"
                      : "first-touch";
  out.slaves = config.slave_nodes;
  out.guest_insns = run.result.guest_insns;
  out.wall_seconds = run.wall_seconds;
  out.guest_mips =
      static_cast<double>(run.result.guest_insns) / run.wall_seconds / 1e6;
  out.sim_seconds = run.sim_seconds();
  out.exit_code = run.result.exit_code;
  out.guest_stdout = run.result.guest_stdout;
  for (std::uint32_t n = 1; n <= config.slave_nodes; ++n) {
    const std::uint64_t msgs =
        run.stats.get("dsm.home_msgs." + std::to_string(n));
    out.home_msgs_total += msgs;
    if (msgs == 0) continue;
    ++out.homes_active;
    if (out.home_msgs_min == 0 || msgs < out.home_msgs_min)
      out.home_msgs_min = msgs;
    out.home_msgs_max = std::max(out.home_msgs_max, msgs);
  }
  out.home_spread = out.home_msgs_min > 0
                        ? static_cast<double>(out.home_msgs_max) /
                              static_cast<double>(out.home_msgs_min)
                        : 0.0;
  out.home_relays = run.stats.get("dsm.home_relays");
  if (config.serve.enabled) {
    out.serving = true;
    out.retired = run.stats.get("serve.retired");
    out.throughput_rps =
        out.sim_seconds > 0
            ? static_cast<double>(out.retired) / out.sim_seconds
            : 0.0;
    if (const LogHistogram* lat = run.stats.find_histogram("serve.latency_ns");
        lat != nullptr && !lat->empty()) {
      out.p50_ms = static_cast<double>(lat->quantile(0.5)) / 1e6;
      out.p99_ms = static_cast<double>(lat->quantile(0.99)) / 1e6;
      out.p999_ms = static_cast<double>(lat->quantile(0.999)) / 1e6;
      out.max_ms = static_cast<double>(lat->max()) / 1e6;
    }
    const bool ok = out.exit_code == 0 &&
                    out.retired == config.serve.requests &&
                    run.stats.get("serve.checksum_errors") == 0 &&
                    out.p50_ms <= out.p99_ms && out.p99_ms <= out.p999_ms &&
                    out.p999_ms <= out.max_ms;
    if (!ok) {
      std::fprintf(stderr,
                   "FATAL: %s: retired=%llu/%u exit=%u — serving contract"
                   " violated\n",
                   name.c_str(),
                   static_cast<unsigned long long>(out.retired),
                   config.serve.requests, out.exit_code);
      std::exit(1);
    }
  } else if (out.exit_code != 0) {
    std::fprintf(stderr, "FATAL: %s: guest exited %u\n", name.c_str(),
                 out.exit_code);
    std::exit(1);
  }
  return out;
}

ClusterConfig sharded_config(std::uint32_t slaves, HomePlacement placement) {
  ClusterConfig config = paper_config(slaves);
  config.dsm.enable_home_sharding = true;
  config.dsm.home_placement = placement;
  return config;
}

void gate_same_guest(const Sample& master, const Sample& sharded) {
  if (master.exit_code != sharded.exit_code ||
      master.guest_stdout != sharded.guest_stdout) {
    std::fprintf(stderr,
                 "FATAL: %s vs %s: guest results differ — sharding changed"
                 " semantics, not just protocol placement\n",
                 master.name.c_str(), sharded.name.c_str());
    std::exit(1);
  }
}

}  // namespace
}  // namespace dqemu::bench

int main(int argc, char** argv) {
  using namespace dqemu;
  using namespace dqemu::bench;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_sharding.json";
  print_header("ablation_sharding — single-master vs home-sharded planes",
               "home-node sharding (DESIGN.md §17)");
  if (!dsm::home_sharding_compiled_in()) {
    std::printf("home sharding compiled out (DQEMU_ENABLE_HOME_SHARDING=OFF);"
                " nothing to measure\n");
    return 0;
  }

  std::vector<Sample> samples;
  std::printf("%-24s %7s %11s %9s %7s %7s %7s %9s\n", "scenario", "slaves",
              "placement", "sim s", "homes", "spread", "relays", "p99 ms");
  auto report = [&](const Sample& s) {
    std::printf("%-24s %7u %11s %9.4f %7u %7.2f %7llu %9.3f\n",
                s.name.c_str(), s.slaves, s.placement.c_str(), s.sim_seconds,
                s.homes_active, s.home_spread,
                static_cast<unsigned long long>(s.home_relays), s.p99_ms);
    samples.push_back(s);
    return samples.size() - 1;
  };

  // ---- 1. Serving tail at a fixed offered load ---------------------------
  // Same pool, same arrivals, same load; the only difference is where the
  // directory and futex tables live.
  if (serve::compiled_in()) {
    const std::uint32_t requests = scaled(6000);
    workloads::ServePoolParams pool;
    pool.workers = kWorkers;
    const auto program =
        must_program(workloads::serve_pool(pool), "serve_pool");
    for (const std::uint32_t slaves : {2u, 4u, 8u}) {
      char name[64];
      ClusterConfig master = paper_config(slaves);
      master.serve.enabled = true;
      master.serve.requests = requests;
      master.serve.rate = kServeRate;
      master.serve.workers = kWorkers;
      std::snprintf(name, sizeof name, "serve_s%u_master", slaves);
      const std::size_t at_master = report(measure(name, master, program));

      ClusterConfig sharded = sharded_config(slaves, HomePlacement::kHash);
      sharded.serve = master.serve;
      std::snprintf(name, sizeof name, "serve_s%u_sharded", slaves);
      const std::size_t at_sharded = report(measure(name, sharded, program));

      const Sample& m = samples[at_master];
      const Sample& s = samples[at_sharded];
      if (s.p99_ms > m.p99_ms * kServeP99Slack) {
        std::fprintf(stderr,
                     "FATAL: slaves=%u: sharded serving p99 %.3f ms blows"
                     " past %.1fx the single-master p99 %.3f ms\n",
                     slaves, s.p99_ms, kServeP99Slack, m.p99_ms);
        return 1;
      }
    }
  } else {
    std::printf("(serving plane compiled out; tail-latency sweep skipped)\n");
  }

  // ---- 2. Directory-load evenness under hash placement -------------------
  // Page-disjoint walk: every page is a remote fetch, so home_msgs counts
  // directly reflect how the placement policy spread the directory work.
  // Not shrunk in quick mode: the 2x evenness gate is a concentration
  // bound, and 64 homes need ~64 pages each before the hash's binomial
  // spread tightens under it. The walk costs about a second either way.
  const std::uint32_t walk_bytes = 16u * 1024 * 1024;
  const auto walk = must_program(
      workloads::memwalk(walk_bytes, 1, /*touch_first=*/false, 8), "memwalk");
  std::size_t at_master_walk = 0;
  for (const std::uint32_t slaves : {4u, 16u, 64u}) {
    char name[64];
    std::snprintf(name, sizeof name, "memwalk_s%u_master", slaves);
    const std::size_t at_master =
        report(measure(name, paper_config(slaves), walk));
    if (slaves == 4) at_master_walk = at_master;

    std::snprintf(name, sizeof name, "memwalk_s%u_hash", slaves);
    const std::size_t at_hash = report(
        measure(name, sharded_config(slaves, HomePlacement::kHash), walk));
    gate_same_guest(samples[at_master], samples[at_hash]);

    const Sample& h = samples[at_hash];
    if (h.homes_active != slaves) {
      std::fprintf(stderr,
                   "FATAL: %s: only %u of %u homes saw directory traffic\n",
                   h.name.c_str(), h.homes_active, slaves);
      return 1;
    }
    if (h.home_spread > kSpreadGate) {
      std::fprintf(stderr,
                   "FATAL: %s: per-home message spread %.2f (min=%llu"
                   " max=%llu) exceeds the %.1fx evenness gate\n",
                   h.name.c_str(), h.home_spread,
                   static_cast<unsigned long long>(h.home_msgs_min),
                   static_cast<unsigned long long>(h.home_msgs_max),
                   kSpreadGate);
      return 1;
    }
  }

  // First-touch: the master assigns homes on demand and relays the requests
  // that raced ahead of the requester's placement view.
  {
    const std::size_t at_ft = report(measure(
        "memwalk_s4_firsttouch",
        sharded_config(4, HomePlacement::kFirstTouch), walk));
    gate_same_guest(samples[at_master_walk], samples[at_ft]);
    const Sample& ft = samples[at_ft];
    if (ft.home_relays == 0 || ft.homes_active == 0) {
      std::fprintf(stderr,
                   "FATAL: first-touch run exercised no relay path"
                   " (relays=%llu homes=%u)\n",
                   static_cast<unsigned long long>(ft.home_relays),
                   ft.homes_active);
      return 1;
    }
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_sharding\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick_mode() ? "true" : "false");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& s = samples[i];
    // "fastpath" is bench_compare.py's cross-bench on/off key; here it
    // carries the sharding axis.
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"fastpath\": %s, "
                 "\"placement\": \"%s\", \"slaves\": %u, "
                 "\"guest_insns\": %llu, \"wall_seconds\": %.6f, "
                 "\"guest_mips\": %.2f, \"sim_seconds\": %.6f, "
                 "\"homes_active\": %u, \"home_msgs_min\": %llu, "
                 "\"home_msgs_max\": %llu, \"home_msgs_total\": %llu, "
                 "\"home_spread\": %.4f, \"home_relays\": %llu",
                 s.name.c_str(), s.sharded ? "true" : "false",
                 s.placement.c_str(), s.slaves,
                 static_cast<unsigned long long>(s.guest_insns),
                 s.wall_seconds, s.guest_mips, s.sim_seconds, s.homes_active,
                 static_cast<unsigned long long>(s.home_msgs_min),
                 static_cast<unsigned long long>(s.home_msgs_max),
                 static_cast<unsigned long long>(s.home_msgs_total),
                 s.home_spread,
                 static_cast<unsigned long long>(s.home_relays));
    if (s.serving) {
      std::fprintf(f,
                   ", \"retired\": %llu, \"throughput_rps\": %.3f, "
                   "\"p50_ms\": %.6f, \"p99_ms\": %.6f, \"p999_ms\": %.6f, "
                   "\"max_ms\": %.6f",
                   static_cast<unsigned long long>(s.retired),
                   s.throughput_rps, s.p50_ms, s.p99_ms, s.p999_ms,
                   s.max_ms);
    }
    std::fprintf(f, "}%s\n", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
