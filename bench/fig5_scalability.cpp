// Figure 5 — performance scalability.
//
// 120 guest threads each compute pi with a Taylor (Leibniz) series,
// embarrassingly parallel; the cluster sweeps 1..6 slave nodes and the
// speedup is normalized to the 1-slave-node run. QEMU 4.2.0 (our
// single-node baseline mode) is the dashed reference line.
//
// Paper series (Fig. 5): DQEMU 1.00 1.97 2.97 3.98 4.93 5.94; QEMU 1.04.
#include "bench_util.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;
using namespace dqemu::bench;

int main() {
  print_header("Figure 5: scalability, 120 pi threads, 1-6 slave nodes",
               "paper Fig.5: DQEMU 1.00/1.97/2.97/3.98/4.93/5.94, QEMU 1.04");

  const std::uint32_t threads = 120;
  const std::uint32_t reps = scaled(1800);
  const std::uint32_t terms = 1000;
  const auto program =
      must_program(workloads::pi_taylor(threads, reps, terms), "pi_taylor");

  static const double kPaperDqemu[6] = {1.00, 1.97, 2.97, 3.98, 4.93, 5.94};

  std::printf("%-12s %12s %10s %12s %10s\n", "config", "sim_time_s", "speedup",
              "paper", "wall_s");

  double base = 0.0;
  for (std::uint32_t slaves = 1; slaves <= 6; ++slaves) {
    BenchRun run = run_cluster(paper_config(slaves), program);
    must_ok(run, "fig5 run");
    if (slaves == 1) base = run.sim_seconds();
    std::printf("DQEMU-%u      %12.4f %10.2f %12.2f %10.2f\n", slaves,
                run.sim_seconds(), base / run.sim_seconds(),
                kPaperDqemu[slaves - 1], run.wall_seconds);
  }
  BenchRun qemu = run_cluster(paper_config(0), program);
  must_ok(qemu, "fig5 qemu baseline");
  std::printf("QEMU-4.2.0   %12.4f %10.2f %12.2f %10.2f\n",
              qemu.sim_seconds(), base / qemu.sim_seconds(), 1.04,
              qemu.wall_seconds);
  return 0;
}
