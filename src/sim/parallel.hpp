// Host thread pool for the conservative parallel scheduler (DESIGN.md §16).
//
// The pool executes one task per per-node event queue inside a lookahead
// window; the caller (the thread driving Cluster::run) participates, so a
// pool built for N host threads spawns N-1 workers. Windows are a few
// microseconds of host work each and there are thousands of them per
// simulated second, so the barrier is the product: workers spin on an
// atomic batch generation (bounded, then fall back to a condition-variable
// sleep so an idle pool costs nothing), tasks are claimed with a single
// fetch_add, and completion is a release increment the caller acquires —
// the same happens-before edges a mutex would give, at ~100ns per window
// instead of ~10us of futex round-trips.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Compile-time gate (CMake option DQEMU_ENABLE_PARALLEL_SIM). With the
// feature off, Cluster::run rejects host_threads > 1 and always drives the
// single global queue — bit-identical to builds predating this subsystem.
#ifndef DQEMU_PARALLEL_SIM_ENABLED
#define DQEMU_PARALLEL_SIM_ENABLED 1
#endif

namespace dqemu::sim {

class ThreadPool {
 public:
  /// `threads` counts the caller: ThreadPool(1) spawns nothing and
  /// run_tasks degenerates to a serial loop on the calling thread.
  explicit ThreadPool(std::uint32_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(0) .. fn(n-1), each exactly once, distributed over the pool
  /// plus the calling thread. Returns once all n calls completed; the
  /// return establishes happens-before from every task to the caller.
  void run_tasks(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::uint32_t threads() const {
    return static_cast<std::uint32_t>(workers_.size()) + 1;
  }

 private:
  /// ticket_ layout: one word carries the batch id (high bits) and the
  /// next unclaimed task index (low bits), so publishing a batch and
  /// resetting the claim counter is a single release store, and a claim
  /// (CAS of index+1 with the batch id validated) can never cross batches.
  static constexpr std::uint64_t kIndexBits = 24;
  static constexpr std::uint64_t kIndexMask = (1ull << kIndexBits) - 1;

  void worker_loop();
  /// Claims and runs tasks of batch `gen` until none remain or a newer
  /// batch supersedes it.
  void work(std::uint64_t gen);

  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<std::size_t> total_{0};  ///< tasks in the current batch
  std::atomic<std::size_t> done_{0};   ///< tasks completed
  std::atomic<const std::function<void(std::size_t)>*> fn_{nullptr};
  std::atomic<bool> stop_{false};
  /// Spin iterations before parking/yielding; 0 on hosts with fewer cores
  /// than pool threads (set once in the constructor).
  int spin_budget_ = 0;

  // Sleep fallback: a worker that spun through its budget without seeing a
  // new batch parks on the condition variable; run_tasks only pays the
  // notify when `sleepers_` says someone is actually parked.
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::atomic<std::uint32_t> sleepers_{0};

  std::vector<std::thread> workers_;
};

}  // namespace dqemu::sim
