// Deterministic discrete-event kernel.
//
// The whole cluster runs on one virtual clock: every activity (a guest
// thread's execution quantum, a network message delivery, a futex timeout)
// is an event. Events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), which makes every simulation
// bit-reproducible — the property the integration tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/types.hpp"
#include "trace/tracer.hpp"

namespace dqemu::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
struct EventId {
  TimePs time = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Time-ordered event queue with a virtual clock.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time. Advances only as events fire.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  /// Schedules `fn` at absolute time `when` (>= now). Scheduling in the
  /// past is clamped to `now` — the event still fires, deterministically
  /// after everything already queued for `now`.
  EventId schedule_at(TimePs when, Callback fn);

  /// Schedules `fn` `delay` picoseconds from now.
  EventId schedule_in(DurationPs delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(const EventId& id);

  /// Fires the earliest pending event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool run_one();

  /// Runs events until the queue drains or the clock would pass `deadline`
  /// (events after the deadline remain pending). Returns events fired.
  std::uint64_t run_until(TimePs deadline);

  /// Runs events until the queue drains or `max_events` fired.
  /// Returns events fired.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  /// Attaches the flight recorder. Dispatch instants go to Cat::kQueue
  /// (off by default: one record per event). May be null.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Key {
    TimePs time;
    std::uint64_t seq;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::map<Key, Callback> events_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace dqemu::sim
