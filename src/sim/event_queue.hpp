// Deterministic discrete-event kernel.
//
// The whole cluster runs on one virtual clock: every activity (a guest
// thread's execution quantum, a network message delivery, a futex timeout)
// is an event. Events at equal times fire in scheduling order (a strictly
// increasing sequence number breaks ties), which makes every simulation
// bit-reproducible — the property the integration tests rely on.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "trace/tracer.hpp"

namespace dqemu::sim {

/// Opaque handle to a scheduled event, usable for cancellation.
struct EventId {
  TimePs time = 0;
  std::uint64_t seq = 0;

  friend bool operator==(const EventId&, const EventId&) = default;
};

/// Time-ordered event queue with a virtual clock.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time. Advances only as events fire.
  [[nodiscard]] TimePs now() const { return now_; }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  /// Schedules `fn` at absolute time `when` (>= now). Scheduling in the
  /// past is clamped to `now` — the event still fires, deterministically
  /// after everything already queued for `now`.
  EventId schedule_at(TimePs when, Callback fn);

  /// Schedules `fn` `delay` picoseconds from now.
  EventId schedule_in(DurationPs delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(const EventId& id);

  /// Fires the earliest pending event, advancing the clock to its time.
  /// Returns false if the queue was empty.
  bool run_one();

  /// Runs events until the queue drains or the clock would pass `deadline`
  /// (events after the deadline remain pending). Returns events fired.
  std::uint64_t run_until(TimePs deadline);

  /// Runs events until the queue drains or `max_events` fired.
  /// Returns events fired.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  /// Runs events with time strictly below `end` (the conservative-window
  /// bound: events at exactly `end` belong to the next window). Unlike
  /// run_until, the clock is left at the last fired event rather than
  /// advanced to `end`, so in-the-past clamping behaves exactly as in the
  /// single-queue kernel. `stop` (may be empty) is checked after every
  /// event; returning true ends the window early. Returns events fired.
  std::uint64_t run_window(TimePs end, const std::function<bool()>& stop = {});

  /// Time of the earliest pending event (posted-but-undrained hand-offs
  /// are not considered — drain first).
  [[nodiscard]] std::optional<TimePs> next_time() const {
    if (events_.empty()) return std::nullopt;
    return events_.begin()->first.time;
  }

  /// Cross-thread hand-off: enqueues `fn` for absolute time `when` from
  /// another queue's execution context (thread-safe, unlike schedule_at).
  /// Posted events stay invisible until drain_posted() — called at an
  /// epoch barrier — folds them in with fresh local seqs in (when, poster,
  /// order) order, a total order independent of host-thread interleaving:
  /// `poster` is the posting context (source node) and `order` a counter
  /// that context owns.
  void post(TimePs when, NodeId poster, std::uint64_t order, Callback fn);

  /// Folds posted events into the queue (single-threaded phases only).
  /// Returns the number of events adopted.
  std::size_t drain_posted();

  /// Total events fired since construction.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }

  /// Attaches the flight recorder. Dispatch instants go to Cat::kQueue
  /// (off by default: one record per event). May be null.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  struct Key {
    TimePs time;
    std::uint64_t seq;
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  struct Posted {
    TimePs when;
    NodeId poster;
    std::uint64_t order;
    Callback fn;
  };

  TimePs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::map<Key, Callback> events_;
  trace::Tracer* tracer_ = nullptr;

  std::mutex post_mutex_;
  std::vector<Posted> posted_;
};

}  // namespace dqemu::sim
