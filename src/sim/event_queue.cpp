#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>
#include <utility>

namespace dqemu::sim {

EventId EventQueue::schedule_at(TimePs when, Callback fn) {
  assert(fn && "scheduling an empty callback");
  if (when < now_) when = now_;
  const Key key{when, next_seq_++};
  events_.emplace(key, std::move(fn));
  return EventId{key.time, key.seq};
}

bool EventQueue::cancel(const EventId& id) {
  return events_.erase(Key{id.time, id.seq}) > 0;
}

bool EventQueue::run_one() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.time;
  // Move the callback out before erasing: the callback may schedule or
  // cancel other events, mutating the map.
  Callback fn = std::move(it->second);
  const std::uint64_t seq = it->first.seq;
  events_.erase(it);
  ++fired_;
  if (trace::wants(tracer_, trace::Cat::kQueue)) {
    trace::Record r;
    r.time = now_;
    r.name = "sim.dispatch";
    r.kind = trace::Kind::kInstant;
    r.cat = trace::Cat::kQueue;
    r.a = seq;
    r.b = events_.size();
    tracer_->record(r);
  }
  fn();
  return true;
}

std::uint64_t EventQueue::run_until(TimePs deadline) {
  std::uint64_t count = 0;
  while (!events_.empty() && events_.begin()->first.time <= deadline) {
    run_one();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && run_one()) ++count;
  return count;
}

std::uint64_t EventQueue::run_window(TimePs end,
                                     const std::function<bool()>& stop) {
  std::uint64_t count = 0;
  while (!events_.empty() && events_.begin()->first.time < end) {
    run_one();
    ++count;
    if (stop && stop()) break;
  }
  return count;
}

void EventQueue::post(TimePs when, NodeId poster, std::uint64_t order,
                      Callback fn) {
  assert(fn && "posting an empty callback");
  const std::lock_guard<std::mutex> lock(post_mutex_);
  posted_.push_back(Posted{when, poster, order, std::move(fn)});
}

std::size_t EventQueue::drain_posted() {
  std::vector<Posted> batch;
  {
    const std::lock_guard<std::mutex> lock(post_mutex_);
    batch.swap(posted_);
  }
  // (when, poster, order) is unique — poster contexts own their counters —
  // so this sort is a total order no matter how the posts interleaved.
  std::sort(batch.begin(), batch.end(), [](const Posted& a, const Posted& b) {
    return std::tie(a.when, a.poster, a.order) <
           std::tie(b.when, b.poster, b.order);
  });
  for (Posted& p : batch) schedule_at(p.when, std::move(p.fn));
  return batch.size();
}

}  // namespace dqemu::sim
