#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace dqemu::sim {

EventId EventQueue::schedule_at(TimePs when, Callback fn) {
  assert(fn && "scheduling an empty callback");
  if (when < now_) when = now_;
  const Key key{when, next_seq_++};
  events_.emplace(key, std::move(fn));
  return EventId{key.time, key.seq};
}

bool EventQueue::cancel(const EventId& id) {
  return events_.erase(Key{id.time, id.seq}) > 0;
}

bool EventQueue::run_one() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.time;
  // Move the callback out before erasing: the callback may schedule or
  // cancel other events, mutating the map.
  Callback fn = std::move(it->second);
  const std::uint64_t seq = it->first.seq;
  events_.erase(it);
  ++fired_;
  if (trace::wants(tracer_, trace::Cat::kQueue)) {
    trace::Record r;
    r.time = now_;
    r.name = "sim.dispatch";
    r.kind = trace::Kind::kInstant;
    r.cat = trace::Cat::kQueue;
    r.a = seq;
    r.b = events_.size();
    tracer_->record(r);
  }
  fn();
  return true;
}

std::uint64_t EventQueue::run_until(TimePs deadline) {
  std::uint64_t count = 0;
  while (!events_.empty() && events_.begin()->first.time <= deadline) {
    run_one();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

std::uint64_t EventQueue::run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && run_one()) ++count;
  return count;
}

}  // namespace dqemu::sim
