#include "sim/parallel.hpp"

namespace dqemu::sim {
namespace {

/// Spin iterations before a worker parks on the condition variable. At
/// ~1-10ns per iteration this is tens of microseconds — longer than the
/// gap between windows while a run is in flight, so workers effectively
/// never sleep mid-run, but an idle pool (between runs, or a thread count
/// above the active queue count) parks quickly.
constexpr int kSpinBudget = 20'000;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

}  // namespace

ThreadPool::ThreadPool(std::uint32_t threads) {
  // Spinning only helps when every worker can own a core; on an
  // oversubscribed host (fewer cores than pool threads) a spinning worker
  // steals the timeslice from the thread doing the work, so park on the
  // condition variable immediately instead. Decided before any worker
  // starts: workers read spin_budget_ unsynchronized.
  const unsigned cores = std::thread::hardware_concurrency();
  const std::uint32_t spawned = threads > 0 ? threads - 1 : 0;
  spin_budget_ = cores > spawned ? kSpinBudget : 0;
  for (std::uint32_t i = 0; i < spawned; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_.store(true, std::memory_order_release);
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_tasks(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  fn_.store(&fn, std::memory_order_relaxed);
  total_.store(n, std::memory_order_relaxed);
  done_.store(0, std::memory_order_relaxed);
  // One release store publishes the whole batch: a new batch id with the
  // claim index reset to zero. Every claim CAS validates the batch id
  // first, so a straggler still inside work() from the previous batch can
  // never claim into this one with stale state.
  const std::uint64_t gen = (ticket_.load(std::memory_order_relaxed) >>
                             kIndexBits) + 1;
  ticket_.store(gen << kIndexBits, std::memory_order_release);
  if (sleepers_.load(std::memory_order_acquire) > 0) {
    // The lock pairs with the sleeper's re-check under the same lock:
    // either it sees the new batch before parking or this notify reaches
    // it after.
    const std::lock_guard<std::mutex> lock(mutex_);
    cv_work_.notify_all();
  }
  work(gen);
  // Every claim bumps done_ after its task ran (release); acquiring the
  // final count here orders all task effects before the return. A worker
  // that already saw done_ == n cannot touch batch state again: its next
  // ticket load fails the batch-id check. Past the spin budget (or on an
  // oversubscribed host) yield the core to the worker we are waiting on.
  int spins = 0;
  while (done_.load(std::memory_order_acquire) < n) {
    if (++spins >= spin_budget_) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t gen = 0;
    int spins = 0;
    for (;;) {
      if (stop_.load(std::memory_order_acquire)) return;
      gen = ticket_.load(std::memory_order_acquire) >> kIndexBits;
      if (gen != seen) break;
      if (++spins >= spin_budget_) {
        std::unique_lock<std::mutex> lock(mutex_);
        sleepers_.fetch_add(1, std::memory_order_release);
        cv_work_.wait(lock, [&] {
          return stop_.load(std::memory_order_acquire) ||
                 (ticket_.load(std::memory_order_acquire) >> kIndexBits) !=
                     seen;
        });
        sleepers_.fetch_sub(1, std::memory_order_release);
        spins = 0;
      } else {
        cpu_relax();
      }
    }
    seen = gen;
    work(gen);
  }
}

void ThreadPool::work(std::uint64_t gen) {
  for (;;) {
    std::uint64_t t = ticket_.load(std::memory_order_acquire);
    if ((t >> kIndexBits) != gen) return;  // a newer batch superseded ours
    const std::size_t index = t & kIndexMask;
    if (index >= total_.load(std::memory_order_acquire)) return;
    if (!ticket_.compare_exchange_weak(t, t + 1, std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      cpu_relax();
      continue;
    }
    (*fn_.load(std::memory_order_acquire))(index);
    done_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace dqemu::sim
