// RAII one-shot timer over the event queue.
//
// The reliable channel and the protocol watchdogs (DESIGN.md §13) all need
// the same shape: a cancellable, re-armable one-shot timeout whose callback
// must never fire after its owner is destroyed. Holding a raw EventId gets
// the cancel-on-rearm and cancel-on-destroy bookkeeping wrong easily (a
// stale id silently cancels an unrelated event once the queue reuses the
// slot — it cannot today because seq is strictly increasing, but the
// invariant lives here, in one place, instead of in four protocol files).
#pragma once

#include <functional>
#include <utility>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace dqemu::sim {

/// One-shot virtual-time timer. Arming an already-armed timer cancels the
/// previous shot first; destruction cancels any pending shot. Not copyable
/// or movable: callbacks capture `this` of the owning protocol object, so
/// the timer must stay embedded at a stable address.
class Timer {
 public:
  explicit Timer(EventQueue& queue) : queue_(queue) {}

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  ~Timer() { cancel(); }

  /// True while a shot is pending (the callback has not fired yet).
  [[nodiscard]] bool armed() const { return armed_; }

  /// Absolute fire time of the pending shot; meaningless when not armed.
  [[nodiscard]] TimePs deadline() const { return id_.time; }

  /// (Re-)arms the timer `delay` picoseconds from now. The callback runs at
  /// most once per arm; it may re-arm the timer from inside itself.
  void arm(DurationPs delay, std::function<void()> fn) {
    cancel();
    armed_ = true;
    id_ = queue_.schedule_in(delay, [this, fn = std::move(fn)] {
      armed_ = false;  // cleared before fn so the callback can re-arm
      fn();
    });
  }

  /// Cancels the pending shot, if any. Safe to call when idle.
  void cancel() {
    if (armed_) {
      queue_.cancel(id_);
      armed_ = false;
    }
  }

 private:
  EventQueue& queue_;
  EventId id_{};
  bool armed_ = false;
};

}  // namespace dqemu::sim
