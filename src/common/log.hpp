// Minimal leveled logger.
//
// The simulator is single-threaded by design (deterministic event loop), so
// the logger needs no synchronization. Level is a process-global runtime
// setting; TRACE is compiled in but off by default because protocol traces
// are voluminous.
#pragma once

#include <cstdarg>
#include <string_view>

namespace dqemu {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Sets the global minimum level that will be emitted.
void set_log_level(LogLevel level);

/// Current global minimum level.
[[nodiscard]] LogLevel log_level();

/// True when messages at `level` would be emitted.
[[nodiscard]] bool log_enabled(LogLevel level);

/// printf-style log emission; prefer the DQEMU_LOG_* macros below which
/// skip argument evaluation when the level is disabled.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Logs at error level (ignoring the level filter) and aborts. Backs
/// DQEMU_CHECK: protocol invariants that must hold in every build type,
/// unlike assert() which vanishes under NDEBUG in embedders' builds.
[[noreturn]] void fatal_message(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dqemu

/// Hard invariant check, active in all build types. On failure logs the
/// formatted message and aborts — a deterministic fatal beats the undefined
/// behaviour of running on with corrupt state (e.g. invoking an empty
/// std::function handler).
#define DQEMU_CHECK(cond, ...)                \
  do {                                        \
    if (!(cond)) [[unlikely]] {               \
      ::dqemu::fatal_message(__VA_ARGS__);    \
    }                                         \
  } while (false)

#define DQEMU_LOG_AT(lvl, ...)                                \
  do {                                                        \
    if (::dqemu::log_enabled(lvl)) {                          \
      ::dqemu::log_message(lvl, __VA_ARGS__);                 \
    }                                                         \
  } while (false)

#define DQEMU_TRACE(...) DQEMU_LOG_AT(::dqemu::LogLevel::kTrace, __VA_ARGS__)
#define DQEMU_DEBUG(...) DQEMU_LOG_AT(::dqemu::LogLevel::kDebug, __VA_ARGS__)
#define DQEMU_INFO(...) DQEMU_LOG_AT(::dqemu::LogLevel::kInfo, __VA_ARGS__)
#define DQEMU_WARN(...) DQEMU_LOG_AT(::dqemu::LogLevel::kWarn, __VA_ARGS__)
#define DQEMU_ERROR(...) DQEMU_LOG_AT(::dqemu::LogLevel::kError, __VA_ARGS__)
