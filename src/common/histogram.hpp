// Log-bucketed (HDR-style) histogram for latency-type distributions.
//
// Values are 64-bit unsigned samples (the serving plane records latencies
// in nanoseconds). Buckets below kSubBucketCount are exact; above that,
// each power-of-two range is divided into kSubBucketCount sub-buckets, so
// every recorded value lands in a bucket whose width is at most
// 1/kSubBucketCount of its magnitude — a bounded relative error of ~3.1%
// for quantile queries, independent of the value range. Storage is a
// sparse ordered map, so dumps are deterministic and merging two
// histograms is exact (bucket-wise addition), which is what lets per-node
// distributions be combined into a cluster-wide one without re-recording.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace dqemu {

class LogHistogram {
 public:
  /// log2 of the sub-bucket count: 32 sub-buckets per power of two.
  static constexpr std::uint32_t kSubBucketBits = 5;
  static constexpr std::uint64_t kSubBucketCount = 1ULL << kSubBucketBits;

  /// Index of the bucket containing `value`.
  [[nodiscard]] static std::uint32_t bucket_index(std::uint64_t value);

  /// Largest value the bucket at `index` can contain (its representative:
  /// quantile queries answer with this upper bound, so estimates never
  /// understate the true value).
  [[nodiscard]] static std::uint64_t bucket_upper(std::uint32_t index);

  /// Records `count` occurrences of `value`.
  void record(std::uint64_t value, std::uint64_t count = 1);

  /// Adds every sample of `other` into this histogram (exact).
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t sum() const { return sum_; }
  /// Exact extremes (tracked beside the buckets).
  [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] std::uint64_t max() const { return max_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Value at quantile `q` in [0, 1]: the upper bound of the bucket holding
  /// the sample of rank ceil(q * count), clamped to the exact max. 0 when
  /// empty. quantile(0) is the min, quantile(1) the max (both exact).
  [[nodiscard]] std::uint64_t quantile(double q) const;

  void clear();

  /// One-line deterministic summary:
  ///   "count=N sum=S min=m p50=a p90=b p99=c p999=d max=M"
  /// (all integers; byte-stable for golden/determinism tests).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const LogHistogram& a, const LogHistogram& b) {
    return a.count_ == b.count_ && a.sum_ == b.sum_ && a.min_ == b.min_ &&
           a.max_ == b.max_ && a.buckets_ == b.buckets_;
  }

 private:
  std::map<std::uint32_t, std::uint64_t> buckets_;  ///< index -> sample count
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
};

}  // namespace dqemu
