#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace dqemu {
namespace {

LogLevel g_level = LogLevel::kWarn;

constexpr const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= static_cast<int>(g_level);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "[dqemu %s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

void fatal_message(const char* fmt, ...) {
  std::fprintf(stderr, "[dqemu FATAL] ");
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace dqemu
