// Cluster-wide configuration.
//
// Defaults model the paper's testbed (section 6.1): 7 workstations with
// Intel i5-6500 quad-core CPUs at 3.3 GHz, connected by a Gigabit switch
// with an average TCP round-trip latency of 55 microseconds. All costs are
// configuration, not constants, so the ablation benches can sweep them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace dqemu {

/// Per-node hardware model.
struct MachineConfig {
  double cpu_ghz = 3.3;            ///< core frequency (i5-6500)
  std::uint32_t cores_per_node = 4;
  std::uint32_t page_size = 4096;  ///< guest/host page size in bytes

  /// Converts core cycles to simulated picoseconds.
  [[nodiscard]] DurationPs cycles(std::uint64_t n) const {
    return cycles_to_ps(n, cpu_ghz);
  }
};

/// Interconnect model (section 6.1: 1 Gb/s switch, 55 us TCP RTT).
struct NetworkConfig {
  double bandwidth_gbps = 1.0;  ///< link bandwidth, gigabits per second

  /// One-way propagation + switching latency. Half the measured 55 us RTT.
  DurationPs one_way_latency = 27'500 * time_literals::kNs;

  /// Per-message software cost on EACH endpoint (TCP stack, serialization,
  /// communicator/manager thread wakeup, SIGSEGV handler hand-off). The
  /// paper measures a 410.5 us average remote-page cost against a 55 us
  /// RTT + ~33 us page transmission; the difference is this software path.
  DurationPs endpoint_overhead = 52'500 * time_literals::kNs;

  /// Fixed per-message header bytes added to every payload.
  std::uint32_t header_bytes = 64;

  /// Delivery latency for node-local (loopback) messages, e.g. a master
  /// guest thread talking to the directory. Models a function call plus
  /// lock hand-off rather than the TCP stack.
  DurationPs loopback_latency = 500 * time_literals::kNs;

  /// Serialization (wire) time for `bytes` on this link.
  [[nodiscard]] DurationPs wire_time(std::uint64_t bytes) const {
    // bits / (gigabits per second) = nanoseconds; keep integer math in ps.
    const double ns = static_cast<double>((bytes + header_bytes) * 8ULL) /
                      bandwidth_gbps;
    return static_cast<DurationPs>(ns * 1000.0 + 0.5);
  }

  /// Conservative-simulation lookahead (DESIGN.md §16): a lower bound on
  /// (delivery time - send time) for every cross-node message. The send
  /// path charges endpoint_overhead on each side plus propagation plus at
  /// least the zero-payload wire time; fault injection and egress queueing
  /// only ever add delay. Loopback traffic is faster but stays inside one
  /// node's event queue, so it does not bound the cross-queue window.
  [[nodiscard]] DurationPs lookahead() const {
    return 2 * endpoint_overhead + one_way_latency + wire_time(0);
  }
};

/// DBT engine cost model.
struct DbtConfig {
  /// Host cycles charged per executed guest ALU/branch micro-op. QEMU's
  /// TCG expands a guest instruction to roughly this many host cycles.
  std::uint32_t cycles_per_op = 6;
  /// Extra cycles for a guest memory access (guest->host address
  /// translation + the software load/store path).
  std::uint32_t cycles_per_mem_op = 8;
  /// Extra cycles for FP "libm-class" ops (exp/log/pow/sqrt...).
  std::uint32_t cycles_per_fp_special = 40;
  /// One-time translation cost per guest instruction in a block.
  std::uint32_t translate_cycles_per_insn = 800;
  /// Cost of taking a page-protection trap into the DSM layer
  /// (the paper cites ~2000 cycles for a page-fault trap).
  std::uint32_t fault_trap_cycles = 2000;
  /// Cost of entering the syscall emulation path.
  std::uint32_t syscall_trap_cycles = 400;
  /// Master-side service cost of a delegated syscall (manager thread work).
  std::uint32_t syscall_service_cycles = 1500;
  /// Maximum guest instructions executed per scheduling quantum.
  std::uint32_t quantum_insns = 20'000;
  /// Host-side fast paths (software TLB, indirect-jump cache, LL/SC store
  /// filter). Affects wall-clock speed only: virtual-time results are
  /// byte-identical either way (DESIGN.md section 10). Also gated at
  /// compile time by the DQEMU_ENABLE_FASTPATH CMake option.
  bool enable_fastpath = true;
  /// Superblock hot-trace tier (DESIGN.md section 15): hot translation
  /// blocks are stitched into straight-line traces across their recorded
  /// chain edges, a micro-op fusion pass combines adjacent guest
  /// instructions, and a specialized dispatch loop executes the trace with
  /// guards only at block boundaries and side exits. Host-side only:
  /// virtual-time results are byte-identical with superblocks on or off.
  /// Also gated at compile time by the DQEMU_ENABLE_SUPERBLOCKS option.
  bool enable_superblocks = true;
  /// Executions of a block between superblock-formation attempts (the hot
  /// threshold). Low = eager trace selection, high = sticky block engine.
  std::uint32_t sb_hot_threshold = 64;
  /// Trace limits: constituent blocks and total guest instructions.
  std::uint32_t sb_max_blocks = 16;
  std::uint32_t sb_max_insns = 256;
  /// Micro-op fusion pass on formed traces (compare+branch, load+ALU,
  /// ALU+store, pre-resolved TLB lines). Differential-test toggle; fused
  /// ops charge exactly the cost of their unfused sequence.
  bool sb_fusion = true;
};

/// Placement policy mapping guest pages (and futex addresses, via their
/// containing page) to home nodes when home sharding is on (DESIGN.md §17).
enum class HomePlacement : std::uint8_t {
  kHash,        ///< deterministic hash of the page number over the slaves
  kFirstTouch,  ///< master assigns the first requester as the page's home
};

/// DSM protocol + optimizations (sections 4.2, 5.1, 5.2).
struct DsmConfig {
  /// Directory lookup / state machine cost per request — on the master,
  /// or on a page's home node when home sharding is on.
  std::uint32_t directory_cycles = 600;

  /// Per-message service time of a slave's manager thread at the directory
  /// host (paper Fig. 2: one manager thread per slave). Demand traffic to
  /// a node serializes on its manager; this is the dominant software cost
  /// inside the paper's 410 us remote-page figure.
  DurationPs manager_service = 100 * time_literals::kUs;
  /// Manager cost of emitting one speculative forward push (no request
  /// parsing, no fault hand-off: a batched stream operation).
  DurationPs forward_service = 5 * time_literals::kUs;

  /// Page splitting (5.1): enabled + trigger threshold. A page is split
  /// after it has been requested by different nodes at different offsets
  /// more than `split_threshold` times (paper: 10).
  bool enable_splitting = false;
  std::uint32_t split_threshold = 10;
  /// Number of shadow pages a false-sharing page is split into (paper
  /// figure 4 shows 4).
  std::uint32_t split_shards = 4;

  /// Diff-encoded page transfers (DESIGN.md §12): writebacks, downgrades,
  /// grants and forwards ship a per-line dirty bitmap + the changed lines
  /// instead of the full page whenever the receiver provably holds a known
  /// older version (twin/diff, TreadMarks-style). Virtual-time
  /// optimization: guest results are identical, transfer bytes and
  /// sim_seconds improve. Also gated at compile time by the
  /// DQEMU_ENABLE_DSM_DIFF CMake option.
  bool enable_diff_transfers = false;
  /// Per-page dirty-mask history depth the directory retains; a requester
  /// whose copy is more than this many content versions old falls back to
  /// a full-page transfer.
  std::uint32_t diff_history_depth = 16;

  /// Data forwarding (5.2): enabled + sequential-stream trigger. Page
  /// forwarding starts after `forward_trigger` sequential page requests
  /// (paper: 4) and pushes `forward_depth` pages ahead in Shared state.
  bool enable_forwarding = false;
  std::uint32_t forward_trigger = 4;
  std::uint32_t forward_depth = 32;
  /// Concurrent streams tracked per node (Linux readahead keeps a table
  /// too); must cover the threads-per-node that walk disjoint regions.
  std::uint32_t forward_streams = 48;

  /// Home-node sharding (DESIGN.md §17): distribute the coherence
  /// directory and the futex/lease tables across per-page home nodes
  /// instead of funneling every protocol action through the master. The
  /// thin master keeps boot, placement authority, run control and the
  /// serving plane. With this off (or the feature compiled out via the
  /// DQEMU_ENABLE_HOME_SHARDING CMake option) every protocol message is
  /// addressed to node 0 — bit-for-bit the single-master protocol.
  bool enable_home_sharding = false;
  HomePlacement home_placement = HomePlacement::kHash;
};

/// Deterministic network fault injection + the reliable-delivery sublayer
/// (DESIGN.md section 13). With `enabled` false (or the feature compiled out
/// via DQEMU_ENABLE_FAULTS=OFF) the interconnect is the original perfectly
/// reliable FIFO wire, bit-for-bit. With it on, non-loopback messages may be
/// dropped, duplicated, delay-jittered or reordered — all decided by a
/// counter-based SplitMix64 stream keyed by `seed` and the transmission
/// number, never by host randomness — and a go-back-N reliable channel
/// (per-link sequence numbers, cumulative acks piggybacked on reverse
/// traffic, retransmit timers with exponential backoff, receive-side
/// duplicate suppression and reorder hold-back) restores exactly-once
/// per-channel FIFO delivery above the lossy wire.
struct FaultConfig {
  bool enabled = false;
  /// Seed of the fault decision stream. Same seed + same workload = same
  /// drops, same retransmits, same virtual times, run after run.
  std::uint64_t seed = 1;

  // Baseline per-transmission fault probabilities, in percent [0, 100].
  double drop_pct = 0.0;    ///< message lost on the wire
  double dup_pct = 0.0;     ///< switch delivers a second copy
  double jitter_pct = 0.0;  ///< extra delay drawn uniform in [0, jitter_max]
  DurationPs jitter_max = 200 * time_literals::kUs;
  /// Probability that a message is held long enough to slip behind later
  /// traffic on the same link (a deterministic reorder: the receive side
  /// restores sequence order before delivery).
  double reorder_pct = 0.0;
  DurationPs reorder_delay = 300 * time_literals::kUs;

  /// Per-type / per-link override: the first matching rule replaces the
  /// baseline percentages for that transmission. `max_matches` lets tests
  /// target e.g. exactly the first kPageData grant on one link.
  struct Rule {
    static constexpr std::uint32_t kAny = 0xFFFFFFFFu;
    std::uint32_t type = kAny;  ///< exact message type, or kAny
    std::uint32_t src = kAny;   ///< sender node, or kAny
    std::uint32_t dst = kAny;   ///< receiver node, or kAny
    double drop_pct = -1.0;     ///< < 0 inherits the baseline value
    double dup_pct = -1.0;
    double jitter_pct = -1.0;
    double reorder_pct = -1.0;
    std::uint32_t max_matches = 0;  ///< 0 = unlimited
  };
  std::vector<Rule> rules;

  /// Straggler windows: deliveries *to* a paused node are deferred to the
  /// end of the window (the node's communicator thread is wedged).
  struct Pause {
    std::uint32_t node = 0;
    TimePs start = 0;
    DurationPs duration = 0;
  };
  std::vector<Pause> pauses;

  /// Whole-node fault plane (DESIGN.md §18). A crash kills the node at a
  /// seeded virtual time: its threads are captured and re-homed, its leases
  /// and copysets revoked, and a hosted home shard handed to the master. A
  /// pause is normalized into a `Pause` window (the node's communicator
  /// wedges, then rejoins). node == 0 / at == 0 draw the target node and
  /// fault time from the same counter-based SplitMix64 stream as the wire
  /// faults, so same-seed runs fail identically. Also gated at compile time
  /// by the DQEMU_ENABLE_NODE_FAULTS CMake option; with the vector empty
  /// (or the gate off) every code path is bit-for-bit the lossy-wire-only
  /// plane.
  struct NodeFault {
    enum class Kind : std::uint8_t { kCrash, kPause };
    Kind kind = Kind::kCrash;
    std::uint32_t node = 0;   ///< slave node id, or 0 = drawn from the seed
    TimePs at = 0;            ///< fault time, or 0 = drawn in fault_window
    DurationPs pause_for = 0; ///< kPause: how long deliveries are deferred
  };
  std::vector<NodeFault> node_faults;
  /// Draw window for NodeFault::at == 0: the fault time lands uniformly in
  /// [fault_window/4, fault_window).
  DurationPs fault_window = 2 * time_literals::kMs;
  /// Bounded retransmission give-up (the dead-peer backstop): after this
  /// many consecutive zero-progress retransmit rounds on one link, the
  /// sender declares the peer dead (`net.peer_dead`), reports it to the
  /// fault plane and stops retransmitting. 0 = never give up (the pre-§18
  /// behavior; a paused-not-dead peer must not be abandoned).
  std::uint32_t giveup_retrans = 0;

  // Reliable-channel tuning.
  DurationPs retrans_timeout = 1 * time_literals::kMs;  ///< initial RTO
  DurationPs retrans_cap = 16 * time_literals::kMs;     ///< backoff ceiling
  DurationPs ack_delay = 100 * time_literals::kUs;      ///< delayed pure ack
  /// Protocol watchdogs: outstanding DSM faults and lease recalls re-issue
  /// their request after this long without progress (then back off 2x,
  /// capped at 8x). 0 disables the watchdogs even with faults enabled.
  DurationPs request_timeout = 100 * time_literals::kMs;

  /// True when `node` is inside a pause window at `now`; `until` receives
  /// the latest matching window end.
  [[nodiscard]] bool paused_at(std::uint32_t node, TimePs now,
                               TimePs* until) const {
    TimePs end = 0;
    for (const Pause& p : pauses) {
      if (p.node == node && now >= p.start && now < p.start + p.duration) {
        end = end > p.start + p.duration ? end : p.start + p.duration;
      }
    }
    if (end == 0) return false;
    *until = end;
    return true;
  }
};

/// Delegated-syscall layer: hierarchical distributed locking (the third
/// section-5 scalability optimization; DESIGN.md section 11). A per-node
/// lock agent services FUTEX_WAIT/WAKE locally while it holds a
/// master-granted ownership lease for the futex address; everything else
/// falls back to master delegation. Virtual-time optimization: guest
/// results are identical, sim_seconds improves. Also gated at compile time
/// by the DQEMU_ENABLE_LOCK_FASTPATH CMake option.
struct SysConfig {
  bool enable_hierarchical_locking = false;
  /// Delegated futex ops a node observes on one address between lease
  /// requests: low = aggressive lease migration, high = sticky master.
  std::uint32_t lease_request_threshold = 2;
  /// Minimum time the master lets a lease age before recalling it for a
  /// competing node (anti-ping-pong hysteresis).
  DurationPs lease_min_hold = 5 * time_literals::kMs;
  /// Consecutive wakes the agent may hand to same-node waiters before it
  /// must serve the oldest cross-node waiter (lock cohorting; bounds
  /// cross-node starvation). 0 = strict global FIFO.
  std::uint32_t lock_cohort_limit = 64;
  /// Agent service cost per locally-served futex op (cycles): the local
  /// kernel's futex path instead of a master RPC.
  std::uint32_t lock_agent_cycles = 300;
};

/// How the serving plane's load generator times request injections.
enum class ArrivalProcess : std::uint8_t {
  kPoisson,  ///< open-loop: exponential inter-arrival times at `rate`
  kUniform,  ///< open-loop: constant spacing 1/rate
  kClosed,   ///< closed-loop: `clients` issue, wait for the reply, think
};

/// Request-serving workload plane (DESIGN.md §14): a virtual-time load
/// generator on the master injects requests that guest worker pools pull
/// via the serve syscalls, with log-bucketed latency accounting. Every
/// draw (inter-arrival gap, service class, think time) comes from a
/// counter-based SplitMix64 stream keyed by `seed` and the request number
/// — never host randomness — so same seed + same config reproduces every
/// arrival time and latency sample byte-for-byte. Also gated at compile
/// time by the DQEMU_ENABLE_SERVING CMake option; with either gate off the
/// batch workloads are bit-identical to a build without this subsystem.
struct ServeConfig {
  bool enabled = false;
  /// Seed of the serving decision stream (arrivals, mix, think times).
  std::uint64_t seed = 7;
  ArrivalProcess arrival = ArrivalProcess::kPoisson;
  /// Offered load for the open-loop processes, requests per virtual second.
  double rate = 2000.0;
  /// Total requests injected over the run.
  std::uint32_t requests = 2000;
  /// Closed-loop client population (each has one request in flight).
  std::uint32_t clients = 16;
  /// Closed-loop mean think time between a reply and the next request
  /// (exponentially distributed).
  DurationPs think_mean = 2 * time_literals::kMs;
  /// Executions dispatched per request (>= 2 = request cloning: the first
  /// reply retires the request, the rest are redundant work).
  std::uint32_t clones = 1;
  /// Guest worker-pool size the driver synthesizes (workloads::serve_pool).
  std::uint32_t workers = 32;

  // Service-time mix: relative weights of the three request classes and
  // the mean work units (guest loop iterations) each class costs. Work is
  // jittered ±50% per request, also seed-keyed.
  std::uint32_t mix_cheap = 70;
  std::uint32_t mix_medium = 25;
  std::uint32_t mix_heavy = 5;
  std::uint32_t work_cheap = 300;    ///< pure ALU loop
  std::uint32_t work_medium = 2000;  ///< walks a read-shared table (DSM reads)
  std::uint32_t work_heavy = 1000;   ///< + a global-mutex critical section
};

/// Host-side simulation kernel tuning (DESIGN.md §16). With host_threads
/// == 1 (or the feature compiled out via DQEMU_ENABLE_PARALLEL_SIM=OFF)
/// the cluster runs on the original single global event queue, bit-for-
/// bit. With N > 1, the kernel is partitioned into one event queue per
/// simulated node and executed on a pool of N host threads under
/// conservative (CMB-style) synchronization, with the modeled cross-node
/// link latency as the lookahead window. Host-side only: virtual-time
/// results are byte-identical for every N.
struct SimConfig {
  std::uint32_t host_threads = 1;
};

/// Guest-thread placement policy (sections 4.1, 5.3).
enum class SchedPolicy {
  kRoundRobin,     ///< spread threads evenly over slave nodes
  kHintLocality,   ///< group threads by their HINT group id (section 5.3)
};

struct SchedConfig {
  SchedPolicy policy = SchedPolicy::kRoundRobin;
};

/// Top-level cluster description.
struct ClusterConfig {
  /// Number of slave nodes (the paper sweeps 1..6). The master node is
  /// additional and hosts the main thread, directory and global syscalls.
  std::uint32_t slave_nodes = 1;

  /// Single-node baseline mode: run everything on the master with direct
  /// (uninstrumented) memory access and host atomics. This models the
  /// "QEMU 4.2.0" baseline used throughout section 6.
  bool single_node_baseline = false;

  /// Total guest address space reserved per node, bytes (32-bit guest).
  std::uint32_t guest_mem_bytes = 256u * 1024 * 1024;

  MachineConfig machine;
  /// Heterogeneous clusters (the paper's introduction motivates DBT
  /// clusters with "different kinds of physical cores"): when non-empty,
  /// one entry per node (index 0 = master) overrides `machine` for that
  /// node. Round-robin placement becomes capacity-weighted.
  std::vector<MachineConfig> node_machines;
  NetworkConfig net;
  DbtConfig dbt;
  DsmConfig dsm;
  SysConfig sys;
  SchedConfig sched;
  FaultConfig faults;
  ServeConfig serve;
  SimConfig sim;

  std::uint64_t seed = 42;  ///< seed for all workload/test randomness

  /// Basic sanity validation; returns the first problem found.
  [[nodiscard]] Status validate() const {
    using S = Status;
    if (slave_nodes == 0 && !single_node_baseline)
      return S::invalid_argument("slave_nodes must be >= 1");
    if (!single_node_baseline && total_nodes() > 256)
      return S::invalid_argument(
          "at most 255 slave_nodes (the sharer set covers 256 nodes)");
    if (dsm.enable_home_sharding && single_node_baseline)
      return S::invalid_argument(
          "home sharding needs a DSM cluster (not single_node_baseline)");
    if (machine.cores_per_node == 0)
      return S::invalid_argument("cores_per_node must be >= 1");
    if (machine.cpu_ghz <= 0.0)
      return S::invalid_argument("cpu_ghz must be positive");
    if (machine.page_size == 0 ||
        (machine.page_size & (machine.page_size - 1)) != 0)
      return S::invalid_argument("page_size must be a power of two");
    if (net.bandwidth_gbps <= 0.0)
      return S::invalid_argument("bandwidth_gbps must be positive");
    if (dsm.split_shards < 2)
      return S::invalid_argument("split_shards must be >= 2");
    if (dsm.enable_diff_transfers && dsm.diff_history_depth == 0)
      return S::invalid_argument("diff_history_depth must be >= 1");
    if ((machine.page_size % dsm.split_shards) != 0)
      return S::invalid_argument("split_shards must divide page_size");
    if (dbt.quantum_insns == 0)
      return S::invalid_argument("quantum_insns must be >= 1");
    if (dbt.enable_superblocks) {
      if (dbt.sb_hot_threshold == 0)
        return S::invalid_argument("sb_hot_threshold must be >= 1");
      if (dbt.sb_max_blocks == 0)
        return S::invalid_argument("sb_max_blocks must be >= 1");
      if (dbt.sb_max_insns == 0)
        return S::invalid_argument("sb_max_insns must be >= 1");
    }
    if (sys.enable_hierarchical_locking && sys.lease_request_threshold == 0)
      return S::invalid_argument("lease_request_threshold must be >= 1");
    if (faults.enabled) {
      const double pcts[] = {faults.drop_pct, faults.dup_pct,
                             faults.jitter_pct, faults.reorder_pct};
      for (const double pct : pcts) {
        if (pct < 0.0 || pct >= 100.0)
          return S::invalid_argument("fault percentages must be in [0, 100)");
      }
      if (faults.retrans_timeout == 0 ||
          faults.retrans_cap < faults.retrans_timeout)
        return S::invalid_argument(
            "retrans_timeout must be >= 1 and <= retrans_cap");
    }
    if (!faults.node_faults.empty()) {
      if (!faults.enabled)
        return S::invalid_argument(
            "node faults need faults.enabled (the reliable channel and the "
            "protocol watchdogs are the recovery transport)");
      if (single_node_baseline)
        return S::invalid_argument(
            "node faults need a DSM cluster (not single_node_baseline)");
      if (faults.request_timeout == 0)
        return S::invalid_argument(
            "node faults need request_timeout > 0 (orphaned requests are "
            "recovered by re-issue)");
      if (faults.fault_window == 0)
        return S::invalid_argument("fault_window must be > 0");
      for (const FaultConfig::NodeFault& nf : faults.node_faults) {
        // The master is the cluster's root of authority (it adopts a dead
        // home's shard); it never crashes or pauses.
        if (nf.node != 0 && (nf.node < 1 || nf.node > slave_nodes))
          return S::invalid_argument(
              "node fault target must be a slave node (1..slave_nodes) or 0 "
              "to draw one");
        if (nf.kind == FaultConfig::NodeFault::Kind::kPause &&
            nf.pause_for == 0)
          return S::invalid_argument("node pause needs pause_for > 0");
        if (nf.kind == FaultConfig::NodeFault::Kind::kCrash &&
            dsm.enable_home_sharding &&
            dsm.home_placement == HomePlacement::kHash)
          return S::invalid_argument(
              "node crashes need first-touch placement (or sharding off): "
              "hash placement cannot re-home a dead home's pages");
      }
    }
    if (serve.enabled) {
      if (serve.requests == 0)
        return S::invalid_argument("serve.requests must be >= 1");
      if (serve.clones == 0)
        return S::invalid_argument("serve.clones must be >= 1");
      if (serve.workers == 0)
        return S::invalid_argument("serve.workers must be >= 1");
      if (serve.arrival != ArrivalProcess::kClosed && serve.rate <= 0.0)
        return S::invalid_argument("serve.rate must be positive (open loop)");
      if (serve.arrival == ArrivalProcess::kClosed && serve.clients == 0)
        return S::invalid_argument("serve.clients must be >= 1 (closed loop)");
      if (serve.mix_cheap + serve.mix_medium + serve.mix_heavy == 0)
        return S::invalid_argument("serve mix weights must not all be zero");
      for (const std::uint32_t work :
           {serve.work_cheap, serve.work_medium, serve.work_heavy}) {
        // The work descriptor rides in 28 bits of the syscall result, and
        // the per-request jitter scales it up to 1.5x.
        if (work == 0 || work > (1u << 27))
          return S::invalid_argument("serve work units must be in [1, 2^27]");
      }
    }
    if (sim.host_threads == 0)
      return S::invalid_argument("sim.host_threads must be >= 1");
    if (sim.host_threads > 1 && net.lookahead() == 0)
      return S::invalid_argument(
          "sim.host_threads > 1 needs a nonzero network lookahead "
          "(endpoint_overhead, one_way_latency and wire time all zero)");
    if (guest_mem_bytes < 16u * 1024 * 1024)
      return S::invalid_argument("guest_mem_bytes too small (< 16 MiB)");
    if (!node_machines.empty()) {
      if (node_machines.size() != total_nodes())
        return S::invalid_argument(
            "node_machines must have one entry per node (incl. master)");
      for (const MachineConfig& m : node_machines) {
        if (m.cores_per_node == 0 || m.cpu_ghz <= 0.0)
          return S::invalid_argument("invalid per-node machine override");
        if (m.page_size != machine.page_size)
          return S::invalid_argument(
              "per-node page_size must match the cluster page_size");
      }
    }
    if ((guest_mem_bytes % machine.page_size) != 0)
      return S::invalid_argument("guest_mem_bytes must be page aligned");
    return S::ok();
  }

  /// Number of nodes including the master.
  [[nodiscard]] std::uint32_t total_nodes() const {
    return single_node_baseline ? 1 : slave_nodes + 1;
  }

  /// Hardware model of `node` (per-node override or the cluster default).
  [[nodiscard]] const MachineConfig& machine_for(NodeId node) const {
    if (node < node_machines.size()) return node_machines[node];
    return machine;
  }
};

}  // namespace dqemu
