// Lightweight Status / Result error-handling primitives.
//
// Expected failures (bad assembly input, invalid configs, guest faults that
// surface to the embedder) are reported through these types instead of
// exceptions, per the repository's coding conventions. Programming errors
// still assert.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace dqemu {

/// Coarse error category, patterned after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
};

/// Human-readable name of a status code.
[[nodiscard]] constexpr const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

/// Value-semantic error descriptor. A default-constructed Status is OK.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return Status(); }
  [[nodiscard]] static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  [[nodiscard]] static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  [[nodiscard]] static Status already_exists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  [[nodiscard]] static Status out_of_range(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  [[nodiscard]] static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  [[nodiscard]] static Status unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  [[nodiscard]] static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  [[nodiscard]] static Status resource_exhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "OK" or "CODE: message" for diagnostics.
  [[nodiscard]] std::string to_string() const {
    if (is_ok()) return "OK";
    return std::string(status_code_name(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of T or an error Status. Accessing the value of a failed
/// Result is a programming error (asserts).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.is_ok() && "Result(Status) requires a failure status");
  }

  [[nodiscard]] bool is_ok() const { return status_.is_ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& take() {
    assert(is_ok());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dqemu

/// Propagates a failure Status from an expression, absl-style.
#define DQEMU_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::dqemu::Status dqemu_status_ = (expr);           \
    if (!dqemu_status_.is_ok()) return dqemu_status_; \
  } while (false)
