// Named counter registry + per-thread time breakdown.
//
// Every subsystem (DBT, DSM, network, syscall layer) accounts its activity
// into a StatsRegistry owned by the Cluster; benches and tests read them to
// reproduce the paper's breakdown figures (Fig. 8) and to assert protocol
// behaviour (e.g. "page splitting triggered exactly once").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "common/types.hpp"

namespace dqemu {

/// String-keyed monotonic counters plus named distributions. Keys are
/// created on first touch. Ordered maps so dumps are stable for golden
/// tests.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  /// Copies snapshot the merged maps only; transient parallel-scheduler
  /// shard state (below) never travels with a copy. Benches and examples
  /// copy registries after the run, when every shard is already folded.
  StatsRegistry(const StatsRegistry& other)
      : counters_(other.counters_), histograms_(other.histograms_) {}
  StatsRegistry& operator=(const StatsRegistry& other) {
    counters_ = other.counters_;
    histograms_ = other.histograms_;
    return *this;
  }

  /// Adds `delta` to counter `name` (creating it at zero first).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Current value; 0 if the counter was never touched.
  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// True if the counter has been created.
  [[nodiscard]] bool has(std::string_view name) const;

  /// Sets a counter to an absolute value (for gauges like "pages split").
  void set(std::string_view name, std::uint64_t value);

  /// Removes all counters and histograms.
  void clear();

  /// All counters, for iteration in reports.
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  counters() const {
    return counters_;
  }

  // ----- distributions ----------------------------------------------------
  /// Named log-bucketed histogram, created empty on first touch. Any
  /// subsystem can record a distribution the same way it bumps a counter:
  ///   stats->histogram("serve.latency_ns").record(ns);
  [[nodiscard]] LogHistogram& histogram(std::string_view name);

  /// Read access without creating the key; nullptr if never touched.
  [[nodiscard]] const LogHistogram* find_histogram(std::string_view name) const;

  [[nodiscard]] const std::map<std::string, LogHistogram, std::less<>>&
  histograms() const {
    return histograms_;
  }

  /// Multi-line "name = value" dump, sorted by name; histogram lines
  /// (quantile summaries) follow the counters.
  [[nodiscard]] std::string to_string() const;

  // ---- parallel-scheduler shards (DESIGN.md §16) -------------------------
  // One shard per simulated-node event queue. While a host thread executes
  // a queue's window it binds that queue's shard; add() and histogram()
  // then touch only shard-local maps, so concurrent windows never race.
  // merge_shards() at a barrier folds the deltas back — counters by
  // addition, histograms by exact bucket-wise merge — both commutative, so
  // totals are independent of the host thread count.

  /// Creates `count` empty shards. Call once, before any binding.
  void configure_shards(std::size_t count);

  /// Binds shard `index` to the calling thread until unbind_shard().
  void bind_shard(std::size_t index);
  void unbind_shard();

  /// Folds and clears every shard (single-threaded phases only).
  void merge_shards();

 private:
  struct Shard {
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, LogHistogram, std::less<>> histograms;
  };

  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, LogHistogram, std::less<>> histograms_;
  /// unique_ptr keeps shard addresses stable for the thread-local binding.
  std::vector<std::unique_ptr<Shard>> shards_;

  static thread_local StatsRegistry* bound_owner_;
  static thread_local Shard* bound_shard_;
};

/// Where a guest thread's virtual time went. Mirrors the breakdown the
/// paper reports in Figure 8 (execute / page fault / syscall).
struct TimeBreakdown {
  DurationPs execute = 0;    ///< running translated code
  DurationPs translate = 0;  ///< translating guest blocks
  DurationPs pagefault = 0;  ///< blocked in the DSM protocol
  DurationPs syscall = 0;    ///< executing or waiting on (delegated) syscalls
  DurationPs idle = 0;       ///< runnable but waiting for a core / futex-blocked

  [[nodiscard]] DurationPs total() const {
    return execute + translate + pagefault + syscall + idle;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    execute += other.execute;
    translate += other.translate;
    pagefault += other.pagefault;
    syscall += other.syscall;
    idle += other.idle;
    return *this;
  }
};

}  // namespace dqemu
