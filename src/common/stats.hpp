// Named counter registry + per-thread time breakdown.
//
// Every subsystem (DBT, DSM, network, syscall layer) accounts its activity
// into a StatsRegistry owned by the Cluster; benches and tests read them to
// reproduce the paper's breakdown figures (Fig. 8) and to assert protocol
// behaviour (e.g. "page splitting triggered exactly once").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dqemu {

/// String-keyed monotonic counters. Keys are created on first touch.
/// Ordered map so dumps are stable for golden tests.
class StatsRegistry {
 public:
  /// Adds `delta` to counter `name` (creating it at zero first).
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Current value; 0 if the counter was never touched.
  [[nodiscard]] std::uint64_t get(std::string_view name) const;

  /// True if the counter has been created.
  [[nodiscard]] bool has(std::string_view name) const;

  /// Sets a counter to an absolute value (for gauges like "pages split").
  void set(std::string_view name, std::uint64_t value);

  /// Removes all counters.
  void clear();

  /// All counters, for iteration in reports.
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  counters() const {
    return counters_;
  }

  /// Multi-line "name = value" dump, sorted by name.
  [[nodiscard]] std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
};

/// Where a guest thread's virtual time went. Mirrors the breakdown the
/// paper reports in Figure 8 (execute / page fault / syscall).
struct TimeBreakdown {
  DurationPs execute = 0;    ///< running translated code
  DurationPs translate = 0;  ///< translating guest blocks
  DurationPs pagefault = 0;  ///< blocked in the DSM protocol
  DurationPs syscall = 0;    ///< executing or waiting on (delegated) syscalls
  DurationPs idle = 0;       ///< runnable but waiting for a core / futex-blocked

  [[nodiscard]] DurationPs total() const {
    return execute + translate + pagefault + syscall + idle;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    execute += other.execute;
    translate += other.translate;
    pagefault += other.pagefault;
    syscall += other.syscall;
    idle += other.idle;
    return *this;
  }
};

}  // namespace dqemu
