#include "common/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace dqemu {

std::uint32_t LogHistogram::bucket_index(std::uint64_t value) {
  if (value < kSubBucketCount) return static_cast<std::uint32_t>(value);
  // value in [2^e, 2^(e+1)), e >= kSubBucketBits: the top kSubBucketBits
  // bits below the leading one select the sub-bucket.
  const auto e = static_cast<std::uint32_t>(std::bit_width(value)) - 1;
  const std::uint64_t sub =
      (value >> (e - kSubBucketBits)) - kSubBucketCount;  // [0, 32)
  return static_cast<std::uint32_t>((e - kSubBucketBits + 1) * kSubBucketCount +
                                    sub);
}

std::uint64_t LogHistogram::bucket_upper(std::uint32_t index) {
  if (index < kSubBucketCount) return index;
  const std::uint32_t e =
      kSubBucketBits + (index - static_cast<std::uint32_t>(kSubBucketCount)) /
                           static_cast<std::uint32_t>(kSubBucketCount);
  const std::uint64_t sub = index % kSubBucketCount;
  return ((sub + kSubBucketCount + 1) << (e - kSubBucketBits)) - 1;
}

void LogHistogram::record(std::uint64_t value, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(value)] += count;
  count_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LogHistogram::merge(const LogHistogram& other) {
  for (const auto& [index, count] : other.buckets_) buckets_[index] += count;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t LogHistogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::clamp<std::uint64_t>(
      static_cast<std::uint64_t>(
          std::ceil(q * static_cast<double>(count_))),
      1, count_);
  std::uint64_t seen = 0;
  for (const auto& [index, count] : buckets_) {
    seen += count;
    if (seen >= rank) {
      // The bucket's upper bound, clamped to the exact extremes so
      // quantile(0)/quantile(1) are precise.
      return std::clamp(bucket_upper(index), min_, max_);
    }
  }
  return max_;
}

void LogHistogram::clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

std::string LogHistogram::to_string() const {
  std::ostringstream out;
  out << "count=" << count_ << " sum=" << sum_ << " min=" << min()
      << " p50=" << quantile(0.50) << " p90=" << quantile(0.90)
      << " p99=" << quantile(0.99) << " p999=" << quantile(0.999)
      << " max=" << max_;
  return out.str();
}

}  // namespace dqemu
