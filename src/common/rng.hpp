// Deterministic pseudo-random number generation.
//
// Everything in the simulator that needs randomness (workload inputs,
// scheduler tiebreaks in tests, property-test case generation) goes through
// this seeded generator so that every run is reproducible. xoshiro256**
// seeded via splitmix64, the standard recipe.
#pragma once

#include <cstdint>

namespace dqemu {

/// splitmix64 step: used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1234ABCDULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() { return next(); }

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift reduction; bias is negligible for simulator purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double next_double(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace dqemu
