// Fundamental type aliases shared by every DQEMU module.
//
// The simulator keeps virtual time in integer picoseconds so that both
// CPU-cycle costs (sub-nanosecond at 3.3 GHz) and network costs (tens of
// microseconds) can be accumulated without floating-point drift.
#pragma once

#include <cstdint>
#include <limits>

namespace dqemu {

/// Virtual time in picoseconds since simulation start.
using TimePs = std::uint64_t;

/// A duration in picoseconds.
using DurationPs = std::uint64_t;

/// Guest virtual address. The GA32 guest is a 32-bit architecture.
using GuestAddr = std::uint32_t;

/// Size of a region in the guest address space.
using GuestSize = std::uint32_t;

/// Identifier of a cluster node. Node 0 is always the master.
using NodeId = std::uint16_t;

/// Identifier of a simulated core within a node.
using CoreId = std::uint16_t;

/// Guest thread identifier (equivalent of a Linux TID in the guest).
using GuestTid = std::uint32_t;

/// Sentinel meaning "no node".
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Sentinel meaning "no thread".
inline constexpr GuestTid kInvalidTid = std::numeric_limits<GuestTid>::max();

/// The master node's id; the directory, futex table and global syscall
/// state live there (paper section 4).
inline constexpr NodeId kMasterNode = 0;

namespace time_literals {

/// One nanosecond in picoseconds.
inline constexpr DurationPs kNs = 1000;
/// One microsecond in picoseconds.
inline constexpr DurationPs kUs = 1000 * kNs;
/// One millisecond in picoseconds.
inline constexpr DurationPs kMs = 1000 * kUs;
/// One second in picoseconds.
inline constexpr DurationPs kSec = 1000 * kMs;

}  // namespace time_literals

/// Converts a cycle count at the given core frequency to picoseconds,
/// rounding to nearest. 3.3 GHz -> ~303 ps per cycle.
[[nodiscard]] constexpr DurationPs cycles_to_ps(std::uint64_t cycles, double ghz) {
  // ps per cycle = 1000 / GHz.
  return static_cast<DurationPs>(static_cast<double>(cycles) * (1000.0 / ghz) + 0.5);
}

/// Converts picoseconds to (fractional) seconds for reporting.
[[nodiscard]] constexpr double ps_to_seconds(TimePs ps) {
  return static_cast<double>(ps) * 1e-12;
}

/// Converts picoseconds to (fractional) microseconds for reporting.
[[nodiscard]] constexpr double ps_to_us(TimePs ps) {
  return static_cast<double>(ps) * 1e-6;
}

}  // namespace dqemu
