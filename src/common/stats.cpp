#include "common/stats.hpp"

#include <sstream>

namespace dqemu {

void StatsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t StatsRegistry::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatsRegistry::has(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

void StatsRegistry::set(std::string_view name, std::uint64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void StatsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
}

LogHistogram& StatsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), LogHistogram{}).first;
  }
  return it->second;
}

const LogHistogram* StatsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::string StatsRegistry::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << value << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out << name << " = " << hist.to_string() << '\n';
  }
  return out.str();
}

}  // namespace dqemu
