#include "common/stats.hpp"

#include <cassert>
#include <sstream>

namespace dqemu {

thread_local StatsRegistry* StatsRegistry::bound_owner_ = nullptr;
thread_local StatsRegistry::Shard* StatsRegistry::bound_shard_ = nullptr;

void StatsRegistry::add(std::string_view name, std::uint64_t delta) {
  auto& counters =
      bound_owner_ == this ? bound_shard_->counters : counters_;
  auto it = counters.find(name);
  if (it == counters.end()) {
    counters.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

std::uint64_t StatsRegistry::get(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

bool StatsRegistry::has(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

void StatsRegistry::set(std::string_view name, std::uint64_t value) {
  assert(bound_owner_ != this && "set() is not shard-safe; barrier only");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void StatsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
  for (const auto& shard : shards_) {
    shard->counters.clear();
    shard->histograms.clear();
  }
}

LogHistogram& StatsRegistry::histogram(std::string_view name) {
  auto& histograms =
      bound_owner_ == this ? bound_shard_->histograms : histograms_;
  auto it = histograms.find(name);
  if (it == histograms.end()) {
    it = histograms.emplace(std::string(name), LogHistogram{}).first;
  }
  return it->second;
}

const LogHistogram* StatsRegistry::find_histogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void StatsRegistry::configure_shards(std::size_t count) {
  assert(shards_.empty() && "shards already configured");
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

void StatsRegistry::bind_shard(std::size_t index) {
  assert(index < shards_.size());
  bound_owner_ = this;
  bound_shard_ = shards_[index].get();
}

void StatsRegistry::unbind_shard() {
  bound_owner_ = nullptr;
  bound_shard_ = nullptr;
}

void StatsRegistry::merge_shards() {
  assert(bound_owner_ != this);
  for (const auto& shard : shards_) {
    for (const auto& [name, value] : shard->counters) {
      add(name, value);
    }
    shard->counters.clear();
    for (const auto& [name, hist] : shard->histograms) {
      histogram(name).merge(hist);
    }
    shard->histograms.clear();
  }
}

std::string StatsRegistry::to_string() const {
  std::ostringstream out;
  for (const auto& [name, value] : counters_) {
    out << name << " = " << value << '\n';
  }
  for (const auto& [name, hist] : histograms_) {
    out << name << " = " << hist.to_string() << '\n';
  }
  return out.str();
}

}  // namespace dqemu
