// Deterministic wire-fault injector (DESIGN.md §13).
//
// Decides, per physical transmission, whether the switch drops, duplicates,
// jitters or reorder-delays the packet. Decisions come from a counter-based
// SplitMix64 stream keyed by FaultConfig::seed, the directed link and the
// link-local transmission number — never from host randomness — so the same
// configuration produces the same faults at the same virtual times on every
// run. Keying per link (rather than by a global transmission count) is what
// keeps the stream independent of how transmissions on *different* links
// interleave, which the parallel scheduler (DESIGN.md §16) does not define:
// each link's counter is touched only by its sender's execution context.
// Loopback messages never reach the injector (they do not cross the wire).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace dqemu::net {

/// What the wire does to one physical transmission.
struct WireFate {
  bool drop = false;       ///< packet lost; no arrival is scheduled
  bool duplicate = false;  ///< a second copy arrives after the first
  DurationPs extra_delay = 0;      ///< jitter + reorder delay on the copy
  DurationPs dup_extra_delay = 0;  ///< additional delay of the duplicate
};

class FaultInjector {
 public:
  FaultInjector(const FaultConfig& config, std::uint32_t node_count);

  /// Fate of the next physical transmission of `msg`. Advances the link's
  /// transmission counter (and any matching rule's per-link match budget)
  /// even when the message sails through clean, so decisions stay aligned
  /// run-to-run. Called from the sender's execution context only.
  WireFate decide(const Message& msg);

  /// Physical transmissions decided so far (all links).
  [[nodiscard]] std::uint64_t transmissions() const {
    return transmissions_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::size_t link_index(NodeId src, NodeId dst) const {
    return static_cast<std::size_t>(src) * node_count_ + dst;
  }

  const FaultConfig& config_;
  std::uint32_t node_count_;
  std::atomic<std::uint64_t> transmissions_{0};
  /// Per directed link: transmissions decided (the decision-stream counter).
  std::vector<std::uint64_t> link_tx_;
  /// Times each FaultConfig::Rule has matched on each directed link, for
  /// max_matches budgets (indexed rule * n^2 + link). Per-link budgets keep
  /// a kAny rule's accounting inside one sender context.
  std::vector<std::uint32_t> rule_matches_;
};

}  // namespace dqemu::net
