// Deterministic wire-fault injector (DESIGN.md §13).
//
// Decides, per physical transmission, whether the switch drops, duplicates,
// jitters or reorder-delays the packet. Decisions come from a counter-based
// SplitMix64 stream keyed by FaultConfig::seed and the transmission number —
// never from host randomness — so the same configuration produces the same
// faults at the same virtual times on every run. Loopback messages never
// reach the injector (they do not cross the wire).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace dqemu::net {

/// What the wire does to one physical transmission.
struct WireFate {
  bool drop = false;       ///< packet lost; no arrival is scheduled
  bool duplicate = false;  ///< a second copy arrives after the first
  DurationPs extra_delay = 0;      ///< jitter + reorder delay on the copy
  DurationPs dup_extra_delay = 0;  ///< additional delay of the duplicate
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config)
      : config_(config), rule_matches_(config.rules.size(), 0) {}

  /// Fate of the next physical transmission of `msg`. Advances the
  /// transmission counter (and any matching rule's match budget) even when
  /// the message sails through clean, so decisions stay aligned run-to-run.
  WireFate decide(const Message& msg);

  /// Physical transmissions decided so far.
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }

 private:
  const FaultConfig& config_;
  std::uint64_t transmissions_ = 0;
  /// Times each FaultConfig::Rule has matched (for max_matches budgets).
  std::vector<std::uint32_t> rule_matches_;
};

}  // namespace dqemu::net
