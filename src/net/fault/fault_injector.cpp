#include "net/fault/fault_injector.hpp"

#include "common/log.hpp"
#include "common/rng.hpp"

namespace dqemu::net {
namespace {

/// Uniform draw in [0, 1) from the next SplitMix64 output (53-bit mantissa).
double uniform(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// True with probability pct/100. Skips the draw entirely for pct <= 0 —
/// the draw count then depends only on the (fixed) configuration, so the
/// stream still replays identically run-to-run.
bool chance(std::uint64_t& state, double pct) {
  if (pct <= 0.0) return false;
  return uniform(state) * 100.0 < pct;
}

/// Uniform duration in [0, max].
DurationPs draw_delay(std::uint64_t& state, DurationPs max) {
  if (max == 0) return 0;
  return static_cast<DurationPs>(uniform(state) *
                                 static_cast<double>(max + 1));
}

}  // namespace

FaultInjector::FaultInjector(const FaultConfig& config,
                             std::uint32_t node_count)
    : config_(config),
      node_count_(node_count),
      link_tx_(static_cast<std::size_t>(node_count) * node_count, 0),
      rule_matches_(config.rules.size() * static_cast<std::size_t>(node_count) *
                        node_count,
                    0) {}

WireFate FaultInjector::decide(const Message& msg) {
  DQEMU_CHECK(msg.src < node_count_ && msg.dst < node_count_,
              "fault: transmission with out-of-range endpoint %u->%u "
              "(injector sized for %u nodes)",
              unsigned(msg.src), unsigned(msg.dst), node_count_);
  const std::size_t link = link_index(msg.src, msg.dst);
  // Key the decision stream by (seed, link, link transmission number) only:
  // the fate of a transmission never depends on earlier fates, nor on how
  // transmissions on other links interleave with this one.
  const std::uint64_t n = ++link_tx_[link];
  transmissions_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t link_key = (static_cast<std::uint64_t>(msg.src) << 32) |
                           msg.dst;
  std::uint64_t state =
      (config_.seed ^ splitmix64(link_key)) + n * 0x9E3779B97F4A7C15ull;

  double drop = config_.drop_pct;
  double dup = config_.dup_pct;
  double jitter = config_.jitter_pct;
  double reorder = config_.reorder_pct;
  for (std::size_t i = 0; i < config_.rules.size(); ++i) {
    const FaultConfig::Rule& rule = config_.rules[i];
    std::uint32_t& matched =
        rule_matches_[i * static_cast<std::size_t>(node_count_) * node_count_ +
                      link];
    const bool matches =
        (rule.type == FaultConfig::Rule::kAny || rule.type == msg.type) &&
        (rule.src == FaultConfig::Rule::kAny || rule.src == msg.src) &&
        (rule.dst == FaultConfig::Rule::kAny || rule.dst == msg.dst) &&
        (rule.max_matches == 0 || matched < rule.max_matches);
    if (!matches) continue;
    ++matched;
    if (rule.drop_pct >= 0.0) drop = rule.drop_pct;
    if (rule.dup_pct >= 0.0) dup = rule.dup_pct;
    if (rule.jitter_pct >= 0.0) jitter = rule.jitter_pct;
    if (rule.reorder_pct >= 0.0) reorder = rule.reorder_pct;
    break;  // first matching rule wins
  }

  WireFate fate;
  if (chance(state, drop)) {
    fate.drop = true;
    return fate;  // a lost packet has no further fate to decide
  }
  fate.duplicate = chance(state, dup);
  if (chance(state, jitter)) {
    fate.extra_delay += draw_delay(state, config_.jitter_max);
  }
  if (chance(state, reorder)) {
    // Enough delay to slip behind later traffic on the same link; the
    // receive side's sequence check restores order before delivery.
    fate.extra_delay += config_.reorder_delay;
  }
  if (fate.duplicate) {
    fate.dup_extra_delay = draw_delay(state, config_.jitter_max);
  }
  return fate;
}

}  // namespace dqemu::net
