#include "net/fault/fault_injector.hpp"

#include "common/rng.hpp"

namespace dqemu::net {
namespace {

/// Uniform draw in [0, 1) from the next SplitMix64 output (53-bit mantissa).
double uniform(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// True with probability pct/100. Skips the draw entirely for pct <= 0 —
/// the draw count then depends only on the (fixed) configuration, so the
/// stream still replays identically run-to-run.
bool chance(std::uint64_t& state, double pct) {
  if (pct <= 0.0) return false;
  return uniform(state) * 100.0 < pct;
}

/// Uniform duration in [0, max].
DurationPs draw_delay(std::uint64_t& state, DurationPs max) {
  if (max == 0) return 0;
  return static_cast<DurationPs>(uniform(state) *
                                 static_cast<double>(max + 1));
}

}  // namespace

WireFate FaultInjector::decide(const Message& msg) {
  // Key the decision stream by seed + transmission number only: the fate of
  // transmission N never depends on the fate of transmissions before it.
  const std::uint64_t n = ++transmissions_;
  std::uint64_t state = config_.seed + n * 0x9E3779B97F4A7C15ull;

  double drop = config_.drop_pct;
  double dup = config_.dup_pct;
  double jitter = config_.jitter_pct;
  double reorder = config_.reorder_pct;
  for (std::size_t i = 0; i < config_.rules.size(); ++i) {
    const FaultConfig::Rule& rule = config_.rules[i];
    const bool matches =
        (rule.type == FaultConfig::Rule::kAny || rule.type == msg.type) &&
        (rule.src == FaultConfig::Rule::kAny || rule.src == msg.src) &&
        (rule.dst == FaultConfig::Rule::kAny || rule.dst == msg.dst) &&
        (rule.max_matches == 0 || rule_matches_[i] < rule.max_matches);
    if (!matches) continue;
    ++rule_matches_[i];
    if (rule.drop_pct >= 0.0) drop = rule.drop_pct;
    if (rule.dup_pct >= 0.0) dup = rule.dup_pct;
    if (rule.jitter_pct >= 0.0) jitter = rule.jitter_pct;
    if (rule.reorder_pct >= 0.0) reorder = rule.reorder_pct;
    break;  // first matching rule wins
  }

  WireFate fate;
  if (chance(state, drop)) {
    fate.drop = true;
    return fate;  // a lost packet has no further fate to decide
  }
  fate.duplicate = chance(state, dup);
  if (chance(state, jitter)) {
    fate.extra_delay += draw_delay(state, config_.jitter_max);
  }
  if (chance(state, reorder)) {
    // Enough delay to slip behind later traffic on the same link; the
    // receive side's sequence check restores order before delivery.
    fate.extra_delay += config_.reorder_delay;
  }
  if (fate.duplicate) {
    fate.dup_extra_delay = draw_delay(state, config_.jitter_max);
  }
  return fate;
}

}  // namespace dqemu::net
