// Whole-node fault plane gate (DESIGN.md §18).
//
// Node crash / pause-and-rejoin faults extend the PR-5 lossy-wire plane to
// dead nodes. Compiled out by -DDQEMU_ENABLE_NODE_FAULTS=OFF, in which case
// node_faults_on() is constant-false, every sweep/recovery path is dead
// code, and the wire behaves bit-for-bit like the lossy-links-only plane.
#pragma once

#include <cstdint>

#include "common/config.hpp"

#ifndef DQEMU_NODE_FAULTS_ENABLED
#define DQEMU_NODE_FAULTS_ENABLED 1
#endif

namespace dqemu::net {

/// True when the node-fault plane is both compiled in and configured for
/// this run. All call sites gate on this so the OFF build and the empty
/// config take the identical lossy-wire-only path.
[[nodiscard]] inline bool node_faults_on(const FaultConfig& faults) {
#if DQEMU_NODE_FAULTS_ENABLED
  return faults.enabled && !faults.node_faults.empty();
#else
  (void)faults;
  return false;
#endif
}

/// Crash-plane message types (core/wire.hpp 0x310..0x31F): exempt from
/// fault injection ("reliable by fiat" — losing the recovery protocol to
/// the fault it recovers from would be circular) and from the dead-peer
/// send filter (a dying node must get its last gasp out). The injector's
/// per-link counters are not consumed for them, so every other message's
/// fault fate is unchanged by their presence.
[[nodiscard]] constexpr bool is_crash_plane(std::uint32_t type) {
  return type >= 0x310 && type <= 0x31F;
}

}  // namespace dqemu::net
