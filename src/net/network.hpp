// Simulated cluster interconnect.
//
// Models the paper's testbed: nodes on a store-and-forward Gigabit switch.
// Each node has a full-duplex NIC; a message occupies the sender's egress
// link for its serialization time (so concurrent page pushes queue behind
// each other — this is what bounds data-forwarding throughput in Table 1),
// then takes the one-way propagation latency, then pays the receiver-side
// software overhead. Messages between a given (src, dst) pair are delivered
// FIFO, like a TCP stream.
#pragma once

#include <functional>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "net/message.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"

namespace dqemu::net {

/// The switch + all NICs. Owned by the Cluster; nodes attach handlers.
class Network {
 public:
  using Handler = std::function<void(Message)>;

  /// `stats` and `tracer` may be null; `queue` must outlive the Network.
  Network(sim::EventQueue& queue, NetworkConfig config,
          std::uint32_t node_count, StatsRegistry* stats = nullptr,
          trace::Tracer* tracer = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the delivery callback for `node`. Must be called before any
  /// message addressed to that node is delivered.
  void attach(NodeId node, Handler handler);

  /// Queues `msg` for delivery. Loopback (src == dst) messages skip the
  /// wire and pay only `loopback_latency`.
  void send(Message msg);

  /// Earliest time a new message from `node` could start serializing.
  [[nodiscard]] TimePs egress_free_at(NodeId node) const {
    return egress_free_[node];
  }

  /// Current virtual time (convenience for layers that hold only the
  /// network reference).
  [[nodiscard]] TimePs now() const { return queue_.now(); }

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

 private:
  void deliver(Message msg);

  sim::EventQueue& queue_;
  NetworkConfig config_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  std::vector<Handler> handlers_;
  /// Per-node egress link occupancy (bandwidth serialization point).
  std::vector<TimePs> egress_free_;
  /// Per (src,dst) channel: last scheduled delivery time, for FIFO order.
  std::vector<TimePs> channel_last_;
  std::uint32_t node_count_;
};

}  // namespace dqemu::net
