// Simulated cluster interconnect.
//
// Models the paper's testbed: nodes on a store-and-forward Gigabit switch.
// Each node has a full-duplex NIC; a message occupies the sender's egress
// link for its serialization time (so concurrent page pushes queue behind
// each other — this is what bounds data-forwarding throughput in Table 1),
// then takes the one-way propagation latency, then pays the receiver-side
// software overhead. Messages between a given (src, dst) pair are delivered
// FIFO, like a TCP stream.
//
// With fault injection active (DQEMU_ENABLE_FAULTS compiled in AND
// FaultConfig::enabled), non-loopback traffic instead runs over a lossy
// wire: a deterministic injector may drop/duplicate/delay each physical
// transmission and a go-back-N reliable channel restores exactly-once FIFO
// delivery above it (DESIGN.md §13). With either gate off, the original
// perfectly reliable path runs unchanged, bit-for-bit.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "net/fault/fault_injector.hpp"
#include "net/message.hpp"
#include "net/reliable/reliable_channel.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"

// Compile-time gate (CMake option DQEMU_ENABLE_FAULTS). When defined to 0
// the lossy-wire path is never taken and FaultConfig::enabled is inert.
#ifndef DQEMU_FAULTS_ENABLED
#define DQEMU_FAULTS_ENABLED 1
#endif

namespace dqemu::net {

/// The switch + all NICs. Owned by the Cluster; nodes attach handlers.
class Network {
 public:
  using Handler = std::function<void(Message)>;

  /// `stats` and `tracer` may be null; `queue` must outlive the Network.
  Network(sim::EventQueue& queue, NetworkConfig config,
          std::uint32_t node_count, StatsRegistry* stats = nullptr,
          trace::Tracer* tracer = nullptr, FaultConfig faults = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the delivery callback for `node`. Must be called before any
  /// message addressed to that node is delivered.
  void attach(NodeId node, Handler handler);

  /// Queues `msg` for delivery. Loopback (src == dst) messages skip the
  /// wire and pay only `loopback_latency`.
  void send(Message msg);

  /// Earliest time a new message from `node` could start serializing.
  [[nodiscard]] TimePs egress_free_at(NodeId node) const {
    return egress_free_[node];
  }

  /// Current virtual time (convenience for layers that hold only the
  /// network reference).
  [[nodiscard]] TimePs now() const { return queue_.now(); }

  /// Current virtual time of `ctx`'s execution context. Identical to
  /// now() in the serial kernel; the partitioned kernel resolves the
  /// caller's own queue (per-node clocks differ inside a window).
  [[nodiscard]] TimePs now(NodeId ctx) const {
    return queues_.empty() ? queue_.now() : queues_[ctx]->now();
  }

  /// The event queue driving this network. Protocol watchdogs (DSM fault /
  /// lease-recall timeouts) arm their timers here.
  [[nodiscard]] sim::EventQueue& queue() { return queue_; }

  /// `node`'s own event queue — where that node's timers must live so
  /// they fire in its execution context. The shared queue unless
  /// bind_queues was called.
  [[nodiscard]] sim::EventQueue& queue_for(NodeId node) {
    return queues_.empty() ? queue_ : *queues_[node];
  }

  /// Parallel scheduler (DESIGN.md §16): gives every node its own event
  /// queue. Deliveries then cross queues as barrier-drained posts ordered
  /// by (time, src, send order); the reliable channel rebinds its per-link
  /// timers to the owning ends. Call once, before any traffic.
  void bind_queues(const std::vector<sim::EventQueue*>& queues);

  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  /// True when the lossy-wire + reliable-channel path is active (both the
  /// compile-time and the runtime gate are on).
  [[nodiscard]] bool faults_active() const { return reliable_ != nullptr; }

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------

  /// Installs the bounded give-up callback (fires in the suspecting node's
  /// context when FaultConfig::giveup_retrans trips). The network's own
  /// dead filter for that (observer, peer) pair is set before the hook
  /// runs, so the observer is already quiet when the hook fires.
  void set_peer_dead_hook(ReliableChannel::PeerDeadFn fn) {
    user_peer_dead_ = std::move(fn);
  }

  /// Crash teardown, run in `dead`'s own execution context: cancels every
  /// channel timer the dead node owns and black-holes future arrivals to
  /// it. Part of Node::crash's last gasp.
  void silence(NodeId dead) {
    if (reliable_ != nullptr) reliable_->silence(dead);
  }

  /// Survivor-side reaction to a kNodeDead notice, run in `observer`'s own
  /// execution context: future sends observer->dead are dropped (except
  /// crash-plane messages) and the observer's halves of both links are
  /// torn down. Each (observer, dead) entry is written only by observer's
  /// context and read only on observer's own sends — race-free under the
  /// partitioned kernel.
  void note_peer_dead(NodeId observer, NodeId dead);

  /// True when `observer` has been told `node` is dead.
  [[nodiscard]] bool peer_dead(NodeId observer, NodeId node) const {
    return peer_dead_[static_cast<std::size_t>(observer) * node_count_ +
                      node] != 0;
  }

 private:
  void deliver(Message msg);
  /// Puts one physical copy on the lossy wire: charges the egress model,
  /// consults the fault injector, and schedules the arrival(s) into the
  /// reliable channel. Fault path only.
  void transmit(Message msg, TxKind kind);
  /// Schedules `fn` at `when` in dst's context, from src's context: a
  /// plain schedule_at on a shared queue, a deterministic cross-queue post
  /// otherwise. `when` is always >= the conservative window bound
  /// (NetworkConfig::lookahead) past src's clock, which is what makes the
  /// post invisible until the next window barrier safe.
  void schedule_into(NodeId src, NodeId dst, TimePs when,
                     sim::EventQueue::Callback fn);

  sim::EventQueue& queue_;
  NetworkConfig config_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  std::vector<Handler> handlers_;
  /// Per-node egress link occupancy (bandwidth serialization point).
  std::vector<TimePs> egress_free_;
  /// Per (src,dst) channel: last scheduled delivery time, for FIFO order.
  /// Reliable-path traffic skips this clamp — the receive-side sequence
  /// check supersedes it.
  std::vector<TimePs> channel_last_;
  std::uint32_t node_count_;
  /// Per-node queues when running partitioned; empty in the serial kernel.
  std::vector<sim::EventQueue*> queues_;
  /// Per src node: cross-queue posts issued, the deterministic order key
  /// for posts at equal times. Owned by src's execution context.
  std::vector<std::uint64_t> post_order_;

  FaultConfig faults_;
  std::unique_ptr<FaultInjector> injector_;   ///< non-null iff faults active
  std::unique_ptr<ReliableChannel> reliable_; ///< non-null iff faults active
  /// Per-observer dead-peer bitmap, [observer * node_count_ + node]. All
  /// zero unless the node-fault plane declares a crash (see note_peer_dead
  /// for the context-ownership argument).
  std::vector<std::uint8_t> peer_dead_;
  /// Embedder's give-up callback, run after the dead filter is set.
  ReliableChannel::PeerDeadFn user_peer_dead_;
};

}  // namespace dqemu::net
