#include "net/reliable/reliable_channel.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dqemu::net {

ReliableChannel::Link& ReliableChannel::link(NodeId src, NodeId dst) {
  auto it = links_.find({src, dst});
  if (it == links_.end()) {
    it = links_
             .emplace(std::piecewise_construct,
                      std::forward_as_tuple(src, dst),
                      std::forward_as_tuple(queue_for(src), queue_for(dst),
                                            config_.retrans_timeout))
             .first;
  }
  return it->second;
}

void ReliableChannel::bind_queues(
    const std::vector<sim::EventQueue*>& queues) {
  DQEMU_CHECK(links_.empty(),
              "net: reliable channel rebound after traffic started");
  queues_ = queues;
  // Pre-size so silence() never reallocates while windows run concurrently;
  // each entry is only ever written by its own node's context.
  silenced_.assign(queues.size(), 0);
  // Eagerly create every directed link so the map never mutates while
  // windows execute concurrently; link() then always hits.
  const auto n = static_cast<NodeId>(queues_.size());
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src != dst) link(src, dst);
    }
  }
}

void ReliableChannel::bump(const char* counter, std::uint64_t delta) {
  if (stats_ != nullptr) stats_->add(counter, delta);
}

void ReliableChannel::trace_step(const Message& msg, const char* name,
                                 NodeId node) {
  if (msg.flow == 0 || !trace::wants(tracer_, trace::Cat::kNet)) return;
  trace::Record r;
  r.time = queue_for(node).now();
  r.node = node;
  r.track = trace::kTrackNic;
  r.cat = trace::Cat::kNet;
  r.kind = trace::Kind::kFlowStep;
  r.name = name;
  r.flow = msg.flow;
  r.a = msg.seq;
  r.b = msg.type;
  tracer_->record(r);
}

void ReliableChannel::send(Message msg) {
  Link& out = link(msg.src, msg.dst);
  if (out.gone || silenced(msg.src)) {
    // The peer is dead (or the sender itself is): queueing would retransmit
    // into a void forever. Drop without consuming a sequence number so the
    // link's seq space stays gapless for any later traffic audit.
    bump("net.dead_dropped");
    return;
  }
  msg.seq = out.next_seq++;
  // Piggyback the cumulative ack for traffic flowing the other way; that
  // makes the pure ack the reverse receiver half owes redundant.
  Link& rev = link(msg.dst, msg.src);
  msg.ack = rev.last_in_order;
  rev.ack_due.cancel();

  out.unacked.push_back(msg);
  if (!out.retrans.armed()) {
    const NodeId src = msg.src, dst = msg.dst;
    out.retrans.arm(out.rto, [this, src, dst] { retransmit_all(src, dst); });
  }
  transmit_(std::move(msg), TxKind::kData);
}

void ReliableChannel::process_ack(NodeId from, NodeId to, std::uint64_t ack) {
  Link& l = link(from, to);
  bool progress = false;
  while (!l.unacked.empty() && l.unacked.front().seq <= ack) {
    l.unacked.pop_front();
    progress = true;
  }
  if (!progress) return;
  // New data was acknowledged: the path is alive, so restart the timer at
  // the base timeout instead of whatever backoff a loss burst built up,
  // and reset the give-up stall counter.
  l.rto = config_.retrans_timeout;
  l.stall_rounds = 0;
  if (l.unacked.empty()) {
    l.retrans.cancel();
  } else {
    l.retrans.arm(l.rto, [this, from, to] { retransmit_all(from, to); });
  }
}

void ReliableChannel::retransmit_all(NodeId src, NodeId dst) {
  Link& l = link(src, dst);
  if (l.unacked.empty()) return;
  // Bounded give-up (DESIGN.md §18): after giveup_retrans consecutive
  // zero-progress rounds the sender declares the peer dead, abandons the
  // backlog and stops re-arming — a crashed peer must not keep generating
  // wire traffic forever. Opt-in (0 = retry forever, the pre-§18 behaviour)
  // because a long pause-and-rejoin straggler would otherwise false-trip it.
  if (config_.giveup_retrans > 0 && ++l.stall_rounds >= config_.giveup_retrans) {
    bump("net.peer_dead");
    bump("net.dead_dropped", l.unacked.size());
    l.unacked.clear();
    l.gone = true;
    if (peer_dead_) peer_dead_(src, dst);
    return;
  }
  bump("net.retrans", l.unacked.size());
  Link& rev = link(dst, src);
  rev.ack_due.cancel();  // every retransmission re-advertises the ack
  for (const Message& stored : l.unacked) {
    Message copy = stored;
    copy.ack = rev.last_in_order;
    transmit_(std::move(copy), TxKind::kRetrans);
  }
  // Exponential backoff, capped: a dead peer must not melt the simulated
  // switch, and the cap bounds recovery latency once it comes back.
  l.rto = std::min<DurationPs>(l.rto * 2, config_.retrans_cap);
  l.retrans.arm(l.rto, [this, src, dst] { retransmit_all(src, dst); });
}

void ReliableChannel::schedule_ack(NodeId data_src, NodeId data_dst) {
  Link& in = link(data_src, data_dst);
  if (in.ack_due.armed()) return;
  in.ack_due.arm(config_.ack_delay, [this, data_src, data_dst] {
    Message ack;
    ack.src = data_dst;
    ack.dst = data_src;
    ack.type = kNetAck;
    ack.seq = 0;  // pure acks are unsequenced and never retransmitted
    ack.ack = link(data_src, data_dst).last_in_order;
    bump("net.acks");
    transmit_(std::move(ack), TxKind::kAck);
  });
}

void ReliableChannel::silence(NodeId dead) {
  if (silenced_.size() <= dead) silenced_.resize(dead + 1, 0);  // serial only
  silenced_[dead] = 1;
  // Cancel every timer the dead node's context owns: retransmits on its
  // outgoing links (sender halves) and delayed acks on its incoming ones
  // (receiver halves). Touching only dead-owned halves keeps this safe to
  // run inside a parallel window — the map itself is never mutated after
  // bind_queues, and the other half of each link belongs to the peer.
  for (auto& [key, l] : links_) {
    if (key.first == dead) {
      l.retrans.cancel();
      l.unacked.clear();
      l.gone = true;
    }
    if (key.second == dead) {
      l.ack_due.cancel();
      l.held.clear();
    }
  }
}

void ReliableChannel::on_peer_dead(NodeId self, NodeId dead) {
  Link& out = link(self, dead);
  if (!out.unacked.empty()) bump("net.dead_dropped", out.unacked.size());
  out.retrans.cancel();
  out.unacked.clear();
  out.gone = true;
  Link& in = link(dead, self);
  in.ack_due.cancel();
  in.held.clear();
}

void ReliableChannel::on_wire_arrival(Message msg) {
  // A silenced (crashed) node acks nothing and delivers nothing: black-hole
  // anything still in flight toward it, including retransmissions and acks.
  if (silenced(msg.dst)) {
    bump("net.dead_black_holed");
    return;
  }
  // Straggler window: the destination's communicator thread is wedged, so
  // everything that lands during the pause is processed at the window end.
  // This runs in msg.dst's context; the deferral stays on its own queue.
  sim::EventQueue& dst_queue = queue_for(msg.dst);
  TimePs until = 0;
  if (config_.paused_at(msg.dst, dst_queue.now(), &until)) {
    bump("net.paused_deferrals");
    dst_queue.schedule_at(until, [this, m = std::move(msg)]() mutable {
      on_wire_arrival(std::move(m));
    });
    return;
  }

  process_ack(msg.dst, msg.src, msg.ack);

  if (msg.type == kNetAck) {
    // A pure ack carries no payload to deliver; close its trace flow.
    if (msg.flow != 0 && trace::wants(tracer_, trace::Cat::kNet)) {
      trace::Record r;
      r.time = dst_queue.now();
      r.node = msg.dst;
      r.track = trace::kTrackNic;
      r.cat = trace::Cat::kNet;
      r.kind = trace::Kind::kFlowEnd;
      r.name = "net.msg";
      r.flow = msg.flow;
      r.a = msg.ack;
      r.b = msg.type;
      tracer_->record(r);
    }
    return;
  }
  DQEMU_CHECK(msg.seq != 0,
              "net: unsequenced non-ack message type=0x%x on reliable link "
              "%u->%u",
              msg.type, unsigned(msg.src), unsigned(msg.dst));

  Link& in = link(msg.src, msg.dst);
  if (msg.seq <= in.last_in_order) {
    // Duplicate (wire dup, or a retransmission racing our lost ack).
    // Suppress it, but make sure a fresh cumulative ack goes back so the
    // sender stops retransmitting.
    bump("net.dup_suppressed");
    trace_step(msg, "net.dup.drop", msg.dst);
    schedule_ack(msg.src, msg.dst);
    return;
  }

  if (msg.seq == in.last_in_order + 1) {
    const NodeId src = msg.src, dst = msg.dst;
    in.last_in_order = msg.seq;
    // Arm the ack before delivering: if the handler answers with reverse
    // traffic the piggyback cancels this timer again.
    schedule_ack(src, dst);
    deliver_(std::move(msg));
    // The gap may have been the only thing holding back later arrivals.
    auto it = in.held.begin();
    while (it != in.held.end() && it->first == in.last_in_order + 1) {
      in.last_in_order = it->first;
      deliver_(std::move(it->second));
      it = in.held.erase(it);
    }
    return;
  }

  // Gap: an earlier message on this link is missing (dropped or delayed).
  // Hold this one back — delivering it now would break the per-channel FIFO
  // order the protocol correctness arguments need.
  if (in.held.emplace(msg.seq, msg).second) {
    bump("net.ooo_held");
    trace_step(msg, "net.held", msg.dst);
  } else {
    bump("net.dup_suppressed");
  }
  schedule_ack(msg.src, msg.dst);
}

}  // namespace dqemu::net
