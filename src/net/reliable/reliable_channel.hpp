// Go-back-N reliable delivery sublayer (DESIGN.md §13).
//
// Sits between Network::send and the lossy wire when fault injection is
// active. Every directed (src, dst) link carries its own sequence-number
// space; the receive side suppresses duplicates and holds out-of-order
// arrivals back until the gap fills, so the layer above observes exactly
// the per-channel FIFO, exactly-once delivery the §7/§11 no-lost-wakeup
// arguments assume. Acks are cumulative and piggybacked on reverse traffic,
// with a delayed pure ack (kNetAck) when no reverse traffic shows up; the
// sender retransmits every unacked message on a timer with exponential
// backoff capped at FaultConfig::retrans_cap.
//
// The class is wire-agnostic: the owning Network supplies a transmit hook
// (wire model + fault injection) and a deliver hook (handler dispatch), so
// unit tests can run the protocol over a toy wire.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "net/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/timer.hpp"
#include "trace/tracer.hpp"

namespace dqemu::net {

/// Why a physical transmission is happening, for trace naming and stats.
enum class TxKind {
  kData,     ///< first transmission of an application message
  kRetrans,  ///< go-back-N retransmission after an RTO
  kAck,      ///< pure cumulative acknowledgement (unsequenced)
};

class ReliableChannel {
 public:
  /// Puts one physical copy of the message on the (lossy) wire.
  using TransmitFn = std::function<void(Message, TxKind)>;
  /// Hands one in-order, deduplicated message to the destination node.
  using DeliverFn = std::function<void(Message)>;
  /// Bounded give-up fired in `self`'s execution context: after
  /// FaultConfig::giveup_retrans consecutive zero-progress retransmit
  /// rounds, `self` suspects `peer` is dead and abandons the link. The
  /// fault plane uses this to report the suspected crash.
  using PeerDeadFn = std::function<void(NodeId self, NodeId peer)>;

  ReliableChannel(sim::EventQueue& queue, const FaultConfig& config,
                  StatsRegistry* stats, trace::Tracer* tracer,
                  TransmitFn transmit, DeliverFn deliver)
      : queue_(queue),
        config_(config),
        stats_(stats),
        tracer_(tracer),
        transmit_(std::move(transmit)),
        deliver_(std::move(deliver)) {}

  ReliableChannel(const ReliableChannel&) = delete;
  ReliableChannel& operator=(const ReliableChannel&) = delete;

  /// Application-level send: assigns the next sequence number on the
  /// (src, dst) link, piggybacks the reverse channel's cumulative ack,
  /// stores the message for retransmission and transmits the first copy.
  void send(Message msg);

  /// Called by the wire for every physical arrival at msg.dst (including
  /// duplicates, retransmissions and pure acks). Runs the receive-side
  /// state machine; may invoke the deliver hook zero or more times.
  void on_wire_arrival(Message msg);

  /// Parallel scheduler (DESIGN.md §16): gives every node its own event
  /// queue and eagerly creates all n^2 links with their timers bound to
  /// the owning ends — the retransmit timer fires in the sender's context,
  /// the delayed-ack timer in the receiver's — so the link map is never
  /// mutated while windows execute concurrently. Call before any traffic.
  void bind_queues(const std::vector<sim::EventQueue*>& queues);

  /// Installs the bounded give-up callback (see PeerDeadFn). No-op unless
  /// FaultConfig::giveup_retrans > 0.
  void set_peer_dead_hook(PeerDeadFn fn) { peer_dead_ = std::move(fn); }

  /// Crash teardown, run in `dead`'s own execution context (DESIGN.md §18):
  /// cancels every timer the dead node owns — the retransmit timers of its
  /// outgoing links and the delayed-ack timers of its incoming ones — and
  /// drops its send/held state so nothing fires into a dead node's handler.
  /// After this the node neither transmits, retransmits, nor acks: arrivals
  /// addressed to it are black-holed in on_wire_arrival.
  void silence(NodeId dead);

  /// Survivor-side link teardown, run in `self`'s own execution context on
  /// a kNodeDead notification: abandons the self->dead sender half (cancel
  /// retransmits, drop unacked — the peer will never ack) and the dead->self
  /// receiver half (cancel the pending pure ack, drop held-back arrivals).
  void on_peer_dead(NodeId self, NodeId dead);

 private:
  /// State of one directed link. The sender half tracks messages this link
  /// originated; the receiver half tracks what arrived on it — each half
  /// is touched only by its owning end's execution context. The receiver
  /// half's ack timer emits the reverse-direction pure ack.
  struct Link {
    Link(sim::EventQueue& sender_queue, sim::EventQueue& receiver_queue,
         DurationPs rto0)
        : rto(rto0), retrans(sender_queue), ack_due(receiver_queue) {}

    // Sender half.
    std::uint64_t next_seq = 1;
    std::deque<Message> unacked;  ///< in seq order; front = oldest
    DurationPs rto;               ///< current timeout (backed off on fire)
    sim::Timer retrans;
    /// Consecutive retransmit rounds with zero ack progress; reset whenever
    /// process_ack pops anything. Drives the bounded give-up.
    std::uint32_t stall_rounds = 0;
    /// Set once the sender has given up on (or been told about) a dead
    /// peer: sends on this link are dropped instead of queued forever.
    bool gone = false;

    // Receiver half.
    std::uint64_t last_in_order = 0;  ///< cumulative ack we advertise
    std::map<std::uint64_t, Message> held;  ///< out-of-order, by seq
    sim::Timer ack_due;
  };

  Link& link(NodeId src, NodeId dst);
  /// Event queue of `node`'s execution context (the shared queue unless
  /// bind_queues was called).
  [[nodiscard]] sim::EventQueue& queue_for(NodeId node) {
    return queues_.empty() ? queue_ : *queues_[node];
  }
  void process_ack(NodeId from, NodeId to, std::uint64_t ack);
  void retransmit_all(NodeId src, NodeId dst);
  void schedule_ack(NodeId from, NodeId to);
  [[nodiscard]] bool silenced(NodeId node) const {
    return node < silenced_.size() && silenced_[node] != 0;
  }
  void bump(const char* counter, std::uint64_t delta = 1);
  void trace_step(const Message& msg, const char* name, NodeId node);

  sim::EventQueue& queue_;
  const FaultConfig& config_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  TransmitFn transmit_;
  DeliverFn deliver_;
  PeerDeadFn peer_dead_;
  /// Nodes silenced by a crash. Written only in the silenced node's own
  /// execution context and read only on that node's links, so partitioned
  /// windows never race on an entry. Sized by bind_queues in the parallel
  /// kernel; grown lazily (single context, safe) in the serial one.
  std::vector<std::uint8_t> silenced_;
  /// Per-node queues when running partitioned; empty in the serial kernel.
  std::vector<sim::EventQueue*> queues_;
  /// Directed links, created on first use (serial) or all at bind_queues
  /// time (parallel). std::map keeps Link addresses stable, which the
  /// embedded (non-movable) timers require.
  std::map<std::pair<NodeId, NodeId>, Link> links_;
};

}  // namespace dqemu::net
