// Network message envelope.
//
// The network layer is protocol-agnostic: a message carries an opaque type
// tag, four scalar header fields and an optional byte payload (page
// contents, syscall argument buffers). Higher layers (DSM, syscall
// delegation, thread migration) define the meaning of the fields. Keeping
// the scalars unserialized avoids a codec while `wire_bytes()` still gives
// the byte count the bandwidth model charges for.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dqemu::net {

/// One message in flight between two nodes (or looped back to the sender).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t type = 0;  ///< protocol-defined discriminator

  // Protocol-defined scalar header fields (e.g. guest address, thread id,
  // request serial). Counted as 32 wire bytes.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;

  /// Bulk payload: page bytes, CPU context snapshots, syscall buffers.
  std::vector<std::uint8_t> data;

  /// Flight-recorder causal id (DESIGN.md §9). Simulation-side metadata —
  /// not a wire field, never charged by the bandwidth model. 0 means the
  /// message is not part of a recorded chain; the network auto-assigns an
  /// id for otherwise-unchained messages when tracing is active.
  std::uint64_t flow = 0;

  /// Bytes this message occupies on the wire, excluding the link-level
  /// header the NetworkConfig adds.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return 4 /*type*/ + 4 * 8 /*scalars*/ + data.size();
  }
};

}  // namespace dqemu::net
