// Network message envelope.
//
// The network layer is protocol-agnostic: a message carries an opaque type
// tag, four scalar header fields and an optional byte payload (page
// contents, syscall argument buffers). Higher layers (DSM, syscall
// delegation, thread migration) define the meaning of the fields. Keeping
// the scalars unserialized avoids a codec while `wire_bytes()` still gives
// the byte count the bandwidth model charges for.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dqemu::net {

/// Message types below 0x100 are reserved for the network layer itself
/// (protocols start at 0x100: DSM 0x1xx, syscalls 0x2xx, core 0x3xx).
/// kNetAck is a pure cumulative acknowledgement emitted by the reliable
/// channel when no reverse traffic is available to piggyback on.
inline constexpr std::uint32_t kNetAck = 0x001;

/// One message in flight between two nodes (or looped back to the sender).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t type = 0;  ///< protocol-defined discriminator

  // Protocol-defined scalar header fields (e.g. guest address, thread id,
  // request serial). Counted as 32 wire bytes.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;

  /// Bulk payload: page bytes, CPU context snapshots, syscall buffers.
  std::vector<std::uint8_t> data;

  // Reliable-channel header (DESIGN.md §13), populated by the network when
  // fault injection is active. seq is the per-(src,dst)-channel sequence
  // number (1-based; 0 = unsequenced, used by pure acks), ack the cumulative
  // highest in-order sequence received on the reverse channel. Modeled as
  // part of the 64-byte link header, so not charged by wire_bytes().
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;

  /// Flight-recorder causal id (DESIGN.md §9). Simulation-side metadata —
  /// not a wire field, never charged by the bandwidth model. 0 means the
  /// message is not part of a recorded chain; the network auto-assigns an
  /// id for otherwise-unchained messages when tracing is active.
  std::uint64_t flow = 0;

  /// Bytes this message occupies on the wire, excluding the link-level
  /// header the NetworkConfig adds.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return 4 /*type*/ + 4 * 8 /*scalars*/ + data.size();
  }
};

// ---- relay encoding (home sharding, DESIGN.md §17) ------------------------
//
// Under first-touch placement only the master holds the authoritative
// page->home map, so a request from a node that has not yet learned a
// page's home is sent to the master and relayed to the true home (at most
// two hops: a home never moves once assigned). The relay keeps the master
// as the wire-level sender — channel FIFO order and occupancy stay per
// physical link — and carries the original requester in the high half of a
// scalar the relayable requests leave free (`c` for DSM page requests and
// kSyscallReq/kLeaseReq). Encoded as node+1 so 0 keeps meaning "not
// relayed".

[[nodiscard]] inline constexpr std::uint64_t relay_mark(NodeId requester) {
  return (static_cast<std::uint64_t>(requester) + 1) << 32;
}

/// The node a (possibly relayed) request originates from: the relay mark
/// in `scalar` when present, else the wire-level sender.
[[nodiscard]] inline NodeId relayed_requester(const Message& msg,
                                              std::uint64_t scalar) {
  const std::uint64_t hi = scalar >> 32;
  return hi != 0 ? static_cast<NodeId>(hi - 1) : msg.src;
}

}  // namespace dqemu::net
