// Network message envelope.
//
// The network layer is protocol-agnostic: a message carries an opaque type
// tag, four scalar header fields and an optional byte payload (page
// contents, syscall argument buffers). Higher layers (DSM, syscall
// delegation, thread migration) define the meaning of the fields. Keeping
// the scalars unserialized avoids a codec while `wire_bytes()` still gives
// the byte count the bandwidth model charges for.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dqemu::net {

/// Message types below 0x100 are reserved for the network layer itself
/// (protocols start at 0x100: DSM 0x1xx, syscalls 0x2xx, core 0x3xx).
/// kNetAck is a pure cumulative acknowledgement emitted by the reliable
/// channel when no reverse traffic is available to piggyback on.
inline constexpr std::uint32_t kNetAck = 0x001;

/// One message in flight between two nodes (or looped back to the sender).
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t type = 0;  ///< protocol-defined discriminator

  // Protocol-defined scalar header fields (e.g. guest address, thread id,
  // request serial). Counted as 32 wire bytes.
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;

  /// Bulk payload: page bytes, CPU context snapshots, syscall buffers.
  std::vector<std::uint8_t> data;

  // Reliable-channel header (DESIGN.md §13), populated by the network when
  // fault injection is active. seq is the per-(src,dst)-channel sequence
  // number (1-based; 0 = unsequenced, used by pure acks), ack the cumulative
  // highest in-order sequence received on the reverse channel. Modeled as
  // part of the 64-byte link header, so not charged by wire_bytes().
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;

  /// Flight-recorder causal id (DESIGN.md §9). Simulation-side metadata —
  /// not a wire field, never charged by the bandwidth model. 0 means the
  /// message is not part of a recorded chain; the network auto-assigns an
  /// id for otherwise-unchained messages when tracing is active.
  std::uint64_t flow = 0;

  /// Bytes this message occupies on the wire, excluding the link-level
  /// header the NetworkConfig adds.
  [[nodiscard]] std::uint64_t wire_bytes() const {
    return 4 /*type*/ + 4 * 8 /*scalars*/ + data.size();
  }
};

}  // namespace dqemu::net
