#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/log.hpp"

namespace dqemu::net {

Network::Network(sim::EventQueue& queue, NetworkConfig config,
                 std::uint32_t node_count, StatsRegistry* stats,
                 trace::Tracer* tracer)
    : queue_(queue),
      config_(config),
      stats_(stats),
      tracer_(tracer),
      handlers_(node_count),
      egress_free_(node_count, 0),
      channel_last_(static_cast<std::size_t>(node_count) * node_count, 0),
      node_count_(node_count) {}

void Network::attach(NodeId node, Handler handler) {
  assert(node < handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::send(Message msg) {
  assert(msg.src < node_count_ && msg.dst < node_count_);
  const TimePs now = queue_.now();

  // Flight recorder: every message is an edge in some causal chain. A
  // message already stamped by a higher layer (DSM fault, delegated
  // syscall) records a step in that chain; an unchained one opens its own.
  if (trace::wants(tracer_, trace::Cat::kNet)) {
    trace::Record r;
    r.time = now;
    r.node = msg.src;
    r.track = trace::kTrackNic;
    r.cat = trace::Cat::kNet;
    r.a = msg.wire_bytes();
    r.b = msg.type;
    if (msg.flow == 0) {
      msg.flow = tracer_->new_flow() | trace::kAutoFlowBit;
      r.kind = trace::Kind::kFlowBegin;
      r.name = "net.msg";
    } else {
      r.kind = trace::Kind::kFlowStep;
      r.name = "net.send";
    }
    r.flow = msg.flow;
    tracer_->record(r);
  }

  TimePs delivery;
  if (msg.src == msg.dst) {
    delivery = now + config_.loopback_latency;
  } else {
    const std::uint64_t bytes = msg.wire_bytes();
    // Sender-side software path, then wait for the egress link.
    const TimePs tx_ready = now + config_.endpoint_overhead;
    const TimePs tx_start = std::max(tx_ready, egress_free_[msg.src]);
    const TimePs tx_end = tx_start + config_.wire_time(bytes);
    egress_free_[msg.src] = tx_end;
    delivery = tx_end + config_.one_way_latency + config_.endpoint_overhead;

    if (stats_ != nullptr) {
      stats_->add("net.messages");
      stats_->add("net.bytes", bytes + config_.header_bytes);
    }
  }

  // FIFO per channel: never deliver before an earlier message on the same
  // (src, dst) stream.
  TimePs& last = channel_last_[static_cast<std::size_t>(msg.src) * node_count_ +
                               msg.dst];
  delivery = std::max(delivery, last);
  last = delivery;

  queue_.schedule_at(delivery, [this, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  });
}

void Network::deliver(Message msg) {
  const auto& handler = handlers_[msg.dst];
  assert(handler && "message delivered to a node with no handler attached");
  DQEMU_TRACE("net: deliver type=%u %u->%u (%llu bytes)", msg.type,
              unsigned(msg.src), unsigned(msg.dst),
              static_cast<unsigned long long>(msg.wire_bytes()));
  if (msg.flow != 0 && trace::wants(tracer_, trace::Cat::kNet)) {
    trace::Record r;
    r.time = queue_.now();
    r.node = msg.dst;
    r.track = trace::kTrackNic;
    r.cat = trace::Cat::kNet;
    r.flow = msg.flow;
    r.a = msg.wire_bytes();
    r.b = msg.type;
    const bool net_owned = (msg.flow & trace::kAutoFlowBit) != 0;
    r.kind = net_owned ? trace::Kind::kFlowEnd : trace::Kind::kFlowStep;
    r.name = net_owned ? "net.msg" : "net.deliver";
    tracer_->record(r);
  }
  handler(std::move(msg));
}

}  // namespace dqemu::net
