#include "net/network.hpp"

#include <algorithm>
#include <utility>

#include "common/log.hpp"
#include "net/fault/node_faults.hpp"

namespace dqemu::net {

Network::Network(sim::EventQueue& queue, NetworkConfig config,
                 std::uint32_t node_count, StatsRegistry* stats,
                 trace::Tracer* tracer, FaultConfig faults)
    : queue_(queue),
      config_(config),
      stats_(stats),
      tracer_(tracer),
      handlers_(node_count),
      egress_free_(node_count, 0),
      channel_last_(static_cast<std::size_t>(node_count) * node_count, 0),
      node_count_(node_count),
      post_order_(node_count, 0),
      faults_(std::move(faults)),
      peer_dead_(static_cast<std::size_t>(node_count) * node_count, 0) {
#if DQEMU_FAULTS_ENABLED
  if (faults_.enabled) {
    injector_ = std::make_unique<FaultInjector>(faults_, node_count);
    reliable_ = std::make_unique<ReliableChannel>(
        queue_, faults_, stats_, tracer_,
        [this](Message m, TxKind kind) { transmit(std::move(m), kind); },
        [this](Message m) { deliver(std::move(m)); });
    // Bounded give-up: the declaring node immediately stops sending to the
    // suspect (its own dead filter), then the embedder's hook decides what
    // else to do (report to the fault plane, sweep state).
    reliable_->set_peer_dead_hook([this](NodeId self, NodeId peer) {
      peer_dead_[static_cast<std::size_t>(self) * node_count_ + peer] = 1;
      if (user_peer_dead_) user_peer_dead_(self, peer);
    });
  }
#endif
}

void Network::bind_queues(const std::vector<sim::EventQueue*>& queues) {
  DQEMU_CHECK(queues.size() == node_count_,
              "net: bind_queues with %zu queues for %u nodes", queues.size(),
              node_count_);
  queues_ = queues;
  if (reliable_ != nullptr) reliable_->bind_queues(queues);
}

void Network::schedule_into(NodeId src, NodeId dst, TimePs when,
                            sim::EventQueue::Callback fn) {
  sim::EventQueue& dst_queue = queue_for(dst);
  if (queues_.empty() || &queue_for(src) == &dst_queue) {
    dst_queue.schedule_at(when, std::move(fn));
  } else {
    dst_queue.post(when, src, post_order_[src]++, std::move(fn));
  }
}

void Network::attach(NodeId node, Handler handler) {
  DQEMU_CHECK(node < handlers_.size(),
              "net: attach for out-of-range node %u (cluster has %zu nodes)",
              unsigned(node), handlers_.size());
  handlers_[node] = std::move(handler);
}

void Network::send(Message msg) {
  DQEMU_CHECK(msg.src < node_count_ && msg.dst < node_count_,
              "net: send type=0x%x with out-of-range endpoint %u->%u "
              "(cluster has %u nodes)",
              msg.type, unsigned(msg.src), unsigned(msg.dst), node_count_);
  // A sender that has seen a kNodeDead notice for the destination drops the
  // message instead of feeding the reliable channel a backlog it would
  // retransmit into a void. Crash-plane messages are exempt: the recovery
  // protocol itself must still flow (net/fault/node_faults.hpp).
  if (peer_dead(msg.src, msg.dst) && !is_crash_plane(msg.type)) {
    if (stats_ != nullptr) stats_->add("net.dead_dropped");
    return;
  }
  // send() always runs in the source's execution context.
  const TimePs now = queue_for(msg.src).now();

  if (reliable_ != nullptr && msg.src != msg.dst) {
    // Lossy-wire path. Assign the net-owned trace flow up front so the
    // retransmit copies the channel stores share it.
    if (msg.flow == 0 && trace::wants(tracer_, trace::Cat::kNet)) {
      msg.flow = tracer_->new_flow() | trace::kAutoFlowBit;
    }
    reliable_->send(std::move(msg));
    return;
  }

  // Flight recorder: every message is an edge in some causal chain. A
  // message already stamped by a higher layer (DSM fault, delegated
  // syscall) records a step in that chain; an unchained one opens its own.
  if (trace::wants(tracer_, trace::Cat::kNet)) {
    trace::Record r;
    r.time = now;
    r.node = msg.src;
    r.track = trace::kTrackNic;
    r.cat = trace::Cat::kNet;
    r.a = msg.wire_bytes();
    r.b = msg.type;
    if (msg.flow == 0) {
      msg.flow = tracer_->new_flow() | trace::kAutoFlowBit;
      r.kind = trace::Kind::kFlowBegin;
      r.name = "net.msg";
    } else {
      r.kind = trace::Kind::kFlowStep;
      r.name = "net.send";
    }
    r.flow = msg.flow;
    tracer_->record(r);
  }

  TimePs delivery;
  if (msg.src == msg.dst) {
    delivery = now + config_.loopback_latency;
    // Loopback skips the wire model, so net.messages/net.bytes stay
    // untouched; this counter is what lets trace flows and wire stats
    // reconcile (every send-side flow record is one of the two).
    if (stats_ != nullptr) stats_->add("net.loopback");
  } else {
    const std::uint64_t bytes = msg.wire_bytes();
    // Sender-side software path, then wait for the egress link.
    const TimePs tx_ready = now + config_.endpoint_overhead;
    const TimePs tx_start = std::max(tx_ready, egress_free_[msg.src]);
    const TimePs tx_end = tx_start + config_.wire_time(bytes);
    egress_free_[msg.src] = tx_end;
    delivery = tx_end + config_.one_way_latency + config_.endpoint_overhead;

    if (stats_ != nullptr) {
      stats_->add("net.messages");
      stats_->add("net.bytes", bytes + config_.header_bytes);
    }
  }

  // FIFO per channel: never deliver before an earlier message on the same
  // (src, dst) stream.
  TimePs& last = channel_last_[static_cast<std::size_t>(msg.src) * node_count_ +
                               msg.dst];
  delivery = std::max(delivery, last);
  last = delivery;

  const NodeId src = msg.src, dst = msg.dst;
  schedule_into(src, dst, delivery, [this, m = std::move(msg)]() mutable {
    deliver(std::move(m));
  });
}

void Network::transmit(Message msg, TxKind kind) {
  // Initial transmissions, retransmit-timer fires and pure-ack fires all
  // happen in the source's execution context.
  const TimePs now = queue_for(msg.src).now();
  const std::uint64_t bytes = msg.wire_bytes();

  // One send-side record per physical transmission: retransmissions show
  // up as extra "net.retrans" steps on the same flow, so a Chrome trace of
  // a lossy run shows the recovery, not just the eventual delivery.
  if (trace::wants(tracer_, trace::Cat::kNet)) {
    trace::Record r;
    r.time = now;
    r.node = msg.src;
    r.track = trace::kTrackNic;
    r.cat = trace::Cat::kNet;
    r.a = bytes;
    r.b = msg.type;
    const bool net_owned = (msg.flow & trace::kAutoFlowBit) != 0;
    if (msg.flow == 0) {
      // Only channel-internal messages (pure acks) reach the wire
      // unchained; data messages got their flow in Network::send.
      msg.flow = tracer_->new_flow() | trace::kAutoFlowBit;
      r.kind = trace::Kind::kFlowBegin;
      r.name = "net.msg";
    } else if (net_owned && kind == TxKind::kData) {
      r.kind = trace::Kind::kFlowBegin;
      r.name = "net.msg";
    } else {
      r.kind = trace::Kind::kFlowStep;
      r.name = kind == TxKind::kRetrans ? "net.retrans" : "net.send";
    }
    r.flow = msg.flow;
    tracer_->record(r);
  }

  if (stats_ != nullptr) {
    stats_->add("net.messages");
    stats_->add("net.bytes", bytes + config_.header_bytes);
  }

  // Same egress model as the reliable path: the packet leaves the NIC and
  // occupies the link whether or not the switch then loses it.
  const TimePs tx_ready = now + config_.endpoint_overhead;
  const TimePs tx_start = std::max(tx_ready, egress_free_[msg.src]);
  const TimePs tx_end = tx_start + config_.wire_time(bytes);
  egress_free_[msg.src] = tx_end;
  TimePs arrival = tx_end + config_.one_way_latency + config_.endpoint_overhead;

  // Crash-plane messages are "reliable by fiat": they skip the injector
  // entirely (no per-link counter is consumed, so every other message's
  // fault fate is unchanged by their presence) and arrive first try.
  const WireFate fate =
      is_crash_plane(msg.type) ? WireFate{} : injector_->decide(msg);
  if (fate.drop) {
    if (stats_ != nullptr) stats_->add("net.dropped");
    if (msg.flow != 0 && trace::wants(tracer_, trace::Cat::kNet)) {
      trace::Record r;
      r.time = now;
      r.node = msg.src;
      r.track = trace::kTrackNic;
      r.cat = trace::Cat::kNet;
      r.kind = trace::Kind::kFlowStep;
      r.name = "net.drop";
      r.flow = msg.flow;
      r.a = msg.seq;
      r.b = msg.type;
      tracer_->record(r);
    }
    DQEMU_TRACE("net: drop type=0x%x %u->%u seq=%llu", msg.type,
                unsigned(msg.src), unsigned(msg.dst),
                static_cast<unsigned long long>(msg.seq));
    return;  // no arrival; recovery is the sender's retransmit timer's job
  }
  arrival += fate.extra_delay;

  // No FIFO clamp here: jitter and reorder delays are the whole point, and
  // the receive-side sequence check restores delivery order.
  const NodeId src = msg.src, dst = msg.dst;
  if (fate.duplicate) {
    if (stats_ != nullptr) stats_->add("net.wire_dup");
    const TimePs dup_at = arrival + fate.dup_extra_delay;
    schedule_into(src, dst, dup_at, [this, m = msg]() mutable {
      reliable_->on_wire_arrival(std::move(m));
    });
  }
  schedule_into(src, dst, arrival, [this, m = std::move(msg)]() mutable {
    reliable_->on_wire_arrival(std::move(m));
  });
}

void Network::note_peer_dead(NodeId observer, NodeId dead) {
  peer_dead_[static_cast<std::size_t>(observer) * node_count_ + dead] = 1;
  if (reliable_ != nullptr) reliable_->on_peer_dead(observer, dead);
}

void Network::deliver(Message msg) {
  DQEMU_CHECK(msg.dst < handlers_.size() &&
                  static_cast<bool>(handlers_[msg.dst]),
              "net: message type=0x%x %u->%u delivered to a node with no "
              "handler attached",
              msg.type, unsigned(msg.src), unsigned(msg.dst));
  const auto& handler = handlers_[msg.dst];
  DQEMU_TRACE("net: deliver type=%u %u->%u (%llu bytes)", msg.type,
              unsigned(msg.src), unsigned(msg.dst),
              static_cast<unsigned long long>(msg.wire_bytes()));
  if (msg.flow != 0 && trace::wants(tracer_, trace::Cat::kNet)) {
    trace::Record r;
    r.time = queue_for(msg.dst).now();
    r.node = msg.dst;
    r.track = trace::kTrackNic;
    r.cat = trace::Cat::kNet;
    r.flow = msg.flow;
    r.a = msg.wire_bytes();
    r.b = msg.type;
    const bool net_owned = (msg.flow & trace::kAutoFlowBit) != 0;
    r.kind = net_owned ? trace::Kind::kFlowEnd : trace::Kind::kFlowStep;
    r.name = net_owned ? "net.msg" : "net.deliver";
    tracer_->record(r);
  }
  handler(std::move(msg));
}

}  // namespace dqemu::net
