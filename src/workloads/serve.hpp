// Guest-side worker pool for the serving plane (DESIGN.md §14).
//
// serve_pool() emits a GA32 program whose worker threads pull request
// descriptors from the master's load generator with the kServeGet syscall,
// run the class's service kernel (cheap ALU loop / medium read-shared
// table scan / heavy global-mutex critical section), report the kernel's
// checksum back with kServeDone and loop until the generator signals EOF.
// The program's only stdout is the total number of executions completed —
// requests x clones for any serve seed, which is what the determinism
// tests pin down.
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace dqemu::workloads {

struct ServePoolParams {
  /// Worker threads pulling from the load generator (cluster-wide; the
  /// scheduler spreads them over the slave nodes).
  std::uint32_t workers = 32;
  /// Words in the read-shared table the medium kernel scans (page-aligned
  /// static data; every word is one potential remote read fault).
  std::uint32_t table_words = 4096;
};

/// Emits the serve worker-pool guest program.
[[nodiscard]] Result<isa::Program> serve_pool(const ServePoolParams& params);

}  // namespace dqemu::workloads
