#include "workloads/parsec.hpp"

#include "common/rng.hpp"
#include "workloads/common.hpp"

namespace dqemu::workloads {

using isa::Assembler;
using isa::Sys;
using enum isa::Reg;
using enum isa::FReg;

// ---------------------------------------------------------------------------
// blackscholes
// ---------------------------------------------------------------------------

Result<isa::Program> blackscholes_like(const BlackscholesParams& params) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label input = a.make_label("input");    // 5 doubles per option
  Assembler::Label output = a.make_label("output");  // 1 double per option
  Assembler::Label barrier = a.make_label("barrier");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  const std::uint32_t n = params.options_n;
  const std::uint32_t threads = params.threads;

  // worker(a0 = idx): for reps passes, price options in
  // [idx*n/threads, (idx+1)*n/threads) and store into output[].
  {
    a.bind(worker);
    a.mov(kS0, kA0);
    // s1 = begin, s2 = end (contiguous partition)
    a.li(kT1, static_cast<std::int64_t>(n));
    a.mul(kT2, kS0, kT1);
    a.li(kT3, static_cast<std::int64_t>(threads));
    a.divu(kS1, kT2, kT3);
    a.addi(kT2, kS0, 1);
    a.mul(kT2, kT2, kT1);
    a.divu(kS2, kT2, kT3);

    // Hoisted constants.
    a.fli(kF13, 0.5, kT4);
    a.fli(kF14, 1.0, kT4);
    a.fli(kF15, 0.7071067811865476, kT4);  // 1/sqrt(2)

    Assembler::Label rep_loop = a.make_label();
    Assembler::Label opt_loop = a.make_label();
    Assembler::Label opt_done = a.make_label();
    a.li(kT0, static_cast<std::int64_t>(params.reps));
    a.bind(rep_loop);
    a.mov(kT1, kS1);  // i
    a.bind(opt_loop);
    a.bge(kT1, kS2, opt_done);
    // Load S,K,r,v,T from input[i*40].
    a.li(kT2, 40);
    a.mul(kT2, kT1, kT2);
    a.la(kT3, input);
    a.add(kT2, kT2, kT3);
    a.fld(kF0, kT2, 0);   // S
    a.fld(kF1, kT2, 8);   // K
    a.fld(kF2, kT2, 16);  // r
    a.fld(kF3, kT2, 24);  // v
    a.fld(kF4, kT2, 32);  // T
    // d1 = (log(S/K) + (r + v^2/2) T) / (v sqrt(T)); d2 = d1 - v sqrt(T)
    a.fdiv(kF5, kF0, kF1);
    a.flog(kF5, kF5);
    a.fmul(kF6, kF3, kF3);
    a.fmul(kF6, kF6, kF13);
    a.fadd(kF6, kF6, kF2);
    a.fmul(kF6, kF6, kF4);
    a.fadd(kF5, kF5, kF6);
    a.fsqrt(kF8, kF4);
    a.fmul(kF9, kF3, kF8);
    a.fdiv(kF5, kF5, kF9);   // d1
    a.fsub(kF6, kF5, kF9);   // d2
    // CDF(x) = 0.5 (1 + erf(x / sqrt 2))
    a.fmul(kF10, kF5, kF15);
    a.ferf(kF10, kF10);
    a.fadd(kF10, kF10, kF14);
    a.fmul(kF10, kF10, kF13);  // N(d1)
    a.fmul(kF11, kF6, kF15);
    a.ferf(kF11, kF11);
    a.fadd(kF11, kF11, kF14);
    a.fmul(kF11, kF11, kF13);  // N(d2)
    // price = S N(d1) - K exp(-rT) N(d2)
    a.fmul(kF10, kF0, kF10);
    a.fmul(kF12, kF2, kF4);
    a.fneg(kF12, kF12);
    a.fexp(kF12, kF12);
    a.fmul(kF12, kF12, kF1);
    a.fmul(kF12, kF12, kF11);
    a.fsub(kF10, kF10, kF12);
    // output[i] = price
    a.slli(kT2, kT1, 3);
    a.la(kT3, output);
    a.add(kT2, kT2, kT3);
    a.fsd(kT2, kF10, 0);
    a.addi(kT1, kT1, 1);
    a.j(opt_loop);
    a.bind(opt_done);
    a.addi(kT0, kT0, -1);
    a.bne(kT0, kZero, rep_loop);
    a.li(kA0, 0);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  options.epilogue = [&](Assembler& as) {
    // Checksum: sum of the first 8 prices, scaled, printed as u32.
    as.la(kT0, output);
    as.li(kT1, 0);
    as.fcvt_d_w(kF0, kT1);
    for (std::int32_t i = 0; i < 8; ++i) {
      as.fld(kF1, kT0, i * 8);
      as.fadd(kF0, kF0, kF1);
    }
    as.fli(kF2, 1000.0, kT4);
    as.fmul(kF0, kF0, kF2);
    as.fcvt_w_d(kA0, kF0);
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  // Host-generated input (the paper reads PARSEC's input file; the access
  // pattern, not the values, is what matters).
  Rng rng(0xB5C0FFEEULL);
  a.d_align(4096);
  a.bind_data(input);
  for (std::uint32_t i = 0; i < n; ++i) {
    a.d_double(rng.next_double(10.0, 200.0));   // S
    a.d_double(rng.next_double(10.0, 200.0));   // K
    a.d_double(rng.next_double(0.01, 0.08));    // r
    a.d_double(rng.next_double(0.05, 0.6));     // v
    a.d_double(rng.next_double(0.1, 2.0));      // T
  }
  a.d_align(4096);
  a.bind_data(output);
  a.d_space(n * 8);
  a.d_align(4);
  a.bind_data(barrier);
  a.d_word(0);
  a.d_word(0);
  a.d_word(threads);
  return a.finalize();
}

// ---------------------------------------------------------------------------
// swaptions
// ---------------------------------------------------------------------------

Result<isa::Program> swaptions_like(const SwaptionsParams& params) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label results = a.make_label("results");
  Assembler::Label progress = a.make_label("progress");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  const std::uint32_t threads = params.threads;
  const std::uint32_t n = params.swaptions_n;

  // worker(a0 = idx): Monte-Carlo price swaptions [idx*n/t, (idx+1)*n/t).
  // All state is registers + a page-strided private result slot.
  {
    a.bind(worker);
    a.mov(kS0, kA0);
    a.li(kT1, static_cast<std::int64_t>(n));
    a.mul(kT2, kS0, kT1);
    a.li(kT3, static_cast<std::int64_t>(threads));
    a.divu(kS1, kT2, kT3);  // begin
    a.addi(kT2, kS0, 1);
    a.mul(kT2, kT2, kT1);
    a.divu(kS2, kT2, kT3);  // end

    a.fli(kF14, 1.0 / 8388608.0, kT4);  // 2^-23: LCG bits -> [0,1)
    a.fli(kF15, 0.1, kT4);              // vol-ish scale

    Assembler::Label swp_loop = a.make_label();
    Assembler::Label swp_done = a.make_label();
    Assembler::Label trial_loop = a.make_label();
    a.bind(swp_loop);
    a.bge(kS1, kS2, swp_done);
    // Seed the LCG from the swaption index; params derived from it too.
    a.li(kT0, 747796405);
    a.mul(kT0, kS1, kT0);
    a.ori(kT0, kT0, 1);         // lcg state
    a.addi(kT1, kS1, 1);
    a.fcvt_d_w(kF2, kT1);       // strike-ish = idx+1
    a.li(kT2, 0);
    a.fcvt_d_w(kF0, kT2)  ;     // acc = 0
    a.li(kT2, static_cast<std::int64_t>(params.trials));
    a.bind(trial_loop);
    // LCG step: state = state*1664525 + 1013904223
    a.li(kT3, 1664525);
    a.mul(kT0, kT0, kT3);
    a.li(kT3, 1013904223);
    a.add(kT0, kT0, kT3);
    // u = ((state >> 9) & 0x7FFFFF) * 2^-23
    a.srli(kT3, kT0, 9);
    a.li(kT4, 0x7FFFFF);
    a.and_(kT3, kT3, kT4);
    a.fcvt_d_w(kF1, kT3);
    a.fmul(kF1, kF1, kF14);
    // Light false sharing, as in the real benchmark's heap layout: bump a
    // per-thread progress slot every 32K trials. Slots are 1 KiB apart
    // (four share a page), so page splitting (5.1) isolates them fully.
    {
      Assembler::Label no_tick = a.make_label();
      a.andi(kT3, kT2, 32767);
      a.bne(kT3, kZero, no_tick);
      a.la(kT3, progress);
      a.slli(kT4, kS0, 10);
      a.add(kT3, kT3, kT4);
      a.lw(kT4, kT3, 0);
      a.addi(kT4, kT4, 1);
      a.sw(kT3, kT4, 0);
      a.bind(no_tick);
    }
    // payoff-ish: acc += exp(vol * u) / (1 + strike)
    a.fmul(kF1, kF1, kF15);
    a.fexp(kF1, kF1);
    a.fli(kF3, 1.0, kT3);
    a.fadd(kF3, kF3, kF2);
    a.fdiv(kF1, kF1, kF3);
    a.fadd(kF0, kF0, kF1);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, trial_loop);
    // results[thread] += acc (private, page-strided)
    a.la(kT1, results);
    a.slli(kT2, kS0, 12);
    a.add(kT1, kT1, kT2);
    a.fld(kF1, kT1, 0);
    a.fadd(kF1, kF1, kF0);
    a.fsd(kT1, kF1, 0);
    a.addi(kS1, kS1, 1);
    a.j(swp_loop);
    a.bind(swp_done);
    a.li(kA0, 0);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  options.epilogue = [&](Assembler& as) {
    as.la(kT0, results);
    as.fld(kF0, kT0, 0);
    as.fli(kF1, 100.0, kT4);
    as.fmul(kF0, kF0, kF1);
    as.fcvt_w_d(kA0, kF0);
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4096);
  a.bind_data(results);
  a.d_space(threads * 4096);
  a.bind_data(progress);
  a.d_space(threads * 1024);
  return a.finalize();
}

// ---------------------------------------------------------------------------
// x264 (pipelined frame groups)
// ---------------------------------------------------------------------------

Result<isa::Program> x264_like(const X264Params& params) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label refs = a.make_label("refs");
  Assembler::Label outs = a.make_label("outs");
  Assembler::Label barrier = a.make_label("barrier");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  const std::uint32_t threads = params.threads;
  const std::uint32_t groups = params.groups;
  const std::uint32_t frame_words = params.frame_bytes / 4;

  // worker(a0 = idx):
  //   group  = idx * groups / threads     (same formula as block_groups)
  //   leader = idx == 0 || group(idx) != group(idx-1)
  //   per round: barrier; consume the group's reference frame (read all
  //   words); "encode" into a private buffer; barrier; leader refreshes
  //   the reference frame (writes every word) for the next round.
  {
    a.bind(worker);
    a.addi(kSp, kSp, -32);
    a.sw(kSp, kRa, 0);
    a.mov(kS0, kA0);
    // group -> kS1
    a.li(kT1, static_cast<std::int64_t>(groups));
    a.mul(kT2, kS0, kT1);
    a.li(kT3, static_cast<std::int64_t>(threads));
    a.divu(kS1, kT2, kT3);
    // leader flag -> [sp+4]
    Assembler::Label is_leader = a.make_label();
    Assembler::Label leader_done = a.make_label();
    a.li(kT4, 1);
    a.beq(kS0, kZero, is_leader);
    a.addi(kT2, kS0, -1);
    a.mul(kT2, kT2, kT1);
    a.divu(kT2, kT2, kT3);
    a.li(kT4, 1);
    a.bne(kT2, kS1, leader_done);
    a.li(kT4, 0);
    a.j(leader_done);
    a.bind(is_leader);
    a.li(kT4, 1);
    a.bind(leader_done);
    a.sw(kSp, kT4, 4);
    // ref base -> kS2 ; private out base -> [sp+8]
    a.li(kT1, static_cast<std::int64_t>(params.frame_bytes));
    a.mul(kT1, kS1, kT1);
    a.la(kT2, refs);
    a.add(kS2, kT2, kT1);
    a.la(kT2, outs);
    a.slli(kT1, kS0, 12);
    a.add(kT2, kT2, kT1);
    a.sw(kSp, kT2, 8);

    a.li(kT0, static_cast<std::int64_t>(params.rounds));
    a.sw(kSp, kT0, 12);  // round counter
    Assembler::Label round_loop = a.make_label();
    Assembler::Label consume = a.make_label();
    Assembler::Label encode = a.make_label();
    Assembler::Label refresh = a.make_label();
    Assembler::Label not_leader = a.make_label();
    a.bind(round_loop);
    a.la(kA0, barrier);
    a.call(rt.barrier_wait);
    // Consume the reference frame: sum all words.
    a.mov(kT1, kS2);
    a.li(kT2, static_cast<std::int64_t>(frame_words));
    a.li(kT0, 0);
    a.bind(consume);
    a.lw(kT3, kT1, 0);
    a.add(kT0, kT0, kT3);
    a.addi(kT1, kT1, 4);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, consume);
    // Encode: write the private buffer (compute_words words).
    a.lw(kT1, kSp, 8);
    a.li(kT2, static_cast<std::int64_t>(params.compute_words));
    a.li(kT4, 2654435);  // mixing constant (too wide for an addi)
    a.bind(encode);
    a.add(kT0, kT0, kT4);
    a.andi(kT3, kT2, 1023);
    a.slli(kT3, kT3, 2);
    a.add(kT3, kT1, kT3);
    a.sw(kT3, kT0, 0);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, encode);
    a.la(kA0, barrier);
    a.call(rt.barrier_wait);
    // Leader refreshes the reference frame.
    a.lw(kT4, kSp, 4);
    a.beq(kT4, kZero, not_leader);
    a.mov(kT1, kS2);
    a.li(kT2, static_cast<std::int64_t>(frame_words));
    a.bind(refresh);
    a.add(kT3, kT2, kT0);
    a.sw(kT1, kT3, 0);
    a.addi(kT1, kT1, 4);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, refresh);
    a.bind(not_leader);
    a.lw(kT0, kSp, 12);
    a.addi(kT0, kT0, -1);
    a.sw(kSp, kT0, 12);
    a.bne(kT0, kZero, round_loop);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 32);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  if (params.hints) options.groups = block_groups(threads, groups);
  options.epilogue = [&](Assembler& as) {
    as.la(kT0, refs);
    as.lw(kA0, kT0, 0);
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4096);
  a.bind_data(refs);
  a.d_space(groups * params.frame_bytes);
  a.bind_data(outs);
  a.d_space(threads * 4096);
  a.d_align(4);
  a.bind_data(barrier);
  a.d_word(0);
  a.d_word(0);
  a.d_word(threads);
  return a.finalize();
}

// ---------------------------------------------------------------------------
// fluidanimate (row-partitioned vertical stencil)
// ---------------------------------------------------------------------------

Result<isa::Program> fluidanimate_like(const FluidanimateParams& params) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label grid_a = a.make_label("grid_a");
  Assembler::Label grid_b = a.make_label("grid_b");
  Assembler::Label barrier = a.make_label("barrier");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  const std::uint32_t threads = params.threads;
  const std::uint32_t rpt = params.rows_per_thread;
  const std::uint32_t row_bytes = params.cols * 8;
  const std::uint32_t total_rows = threads * rpt + 2;  // + ghost rows

  // worker(a0 = idx): iters x { barrier; for my rows r:
  //   dst[r][j] = (src[r-1][j] + src[r][j] + src[r+1][j]) / 3 }
  // with src/dst alternating between grid_a and grid_b by parity.
  {
    a.bind(worker);
    a.addi(kSp, kSp, -32);
    a.sw(kSp, kRa, 0);
    a.mov(kS0, kA0);
    // first owned row = 1 + idx*rpt; byte offset -> [sp+4]
    a.li(kT1, static_cast<std::int64_t>(rpt));
    a.mul(kT1, kS0, kT1);
    a.addi(kT1, kT1, 1);
    a.li(kT2, static_cast<std::int64_t>(row_bytes));
    a.mul(kT1, kT1, kT2);
    a.sw(kSp, kT1, 4);
    a.fli(kF15, 1.0 / 3.0, kT4);
    a.li(kS1, static_cast<std::int64_t>(params.iters));  // iter counter

    Assembler::Label iter_loop = a.make_label();
    Assembler::Label even = a.make_label();
    Assembler::Label bases_done = a.make_label();
    Assembler::Label row_loop = a.make_label();
    Assembler::Label col_loop = a.make_label();
    a.bind(iter_loop);
    a.la(kA0, barrier);
    a.call(rt.barrier_wait);
    // src/dst by parity of the remaining-iteration counter.
    a.andi(kT0, kS1, 1);
    a.bne(kT0, kZero, even);
    a.la(kT1, grid_b);   // odd remaining: src = B, dst = A
    a.la(kT2, grid_a);
    a.j(bases_done);
    a.bind(even);
    a.la(kT1, grid_a);   // src = A, dst = B
    a.la(kT2, grid_b);
    a.bind(bases_done);
    a.lw(kT3, kSp, 4);
    a.add(kS2, kT1, kT3);  // src row ptr (my first row)
    a.add(kT2, kT2, kT3);
    a.sw(kSp, kT2, 8);     // dst row ptr
    a.li(kT4, static_cast<std::int64_t>(rpt));
    a.sw(kSp, kT4, 12);    // rows left
    a.bind(row_loop);
    a.li(kT2, static_cast<std::int64_t>(params.cols));
    a.mov(kT1, kS2);
    a.lw(kT3, kSp, 8);
    a.bind(col_loop);
    a.fld(kF0, kT1, -static_cast<std::int32_t>(row_bytes));
    a.fld(kF1, kT1, 0);
    a.fld(kF2, kT1, static_cast<std::int32_t>(row_bytes));
    a.fadd(kF0, kF0, kF1);
    a.fadd(kF0, kF0, kF2);
    a.fmul(kF0, kF0, kF15);
    a.fsd(kT3, kF0, 0);
    a.addi(kT1, kT1, 8);
    a.addi(kT3, kT3, 8);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, col_loop);
    // next row
    a.li(kT1, static_cast<std::int64_t>(row_bytes));
    a.add(kS2, kS2, kT1);
    a.lw(kT3, kSp, 8);
    a.add(kT3, kT3, kT1);
    a.sw(kSp, kT3, 8);
    a.lw(kT4, kSp, 12);
    a.addi(kT4, kT4, -1);
    a.sw(kSp, kT4, 12);
    a.bne(kT4, kZero, row_loop);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, iter_loop);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 32);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  if (params.hint_groups != 0) {
    options.groups = block_groups(threads, params.hint_groups);
  }
  options.epilogue = [&](Assembler& as) {
    // Checksum: first owned cell of grid A, scaled.
    as.la(kT0, grid_a);
    as.fld(kF0, kT0, static_cast<std::int32_t>(row_bytes));
    as.fli(kF1, 1.0e6, kT4);
    as.fmul(kF0, kF0, kF1);
    as.fcvt_w_d(kA0, kF0);
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  // Grids: ghost row 0 filled with 1.0 so the diffusion is non-trivial.
  a.d_align(4096);
  a.bind_data(grid_a);
  for (std::uint32_t j = 0; j < params.cols; ++j) a.d_double(1.0);
  a.d_space((total_rows - 1) * row_bytes);
  a.bind_data(grid_b);
  for (std::uint32_t j = 0; j < params.cols; ++j) a.d_double(1.0);
  a.d_space((total_rows - 1) * row_bytes);
  a.d_align(4);
  a.bind_data(barrier);
  a.d_word(0);
  a.d_word(0);
  a.d_word(threads);
  return a.finalize();
}

}  // namespace dqemu::workloads
