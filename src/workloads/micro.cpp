#include "workloads/micro.hpp"

#include "workloads/common.hpp"

namespace dqemu::workloads {

using isa::Assembler;
using isa::Sys;
using enum isa::Reg;
using enum isa::FReg;

Result<isa::Program> pi_taylor(std::uint32_t threads, std::uint32_t reps,
                               std::uint32_t terms) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label results = a.make_label("results");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // worker(a0 = idx): reps x Leibniz series with `terms` terms, then store
  // round(4*sum*1e6) into a page-strided private result slot.
  {
    a.bind(worker);
    a.mov(kS0, kA0);
    a.li(kS1, static_cast<std::int64_t>(reps));
    Assembler::Label rep_loop = a.make_label();
    Assembler::Label term_loop = a.make_label();
    a.bind(rep_loop);
    a.li(kT1, 0);
    a.fcvt_d_w(kF0, kT1);  // sum = 0
    a.li(kT1, 1);
    a.fcvt_d_w(kF1, kT1);  // sign = 1
    a.fcvt_d_w(kF2, kT1);  // denom = 1
    a.li(kT1, 2);
    a.fcvt_d_w(kF3, kT1);  // const 2
    a.li(kT1, static_cast<std::int64_t>(terms));
    a.bind(term_loop);
    a.fdiv(kF5, kF1, kF2);
    a.fadd(kF0, kF0, kF5);
    a.fneg(kF1, kF1);
    a.fadd(kF2, kF2, kF3);
    a.addi(kT1, kT1, -1);
    a.bne(kT1, kZero, term_loop);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, rep_loop);
    // pi ~= 4 * sum; checksum = (int)(pi * 1e6).
    a.fadd(kF0, kF0, kF0);
    a.fadd(kF0, kF0, kF0);
    a.fli(kF6, 1.0e6, kT3);
    a.fmul(kF0, kF0, kF6);
    a.fcvt_w_d(kT1, kF0);
    a.la(kT2, results);
    a.slli(kT3, kS0, 12);  // page-strided: no sharing between workers
    a.add(kT2, kT2, kT3);
    a.sw(kT2, kT1, 0);
    a.li(kA0, 0);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  options.epilogue = [&](Assembler& as) {
    as.la(kT0, results);
    as.lw(kA0, kT0, 0);
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4096);
  a.bind_data(results);
  a.d_space(threads * 4096);
  return a.finalize();
}

Result<isa::Program> mutex_stress(std::uint32_t threads, std::uint32_t iters,
                                  bool global_lock) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label locks = a.make_label("locks");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // worker(a0 = idx): iters x (lock; unlock) on the shared or private lock.
  {
    a.bind(worker);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.la(kS2, locks);
    if (!global_lock) {
      a.slli(kT1, kA0, 12);  // private lock on its own page
      a.add(kS2, kS2, kT1);
      a.addi(kS0, kS2, 8);  // counter beside the lock: never leaves the node
    } else {
      // The shared counter lives on its *own* page: a contended critical
      // section drags the protected data wherever the lock goes, which is
      // what makes the paper's global series rise with node count.
      a.li(kT1, 4096 + 8);
      a.add(kS0, kS2, kT1);
    }
    a.li(kS1, static_cast<std::int64_t>(iters));
    Assembler::Label loop = a.make_label();
    a.bind(loop);
    a.mov(kA0, kS2);
    a.call(rt.mutex_lock);
    // Critical section: bump the shared counter. The final sum (printed by
    // main) is exactly threads * iters iff the lock provided mutual
    // exclusion and no wakeup was lost.
    a.lw(kT1, kS0, 0);
    a.addi(kT1, kT1, 1);
    a.sw(kS0, kT1, 0);
    a.mov(kA0, kS2);
    a.call(rt.mutex_unlock);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, loop);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  options.epilogue = [&](Assembler& as) {
    // Checksum: the sum of all critical-section counters. threads * iters
    // exactly, whatever the cluster layout or locking strategy.
    as.la(kT0, locks);
    if (global_lock) {
      as.li(kT3, 4096 + 8);
      as.add(kT0, kT0, kT3);
      as.lw(kA0, kT0, 0);
    } else {
      as.li(kA0, 0);
      as.li(kT2, static_cast<std::int64_t>(threads));
      as.li(kT3, 4096);
      Assembler::Label sum = as.make_label();
      as.bind(sum);
      as.lw(kT1, kT0, 8);
      as.add(kA0, kA0, kT1);
      as.add(kT0, kT0, kT3);
      as.addi(kT2, kT2, -1);
      as.bne(kT2, kZero, sum);
    }
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4096);
  a.bind_data(locks);
  // Global: lock page + counter page. Private: one page per thread holding
  // both that thread's lock and its counter.
  a.d_space(global_lock ? 2 * 4096 : threads * 4096);
  return a.finalize();
}

Result<isa::Program> memwalk(std::uint32_t bytes, std::uint32_t reps,
                             bool touch_first, std::uint32_t workers) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label region = a.make_label("region");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  if (workers == 0) workers = 1;
  const std::uint32_t slice = bytes / workers;

  // worker(a0 = idx): reps sequential passes over its own bytes/workers
  // slice of the region, 8x-unrolled byte loads (the paper's
  // 1-byte-increment walker). One worker == the original whole-region walk.
  {
    a.bind(worker);
    a.la(kT0, region);
    a.lw(kS2, kT0, 0);  // base
    if (workers > 1) {
      a.li(kT1, static_cast<std::int64_t>(slice));
      a.mul(kT1, kA0, kT1);
      a.add(kS2, kS2, kT1);  // my slice base
    }
    a.li(kS1, static_cast<std::int64_t>(reps));
    Assembler::Label rep_loop = a.make_label();
    Assembler::Label byte_loop = a.make_label();
    a.bind(rep_loop);
    a.mov(kT1, kS2);
    a.li(kT2, static_cast<std::int64_t>(slice / 4));
    a.bind(byte_loop);
    for (std::int32_t u = 0; u < 4; ++u) a.lbu(kT3, kT1, u);
    a.addi(kT1, kT1, 4);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, byte_loop);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, rep_loop);
    a.li(kA0, 0);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = workers;
  options.prologue = [&](Assembler& as) {
    as.li(kA0, static_cast<std::int64_t>(bytes));
    emit_syscall(as, Sys::kMmap);
    as.la(kT0, region);
    as.sw(kT0, kA0, 0);
    if (touch_first) {
      // Dirty one byte per page on the master before the walk.
      Assembler::Label touch = as.make_label();
      as.mov(kT1, kA0);
      as.li(kT2, static_cast<std::int64_t>(bytes / 4096));
      as.li(kT3, 1);
      as.bind(touch);
      as.sb(kT1, kT3, 0);
      as.li(kT4, 4096);
      as.add(kT1, kT1, kT4);
      as.addi(kT2, kT2, -1);
      as.bne(kT2, kZero, touch);
    }
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4);
  a.bind_data(region);
  a.d_word(0);
  return a.finalize();
}

Result<isa::Program> false_sharing_walk(std::uint32_t threads,
                                        std::uint32_t section_bytes,
                                        std::uint32_t reps,
                                        std::uint32_t nodes) {
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label shared_page = a.make_label("shared_page");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // worker(a0 = idx): reps passes of byte stores over its own
  // `section_bytes` slice of the one shared page.
  {
    a.bind(worker);
    a.la(kT0, shared_page);
    a.li(kT1, static_cast<std::int64_t>(section_bytes));
    a.mul(kT1, kA0, kT1);
    a.add(kS2, kT0, kT1);  // my slice base
    a.li(kS1, static_cast<std::int64_t>(reps));
    Assembler::Label rep_loop = a.make_label();
    Assembler::Label byte_loop = a.make_label();
    a.bind(rep_loop);
    a.mov(kT1, kS2);
    a.li(kT2, static_cast<std::int64_t>(section_bytes / 4));
    a.li(kT3, 0x5A);
    a.bind(byte_loop);
    for (std::int32_t u = 0; u < 4; ++u) a.sb(kT1, kT3, u);
    a.addi(kT1, kT1, 4);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, byte_loop);
    a.addi(kS1, kS1, -1);
    a.bne(kS1, kZero, rep_loop);
    a.li(kA0, 0);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = threads;
  options.groups = block_groups(threads, nodes);
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4096);
  a.bind_data(shared_page);
  a.d_space(4096);
  return a.finalize();
}

}  // namespace dqemu::workloads
