#include "workloads/serve.hpp"

#include "workloads/common.hpp"

namespace dqemu::workloads {

using isa::Assembler;
using isa::Sys;
using enum isa::Reg;

Result<isa::Program> serve_pool(const ServePoolParams& params) {
  if (params.workers == 0) {
    return Status::invalid_argument("serve_pool: workers must be >= 1");
  }
  // The medium kernel wraps its table index with an andi mask, so the
  // table size must be a power of two small enough for a 16-bit immediate.
  if (params.table_words < 2 || params.table_words > 32768 ||
      (params.table_words & (params.table_words - 1)) != 0) {
    return Status::invalid_argument(
        "serve_pool: table_words must be a power of two in [2, 32768]");
  }
  Assembler a;
  Assembler::Label main_fn = a.make_label("main");
  Assembler::Label worker = a.make_label("worker");
  Assembler::Label locks = a.make_label("locks");
  Assembler::Label table = a.make_label("table");

  guestlib::emit_crt0(a, main_fn);
  guestlib::Runtime rt = guestlib::emit_runtime(a);

  // Shared-data layout (each item on its own page so its coherence
  // traffic is attributable):
  //   locks + 0             global mutex (heavy kernel + completion total)
  //   locks + 4096 + 8      completed-execution total
  //   locks + 8192 + 8      heavy kernel's hot shared counter
  constexpr std::int32_t kTotalOff = 4096 + 8;
  constexpr std::int32_t kHotOff = 2 * 4096 + 8;
  const std::uint32_t table_mask = params.table_words - 1;

  // worker(a0 = idx, unused): pull-execute-report loop.
  //   s0 = executions completed locally, s1 = work units, s2 = checksum.
  {
    a.bind(worker);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.li(kS0, 0);

    Assembler::Label loop = a.make_label();
    Assembler::Label cksum_loop = a.make_label();
    Assembler::Label submit = a.make_label();
    Assembler::Label medium = a.make_label();
    Assembler::Label med_loop = a.make_label();
    Assembler::Label heavy = a.make_label();
    Assembler::Label drain = a.make_label();

    a.bind(loop);
    emit_syscall(a, Sys::kServeGet);  // a0 = (class << 28) | work, or < 0
    a.blt(kA0, kZero, drain);
    a.srli(kT0, kA0, 28);  // t0 = service class
    a.li(kT1, 0x0FFFFFFF);
    a.and_(kS1, kA0, kT1);  // s1 = work units (>= 1 by contract)

    // All classes: the checksum accumulation the master verifies —
    // sum of 1..work in 32-bit wrap-around.
    a.li(kS2, 0);
    a.mov(kT1, kS1);
    a.bind(cksum_loop);
    a.add(kS2, kS2, kT1);
    a.addi(kT1, kT1, -1);
    a.bne(kT1, kZero, cksum_loop);

    a.li(kT1, 1);
    a.beq(kT0, kT1, medium);
    a.li(kT1, 2);
    a.beq(kT0, kT1, heavy);

    a.bind(submit);
    a.mov(kA0, kS2);
    emit_syscall(a, Sys::kServeDone);
    a.addi(kS0, kS0, 1);
    a.j(loop);

    // Medium: `work` strided reads over the read-shared table — every
    // worker node ends up holding read copies of its pages.
    a.bind(medium);
    a.la(kT1, table);
    a.li(kT2, 0);
    a.mov(kT3, kS1);
    a.bind(med_loop);
    a.slli(kT4, kT2, 2);
    a.add(kT4, kT1, kT4);
    a.lw(kT0, kT4, 0);  // value discarded: the fault is the point
    a.addi(kT2, kT2, 131);
    a.andi(kT2, kT2, static_cast<std::int32_t>(table_mask));
    a.addi(kT3, kT3, -1);
    a.bne(kT3, kZero, med_loop);
    a.j(submit);

    // Heavy: one global-mutex critical section bumping a hot shared
    // counter — the request classes contend for the same lock + page.
    a.bind(heavy);
    a.la(kA0, locks);
    a.call(rt.mutex_lock);
    a.la(kT0, locks);
    a.lw(kT1, kT0, kHotOff);
    a.addi(kT1, kT1, 1);
    a.sw(kT0, kT1, kHotOff);
    a.la(kA0, locks);
    a.call(rt.mutex_unlock);
    a.j(submit);

    // EOF: fold the local completion count into the shared total under
    // the global mutex, then return to the join.
    a.bind(drain);
    a.la(kA0, locks);
    a.call(rt.mutex_lock);
    a.la(kT0, locks);
    a.lw(kT1, kT0, kTotalOff);
    a.add(kT1, kT1, kS0);
    a.sw(kT0, kT1, kTotalOff);
    a.la(kA0, locks);
    a.call(rt.mutex_unlock);
    a.li(kA0, 0);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  ParallelMainOptions options;
  options.threads = params.workers;
  options.epilogue = [&](Assembler& as) {
    // The only guest output: total executions completed. Equal to
    // requests x clones whatever the serve seed, arrival process or
    // cluster layout — the anchor of the determinism tests.
    as.la(kT0, locks);
    as.lw(kA0, kT0, kTotalOff);
    as.call(rt.print_u32);
  };
  emit_parallel_main(a, rt, main_fn, worker, options);

  a.d_align(4096);
  a.bind_data(locks);
  a.d_space(3 * 4096);
  a.bind_data(table);
  a.d_space(params.table_words * 4);
  return a.finalize();
}

}  // namespace dqemu::workloads
