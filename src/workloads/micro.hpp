// Micro-benchmark guest programs (paper section 6.1.1).
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace dqemu::workloads {

/// Fig. 5 — performance scalability. `threads` workers each evaluate the
/// Leibniz/Taylor series for pi with `terms` terms, `reps` times, with no
/// data sharing (all state in registers); main joins and prints the result
/// of worker 0 scaled by 1e6 as a checksum.
[[nodiscard]] Result<isa::Program> pi_taylor(std::uint32_t threads,
                                             std::uint32_t reps,
                                             std::uint32_t terms);

/// Fig. 6 — mutex stress. `threads` workers acquire+release a lock `iters`
/// times each while incrementing a counter inside the critical section;
/// main prints the final sum (threads * iters) as the mutual-exclusion
/// checksum. `global_lock` selects scenario 1 (one shared lock, counter on
/// its own page so the critical section drags data cross-node) vs
/// scenario 2 (a private lock+counter per thread, each pair on its own
/// page so only intra-node synchronization remains).
[[nodiscard]] Result<isa::Program> mutex_stress(std::uint32_t threads,
                                                std::uint32_t iters,
                                                bool global_lock);

/// Table 1 rows 1-3 — sequential page-walk bandwidth. `workers` threads
/// (scheduled on slave nodes under DQEMU) mmap `bytes` and each reads its
/// own `bytes / workers` slice byte-by-byte `reps` times (8x-unrolled LBU
/// loop). The region's pages start owned by the master, so every page is
/// a remote fetch; with `bytes / workers` a page multiple the slices are
/// page-disjoint, so the walkers never share a page and every slave node
/// streams independently (the layout the parallel-scheduler bench sweeps,
/// DESIGN.md §16). `workers = 1` is the paper's original single-walker
/// setup. `touch_first` makes the MAIN thread write one byte per page
/// before the walk so pages are master-resident-dirty (matching the
/// paper's "reserve 1GB on the master" setup).
[[nodiscard]] Result<isa::Program> memwalk(std::uint32_t bytes,
                                           std::uint32_t reps,
                                           bool touch_first,
                                           std::uint32_t workers = 1);

/// Table 1 rows 4-6 — false sharing. `threads` workers each own a
/// `section_bytes` slice of the SAME page and walk it with byte stores,
/// `reps` passes each. Threads carry block-contiguous HINT groups (one per
/// `nodes`) so hint-locality scheduling places slice-neighbours together —
/// the paper's "scheduled evenly among 4 slave nodes" layout.
[[nodiscard]] Result<isa::Program> false_sharing_walk(std::uint32_t threads,
                                                      std::uint32_t section_bytes,
                                                      std::uint32_t reps,
                                                      std::uint32_t nodes);

}  // namespace dqemu::workloads
