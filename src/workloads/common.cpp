#include "workloads/common.hpp"

namespace dqemu::workloads {

using isa::Assembler;
using enum isa::Reg;

std::vector<std::int32_t> block_groups(std::uint32_t threads,
                                       std::uint32_t groups) {
  std::vector<std::int32_t> out(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    out[i] = static_cast<std::int32_t>(
        static_cast<std::uint64_t>(i) * groups / threads);
  }
  return out;
}

void emit_parallel_main(Assembler& a, const guestlib::Runtime& rt,
                        Assembler::Label main_fn, Assembler::Label worker,
                        const ParallelMainOptions& options) {
  const std::uint32_t threads = options.threads;
  Assembler::Label handles = a.make_label();

  a.bind(main_fn);
  a.addi(kSp, kSp, -16);
  a.sw(kSp, kRa, 0);
  a.sw(kSp, kS0, 4);

  if (options.prologue) options.prologue(a);

  if (options.groups.empty()) {
    // Uniform spawn loop.
    Assembler::Label spawn = a.make_label();
    a.li(kS0, 0);
    a.bind(spawn);
    a.la(kA0, worker);
    a.mov(kA1, kS0);
    a.call(rt.thread_create);
    a.la(kT0, handles);
    a.slli(kT1, kS0, 2);
    a.add(kT0, kT0, kT1);
    a.sw(kT0, kA0, 0);
    a.addi(kS0, kS0, 1);
    a.li(kT1, static_cast<std::int64_t>(threads));
    a.bne(kS0, kT1, spawn);
  } else {
    // Per-thread HINT values differ, so spawns are emitted straight-line.
    for (std::uint32_t i = 0; i < threads; ++i) {
      a.hint(options.groups[i]);
      a.la(kA0, worker);
      a.li(kA1, static_cast<std::int64_t>(i));
      a.call(rt.thread_create);
      a.la(kT0, handles);
      a.sw(kT0, kA0, static_cast<std::int32_t>(i * 4));
    }
    a.hint(0xFFFF);  // reset to "no group" (sentinel, see exec.cpp)
  }

  if (options.while_running) options.while_running(a);

  // Join loop.
  {
    Assembler::Label join = a.make_label();
    a.li(kS0, 0);
    a.bind(join);
    a.la(kT0, handles);
    a.slli(kT1, kS0, 2);
    a.add(kT0, kT0, kT1);
    a.lw(kA0, kT0, 0);
    a.call(rt.thread_join);
    a.addi(kS0, kS0, 1);
    a.li(kT1, static_cast<std::int64_t>(threads));
    a.bne(kS0, kT1, join);
  }

  if (options.epilogue) options.epilogue(a);

  a.li(kA0, 0);
  a.lw(kRa, kSp, 0);
  a.lw(kS0, kSp, 4);
  a.addi(kSp, kSp, 16);
  a.ret();

  a.d_align(4);
  a.bind_data(handles);
  a.d_space(threads * 4);
}

}  // namespace dqemu::workloads
