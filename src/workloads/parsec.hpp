// PARSEC-like guest workloads (paper section 6.1.2).
//
// These reproduce the *memory behaviour classes* of the four PARSEC
// programs the paper evaluates, at configurable scale:
//   blackscholes : data-parallel FP kernel over a shared input array,
//                  contiguous per-thread partitions, light sharing
//   swaptions    : Monte-Carlo with per-thread private state, almost no
//                  sharing ("data-parallel program with little data
//                  sharing and has no input")
//   x264         : pipelined frame groups — a leader refreshes a group-
//                  shared reference frame each round, members consume it
//                  (heavy true sharing inside a group, none across)
//   fluidanimate : block-partitioned stencil over a grid, neighbour-row
//                  exchange + global barrier per iteration
// x264/fluidanimate carry block-contiguous HINT groups, the paper's
// source-level instrumentation for locality-aware scheduling (5.3).
#pragma once

#include <cstdint>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace dqemu::workloads {

struct BlackscholesParams {
  std::uint32_t threads = 32;
  std::uint32_t options_n = 16384;  ///< input array length
  std::uint32_t reps = 4;           ///< passes over the array
};
[[nodiscard]] Result<isa::Program> blackscholes_like(
    const BlackscholesParams& params);

struct SwaptionsParams {
  std::uint32_t threads = 32;
  std::uint32_t swaptions_n = 64;  ///< total swaptions, split over threads
  std::uint32_t trials = 2000;     ///< Monte-Carlo trials per swaption
};
[[nodiscard]] Result<isa::Program> swaptions_like(const SwaptionsParams& params);

struct X264Params {
  std::uint32_t threads = 128;
  std::uint32_t groups = 8;        ///< independent frame groups (GOPs)
  std::uint32_t rounds = 24;       ///< frames encoded per thread
  std::uint32_t frame_bytes = 4096;///< reference-frame size (page multiple)
  std::uint32_t compute_words = 4096;  ///< per-round private compute size
  bool hints = true;               ///< emit HINT locality groups
};
[[nodiscard]] Result<isa::Program> x264_like(const X264Params& params);

struct FluidanimateParams {
  std::uint32_t threads = 128;
  std::uint32_t rows_per_thread = 2;
  std::uint32_t cols = 512;        ///< doubles per row (512 -> 1 page/row)
  std::uint32_t iters = 16;
  std::uint32_t hint_groups = 8;   ///< 0 = no hints
};
[[nodiscard]] Result<isa::Program> fluidanimate_like(
    const FluidanimateParams& params);

}  // namespace dqemu::workloads
