// Shared scaffolding for guest workload generators.
//
// Every benchmark guest program has the same skeleton: crt0 + runtime,
// a main that spawns N workers (optionally tagging each with a locality
// HINT group before the clone, section 5.3), joins them, runs an epilogue
// (checksum printing) and exits. Workers receive their index in a0.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "guestlib/runtime.hpp"
#include "isa/assembler.hpp"
#include "isa/syscall_abi.hpp"

namespace dqemu::workloads {

/// Emits `syscall` with a typed number.
inline void emit_syscall(isa::Assembler& a, isa::Sys num) {
  a.syscall(static_cast<std::int32_t>(num));
}

struct ParallelMainOptions {
  std::uint32_t threads = 1;
  /// Emitted at the top of main, before any worker is spawned (mmap of
  /// shared regions, input initialization...). May clobber t*/a* only.
  std::function<void(isa::Assembler&)> prologue;
  /// Per-thread locality group; empty = no HINT instrumentation. The HINT
  /// executes on the main thread right before each clone, so the child
  /// inherits the group (exactly the paper's source-instrumentation).
  std::vector<std::int32_t> groups;
  /// Emitted after the workers are spawned but before joining (main-thread
  /// work that overlaps the workers).
  std::function<void(isa::Assembler&)> while_running;
  /// Emitted after all workers joined (checksums, printing).
  std::function<void(isa::Assembler&)> epilogue;
};

/// Emits a complete main() that spawns `options.threads` copies of
/// `worker` (arg = thread index), joins them and returns 0. The caller
/// must have bound neither `main_fn` nor the data label it passes.
void emit_parallel_main(isa::Assembler& a, const guestlib::Runtime& rt,
                        isa::Assembler::Label main_fn,
                        isa::Assembler::Label worker,
                        const ParallelMainOptions& options);

/// Convenience: block-contiguous groups — thread i of `threads` gets group
/// i * groups / threads, keeping neighbours together.
[[nodiscard]] std::vector<std::int32_t> block_groups(std::uint32_t threads,
                                                     std::uint32_t groups);

}  // namespace dqemu::workloads
