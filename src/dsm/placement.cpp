#include "dsm/placement.hpp"

#include <algorithm>
#include <cassert>

namespace dqemu::dsm {

HomeLayout home_layout(const ClusterConfig& config) {
  // Shadow pool: top of the guest space, at most 32 MiB or 1/8 of guest
  // memory, page-aligned.
  constexpr std::uint32_t kMaxShadowPoolBytes = 32u << 20;
  const std::uint32_t page = config.machine.page_size;
  const std::uint32_t pool_bytes =
      std::min<std::uint32_t>(kMaxShadowPoolBytes,
                              config.guest_mem_bytes / 8) /
      page * page;
  HomeLayout layout;
  layout.slave_count = config.single_node_baseline ? 0 : config.slave_nodes;
  layout.shadow_first_page = (config.guest_mem_bytes - pool_bytes) / page;
  layout.shadow_page_count = pool_bytes / page;
  return layout;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

NodeId HomeLayout::shadow_home(std::uint64_t page) const {
  assert(is_shadow(page) && slave_count > 0);
  const std::uint64_t size = slice_size();
  if (size == 0) return static_cast<NodeId>(slave_count);
  std::uint64_t idx = (page - shadow_first_page) / size;
  if (idx >= slave_count) idx = slave_count - 1;
  return static_cast<NodeId>(idx + 1);
}

NodeId HomeLayout::hash_home(std::uint64_t page) const {
  assert(slave_count > 0);
  return static_cast<NodeId>(1 + splitmix64(page) % slave_count);
}

HomeMap::HomeMap(const DsmConfig& dsm, const HomeLayout& layout)
    : sharded_(DQEMU_HOME_SHARDING_ENABLED != 0 && dsm.enable_home_sharding &&
               layout.slave_count > 0),
      placement_(dsm.home_placement),
      layout_(layout) {}

NodeId HomeMap::home_for(std::uint64_t page, NodeId requester) {
  if (!sharded_) return kMasterNode;
  if (layout_.is_shadow(page)) return layout_.shadow_home(page);
  if (placement_ == HomePlacement::kHash) return layout_.hash_home(page);
  const auto it = assigned_.find(page);
  if (it != assigned_.end()) return it->second;
  assigned_.emplace(page, requester);
  return requester;
}

std::uint64_t HomeMap::repoint_dead_home(NodeId dead) {
  if (!sharded_ || placement_ != HomePlacement::kFirstTouch) return 0;
  std::uint64_t moved = 0;
  for (auto& [page, home] : assigned_) {
    if (home == dead) {
      home = kMasterNode;
      ++moved;
    }
  }
  return moved;
}

NodeId HomeMap::home_of(std::uint64_t page) const {
  if (!sharded_) return kMasterNode;
  if (layout_.is_shadow(page)) return layout_.shadow_home(page);
  if (placement_ == HomePlacement::kHash) return layout_.hash_home(page);
  const auto it = assigned_.find(page);
  return it != assigned_.end() ? it->second : kMasterNode;
}

HomeView::HomeView(const DsmConfig& dsm, const HomeLayout& layout)
    : sharded_(DQEMU_HOME_SHARDING_ENABLED != 0 && dsm.enable_home_sharding &&
               layout.slave_count > 0),
      placement_(dsm.home_placement),
      layout_(layout) {}

NodeId HomeView::home_of(std::uint64_t page) const {
  if (!sharded_) return kMasterNode;
  if (layout_.is_shadow(page)) return layout_.shadow_home(page);
  if (placement_ == HomePlacement::kHash) return layout_.hash_home(page);
  const auto it = learned_.find(page);
  return it != learned_.end() ? it->second : kMasterNode;
}

void HomeView::learn(std::uint64_t page, NodeId home) {
  if (!sharded_ || placement_ != HomePlacement::kFirstTouch) return;
  if (layout_.is_shadow(page)) return;
  // Never (re-)learn a route to a dead home: traffic it sent before dying
  // can arrive after the kNodeDead notice (different link, no cross-link
  // order), and caching it would send the next request into a black hole.
  if (dead_.count(home) != 0) return;
  learned_[page] = home;
}

void HomeView::invalidate_home(NodeId dead) {
  if (!sharded_ || placement_ != HomePlacement::kFirstTouch) return;
  dead_.insert(dead);
  for (auto it = learned_.begin(); it != learned_.end();) {
    it = it->second == dead ? learned_.erase(it) : ++it;
  }
}

}  // namespace dqemu::dsm
