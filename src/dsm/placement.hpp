// Home-node placement (DESIGN.md §17).
//
// With home sharding enabled, every guest page — and every futex address,
// via its containing page — has a deterministic *home node* that runs the
// directory / lease / recall state machines for it. Placement comes in two
// flavors:
//
//   kHash        home = 1 + splitmix64(page) % slave_count. A pure function
//                every node computes locally; no request is ever
//                misdirected and the master serves no pages at all (the
//                "thin master" keeps boot, run control and serving).
//   kFirstTouch  the master assigns the first requester of a page as its
//                home. Only the master holds the authoritative map
//                (HomeMap); other nodes keep a learned cache (HomeView)
//                that defaults to the master, and the master relays
//                misdirected requests to the true home (<= 2 hops — a home
//                never moves once assigned).
//
// Shadow-pool pages (page splitting, §5.1) are placed by a static slice
// layout instead of the hash: the pool is divided into one contiguous
// slice per home and each directory shard allocates split shadows from its
// own slice, so home_of stays a pure function of the page number for both
// policies.
//
// With sharding off (runtime flag or the DQEMU_ENABLE_HOME_SHARDING CMake
// gate) every function here returns kMasterNode and the protocol is
// bit-for-bit the single-master one.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/config.hpp"
#include "common/types.hpp"
#include "dsm/wire.hpp"

namespace dqemu::dsm {

/// SplitMix64 finalizer — the same permutation the fault and serving
/// subsystems use for their decision streams. Pure, host-independent.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Static placement geometry shared by the master authority and every
/// per-node cache: which nodes serve as homes and how the shadow pool is
/// sliced among them.
struct HomeLayout {
  std::uint32_t slave_count = 0;        ///< homes are nodes 1..slave_count
  std::uint64_t shadow_first_page = 0;  ///< shadow pool bounds (page numbers)
  std::uint64_t shadow_page_count = 0;

  [[nodiscard]] bool is_shadow(std::uint64_t page) const {
    return shadow_page_count != 0 && page >= shadow_first_page &&
           page < shadow_first_page + shadow_page_count;
  }
  /// Even split of the shadow pool; the last home absorbs the remainder.
  [[nodiscard]] std::uint64_t slice_size() const {
    return slave_count == 0 ? 0 : shadow_page_count / slave_count;
  }
  [[nodiscard]] std::uint64_t slice_first(NodeId home) const {
    return shadow_first_page +
           (static_cast<std::uint64_t>(home) - 1) * slice_size();
  }
  [[nodiscard]] std::uint64_t slice_count(NodeId home) const {
    if (home == slave_count) {
      return shadow_page_count -
             (static_cast<std::uint64_t>(slave_count) - 1) * slice_size();
    }
    return slice_size();
  }
  /// Owner of a shadow page under the slice layout.
  [[nodiscard]] NodeId shadow_home(std::uint64_t page) const;
  /// Hash placement for a regular page.
  [[nodiscard]] NodeId hash_home(std::uint64_t page) const;
};

/// The cluster's placement geometry: homes are the slave nodes and the
/// shadow pool occupies the top of guest memory (the single source of the
/// pool math — the Cluster derives its memory layout from this too).
[[nodiscard]] HomeLayout home_layout(const ClusterConfig& config);

/// Master-side placement authority. Under hash placement it is the same
/// pure function every HomeView computes; under first-touch it owns the
/// one true page->home assignment table, built in master processing order
/// (deterministic at every --host-threads count).
class HomeMap {
 public:
  HomeMap() = default;
  HomeMap(const DsmConfig& dsm, const HomeLayout& layout);

  [[nodiscard]] bool sharded() const { return sharded_; }
  [[nodiscard]] const HomeLayout& layout() const { return layout_; }

  /// Authoritative home of `page`; under first-touch, assigns `requester`
  /// as the home on the first call for an unassigned page.
  [[nodiscard]] NodeId home_for(std::uint64_t page, NodeId requester);

  /// Lookup without assignment: kMasterNode for a page first-touch has not
  /// assigned yet (the master fields it and assigns then).
  [[nodiscard]] NodeId home_of(std::uint64_t page) const;

  /// Crash recovery (DESIGN.md §18): re-points every first-touch assignment
  /// held by `dead` to the master, which adopted the shard. A home never
  /// moves while alive, so this is the only mutation of an existing
  /// assignment. Returns how many pages moved. kHash placement cannot
  /// re-home (config validation rejects that combination with crashes).
  std::uint64_t repoint_dead_home(NodeId dead);

 private:
  bool sharded_ = false;
  HomePlacement placement_ = HomePlacement::kHash;
  HomeLayout layout_;
  /// First-touch assignments. Keyed lookups only — never iterated — so the
  /// unordered map cannot perturb determinism.
  std::unordered_map<std::uint64_t, NodeId> assigned_;
};

/// Per-node view of the placement. Hash placement is computed locally;
/// first-touch homes are learned from the `src` of authoritative protocol
/// traffic (grants, retries, recalls, syscall responses) and default to
/// the master, which relays. With sharding off, home_of is kMasterNode.
class HomeView {
 public:
  HomeView() = default;
  HomeView(const DsmConfig& dsm, const HomeLayout& layout);

  [[nodiscard]] bool sharded() const { return sharded_; }
  [[nodiscard]] NodeId home_of(std::uint64_t page) const;
  /// Records that authoritative traffic for `page` came from `home`.
  void learn(std::uint64_t page, NodeId home);

  /// Crash recovery (DESIGN.md §18): drops every learned route that points
  /// at `dead`, falling back to the master (which adopted the shard and
  /// answers authoritatively). Without this a request to a dead home would
  /// black-hole and the re-issue watchdog would ping-pong to it forever.
  void invalidate_home(NodeId dead);

 private:
  bool sharded_ = false;
  HomePlacement placement_ = HomePlacement::kHash;
  HomeLayout layout_;
  std::unordered_map<std::uint64_t, NodeId> learned_;
  /// Homes declared dead; learn() refuses routes to them (late in-flight
  /// traffic from a dying home must not resurrect the stale route).
  std::unordered_set<NodeId> dead_;
};

}  // namespace dqemu::dsm
