#include "dsm/directory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"

namespace dqemu::dsm {

Directory::Directory(net::Network& network, sim::EventQueue& queue,
                     mem::AddressSpace& home, Params params,
                     StatsRegistry* stats, trace::Tracer* tracer)
    : network_(network),
      queue_(queue),
      home_(home),
      params_(params),
      stats_(stats),
      tracer_(tracer),
      entries_(home.num_pages()),
      shadow_of_(home.num_pages()),
      shadow_next_(params.shadow_pool_first_page) {
  assert(params_.node_count >= 1 && params_.node_count <= NodeSet::kMaxNodes);
  assert(params_.shadow_pool_first_page + params_.shadow_pool_page_count <=
         home.num_pages());
  streams_.resize(params_.node_count,
                  StreamDetector(params_.dsm.forward_streams));
  manager_free_.resize(params_.node_count, 0);
  home_msgs_counter_ = "dsm.home_msgs." + std::to_string(params_.self);
  if (!params_.sharded) {
    // The master boots owning everything (it loaded the program)...
    home_.set_all_access(mem::PageAccess::kReadWrite);
  } else {
    homed_.assign(home.num_pages(), false);
  }
  // The shadow pool (this instance's slice of it, when sharded) starts
  // kHome with no access anywhere: no application code may touch it.
  for (std::uint32_t i = 0; i < params_.shadow_pool_page_count; ++i) {
    const std::uint32_t page = params_.shadow_pool_first_page + i;
    entries_[page].state = PageState::kHome;
    entries_[page].owner = kInvalidNode;
    home_.set_access(page, mem::PageAccess::kNone);
  }
}

net::Message Directory::make(NodeId dst, DsmMsg type, std::uint64_t a,
                             std::uint64_t b) const {
  net::Message msg;
  msg.src = params_.self;
  msg.dst = dst;
  msg.type = static_cast<std::uint32_t>(type);
  msg.a = a;
  msg.b = b;
  return msg;
}

void Directory::send(net::Message msg) {
  // Each slave has a dedicated manager thread on the master (paper
  // Fig. 2); messages to that slave serialize on it. Directory state
  // machine work adds a small fixed cost; speculative pushes are batched
  // stream operations and much cheaper than demand handling.
  // Cheap messages: speculative pushes (batched stream work), no-payload
  // grants (no page preparation / fault hand-off), and loopback traffic to
  // the home's own client (a function call, not a manager wakeup).
  const bool cheap =
      msg.type == static_cast<std::uint32_t>(DsmMsg::kForwardData) ||
      msg.type == static_cast<std::uint32_t>(DsmMsg::kForwardDiff) ||
      msg.type == static_cast<std::uint32_t>(DsmMsg::kPageGrant) ||
      msg.dst == params_.self;
  const DurationPs service =
      params_.machine.cycles(params_.dsm.directory_cycles) +
      (cheap ? params_.dsm.forward_service : params_.dsm.manager_service);
  TimePs& manager_free = manager_free_[msg.dst];
  const TimePs start = std::max(queue_.now(), manager_free);
  manager_free = start + service;
  // Manager occupancy span: the per-slave manager thread is busy preparing
  // this message from `start` until it hands it to the NIC. Sequential per
  // manager track, so sync B/E nesting holds.
  if (trace::wants(tracer_, trace::Cat::kDsm)) {
    trace::Record r;
    r.name = "dsm.manager";
    r.cat = trace::Cat::kDsm;
    r.node = params_.self;
    r.track = static_cast<std::uint16_t>(trace::kTrackManagerBase + msg.dst);
    r.flow = msg.flow;
    r.a = msg.a;
    r.b = msg.type;
    r.kind = trace::Kind::kSpanBegin;
    r.time = start;
    tracer_->record(r);
    r.kind = trace::Kind::kSpanEnd;
    r.time = manager_free;
    tracer_->record(r);
  }
  queue_.schedule_at(manager_free, [this, m = std::move(msg)]() mutable {
    network_.send(std::move(m));
  });
}

void Directory::send_chained(net::Message msg, std::uint64_t flow) {
  msg.flow = flow;
  send(std::move(msg));
}

void Directory::note(const char* name, std::uint64_t flow, std::uint64_t a,
                     std::uint64_t b) {
  if (!trace::wants(tracer_, trace::Cat::kDsm)) return;
  trace::Record r;
  r.time = queue_.now();
  r.name = name;
  r.kind = flow == 0 ? trace::Kind::kInstant : trace::Kind::kFlowStep;
  r.cat = trace::Cat::kDsm;
  r.node = params_.self;
  r.track = trace::kTrackManager;
  r.flow = flow;
  r.a = a;
  r.b = b;
  tracer_->record(r);
}

void Directory::handle_message(const net::Message& msg) {
  // Per-home protocol-load counter: the spread of these across homes is
  // the directory-load-evenness figure (EXPERIMENTS.md).
  if (stats_ != nullptr) stats_->add(home_msgs_counter_);
  switch (static_cast<DsmMsg>(msg.type)) {
    case DsmMsg::kReadReq: return on_request(msg, /*write=*/false);
    case DsmMsg::kWriteReq: return on_request(msg, /*write=*/true);
    case DsmMsg::kInvAck:
    case DsmMsg::kInvAckDiff: return on_inv_ack(msg);
    case DsmMsg::kDowngradeAck:
    case DsmMsg::kDowngradeAckDiff: return on_downgrade_ack(msg);
    default:
      assert(false && "non-directory DSM message routed to Directory");
  }
}

// ---- diff data plane (DESIGN.md §12) ---------------------------------------

std::uint64_t Directory::epoch(std::uint32_t page) const {
  const auto it = diff_.find(page);
  return it == diff_.end() ? 0 : it->second.epoch;
}

std::uint64_t Directory::node_epoch(std::uint32_t page, NodeId node) const {
  const auto it = diff_.find(page);
  return it == diff_.end() ? kNoEpoch : it->second.node_epoch[node];
}

Directory::DiffState& Directory::diff_state(std::uint32_t page) {
  auto [it, inserted] = diff_.try_emplace(page);
  if (inserted) {
    it->second.node_epoch.assign(params_.node_count, kNoEpoch);
  }
  return it->second;
}

void Directory::record_home_update(std::uint32_t page, std::uint64_t mask,
                                   bool known) {
  if (!diff_enabled()) return;
  DiffState& st = diff_state(page);
  if (known && mask == 0) return;  // byte-identical writeback: same version
  ++st.epoch;
  if (known) {
    st.history.push_back(mask);
    if (st.history.size() > params_.dsm.diff_history_depth) {
      st.history.erase(st.history.begin());
    }
  } else {
    // The changed lines are unknown (full-page writeback, or the master
    // mutated its owned home copy in place): every diff base that predates
    // this version is unusable, so the history restarts here.
    st.history.clear();
  }
}

void Directory::record_node_copy(std::uint32_t page, NodeId node) {
  if (!diff_enabled()) return;
  DiffState& st = diff_state(page);
  st.node_epoch[node] = st.epoch;
}

std::uint64_t Directory::apply_writeback_diff(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  assert(diff_enabled() && "diff writeback received with diff plane off");
  const std::uint64_t mask = mem::decode_diff_mask(msg.data);
  const bool applied = mem::apply_diff(msg.data, home_.page_data(page),
                                       mem::diff_line_bytes(home_.page_size()));
  assert(applied && "malformed writeback diff payload");
  (void)applied;
  record_home_update(page, mask, /*known=*/true);
  record_node_copy(page, msg.src);
  if (stats_ != nullptr) stats_->add("dsm.diff_writebacks_applied");
  note("dsm.diff_writeback", msg.flow, page, mask);
  return mask;
}

net::Message Directory::make_data_message(NodeId dst, std::uint32_t page,
                                          std::uint64_t access, bool forward) {
  net::Message msg = make(
      dst, forward ? DsmMsg::kForwardData : DsmMsg::kPageData, page, access);
  const auto data = home_.page_data(page);
#if DQEMU_DSM_DIFF_ENABLED
  if (diff_enabled()) {
    DiffState& st = diff_state(page);
    const std::uint64_t held = st.node_epoch[dst];
    if (held != kNoEpoch && st.epoch - held <= st.history.size()) {
      // The requester's retained bytes are `st.epoch - held` versions old
      // and the history still covers every transition since: the union of
      // those masks is exactly the set of lines that differ.
      std::uint64_t mask = 0;
      for (std::uint64_t i = 0; i < st.epoch - held; ++i) {
        mask |= st.history[st.history.size() - 1 - i];
      }
      msg.type = static_cast<std::uint32_t>(forward ? DsmMsg::kForwardDiff
                                                    : DsmMsg::kPageDiff);
      msg.c = held;
      msg.d = st.epoch;
      msg.data =
          mem::encode_diff(mask, data, mem::diff_line_bytes(home_.page_size()));
      if (stats_ != nullptr) {
        stats_->add(forward ? "dsm.diff_forwards" : "dsm.diff_grants");
      }
      return msg;
    }
    if (stats_ != nullptr) {
      stats_->add(held == kNoEpoch ? "dsm.diff_fallback_unknown"
                                   : "dsm.diff_fallback_stale");
    }
  }
#endif
  msg.data.assign(data.begin(), data.end());
  return msg;
}

void Directory::note_write_pattern(Entry& entry, NodeId node,
                                   std::uint32_t offset) {
  const std::uint32_t shard_size = home_.page_size() / params_.dsm.split_shards;
  const auto shard = static_cast<std::uint8_t>(offset / shard_size);
  if (entry.fs_last_node != kInvalidNode && entry.fs_last_node != node &&
      entry.fs_last_shard != shard) {
    ++entry.fs_count;
  }
  entry.fs_last_node = node;
  entry.fs_last_shard = shard;
}

bool Directory::should_split(const Entry& entry, std::uint32_t page) const {
  return params_.dsm.enable_splitting &&
         entry.state != PageState::kSplit && !in_shadow_pool(page) &&
         entry.fs_count >= params_.dsm.split_threshold &&
         shadow_next_ + params_.dsm.split_shards <=
             params_.shadow_pool_first_page + params_.shadow_pool_page_count;
}

void Directory::on_request(const net::Message& msg, bool write) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  assert(page < entries_.size());
  Entry& entry = entries_[page];
  if (stats_ != nullptr) {
    stats_->add(write ? "dir.write_reqs" : "dir.read_reqs");
  }
  if (params_.sharded) homed_[page] = true;

  // The requester is the wire-level sender unless the master relayed the
  // request here on the sender's behalf (first-touch placement).
  const Request req{relayed_requester(msg, msg.c), write,
                    static_cast<std::uint32_t>(msg.b),
                    static_cast<GuestTid>(msg.c), msg.flow};
  note("dsm.dir.request", req.flow, page,
       (static_cast<std::uint64_t>(entry.state) << 1) | (write ? 1 : 0));

  // A request racing its sender's crash notification is dropped on the
  // floor: granting to a ghost would strand the page Modified-by-nobody.
  if (dead_nodes_.count(req.node) != 0) {
    if (stats_ != nullptr) stats_->add("dir.dead_reqs_dropped");
    return;
  }

  // A request that arrives after the page was split raced with the shadow
  // broadcast: tell the node to re-fault through its (by now updated) map.
  if (entry.state == PageState::kSplit) {
    net::Message retry = make(req.node, DsmMsg::kRetry, page);
    retry.flow = req.flow;
    send(std::move(retry));
    if (stats_ != nullptr) stats_->add("dir.retries");
    return;
  }

  if (write) note_write_pattern(entry, req.node, req.offset);

  if (entry.busy) {
    entry.queue.push_back(req);
    if (stats_ != nullptr) stats_->add("dir.queued_reqs");
    note("dsm.dir.queued", req.flow, page, entry.queue.size());
    return;
  }
  start_transaction(page, req);
}

void Directory::start_transaction(std::uint32_t page, const Request& req) {
  Entry& entry = entries_[page];
  assert(!entry.busy);
  entry.busy = true;
  entry.current = req;
  entry.splitting = false;
  entry.acks_outstanding = 0;

  if (should_split(entry, page)) {
    // Recall every cached copy, then split (complete_transaction).
    entry.splitting = true;
    if (entry.state == PageState::kModified) {
      if (entry.owner == params_.self) {
        // Home copy is the owned copy; nothing to recall.
        home_.set_access(page, mem::PageAccess::kNone);
      } else {
        send_chained(make(entry.owner, DsmMsg::kInvalidate, page, 1),
                     req.flow);
        ++entry.acks_outstanding;
      }
    } else if (entry.state == PageState::kShared) {
      for (NodeId n = 0; n < params_.node_count; ++n) {
        if (entry.sharers.contains(n)) {
          send_chained(make(n, DsmMsg::kInvalidate, page, 0), req.flow);
          ++entry.acks_outstanding;
        }
      }
    }
    if (entry.acks_outstanding == 0) complete_transaction(page);
    return;
  }

  if (req.write) {
    switch (entry.state) {
      case PageState::kModified:
        if (entry.owner == req.node) {
          grant_and_finish(page);  // benign re-grant
          return;
        }
        send_chained(make(entry.owner, DsmMsg::kInvalidate, page, 1),
                     req.flow);
        entry.acks_outstanding = 1;
        if (stats_ != nullptr) stats_->add("dir.owner_recalls");
        return;
      case PageState::kShared: {
        for (NodeId n = 0; n < params_.node_count; ++n) {
          if (n != req.node && entry.sharers.contains(n)) {
            send_chained(make(n, DsmMsg::kInvalidate, page, 0), req.flow);
            ++entry.acks_outstanding;
          }
        }
        if (stats_ != nullptr && entry.acks_outstanding > 0)
          stats_->add("dir.sharer_invalidations", entry.acks_outstanding);
        if (entry.acks_outstanding == 0) complete_transaction(page);
        return;
      }
      case PageState::kHome:
        complete_transaction(page);
        return;
      case PageState::kSplit:
        assert(false);
        return;
    }
  } else {
    switch (entry.state) {
      case PageState::kModified:
        if (entry.owner == req.node) {
          grant_and_finish(page);
          return;
        }
        send_chained(make(entry.owner, DsmMsg::kDowngrade, page), req.flow);
        entry.acks_outstanding = 1;
        if (stats_ != nullptr) stats_->add("dir.downgrades");
        return;
      case PageState::kShared:
      case PageState::kHome:
        complete_transaction(page);
        return;
      case PageState::kSplit:
        assert(false);
        return;
    }
  }
}

void Directory::on_inv_ack(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  Entry& entry = entries_[page];
  assert(entry.busy && entry.acks_outstanding > 0);
  if (static_cast<DsmMsg>(msg.type) == DsmMsg::kInvAckDiff) {
    assert(msg.b == 1);
    apply_writeback_diff(msg);
  } else if (msg.b == 1) {
    // Full-page writeback from the former owner: refresh home storage.
    // The changed lines are unknown (the owner had no twin — e.g. the
    // master's boot-time ownership), so the diff history restarts.
    assert(msg.data.size() == home_.page_size());
    std::memcpy(home_.page_data(page).data(), msg.data.data(),
                msg.data.size());
    record_home_update(page, 0, /*known=*/false);
    record_node_copy(page, msg.src);
  }
  if (--entry.acks_outstanding == 0) complete_transaction(page);
}

void Directory::on_downgrade_ack(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  Entry& entry = entries_[page];
  assert(entry.busy && entry.acks_outstanding > 0);
  if (static_cast<DsmMsg>(msg.type) == DsmMsg::kDowngradeAckDiff) {
    apply_writeback_diff(msg);
  } else {
    assert(msg.data.size() == home_.page_size());
    std::memcpy(home_.page_data(page).data(), msg.data.data(), msg.data.size());
    record_home_update(page, 0, /*known=*/false);
    record_node_copy(page, msg.src);
  }
  // The former owner keeps a read-only copy.
  entry.state = PageState::kShared;
  entry.sharers = NodeSet::single(entry.owner);
  entry.owner = kInvalidNode;
  if (--entry.acks_outstanding == 0) complete_transaction(page);
}

void Directory::complete_transaction(std::uint32_t page) {
  Entry& entry = entries_[page];
  if (entry.splitting) {
    perform_split(page);
    return;
  }
  grant_and_finish(page);
}

void Directory::grant_and_finish(std::uint32_t page) {
  Entry& entry = entries_[page];
  const Request& req = entry.current;
  const bool already_sharer = entry.sharers.contains(req.node);
  const bool already_owner =
      entry.state == PageState::kModified && entry.owner == req.node;

  // Never grant to a ghost: the requester died while its transaction was
  // in flight. For a write the recalls already ran — every cached copy is
  // invalidated and (unless the ghost was already the owner) the home
  // bytes are fresh — so the page parks kHome. A dead owner's entry is
  // left as-is for the crash flush / dead-node sweep to reclaim.
  if (dead_nodes_.count(req.node) != 0) {
    if (req.write && !already_owner) {
      entry.state = PageState::kHome;
      entry.owner = kInvalidNode;
      entry.sharers.clear();
    }
    if (stats_ != nullptr) stats_->add("dir.dead_grants_skipped");
    finish_entry(page);
    return;
  }

  // A request from the current owner (a duplicate/raced message: owners
  // never fault) must not demote the entry to Shared — the home copy may
  // be stale, and only the owner holds the fresh bytes. Re-grant in place.
  if (already_owner) {
    send_chained(make(req.node, DsmMsg::kPageGrant, page, kAccessWrite),
                 req.flow);
    if (stats_ != nullptr) stats_->add("dir.grants_no_data");
    finish_entry(page);
    return;
  }

  if (req.write) {
    entry.state = PageState::kModified;
    entry.owner = req.node;
    entry.sharers.clear();
  } else {
    entry.state = PageState::kShared;
    entry.sharers.add(req.node);
    entry.owner = kInvalidNode;
  }

  const std::uint64_t access = req.write ? kAccessWrite : kAccessRead;
  note("dsm.dir.grant", req.flow, page,
       (static_cast<std::uint64_t>(entry.state) << 1) | access);
  if (already_sharer || already_owner) {
    // Requester's copy is fresh: upgrade/re-grant without content.
    send_chained(make(req.node, DsmMsg::kPageGrant, page, access), req.flow);
    if (stats_ != nullptr) stats_->add("dir.grants_no_data");
  } else {
    net::Message msg =
        make_data_message(req.node, page, access, /*forward=*/false);
    charge_data_plane(stats_, msg, home_.page_size());
    record_node_copy(page, req.node);
    send_chained(std::move(msg), req.flow);
    if (stats_ != nullptr) stats_->add("dir.grants_with_data");
  }

  // A write grant makes the home copy stale, including the home node's own
  // mapping of it (unless the home is the new owner).
  if (req.write && req.node != params_.self) {
    home_.set_access(page, mem::PageAccess::kNone);
  }

  // Forwarding feeds on read streams only: pushing Shared copies into a
  // write stream would make every subsequent owner write pay an extra
  // invalidation round-trip.
  if (!req.write) maybe_forward(req.node, page);
  finish_entry(page);
}

void Directory::finish_entry(std::uint32_t page) {
  Entry& entry = entries_[page];
  entry.busy = false;
  entry.splitting = false;
  if (!entry.queue.empty()) {
    const Request next = entry.queue.front();
    entry.queue.pop_front();
    if (entry.state == PageState::kSplit) {
      send_chained(make(next.node, DsmMsg::kRetry, page), next.flow);
      if (stats_ != nullptr) stats_->add("dir.retries");
      finish_entry(page);
      return;
    }
    start_transaction(page, next);
  }
}

void Directory::perform_split(std::uint32_t page) {
  Entry& entry = entries_[page];
  const std::uint32_t shards = params_.dsm.split_shards;
  const std::uint32_t shard_size = home_.page_size() / shards;
  assert(shadow_next_ + shards <=
         params_.shadow_pool_first_page + params_.shadow_pool_page_count);

  // Allocate shadow pages and distribute the content: shard s keeps its
  // bytes at the *same page offset* in shadow page s (paper figure 4).
  std::vector<std::uint32_t> shadows(shards);
  const auto src = home_.page_data(page);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shadows[s] = shadow_next_++;
    auto dst = home_.page_data(shadows[s]);
    std::memset(dst.data(), 0, dst.size());
    std::memcpy(dst.data() + s * shard_size, src.data() + s * shard_size,
                shard_size);
    Entry& shadow_entry = entries_[shadows[s]];
    shadow_entry.state = PageState::kHome;
    shadow_entry.owner = kInvalidNode;
    shadow_entry.sharers.clear();
    if (params_.sharded) homed_[shadows[s]] = true;
  }
  shadow_of_[page] = shadows;
  entry.state = PageState::kSplit;
  entry.owner = kInvalidNode;
  entry.sharers.clear();
  // The original page is retired and the shadow pages start life as fresh
  // home content: no diff base survives the split on either side.
  diff_.erase(page);
  for (const std::uint32_t shadow : shadows) diff_.erase(shadow);
  home_.set_access(page, mem::PageAccess::kNone);
  ++splits_;
  if (stats_ != nullptr) stats_->add("dir.splits");
  note("dsm.split", entry.current.flow, page, shards);
  DQEMU_DEBUG("directory: split page %u into %u shadows starting at %u", page,
              shards, shadows[0]);

  // Broadcast the mapping-table update, then tell the requester (and any
  // queued requesters) to re-fault. Per-channel FIFO guarantees every node
  // updates its map before a retry reaches it.
  net::Message update = make(0, DsmMsg::kShadowUpdate, page);
  update.data.resize(shards * 4);
  std::memcpy(update.data.data(), shadows.data(), shards * 4);
  for (NodeId n = 0; n < params_.node_count; ++n) {
    net::Message m = update;
    m.dst = n;
    send(std::move(m));
  }
  send_chained(make(entry.current.node, DsmMsg::kRetry, page),
               entry.current.flow);
  while (!entry.queue.empty()) {
    send_chained(make(entry.queue.front().node, DsmMsg::kRetry, page),
                 entry.queue.front().flow);
    entry.queue.pop_front();
  }
  entry.fs_count = 0;
  entry.fs_last_node = kInvalidNode;
  entry.busy = false;
  entry.splitting = false;
}

void Directory::maybe_forward(NodeId requester, std::uint32_t page) {
  if (!params_.dsm.enable_forwarding) return;
  const std::uint32_t run = streams_[requester].on_request(page);
  if (run < params_.dsm.forward_trigger) return;

  // Back-pressure: when this home's egress link is already backed up,
  // speculative pushes would head-of-line-block demand grants. Skip; the
  // stream stays alive and resumes pushing once the NIC drains.
  using time_literals::kUs;
  if (network_.egress_free_at(params_.self) > queue_.now() + 2000 * kUs) {
    if (stats_ != nullptr) stats_->add("dir.forwards_skipped_backpressure");
    return;
  }

  // Readahead-style window: grows with the observed run length, capped at
  // forward_depth — short streams (a thread's partition) overshoot little,
  // long walks reach the full pipeline depth.
  const std::uint32_t window = std::min(run, params_.dsm.forward_depth);
  std::uint32_t last_pushed = page;
  for (std::uint32_t p = page + 1;
       p <= page + window && p < entries_.size(); ++p) {
    Entry& entry = entries_[p];
    // A shard may only speculate on pages it homes: anything it has not
    // already served belongs (or may belong) to another home.
    if (params_.sharded && !homed_[p]) continue;
    if (entry.busy || entry.state == PageState::kSplit ||
        in_shadow_pool(p)) {
      continue;
    }
    if (entry.sharers.contains(requester)) continue;  // already cached there
    // Never push a page some other node has been writing: the Shared copy
    // would tax every later write with an invalidation round-trip.
    if (entry.fs_last_node != kInvalidNode && entry.fs_last_node != requester) {
      continue;
    }
    if (entry.state == PageState::kModified) {
      if (entry.owner == params_.self) {
        // Home copy is the fresh copy: downgrade the home node in place so
        // the page becomes shareable without a recall round-trip. The home
        // node may have written the home copy while it owned the page, so
        // any recorded version label is stale: advance the epoch with an
        // unknown mask before handing the content out.
        record_home_update(p, 0, /*known=*/false);
        record_node_copy(p, params_.self);
        home_.set_access(p, mem::PageAccess::kRead);
        entry.state = PageState::kShared;
        entry.sharers = NodeSet::single(params_.self);
        entry.owner = kInvalidNode;
      } else {
        continue;  // fresh copy is remote; forwarding would need a recall
      }
    }
    entry.state = PageState::kShared;
    entry.sharers.add(requester);
    note("dsm.forward_push", 0, p, requester);
    net::Message msg = make_data_message(requester, p, 0, /*forward=*/true);
    charge_data_plane(stats_, msg, home_.page_size());
    record_node_copy(p, requester);
    send(std::move(msg));
    last_pushed = p;
    if (stats_ != nullptr) stats_->add("dir.forwards");
  }
  // The pushed pages will not generate requests; keep the stream alive
  // across the window so the next fault continues the run.
  if (last_pushed != page) {
    streams_[requester].retarget(page + 1, last_pushed + 1);
  }
}

// ---- whole-node fault plane (DESIGN.md §18) --------------------------------

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  std::uint8_t b[4];
  std::memcpy(b, &v, 4);
  out.insert(out.end(), b, b + 4);
}

std::uint32_t get_u32(std::span<const std::uint8_t>& in) {
  assert(in.size() >= 4);
  std::uint32_t v = 0;
  std::memcpy(&v, in.data(), 4);
  in = in.subspan(4);
  return v;
}

}  // namespace

void Directory::on_crash_flush(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  assert(page < entries_.size());
  // The flush is its sender's death certificate and travels one hop, so it
  // beats the master's two-hop kNodeDead broadcast: stop granting to the
  // sender now.
  dead_nodes_.insert(msg.src);
  Entry& entry = entries_[page];
  if (entry.state != PageState::kModified || entry.owner != msg.src) {
    // The protocol already moved on (a racing recall completed): stale.
    if (stats_ != nullptr) stats_->add("dsm.crash_flush_stale");
    return;
  }
  assert(msg.data.size() == home_.page_size());
  std::memcpy(home_.page_data(page).data(), msg.data.data(), msg.data.size());
  record_home_update(page, 0, /*known=*/false);
  if (stats_ != nullptr) stats_->add("dsm.crash_flushes");
  note("dsm.crash_flush", msg.flow, page, msg.src);
  if (entry.busy && entry.acks_outstanding > 0) {
    // Mid-recall of the dying owner's copy (a Modified entry recalls
    // exactly its owner): the ack will never come — this flush *is* the
    // writeback, so it completes the transaction.
    if (--entry.acks_outstanding == 0) complete_transaction(page);
    return;
  }
  entry.state = PageState::kHome;
  entry.owner = kInvalidNode;
  entry.sharers.clear();
}

void Directory::on_node_dead(NodeId dead) {
  dead_nodes_.insert(dead);
  std::uint64_t reclaimed = 0;
  for (std::uint32_t page = 0; page < entries_.size(); ++page) {
    Entry& entry = entries_[page];
    if (params_.sharded && !homed_[page]) continue;
    // Purge the dead node's queued requests before any completion below
    // can pop one of them.
    const auto dropped = std::erase_if(
        entry.queue, [dead](const Request& r) { return r.node == dead; });
    if (stats_ != nullptr && dropped > 0) {
      stats_->add("dir.dead_reqs_dropped", dropped);
    }
    if (entry.fs_last_node == dead) {
      entry.fs_last_node = kInvalidNode;
      entry.fs_last_shard = 0xFF;
    }
    const bool was_sharer = entry.sharers.contains(dead);
    if (was_sharer) entry.sharers.remove(dead);
    if (entry.busy && entry.acks_outstanding > 0) {
      if (entry.state == PageState::kModified && entry.owner == dead) {
        // The recall ack died with the owner; its last-gasp flush (if it
        // got one out) already refreshed the home bytes. Complete with
        // what home storage holds.
        entry.acks_outstanding = 0;
        complete_transaction(page);
      } else if (entry.state == PageState::kShared && was_sharer &&
                 (entry.splitting || entry.current.node != dead)) {
        // One of the outstanding invalidate acks was the dead sharer's
        // (a split recalls every sharer, a write upgrade all but the
        // requester).
        if (--entry.acks_outstanding == 0) complete_transaction(page);
      }
    }
    if (!entry.busy && entry.state == PageState::kModified &&
        entry.owner == dead) {
      // Reclaim home. Without a flush the home bytes are stale: a crash
      // with no last gasp loses unflushed writes, deterministically.
      entry.state = PageState::kHome;
      entry.owner = kInvalidNode;
      entry.sharers.clear();
      ++reclaimed;
    } else if (!entry.busy && entry.state == PageState::kShared &&
               entry.sharers.empty()) {
      // The dead node was the last sharer; the home copy is fresh.
      entry.state = PageState::kHome;
      entry.owner = kInvalidNode;
    }
  }
  if (stats_ != nullptr && reclaimed > 0) {
    stats_->add("dsm.pages_reclaimed", reclaimed);
  }
}

std::vector<std::uint32_t> Directory::handoff_pages() const {
  std::vector<std::uint32_t> pages;
  if (!params_.sharded) return pages;
  for (std::uint32_t page = 0; page < homed_.size(); ++page) {
    if (homed_[page]) pages.push_back(page);
  }
  return pages;
}

void Directory::serialize_entry(std::uint32_t page,
                                std::vector<std::uint8_t>& out) const {
  const Entry& entry = entries_[page];
  put_u32(out, static_cast<std::uint32_t>(entry.state));
  put_u32(out, entry.owner);
  std::vector<NodeId> sharers;
  for (NodeId n = 0; n < params_.node_count; ++n) {
    if (entry.sharers.contains(n)) sharers.push_back(n);
  }
  put_u32(out, static_cast<std::uint32_t>(sharers.size()));
  for (const NodeId n : sharers) put_u32(out, n);
  const auto& shadows = shadow_of_[page];
  put_u32(out, static_cast<std::uint32_t>(shadows.size()));
  for (const std::uint32_t s : shadows) put_u32(out, s);
  // Home bytes ship for everything but a split (retired) page. For a
  // Modified page the home copy is exactly the owner's grant-time bytes —
  // the diff base its eventual writeback is encoded against — so shipping
  // it keeps diff writebacks to the adopting home sound.
  const bool content = entry.state != PageState::kSplit;
  put_u32(out, content ? 1u : 0u);
  if (content) {
    const auto data = home_.page_data(page);
    out.insert(out.end(), data.begin(), data.end());
  }
}

void Directory::adopt_entry(std::uint32_t page,
                            std::span<const std::uint8_t> data) {
  assert(page < entries_.size());
  Entry& entry = entries_[page];
  assert(!entry.busy && "adopted a page the adopting home was servicing");
  const auto state = static_cast<PageState>(get_u32(data));
  const auto owner = static_cast<NodeId>(get_u32(data));
  const std::uint32_t nsharers = get_u32(data);
  NodeSet sharers;
  for (std::uint32_t i = 0; i < nsharers; ++i) {
    sharers.add(static_cast<NodeId>(get_u32(data)));
  }
  const std::uint32_t nshadows = get_u32(data);
  std::vector<std::uint32_t> shadows(nshadows);
  for (std::uint32_t i = 0; i < nshadows; ++i) shadows[i] = get_u32(data);
  const bool content = get_u32(data) != 0;

  entry.state = state;
  entry.owner = owner;
  entry.sharers = sharers;
  entry.queue.clear();
  entry.acks_outstanding = 0;
  entry.splitting = false;
  entry.fs_last_node = kInvalidNode;
  entry.fs_last_shard = 0xFF;
  entry.fs_count = 0;
  if (!shadows.empty()) {
    shadow_of_[page] = shadows;
    for (const std::uint32_t s : shadows) foreign_shadow_.insert(s);
  }
  // When this home's own client is the Modified owner, its mapping *is*
  // the fresh copy — the shipped grant-time base must not clobber it.
  if (content && !(state == PageState::kModified && owner == params_.self)) {
    assert(data.size() == home_.page_size());
    std::memcpy(home_.page_data(page).data(), data.data(), data.size());
  }
  // The adopting home's client keeps only the rights the entry grants it;
  // anything else re-faults here.
  if (state == PageState::kModified && owner == params_.self) {
    home_.set_access(page, mem::PageAccess::kReadWrite);
  } else if (state == PageState::kShared && sharers.contains(params_.self)) {
    home_.set_access(page, mem::PageAccess::kRead);
  } else {
    home_.set_access(page, mem::PageAccess::kNone);
  }
  // No diff state survives adoption: the first transfer from here is a
  // full one and version tracking restarts with it.
  diff_.erase(page);
  if (params_.sharded) homed_[page] = true;
  if (stats_ != nullptr) stats_->add("dsm.home_handoffs_adopted");
}

std::uint64_t Directory::digest() const {
  // Same FNV-1a recipe as core/checkpoint.hpp, restated locally so the DSM
  // layer does not depend upward on core.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto fold = [&h](std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x00000100000001B3ULL;
    }
  };
  for (std::uint32_t page = 0; page < entries_.size(); ++page) {
    if (params_.sharded && !homed_[page]) continue;
    const Entry& entry = entries_[page];
    // Skip pages still in their boot-default state so a quiet page costs
    // the same whether or not this shard ever touched it.
    const bool boot_default = entry.state == PageState::kModified &&
                              entry.owner == kMasterNode &&
                              entry.sharers.empty() && !entry.busy &&
                              entry.queue.empty();
    if (boot_default) continue;
    fold(page);
    fold(static_cast<std::uint64_t>(entry.state));
    fold(entry.owner);
    for (NodeId n = 0; n < params_.node_count; ++n) {
      if (entry.sharers.contains(n)) fold(n);
    }
    fold(entry.busy ? 1 : 0);
    fold(entry.queue.size());
  }
  return h;
}

bool Directory::check_invariants() const {
  for (std::uint32_t page = 0; page < entries_.size(); ++page) {
    const Entry& entry = entries_[page];
    if (entry.busy) continue;  // transitional states are exempt
    switch (entry.state) {
      case PageState::kModified:
        if (!entry.sharers.empty() || entry.owner == kInvalidNode ||
            entry.owner >= params_.node_count) {
          DQEMU_ERROR("invariant: modified page %u has sharers/bad owner", page);
          return false;
        }
        break;
      case PageState::kShared:
        if (entry.sharers.empty()) {
          DQEMU_ERROR("invariant: shared page %u has no sharers", page);
          return false;
        }
        break;
      case PageState::kSplit:
        if (!entry.sharers.empty() || shadow_of_[page].empty()) {
          DQEMU_ERROR("invariant: split page %u inconsistent", page);
          return false;
        }
        for (const std::uint32_t shadow : shadow_of_[page]) {
          if (!in_shadow_pool(shadow) && foreign_shadow_.count(shadow) == 0) {
            DQEMU_ERROR("invariant: shadow page %u outside pool", shadow);
            return false;
          }
        }
        break;
      case PageState::kHome:
        break;
    }
  }
  return true;
}

}  // namespace dqemu::dsm
