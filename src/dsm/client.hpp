// Node-side DSM cache controller.
//
// One per node (including the master, whose messages loop back). Sends
// page requests on guest faults, coalesces concurrent faults for the same
// page, installs granted pages, and complies with invalidate/downgrade/
// shadow-update traffic from the directory. Invalidation also snoops the
// node's LL/SC table (section 4.4's false-positive kill) and translation
// cache (guest code pages).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "dsm/wire.hpp"
#include "dsm/placement.hpp"
#include "mem/address_space.hpp"
#include "mem/page_diff.hpp"
#include "mem/shadow_map.hpp"
#include "net/network.hpp"
#include "sim/timer.hpp"
#include "trace/tracer.hpp"

namespace dqemu::dsm {

class DsmClient {
 public:
  /// `wake_page` is invoked when a page request completes (grant or
  /// retry); the node layer unblocks the guest threads parked on it.
  /// `llsc` / `tcache` may be null in unit tests. `enable_diff_transfers`
  /// must match the directory's setting (cluster-wide DsmConfig).
  /// `request_timeout` > 0 arms a per-request watchdog (DESIGN.md §13) that
  /// re-issues a page request still outstanding after that long; it is only
  /// active when the network's fault path is (requests cannot get stuck on
  /// the reliable wire).
  DsmClient(NodeId self, net::Network& network, mem::AddressSpace& space,
            mem::ShadowMap& shadow, dbt::LlscTable* llsc,
            dbt::TranslationCache* tcache, StatsRegistry* stats,
            std::function<void(std::uint32_t page)> wake_page,
            trace::Tracer* tracer = nullptr,
            bool enable_diff_transfers = false,
            DurationPs request_timeout = 0, HomeView* homes = nullptr);

  /// Issues a read or write request for `page` unless one is already in
  /// flight (in which case the write intent is merged: a still-unsatisfied
  /// writer simply re-faults after the read grant lands). `offset` is the
  /// faulting byte offset within the page, feeding the master's
  /// false-sharing detector.
  void request_page(std::uint32_t page, std::uint32_t offset, bool write,
                    GuestTid tid);

  /// True while a request for `page` is outstanding.
  [[nodiscard]] bool pending(std::uint32_t page) const {
    return pending_.contains(page);
  }

  /// Crash last gasp (DESIGN.md §18): drops every in-flight request with
  /// its retransmission watchdog (the RAII timers cancel on destruction),
  /// so nothing fires into the dead node's freed thread state. The captured
  /// threads re-fault on their new node, which re-issues the requests.
  void crash_teardown() { pending_.clear(); }

  /// Dispatches an incoming DSM message addressed to this node.
  void handle_message(const net::Message& msg);

  [[nodiscard]] NodeId self() const { return self_; }

  /// True when the diff data plane is compiled in and runtime-enabled.
  [[nodiscard]] bool diff_enabled() const {
#if DQEMU_DSM_DIFF_ENABLED
    return enable_diff_;
#else
    return false;
#endif
  }

  /// Twin (pristine writable-page copy) bookkeeping, for tests.
  [[nodiscard]] bool has_twin(std::uint32_t page) const {
    return twins_.has(page);
  }

 private:
  void on_page_data(const net::Message& msg, bool grant_only);
  void on_page_diff(const net::Message& msg);
  void on_retry(const net::Message& msg);
  void on_invalidate(const net::Message& msg);
  void on_downgrade(const net::Message& msg);
  void on_shadow_update(const net::Message& msg);
  void on_forward_data(const net::Message& msg);
  void on_forward_diff(const net::Message& msg);
  /// Grants/keeps access after an unsolicited push installed fresh content
  /// (shared logic of the full and diff forward paths).
  void finish_forward_install(const net::Message& msg);
  /// Snapshots the twin of `page` when a write grant lands (no-op unless
  /// the diff plane is on; never refreshes an existing twin).
  void capture_twin(std::uint32_t page);
  /// Diff-encodes the recalled page against its twin into `ack` (type
  /// kInvAckDiff/kDowngradeAckDiff) or falls back to attaching the full
  /// page (kInvAck/kDowngradeAck) when no twin exists.
  void encode_writeback(net::Message& ack, std::uint32_t page,
                        DsmMsg full_type, DsmMsg diff_type);
  void drop_page_locally(std::uint32_t page);
  /// Closes the fault's causal chain (grant installed or split retry).
  void end_fault_flow(std::uint32_t page, bool retried);
  /// (Re-)arms the request watchdog for a pending page.
  void arm_watchdog(std::uint32_t page);
  /// Watchdog fire: the request has been outstanding for its full timeout —
  /// re-issue it (the directory tolerates duplicates) and back off.
  void on_request_timeout(std::uint32_t page);
  /// Records a protocol instant on this node's track.
  void note(const char* name, std::uint64_t flow, std::uint64_t a,
            std::uint64_t b);

  /// Home of `page` (kMasterNode unless sharding is on), and the learn
  /// hook that records authoritative senders under first-touch placement.
  [[nodiscard]] NodeId home_of(std::uint32_t page) const {
    return homes_ != nullptr ? homes_->home_of(page) : kMasterNode;
  }
  void learn_home(std::uint32_t page, NodeId home) {
    if (homes_ != nullptr) homes_->learn(page, home);
  }

  NodeId self_;
  net::Network& network_;
  mem::AddressSpace& space_;
  mem::ShadowMap& shadow_;
  dbt::LlscTable* llsc_;
  dbt::TranslationCache* tcache_;
  StatsRegistry* stats_;
  std::function<void(std::uint32_t)> wake_page_;
  trace::Tracer* tracer_;
  bool enable_diff_ = false;
  /// Pristine copies of writable pages (diff plane only): captured at
  /// write-grant time, diffed against at recall, dropped with the page.
  mem::TwinStore twins_;
  DurationPs request_timeout_ = 0;
  /// Outstanding request state for a page.
  struct Pending {
    bool write = false;
    std::uint64_t flow = 0;  ///< flight-recorder chain of this fault
    std::uint32_t offset = 0;  ///< original faulting offset, for re-issue
    GuestTid tid = 0;
    DurationPs timeout = 0;  ///< current watchdog period (backed off 2x)
    std::unique_ptr<sim::Timer> watchdog;  ///< cancelled by completion
  };
  std::unordered_map<std::uint32_t, Pending> pending_;
  /// Null in single-master mode; the node's placement view when sharded.
  HomeView* homes_ = nullptr;
};

}  // namespace dqemu::dsm
