// Node-side DSM cache controller.
//
// One per node (including the master, whose messages loop back). Sends
// page requests on guest faults, coalesces concurrent faults for the same
// page, installs granted pages, and complies with invalidate/downgrade/
// shadow-update traffic from the directory. Invalidation also snoops the
// node's LL/SC table (section 4.4's false-positive kill) and translation
// cache (guest code pages).
#pragma once

#include <functional>
#include <unordered_map>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "dsm/wire.hpp"
#include "mem/address_space.hpp"
#include "mem/shadow_map.hpp"
#include "net/network.hpp"
#include "trace/tracer.hpp"

namespace dqemu::dsm {

class DsmClient {
 public:
  /// `wake_page` is invoked when a page request completes (grant or
  /// retry); the node layer unblocks the guest threads parked on it.
  /// `llsc` / `tcache` may be null in unit tests.
  DsmClient(NodeId self, net::Network& network, mem::AddressSpace& space,
            mem::ShadowMap& shadow, dbt::LlscTable* llsc,
            dbt::TranslationCache* tcache, StatsRegistry* stats,
            std::function<void(std::uint32_t page)> wake_page,
            trace::Tracer* tracer = nullptr);

  /// Issues a read or write request for `page` unless one is already in
  /// flight (in which case the write intent is merged: a still-unsatisfied
  /// writer simply re-faults after the read grant lands). `offset` is the
  /// faulting byte offset within the page, feeding the master's
  /// false-sharing detector.
  void request_page(std::uint32_t page, std::uint32_t offset, bool write,
                    GuestTid tid);

  /// True while a request for `page` is outstanding.
  [[nodiscard]] bool pending(std::uint32_t page) const {
    return pending_.contains(page);
  }

  /// Dispatches an incoming DSM message addressed to this node.
  void handle_message(const net::Message& msg);

  [[nodiscard]] NodeId self() const { return self_; }

 private:
  void on_page_data(const net::Message& msg, bool grant_only);
  void on_retry(const net::Message& msg);
  void on_invalidate(const net::Message& msg);
  void on_downgrade(const net::Message& msg);
  void on_shadow_update(const net::Message& msg);
  void on_forward_data(const net::Message& msg);
  void drop_page_locally(std::uint32_t page);
  /// Closes the fault's causal chain (grant installed or split retry).
  void end_fault_flow(std::uint32_t page, bool retried);
  /// Records a protocol instant on this node's track.
  void note(const char* name, std::uint64_t flow, std::uint64_t a,
            std::uint64_t b);

  NodeId self_;
  net::Network& network_;
  mem::AddressSpace& space_;
  mem::ShadowMap& shadow_;
  dbt::LlscTable* llsc_;
  dbt::TranslationCache* tcache_;
  StatsRegistry* stats_;
  std::function<void(std::uint32_t)> wake_page_;
  trace::Tracer* tracer_;
  /// Outstanding request state for a page.
  struct Pending {
    bool write = false;
    std::uint64_t flow = 0;  ///< flight-recorder chain of this fault
  };
  std::unordered_map<std::uint32_t, Pending> pending_;
};

}  // namespace dqemu::dsm
