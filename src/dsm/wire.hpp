// DSM protocol message vocabulary (paper sections 4.2, 5.1, 5.2).
//
// Message-type space is partitioned across subsystems:
//   0x100-0x1FF  DSM coherence protocol (this file)
//   0x200-0x2FF  syscall delegation (sys/delegation.hpp)
//   0x300-0x3FF  thread management (core/node.hpp)
#pragma once

#include <cstdint>

namespace dqemu::dsm {

enum class DsmMsg : std::uint32_t {
  // Slave -> master (manager thread).
  kReadReq = 0x100,   ///< a=page, b=faulting offset, c=tid
  kWriteReq = 0x101,  ///< a=page, b=faulting offset, c=tid
  kInvAck = 0x102,    ///< a=page, b=1 if dirty content attached (ex-owner)
  kDowngradeAck = 0x103,  ///< a=page, data=page content

  // Master -> slave (communicator thread).
  kPageData = 0x110,   ///< a=page, b=access (1=read, 2=rw), data=content
  kPageGrant = 0x111,  ///< a=page, b=access; no content (upgrade/re-grant)
  kRetry = 0x112,      ///< a=page: re-fault; the page was just split
  kInvalidate = 0x113, ///< a=page, b=1 if writeback of dirty content needed
  kDowngrade = 0x114,  ///< a=page: drop to read-only, send content back
  kShadowUpdate = 0x115,  ///< a=orig page, data=LE u32 shadow page numbers
  kForwardData = 0x116,   ///< a=page, data=content; unsolicited push (5.2)
};

[[nodiscard]] constexpr bool is_dsm_message(std::uint32_t type) {
  return type >= 0x100 && type < 0x200;
}

/// Access codes carried in PageData/PageGrant `b` fields.
inline constexpr std::uint64_t kAccessRead = 1;
inline constexpr std::uint64_t kAccessWrite = 2;

}  // namespace dqemu::dsm
