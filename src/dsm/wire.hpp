// DSM protocol message vocabulary (paper sections 4.2, 5.1, 5.2).
//
// Message-type space is partitioned across subsystems:
//   0x100-0x1FF  DSM coherence protocol (this file)
//   0x200-0x2FF  syscall delegation (sys/delegation.hpp)
//   0x300-0x3FF  thread management (core/node.hpp)
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "net/message.hpp"

// Compile-time gate for the diff-encoded data plane (DESIGN.md §12). With
// DQEMU_DSM_DIFF_ENABLED == 0 (CMake -DDQEMU_ENABLE_DSM_DIFF=OFF) every
// twin/diff code path in the client and directory compiles out and the
// protocol is bit-for-bit the full-page one, regardless of
// DsmConfig::enable_diff_transfers.
#ifndef DQEMU_DSM_DIFF_ENABLED
#define DQEMU_DSM_DIFF_ENABLED 1
#endif

namespace dqemu::dsm {

enum class DsmMsg : std::uint32_t {
  // Slave -> master (manager thread).
  kReadReq = 0x100,   ///< a=page, b=faulting offset, c=tid
  kWriteReq = 0x101,  ///< a=page, b=faulting offset, c=tid
  kInvAck = 0x102,    ///< a=page, b=1 if dirty content attached (ex-owner)
  kDowngradeAck = 0x103,  ///< a=page, data=page content

  // Master -> slave (communicator thread).
  kPageData = 0x110,   ///< a=page, b=access (1=read, 2=rw), data=content
  kPageGrant = 0x111,  ///< a=page, b=access; no content (upgrade/re-grant)
  kRetry = 0x112,      ///< a=page: re-fault; the page was just split
  kInvalidate = 0x113, ///< a=page, b=1 if writeback of dirty content needed
  kDowngrade = 0x114,  ///< a=page: drop to read-only, send content back
  kShadowUpdate = 0x115,  ///< a=orig page, data=LE u32 shadow page numbers
  kForwardData = 0x116,   ///< a=page, data=content; unsolicited push (5.2)

  // Diff-encoded data plane (DESIGN.md §12). Payloads are the
  // mem/page_diff.hpp wire format: dirty-line bitmap + packed lines.
  kInvAckDiff = 0x117,       ///< a=page, b=1 (always dirty), data=diff
  kDowngradeAckDiff = 0x118, ///< a=page, data=diff vs the twin
  kPageDiff = 0x119,    ///< a=page, b=access, c=base epoch, d=new epoch,
                        ///< data=diff vs the requester's retained copy
  kForwardDiff = 0x11A, ///< a=page, c=base epoch, d=new epoch, data=diff
};

[[nodiscard]] constexpr bool is_dsm_message(std::uint32_t type) {
  return type >= 0x100 && type < 0x200;
}

/// Access codes carried in PageData/PageGrant `b` fields.
inline constexpr std::uint64_t kAccessRead = 1;
inline constexpr std::uint64_t kAccessWrite = 2;

/// Data-plane wire accounting: every DSM message that carries page content
/// (full or diff-encoded) is charged here so benches can assert transfer
/// volume from counters. `full_bytes` is the payload a full-page transfer
/// would have carried; the delta to the actual payload is the saving the
/// diff encoding bought. Loopback messages never touch the wire and are
/// not charged, matching the Network's own byte accounting.
inline void charge_data_plane(StatsRegistry* stats, const net::Message& msg,
                              std::uint64_t full_bytes) {
  if (stats == nullptr || msg.src == msg.dst) return;
  stats->add("dsm.bytes_on_wire", msg.wire_bytes());
  if (full_bytes > msg.data.size()) {
    stats->add("dsm.bytes_saved", full_bytes - msg.data.size());
  }
}

}  // namespace dqemu::dsm
