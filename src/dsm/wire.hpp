// DSM protocol message vocabulary (paper sections 4.2, 5.1, 5.2).
//
// Message-type space is partitioned across subsystems:
//   0x100-0x1FF  DSM coherence protocol (this file)
//   0x200-0x2FF  syscall delegation (sys/delegation.hpp)
//   0x300-0x3FF  thread management (core/node.hpp)
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

// Compile-time gate for the diff-encoded data plane (DESIGN.md §12). With
// DQEMU_DSM_DIFF_ENABLED == 0 (CMake -DDQEMU_ENABLE_DSM_DIFF=OFF) every
// twin/diff code path in the client and directory compiles out and the
// protocol is bit-for-bit the full-page one, regardless of
// DsmConfig::enable_diff_transfers.
#ifndef DQEMU_DSM_DIFF_ENABLED
#define DQEMU_DSM_DIFF_ENABLED 1
#endif

// Compile-time gate for home-node sharding (DESIGN.md §17). With
// DQEMU_HOME_SHARDING_ENABLED == 0 (CMake -DDQEMU_ENABLE_HOME_SHARDING=OFF)
// the placement layer collapses to "every page is homed on the master" and
// no per-node shards are constructed, so the protocol is bit-for-bit the
// single-master one regardless of DsmConfig::enable_home_sharding.
#ifndef DQEMU_HOME_SHARDING_ENABLED
#define DQEMU_HOME_SHARDING_ENABLED 1
#endif

namespace dqemu::dsm {

[[nodiscard]] constexpr bool home_sharding_compiled_in() {
  return DQEMU_HOME_SHARDING_ENABLED != 0;
}

enum class DsmMsg : std::uint32_t {
  // Slave -> master (manager thread).
  kReadReq = 0x100,   ///< a=page, b=faulting offset, c=tid
  kWriteReq = 0x101,  ///< a=page, b=faulting offset, c=tid
  kInvAck = 0x102,    ///< a=page, b=1 if dirty content attached (ex-owner)
  kDowngradeAck = 0x103,  ///< a=page, data=page content

  // Master -> slave (communicator thread).
  kPageData = 0x110,   ///< a=page, b=access (1=read, 2=rw), data=content
  kPageGrant = 0x111,  ///< a=page, b=access; no content (upgrade/re-grant)
  kRetry = 0x112,      ///< a=page: re-fault; the page was just split
  kInvalidate = 0x113, ///< a=page, b=1 if writeback of dirty content needed
  kDowngrade = 0x114,  ///< a=page: drop to read-only, send content back
  kShadowUpdate = 0x115,  ///< a=orig page, data=LE u32 shadow page numbers
  kForwardData = 0x116,   ///< a=page, data=content; unsolicited push (5.2)

  // Diff-encoded data plane (DESIGN.md §12). Payloads are the
  // mem/page_diff.hpp wire format: dirty-line bitmap + packed lines.
  kInvAckDiff = 0x117,       ///< a=page, b=1 (always dirty), data=diff
  kDowngradeAckDiff = 0x118, ///< a=page, data=diff vs the twin
  kPageDiff = 0x119,    ///< a=page, b=access, c=base epoch, d=new epoch,
                        ///< data=diff vs the requester's retained copy
  kForwardDiff = 0x11A, ///< a=page, c=base epoch, d=new epoch, data=diff
};

[[nodiscard]] constexpr bool is_dsm_message(std::uint32_t type) {
  return type >= 0x100 && type < 0x200;
}

/// Directory-addressed subset of the DSM vocabulary: requests and recall
/// acks. When a node hosts a home shard (DESIGN.md §17), these route to the
/// shard; everything else in the DSM range is client-addressed.
[[nodiscard]] constexpr bool is_directory_message(std::uint32_t type) {
  switch (static_cast<DsmMsg>(type)) {
    case DsmMsg::kReadReq:
    case DsmMsg::kWriteReq:
    case DsmMsg::kInvAck:
    case DsmMsg::kDowngradeAck:
    case DsmMsg::kInvAckDiff:
    case DsmMsg::kDowngradeAckDiff:
      return true;
    default:
      return false;
  }
}

/// Access codes carried in PageData/PageGrant `b` fields.
inline constexpr std::uint64_t kAccessRead = 1;
inline constexpr std::uint64_t kAccessWrite = 2;

/// Relay encoding for first-touch home handoff: see net/message.hpp
/// (relay_mark / relayed_requester) — shared with the sys plane.
using net::relay_mark;
using net::relayed_requester;

/// Sharer bitmask wide enough for 256 simulated nodes (the u32 mask the
/// directory used before home sharding capped the cluster at 32 nodes).
class NodeSet {
 public:
  static constexpr std::uint32_t kMaxNodes = 256;

  [[nodiscard]] static NodeSet single(NodeId n) {
    NodeSet s;
    s.add(n);
    return s;
  }

  void add(NodeId n) { bits_[word(n)] |= bit(n); }
  void remove(NodeId n) { bits_[word(n)] &= ~bit(n); }
  void clear() { bits_ = {}; }
  [[nodiscard]] bool contains(NodeId n) const {
    return (bits_[word(n)] & bit(n)) != 0;
  }
  [[nodiscard]] bool empty() const {
    for (const std::uint64_t w : bits_) {
      if (w != 0) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint32_t count() const {
    std::uint32_t n = 0;
    for (std::uint64_t w : bits_) {
      while (w != 0) {
        w &= w - 1;
        ++n;
      }
    }
    return n;
  }
  [[nodiscard]] bool operator==(const NodeSet& other) const {
    return bits_ == other.bits_;
  }

 private:
  static constexpr std::size_t word(NodeId n) {
    return static_cast<std::size_t>(n) / 64;
  }
  static constexpr std::uint64_t bit(NodeId n) {
    return 1ULL << (static_cast<std::size_t>(n) % 64);
  }
  std::array<std::uint64_t, kMaxNodes / 64> bits_{};
};

/// Data-plane wire accounting: every DSM message that carries page content
/// (full or diff-encoded) is charged here so benches can assert transfer
/// volume from counters. `full_bytes` is the payload a full-page transfer
/// would have carried; the delta to the actual payload is the saving the
/// diff encoding bought. Loopback messages never touch the wire and are
/// not charged, matching the Network's own byte accounting.
inline void charge_data_plane(StatsRegistry* stats, const net::Message& msg,
                              std::uint64_t full_bytes) {
  if (stats == nullptr || msg.src == msg.dst) return;
  stats->add("dsm.bytes_on_wire", msg.wire_bytes());
  if (full_bytes > msg.data.size()) {
    stats->add("dsm.bytes_saved", full_bytes - msg.data.size());
  }
}

}  // namespace dqemu::dsm
