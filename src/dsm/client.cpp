#include "dsm/client.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"

namespace dqemu::dsm {

DsmClient::DsmClient(NodeId self, net::Network& network,
                     mem::AddressSpace& space, mem::ShadowMap& shadow,
                     dbt::LlscTable* llsc, dbt::TranslationCache* tcache,
                     StatsRegistry* stats,
                     std::function<void(std::uint32_t)> wake_page,
                     trace::Tracer* tracer, bool enable_diff_transfers,
                     DurationPs request_timeout, HomeView* homes)
    : self_(self),
      network_(network),
      space_(space),
      shadow_(shadow),
      llsc_(llsc),
      tcache_(tcache),
      stats_(stats),
      wake_page_(std::move(wake_page)),
      tracer_(tracer),
      enable_diff_(enable_diff_transfers),
      request_timeout_(request_timeout),
      homes_(homes) {}

void DsmClient::request_page(std::uint32_t page, std::uint32_t offset,
                             bool write, GuestTid tid) {
  auto it = pending_.find(page);
  if (it != pending_.end()) {
    // Coalesce: an outstanding request already covers this page. A writer
    // joining a read request re-faults after the read grant installs.
    if (stats_ != nullptr) stats_->add("dsm.coalesced_faults");
    return;
  }
  Pending pending;
  pending.write = write;
  // Open the fault's causal chain: every send/deliver/directory edge of
  // this remote page fetch records against this id.
  if (trace::wants(tracer_, trace::Cat::kDsm)) {
    pending.flow = tracer_->new_flow();
    trace::Record r;
    r.time = network_.now(self_);
    r.name = "dsm.fault";
    r.kind = trace::Kind::kFlowBegin;
    r.cat = trace::Cat::kDsm;
    r.node = self_;
    r.track = trace::kTrackNode;
    r.tid = tid;
    r.flow = pending.flow;
    r.a = page;
    r.b = write ? 1 : 0;
    tracer_->record(r);
  }
  pending.offset = offset;
  pending.tid = tid;
  const std::uint64_t flow = pending.flow;
  pending_.emplace(page, std::move(pending));
  if (stats_ != nullptr) {
    stats_->add(write ? "dsm.write_requests" : "dsm.read_requests");
  }
  net::Message msg;
  msg.src = self_;
  msg.dst = home_of(page);
  msg.type = static_cast<std::uint32_t>(write ? DsmMsg::kWriteReq
                                              : DsmMsg::kReadReq);
  msg.a = page;
  msg.b = offset;
  msg.c = tid;
  msg.flow = flow;
  network_.send(std::move(msg));
  // The watchdog only makes sense over the lossy wire: on the reliable
  // path requests cannot be lost, and an idle far-future timer would keep
  // the event queue from draining at simulation end.
  if (request_timeout_ > 0 && network_.faults_active()) {
    pending_[page].timeout = request_timeout_;
    arm_watchdog(page);
  }
}

void DsmClient::arm_watchdog(std::uint32_t page) {
  auto it = pending_.find(page);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.watchdog == nullptr) {
    p.watchdog = std::make_unique<sim::Timer>(network_.queue_for(self_));
  }
  p.watchdog->arm(p.timeout, [this, page] { on_request_timeout(page); });
}

void DsmClient::on_request_timeout(std::uint32_t page) {
  const auto it = pending_.find(page);
  if (it == pending_.end()) return;  // completed; stale fire cannot happen
  Pending& p = it->second;
  if (stats_ != nullptr) stats_->add("dsm.timeouts");
  note("dsm.timeout", p.flow, page, p.write ? 1 : 0);
  DQEMU_DEBUG("node %u: page %u request timed out, re-issuing",
              unsigned(self_), page);
  // Re-issue verbatim. The directory tolerates the duplicate: a busy entry
  // queues it and an already-satisfied requester gets a benign re-grant.
  net::Message msg;
  msg.src = self_;
  msg.dst = home_of(page);
  msg.type = static_cast<std::uint32_t>(p.write ? DsmMsg::kWriteReq
                                                : DsmMsg::kReadReq);
  msg.a = page;
  msg.b = p.offset;
  msg.c = p.tid;
  msg.flow = p.flow;
  network_.send(std::move(msg));
  // Back off 2x, capped at 8x the base timeout (see FaultConfig).
  p.timeout = std::min<DurationPs>(p.timeout * 2, request_timeout_ * 8);
  arm_watchdog(page);
}

void DsmClient::end_fault_flow(std::uint32_t page, bool retried) {
  const auto it = pending_.find(page);
  if (it == pending_.end() || it->second.flow == 0) return;
  if (!trace::wants(tracer_, trace::Cat::kDsm)) return;
  trace::Record r;
  r.time = network_.now(self_);
  r.name = "dsm.fault";
  r.kind = trace::Kind::kFlowEnd;
  r.cat = trace::Cat::kDsm;
  r.node = self_;
  r.track = trace::kTrackNode;
  r.flow = it->second.flow;
  r.a = page;
  r.b = retried ? 1 : 0;
  tracer_->record(r);
}

void DsmClient::note(const char* name, std::uint64_t flow, std::uint64_t a,
                     std::uint64_t b) {
  if (!trace::wants(tracer_, trace::Cat::kDsm)) return;
  trace::Record r;
  r.time = network_.now(self_);
  r.name = name;
  r.kind = flow == 0 ? trace::Kind::kInstant : trace::Kind::kFlowStep;
  r.cat = trace::Cat::kDsm;
  r.node = self_;
  r.track = trace::kTrackNode;
  r.flow = flow;
  r.a = a;
  r.b = b;
  tracer_->record(r);
}

void DsmClient::handle_message(const net::Message& msg) {
  // Every directory-originated message is authoritative about which node
  // homes its page (first-touch placement learns routes from this).
  learn_home(static_cast<std::uint32_t>(msg.a), msg.src);
  switch (static_cast<DsmMsg>(msg.type)) {
    case DsmMsg::kPageData: return on_page_data(msg, /*grant_only=*/false);
    case DsmMsg::kPageGrant: return on_page_data(msg, /*grant_only=*/true);
    case DsmMsg::kPageDiff: return on_page_diff(msg);
    case DsmMsg::kRetry: return on_retry(msg);
    case DsmMsg::kInvalidate: return on_invalidate(msg);
    case DsmMsg::kDowngrade: return on_downgrade(msg);
    case DsmMsg::kShadowUpdate: return on_shadow_update(msg);
    case DsmMsg::kForwardData: return on_forward_data(msg);
    case DsmMsg::kForwardDiff: return on_forward_diff(msg);
    default:
      assert(false && "non-client DSM message routed to DsmClient");
  }
}

void DsmClient::capture_twin(std::uint32_t page) {
#if DQEMU_DSM_DIFF_ENABLED
  if (!enable_diff_) return;
  twins_.capture(page, space_.page_data(page));
#else
  (void)page;
#endif
}

void DsmClient::on_page_data(const net::Message& msg, bool grant_only) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  if (!grant_only) {
    assert(msg.data.size() == space_.page_size());
    std::memcpy(space_.page_data(page).data(), msg.data.data(),
                msg.data.size());
  }
  space_.set_access(page, msg.b == kAccessWrite ? mem::PageAccess::kReadWrite
                                                : mem::PageAccess::kRead);
  // The twin snapshots the page exactly as granted: a later recall diffs
  // the guest's writes against it. Upgrades (grant_only) snapshot the
  // local read copy, which equals the home copy by the Shared invariant;
  // a re-grant to the current owner keeps the existing (older) twin.
  if (msg.b == kAccessWrite) capture_twin(page);
  // Content changed under any cached translations of this page.
  if (!grant_only && tcache_ != nullptr) tcache_->invalidate_page(page);
  end_fault_flow(page, /*retried=*/false);
  pending_.erase(page);
  if (stats_ != nullptr) stats_->add("dsm.grants_received");
  wake_page_(page);
}

void DsmClient::on_page_diff(const net::Message& msg) {
#if DQEMU_DSM_DIFF_ENABLED
  const auto page = static_cast<std::uint32_t>(msg.a);
  assert(diff_enabled() && "diff grant received with diff plane disabled");
  // The directory only serves a diff against a version this node provably
  // retains (node_epoch bookkeeping), so the local bytes must exist.
  assert(space_.page_materialized(page) || msg.data.size() == 8);
  const bool applied = mem::apply_diff(
      msg.data, space_.page_data(page),
      mem::diff_line_bytes(space_.page_size()));
  assert(applied && "malformed diff payload");
  (void)applied;
  space_.set_access(page, msg.b == kAccessWrite ? mem::PageAccess::kReadWrite
                                                : mem::PageAccess::kRead);
  if (msg.b == kAccessWrite) capture_twin(page);
  if (tcache_ != nullptr) tcache_->invalidate_page(page);
  end_fault_flow(page, /*retried=*/false);
  pending_.erase(page);
  if (stats_ != nullptr) {
    stats_->add("dsm.grants_received");
    stats_->add("dsm.diff_grants_received");
  }
  note("dsm.diff_grant", msg.flow, page, mem::decode_diff_mask(msg.data));
  wake_page_(page);
#else
  (void)msg;
  assert(false && "kPageDiff received but diff plane compiled out");
#endif
}

void DsmClient::on_retry(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  end_fault_flow(page, /*retried=*/true);
  pending_.erase(page);
  if (stats_ != nullptr) stats_->add("dsm.retries");
  // Threads re-fault; the shadow map (updated by the preceding
  // kShadowUpdate on this FIFO channel) redirects them to shadow pages.
  wake_page_(page);
}

void DsmClient::drop_page_locally(std::uint32_t page) {
  space_.set_access(page, mem::PageAccess::kNone);
  twins_.drop(page);
  if (llsc_ != nullptr) llsc_->on_page_invalidate(page, space_.page_shift());
  if (tcache_ != nullptr) tcache_->invalidate_page(page);
}

void DsmClient::encode_writeback(net::Message& ack, std::uint32_t page,
                                 DsmMsg full_type, DsmMsg diff_type) {
  const auto data = space_.page_data(page);
#if DQEMU_DSM_DIFF_ENABLED
  if (diff_enabled() && twins_.has(page)) {
    const std::uint32_t line_bytes =
        mem::diff_line_bytes(space_.page_size());
    const std::uint64_t mask =
        mem::diff_mask(twins_.twin(page), data, line_bytes);
    ack.type = static_cast<std::uint32_t>(diff_type);
    ack.data = mem::encode_diff(mask, data, line_bytes);
    if (stats_ != nullptr) stats_->add("dsm.diff_writebacks");
    return;
  }
#else
  (void)diff_type;
#endif
  ack.type = static_cast<std::uint32_t>(full_type);
  ack.data.assign(data.begin(), data.end());
}

void DsmClient::on_invalidate(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  const bool writeback = msg.b == 1;
  net::Message ack;
  ack.src = self_;
  ack.dst = msg.src;
  ack.type = static_cast<std::uint32_t>(DsmMsg::kInvAck);
  ack.a = page;
  ack.b = 0;
  if (writeback) {
    // We were the owner: the directory needs our (only fresh) copy —
    // diff-encoded against the twin when the diff plane is on.
    ack.b = 1;
    encode_writeback(ack, page, DsmMsg::kInvAck, DsmMsg::kInvAckDiff);
    charge_data_plane(stats_, ack, space_.page_size());
  }
  drop_page_locally(page);
  if (stats_ != nullptr) stats_->add("dsm.invalidations_received");
  note("dsm.invalidate", msg.flow, page, writeback ? 1 : 0);
  ack.flow = msg.flow;  // the ack continues the recalling transaction
  network_.send(std::move(ack));
}

void DsmClient::on_downgrade(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  net::Message ack;
  ack.src = self_;
  ack.dst = msg.src;
  ack.a = page;
  encode_writeback(ack, page, DsmMsg::kDowngradeAck,
                   DsmMsg::kDowngradeAckDiff);
  charge_data_plane(stats_, ack, space_.page_size());
  space_.set_access(page, mem::PageAccess::kRead);
  // The page is read-only now; the retained copy equals the new home
  // version, so the twin has served its purpose.
  twins_.drop(page);
  if (stats_ != nullptr) stats_->add("dsm.downgrades_received");
  note("dsm.downgrade", msg.flow, page, 0);
  ack.flow = msg.flow;
  network_.send(std::move(ack));
}

void DsmClient::on_shadow_update(const net::Message& msg) {
  const auto orig = static_cast<std::uint32_t>(msg.a);
  assert(msg.data.size() % 4 == 0);
  std::vector<std::uint32_t> shadows(msg.data.size() / 4);
  std::memcpy(shadows.data(), msg.data.data(), msg.data.size());
  shadow_.add_split(orig, shadows);
  drop_page_locally(orig);
  if (stats_ != nullptr) stats_->add("dsm.shadow_updates");
  note("dsm.shadow_update", msg.flow, orig, shadows.size());
  DQEMU_DEBUG("node %u: page %u split into %zu shadows", unsigned(self_),
              orig, shadows.size());
}

void DsmClient::on_forward_data(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  assert(msg.data.size() == space_.page_size());
  // Content is authoritative (the directory marked us a sharer), so it is
  // always installed; access is granted only if no request is in flight.
  std::memcpy(space_.page_data(page).data(), msg.data.data(), msg.data.size());
  finish_forward_install(msg);
}

void DsmClient::on_forward_diff(const net::Message& msg) {
#if DQEMU_DSM_DIFF_ENABLED
  const auto page = static_cast<std::uint32_t>(msg.a);
  assert(diff_enabled() && "diff forward received with diff plane disabled");
  // Same contract as a diff grant: the directory only diffs against a
  // version this node retains, so patching the local bytes reconstructs
  // the current home content exactly.
  const bool applied = mem::apply_diff(
      msg.data, space_.page_data(page),
      mem::diff_line_bytes(space_.page_size()));
  assert(applied && "malformed forward diff payload");
  (void)applied;
  if (stats_ != nullptr) stats_->add("dsm.diff_forwards_received");
  finish_forward_install(msg);
#else
  (void)msg;
  assert(false && "kForwardDiff received but diff plane compiled out");
#endif
}

void DsmClient::finish_forward_install(const net::Message& msg) {
  const auto page = static_cast<std::uint32_t>(msg.a);
  if (tcache_ != nullptr) tcache_->invalidate_page(page);
  const auto pending = pending_.find(page);
  if (pending == pending_.end()) {
    if (space_.access(page) == mem::PageAccess::kNone) {
      space_.set_access(page, mem::PageAccess::kRead);
      if (stats_ != nullptr) stats_->add("dsm.forwards_installed");
      note("dsm.forward_install", msg.flow, page, 0);
      wake_page_(page);  // benign if nobody waits
    } else if (stats_ != nullptr) {
      stats_->add("dsm.forwards_dropped");
    }
  } else if (!pending->second.write) {
    // A read request raced with this push: the pushed copy satisfies it
    // right now (the directory made us a sharer). The in-flight grant for
    // the queued request is redundant and harmless — per-channel FIFO
    // orders it before any subsequent invalidation.
    space_.set_access(page, mem::PageAccess::kRead);
    if (stats_ != nullptr) stats_->add("dsm.forwards_rescued_read");
    wake_page_(page);
  } else if (stats_ != nullptr) {
    stats_->add("dsm.forwards_dropped");
  }
}

}  // namespace dqemu::dsm
