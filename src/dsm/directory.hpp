// Page-level coherence directory (paper section 4.2; DESIGN.md §17).
//
// Classically this lives on the master node; with home sharding enabled it
// is instantiated once per home node, each instance running the same state
// machines for the pages the placement policy assigns to it (the master is
// then one shard among many, mostly idle under hash placement). The
// per-slave manager threads of the paper are modeled as the directory's
// message handlers plus a service delay. For every guest page the
// directory tracks one of:
//   kHome     - content only in home storage (master's memory), no caches
//   kShared   - home fresh; `sharers` nodes hold read-only copies
//   kModified - `owner` holds the only fresh, writable copy
//   kSplit    - page was split for false sharing; accesses are redirected
// Transactions over a page are serialized with a busy flag and a pending
// queue. The directory also hosts the two section-5 optimizations: the
// false-sharing detector + page splitting, and the stream detector + data
// forwarding.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "dsm/stream_detector.hpp"
#include "dsm/wire.hpp"
#include "mem/address_space.hpp"
#include "mem/page_diff.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"

namespace dqemu::dsm {

class Directory {
 public:
  enum class PageState : std::uint8_t { kHome, kShared, kModified, kSplit };

  struct Params {
    DsmConfig dsm;
    MachineConfig machine;
    std::uint32_t node_count = 0;
    /// Reserved guest region for shadow pages (never used by applications).
    /// With sharding on, this is the hosting node's *slice* of the pool.
    std::uint32_t shadow_pool_first_page = 0;
    std::uint32_t shadow_pool_page_count = 0;
    /// Node hosting this directory instance: the master classically, the
    /// home node for a shard (DESIGN.md §17).
    NodeId self = kMasterNode;
    /// True for a home shard. A shard does not claim the whole address
    /// space at boot (entries still default to "the master's client owns
    /// the boot content") and only forwards pages it has already served.
    bool sharded = false;
  };

  /// `home` is the hosting node's address space (= home storage for the
  /// pages this instance homes). Unsharded, the directory boots with the
  /// master owning every page except the shadow pool, which starts kHome
  /// with no access anywhere; a shard only claims its shadow slice.
  Directory(net::Network& network, sim::EventQueue& queue,
            mem::AddressSpace& home, Params params,
            StatsRegistry* stats = nullptr, trace::Tracer* tracer = nullptr);

  /// Dispatches a request/ack addressed to this home.
  void handle_message(const net::Message& msg);

  // ---- introspection (tests / reports) ---------------------------------
  [[nodiscard]] PageState state(std::uint32_t page) const {
    return entries_[page].state;
  }
  [[nodiscard]] NodeId owner(std::uint32_t page) const {
    return entries_[page].owner;
  }
  /// Low-32 view of the sharer set (legacy test shorthand; clusters larger
  /// than 32 nodes should use is_sharer()).
  [[nodiscard]] std::uint32_t sharer_mask(std::uint32_t page) const {
    std::uint32_t mask = 0;
    for (NodeId n = 0; n < 32 && n < params_.node_count; ++n) {
      if (entries_[page].sharers.contains(n)) mask |= 1u << n;
    }
    return mask;
  }
  [[nodiscard]] bool is_sharer(std::uint32_t page, NodeId node) const {
    return entries_[page].sharers.contains(node);
  }
  [[nodiscard]] bool busy(std::uint32_t page) const {
    return entries_[page].busy;
  }
  [[nodiscard]] std::uint64_t splits_performed() const { return splits_; }

  /// True when the diff data plane is compiled in and runtime-enabled.
  [[nodiscard]] bool diff_enabled() const {
#if DQEMU_DSM_DIFF_ENABLED
    return params_.dsm.enable_diff_transfers;
#else
    return false;
#endif
  }
  /// Sentinel for "this node's retained copy has no known version".
  static constexpr std::uint64_t kNoEpoch = ~0ull;
  /// Current content version of `page`'s home copy (0 = boot content).
  [[nodiscard]] std::uint64_t epoch(std::uint32_t page) const;
  /// Version of the copy `node` retains, or kNoEpoch.
  [[nodiscard]] std::uint64_t node_epoch(std::uint32_t page,
                                         NodeId node) const;

  // ---- whole-node fault plane (DESIGN.md §18) --------------------------

  /// kCrashFlush from a dying owner's last gasp: a full-page writeback of a
  /// kReadWrite copy. Applied iff this directory still records the sender
  /// as the Modified owner (otherwise the protocol already moved on and the
  /// flush is stale). When the page is mid-transaction waiting on the dying
  /// owner's recall ack, the flush *is* that writeback and completes the
  /// transaction; otherwise the page is reclaimed home.
  void on_crash_flush(const net::Message& msg);

  /// Dead-node sweep, run in this home's context on kNodeDead (the master
  /// applies it directly at kCrashReport): purges the dead node's queued
  /// requests, removes it from sharer sets, completes transactions stuck
  /// waiting on its acks (the last-gasp flush normally got here first — one
  /// hop beats two), and reclaims any page it still appears to own. Pages
  /// reclaimed without a flush keep their stale home bytes: a crash without
  /// a last gasp loses unflushed writes, deterministically.
  void on_node_dead(NodeId dead);

  /// Sorted list of pages this shard services (the last-gasp kHomeHandoff
  /// set). Empty for an unsharded directory — the master never crashes.
  [[nodiscard]] std::vector<std::uint32_t> handoff_pages() const;

  /// Serializes one page's entry for a kHomeHandoff payload: the stable
  /// fields only (state, owner, sharers, shadow list) plus the home bytes
  /// when the home copy is authoritative (kHome / kShared). Transient state
  /// (busy flag, current transaction, pending queue, diff versions, stream
  /// and false-sharing detectors) is deliberately dropped: requesters'
  /// watchdogs re-issue anything in flight against the adopting home, and
  /// dropped diff state just means the first post-crash transfer is full.
  void serialize_entry(std::uint32_t page,
                       std::vector<std::uint8_t>& out) const;

  /// Master-side adoption of one kHomeHandoff payload: installs the entry
  /// verbatim, copies authoritative content into home storage, and marks
  /// the page as serviced here so relays stop.
  void adopt_entry(std::uint32_t page, std::span<const std::uint8_t> data);

  /// FNV-1a fingerprint of the directory's page state (checkpoint
  /// component, DESIGN.md §18): per serviced page, the coherence fields in
  /// page order. Page *content* is not folded here — the nodes' address
  /// spaces carry it, and they are digested separately.
  [[nodiscard]] std::uint64_t digest() const;

  /// Structural invariants: Modified pages have no sharers, split pages
  /// are fully drained, shadow allocations stay in the pool. Returns false
  /// and logs on violation.
  [[nodiscard]] bool check_invariants() const;

 private:
  struct Request {
    NodeId node = kInvalidNode;
    bool write = false;
    std::uint32_t offset = 0;
    GuestTid tid = 0;
    std::uint64_t flow = 0;  ///< causal chain of the originating fault
  };

  struct Entry {
    PageState state = PageState::kModified;
    NodeId owner = kMasterNode;
    NodeSet sharers;  ///< nodes holding read-only copies
    bool busy = false;
    bool splitting = false;
    std::uint32_t acks_outstanding = 0;
    Request current;
    std::deque<Request> queue;
    // False-sharing detector (section 5.1).
    NodeId fs_last_node = kInvalidNode;
    std::uint8_t fs_last_shard = 0xFF;
    std::uint16_t fs_count = 0;
  };

  /// Per-page version bookkeeping for the diff data plane (DESIGN.md §12).
  /// Sparse: allocated the first time a page's content actually moves, so
  /// untouched pages cost nothing. `epoch` counts home-content versions;
  /// `history` holds the dirty-line masks of the most recent transitions
  /// (newest at the back: history.back() took the home copy to `epoch`);
  /// `node_epoch[n]` is the version node n's retained bytes correspond to
  /// (kNoEpoch = never sent / untracked).
  struct DiffState {
    std::uint64_t epoch = 0;
    std::vector<std::uint64_t> node_epoch;
    std::vector<std::uint64_t> history;  ///< bounded by diff_history_depth
  };

  void on_request(const net::Message& msg, bool write);
  void on_inv_ack(const net::Message& msg);
  void on_downgrade_ack(const net::Message& msg);
  /// Applies a diff-encoded writeback to the home copy and advances the
  /// page's epoch/history. Shared tail of the InvAckDiff/DowngradeAckDiff
  /// handlers; returns the decoded dirty mask.
  std::uint64_t apply_writeback_diff(const net::Message& msg);

  // ---- diff data plane ---------------------------------------------------
  [[nodiscard]] DiffState& diff_state(std::uint32_t page);
  /// Records a home-content change: `known_mask` when the changed lines
  /// are exactly known (diff writeback), or unknown (full-page writeback,
  /// in-place master downgrade), which clears the history so every stale
  /// copy falls back to a full transfer.
  void record_home_update(std::uint32_t page, std::uint64_t mask, bool known);
  /// Records that `node`'s retained copy now equals the current epoch.
  void record_node_copy(std::uint32_t page, NodeId node);
  /// Builds the content-carrying part of a grant/forward to `dst`: a
  /// kPageDiff/kForwardDiff against the version `dst` retains when the
  /// history covers it, else the full-page kPageData/kForwardData.
  [[nodiscard]] net::Message make_data_message(NodeId dst, std::uint32_t page,
                                               std::uint64_t access,
                                               bool forward);

  /// Begins servicing `req` on an idle entry (sets busy, sends recalls or
  /// completes immediately).
  void start_transaction(std::uint32_t page, const Request& req);
  /// Called when all recalls have been acknowledged.
  void complete_transaction(std::uint32_t page);
  /// Grants the page to the current requester and finishes the entry.
  void grant_and_finish(std::uint32_t page);
  /// Pops the next queued request, if any.
  void finish_entry(std::uint32_t page);

  // Page splitting.
  [[nodiscard]] bool should_split(const Entry& entry, std::uint32_t page) const;
  void note_write_pattern(Entry& entry, NodeId node, std::uint32_t offset);
  void perform_split(std::uint32_t page);

  // Data forwarding.
  void maybe_forward(NodeId requester, std::uint32_t page);

  void send(net::Message msg);
  /// send() with the message stamped into causal chain `flow`.
  void send_chained(net::Message msg, std::uint64_t flow);
  [[nodiscard]] net::Message make(NodeId dst, DsmMsg type,
                                  std::uint64_t a = 0, std::uint64_t b = 0) const;
  /// Records a directory-side edge of chain `flow` on the manager track.
  void note(const char* name, std::uint64_t flow, std::uint64_t a,
            std::uint64_t b);
  [[nodiscard]] bool in_shadow_pool(std::uint32_t page) const {
    return page >= params_.shadow_pool_first_page &&
           page < params_.shadow_pool_first_page +
                      params_.shadow_pool_page_count;
  }

  net::Network& network_;
  sim::EventQueue& queue_;
  mem::AddressSpace& home_;
  Params params_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  std::vector<Entry> entries_;
  std::vector<StreamDetector> streams_;  ///< per requesting node
  /// Per-slave manager thread occupancy (serializes demand replies).
  std::vector<TimePs> manager_free_;
  std::vector<std::vector<std::uint32_t>> shadow_of_;  ///< page -> shadows
  std::uint32_t shadow_next_;  ///< next unallocated shadow page
  std::uint64_t splits_ = 0;
  /// Sharded only: pages this instance has serviced a request for. The
  /// forwarding window is restricted to them so a shard never speculates
  /// on pages homed elsewhere (for first-touch this doubles as the learned
  /// "assigned to me" set; the master relays until it is populated).
  std::vector<bool> homed_;
  /// Per-shard protocol-message counter name ("dsm.home_msgs.<self>") for
  /// the directory-load-evenness report.
  std::string home_msgs_counter_;
  /// page -> version bookkeeping (diff data plane only, lazily created).
  std::unordered_map<std::uint32_t, DiffState> diff_;
  /// Nodes declared dead (DESIGN.md §18): their requests are dropped and
  /// no page is ever granted to them.
  std::unordered_set<NodeId> dead_nodes_;
  /// Shadow pages adopted from a dead home's pool slice: outside this
  /// instance's own slice, but legitimate split targets all the same.
  std::unordered_set<std::uint32_t> foreign_shadow_;
};

}  // namespace dqemu::dsm
