// Sequential page-stream detector for data forwarding (paper section 5.2).
//
// Modeled on the Linux VFS read-ahead framework the paper cites: the
// master keeps a small per-node table of active streams keyed by the next
// page each stream expects. A request that matches a stream's expectation
// extends it; otherwise it seeds a new stream (evicting the least recently
// used). When a stream's run length reaches the trigger, the caller pushes
// the next pages ahead of the requester.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace dqemu::dsm {

class StreamDetector {
 public:
  /// `max_streams` bounds the per-node table (concurrent walkers).
  explicit StreamDetector(std::uint32_t max_streams = 8)
      : max_streams_(max_streams) {}

  /// Records a request for `page` and returns the run length of the
  /// stream it belongs to (1 for a fresh stream).
  std::uint32_t on_request(std::uint32_t page) {
    ++clock_;
    for (Stream& s : streams_) {
      if (s.next_page == page) {
        ++s.run;
        ++s.next_page;
        s.last_used = clock_;
        return s.run;
      }
    }
    // New stream.
    if (streams_.size() < max_streams_) {
      streams_.push_back(Stream{page + 1, 1, clock_});
    } else {
      auto lru = std::min_element(
          streams_.begin(), streams_.end(),
          [](const Stream& a, const Stream& b) { return a.last_used < b.last_used; });
      *lru = Stream{page + 1, 1, clock_};
    }
    return 1;
  }

  /// After the caller pushed pages so that the node's next *request* will
  /// be for `new_next`, moves every stream currently expecting
  /// `expected_next` past the pushed window (keeping its run length), so
  /// forwarded pages don't break the run. Several streams can expect the
  /// same page (a fresh stream seeded inside another stream's run): all of
  /// them are moved and then merged with any stream already expecting
  /// `new_next`, keeping the strongest run — a stale duplicate left behind
  /// would re-trigger forwarding of pages that were already pushed.
  void retarget(std::uint32_t expected_next, std::uint32_t new_next) {
    bool moved = false;
    for (Stream& s : streams_) {
      if (s.next_page == expected_next) {
        s.next_page = new_next;
        moved = true;
      }
    }
    if (!moved) return;
    Stream keep{};
    for (const Stream& s : streams_) {
      if (s.next_page != new_next) continue;
      if (s.run > keep.run ||
          (s.run == keep.run && s.last_used >= keep.last_used)) {
        keep = s;
      }
    }
    std::erase_if(streams_,
                  [&](const Stream& s) { return s.next_page == new_next; });
    streams_.push_back(keep);
  }

  [[nodiscard]] std::size_t active_streams() const { return streams_.size(); }

 private:
  struct Stream {
    std::uint32_t next_page = 0;
    std::uint32_t run = 0;
    std::uint64_t last_used = 0;
  };

  std::uint32_t max_streams_;
  std::uint64_t clock_ = 0;
  std::vector<Stream> streams_;
};

}  // namespace dqemu::dsm
