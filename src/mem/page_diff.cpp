#include "mem/page_diff.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace dqemu::mem {

std::uint64_t diff_mask(std::span<const std::uint8_t> base,
                        std::span<const std::uint8_t> cur,
                        std::uint32_t line_bytes) {
  assert(base.size() == cur.size());
  assert(line_bytes > 0 && cur.size() % line_bytes == 0);
  assert(cur.size() / line_bytes <= 64);
  std::uint64_t mask = 0;
  const std::size_t lines = cur.size() / line_bytes;
  for (std::size_t i = 0; i < lines; ++i) {
    if (std::memcmp(base.data() + i * line_bytes, cur.data() + i * line_bytes,
                    line_bytes) != 0) {
      mask |= 1ull << i;
    }
  }
  return mask;
}

std::vector<std::uint8_t> encode_diff(std::uint64_t mask,
                                      std::span<const std::uint8_t> cur,
                                      std::uint32_t line_bytes) {
  assert(line_bytes > 0 && cur.size() % line_bytes == 0);
  std::vector<std::uint8_t> payload(
      8 + static_cast<std::size_t>(std::popcount(mask)) * line_bytes);
  for (unsigned i = 0; i < 8; ++i) {
    payload[i] = static_cast<std::uint8_t>(mask >> (8 * i));
  }
  std::size_t out = 8;
  for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const unsigned line = static_cast<unsigned>(std::countr_zero(rest));
    assert(static_cast<std::size_t>(line + 1) * line_bytes <= cur.size());
    std::memcpy(payload.data() + out, cur.data() + line * line_bytes,
                line_bytes);
    out += line_bytes;
  }
  return payload;
}

std::uint64_t decode_diff_mask(std::span<const std::uint8_t> payload) {
  assert(payload.size() >= 8);
  std::uint64_t mask = 0;
  for (unsigned i = 0; i < 8; ++i) {
    mask |= static_cast<std::uint64_t>(payload[i]) << (8 * i);
  }
  return mask;
}

bool apply_diff(std::span<const std::uint8_t> payload,
                std::span<std::uint8_t> page, std::uint32_t line_bytes) {
  if (payload.size() < 8 || line_bytes == 0 ||
      page.size() % line_bytes != 0) {
    return false;
  }
  const std::uint64_t mask = decode_diff_mask(payload);
  const std::size_t lines =
      static_cast<std::size_t>(std::popcount(mask));
  if (payload.size() != 8 + lines * line_bytes) return false;
  std::size_t in = 8;
  for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1) {
    const unsigned line = static_cast<unsigned>(std::countr_zero(rest));
    if (static_cast<std::size_t>(line + 1) * line_bytes > page.size()) {
      return false;
    }
    std::memcpy(page.data() + line * line_bytes, payload.data() + in,
                line_bytes);
    in += line_bytes;
  }
  return true;
}

void TwinStore::capture(std::uint32_t page,
                        std::span<const std::uint8_t> content) {
  if (twins_.contains(page)) return;
  twins_.emplace(page,
                 std::vector<std::uint8_t>(content.begin(), content.end()));
}

std::span<const std::uint8_t> TwinStore::twin(std::uint32_t page) const {
  const auto it = twins_.find(page);
  assert(it != twins_.end());
  return it->second;
}

}  // namespace dqemu::mem
