// Line-granularity page diffing for the DSM data plane (DESIGN.md §12).
//
// TreadMarks-style twin/diff encoding: a node holding a writable page keeps
// a pristine copy (the "twin") made when write access was granted. When the
// page is recalled (invalidate writeback / downgrade) the node diffs the
// current content against the twin at cache-line granularity and ships only
// the changed lines plus a dirty bitmap, instead of the whole page. The
// directory applies the diff to the home copy and keeps a bounded history
// of dirty masks so later grants to a node that still holds a stale copy
// can be served as a diff too (union of the masks between the two epochs).
//
// Wire payload format (little-endian, self-delimiting given the page size):
//   [8-byte u64 dirty-line bitmap][popcount(bitmap) packed lines, ascending]
//
// The line size is derived from the page size so the bitmap always fits one
// 64-bit word: 64 bytes for pages up to 4 KiB, page_size/64 beyond. Shadow
// pages produced by page splitting (mem/shadow_map.hpp) are ordinary pages
// at the same page size, so a diff over a shard-split page simply shows the
// dirty lines confined to the owning shard's offset range.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace dqemu::mem {

/// Number of bytes of one diff line for `page_size`-byte pages. Chosen so
/// page_size / line_bytes <= 64 (one bitmap word).
[[nodiscard]] constexpr std::uint32_t diff_line_bytes(std::uint32_t page_size) {
  return page_size <= 64 * 64 ? 64 : page_size / 64;
}

/// Number of diff lines in a page.
[[nodiscard]] constexpr std::uint32_t diff_line_count(std::uint32_t page_size) {
  return page_size / diff_line_bytes(page_size);
}

/// Bitmap of lines where `cur` differs from `base` (bit i = line i).
/// Both spans must be page-sized and equal length.
[[nodiscard]] std::uint64_t diff_mask(std::span<const std::uint8_t> base,
                                      std::span<const std::uint8_t> cur,
                                      std::uint32_t line_bytes);

/// Serializes `mask` + the masked lines of `cur` into the wire payload.
[[nodiscard]] std::vector<std::uint8_t> encode_diff(
    std::uint64_t mask, std::span<const std::uint8_t> cur,
    std::uint32_t line_bytes);

/// Dirty bitmap of an encoded payload (first 8 bytes, LE).
[[nodiscard]] std::uint64_t decode_diff_mask(
    std::span<const std::uint8_t> payload);

/// Patches the lines carried by `payload` into `page`. Returns false (and
/// leaves `page` unspecified) if the payload is malformed: short header,
/// size not matching popcount, or a line index past the end of the page.
[[nodiscard]] bool apply_diff(std::span<const std::uint8_t> payload,
                              std::span<std::uint8_t> page,
                              std::uint32_t line_bytes);

/// Pristine copies of writable pages, keyed by page number. One per
/// DsmClient; entries live from write-grant installation to recall.
class TwinStore {
 public:
  /// Snapshots `content` as the twin of `page` unless one already exists —
  /// a re-grant to the current owner must not refresh the twin, or lines
  /// dirtied before the re-grant would vanish from the next diff.
  void capture(std::uint32_t page, std::span<const std::uint8_t> content);

  [[nodiscard]] bool has(std::uint32_t page) const {
    return twins_.contains(page);
  }

  /// The pristine copy (must exist).
  [[nodiscard]] std::span<const std::uint8_t> twin(std::uint32_t page) const;

  /// Drops the twin of `page` (no-op if absent).
  void drop(std::uint32_t page) { twins_.erase(page); }

  [[nodiscard]] std::size_t size() const { return twins_.size(); }

 private:
  std::unordered_map<std::uint32_t, std::vector<std::uint8_t>> twins_;
};

}  // namespace dqemu::mem
