// Shadow-page mapping table for page splitting (paper section 5.1).
//
// When the master detects false sharing on a guest page it splits the page
// into `shards` shadow pages: the bytes at offsets [s*shard, (s+1)*shard)
// of the original page live in shadow page s *at the same page offset*
// (paper Figure 4), so the offset arithmetic of the coherence protocol is
// untouched and each shard gets its own directory entry and protection.
// The table is broadcast to every node and consulted during the guest->
// host address translation step of the DBT, which is why the paper calls
// the lookup "very minimal additional runtime overhead".
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dqemu::mem {

class ShadowMap {
 public:
  /// `shard_size` = page_size / shards; both powers of two.
  ShadowMap(std::uint32_t page_size, std::uint32_t shards);

  [[nodiscard]] std::uint32_t shards() const { return shards_; }
  [[nodiscard]] std::uint32_t shard_size() const { return shard_size_; }
  [[nodiscard]] bool empty() const { return table_.empty(); }
  [[nodiscard]] std::size_t split_count() const { return table_.size(); }

  /// Bumped on every split (the map never shrinks today, but a future
  /// merge must bump it too). Consumers caching translate() results (the
  /// DBT's software TLB) compare against their snapshot and drop their
  /// cache on mismatch.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Registers a split: `shadow_pages[s]` backs shard s of `orig_page`.
  /// A page may be split at most once and shadow pages must be distinct
  /// from the original.
  void add_split(std::uint32_t orig_page,
                 std::span<const std::uint32_t> shadow_pages);

  [[nodiscard]] bool is_split(std::uint32_t orig_page) const {
    return table_.contains(orig_page);
  }

  /// Shadow pages of a split page (empty span if not split).
  [[nodiscard]] std::span<const std::uint32_t> shadow_pages(
      std::uint32_t orig_page) const;

  /// Redirects an address on a split page to its shadow page, keeping the
  /// page offset. Identity for unsplit pages. O(1) hash lookup.
  [[nodiscard]] GuestAddr translate(GuestAddr addr) const {
    if (table_.empty()) return addr;
    const auto it = table_.find(addr >> page_shift_);
    if (it == table_.end()) return addr;
    const std::uint32_t offset = addr & (page_size_ - 1);
    const std::uint32_t shard = offset / shard_size_;
    return (it->second[shard] << page_shift_) | offset;
  }

 private:
  std::uint32_t page_size_;
  std::uint32_t page_shift_;
  std::uint32_t shards_;
  std::uint32_t shard_size_;
  std::uint64_t generation_ = 0;
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> table_;
};

}  // namespace dqemu::mem
