// Per-node guest memory image.
//
// Every node in the cluster holds its own copy of the guest address space
// (paper Figure 2: a "guest memory region" per DQEMU instance). Only the
// DSM protocol moves bytes between copies, so coherence is enforced for
// real: a protocol bug yields wrong guest results, not just wrong stats.
//
// Pages are allocated lazily on first touch — a 256 MiB space costs nothing
// until the guest actually uses it. Each page carries a protection level
// derived from its MSI state (Invalid -> kNone, Shared -> kRead,
// Modified -> kReadWrite); the DBT's load/store path checks it and raises
// a page fault into the DSM layer, standing in for mprotect + SIGSEGV.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "isa/program.hpp"

namespace dqemu::mem {

/// Page protection level. Ordering matters: higher value = more access.
enum class PageAccess : std::uint8_t {
  kNone = 0,       ///< MSI Invalid: any access faults
  kRead = 1,       ///< MSI Shared: writes fault
  kReadWrite = 2,  ///< MSI Modified: full access
};

class AddressSpace {
 public:
  /// `size` and `page_size` must be powers of two, size a multiple of
  /// page_size.
  AddressSpace(GuestSize size, std::uint32_t page_size);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  AddressSpace(AddressSpace&&) = default;
  AddressSpace& operator=(AddressSpace&&) = default;

  [[nodiscard]] GuestSize size() const { return size_; }
  [[nodiscard]] std::uint32_t page_size() const { return page_size_; }
  [[nodiscard]] std::uint32_t page_shift() const { return page_shift_; }
  [[nodiscard]] std::uint32_t num_pages() const {
    return static_cast<std::uint32_t>(pages_.size());
  }

  [[nodiscard]] std::uint32_t page_of(GuestAddr addr) const {
    return addr >> page_shift_;
  }
  [[nodiscard]] GuestAddr page_base(std::uint32_t page) const {
    return page << page_shift_;
  }
  [[nodiscard]] std::uint32_t offset_in_page(GuestAddr addr) const {
    return addr & (page_size_ - 1);
  }
  [[nodiscard]] bool contains(GuestAddr addr) const { return addr < size_; }

  // ---- typed scalar access (no protection check; protocol & DBT paths
  // ---- have already validated). Must be naturally aligned and must not
  // ---- cross a page boundary. Inline: this is the DBT's hottest path.
  [[nodiscard]] std::uint64_t load(GuestAddr addr, unsigned bytes) const {
    assert((addr & (bytes - 1)) == 0 && addr + bytes <= size_);
    const std::uint8_t* page = pages_[addr >> page_shift_].get();
    if (page == nullptr) return 0;  // untouched memory reads as zero
    std::uint64_t value = 0;
    std::memcpy(&value, page + (addr & (page_size_ - 1)), bytes);
    return value;
  }
  void store(GuestAddr addr, std::uint64_t value, unsigned bytes) {
    assert((addr & (bytes - 1)) == 0 && addr + bytes <= size_);
    const std::uint32_t index = addr >> page_shift_;
    std::uint8_t* page = pages_[index].get();
    if (page == nullptr) page = materialize(index);
    std::memcpy(page + (addr & (page_size_ - 1)), &value, bytes);
  }

  // ---- bulk access (may cross pages; used by the loader, syscall layer
  // ---- and page-transfer code).
  void read_bytes(GuestAddr addr, std::span<std::uint8_t> out) const;
  void write_bytes(GuestAddr addr, std::span<const std::uint8_t> in);
  /// Reads a NUL-terminated guest string (bounded by `max_len`).
  [[nodiscard]] std::string read_cstring(GuestAddr addr,
                                         std::uint32_t max_len = 4096) const;

  /// Mutable view of one whole page (materializes it).
  [[nodiscard]] std::span<std::uint8_t> page_data(std::uint32_t page);
  /// Read-only view; materializes too (zero page is valid content).
  [[nodiscard]] std::span<const std::uint8_t> page_data(std::uint32_t page) const;
  /// True if the page has ever been touched (has backing storage).
  [[nodiscard]] bool page_materialized(std::uint32_t page) const {
    return pages_[page] != nullptr;
  }

  // ---- protection (driven by the DSM state machine).
  [[nodiscard]] PageAccess access(std::uint32_t page) const {
    return access_[page];
  }
  void set_access(std::uint32_t page, PageAccess access) {
    access_[page] = access;
    ++protection_generation_;
  }
  /// Sets every page to `access` (used when booting the master, which
  /// starts owning everything in Modified state).
  void set_all_access(PageAccess access);

  /// Bumped on every protection change. Consumers caching protection
  /// lookups (the DBT's software TLB) compare this against their snapshot
  /// and drop their cache on mismatch; DSM grants/invalidations/downgrades
  /// all funnel through set_access, so they are covered automatically.
  [[nodiscard]] std::uint64_t protection_generation() const {
    return protection_generation_;
  }

  /// Copies program sections into memory (no protection change).
  void load_program(const isa::Program& program);

 private:
  [[nodiscard]] std::uint8_t* materialize(std::uint32_t page);


  GuestSize size_ = 0;
  std::uint32_t page_size_ = 0;
  std::uint32_t page_shift_ = 0;
  // unique_ptr<uint8_t[]> per page, allocated on first touch.
  mutable std::vector<std::unique_ptr<std::uint8_t[]>> pages_;
  std::vector<PageAccess> access_;
  std::uint64_t protection_generation_ = 0;
};

}  // namespace dqemu::mem
