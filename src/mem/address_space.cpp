#include "mem/address_space.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <string>

namespace dqemu::mem {

AddressSpace::AddressSpace(GuestSize size, std::uint32_t page_size)
    : size_(size), page_size_(page_size) {
  assert(page_size != 0 && (page_size & (page_size - 1)) == 0);
  assert(size != 0 && (size % page_size) == 0);
  page_shift_ = static_cast<std::uint32_t>(std::countr_zero(page_size));
  pages_.resize(size / page_size);
  access_.resize(pages_.size(), PageAccess::kNone);
}

std::uint8_t* AddressSpace::materialize(std::uint32_t page) {
  assert(page < pages_.size());
  if (pages_[page] == nullptr) {
    pages_[page] = std::make_unique<std::uint8_t[]>(page_size_);
    std::memset(pages_[page].get(), 0, page_size_);
  }
  return pages_[page].get();
}

void AddressSpace::read_bytes(GuestAddr addr, std::span<std::uint8_t> out) const {
  assert(static_cast<std::uint64_t>(addr) + out.size() <= size_);
  std::size_t done = 0;
  while (done < out.size()) {
    const GuestAddr at = addr + static_cast<GuestAddr>(done);
    const std::uint32_t page = page_of(at);
    const std::uint32_t offset = offset_in_page(at);
    const std::size_t chunk =
        std::min<std::size_t>(out.size() - done, page_size_ - offset);
    if (pages_[page] == nullptr) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      std::memcpy(out.data() + done, pages_[page].get() + offset, chunk);
    }
    done += chunk;
  }
}

void AddressSpace::write_bytes(GuestAddr addr,
                               std::span<const std::uint8_t> in) {
  assert(static_cast<std::uint64_t>(addr) + in.size() <= size_);
  std::size_t done = 0;
  while (done < in.size()) {
    const GuestAddr at = addr + static_cast<GuestAddr>(done);
    const std::uint32_t page = page_of(at);
    const std::uint32_t offset = offset_in_page(at);
    const std::size_t chunk =
        std::min<std::size_t>(in.size() - done, page_size_ - offset);
    std::memcpy(materialize(page) + offset, in.data() + done, chunk);
    done += chunk;
  }
}

std::string AddressSpace::read_cstring(GuestAddr addr,
                                       std::uint32_t max_len) const {
  std::string out;
  for (std::uint32_t i = 0; i < max_len && addr + i < size_; ++i) {
    const auto c = static_cast<char>(load(addr + i, 1));
    if (c == '\0') break;
    out.push_back(c);
  }
  return out;
}

std::span<std::uint8_t> AddressSpace::page_data(std::uint32_t page) {
  return {materialize(page), page_size_};
}

std::span<const std::uint8_t> AddressSpace::page_data(std::uint32_t page) const {
  return {const_cast<AddressSpace*>(this)->materialize(page), page_size_};
}

void AddressSpace::set_all_access(PageAccess access) {
  std::fill(access_.begin(), access_.end(), access);
  ++protection_generation_;
}

void AddressSpace::load_program(const isa::Program& program) {
  for (const isa::Section& section : program.sections) {
    write_bytes(section.addr, section.bytes);
  }
}

}  // namespace dqemu::mem
