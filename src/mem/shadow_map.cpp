#include "mem/shadow_map.hpp"

#include <bit>
#include <cassert>

namespace dqemu::mem {

ShadowMap::ShadowMap(std::uint32_t page_size, std::uint32_t shards)
    : page_size_(page_size), shards_(shards) {
  assert(page_size != 0 && (page_size & (page_size - 1)) == 0);
  assert(shards >= 2 && (page_size % shards) == 0);
  page_shift_ = static_cast<std::uint32_t>(std::countr_zero(page_size));
  shard_size_ = page_size / shards;
}

void ShadowMap::add_split(std::uint32_t orig_page,
                          std::span<const std::uint32_t> shadow_pages) {
  assert(shadow_pages.size() == shards_);
  assert(!table_.contains(orig_page) && "page already split");
  for (const std::uint32_t shadow : shadow_pages) {
    assert(shadow != orig_page);
    assert(!table_.contains(shadow) && "shadow page is itself split");
  }
  table_.emplace(orig_page, std::vector<std::uint32_t>(shadow_pages.begin(),
                                                       shadow_pages.end()));
  ++generation_;
}

std::span<const std::uint32_t> ShadowMap::shadow_pages(
    std::uint32_t orig_page) const {
  const auto it = table_.find(orig_page);
  if (it == table_.end()) return {};
  return it->second;
}

}  // namespace dqemu::mem
