#include "sys/vfs.hpp"

#include <algorithm>
#include <cstring>

#include "isa/syscall_abi.hpp"

namespace dqemu::sys {

Vfs::Vfs() {
  // fd 0 (stdin: empty file), fd 1 (stdout), fd 2 (stderr).
  OpenFile stdin_file;
  stdin_file.file = std::make_shared<std::vector<std::uint8_t>>();
  stdin_file.open = true;
  fds_.push_back(stdin_file);
  OpenFile stdout_file;
  stdout_file.is_stdout = true;
  stdout_file.writable = true;
  stdout_file.open = true;
  fds_.push_back(stdout_file);
  OpenFile stderr_file;
  stderr_file.is_stderr = true;
  stderr_file.writable = true;
  stderr_file.open = true;
  fds_.push_back(stderr_file);
}

void Vfs::preload(const std::string& path,
                  std::span<const std::uint8_t> bytes) {
  files_[path] = std::make_shared<std::vector<std::uint8_t>>(bytes.begin(),
                                                             bytes.end());
}

void Vfs::preload(const std::string& path, std::string_view text) {
  preload(path, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(text.data()),
                    text.size()));
}

std::optional<std::vector<std::uint8_t>> Vfs::file_content(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return *it->second;
}

Vfs::OpenFile* Vfs::lookup(std::int32_t fd) {
  if (fd < 0 || static_cast<std::size_t>(fd) >= fds_.size()) return nullptr;
  OpenFile* file = &fds_[static_cast<std::size_t>(fd)];
  return file->open ? file : nullptr;
}

std::int32_t Vfs::open(const std::string& path, std::uint32_t flags) {
  const bool writable = (flags & isa::kOpenWrite) != 0;
  auto it = files_.find(path);
  if (it == files_.end()) {
    if ((flags & isa::kOpenCreate) == 0) return -isa::kENOENT;
    it = files_.emplace(path, std::make_shared<std::vector<std::uint8_t>>())
             .first;
  }
  OpenFile file;
  file.file = it->second;
  file.writable = writable;
  file.open = true;
  // Reuse the lowest closed slot, POSIX-style.
  for (std::size_t i = 0; i < fds_.size(); ++i) {
    if (!fds_[i].open) {
      fds_[i] = file;
      return static_cast<std::int32_t>(i);
    }
  }
  fds_.push_back(file);
  return static_cast<std::int32_t>(fds_.size() - 1);
}

std::int32_t Vfs::close(std::int32_t fd) {
  OpenFile* file = lookup(fd);
  if (file == nullptr) return -isa::kEBADF;
  *file = OpenFile{};
  return 0;
}

std::int32_t Vfs::read(std::int32_t fd, std::span<std::uint8_t> out) {
  OpenFile* file = lookup(fd);
  if (file == nullptr) return -isa::kEBADF;
  if (file->is_stdout || file->is_stderr) return -isa::kEBADF;
  const auto& bytes = *file->file;
  if (file->pos >= bytes.size()) return 0;
  const std::size_t n =
      std::min<std::size_t>(out.size(), bytes.size() - file->pos);
  std::memcpy(out.data(), bytes.data() + file->pos, n);
  file->pos += n;
  return static_cast<std::int32_t>(n);
}

std::int32_t Vfs::write(std::int32_t fd, std::span<const std::uint8_t> in) {
  OpenFile* file = lookup(fd);
  if (file == nullptr) return -isa::kEBADF;
  if (file->is_stdout) {
    stdout_.append(reinterpret_cast<const char*>(in.data()), in.size());
    return static_cast<std::int32_t>(in.size());
  }
  if (file->is_stderr) {
    stderr_.append(reinterpret_cast<const char*>(in.data()), in.size());
    return static_cast<std::int32_t>(in.size());
  }
  if (!file->writable) return -isa::kEBADF;
  auto& bytes = *file->file;
  if (file->pos + in.size() > bytes.size()) {
    bytes.resize(file->pos + in.size());
  }
  std::memcpy(bytes.data() + file->pos, in.data(), in.size());
  file->pos += in.size();
  return static_cast<std::int32_t>(in.size());
}

std::int32_t Vfs::lseek(std::int32_t fd, std::int32_t offset,
                        std::uint32_t whence) {
  OpenFile* file = lookup(fd);
  if (file == nullptr) return -isa::kEBADF;
  if (file->is_stdout || file->is_stderr) return -isa::kEINVAL;
  std::int64_t base = 0;
  switch (whence) {
    case isa::kSeekSet: base = 0; break;
    case isa::kSeekCur: base = static_cast<std::int64_t>(file->pos); break;
    case isa::kSeekEnd: base = static_cast<std::int64_t>(file->file->size()); break;
    default: return -isa::kEINVAL;
  }
  const std::int64_t target = base + offset;
  if (target < 0) return -isa::kEINVAL;
  file->pos = static_cast<std::uint64_t>(target);
  return static_cast<std::int32_t>(file->pos);
}

std::size_t Vfs::open_fd_count() const {
  std::size_t n = 0;
  for (const OpenFile& file : fds_) {
    if (file.open) ++n;
  }
  return n;
}

}  // namespace dqemu::sys
