#include "sys/master_syscalls.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "isa/syscall_abi.hpp"

namespace dqemu::sys {

net::Message make_syscall_request(NodeId src, GuestTid tid, isa::Sys num,
                                  const std::array<std::uint32_t, 4>& args,
                                  std::span<const std::uint8_t> payload) {
  net::Message msg;
  msg.src = src;
  msg.dst = kMasterNode;
  msg.type = static_cast<std::uint32_t>(SysMsg::kSyscallReq);
  msg.a = static_cast<std::uint64_t>(num);
  msg.b = tid;
  msg.data.resize(16 + payload.size());
  std::memcpy(msg.data.data(), args.data(), 16);
  if (!payload.empty()) {
    std::memcpy(msg.data.data() + 16, payload.data(), payload.size());
  }
  return msg;
}

MasterSyscalls::MasterSyscalls(net::Network& network, sim::EventQueue& queue,
                               MachineConfig machine,
                               std::uint32_t service_cycles,
                               StatsRegistry* stats, trace::Tracer* tracer)
    : network_(network),
      queue_(queue),
      machine_(machine),
      service_cycles_(service_cycles),
      stats_(stats),
      tracer_(tracer),
      futex_(kMasterNode, network, queue, machine, service_cycles, stats,
             tracer),
      page_mask_(machine.page_size - 1) {}

void MasterSyscalls::note(const char* name, std::uint64_t flow,
                          std::uint64_t a, std::uint64_t b) {
  if (!trace::wants(tracer_, trace::Cat::kSys)) return;
  trace::Record r;
  r.time = queue_.now();
  r.name = name;
  r.kind = flow == 0 ? trace::Kind::kInstant : trace::Kind::kFlowStep;
  r.cat = trace::Cat::kSys;
  r.node = kMasterNode;
  r.track = trace::kTrackManager;
  r.flow = flow;
  r.a = a;
  r.b = b;
  tracer_->record(r);
}

void MasterSyscalls::configure_memory(GuestAddr brk_start,
                                      GuestAddr mmap_start,
                                      GuestAddr mmap_end) {
  assert(brk_start <= mmap_start && mmap_start <= mmap_end);
  brk_ = brk_start;
  brk_min_ = brk_start;
  mmap_cursor_ = mmap_start;
  mmap_end_ = mmap_end;
}

void MasterSyscalls::send_after_service(net::Message msg) {
  const DurationPs service = machine_.cycles(service_cycles_);
  queue_.schedule_in(service, [this, m = std::move(msg)]() mutable {
    network_.send(std::move(m));
  });
}

void MasterSyscalls::send_response(NodeId dst, GuestTid tid,
                                   std::int64_t result,
                                   std::span<const std::uint8_t> payload,
                                   std::uint64_t flow) {
  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = dst;
  msg.type = static_cast<std::uint32_t>(SysMsg::kSyscallResp);
  msg.a = static_cast<std::uint64_t>(result);
  msg.b = tid;
  msg.data.assign(payload.begin(), payload.end());
  msg.flow = flow;
  send_after_service(std::move(msg));
}

void MasterSyscalls::handle_message(const net::Message& msg) {
  switch (static_cast<SysMsg>(msg.type)) {
    case SysMsg::kSyscallReq:
      break;  // decoded below
    case SysMsg::kLeaseReq:
    case SysMsg::kLeaseReturn:
      futex_.handle_message(msg);
      return;
    default:
      assert(false && "not a master-addressed sys message");
      return;
  }
  assert(msg.data.size() >= 16);
  SyscallRequest req;
  req.src = msg.src;
  req.tid = static_cast<GuestTid>(msg.b);
  req.num = static_cast<isa::Sys>(msg.a);
  std::memcpy(req.args.data(), msg.data.data(), 16);
  req.payload = std::span<const std::uint8_t>(msg.data).subspan(16);
  req.flow = msg.flow;
  if (stats_ != nullptr) stats_->add("sys.delegated");
  note("sys.service", req.flow, msg.a, req.tid);
  dispatch(req);
}

void MasterSyscalls::dispatch(const SyscallRequest& req) {
  using isa::Sys;
  switch (req.num) {
    case Sys::kWrite: {
      const auto fd = static_cast<std::int32_t>(req.args[0]);
      const std::int32_t n = vfs_.write(fd, req.payload);
      send_response(req.src, req.tid, n, {}, req.flow);
      return;
    }
    case Sys::kRead: {
      const auto fd = static_cast<std::int32_t>(req.args[0]);
      std::vector<std::uint8_t> buf(req.args[2]);
      const std::int32_t n = vfs_.read(fd, buf);
      if (n > 0) buf.resize(static_cast<std::size_t>(n));
      else buf.clear();
      send_response(req.src, req.tid, n, buf, req.flow);
      return;
    }
    case Sys::kOpen: {
      // Payload is the NUL-terminated path captured by the caller node.
      const char* begin = reinterpret_cast<const char*>(req.payload.data());
      const std::size_t maxlen = req.payload.size();
      std::size_t len = 0;
      while (len < maxlen && begin[len] != '\0') ++len;
      const std::int32_t fd = vfs_.open(std::string(begin, len), req.args[1]);
      send_response(req.src, req.tid, fd, {}, req.flow);
      return;
    }
    case Sys::kClose:
      send_response(req.src, req.tid,
                    vfs_.close(static_cast<std::int32_t>(req.args[0])), {},
                    req.flow);
      return;
    case Sys::kLseek:
      send_response(req.src, req.tid,
                    vfs_.lseek(static_cast<std::int32_t>(req.args[0]),
                               static_cast<std::int32_t>(req.args[1]),
                               req.args[2]),
                    {}, req.flow);
      return;
    case Sys::kBrk: {
      const GuestAddr request = req.args[0];
      if (request != 0 && request >= brk_min_ && request < mmap_cursor_) {
        brk_ = request;
      }
      send_response(req.src, req.tid, brk_, {}, req.flow);
      return;
    }
    case Sys::kMmap: {
      const std::uint32_t len =
          (req.args[0] + page_mask_) & ~page_mask_;
      if (len == 0 || mmap_cursor_ + len > mmap_end_) {
        send_response(req.src, req.tid, -isa::kENOMEM, {}, req.flow);
        return;
      }
      const GuestAddr addr = mmap_cursor_;
      mmap_cursor_ += len;
      if (stats_ != nullptr) stats_->add("sys.mmap_bytes", len);
      send_response(req.src, req.tid, addr, {}, req.flow);
      return;
    }
    case Sys::kMunmap:
      send_response(req.src, req.tid, 0, {}, req.flow);  // accounting-only
      return;
    case Sys::kFutex:
      futex_.do_futex(req);
      return;
    case Sys::kClone: {
      assert(hooks_.on_clone && "core layer must install the clone hook");
      const std::int32_t child = hooks_.on_clone(req);
      send_response(req.src, req.tid, child, {}, req.flow);
      return;
    }
    case Sys::kExit: {
      // args: [0]=status, [1]=ctid address (0 if none). The node already
      // stored 0 to *ctid through the coherence protocol; waking joiners
      // is the job of whichever node homes the ctid address — the master
      // classically, possibly a slave under home sharding, in which case
      // the wake is relayed there as a fire-and-forget futex request. The
      // exiting thread never awaits a count either way.
      if (req.args[1] != 0) {
        const GuestAddr ctid = req.args[1];
        const NodeId home = futex_home_ ? futex_home_(ctid) : kMasterNode;
        if (home == kMasterNode) {
          futex_.exit_wake(req, ctid);
        } else {
          net::Message wake = make_syscall_request(
              kMasterNode, req.tid, Sys::kFutex,
              {ctid, isa::kFutexWake, UINT32_MAX, kFutexAsyncWake}, {});
          wake.dst = home;
          wake.c = net::relay_mark(req.src);
          wake.flow = req.flow;
          network_.send(std::move(wake));
        }
      }
      if (hooks_.on_exit) hooks_.on_exit(req);
      return;  // no response: the thread is gone
    }
    case Sys::kExitGroup:
      if (hooks_.on_exit_group) hooks_.on_exit_group(req.args[0]);
      return;
    case Sys::kServeGet:
    case Sys::kServeDone:
      // The serving plane owns these; a kServeGet may be parked (deferred
      // response) exactly like FUTEX_WAIT, so the handler replies itself.
      if (serve_handler_) {
        serve_handler_(req);
      } else {
        send_response(req.src, req.tid, -isa::kENOSYS, {}, req.flow);
      }
      return;
    default:
      DQEMU_WARN("unimplemented delegated syscall %u",
                 static_cast<unsigned>(req.num));
      send_response(req.src, req.tid, -isa::kENOSYS, {}, req.flow);
      return;
  }
}

}  // namespace dqemu::sys
