// Per-home futex + lease service (paper section 4.3; DESIGN.md §11, §17).
//
// The futex wait/wake arbitration and the hierarchical-locking lease
// protocol, factored out of MasterSyscalls so it can run on any node.
// Classically exactly one instance exists, on the master; with home
// sharding every node hosts one and serves the futex addresses whose
// containing *page* it homes. Keeping the futex home equal to the page's
// DSM home is what preserves the no-lost-wakeup argument (§7/§11) per
// home: the waiter's value re-check, the racing writer's invalidation and
// the wait request all serialize through one node's FIFO channels.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/timer.hpp"
#include "sys/futex_table.hpp"
#include "sys/wire.hpp"
#include "trace/tracer.hpp"

namespace dqemu::sys {

struct SyscallRequest;  // sys/master_syscalls.hpp

class FutexService {
 public:
  /// `self` is the hosting node (kMasterNode classically); responses and
  /// protocol messages are sent from it, and its event `queue` carries the
  /// service delays and recall watchdogs (the node's own queue under the
  /// parallel kernel).
  FutexService(NodeId self, net::Network& network, sim::EventQueue& queue,
               MachineConfig machine, std::uint32_t service_cycles,
               StatsRegistry* stats = nullptr, trace::Tracer* tracer = nullptr);

  void configure_locking(const SysConfig& sys) { sys_ = sys; }
  void configure_faults(DurationPs recall_timeout) {
    recall_timeout_ = recall_timeout;
  }

  [[nodiscard]] FutexTable& table() { return futexes_; }
  [[nodiscard]] NodeId self() const { return self_; }

  /// True for the home-plane messages this service consumes when hosted on
  /// a slave node: kSyscallReq (futex only), kLeaseReq, kLeaseReturn.
  [[nodiscard]] static bool handles(std::uint32_t type) {
    switch (static_cast<SysMsg>(type)) {
      case SysMsg::kSyscallReq:
      case SysMsg::kLeaseReq:
      case SysMsg::kLeaseReturn:
        return true;
      default:
        return false;
    }
  }

  /// Dispatches a home-plane message (see handles()). kSyscallReq bodies
  /// must decode to a futex call; the requester is the wire-level sender
  /// unless the master relay-marked the message (dsm::relay_mark).
  void handle_message(const net::Message& msg);

  /// Serves a decoded futex call (wait/wake/lease fast paths; DESIGN.md
  /// §11). Responses are deferred for waits.
  void do_futex(const SyscallRequest& req);

  /// kExit ctid wake: wakes every joiner parked on `ctid`, routing through
  /// the lease state exactly like a wake with nobody awaiting the count.
  void exit_wake(const SyscallRequest& req, GuestAddr ctid);

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------

  /// A kCrashLeaseReturn from `src`: a dying owner's unsolicited return of
  /// a kGranted lease (revocation), a crashed-or-surviving agent's replay
  /// of a return lost to a dead home (completes the kRecalling lease), or
  /// stale (the protocol already moved on — dropped by the phase/owner
  /// check, exactly like a duplicate watchdog return).
  void on_crash_lease_return(NodeId src, GuestAddr addr,
                             const std::vector<FutexTable::Waiter>& returned);

  /// Crash revocation on the *dying node's own* home, called synchronously
  /// from the last gasp before the shard is serialized for handoff: drops
  /// the lease record whatever its phase and splices the returned queue
  /// back in. Buffered mid-recall ops stay buffered and ride the handoff;
  /// the master replays them at adoption.
  void crash_revoke_local(GuestAddr addr,
                          const std::vector<FutexTable::Waiter>& returned);

  /// Dead-node sweep, run in this home's own context on kNodeDead: drops
  /// the dead node's waiters and buffered ops, revokes leases it still
  /// appears to own (fallback — its last gasp normally got here first, one
  /// hop beats two), and completes recalls stuck on it.
  void on_node_dead(NodeId dead);

  /// Serializes this home's futex/lease state (table + recall buffers) for
  /// the kFutexHandoff message and cancels the recall watchdogs; part of
  /// the last gasp. Layout: u64 table length, serialized table, then the
  /// recall buffers in sorted address order.
  void serialize_for_handoff(std::vector<std::uint8_t>& out);

  /// Master-side adoption of a dead home's handoff: merges the table,
  /// installs the recall buffers (replaying those whose address is now
  /// home-owned) and re-arms recall watchdogs for adopted in-flight
  /// recalls — the dead home's watchdogs died with it.
  void adopt_handoff(std::span<const std::uint8_t> data);

  /// Crash teardown: cancels every pending recall watchdog so nothing
  /// fires into a dead node's protocol state.
  void cancel_watchdogs() { recall_watchdogs_.clear(); }

 private:
  /// A futex op that arrived while its address's lease was being recalled;
  /// replayed against the home queue when the owner returns the lease.
  struct BufferedFutexOp {
    NodeId src = kInvalidNode;
    GuestTid tid = kInvalidTid;
    std::uint32_t op = 0;
    std::uint32_t count = 0;
    std::uint64_t flow = 0;
    bool respond = true;  ///< false for exit-wakes: the waker is gone
  };

  /// Wakes up to `count` waiters of a home-owned address and sends the
  /// deferred responses; returns the number woken.
  std::uint32_t home_wake(GuestAddr addr, std::uint32_t count);
  /// Forwards a wait/wake on a leased address to its owner agent.
  void forward_wait(const SyscallRequest& req);
  void forward_wake(GuestAddr addr, std::uint32_t count, NodeId requester,
                    GuestTid requester_tid, std::uint64_t flow);
  void on_lease_request(const net::Message& msg);
  void on_lease_return(const net::Message& msg);
  /// Shared tail of a completed recall (normal return or crash replay):
  /// stop the watchdog, splice the returned queue, replay the buffered
  /// ops, grant to the pending requester — unless that requester is dead,
  /// in which case the queue stays home-owned.
  void complete_recall(GuestAddr addr,
                       const std::vector<FutexTable::Waiter>& returned,
                       std::uint64_t fallback_flow);
  /// Replays (and clears) `addr`'s buffered mid-recall ops against the
  /// home-owned queue, in arrival order.
  void replay_buffered(GuestAddr addr);
  /// Arms (or re-arms after backoff) the recall watchdog for `addr`.
  void arm_recall_watchdog(GuestAddr addr, DurationPs timeout);
  /// Watchdog fire: the recall (or its return) is presumed stuck somewhere
  /// on the lossy wire — re-send the kLeaseRecall. Safe because the lock
  /// agent treats a recall for a lease it no longer owns as a no-op.
  void on_recall_timeout(GuestAddr addr);
  void send_response(NodeId dst, GuestTid tid, std::int64_t result,
                     std::uint64_t flow);
  /// Schedules `msg` onto the wire after the manager service delay (the
  /// same delay every response pays, so per-channel FIFO order follows
  /// home processing order).
  void send_after_service(net::Message msg);
  /// Lease-protocol messages hit the wire at processing time — see the
  /// ordering comment in futex_home.cpp.
  void send_protocol(net::Message msg);
  void note(const char* name, std::uint64_t flow, std::uint64_t a,
            std::uint64_t b);

  NodeId self_;
  net::Network& network_;
  sim::EventQueue& queue_;
  MachineConfig machine_;
  std::uint32_t service_cycles_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  FutexTable futexes_;
  SysConfig sys_;
  /// Ops buffered per address while a recall is in flight (arrival order).
  std::unordered_map<GuestAddr, std::vector<BufferedFutexOp>> recall_buffer_;
  /// Causal chain of the lease request that triggered the pending recall.
  std::unordered_map<GuestAddr, std::uint64_t> pending_lease_flow_;
  /// Per-address recall watchdog (fault model only): timer + current
  /// backed-off period. Erased when the lease comes home.
  struct RecallWatchdog {
    std::unique_ptr<sim::Timer> timer;
    DurationPs timeout = 0;
  };
  std::unordered_map<GuestAddr, RecallWatchdog> recall_watchdogs_;
  DurationPs recall_timeout_ = 0;
  /// Nodes declared dead (DESIGN.md §18): their late-arriving ops are
  /// dropped and no lease or wake is ever granted to them.
  std::unordered_set<NodeId> dead_nodes_;
  /// "sys.futex_home_msgs.<self>": per-home futex-plane message counter.
  std::string home_msgs_counter_;
};

}  // namespace dqemu::sys
