#include "sys/lock_agent.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <vector>

#include "core/wire.hpp"

namespace dqemu::sys {

LockAgent::LockAgent(NodeId id, const SysConfig& config,
                     sim::EventQueue& queue, net::Network& network,
                     StatsRegistry* stats, trace::Tracer* tracer,
                     WakeLocalFn wake_local)
    : id_(id),
      config_(config),
      queue_(queue),
      network_(network),
      stats_(stats),
      tracer_(tracer),
      wake_local_(std::move(wake_local)) {}

void LockAgent::note(const char* name, trace::Kind kind, std::uint64_t flow,
                     std::uint64_t a, std::uint64_t b) {
  if (!trace::wants(tracer_, trace::Cat::kSys)) return;
  trace::Record r;
  r.time = queue_.now();
  r.name = name;
  r.kind = kind;
  r.cat = trace::Cat::kSys;
  r.node = id_;
  r.track = trace::kTrackNode;
  r.flow = flow;
  r.a = a;
  r.b = b;
  tracer_->record(r);
}

std::size_t LockAgent::parked_waiters() const {
  std::size_t n = 0;
  for (const auto& [addr, entry] : owned_) n += entry.queue.size();
  return n;
}

// Defined outside the fast-path gate: with the fast path compiled out both
// maps stay empty and these are no-ops, which is exactly right.

void LockAgent::return_all(const LocalRevokeFn& local_revoke) {
  std::vector<GuestAddr> addrs;
  addrs.reserve(owned_.size());
  for (const auto& [addr, entry] : owned_) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());
  for (const GuestAddr addr : addrs) {
    Entry& entry = owned_[addr];
    const std::vector<FutexTable::Waiter> queue(entry.queue.begin(),
                                                entry.queue.end());
    const NodeId home = home_resolver_ ? home_resolver_(addr) : kMasterNode;
    if (stats_ != nullptr) stats_->add("sys.crash_lease_returns");
    if (home == id_) {
      // This node hosts the home shard too; a loopback message would land
      // after the shard is serialized for handoff. Revoke synchronously so
      // the handed-off table already contains the queue.
      local_revoke(addr, queue);
      continue;
    }
    net::Message ret;
    ret.src = id_;
    ret.dst = home;
    ret.type = static_cast<std::uint32_t>(core::CoreMsg::kCrashLeaseReturn);
    ret.a = addr;
    ret.b = queue.size();
    FutexTable::pack_waiters(queue, ret.data);
    network_.send(std::move(ret));
  }
  // Replay the normal returns still in flight: silence() is about to wipe
  // this node's retransmission state, so a kLeaseReturn the wire has not
  // delivered yet would vanish with us — and its waiters with it. The
  // crash-plane duplicate is stale-safe at the home (phase/owner check).
  std::vector<GuestAddr> pending;
  pending.reserve(sent_returns_.size());
  for (const auto& [addr, sent] : sent_returns_) pending.push_back(addr);
  std::sort(pending.begin(), pending.end());
  for (const GuestAddr addr : pending) {
    const SentReturn& sent = sent_returns_[addr];
    if (stats_ != nullptr) stats_->add("sys.crash_lease_returns");
    if (sent.home == id_) {
      local_revoke(addr, sent.queue);
      continue;
    }
    net::Message ret;
    ret.src = id_;
    ret.dst = sent.home;
    ret.type = static_cast<std::uint32_t>(core::CoreMsg::kCrashLeaseReturn);
    ret.a = addr;
    ret.b = sent.queue.size();
    FutexTable::pack_waiters(sent.queue, ret.data);
    network_.send(std::move(ret));
  }
  owned_.clear();
  delegated_ops_.clear();
  sent_returns_.clear();
}

void LockAgent::on_peer_dead(NodeId dead) {
  // Drop the dead node's waiters from every owned queue: granting them the
  // lock would lose it forever (its threads re-issue waits after re-homing).
  for (auto& [addr, entry] : owned_) {
    auto& queue = entry.queue;
    for (auto it = queue.begin(); it != queue.end();) {
      if (it->node == dead) {
        it = queue.erase(it);
        if (stats_ != nullptr) stats_->add("sys.dead_waiters_dropped");
      } else {
        ++it;
      }
    }
  }
  // Re-send lease returns that were in flight to the dead home: the master
  // adopted its lease records (still kRecalling, owner = this agent) and
  // completes the recall on our behalf. Stale copies — the home processed
  // the original before dying — are dropped by the receiver's phase check.
  std::vector<GuestAddr> addrs;
  for (const auto& [addr, sent] : sent_returns_) {
    if (sent.home == dead) addrs.push_back(addr);
  }
  std::sort(addrs.begin(), addrs.end());
  for (const GuestAddr addr : addrs) {
    SentReturn& sent = sent_returns_[addr];
    net::Message ret;
    ret.src = id_;
    ret.dst = kMasterNode;
    ret.type = static_cast<std::uint32_t>(core::CoreMsg::kCrashLeaseReturn);
    ret.a = addr;
    ret.b = sent.queue.size();
    FutexTable::pack_waiters(sent.queue, ret.data);
    if (stats_ != nullptr) stats_->add("sys.crash_lease_returns");
    network_.send(std::move(ret));
    sent_returns_.erase(addr);
  }
}

#if DQEMU_LOCK_FASTPATH_ENABLED

void LockAgent::local_wait(GuestAddr addr, GuestTid tid, std::uint64_t flow) {
  assert(owns(addr));
  owned_[addr].queue.push_back(FutexTable::Waiter{id_, tid, flow});
  if (stats_ != nullptr) stats_->add("sys.lock_local_waits");
  note("sys.lock_local_wait", trace::Kind::kFlowStep, flow, addr, tid);
}

std::uint32_t LockAgent::local_wake(GuestAddr addr, std::uint32_t count) {
  assert(owns(addr));
  if (stats_ != nullptr) stats_->add("sys.lock_local_wakes");
  return wake_from_entry(addr, owned_[addr], count);
}

std::uint32_t LockAgent::wake_from_entry(GuestAddr addr, Entry& entry,
                                         std::uint32_t count) {
  std::uint32_t woken = 0;
  // Deterministic send order: remote wakes grouped per node, ascending.
  std::map<NodeId, std::vector<FutexTable::Waiter>> remote;
  while (woken < count && !entry.queue.empty()) {
    // Cohorting: prefer the oldest local waiter while the streak budget
    // lasts, then fall back to strict FIFO (which resets the streak as
    // soon as the front is remote).
    std::size_t pick = 0;
    if (entry.queue.front().node != id_ && config_.lock_cohort_limit > 0 &&
        entry.local_streak < config_.lock_cohort_limit) {
      for (std::size_t i = 0; i < entry.queue.size(); ++i) {
        if (entry.queue[i].node == id_) {
          pick = i;
          break;
        }
      }
    }
    const FutexTable::Waiter w = entry.queue[pick];
    entry.queue.erase(entry.queue.begin() +
                      static_cast<std::ptrdiff_t>(pick));
    ++woken;
    if (w.node == id_) {
      ++entry.local_streak;
      if (stats_ != nullptr) stats_->add("sys.lock_local_grants");
      note("sys.lock_local_grant", trace::Kind::kFlowStep, w.flow, addr,
           w.tid);
      wake_local_(w.tid, w.flow);
    } else {
      entry.local_streak = 0;
      if (stats_ != nullptr) stats_->add("sys.lock_remote_grants");
      remote[w.node].push_back(w);
    }
  }

  for (const auto& [node, waiters] : remote) {
    if (waiters.size() == 1) {
      // Single wake: a plain syscall response straight to the waiter's
      // node, exactly what the master would have sent.
      net::Message resp;
      resp.src = id_;
      resp.dst = node;
      resp.type = static_cast<std::uint32_t>(SysMsg::kSyscallResp);
      resp.a = 0;
      resp.b = waiters.front().tid;
      resp.flow = waiters.front().flow;
      network_.send(std::move(resp));
      continue;
    }
    net::Message batch;
    batch.src = id_;
    batch.dst = node;
    batch.type = static_cast<std::uint32_t>(SysMsg::kWakeBatch);
    batch.a = addr;
    batch.b = waiters.size();
    FutexTable::pack_waiters(waiters, batch.data);
    if (stats_ != nullptr) stats_->add("sys.wake_batches");
    note("sys.wake_batched", trace::Kind::kInstant, 0, addr,
         waiters.size());
    network_.send(std::move(batch));
  }
  return woken;
}

void LockAgent::note_delegated(GuestAddr addr) {
  const std::uint32_t ops = ++delegated_ops_[addr];
  if (ops < config_.lease_request_threshold) return;
  delegated_ops_[addr] = 0;  // back off until the address proves hot again

  net::Message req;
  req.src = id_;
  req.dst = home_resolver_ ? home_resolver_(addr) : kMasterNode;
  req.type = static_cast<std::uint32_t>(SysMsg::kLeaseReq);
  req.a = addr;
  if (stats_ != nullptr) stats_->add("sys.lease_requests");
  if (trace::wants(tracer_, trace::Cat::kSys)) {
    req.flow = tracer_->new_flow();
    note("sys.lease_acquire", trace::Kind::kFlowBegin, req.flow, addr, 0);
  }
  network_.send(std::move(req));
}

void LockAgent::handle_message(const net::Message& msg) {
  switch (static_cast<SysMsg>(msg.type)) {
    case SysMsg::kLeaseGrant: return on_lease_grant(msg);
    case SysMsg::kLeaseRecall: return on_lease_recall(msg);
    case SysMsg::kWaitHandoff: return on_wait_handoff(msg);
    case SysMsg::kWakeHandoff: return on_wake_handoff(msg);
    default:
      assert(false && "message not handled by the lock agent");
  }
}

void LockAgent::on_lease_grant(const net::Message& msg) {
  const auto addr = static_cast<GuestAddr>(msg.a);
  assert(!owns(addr));
  Entry entry;
  const auto handed = FutexTable::unpack_waiters(msg.data);
  entry.queue.assign(handed.begin(), handed.end());
  owned_.emplace(addr, std::move(entry));
  delegated_ops_.erase(addr);
  sent_returns_.erase(addr);  // the protocol moved past the last return
  if (msg.flow != 0 && (msg.flow & trace::kAutoFlowBit) == 0) {
    note("sys.lease_acquire", trace::Kind::kFlowEnd, msg.flow, addr,
         handed.size());
  }
}

void LockAgent::on_lease_recall(const net::Message& msg) {
  const auto addr = static_cast<GuestAddr>(msg.a);
  auto it = owned_.find(addr);
  if (it == owned_.end()) {
    // Duplicate recall: the master's recall watchdog (DESIGN.md §13) fired
    // while our lease return was still crossing the wire. The return is
    // already on its way, so there is nothing left to hand back.
    if (stats_ != nullptr) stats_->add("sys.dup_recalls_ignored");
    note("sys.dup_recall", trace::Kind::kInstant, msg.flow, addr, 0);
    return;
  }
  // Hand the whole queue (locals included, tagged with this node's id)
  // back to the recalling home (the master classically); waiters parked
  // here stay blocked until the home or the next owner wakes them.
  std::vector<FutexTable::Waiter> queue(it->second.queue.begin(),
                                        it->second.queue.end());
  owned_.erase(it);

  net::Message ret;
  ret.src = id_;
  ret.dst = msg.src;
  ret.type = static_cast<std::uint32_t>(SysMsg::kLeaseReturn);
  ret.a = addr;
  ret.flow = msg.flow;  // keep riding the recalling requester's chain
  FutexTable::pack_waiters(queue, ret.data);
  if (msg.flow != 0 && (msg.flow & trace::kAutoFlowBit) == 0) {
    note("sys.lease_return", trace::Kind::kFlowStep, msg.flow, addr,
         queue.size());
  }
  network_.send(std::move(ret));
  if (network_.faults_active()) {
    // Keep a copy so the return can be replayed to the master if the
    // recalling home dies with it in flight (DESIGN.md §18).
    sent_returns_[addr] = SentReturn{msg.src, std::move(queue)};
  }
}

void LockAgent::on_wait_handoff(const net::Message& msg) {
  const auto addr = static_cast<GuestAddr>(msg.a);
  // Guaranteed by the master->owner FIFO link: a recall sent after this
  // handoff cannot overtake it, so the lease is still here.
  assert(owns(addr));
  owned_[addr].queue.push_back(FutexTable::Waiter{
      static_cast<NodeId>(msg.c), static_cast<GuestTid>(msg.b), msg.flow});
  note("sys.lock_handoff_wait", trace::Kind::kFlowStep, msg.flow, addr,
       msg.b);
}

void LockAgent::on_wake_handoff(const net::Message& msg) {
  const auto addr = static_cast<GuestAddr>(msg.a);
  assert(owns(addr));
  const std::uint32_t woken =
      wake_from_entry(addr, owned_[addr], static_cast<std::uint32_t>(msg.b));
  const auto requester = static_cast<std::uint32_t>(msg.c >> 32);
  if (requester == kNoWakeResponse) return;  // e.g. thread-exit wakes
  net::Message resp;
  resp.src = id_;
  resp.dst = static_cast<NodeId>(requester);
  resp.type = static_cast<std::uint32_t>(SysMsg::kSyscallResp);
  resp.a = woken;
  resp.b = static_cast<std::uint32_t>(msg.c);
  resp.flow = msg.flow;
  network_.send(std::move(resp));
}

#else  // !DQEMU_LOCK_FASTPATH_ENABLED — hierarchical_locking() is false, so
       // none of these can be reached; keep link-compatible stubs.

void LockAgent::local_wait(GuestAddr, GuestTid, std::uint64_t) {
  assert(false && "lock fast path compiled out");
}

std::uint32_t LockAgent::local_wake(GuestAddr, std::uint32_t) {
  assert(false && "lock fast path compiled out");
  return 0;
}

std::uint32_t LockAgent::wake_from_entry(GuestAddr, Entry&, std::uint32_t) {
  return 0;
}

void LockAgent::note_delegated(GuestAddr) {}

void LockAgent::handle_message(const net::Message&) {
  assert(false && "lock fast path compiled out");
}

void LockAgent::on_lease_grant(const net::Message&) {}
void LockAgent::on_lease_recall(const net::Message&) {}
void LockAgent::on_wait_handoff(const net::Message&) {}
void LockAgent::on_wake_handoff(const net::Message&) {}

#endif  // DQEMU_LOCK_FASTPATH_ENABLED

}  // namespace dqemu::sys
