// Master-side delegated-syscall engine (paper section 4.3).
//
// Owns the authoritative system state: the VFS + fd table, the distributed
// futex table, and the guest heap/mmap break. Thread lifecycle calls
// (clone / exit / exit_group) are forwarded to hooks the core layer
// installs, because placement and thread accounting live there.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "isa/syscall_abi.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/timer.hpp"
#include "sys/futex_table.hpp"
#include "sys/vfs.hpp"
#include "sys/wire.hpp"
#include "trace/tracer.hpp"

namespace dqemu::sys {

/// Decoded request: the four register args plus any input payload.
struct SyscallRequest {
  NodeId src = kInvalidNode;
  GuestTid tid = kInvalidTid;
  isa::Sys num = isa::Sys::kExit;
  std::array<std::uint32_t, 4> args{};
  std::span<const std::uint8_t> payload;
  std::uint64_t flow = 0;  ///< causal chain opened by the delegating node
};

/// Packs args + payload into a kSyscallReq message body (node side).
[[nodiscard]] net::Message make_syscall_request(
    NodeId src, GuestTid tid, isa::Sys num,
    const std::array<std::uint32_t, 4>& args,
    std::span<const std::uint8_t> payload);

class MasterSyscalls {
 public:
  struct Hooks {
    /// clone(flags, child_sp, ctid): create the child thread somewhere in
    /// the cluster; returns the child's tid (or -errno).
    std::function<std::int32_t(const SyscallRequest&)> on_clone;
    /// A guest thread exited with `status`.
    std::function<void(const SyscallRequest&)> on_exit;
    /// exit_group(status): terminate the whole guest.
    std::function<void(std::uint32_t status)> on_exit_group;
  };

  MasterSyscalls(net::Network& network, sim::EventQueue& queue,
                 MachineConfig machine, std::uint32_t service_cycles,
                 StatsRegistry* stats = nullptr,
                 trace::Tracer* tracer = nullptr);

  /// Installs the hierarchical-locking knobs (lease hysteresis). Without
  /// this call leases are never granted and every futex op is served from
  /// the master table exactly as before.
  void configure_locking(const SysConfig& sys) { sys_ = sys; }

  /// Installs the fault-model knobs. With FaultConfig::request_timeout > 0
  /// and the network's fault path active, every outstanding lease recall
  /// gets a watchdog that re-sends the kLeaseRecall (DESIGN.md §13).
  void configure_faults(const FaultConfig& faults) {
    recall_timeout_ = faults.request_timeout;
  }

  /// Guest heap layout: brk grows in [brk_start, mmap_start); anonymous
  /// mmaps grow in [mmap_start, mmap_end).
  void configure_memory(GuestAddr brk_start, GuestAddr mmap_start,
                        GuestAddr mmap_end);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Serving-plane escape hatch: kServeGet / kServeDone requests are handed
  /// to this callback (the core layer binds it to the load generator),
  /// which replies — possibly much later, for parked workers — through
  /// send_response. Without a handler both calls return -ENOSYS.
  using ServeHandler = std::function<void(const SyscallRequest&)>;
  void set_serve_handler(ServeHandler handler) {
    serve_handler_ = std::move(handler);
  }

  [[nodiscard]] Vfs& vfs() { return vfs_; }
  [[nodiscard]] const Vfs& vfs() const { return vfs_; }
  [[nodiscard]] FutexTable& futexes() { return futexes_; }
  [[nodiscard]] GuestAddr current_brk() const { return brk_; }

  /// Handles a master-addressed sys message: kSyscallReq, and the lease
  /// traffic of hierarchical locking (kLeaseReq / kLeaseReturn).
  void handle_message(const net::Message& msg);

  /// Sends the kSyscallResp that unblocks (node, tid). Public because the
  /// core layer completes clone/futex-wake responses through it.
  void send_response(NodeId dst, GuestTid tid, std::int64_t result,
                     std::span<const std::uint8_t> payload = {},
                     std::uint64_t flow = 0);

 private:
  /// A futex op that arrived while its address's lease was being recalled;
  /// replayed against the master queue when the owner returns the lease.
  struct BufferedFutexOp {
    NodeId src = kInvalidNode;
    GuestTid tid = kInvalidTid;
    std::uint32_t op = 0;
    std::uint32_t count = 0;
    std::uint64_t flow = 0;
    bool respond = true;  ///< false for exit-wakes: the waker is gone
  };

  void dispatch(const SyscallRequest& req);
  void do_futex(const SyscallRequest& req);
  /// Wakes up to `count` waiters of a master-owned address and sends the
  /// deferred responses; returns the number woken.
  std::uint32_t master_wake(GuestAddr addr, std::uint32_t count);
  /// Forwards a wait/wake on a leased address to its owner agent.
  void forward_wait(const SyscallRequest& req);
  void forward_wake(GuestAddr addr, std::uint32_t count, NodeId requester,
                    GuestTid requester_tid, std::uint64_t flow);
  void on_lease_request(const net::Message& msg);
  void on_lease_return(const net::Message& msg);
  /// Arms (or re-arms after backoff) the recall watchdog for `addr`.
  void arm_recall_watchdog(GuestAddr addr, DurationPs timeout);
  /// Watchdog fire: the recall (or its return) is presumed stuck somewhere
  /// on the lossy wire — re-send the kLeaseRecall. Safe because the lock
  /// agent treats a recall for a lease it no longer owns as a no-op.
  void on_recall_timeout(GuestAddr addr);
  /// Schedules `msg` onto the wire after the manager service delay (the
  /// same delay every response pays, so per-channel FIFO order follows
  /// master processing order).
  void send_after_service(net::Message msg);
  void send_protocol(net::Message msg);
  /// Records a master-side edge of chain `flow` on the manager track.
  void note(const char* name, std::uint64_t flow, std::uint64_t a,
            std::uint64_t b);

  net::Network& network_;
  sim::EventQueue& queue_;
  MachineConfig machine_;
  std::uint32_t service_cycles_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  Hooks hooks_;
  ServeHandler serve_handler_;
  Vfs vfs_;
  FutexTable futexes_;
  SysConfig sys_;
  /// Ops buffered per address while a recall is in flight (arrival order).
  std::unordered_map<GuestAddr, std::vector<BufferedFutexOp>> recall_buffer_;
  /// Causal chain of the lease request that triggered the pending recall.
  std::unordered_map<GuestAddr, std::uint64_t> pending_lease_flow_;
  /// Per-address recall watchdog (fault model only): timer + current
  /// backed-off period. Erased when the lease comes home.
  struct RecallWatchdog {
    std::unique_ptr<sim::Timer> timer;
    DurationPs timeout = 0;
  };
  std::unordered_map<GuestAddr, RecallWatchdog> recall_watchdogs_;
  DurationPs recall_timeout_ = 0;
  GuestAddr brk_ = 0;
  GuestAddr brk_min_ = 0;
  GuestAddr mmap_cursor_ = 0;
  GuestAddr mmap_end_ = 0;
  std::uint32_t page_mask_ = 4095;
};

}  // namespace dqemu::sys
