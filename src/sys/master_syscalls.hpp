// Master-side delegated-syscall engine (paper section 4.3).
//
// Owns the authoritative system state: the VFS + fd table, the guest
// heap/mmap break, and (through an embedded FutexService) the master-homed
// slice of the distributed futex table — all of it classically, only the
// addresses home sharding leaves on node 0 otherwise. Thread lifecycle
// calls (clone / exit / exit_group) are forwarded to hooks the core layer
// installs, because placement and thread accounting live there.
#pragma once

#include <array>
#include <functional>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "isa/syscall_abi.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sys/futex_home.hpp"
#include "sys/vfs.hpp"
#include "sys/wire.hpp"
#include "trace/tracer.hpp"

namespace dqemu::sys {

/// Decoded request: the four register args plus any input payload.
struct SyscallRequest {
  NodeId src = kInvalidNode;
  GuestTid tid = kInvalidTid;
  isa::Sys num = isa::Sys::kExit;
  std::array<std::uint32_t, 4> args{};
  std::span<const std::uint8_t> payload;
  std::uint64_t flow = 0;  ///< causal chain opened by the delegating node
};

/// Packs args + payload into a kSyscallReq message body (node side).
[[nodiscard]] net::Message make_syscall_request(
    NodeId src, GuestTid tid, isa::Sys num,
    const std::array<std::uint32_t, 4>& args,
    std::span<const std::uint8_t> payload);

class MasterSyscalls {
 public:
  struct Hooks {
    /// clone(flags, child_sp, ctid): create the child thread somewhere in
    /// the cluster; returns the child's tid (or -errno).
    std::function<std::int32_t(const SyscallRequest&)> on_clone;
    /// A guest thread exited with `status`.
    std::function<void(const SyscallRequest&)> on_exit;
    /// exit_group(status): terminate the whole guest.
    std::function<void(std::uint32_t status)> on_exit_group;
  };

  MasterSyscalls(net::Network& network, sim::EventQueue& queue,
                 MachineConfig machine, std::uint32_t service_cycles,
                 StatsRegistry* stats = nullptr,
                 trace::Tracer* tracer = nullptr);

  /// Installs the hierarchical-locking knobs (lease hysteresis). Without
  /// this call leases are never granted and every futex op is served from
  /// the master table exactly as before.
  void configure_locking(const SysConfig& sys) {
    futex_.configure_locking(sys);
  }

  /// Installs the fault-model knobs. With FaultConfig::request_timeout > 0
  /// and the network's fault path active, every outstanding lease recall
  /// gets a watchdog that re-sends the kLeaseRecall (DESIGN.md §13).
  void configure_faults(const FaultConfig& faults) {
    futex_.configure_faults(faults.request_timeout);
  }

  /// Guest heap layout: brk grows in [brk_start, mmap_start); anonymous
  /// mmaps grow in [mmap_start, mmap_end).
  void configure_memory(GuestAddr brk_start, GuestAddr mmap_start,
                        GuestAddr mmap_end);

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  /// Home sharding (DESIGN.md §17): maps a futex address to the node whose
  /// FutexService owns it. The master consults it for the kExit ctid wake —
  /// the one futex op that originates *at* the master — and relays the wake
  /// to the home when it is not node 0. Unset means everything is
  /// master-homed (the classic protocol).
  using FutexHomeResolver = std::function<NodeId(GuestAddr)>;
  void set_futex_home(FutexHomeResolver resolver) {
    futex_home_ = std::move(resolver);
  }

  /// Serving-plane escape hatch: kServeGet / kServeDone requests are handed
  /// to this callback (the core layer binds it to the load generator),
  /// which replies — possibly much later, for parked workers — through
  /// send_response. Without a handler both calls return -ENOSYS.
  using ServeHandler = std::function<void(const SyscallRequest&)>;
  void set_serve_handler(ServeHandler handler) {
    serve_handler_ = std::move(handler);
  }

  [[nodiscard]] Vfs& vfs() { return vfs_; }
  [[nodiscard]] const Vfs& vfs() const { return vfs_; }
  [[nodiscard]] FutexTable& futexes() { return futex_.table(); }
  /// The master-resident futex home. The crash plane (DESIGN.md §18)
  /// drives lease revocation, dead-node sweeps and shard adoption on it.
  [[nodiscard]] FutexService& futex_service() { return futex_; }
  [[nodiscard]] GuestAddr current_brk() const { return brk_; }

  /// Handles a master-addressed sys message: kSyscallReq, and the lease
  /// traffic of hierarchical locking (kLeaseReq / kLeaseReturn).
  void handle_message(const net::Message& msg);

  /// Sends the kSyscallResp that unblocks (node, tid). Public because the
  /// core layer completes clone/futex-wake responses through it.
  void send_response(NodeId dst, GuestTid tid, std::int64_t result,
                     std::span<const std::uint8_t> payload = {},
                     std::uint64_t flow = 0);

 private:
  void dispatch(const SyscallRequest& req);
  /// Schedules `msg` onto the wire after the manager service delay (the
  /// same delay every response pays, so per-channel FIFO order follows
  /// master processing order).
  void send_after_service(net::Message msg);
  /// Records a master-side edge of chain `flow` on the manager track.
  void note(const char* name, std::uint64_t flow, std::uint64_t a,
            std::uint64_t b);

  net::Network& network_;
  sim::EventQueue& queue_;
  MachineConfig machine_;
  std::uint32_t service_cycles_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  Hooks hooks_;
  ServeHandler serve_handler_;
  Vfs vfs_;
  /// The master-resident futex home (futex table + lease protocol). With
  /// home sharding most addresses are served by slave-hosted FutexService
  /// instances instead; see sys/futex_home.hpp.
  FutexService futex_;
  FutexHomeResolver futex_home_;
  GuestAddr brk_ = 0;
  GuestAddr brk_min_ = 0;
  GuestAddr mmap_cursor_ = 0;
  GuestAddr mmap_end_ = 0;
  std::uint32_t page_mask_ = 4095;
};

}  // namespace dqemu::sys
