// Syscall classification and pointer-argument pre-access rules.
//
// Section 4.3: local syscalls execute on the node; global syscalls are
// delegated to the master. Pointer arguments must be coherent around the
// call; DQEMU achieves this by migrating the pages through the normal
// coherence protocol. We realize the same contract from the caller's side:
// before a syscall runs, the node faults the argument pages in (read
// access for IN-pointers, write access for OUT-pointers), so the data the
// master sees / the results the caller stores are protocol-coherent. The
// direction is inverted relative to the paper (pages move to the caller
// instead of the master) but the traffic shape and the coherence outcome
// are the same — see DESIGN.md.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/syscall_abi.hpp"

namespace dqemu::sys {

/// Where a syscall executes.
enum class SysClass {
  kLocal,   ///< handled on the executing node
  kGlobal,  ///< delegated to the master
};

/// One guest memory range a syscall touches before/after executing.
struct PreAccess {
  GuestAddr addr = 0;
  std::uint32_t len = 0;
  bool write = false;
};

[[nodiscard]] constexpr SysClass classify(isa::Sys num) {
  switch (num) {
    case isa::Sys::kGettid:
    case isa::Sys::kGetpid:
    case isa::Sys::kYield:
    case isa::Sys::kClockGettime:
    case isa::Sys::kNanosleep:
    case isa::Sys::kUname:
    case isa::Sys::kGetcpu:
      return SysClass::kLocal;
    default:
      return SysClass::kGlobal;
  }
}

/// Guest ranges that must be locally accessible before `num` executes,
/// given its register arguments a0..a3.
[[nodiscard]] inline std::vector<PreAccess> pre_access(
    isa::Sys num, const std::array<std::uint32_t, 4>& args) {
  using isa::Sys;
  std::vector<PreAccess> out;
  switch (num) {
    case Sys::kWrite:
      if (args[2] != 0) out.push_back({args[1], args[2], /*write=*/false});
      break;
    case Sys::kRead:
      if (args[2] != 0) out.push_back({args[1], args[2], /*write=*/true});
      break;
    case Sys::kOpen:
      // Path string: fault in a bounded window (paths are short).
      out.push_back({args[0], 256, /*write=*/false});
      break;
    case Sys::kClockGettime:
      out.push_back({args[1], 8, /*write=*/true});
      break;
    case Sys::kUname:
      out.push_back({args[0], 64, /*write=*/true});
      break;
    case Sys::kFutex:
      if (args[1] == isa::kFutexWait) {
        out.push_back({args[0], 4, /*write=*/false});
      }
      break;
    default:
      break;
  }
  return out;
}

}  // namespace dqemu::sys
