// Per-node lock agent: the node half of hierarchical distributed locking
// (paper section 5, DESIGN.md section 11).
//
// Every node owns one agent. While the agent holds the master-granted
// ownership lease for a futex address, FUTEX_WAIT parks the thread in the
// agent's local queue and FUTEX_WAKE grants the lock to a parked thread
// without any master round trip — the dominant cost of the fig6
// global-mutex scenario. For addresses it does not own, the agent merely
// counts delegated traffic and requests the lease once the address proves
// hot (lease_request_threshold).
//
// Wake policy (lock cohorting): a wake prefers the oldest *local* waiter
// for up to `lock_cohort_limit` consecutive local grants, then must serve
// the oldest waiter overall. This keeps lock handoff on-node (the whole
// point of the lease) while bounding cross-node starvation; with the limit
// set to 0 the agent degenerates to strict global FIFO.
//
// Compiled out by -DDQEMU_ENABLE_LOCK_FASTPATH=OFF, in which case
// hierarchical_locking() is constant-false and every futex op takes the
// PR-0 master-delegation path bit-for-bit.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sys/futex_table.hpp"
#include "sys/wire.hpp"
#include "trace/tracer.hpp"

#ifndef DQEMU_LOCK_FASTPATH_ENABLED
#define DQEMU_LOCK_FASTPATH_ENABLED 1
#endif

namespace dqemu::sys {

/// True when hierarchical locking is both compiled in and enabled in the
/// run configuration. All call sites gate on this so the OFF build and the
/// OFF config take the identical master-delegation path.
[[nodiscard]] inline bool hierarchical_locking(const SysConfig& sys) {
#if DQEMU_LOCK_FASTPATH_ENABLED
  return sys.enable_hierarchical_locking;
#else
  (void)sys;
  return false;
#endif
}

class LockAgent {
 public:
  /// Unblocks a locally-parked thread: the core layer completes the
  /// thread's pending FUTEX_WAIT with result 0 (after charging the agent's
  /// local service cost). `flow` is the waiter's causal chain.
  using WakeLocalFn = std::function<void(GuestTid tid, std::uint64_t flow)>;

  LockAgent(NodeId id, const SysConfig& config, sim::EventQueue& queue,
            net::Network& network, StatsRegistry* stats,
            trace::Tracer* tracer, WakeLocalFn wake_local);

  /// Home sharding (DESIGN.md §17): maps a futex address to the node whose
  /// FutexService arbitrates its lease. Unset, every kLeaseReq goes to the
  /// master — the classic single-home protocol. (Lease *returns* always go
  /// to whichever home sent the recall, so they need no resolver.)
  using HomeResolver = std::function<NodeId(GuestAddr)>;
  void set_home_resolver(HomeResolver resolver) {
    home_resolver_ = std::move(resolver);
  }

  /// True when this agent holds the lease for `addr`.
  [[nodiscard]] bool owns(GuestAddr addr) const {
    return owned_.contains(addr);
  }

  /// Parks a local thread on an owned address (the caller already did the
  /// section-4.4 value re-check).
  void local_wait(GuestAddr addr, GuestTid tid, std::uint64_t flow);

  /// Wakes up to `count` waiters of an owned address; returns the number
  /// woken. Local waiters complete via WakeLocalFn; remote waiters get a
  /// direct kSyscallResp, or one kWakeBatch per node when several wake at
  /// once.
  std::uint32_t local_wake(GuestAddr addr, std::uint32_t count);

  /// Notes one futex op on a non-owned address that is being delegated to
  /// the master; sends a kLeaseReq once the address crosses the request
  /// threshold.
  void note_delegated(GuestAddr addr);

  /// True for message types this agent consumes (lease grant/recall and
  /// cross-node handoffs).
  [[nodiscard]] static bool handles(std::uint32_t type) {
    switch (static_cast<SysMsg>(type)) {
      case SysMsg::kLeaseGrant:
      case SysMsg::kLeaseRecall:
      case SysMsg::kWaitHandoff:
      case SysMsg::kWakeHandoff:
        return true;
      default:
        return false;
    }
  }

  void handle_message(const net::Message& msg);

  [[nodiscard]] std::size_t owned_leases() const { return owned_.size(); }
  [[nodiscard]] std::size_t parked_waiters() const;

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------

  /// Delivers a returned queue to a home service hosted on this same node
  /// (a loopback message would arrive after the dying shard is serialized).
  using LocalRevokeFn =
      std::function<void(GuestAddr, const std::vector<FutexTable::Waiter>&)>;

  /// Crash last gasp, run in this node's own execution context: returns
  /// every owned lease — queue included, so no waiter dies with the node —
  /// to its home as a kCrashLeaseReturn ("reliable by fiat"; a droppable
  /// kLeaseReturn would strand the queue, because the retransmit timer dies
  /// with the node). Self-homed leases go through `local_revoke` instead.
  /// Addresses are processed in sorted order for run-to-run determinism.
  void return_all(const LocalRevokeFn& local_revoke);

  /// Survivor-side reaction to a kNodeDead notice, run in this node's own
  /// context: drops the dead node's waiters from owned queues (granting
  /// them the lock would lose it forever) and re-sends, to the master that
  /// adopted the dead home, any lease return this agent had in flight to
  /// it — the original was black-holed at the silenced node.
  void on_peer_dead(NodeId dead);

 private:
  struct Entry {
    std::deque<FutexTable::Waiter> queue;
    /// Consecutive wakes served to local waiters out of FIFO order.
    std::uint32_t local_streak = 0;
  };

  void on_lease_grant(const net::Message& msg);
  void on_lease_recall(const net::Message& msg);
  void on_wait_handoff(const net::Message& msg);
  void on_wake_handoff(const net::Message& msg);

  /// Dequeues up to `count` waiters of `entry` under the cohorting policy
  /// and delivers their wakes. Returns the number woken.
  std::uint32_t wake_from_entry(GuestAddr addr, Entry& entry,
                                std::uint32_t count);

  void note(const char* name, trace::Kind kind, std::uint64_t flow,
            std::uint64_t a, std::uint64_t b);

  NodeId id_;
  const SysConfig& config_;
  sim::EventQueue& queue_;
  net::Network& network_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  WakeLocalFn wake_local_;
  HomeResolver home_resolver_;

  std::unordered_map<GuestAddr, Entry> owned_;
  /// Delegated-op counts for addresses we do not own (reset on request).
  std::unordered_map<GuestAddr, std::uint32_t> delegated_ops_;
  /// Last lease return sent per address (kept only while the fault plane is
  /// active): destination home + the returned queue, so a return lost to a
  /// crashing home can be re-sent to the master that adopted it. Replaced
  /// by the next recall's return; cleared when the lease comes back.
  struct SentReturn {
    NodeId home = kInvalidNode;
    std::vector<FutexTable::Waiter> queue;
  };
  std::unordered_map<GuestAddr, SentReturn> sent_returns_;
};

}  // namespace dqemu::sys
