#include "sys/futex_home.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/log.hpp"
#include "isa/syscall_abi.hpp"
#include "sys/master_syscalls.hpp"

namespace dqemu::sys {

FutexService::FutexService(NodeId self, net::Network& network,
                           sim::EventQueue& queue, MachineConfig machine,
                           std::uint32_t service_cycles, StatsRegistry* stats,
                           trace::Tracer* tracer)
    : self_(self),
      network_(network),
      queue_(queue),
      machine_(machine),
      service_cycles_(service_cycles),
      stats_(stats),
      tracer_(tracer),
      home_msgs_counter_("sys.futex_home_msgs." + std::to_string(self)) {}

void FutexService::note(const char* name, std::uint64_t flow, std::uint64_t a,
                        std::uint64_t b) {
  if (!trace::wants(tracer_, trace::Cat::kSys)) return;
  trace::Record r;
  r.time = queue_.now();
  r.name = name;
  r.kind = flow == 0 ? trace::Kind::kInstant : trace::Kind::kFlowStep;
  r.cat = trace::Cat::kSys;
  r.node = self_;
  r.track = trace::kTrackManager;
  r.flow = flow;
  r.a = a;
  r.b = b;
  tracer_->record(r);
}

void FutexService::send_after_service(net::Message msg) {
  const DurationPs service = machine_.cycles(service_cycles_);
  queue_.schedule_in(service, [this, m = std::move(msg)]() mutable {
    network_.send(std::move(m));
  });
}

// Lease-protocol messages must hit the wire at processing time, not after a
// modeled service delay: the no-lost-wakeup argument (DESIGN.md §11) needs
// home *send* order to equal home *processing* order across every component
// resident on the home node. The DSM directory (of this home) shares the
// home->node FIFO channels; if a wait handoff lingered for service_cycles_
// while the directory released the write grant that lets the lease owner
// complete its unlock store, the owner's wake could run against a queue
// that does not yet hold the handed-off waiter. The per-endpoint network
// overhead already charges the software cost of these messages.
void FutexService::send_protocol(net::Message msg) {
  network_.send(std::move(msg));
}

void FutexService::send_response(NodeId dst, GuestTid tid, std::int64_t result,
                                 std::uint64_t flow) {
  net::Message msg;
  msg.src = self_;
  msg.dst = dst;
  msg.type = static_cast<std::uint32_t>(SysMsg::kSyscallResp);
  msg.a = static_cast<std::uint64_t>(result);
  msg.b = tid;
  msg.flow = flow;
  send_after_service(std::move(msg));
}

void FutexService::handle_message(const net::Message& msg) {
  // Per-home load counter; only slave-hosted homes tick it so the master's
  // stats are untouched when sharding is off.
  if (stats_ != nullptr && self_ != kMasterNode) {
    stats_->add(home_msgs_counter_);
  }
  switch (static_cast<SysMsg>(msg.type)) {
    case SysMsg::kLeaseReq:
      on_lease_request(msg);
      return;
    case SysMsg::kLeaseReturn:
      on_lease_return(msg);
      return;
    case SysMsg::kSyscallReq:
      break;  // decoded below
    default:
      assert(false && "not a futex-home sys message");
      return;
  }
  assert(msg.data.size() >= 16);
  SyscallRequest req;
  req.src = relayed_requester(msg, msg.c);
  req.tid = static_cast<GuestTid>(msg.b);
  req.num = static_cast<isa::Sys>(msg.a);
  std::memcpy(req.args.data(), msg.data.data(), 16);
  req.payload = std::span<const std::uint8_t>(msg.data).subspan(16);
  req.flow = msg.flow;
  assert(req.num == isa::Sys::kFutex &&
         "only futex syscalls are homed off-master");
  if (stats_ != nullptr) stats_->add("sys.delegated");
  note("sys.service", req.flow, msg.a, req.tid);
  do_futex(req);
}

std::uint32_t FutexService::home_wake(GuestAddr addr, std::uint32_t count) {
  const auto woken = futexes_.wake(addr, count);
  for (const FutexTable::Waiter& waiter : woken) {
    // The deferred response rides the *waiter's* chain: the trace shows
    // wait -> (this wake) -> response as one causal arc.
    note("sys.futex_wake", waiter.flow, addr, waiter.tid);
    send_response(waiter.node, waiter.tid, 0, waiter.flow);
  }
  return static_cast<std::uint32_t>(woken.size());
}

void FutexService::forward_wait(const SyscallRequest& req) {
  const GuestAddr addr = req.args[0];
  net::Message msg;
  msg.src = self_;
  msg.dst = futexes_.lease_owner(addr);
  msg.type = static_cast<std::uint32_t>(SysMsg::kWaitHandoff);
  msg.a = addr;
  msg.b = req.tid;
  msg.c = req.src;
  msg.flow = req.flow;
  if (stats_ != nullptr) stats_->add("sys.lease_handoffs");
  note("sys.lock_handoff", req.flow, addr, req.tid);
  send_protocol(std::move(msg));
}

void FutexService::forward_wake(GuestAddr addr, std::uint32_t count,
                                NodeId requester, GuestTid requester_tid,
                                std::uint64_t flow) {
  net::Message msg;
  msg.src = self_;
  msg.dst = futexes_.lease_owner(addr);
  msg.type = static_cast<std::uint32_t>(SysMsg::kWakeHandoff);
  msg.a = addr;
  msg.b = count;
  const std::uint64_t who =
      requester == kInvalidNode ? kNoWakeResponse : requester;
  msg.c = (who << 32) | requester_tid;
  msg.flow = flow;
  if (stats_ != nullptr) stats_->add("sys.lease_handoffs");
  note("sys.lock_handoff", flow, addr, count);
  send_protocol(std::move(msg));
}

void FutexService::do_futex(const SyscallRequest& req) {
  // A dead requester's op can still arrive (it was in flight, or relayed,
  // when the crash hit). Enqueueing it would eat a wake meant for a live
  // waiter; answering it would be black-holed anyway.
  if (dead_nodes_.count(req.src) != 0) {
    if (stats_ != nullptr) stats_->add("sys.dead_ops_dropped");
    return;
  }
  const GuestAddr addr = req.args[0];
  const std::uint32_t op = req.args[1];
  const FutexTable::LeasePhase phase = futexes_.lease_phase(addr);
  if (op == isa::kFutexWait) {
    if (phase == FutexTable::LeasePhase::kGranted) {
      forward_wait(req);
      return;  // deferred response, now owed by the lease owner
    }
    if (phase == FutexTable::LeasePhase::kRecalling) {
      recall_buffer_[addr].push_back(BufferedFutexOp{
          req.src, req.tid, op, 0, req.flow, /*respond=*/true});
      return;
    }
    // The caller's node already verified *addr == expected while holding a
    // read copy; the protocol orders any racing write (and its wake) after
    // this request, so enqueueing unconditionally cannot lose a wakeup.
    futexes_.wait(addr, FutexTable::Waiter{req.src, req.tid, req.flow});
    if (stats_ != nullptr) stats_->add("sys.futex_waits");
    note("sys.futex_wait", req.flow, addr, futexes_.waiters(addr));
    return;  // deferred response
  }
  if (op == isa::kFutexWake) {
    // The hierarchical path marks wakes fire-and-forget (kFutexAsyncWake):
    // the waker's agent already acknowledged the syscall, nobody awaits
    // the count.
    const bool respond = (req.args[3] & kFutexAsyncWake) == 0;
    if (phase == FutexTable::LeasePhase::kGranted) {
      forward_wake(addr, req.args[2], respond ? req.src : kInvalidNode,
                   req.tid, req.flow);
      return;  // the owner answers the requester directly (if anyone does)
    }
    if (phase == FutexTable::LeasePhase::kRecalling) {
      recall_buffer_[addr].push_back(BufferedFutexOp{
          req.src, req.tid, op, req.args[2], req.flow, respond});
      return;
    }
    const std::uint32_t woken = home_wake(addr, req.args[2]);
    if (stats_ != nullptr) stats_->add("sys.futex_wakes", woken);
    if (respond) send_response(req.src, req.tid, woken, req.flow);
    return;
  }
  send_response(req.src, req.tid, -isa::kEINVAL, req.flow);
}

void FutexService::exit_wake(const SyscallRequest& req, GuestAddr ctid) {
  // The exiting thread never awaits a count, hence no response either way.
  switch (futexes_.lease_phase(ctid)) {
    case FutexTable::LeasePhase::kGranted:
      forward_wake(ctid, UINT32_MAX, kInvalidNode, 0, req.flow);
      break;
    case FutexTable::LeasePhase::kRecalling:
      recall_buffer_[ctid].push_back(BufferedFutexOp{
          req.src, req.tid, isa::kFutexWake, UINT32_MAX, req.flow,
          /*respond=*/false});
      break;
    case FutexTable::LeasePhase::kNone:
      (void)home_wake(ctid, UINT32_MAX);
      break;
  }
}

// ---------------------------------------------------------------------------
// Lease protocol (hierarchical locking, DESIGN.md section 11)
// ---------------------------------------------------------------------------

void FutexService::on_lease_request(const net::Message& msg) {
  const auto addr = static_cast<GuestAddr>(msg.a);
  const NodeId requester = relayed_requester(msg, msg.c);
  if (dead_nodes_.count(requester) != 0) {
    if (stats_ != nullptr) stats_->add("sys.dead_ops_dropped");
    return;  // never grant a lease to a dead node
  }
  switch (futexes_.lease_phase(addr)) {
    case FutexTable::LeasePhase::kNone: {
      const auto queue = futexes_.grant_lease(addr, requester, queue_.now());
      if (stats_ != nullptr) stats_->add("sys.lease_grants");
      note("sys.lease_grant", msg.flow, addr, queue.size());
      net::Message grant;
      grant.src = self_;
      grant.dst = requester;
      grant.type = static_cast<std::uint32_t>(SysMsg::kLeaseGrant);
      grant.a = addr;
      grant.flow = msg.flow;
      FutexTable::pack_waiters(queue, grant.data);
      send_protocol(std::move(grant));
      return;
    }
    case FutexTable::LeasePhase::kGranted: {
      const NodeId owner = futexes_.lease_owner(addr);
      if (owner == requester) return;  // crossed its own grant in flight
      if (queue_.now() - futexes_.lease_granted_at(addr) <
          sys_.lease_min_hold) {
        return;  // too young to recall; the requester retries when still hot
      }
      futexes_.begin_recall(addr, requester);
      pending_lease_flow_[addr] = msg.flow;
      if (stats_ != nullptr) stats_->add("sys.lease_recalls");
      note("sys.lease_recall", msg.flow, addr, owner);
      net::Message recall;
      recall.src = self_;
      recall.dst = owner;
      recall.type = static_cast<std::uint32_t>(SysMsg::kLeaseRecall);
      recall.a = addr;
      recall.flow = msg.flow;
      send_protocol(std::move(recall));
      if (recall_timeout_ > 0 && network_.faults_active()) {
        arm_recall_watchdog(addr, recall_timeout_);
      }
      return;
    }
    case FutexTable::LeasePhase::kRecalling:
      return;  // already moving; the loser re-requests if still interested
  }
}

void FutexService::on_lease_return(const net::Message& msg) {
  const auto addr = static_cast<GuestAddr>(msg.a);
  if (futexes_.lease_phase(addr) != FutexTable::LeasePhase::kRecalling) {
    // Not recalling this address: a stale return (the fault model's
    // watchdog can make the agent and home race). Dropping it is safe —
    // whatever state the return carried was already applied.
    if (stats_ != nullptr) stats_->add("sys.stale_lease_returns");
    return;
  }
  complete_recall(addr, FutexTable::unpack_waiters(msg.data), msg.flow);
}

void FutexService::complete_recall(
    GuestAddr addr, const std::vector<FutexTable::Waiter>& returned,
    std::uint64_t fallback_flow) {
  recall_watchdogs_.erase(addr);
  const NodeId next_owner = futexes_.finish_recall(addr, returned);

  // Replay everything that arrived mid-recall, in arrival order, against
  // the home-owned queue (returned waiters were spliced to its front).
  replay_buffered(addr);

  // Hand the lease (and whatever the queue now holds) to the recaller.
  std::uint64_t flow = fallback_flow;
  auto pending = pending_lease_flow_.find(addr);
  if (pending != pending_lease_flow_.end()) {
    flow = pending->second;
    pending_lease_flow_.erase(pending);
  }
  if (dead_nodes_.count(next_owner) != 0) {
    // The requester died while its recall was in flight: the queue stays
    // home-owned and survivors re-request if the address is still hot.
    if (stats_ != nullptr) stats_->add("sys.dead_grants_skipped");
    return;
  }
  const auto queue = futexes_.grant_lease(addr, next_owner, queue_.now());
  if (stats_ != nullptr) stats_->add("sys.lease_grants");
  note("sys.lease_grant", flow, addr, queue.size());
  net::Message grant;
  grant.src = self_;
  grant.dst = next_owner;
  grant.type = static_cast<std::uint32_t>(SysMsg::kLeaseGrant);
  grant.a = addr;
  grant.flow = flow;
  FutexTable::pack_waiters(queue, grant.data);
  send_protocol(std::move(grant));
}

void FutexService::arm_recall_watchdog(GuestAddr addr, DurationPs timeout) {
  RecallWatchdog& wd = recall_watchdogs_[addr];
  if (wd.timer == nullptr) wd.timer = std::make_unique<sim::Timer>(queue_);
  wd.timeout = timeout;
  wd.timer->arm(timeout, [this, addr] { on_recall_timeout(addr); });
}

void FutexService::on_recall_timeout(GuestAddr addr) {
  if (futexes_.lease_phase(addr) != FutexTable::LeasePhase::kRecalling) {
    recall_watchdogs_.erase(addr);  // lease came home since the arm
    return;
  }
  const NodeId owner = futexes_.lease_owner(addr);
  std::uint64_t flow = 0;
  auto pending = pending_lease_flow_.find(addr);
  if (pending != pending_lease_flow_.end()) flow = pending->second;
  if (stats_ != nullptr) stats_->add("sys.recall_timeouts");
  note("sys.recall_timeout", flow, addr, owner);
  // Re-send the recall. The agent ignores a recall for a lease it already
  // returned, so a crossed-in-flight return stays harmless.
  net::Message recall;
  recall.src = self_;
  recall.dst = owner;
  recall.type = static_cast<std::uint32_t>(SysMsg::kLeaseRecall);
  recall.a = addr;
  recall.flow = flow;
  send_protocol(std::move(recall));
  const DurationPs next = std::min<DurationPs>(
      recall_watchdogs_[addr].timeout * 2, recall_timeout_ * 8);
  arm_recall_watchdog(addr, next);
}

// ---------------------------------------------------------------------------
// Whole-node fault plane (DESIGN.md §18)
// ---------------------------------------------------------------------------

void FutexService::replay_buffered(GuestAddr addr) {
  auto buffered = recall_buffer_.find(addr);
  if (buffered == recall_buffer_.end()) return;
  for (const BufferedFutexOp& op : buffered->second) {
    if (op.op == isa::kFutexWait) {
      futexes_.wait(addr, FutexTable::Waiter{op.src, op.tid, op.flow});
      if (stats_ != nullptr) stats_->add("sys.futex_waits");
    } else {
      const std::uint32_t woken = home_wake(addr, op.count);
      if (op.respond) {
        if (stats_ != nullptr) stats_->add("sys.futex_wakes", woken);
        send_response(op.src, op.tid, woken, op.flow);
      }
    }
  }
  recall_buffer_.erase(buffered);
}

void FutexService::on_crash_lease_return(
    NodeId src, GuestAddr addr,
    const std::vector<FutexTable::Waiter>& returned) {
  switch (futexes_.lease_phase(addr)) {
    case FutexTable::LeasePhase::kGranted:
      if (futexes_.lease_owner(addr) != src) break;  // stale
      // A dying owner's unsolicited return: revoke the lease wholesale.
      // The dead node's own waiters in the queue are swept when the
      // kNodeDead notice lands (it trails this by one hop).
      futexes_.revoke_lease(addr, returned);
      if (stats_ != nullptr) stats_->add("sys.leases_revoked");
      note("sys.lease_revoked", 0, addr, returned.size());
      return;
    case FutexTable::LeasePhase::kRecalling:
      if (futexes_.lease_owner(addr) != src) break;  // stale
      // The return the recall was waiting for — the original was lost with
      // a crash (either the owner died, or the home it was sent to did and
      // this is the agent's replay to the adopting master).
      complete_recall(addr, returned, 0);
      return;
    case FutexTable::LeasePhase::kNone:
      break;  // stale: the original return made it before the crash
  }
  if (stats_ != nullptr) stats_->add("sys.stale_lease_returns");
}

void FutexService::crash_revoke_local(
    GuestAddr addr, const std::vector<FutexTable::Waiter>& returned) {
  // Stale-safe like on_crash_lease_return: a replayed return whose lease
  // already came home (and may since belong to someone else) is a no-op.
  if (futexes_.lease_phase(addr) == FutexTable::LeasePhase::kNone ||
      futexes_.lease_owner(addr) != self_) {
    if (stats_ != nullptr) stats_->add("sys.stale_lease_returns");
    return;
  }
  recall_watchdogs_.erase(addr);
  pending_lease_flow_.erase(addr);
  futexes_.force_revoke(addr, returned);
  if (stats_ != nullptr) stats_->add("sys.leases_revoked");
  // Buffered mid-recall ops stay in recall_buffer_ on purpose: they ride
  // the handoff and the master replays them at adoption.
}

void FutexService::on_node_dead(NodeId dead) {
  dead_nodes_.insert(dead);
  const std::size_t dropped = futexes_.drop_node(dead);
  if (dropped != 0 && stats_ != nullptr) {
    stats_->add("sys.dead_waiters_dropped", dropped);
  }
  // Drop the dead node's buffered ops: a buffered wait would eat a wake, a
  // buffered wake's response would be black-holed.
  for (auto it = recall_buffer_.begin(); it != recall_buffer_.end();) {
    auto& ops = it->second;
    ops.erase(std::remove_if(ops.begin(), ops.end(),
                             [dead](const BufferedFutexOp& op) {
                               return op.src == dead;
                             }),
              ops.end());
    it = ops.empty() ? recall_buffer_.erase(it) : std::next(it);
  }
  // Lease sweep, in sorted address order. These are fallbacks: the dying
  // node's last gasp (one hop) normally beat this notice (two hops), so
  // finding a lease still pinned on the dead node means its crash return
  // was never sent (e.g. the give-up detector declared it dead).
  for (const GuestAddr addr : futexes_.lease_addrs()) {
    if (futexes_.lease_owner(addr) != dead) continue;
    switch (futexes_.lease_phase(addr)) {
      case FutexTable::LeasePhase::kGranted:
        futexes_.revoke_lease(addr, {});
        if (stats_ != nullptr) stats_->add("sys.leases_revoked");
        note("sys.lease_revoked", 0, addr, 0);
        break;
      case FutexTable::LeasePhase::kRecalling:
        complete_recall(addr, {}, 0);
        break;
      case FutexTable::LeasePhase::kNone:
        break;
    }
  }
}

namespace {
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t at = out.size();
  out.resize(at + 8);
  std::memcpy(out.data() + at, &v, 8);
}
std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t& at) {
  std::uint32_t v = 0;
  assert(at + 4 <= data.size());
  std::memcpy(&v, data.data() + at, 4);
  at += 4;
  return v;
}
std::uint64_t get_u64(std::span<const std::uint8_t> data, std::size_t& at) {
  std::uint64_t v = 0;
  assert(at + 8 <= data.size());
  std::memcpy(&v, data.data() + at, 8);
  at += 8;
  return v;
}
}  // namespace

void FutexService::serialize_for_handoff(std::vector<std::uint8_t>& out) {
  cancel_watchdogs();  // nothing may fire into a dead node's state
  std::vector<std::uint8_t> table;
  futexes_.serialize(table);
  put_u64(out, table.size());
  out.insert(out.end(), table.begin(), table.end());
  // Recall buffers, sorted by address; ops keep their arrival order.
  std::vector<GuestAddr> addrs;
  addrs.reserve(recall_buffer_.size());
  for (const auto& [addr, ops] : recall_buffer_) addrs.push_back(addr);
  std::sort(addrs.begin(), addrs.end());
  put_u64(out, addrs.size());
  for (const GuestAddr addr : addrs) {
    const auto& ops = recall_buffer_.at(addr);
    put_u64(out, addr);
    put_u64(out, ops.size());
    for (const BufferedFutexOp& op : ops) {
      put_u32(out, op.src);
      put_u32(out, op.tid);
      put_u32(out, op.op);
      put_u32(out, op.count);
      put_u64(out, op.flow);
      put_u32(out, op.respond ? 1 : 0);
      put_u32(out, 0);
    }
  }
  // pending_lease_flow_ is trace-only causality; it does not survive the
  // handoff (the adopting master opens fresh chains).
}

void FutexService::adopt_handoff(std::span<const std::uint8_t> data) {
  std::size_t at = 0;
  const std::uint64_t table_len = get_u64(data, at);
  futexes_.merge_from(data.subspan(at, table_len));
  at += table_len;
  const std::uint64_t naddrs = get_u64(data, at);
  std::vector<GuestAddr> adopted;
  for (std::uint64_t i = 0; i < naddrs; ++i) {
    const auto addr = static_cast<GuestAddr>(get_u64(data, at));
    const std::uint64_t nops = get_u64(data, at);
    auto& ops = recall_buffer_[addr];
    for (std::uint64_t j = 0; j < nops; ++j) {
      BufferedFutexOp op;
      op.src = static_cast<NodeId>(get_u32(data, at));
      op.tid = static_cast<GuestTid>(get_u32(data, at));
      op.op = get_u32(data, at);
      op.count = get_u32(data, at);
      op.flow = get_u64(data, at);
      op.respond = get_u32(data, at) != 0;
      get_u32(data, at);  // pad
      ops.push_back(op);
    }
    adopted.push_back(addr);
  }
  assert(at == data.size());
  (void)at;
  // Addresses whose lease the dying node revoked locally before the
  // handoff are home-owned now: replay their buffered ops immediately.
  for (const GuestAddr addr : adopted) {
    if (futexes_.lease_phase(addr) == FutexTable::LeasePhase::kNone) {
      replay_buffered(addr);
    }
  }
  // Adopted in-flight recalls lost their watchdog with the dead home;
  // re-arm so a recall (or return) lost on the wire is re-driven from
  // here. The owner's own kNodeDead replay usually completes it first.
  if (recall_timeout_ > 0 && network_.faults_active()) {
    for (const GuestAddr addr : futexes_.lease_addrs()) {
      if (futexes_.lease_phase(addr) == FutexTable::LeasePhase::kRecalling &&
          recall_watchdogs_.find(addr) == recall_watchdogs_.end()) {
        arm_recall_watchdog(addr, recall_timeout_);
      }
    }
  }
  if (stats_ != nullptr) stats_->add("sys.futex_handoffs_adopted");
}

}  // namespace dqemu::sys
