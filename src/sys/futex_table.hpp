// Distributed futex wait-queue table (paper section 4.4).
//
// Lives on the master. FUTEX_WAIT enqueues a (node, tid) waiter under the
// guest address; FUTEX_WAKE dequeues up to `count` waiters in FIFO order.
// The value re-check happens on the *waiting node* while it still holds a
// read copy of the futex page; the coherence protocol guarantees any
// subsequent write (and hence any wake) is ordered after the wait request
// on the master, so no wakeup can be lost (see DESIGN.md §7).
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dqemu::sys {

class FutexTable {
 public:
  struct Waiter {
    NodeId node = kInvalidNode;
    GuestTid tid = kInvalidTid;
    /// Causal chain of the FUTEX_WAIT delegation; carried so the deferred
    /// wake response closes the waiter's chain, not the waker's.
    std::uint64_t flow = 0;
    friend bool operator==(const Waiter& a, const Waiter& b) {
      return a.node == b.node && a.tid == b.tid;
    }
  };

  /// Enqueues a waiter blocked on `addr`.
  void wait(GuestAddr addr, Waiter waiter) { queues_[addr].push_back(waiter); }

  /// Dequeues up to `count` waiters of `addr`, FIFO.
  [[nodiscard]] std::vector<Waiter> wake(GuestAddr addr, std::uint32_t count) {
    std::vector<Waiter> woken;
    auto it = queues_.find(addr);
    if (it == queues_.end()) return woken;
    auto& queue = it->second;
    while (!queue.empty() && woken.size() < count) {
      woken.push_back(queue.front());
      queue.pop_front();
    }
    if (queue.empty()) queues_.erase(it);
    return woken;
  }

  [[nodiscard]] std::size_t waiters(GuestAddr addr) const {
    auto it = queues_.find(addr);
    return it == queues_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t total_waiters() const {
    std::size_t n = 0;
    for (const auto& [addr, queue] : queues_) n += queue.size();
    return n;
  }

 private:
  std::unordered_map<GuestAddr, std::deque<Waiter>> queues_;
};

}  // namespace dqemu::sys
