// Distributed futex wait-queue table (paper section 4.4).
//
// Lives on the master. FUTEX_WAIT enqueues a (node, tid) waiter under the
// guest address; FUTEX_WAKE dequeues up to `count` waiters in FIFO order.
// The value re-check happens on the *waiting node* while it still holds a
// read copy of the futex page; the coherence protocol guarantees any
// subsequent write (and hence any wake) is ordered after the wait request
// on the master, so no wakeup can be lost (see DESIGN.md §7).
//
// Hierarchical locking (section 5, DESIGN.md §11) adds a per-address
// *lease*: the master may hand the wait queue of one address to a node's
// lock agent (kGranted), which then services wait/wake for that address
// locally. While a recall is in flight (kRecalling) the master buffers
// delegated ops; when the owner returns its queue, the returned waiters
// are spliced to the FRONT (they were enqueued before anything buffered
// during the recall), the buffer is replayed, and the lease moves on.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dqemu::sys {

class FutexTable {
 public:
  struct Waiter {
    NodeId node = kInvalidNode;
    GuestTid tid = kInvalidTid;
    /// Causal chain of the FUTEX_WAIT delegation; carried so the deferred
    /// wake response closes the waiter's chain, not the waker's.
    std::uint64_t flow = 0;
    friend bool operator==(const Waiter& a, const Waiter& b) {
      return a.node == b.node && a.tid == b.tid;
    }
  };

  /// Where an address's wait queue currently lives.
  enum class LeasePhase {
    kNone,       ///< master-owned: wait/wake served from `queues_`
    kGranted,    ///< a node's lock agent owns the queue
    kRecalling,  ///< recall in flight; delegated ops are buffered by caller
  };

  /// Enqueues a waiter blocked on `addr`.
  void wait(GuestAddr addr, Waiter waiter) { queues_[addr].push_back(waiter); }

  /// Dequeues up to `count` waiters of `addr`, FIFO.
  [[nodiscard]] std::vector<Waiter> wake(GuestAddr addr, std::uint32_t count) {
    std::vector<Waiter> woken;
    auto it = queues_.find(addr);
    if (it == queues_.end()) return woken;
    auto& queue = it->second;
    while (!queue.empty() && woken.size() < count) {
      woken.push_back(queue.front());
      queue.pop_front();
    }
    if (queue.empty()) queues_.erase(it);
    return woken;
  }

  [[nodiscard]] std::size_t waiters(GuestAddr addr) const {
    auto it = queues_.find(addr);
    return it == queues_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t total_waiters() const {
    std::size_t n = 0;
    for (const auto& [addr, queue] : queues_) n += queue.size();
    return n;
  }

  // ---- lease state machine ----------------------------------------------

  [[nodiscard]] LeasePhase lease_phase(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? LeasePhase::kNone : it->second.phase;
  }

  /// Owner while kGranted, or the owner being recalled while kRecalling.
  [[nodiscard]] NodeId lease_owner(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? kInvalidNode : it->second.owner;
  }

  [[nodiscard]] TimePs lease_granted_at(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? 0 : it->second.granted_at;
  }

  /// Node waiting for the lease currently being recalled (kRecalling only).
  [[nodiscard]] NodeId lease_pending_requester(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? kInvalidNode : it->second.pending_requester;
  }

  /// Grants `addr`'s lease to `owner`, detaching the master's wait queue
  /// (FIFO order preserved) so it can travel in the kLeaseGrant message.
  [[nodiscard]] std::vector<Waiter> grant_lease(GuestAddr addr, NodeId owner,
                                                TimePs now) {
    assert(lease_phase(addr) == LeasePhase::kNone);
    leases_[addr] = LeaseInfo{owner, LeasePhase::kGranted, kInvalidNode, now};
    std::vector<Waiter> queue;
    auto it = queues_.find(addr);
    if (it != queues_.end()) {
      queue.assign(it->second.begin(), it->second.end());
      queues_.erase(it);
    }
    return queue;
  }

  /// Marks `addr` as being recalled on behalf of `requester`.
  void begin_recall(GuestAddr addr, NodeId requester) {
    auto it = leases_.find(addr);
    assert(it != leases_.end() && it->second.phase == LeasePhase::kGranted);
    it->second.phase = LeasePhase::kRecalling;
    it->second.pending_requester = requester;
  }

  /// Completes a recall: the owner's `returned` queue (its waiters were
  /// enqueued before anything the master buffered during the recall) is
  /// spliced to the front of the master queue. Returns the node that asked
  /// for the recall so the caller can grant it the lease next.
  [[nodiscard]] NodeId finish_recall(GuestAddr addr,
                                     const std::vector<Waiter>& returned) {
    auto it = leases_.find(addr);
    assert(it != leases_.end() && it->second.phase == LeasePhase::kRecalling);
    const NodeId requester = it->second.pending_requester;
    leases_.erase(it);
    if (!returned.empty()) {
      auto& queue = queues_[addr];
      queue.insert(queue.begin(), returned.begin(), returned.end());
    }
    return requester;
  }

  [[nodiscard]] std::size_t leases_out() const { return leases_.size(); }

  // ---- crash recovery / handoff (DESIGN.md §18) --------------------------

  /// Crash revocation: a dying owner returns `addr`'s queue while the lease
  /// is still kGranted (no recall in flight). The returned waiters are the
  /// owner's whole local queue for the address — everything that existed
  /// before the crash — so they become the master queue wholesale.
  void revoke_lease(GuestAddr addr, const std::vector<Waiter>& returned) {
    auto it = leases_.find(addr);
    assert(it != leases_.end() && it->second.phase == LeasePhase::kGranted);
    leases_.erase(it);
    if (!returned.empty()) {
      auto& queue = queues_[addr];
      queue.insert(queue.begin(), returned.begin(), returned.end());
    }
  }

  /// Unconditional crash revocation, used on the dying node's own home for
  /// self-homed leases (no phase assertion: the agent and home halves can
  /// be in any phase when the node dies): drops any lease record and
  /// splices the returned queue to the front.
  void force_revoke(GuestAddr addr, const std::vector<Waiter>& returned) {
    leases_.erase(addr);
    if (!returned.empty()) {
      auto& queue = queues_[addr];
      queue.insert(queue.begin(), returned.begin(), returned.end());
    }
  }

  /// Addresses with an outstanding lease record, in sorted order (crash
  /// sweeps need a deterministic iteration order).
  [[nodiscard]] std::vector<GuestAddr> lease_addrs() const {
    std::vector<GuestAddr> addrs;
    addrs.reserve(leases_.size());
    for (const auto& [addr, lease] : leases_) addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    return addrs;
  }

  /// Dead-node sweep: drops every waiter from `dead` out of every queue.
  /// A dead node's threads re-issue their waits from wherever they re-home;
  /// the stale entries would otherwise eat wakes meant for live waiters.
  /// Lease records are swept by the owning service, which runs the recall
  /// protocol. Returns the number of waiters dropped.
  std::size_t drop_node(NodeId dead) {
    std::size_t dropped = 0;
    for (auto it = queues_.begin(); it != queues_.end();) {
      auto& queue = it->second;
      for (auto w = queue.begin(); w != queue.end();) {
        if (w->node == dead) {
          w = queue.erase(w);
          ++dropped;
        } else {
          ++w;
        }
      }
      it = queue.empty() ? queues_.erase(it) : std::next(it);
    }
    return dropped;
  }

  /// Deterministic whole-table serialization (addresses in sorted order,
  /// little-endian fields) for the crash handoff (kFutexHandoff) and the
  /// checkpoint digest. Layout: u64 queue count, then per queue {u64 addr,
  /// u64 n, n packed waiters}; u64 lease count, then per lease {u64 addr,
  /// u32 owner, u32 phase, u32 pending_requester, u32 pad, u64 granted_at}.
  void serialize(std::vector<std::uint8_t>& out) const {
    auto put32 = [&out](std::uint32_t v) {
      const std::size_t at = out.size();
      out.resize(at + 4);
      std::memcpy(out.data() + at, &v, 4);
    };
    auto put64 = [&out](std::uint64_t v) {
      const std::size_t at = out.size();
      out.resize(at + 8);
      std::memcpy(out.data() + at, &v, 8);
    };
    std::vector<GuestAddr> addrs;
    addrs.reserve(queues_.size());
    for (const auto& [addr, queue] : queues_) addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    put64(addrs.size());
    for (const GuestAddr addr : addrs) {
      const auto& queue = queues_.at(addr);
      put64(addr);
      put64(queue.size());
      for (const Waiter& w : queue) {
        put32(w.node);
        put32(w.tid);
        put64(w.flow);
      }
    }
    addrs.clear();
    for (const auto& [addr, lease] : leases_) addrs.push_back(addr);
    std::sort(addrs.begin(), addrs.end());
    put64(addrs.size());
    for (const GuestAddr addr : addrs) {
      const LeaseInfo& lease = leases_.at(addr);
      put64(addr);
      put32(lease.owner);
      put32(static_cast<std::uint32_t>(lease.phase));
      put32(lease.pending_requester);
      put32(0);
      put64(lease.granted_at);
    }
  }

  /// Installs a serialized table into this one (crash handoff adoption).
  /// The handed-off addresses were homed at the dead node, so this table
  /// has no state for them; queues are appended if one somehow exists.
  void merge_from(std::span<const std::uint8_t> data) {
    std::size_t at = 0;
    auto get32 = [&data, &at]() {
      std::uint32_t v = 0;
      assert(at + 4 <= data.size());
      std::memcpy(&v, data.data() + at, 4);
      at += 4;
      return v;
    };
    auto get64 = [&data, &at]() {
      std::uint64_t v = 0;
      assert(at + 8 <= data.size());
      std::memcpy(&v, data.data() + at, 8);
      at += 8;
      return v;
    };
    const std::uint64_t nqueues = get64();
    for (std::uint64_t i = 0; i < nqueues; ++i) {
      const auto addr = static_cast<GuestAddr>(get64());
      const std::uint64_t n = get64();
      auto& queue = queues_[addr];
      for (std::uint64_t j = 0; j < n; ++j) {
        Waiter w;
        w.node = static_cast<NodeId>(get32());
        w.tid = get32();
        w.flow = get64();
        queue.push_back(w);
      }
      if (queue.empty()) queues_.erase(addr);
    }
    const std::uint64_t nleases = get64();
    for (std::uint64_t i = 0; i < nleases; ++i) {
      const auto addr = static_cast<GuestAddr>(get64());
      LeaseInfo lease;
      lease.owner = static_cast<NodeId>(get32());
      lease.phase = static_cast<LeasePhase>(get32());
      lease.pending_requester = static_cast<NodeId>(get32());
      get32();  // pad
      lease.granted_at = get64();
      leases_[addr] = lease;
    }
    assert(at == data.size());
  }

  // ---- wire packing ------------------------------------------------------

  /// 16 bytes per waiter: u32 node, u32 tid, u64 flow (little-endian).
  static constexpr std::size_t kWaiterWireBytes = 16;

  static void pack_waiters(const std::vector<Waiter>& waiters,
                           std::vector<std::uint8_t>& out) {
    out.resize(waiters.size() * kWaiterWireBytes);
    std::uint8_t* p = out.data();
    for (const Waiter& w : waiters) {
      const std::uint32_t node = w.node;
      const std::uint32_t tid = w.tid;
      std::memcpy(p, &node, 4);
      std::memcpy(p + 4, &tid, 4);
      std::memcpy(p + 8, &w.flow, 8);
      p += kWaiterWireBytes;
    }
  }

  [[nodiscard]] static std::vector<Waiter> unpack_waiters(
      std::span<const std::uint8_t> data) {
    assert(data.size() % kWaiterWireBytes == 0);
    std::vector<Waiter> waiters(data.size() / kWaiterWireBytes);
    const std::uint8_t* p = data.data();
    for (Waiter& w : waiters) {
      std::uint32_t node = 0, tid = 0;
      std::memcpy(&node, p, 4);
      std::memcpy(&tid, p + 4, 4);
      std::memcpy(&w.flow, p + 8, 8);
      w.node = static_cast<NodeId>(node);
      w.tid = tid;
      p += kWaiterWireBytes;
    }
    return waiters;
  }

 private:
  struct LeaseInfo {
    NodeId owner = kInvalidNode;
    LeasePhase phase = LeasePhase::kNone;
    NodeId pending_requester = kInvalidNode;
    TimePs granted_at = 0;
  };

  std::unordered_map<GuestAddr, std::deque<Waiter>> queues_;
  std::unordered_map<GuestAddr, LeaseInfo> leases_;
};

}  // namespace dqemu::sys
