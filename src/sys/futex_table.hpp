// Distributed futex wait-queue table (paper section 4.4).
//
// Lives on the master. FUTEX_WAIT enqueues a (node, tid) waiter under the
// guest address; FUTEX_WAKE dequeues up to `count` waiters in FIFO order.
// The value re-check happens on the *waiting node* while it still holds a
// read copy of the futex page; the coherence protocol guarantees any
// subsequent write (and hence any wake) is ordered after the wait request
// on the master, so no wakeup can be lost (see DESIGN.md §7).
//
// Hierarchical locking (section 5, DESIGN.md §11) adds a per-address
// *lease*: the master may hand the wait queue of one address to a node's
// lock agent (kGranted), which then services wait/wake for that address
// locally. While a recall is in flight (kRecalling) the master buffers
// delegated ops; when the owner returns its queue, the returned waiters
// are spliced to the FRONT (they were enqueued before anything buffered
// during the recall), the buffer is replayed, and the lease moves on.
#pragma once

#include <cassert>
#include <cstring>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dqemu::sys {

class FutexTable {
 public:
  struct Waiter {
    NodeId node = kInvalidNode;
    GuestTid tid = kInvalidTid;
    /// Causal chain of the FUTEX_WAIT delegation; carried so the deferred
    /// wake response closes the waiter's chain, not the waker's.
    std::uint64_t flow = 0;
    friend bool operator==(const Waiter& a, const Waiter& b) {
      return a.node == b.node && a.tid == b.tid;
    }
  };

  /// Where an address's wait queue currently lives.
  enum class LeasePhase {
    kNone,       ///< master-owned: wait/wake served from `queues_`
    kGranted,    ///< a node's lock agent owns the queue
    kRecalling,  ///< recall in flight; delegated ops are buffered by caller
  };

  /// Enqueues a waiter blocked on `addr`.
  void wait(GuestAddr addr, Waiter waiter) { queues_[addr].push_back(waiter); }

  /// Dequeues up to `count` waiters of `addr`, FIFO.
  [[nodiscard]] std::vector<Waiter> wake(GuestAddr addr, std::uint32_t count) {
    std::vector<Waiter> woken;
    auto it = queues_.find(addr);
    if (it == queues_.end()) return woken;
    auto& queue = it->second;
    while (!queue.empty() && woken.size() < count) {
      woken.push_back(queue.front());
      queue.pop_front();
    }
    if (queue.empty()) queues_.erase(it);
    return woken;
  }

  [[nodiscard]] std::size_t waiters(GuestAddr addr) const {
    auto it = queues_.find(addr);
    return it == queues_.end() ? 0 : it->second.size();
  }

  [[nodiscard]] std::size_t total_waiters() const {
    std::size_t n = 0;
    for (const auto& [addr, queue] : queues_) n += queue.size();
    return n;
  }

  // ---- lease state machine ----------------------------------------------

  [[nodiscard]] LeasePhase lease_phase(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? LeasePhase::kNone : it->second.phase;
  }

  /// Owner while kGranted, or the owner being recalled while kRecalling.
  [[nodiscard]] NodeId lease_owner(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? kInvalidNode : it->second.owner;
  }

  [[nodiscard]] TimePs lease_granted_at(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? 0 : it->second.granted_at;
  }

  /// Node waiting for the lease currently being recalled (kRecalling only).
  [[nodiscard]] NodeId lease_pending_requester(GuestAddr addr) const {
    auto it = leases_.find(addr);
    return it == leases_.end() ? kInvalidNode : it->second.pending_requester;
  }

  /// Grants `addr`'s lease to `owner`, detaching the master's wait queue
  /// (FIFO order preserved) so it can travel in the kLeaseGrant message.
  [[nodiscard]] std::vector<Waiter> grant_lease(GuestAddr addr, NodeId owner,
                                                TimePs now) {
    assert(lease_phase(addr) == LeasePhase::kNone);
    leases_[addr] = LeaseInfo{owner, LeasePhase::kGranted, kInvalidNode, now};
    std::vector<Waiter> queue;
    auto it = queues_.find(addr);
    if (it != queues_.end()) {
      queue.assign(it->second.begin(), it->second.end());
      queues_.erase(it);
    }
    return queue;
  }

  /// Marks `addr` as being recalled on behalf of `requester`.
  void begin_recall(GuestAddr addr, NodeId requester) {
    auto it = leases_.find(addr);
    assert(it != leases_.end() && it->second.phase == LeasePhase::kGranted);
    it->second.phase = LeasePhase::kRecalling;
    it->second.pending_requester = requester;
  }

  /// Completes a recall: the owner's `returned` queue (its waiters were
  /// enqueued before anything the master buffered during the recall) is
  /// spliced to the front of the master queue. Returns the node that asked
  /// for the recall so the caller can grant it the lease next.
  [[nodiscard]] NodeId finish_recall(GuestAddr addr,
                                     const std::vector<Waiter>& returned) {
    auto it = leases_.find(addr);
    assert(it != leases_.end() && it->second.phase == LeasePhase::kRecalling);
    const NodeId requester = it->second.pending_requester;
    leases_.erase(it);
    if (!returned.empty()) {
      auto& queue = queues_[addr];
      queue.insert(queue.begin(), returned.begin(), returned.end());
    }
    return requester;
  }

  [[nodiscard]] std::size_t leases_out() const { return leases_.size(); }

  // ---- wire packing ------------------------------------------------------

  /// 16 bytes per waiter: u32 node, u32 tid, u64 flow (little-endian).
  static constexpr std::size_t kWaiterWireBytes = 16;

  static void pack_waiters(const std::vector<Waiter>& waiters,
                           std::vector<std::uint8_t>& out) {
    out.resize(waiters.size() * kWaiterWireBytes);
    std::uint8_t* p = out.data();
    for (const Waiter& w : waiters) {
      const std::uint32_t node = w.node;
      const std::uint32_t tid = w.tid;
      std::memcpy(p, &node, 4);
      std::memcpy(p + 4, &tid, 4);
      std::memcpy(p + 8, &w.flow, 8);
      p += kWaiterWireBytes;
    }
  }

  [[nodiscard]] static std::vector<Waiter> unpack_waiters(
      std::span<const std::uint8_t> data) {
    assert(data.size() % kWaiterWireBytes == 0);
    std::vector<Waiter> waiters(data.size() / kWaiterWireBytes);
    const std::uint8_t* p = data.data();
    for (Waiter& w : waiters) {
      std::uint32_t node = 0, tid = 0;
      std::memcpy(&node, p, 4);
      std::memcpy(&tid, p + 4, 4);
      std::memcpy(&w.flow, p + 8, 8);
      w.node = static_cast<NodeId>(node);
      w.tid = tid;
      p += kWaiterWireBytes;
    }
    return waiters;
  }

 private:
  struct LeaseInfo {
    NodeId owner = kInvalidNode;
    LeasePhase phase = LeasePhase::kNone;
    NodeId pending_requester = kInvalidNode;
    TimePs granted_at = 0;
  };

  std::unordered_map<GuestAddr, std::deque<Waiter>> queues_;
  std::unordered_map<GuestAddr, LeaseInfo> leases_;
};

}  // namespace dqemu::sys
