// Syscall-delegation wire protocol (paper section 4.3) and the
// hierarchical-locking lease protocol (DESIGN.md section 11).
//
// Global syscalls are trapped on the executing node and forwarded to the
// master, which keeps the authoritative system state (file descriptors,
// futex queues, the heap break). Every kSyscallReq gets exactly one
// kSyscallResp; for FUTEX_WAIT the response is deferred until a matching
// wake, which is how the distributed futex blocks a remote thread.
//
// The 0x21x messages implement two-level locking: the master can grant a
// node an ownership *lease* for one futex address; while the lease is
// out, the owning node's lock agent holds that address's wait queue and
// the master forwards all delegated traffic for the address to it.
#pragma once

#include <cstdint>

namespace dqemu::sys {

enum class SysMsg : std::uint32_t {
  /// Node -> master. a = syscall number, b = guest tid,
  /// data = 4 LE u32 args followed by an optional input payload
  /// (write() bytes, open() path...).
  kSyscallReq = 0x200,
  /// Master -> node. a = result (sign-extended into u64), b = guest tid,
  /// data = optional output payload to copy to the caller's pointer arg.
  kSyscallResp = 0x201,

  // ---- hierarchical locking (lease protocol) ----------------------------

  /// Node -> master: request the ownership lease for futex address `a`.
  kLeaseReq = 0x210,
  /// Master -> node: lease granted for address `a`; data = the address's
  /// current wait queue (packed Waiters, FIFO order) handed off with it.
  kLeaseGrant = 0x211,
  /// Master -> owner: return the lease for address `a`.
  kLeaseRecall = 0x212,
  /// Owner -> master: lease returned for address `a`; data = the owner's
  /// wait queue (packed Waiters, FIFO order, local waiters included).
  kLeaseReturn = 0x213,
  /// Master -> owner: a FUTEX_WAIT delegated by a non-owner node,
  /// forwarded to the lease owner. a = address, b = waiter tid,
  /// c = waiter node; flow = the waiter's causal chain.
  kWaitHandoff = 0x214,
  /// Master -> owner: a FUTEX_WAKE delegated by a non-owner node.
  /// a = address, b = count, c = (requester node << 32) | requester tid;
  /// requester node == kNoWakeResponse means nobody awaits the count
  /// (thread-exit wakes). The owner responds to the requester directly.
  kWakeHandoff = 0x215,
  /// Master or owner -> node: one message waking several parked threads on
  /// the destination node. a = address, b = entry count; data = packed
  /// Waiters (tid + flow per entry). Each tid gets futex result 0.
  kWakeBatch = 0x216,
};

/// Requester-node sentinel in kWakeHandoff: no count response wanted.
inline constexpr std::uint32_t kNoWakeResponse = 0xFFFFFFFFu;

/// FUTEX_WAKE arg[3] flag: fire-and-forget. The waker's lock agent already
/// acknowledged the syscall locally (result 0), so the master must not send
/// a kSyscallResp for it. Only set on the hierarchical-locking path: the
/// guest runtime discards the wake count, and releasing a lock should not
/// stall the releaser for a cluster round trip.
inline constexpr std::uint32_t kFutexAsyncWake = 1;

[[nodiscard]] constexpr bool is_sys_message(std::uint32_t type) {
  return type >= 0x200 && type < 0x300;
}

}  // namespace dqemu::sys
