// Syscall-delegation wire protocol (paper section 4.3).
//
// Global syscalls are trapped on the executing node and forwarded to the
// master, which keeps the authoritative system state (file descriptors,
// futex queues, the heap break). Every kSyscallReq gets exactly one
// kSyscallResp; for FUTEX_WAIT the response is deferred until a matching
// wake, which is how the distributed futex blocks a remote thread.
#pragma once

#include <cstdint>

namespace dqemu::sys {

enum class SysMsg : std::uint32_t {
  /// Node -> master. a = syscall number, b = guest tid,
  /// data = 4 LE u32 args followed by an optional input payload
  /// (write() bytes, open() path...).
  kSyscallReq = 0x200,
  /// Master -> node. a = result (sign-extended into u64), b = guest tid,
  /// data = optional output payload to copy to the caller's pointer arg.
  kSyscallResp = 0x201,
};

[[nodiscard]] constexpr bool is_sys_message(std::uint32_t type) {
  return type >= 0x200 && type < 0x300;
}

}  // namespace dqemu::sys
