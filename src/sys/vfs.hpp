// In-memory virtual filesystem with a process-wide descriptor table.
//
// Stands in for the host filesystem the paper's master node delegates to.
// Files are byte vectors; fds 0/1/2 are pre-opened, with stdout/stderr
// captured into buffers the embedder can read back (tests assert on guest
// output through this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dqemu::sys {

class Vfs {
 public:
  Vfs();

  /// Creates (or replaces) a file with the given content before boot.
  void preload(const std::string& path, std::span<const std::uint8_t> bytes);
  void preload(const std::string& path, std::string_view text);

  /// Content of a file, if it exists (test/report convenience).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> file_content(
      const std::string& path) const;

  /// Everything the guest wrote to fd 1 / fd 2.
  [[nodiscard]] const std::string& stdout_text() const { return stdout_; }
  [[nodiscard]] const std::string& stderr_text() const { return stderr_; }

  // ---- syscall backends (Linux-style: negative errno on failure) -------
  [[nodiscard]] std::int32_t open(const std::string& path, std::uint32_t flags);
  [[nodiscard]] std::int32_t close(std::int32_t fd);
  /// Reads up to out.size() bytes; returns bytes read.
  [[nodiscard]] std::int32_t read(std::int32_t fd, std::span<std::uint8_t> out);
  [[nodiscard]] std::int32_t write(std::int32_t fd,
                                   std::span<const std::uint8_t> in);
  [[nodiscard]] std::int32_t lseek(std::int32_t fd, std::int32_t offset,
                                   std::uint32_t whence);

  [[nodiscard]] std::size_t open_fd_count() const;

 private:
  struct OpenFile {
    std::shared_ptr<std::vector<std::uint8_t>> file;
    std::uint64_t pos = 0;
    bool writable = false;
    bool is_stdout = false;
    bool is_stderr = false;
    bool open = false;
  };

  [[nodiscard]] OpenFile* lookup(std::int32_t fd);

  std::map<std::string, std::shared_ptr<std::vector<std::uint8_t>>> files_;
  std::vector<OpenFile> fds_;
  std::string stdout_;
  std::string stderr_;
};

}  // namespace dqemu::sys
