// Thread-management wire protocol (paper section 4.1).
#pragma once

#include <cstdint>

namespace dqemu::core {

enum class CoreMsg : std::uint32_t {
  /// Master -> node: create a TCG-thread from a cloned CPU context.
  /// a = child tid, b = ctid address (clear-on-exit), c = hint group
  /// (int32 widened), data = serialized CpuContext.
  kCreateThread = 0x300,
  /// Master -> owner node: migrate thread `a` to node `b` at its next
  /// quantum boundary.
  kMigrateReq = 0x301,
  /// Owner -> target node: the migrating thread's state.
  /// a = tid, b = ctid, c = hint group, data = serialized CpuContext.
  kMigrateThread = 0x302,
  /// Target -> master: thread `a` now runs on node `b` (bookkeeping).
  kMigrateDone = 0x303,
};

[[nodiscard]] constexpr bool is_core_message(std::uint32_t type) {
  return type >= 0x300 && type < 0x400;
}

}  // namespace dqemu::core
