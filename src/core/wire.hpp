// Thread-management wire protocol (paper section 4.1).
#pragma once

#include <cstddef>
#include <cstdint>

namespace dqemu::core {

/// Simulation-side payload appended to a serialized CpuContext by thread
/// migration and crash capture: the accumulated per-thread time breakdown
/// (execute / translate / pagefault / syscall / idle).
constexpr std::size_t kBreakdownWireBytes = 5 * sizeof(std::uint64_t);
/// Optional trailer on kMigrateThread / kCrashReport records: a syscall the
/// thread must re-issue on its new node before executing any instruction
/// (num, the four args, block_is_idle).
constexpr std::size_t kPendingSyscallWireBytes = 6 * sizeof(std::uint32_t);

enum class CoreMsg : std::uint32_t {
  /// Master -> node: create a TCG-thread from a cloned CPU context.
  /// a = child tid, b = ctid address (clear-on-exit), c = hint group
  /// (int32 widened), data = serialized CpuContext.
  kCreateThread = 0x300,
  /// Master -> owner node: migrate thread `a` to node `b` at its next
  /// quantum boundary.
  kMigrateReq = 0x301,
  /// Owner -> target node: the migrating thread's state.
  /// a = tid, b = ctid, c = hint group, data = serialized CpuContext.
  kMigrateThread = 0x302,
  /// Target -> master: thread `a` now runs on node `b` (bookkeeping).
  kMigrateDone = 0x303,

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------
  //
  // The 0x31x range is the crash plane: it rides the reliable channel for
  // per-link FIFO ordering but is exempt from fault injection ("reliable by
  // fiat") — losing the recovery protocol to the fault it recovers from
  // would be circular. The injector's per-link counters are not consumed,
  // so every other message's fault fate is unchanged by these.

  /// Master -> node: die now. The node's last gasp (in its own execution
  /// context, so both kernels order it identically): flush dirty pages
  /// home, return held lock leases, hand a hosted home shard to the master,
  /// capture live threads, cancel every timer, go dark.
  kCrashCmd = 0x310,
  /// Dying node -> page home: last writeback of a kReadWrite page.
  /// a = page, data = full page bytes. Applied iff the directory still
  /// records the dying node as owner; dropped otherwise (stale).
  kCrashFlush = 0x311,
  /// Dying node -> master: the crash report, sent last on the link so FIFO
  /// orders it after every flush/handoff. a = crashed node id, b = thread
  /// count; data = captured threads (see Node::crash).
  kCrashReport = 0x312,
  /// Dying home -> master: one directory entry of the handed-off shard.
  /// a = page; data = state/owner/sharers (+ home page bytes when the home
  /// copy is authoritative). The master adopts the page.
  kHomeHandoff = 0x313,
  /// Dying home -> master: the hosted futex/lease table, one message for
  /// the whole shard. data = serialized FutexTable + recall buffers.
  kFutexHandoff = 0x314,
  /// Master -> every surviving node: node `a` is dead. Each receiver sweeps
  /// its own state in its own context: waiter queues, copysets, learned
  /// home routes, reliable-channel links.
  kNodeDead = 0x315,
  /// Dying lease owner -> futex home: return of a held lock lease.
  /// a = futex address, b = waiter count; data = packed waiters (including
  /// the dying node's own, which the home then sweeps as dead). A distinct
  /// type rather than sys::kLeaseReturn because an injector drop of a dying
  /// node's return would strand the queue forever — the retransmit timer
  /// dies with the node.
  ///
  /// The 0x310..0x31F range is classified by net::is_crash_plane()
  /// (net/fault/node_faults.hpp); keep new crash messages inside it.
  kCrashLeaseReturn = 0x316,
};

[[nodiscard]] constexpr bool is_core_message(std::uint32_t type) {
  return type >= 0x300 && type < 0x400;
}

}  // namespace dqemu::core
