// Per-node state of one guest thread (a "TCG-thread" in the paper).
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "dbt/cpu_context.hpp"
#include "dbt/exec.hpp"
#include "isa/syscall_abi.hpp"

namespace dqemu::core {

enum class ThreadState : std::uint8_t {
  kRunnable,       ///< queued for a core
  kRunning,        ///< currently executing a quantum
  kBlockedPage,    ///< waiting for a DSM page grant
  kBlockedSyscall, ///< waiting for a delegated syscall response
  kSleeping,       ///< in nanosleep
  kExited,
};

/// A delegated or multi-step syscall in flight. Page pre-faulting and
/// result commit can each block on the DSM, so the call's progress is
/// tracked explicitly instead of re-executing the SYSCALL instruction.
struct PendingSyscall {
  isa::Sys num = isa::Sys::kExit;
  std::array<std::uint32_t, 4> args{};
  enum class Phase : std::uint8_t {
    kPreFault,  ///< acquiring argument pages
    kAwaitResponse,
    kCommit,    ///< writing the response payload to an OUT pointer
  } phase = Phase::kPreFault;
  /// True when the blocked time is semantically idle (futex wait), not
  /// syscall service — keeps Fig.8's syscall share meaningful.
  bool block_is_idle = false;
  /// Response payload awaiting commit (read() bytes etc.).
  std::vector<std::uint8_t> result_payload;
  std::int64_t result = 0;
  /// Causal chain of the delegation (request -> service -> response).
  std::uint64_t flow = 0;
};

struct GuestThread {
  dbt::CpuContext ctx;
  ThreadState state = ThreadState::kRunnable;
  /// Page this thread is blocked on (kBlockedPage).
  std::uint32_t blocked_page = 0;
  /// clear-on-exit futex address (Linux CLONE_CHILD_CLEARTID semantics).
  GuestAddr ctid = 0;
  /// Placement group assigned at creation (section 5.3); -1 = none.
  std::int32_t hint_group = -1;
  std::optional<PendingSyscall> pending_syscall;
  /// Requested migration target; applied at the next dispatch point.
  NodeId migrate_target = kInvalidNode;

  TimeBreakdown breakdown;
  TimePs block_start = 0;  ///< when the current blocked/idle period began
  TimePs ready_since = 0;  ///< when the thread last became runnable

  /// Stop info of the slice currently in flight (kRunning only). The engine
  /// call is synchronous, so by the time the node is back in the event loop
  /// the context already reflects the whole slice — but the stop reason
  /// lives in the scheduled finish_slice closure, which dies with a crashed
  /// node. Stashing it here lets Node::crash turn an unprocessed kSyscall
  /// stop (pc already past the SYSCALL) into a re-issued PendingSyscall
  /// instead of silently skipping the call (DESIGN.md §18).
  dbt::StopReason inflight_stop = dbt::StopReason::kQuantum;
  std::int32_t inflight_syscall = 0;
};

}  // namespace dqemu::core
