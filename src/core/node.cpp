#include "core/node.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <span>

#include "common/log.hpp"
#include "dsm/directory.hpp"
#include "dsm/wire.hpp"
#include "sys/futex_home.hpp"
#include "sys/wire.hpp"

namespace dqemu::core {
namespace {

using time_literals::kNs;
using time_literals::kSec;

/// Extra simulation-side payload carried by a migration message after the
/// serialized CPU context: the thread's accumulated time breakdown.
constexpr std::size_t kBreakdownBytes = kBreakdownWireBytes;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t at = out.size();
  out.resize(at + 4);
  std::memcpy(out.data() + at, &v, 4);
}

std::uint32_t get_u32(std::span<const std::uint8_t>& in) {
  std::uint32_t v = 0;
  std::memcpy(&v, in.data(), 4);
  in = in.subspan(4);
  return v;
}

}  // namespace

Node::Node(NodeId id, const ClusterConfig& config, sim::EventQueue& queue,
           net::Network& network, StatsRegistry* stats, Hooks hooks,
           trace::Tracer* tracer)
    : id_(id),
      config_(config),
      machine_(config.machine_for(id)),
      queue_(queue),
      network_(network),
      stats_(stats),
      hooks_(std::move(hooks)),
      tracer_(tracer),
      space_(config.guest_mem_bytes, config.machine.page_size),
      shadow_(config.machine.page_size, config.dsm.split_shards),
      llsc_(stats),
      tcache_(space_, config.dbt, /*check_protection=*/!config.single_node_baseline,
              stats),
      engine_(space_, &shadow_, llsc_, tcache_, config.dbt,
              /*check_protection=*/!config.single_node_baseline, stats),
      homes_(config.dsm, dsm::home_layout(config)),
      dsm_(id, network, space_, shadow_, &llsc_, &tcache_, stats,
           [this](std::uint32_t page) { wake_page_waiters(page); }, tracer,
           config.dsm.enable_diff_transfers, config.faults.request_timeout,
           &homes_),
      lock_agent_(id, config.sys, queue, network, stats, tracer,
                  [this](GuestTid tid, std::uint64_t flow) {
                    on_local_futex_wake(tid, flow);
                  }),
      core_busy_(machine_.cores_per_node, false) {
  lock_agent_.set_home_resolver(
      [this](GuestAddr addr) { return futex_home(addr); });
  // Superblock lifecycle records ride the opt-in kDbt category (not in the
  // default set: formation is host-side and would differ with the trace
  // tier compiled out). a = trace entry pc, b = guest insns covered.
  tcache_.set_sb_event_hook(
      [this](dbt::SbEvent event, const dbt::Superblock& sb) {
        note(event == dbt::SbEvent::kFormed ? "dbt.sb_formed"
                                            : "dbt.sb_invalidated",
             trace::Cat::kDbt, trace::Kind::kInstant, 0, 0, sb.entry_pc,
             sb.guest_insns);
      });
}

void Node::note(const char* name, trace::Cat cat, trace::Kind kind,
                GuestTid tid, std::uint64_t flow, std::uint64_t a,
                std::uint64_t b) {
  if (!trace::wants(tracer_, cat)) return;
  trace::Record r;
  r.time = queue_.now();
  r.name = name;
  r.kind = kind;
  r.cat = cat;
  r.node = id_;
  r.track = trace::kTrackNode;
  r.tid = tid;
  r.flow = flow;
  r.a = a;
  r.b = b;
  tracer_->record(r);
}

void Node::add_thread(const dbt::CpuContext& ctx, GuestAddr ctid,
                      std::int32_t hint_group) {
  assert(!threads_.contains(ctx.tid));
  GuestThread thread;
  thread.ctx = ctx;
  thread.ctid = ctid;
  thread.hint_group = hint_group;
  thread.ready_since = queue_.now();
  threads_.emplace(ctx.tid, std::move(thread));
  if (stats_ != nullptr) stats_->add("core.threads_created");
  note("core.thread_start", trace::Cat::kCore, trace::Kind::kInstant, ctx.tid,
       0, ctx.pc, static_cast<std::uint64_t>(
              static_cast<std::uint32_t>(hint_group)));
  enqueue(ctx.tid);
  kick();
}

std::size_t Node::live_threads() const {
  std::size_t n = 0;
  for (const auto& [tid, t] : threads_) {
    if (t.state != ThreadState::kExited) ++n;
  }
  return n;
}

std::size_t Node::active_threads() const {
  std::size_t n = 0;
  for (const auto& [tid, t] : threads_) {
    if (t.state == ThreadState::kRunnable || t.state == ThreadState::kRunning)
      ++n;
  }
  return n;
}

std::string Node::blocked_dump() const {
  std::string out;
  for (const auto& [tid, t] : threads_) {
    if (t.state == ThreadState::kExited) continue;
    char buf[128];
    const char* state = "?";
    switch (t.state) {
      case ThreadState::kRunnable: state = "runnable"; break;
      case ThreadState::kRunning: state = "running"; break;
      case ThreadState::kBlockedPage: state = "page"; break;
      case ThreadState::kBlockedSyscall: state = "syscall"; break;
      case ThreadState::kSleeping: state = "sleeping"; break;
      case ThreadState::kExited: state = "exited"; break;
    }
    std::snprintf(buf, sizeof buf,
                  "  node %u tid %u: %s (pc=0x%08x page=%u)\n", unsigned(id_),
                  tid, state, t.ctx.pc, t.blocked_page);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Core scheduling
// ---------------------------------------------------------------------------

void Node::enqueue(GuestTid tid) {
  GuestThread& t = threads_.at(tid);
  t.state = ThreadState::kRunnable;
  t.ready_since = queue_.now();
  run_queue_.push_back(tid);
}

void Node::kick() {
  if (dead_ || paused_) return;
  while (!run_queue_.empty()) {
    // Find an idle core.
    CoreId core = kInvalidNode;
    for (CoreId c = 0; c < core_busy_.size(); ++c) {
      if (!core_busy_[c]) {
        core = c;
        break;
      }
    }
    if (core == kInvalidNode) return;

    const GuestTid tid = run_queue_.front();
    run_queue_.pop_front();
    GuestThread& t = threads_.at(tid);
    assert(t.state == ThreadState::kRunnable);
    if (t.migrate_target != kInvalidNode) {
      send_migration(tid);
      continue;  // did not consume the core
    }
    core_busy_[core] = true;
    core_run(core, tid);
  }
}

void Node::core_run(CoreId core, GuestTid tid) {
  GuestThread& t = threads_.at(tid);
  t.breakdown.idle += queue_.now() - t.ready_since;
  t.state = ThreadState::kRunning;

  // One lane per simulated core: the slice span covers this quantum's
  // virtual duration; the matching end is recorded in finish_slice.
  if (trace::wants(tracer_, trace::Cat::kSim)) {
    trace::Record rec;
    rec.time = queue_.now();
    rec.name = "sim.slice";
    rec.kind = trace::Kind::kSpanBegin;
    rec.cat = trace::Cat::kSim;
    rec.node = id_;
    rec.track = static_cast<std::uint16_t>(trace::kTrackCoreBase + core);
    rec.tid = tid;
    rec.a = t.ctx.pc;
    tracer_->record(rec);
  }

  const dbt::ExecResult r = engine_.run(t.ctx, config_.dbt.quantum_insns);
  t.inflight_stop = r.reason;
  t.inflight_syscall = r.syscall_num;

  const DurationPs dt_exec = machine_.cycles(r.exec_cycles);
  const DurationPs dt_translate = machine_.cycles(r.translate_cycles);
  t.breakdown.execute += dt_exec;
  t.breakdown.translate += dt_translate;
  if (stats_ != nullptr) {
    stats_->add("dbt.insns", r.insns);
    stats_->add("core.slices");
  }

  queue_.schedule_in(dt_exec + dt_translate, [this, core, tid, r] {
    finish_slice(core, tid, r);
  });
}

void Node::release_core_after(CoreId core, DurationPs delay) {
  if (delay == 0) {
    core_busy_[core] = false;
    kick();
    return;
  }
  queue_.schedule_in(delay, [this, core] {
    if (dead_) return;
    core_busy_[core] = false;
    kick();
  });
}

void Node::finish_slice(CoreId core, GuestTid tid, const dbt::ExecResult& r) {
  // A crash between the slice's start and this event captured the thread
  // (or dropped it) already; the closure outlived the node.
  if (dead_) return;
  GuestThread& t = threads_.at(tid);
  if (trace::wants(tracer_, trace::Cat::kSim)) {
    trace::Record rec;
    rec.time = queue_.now();
    rec.name = "sim.slice";
    rec.kind = trace::Kind::kSpanEnd;
    rec.cat = trace::Cat::kSim;
    rec.node = id_;
    rec.track = static_cast<std::uint16_t>(trace::kTrackCoreBase + core);
    rec.tid = tid;
    rec.a = r.insns;
    rec.b = static_cast<std::uint64_t>(r.reason);
    tracer_->record(rec);
  }
  switch (r.reason) {
    case dbt::StopReason::kQuantum:
      enqueue(tid);
      release_core_after(core, 0);
      return;

    case dbt::StopReason::kPageFault: {
      const DurationPs trap = machine_.cycles(config_.dbt.fault_trap_cycles);
      t.breakdown.pagefault += trap;
      if (stats_ != nullptr) stats_->add("core.page_faults");
      note("core.page_fault", trace::Cat::kCore, trace::Kind::kInstant, tid, 0,
           r.fault_addr, r.fault_is_write ? 1 : 0);
      block_on_page(t, r.fault_addr, r.fault_is_write);
      release_core_after(core, trap);
      return;
    }

    case dbt::StopReason::kSyscall: {
      const DurationPs trap =
          machine_.cycles(config_.dbt.syscall_trap_cycles);
      t.breakdown.syscall += trap;
      if (stats_ != nullptr) stats_->add("core.syscalls");
      note("core.syscall", trace::Cat::kCore, trace::Kind::kInstant, tid, 0,
           static_cast<std::uint32_t>(r.syscall_num), 0);
      PendingSyscall call;
      call.num = static_cast<isa::Sys>(r.syscall_num);
      for (unsigned i = 0; i < 4; ++i) call.args[i] = t.ctx.arg(i);
      t.pending_syscall = call;
      attempt_syscall(tid);
      release_core_after(core, trap);
      return;
    }

    case dbt::StopReason::kGuestError:
      core_busy_[core] = false;
      if (hooks_.fatal) {
        hooks_.fatal("guest error on node " + std::to_string(id_) + " tid " +
                     std::to_string(tid) + ": " + r.error);
      }
      return;
  }
}

// ---------------------------------------------------------------------------
// Page faults
// ---------------------------------------------------------------------------

void Node::block_on_page(GuestThread& t, GuestAddr fault_addr, bool write) {
  const std::uint32_t page = space_.page_of(fault_addr);
  // The page may have arrived while the faulting slice was "in flight"
  // (its wall time elapsing); re-check before blocking.
  const mem::PageAccess access = space_.access(page);
  const bool satisfied = write ? access == mem::PageAccess::kReadWrite
                               : access != mem::PageAccess::kNone;
  if (satisfied) {
    enqueue(t.ctx.tid);
    return;
  }
  t.state = ThreadState::kBlockedPage;
  t.blocked_page = page;
  t.block_start = queue_.now();
  dsm_.request_page(page, space_.offset_in_page(fault_addr), write, t.ctx.tid);
}

void Node::wake_page_waiters(std::uint32_t page) {
  bool any = false;
  for (auto& [tid, t] : threads_) {
    if (t.state != ThreadState::kBlockedPage || t.blocked_page != page)
      continue;
    t.breakdown.pagefault += queue_.now() - t.block_start;
    any = true;
    if (t.pending_syscall.has_value()) {
      // The fault belonged to syscall argument pre-faulting / commit.
      t.state = ThreadState::kRunnable;  // attempt may re-block immediately
      attempt_syscall(tid);
    } else {
      enqueue(tid);
    }
  }
  if (any) kick();
}

// ---------------------------------------------------------------------------
// Guest memory block access (shadow-map aware)
// ---------------------------------------------------------------------------

void Node::for_each_chunk(
    GuestAddr addr, std::uint32_t len,
    const std::function<void(GuestAddr, std::uint32_t)>& fn) const {
  // Chunks never cross a shard boundary of the *original* address, so a
  // chunk maps to one contiguous run inside one (possibly shadow) page.
  const std::uint32_t boundary = shadow_.empty()
                                     ? space_.page_size()
                                     : shadow_.shard_size();
  std::uint32_t done = 0;
  while (done < len) {
    const GuestAddr at = addr + done;
    const std::uint32_t to_boundary = boundary - (at & (boundary - 1));
    const std::uint32_t n = std::min(len - done, to_boundary);
    fn(shadow_.translate(at), n);
    done += n;
  }
}

void Node::read_guest(GuestAddr addr, std::span<std::uint8_t> out) const {
  std::size_t off = 0;
  for_each_chunk(addr, static_cast<std::uint32_t>(out.size()),
                 [&](GuestAddr resolved, std::uint32_t n) {
                   space_.read_bytes(resolved, out.subspan(off, n));
                   off += n;
                 });
}

void Node::write_guest(GuestAddr addr, std::span<const std::uint8_t> in) {
  std::size_t off = 0;
  for_each_chunk(addr, static_cast<std::uint32_t>(in.size()),
                 [&](GuestAddr resolved, std::uint32_t n) {
                   space_.write_bytes(resolved, in.subspan(off, n));
                   if (!llsc_.empty()) {
                     // Snoop every word the block store touches.
                     const GuestAddr first = resolved & ~3u;
                     for (GuestAddr w = first; w < resolved + n; w += 4) {
                       llsc_.on_store(w, kInvalidTid);
                     }
                   }
                   off += n;
                 });
}

// ---------------------------------------------------------------------------
// Syscalls
// ---------------------------------------------------------------------------

bool Node::ensure_access(GuestThread& t,
                         const std::vector<sys::PreAccess>& ranges) {
  for (const sys::PreAccess& range : ranges) {
    if (range.len == 0) continue;
    if (static_cast<std::uint64_t>(range.addr) + range.len > space_.size()) {
      // Bad guest pointer: fail the syscall rather than the simulation.
      t.ctx.set_a0(static_cast<std::uint32_t>(-isa::kEINVAL));
      t.pending_syscall.reset();
      enqueue(t.ctx.tid);
      kick();
      return false;
    }
    std::uint32_t missing_page = UINT32_MAX;
    GuestAddr missing_addr = 0;
    for_each_chunk(range.addr, range.len,
                   [&](GuestAddr resolved, std::uint32_t n) {
                     (void)n;
                     if (missing_page != UINT32_MAX) return;
                     const std::uint32_t page = space_.page_of(resolved);
                     const mem::PageAccess access = space_.access(page);
                     const bool ok =
                         config_.single_node_baseline ||
                         (range.write ? access == mem::PageAccess::kReadWrite
                                      : access != mem::PageAccess::kNone);
                     if (!ok) {
                       missing_page = page;
                       missing_addr = resolved;
                     }
                   });
    if (missing_page != UINT32_MAX) {
      t.state = ThreadState::kBlockedPage;
      t.blocked_page = missing_page;
      t.block_start = queue_.now();
      if (stats_ != nullptr) stats_->add("sys.prefault_blocks");
      dsm_.request_page(missing_page, space_.offset_in_page(missing_addr),
                        range.write, t.ctx.tid);
      return false;
    }
  }
  return true;
}

void Node::attempt_syscall(GuestTid tid) {
  GuestThread& t = threads_.at(tid);
  assert(t.pending_syscall.has_value());
  PendingSyscall& call = *t.pending_syscall;

  switch (call.phase) {
    case PendingSyscall::Phase::kPreFault: {
      std::vector<sys::PreAccess> ranges = sys::pre_access(call.num, call.args);
      if (call.num == isa::Sys::kExit && t.ctid != 0) {
        ranges.push_back({t.ctid, 4, /*write=*/true});
      }
      if (!ensure_access(t, ranges)) return;
      if (sys::classify(call.num) == sys::SysClass::kLocal) {
        run_local_syscall(t, call);
      } else {
        delegate_syscall(t, call);
      }
      return;
    }
    case PendingSyscall::Phase::kAwaitResponse:
      assert(false && "attempt_syscall while awaiting a response");
      return;
    case PendingSyscall::Phase::kCommit:
      commit_syscall(tid);
      return;
  }
}

void Node::run_local_syscall(GuestThread& t, PendingSyscall& call) {
  using isa::Sys;
  std::int32_t result = 0;
  switch (call.num) {
    case Sys::kGettid: result = static_cast<std::int32_t>(t.ctx.tid); break;
    case Sys::kGetpid: result = 1; break;
    case Sys::kGetcpu: result = static_cast<std::int32_t>(id_); break;
    case Sys::kYield: result = 0; break;
    case Sys::kClockGettime: {
      const TimePs now = queue_.now();
      std::uint32_t out[2];
      out[0] = static_cast<std::uint32_t>(now / kSec);
      out[1] = static_cast<std::uint32_t>((now % kSec) / kNs);
      write_guest(call.args[1],
                  {reinterpret_cast<const std::uint8_t*>(out), 8});
      result = 0;
      break;
    }
    case Sys::kNanosleep: {
      const GuestTid tid = t.ctx.tid;
      t.state = ThreadState::kSleeping;
      t.block_start = queue_.now();
      t.pending_syscall.reset();
      queue_.schedule_in(std::uint64_t(call.args[0]) * kNs, [this, tid] {
        if (dead_) return;  // the sleeper was captured by the crash
        GuestThread& sleeper = threads_.at(tid);
        assert(sleeper.state == ThreadState::kSleeping);
        sleeper.breakdown.idle += queue_.now() - sleeper.block_start;
        sleeper.ctx.set_a0(0);
        enqueue(tid);
        kick();
      });
      return;
    }
    case Sys::kUname: {
      char banner[64] = "DQEMU-GA32 reproduction (distributed DBT)";
      write_guest(call.args[0],
                  {reinterpret_cast<const std::uint8_t*>(banner), 64});
      result = 0;
      break;
    }
    default:
      result = -isa::kENOSYS;
      break;
  }
  t.ctx.set_a0(static_cast<std::uint32_t>(result));
  t.pending_syscall.reset();
  if (stats_ != nullptr) stats_->add("sys.local");
  enqueue(t.ctx.tid);
  kick();
}

void Node::delegate_syscall(GuestThread& t, PendingSyscall& call) {
  using isa::Sys;
  std::vector<std::uint8_t> payload;

  switch (call.num) {
    case Sys::kWrite:
      payload.resize(call.args[2]);
      read_guest(call.args[1], payload);
      break;
    case Sys::kOpen: {
      // Capture the path (bounded, NUL-trimmed) for the master.
      const std::uint32_t window = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(256, space_.size() - call.args[0]));
      payload.resize(window);
      read_guest(call.args[0], payload);
      auto nul = std::find(payload.begin(), payload.end(), 0);
      payload.resize(
          static_cast<std::size_t>(std::distance(payload.begin(), nul)) + 1,
          0);
      break;
    }
    case Sys::kClone: {
      payload.resize(dbt::CpuContext::kWireBytes);
      t.ctx.serialize(payload);
      // The placement hint rides in the unused 4th argument slot.
      call.args[3] = static_cast<std::uint32_t>(t.ctx.hint_group);
      break;
    }
    case Sys::kServeGet:
      // A worker parked at the load generator is waiting for offered load,
      // not doing work — account the blocked time as idle, like a futex
      // wait, so serving runs report meaningful busy fractions.
      call.block_is_idle = true;
      break;
    case Sys::kFutex: {
      if (call.args[1] == isa::kFutexWait) {
        // The atomic re-check (section 4.4): we hold a read copy of the
        // futex page right now, so a racing writer cannot have completed —
        // its invalidation of this page is ordered after this event, and
        // its wake after our wait on the master's FIFO channel.
        const GuestAddr resolved = shadow_.translate(call.args[0]);
        if ((resolved & 3u) != 0) {
          t.ctx.set_a0(static_cast<std::uint32_t>(-isa::kEINVAL));
          t.pending_syscall.reset();
          enqueue(t.ctx.tid);
          kick();
          return;
        }
        const auto value = static_cast<std::uint32_t>(space_.load(resolved, 4));
        call.block_is_idle = true;  // time spent blocked is lock-wait, not work
        if (value != call.args[2]) {
          t.ctx.set_a0(static_cast<std::uint32_t>(-isa::kEAGAIN));
          t.pending_syscall.reset();
          if (stats_ != nullptr) stats_->add("sys.futex_eagain");
          enqueue(t.ctx.tid);
          kick();
          return;
        }
      }
      // Hierarchical locking (DESIGN.md section 11): if this node's agent
      // holds the address's lease, the whole op completes on-node — wait
      // parks the thread in the agent queue (the re-check above already
      // ran), wake grants locally after the agent's service cost. The
      // lease carries the master's queue, so FIFO semantics survive.
      const GuestAddr faddr = call.args[0];
      const std::uint32_t fop = call.args[1];
      if (sys::hierarchical_locking(config_.sys) &&
          (fop == isa::kFutexWait || fop == isa::kFutexWake)) {
        if (!lock_agent_.owns(faddr)) {
          lock_agent_.note_delegated(faddr);
          if (fop == isa::kFutexWake) {
            // Fire-and-forget wake: the agent acknowledges the syscall
            // locally (the guest runtime discards the wake count) and the
            // master/owner processes the forwarded wake asynchronously.
            // Per-channel FIFO keeps it ordered before any later futex op
            // this node delegates, so the no-lost-wakeup argument holds.
            call.args[3] = sys::kFutexAsyncWake;
            if (trace::wants(tracer_, trace::Cat::kSys)) {
              call.flow = tracer_->new_flow();
              note("sys.delegate", trace::Cat::kSys, trace::Kind::kFlowBegin,
                   t.ctx.tid, call.flow,
                   static_cast<std::uint64_t>(call.num), faddr);
            }
            net::Message req = sys::make_syscall_request(
                id_, t.ctx.tid, call.num, call.args, payload);
            req.dst = futex_home(faddr);
            req.flow = call.flow;
            network_.send(std::move(req));
            t.state = ThreadState::kBlockedSyscall;
            t.block_start = queue_.now();
            call.phase = PendingSyscall::Phase::kAwaitResponse;
            if (stats_ != nullptr) stats_->add("sys.lock_async_wakes");
            const GuestTid waker = t.ctx.tid;
            queue_.schedule_in(
                machine_.cycles(config_.sys.lock_agent_cycles),
                [this, waker] { complete_futex_locally(waker, 0); });
            return;
          }
        } else {
          if (trace::wants(tracer_, trace::Cat::kSys)) {
            call.flow = tracer_->new_flow();
            note("sys.delegate", trace::Cat::kSys, trace::Kind::kFlowBegin,
                 t.ctx.tid, call.flow, static_cast<std::uint64_t>(call.num),
                 faddr);
          }
          t.state = ThreadState::kBlockedSyscall;
          t.block_start = queue_.now();
          call.phase = PendingSyscall::Phase::kAwaitResponse;
          if (stats_ != nullptr) stats_->add("sys.lock_local_ops");
          if (fop == isa::kFutexWait) {
            lock_agent_.local_wait(faddr, t.ctx.tid, call.flow);
          } else {
            const std::uint32_t woken =
                lock_agent_.local_wake(faddr, call.args[2]);
            const GuestTid waker = t.ctx.tid;
            queue_.schedule_in(
                machine_.cycles(config_.sys.lock_agent_cycles),
                [this, waker, woken] { complete_futex_locally(waker, woken); });
          }
          return;
        }
      }
      break;
    }
    case Sys::kExit: {
      // Linux CLONE_CHILD_CLEARTID: store 0 to *ctid through the normal
      // coherent-write path (page was pre-faulted RW), then let the master
      // wake joiners and account the exit.
      if (t.ctid != 0) {
        const std::uint32_t zero = 0;
        write_guest(t.ctid,
                    {reinterpret_cast<const std::uint8_t*>(&zero), 4});
        call.args[1] = t.ctid;
      } else {
        call.args[1] = 0;
      }
      network_.send(sys::make_syscall_request(id_, t.ctx.tid, call.num,
                                              call.args, payload));
      const GuestTid tid = t.ctx.tid;
      t.pending_syscall.reset();
      finish_thread_exit(tid);
      return;
    }
    default:
      break;
  }

  // Open the delegation's causal chain: request -> master service ->
  // response all record against this id (closed in on_syscall_response).
  if (trace::wants(tracer_, trace::Cat::kSys)) {
    call.flow = tracer_->new_flow();
    note("sys.delegate", trace::Cat::kSys, trace::Kind::kFlowBegin, t.ctx.tid,
         call.flow, static_cast<std::uint64_t>(call.num), call.args[0]);
  }
  net::Message req =
      sys::make_syscall_request(id_, t.ctx.tid, call.num, call.args, payload);
  // Futex ops go to the address's home (the master unless sharding is on and
  // the node has learned/computed a different one — first-touch misses are
  // relayed by the master). Every other syscall is master business.
  if (call.num == Sys::kFutex) req.dst = futex_home(call.args[0]);
  req.flow = call.flow;
  network_.send(std::move(req));
  t.state = ThreadState::kBlockedSyscall;
  t.block_start = queue_.now();
  call.phase = PendingSyscall::Phase::kAwaitResponse;
  if (stats_ != nullptr) stats_->add("sys.delegated_sent");
}

void Node::on_syscall_response(const net::Message& msg) {
  const auto tid = static_cast<GuestTid>(msg.b);
  auto it = threads_.find(tid);
  assert(it != threads_.end());
  GuestThread& t = it->second;
  assert(t.state == ThreadState::kBlockedSyscall);
  assert(t.pending_syscall.has_value());
  if (t.pending_syscall->block_is_idle) {
    t.breakdown.idle += queue_.now() - t.block_start;
  } else {
    t.breakdown.syscall += queue_.now() - t.block_start;
  }
  PendingSyscall& call = *t.pending_syscall;
  call.result = static_cast<std::int64_t>(msg.a);
  if (call.flow != 0) {
    note("sys.delegate", trace::Cat::kSys, trace::Kind::kFlowEnd, tid,
         call.flow, msg.a, 0);
  }

  if (call.num == isa::Sys::kRead && call.result > 0 && !msg.data.empty()) {
    call.result_payload = msg.data;
    call.phase = PendingSyscall::Phase::kCommit;
    commit_syscall(tid);
    return;
  }
  t.ctx.set_a0(static_cast<std::uint32_t>(call.result));
  t.pending_syscall.reset();
  enqueue(tid);
  kick();
}

// ---------------------------------------------------------------------------
// Hierarchical locking (lock agent, DESIGN.md section 11)
// ---------------------------------------------------------------------------

void Node::complete_futex_locally(GuestTid tid, std::int64_t result) {
  if (dead_) return;  // a scheduled agent-cost closure outlived the node
  auto it = threads_.find(tid);
  assert(it != threads_.end());
  GuestThread& t = it->second;
  assert(t.state == ThreadState::kBlockedSyscall);
  assert(t.pending_syscall.has_value());
  if (t.pending_syscall->block_is_idle) {
    t.breakdown.idle += queue_.now() - t.block_start;
  } else {
    t.breakdown.syscall += queue_.now() - t.block_start;
  }
  PendingSyscall& call = *t.pending_syscall;
  if (call.flow != 0) {
    note("sys.delegate", trace::Cat::kSys, trace::Kind::kFlowEnd, tid,
         call.flow, static_cast<std::uint64_t>(result), 0);
  }
  t.ctx.set_a0(static_cast<std::uint32_t>(result));
  t.pending_syscall.reset();
  enqueue(tid);
  kick();
}

void Node::on_local_futex_wake(GuestTid tid, std::uint64_t flow) {
  (void)flow;  // the waiter's own chain closes in complete_futex_locally
  // Charge the agent's local futex-path cost before the thread resumes;
  // still orders of magnitude below a master round trip.
  queue_.schedule_in(machine_.cycles(config_.sys.lock_agent_cycles),
                     [this, tid] { complete_futex_locally(tid, 0); });
}

void Node::on_wake_batch(const net::Message& msg) {
  // One message, up to `count` wakes: every entry is a thread of this node
  // whose FUTEX_WAIT now completes with result 0.
  const auto waiters = sys::FutexTable::unpack_waiters(msg.data);
  assert(waiters.size() == msg.b);
  if (stats_ != nullptr) {
    stats_->add("sys.wake_batch_wakes", waiters.size());
  }
  for (const sys::FutexTable::Waiter& w : waiters) {
    complete_futex_locally(w.tid, 0);
  }
}

void Node::commit_syscall(GuestTid tid) {
  GuestThread& t = threads_.at(tid);
  PendingSyscall& call = *t.pending_syscall;
  const std::vector<sys::PreAccess> ranges = {
      {call.args[1], static_cast<std::uint32_t>(call.result_payload.size()),
       /*write=*/true}};
  // Access may have been invalidated while the response was in flight;
  // re-acquire before storing (the syscall itself is NOT re-executed).
  if (!ensure_access(t, ranges)) return;
  write_guest(call.args[1], call.result_payload);
  t.ctx.set_a0(static_cast<std::uint32_t>(call.result));
  t.pending_syscall.reset();
  enqueue(tid);
  kick();
}

// ---------------------------------------------------------------------------
// Thread management messages
// ---------------------------------------------------------------------------

void Node::handle_message(const net::Message& msg) {
  if (dead_) {
    // In-flight deliveries scheduled before the links were silenced still
    // land here; a dead node is a black hole.
    if (stats_ != nullptr) stats_->add("core.dead_msgs_dropped");
    return;
  }
  if (paused_) {
    paused_inbox_.push_back(msg);
    return;
  }
  if (dsm::is_dsm_message(msg.type)) {
    // When this node is a home (sharding), directory-addressed traffic for
    // its slice of the page space lands here; everything else in the DSM
    // range is for this node's client.
    if (home_shard_ != nullptr && dsm::is_directory_message(msg.type)) {
      home_shard_->handle_message(msg);
      return;
    }
    dsm_.handle_message(msg);
    return;
  }
  if (msg.type == static_cast<std::uint32_t>(sys::SysMsg::kSyscallResp)) {
    on_syscall_response(msg);
    return;
  }
  // Futex traffic addressed to this node as a *home* (delegated futex ops
  // and lease arbitration). Disjoint from LockAgent::handles, which covers
  // the node-as-lease-owner half of the protocol.
  if (futex_home_svc_ != nullptr && sys::FutexService::handles(msg.type)) {
    futex_home_svc_->handle_message(msg);
    return;
  }
  if (sys::LockAgent::handles(msg.type)) {
    lock_agent_.handle_message(msg);
    return;
  }
  if (msg.type == static_cast<std::uint32_t>(sys::SysMsg::kWakeBatch)) {
    on_wake_batch(msg);
    return;
  }
  switch (static_cast<CoreMsg>(msg.type)) {
    case CoreMsg::kCreateThread: return on_create_thread(msg);
    case CoreMsg::kMigrateReq: return on_migrate_req(msg);
    case CoreMsg::kMigrateThread: return on_migrate_thread(msg);
    case CoreMsg::kCrashCmd:
      // b = pause duration in ps; zero means die for good.
      if (msg.b != 0) return pause(static_cast<DurationPs>(msg.b));
      return crash();
    case CoreMsg::kNodeDead: return on_node_dead(static_cast<NodeId>(msg.a));
    case CoreMsg::kCrashFlush:
      // A dying owner's last writeback of a page this node homes.
      if (home_shard_ != nullptr) return home_shard_->on_crash_flush(msg);
      break;
    case CoreMsg::kCrashLeaseReturn:
      if (futex_home_svc_ != nullptr) {
        return futex_home_svc_->on_crash_lease_return(
            msg.src, static_cast<GuestAddr>(msg.a),
            sys::FutexTable::unpack_waiters(msg.data));
      }
      break;
    default:
      break;
  }
  if (hooks_.fatal) {
    hooks_.fatal("node " + std::to_string(id_) + ": unroutable message type " +
                 std::to_string(msg.type));
  }
}

void Node::on_create_thread(const net::Message& msg) {
  assert(msg.data.size() >= dbt::CpuContext::kWireBytes);
  const dbt::CpuContext ctx = dbt::CpuContext::deserialize(msg.data);
  add_thread(ctx, static_cast<GuestAddr>(msg.b),
             static_cast<std::int32_t>(msg.c));
}

void Node::on_migrate_req(const net::Message& msg) {
  const auto tid = static_cast<GuestTid>(msg.a);
  auto it = threads_.find(tid);
  if (it == threads_.end() || it->second.state == ThreadState::kExited) {
    return;  // raced with exit; nothing to migrate
  }
  it->second.migrate_target = static_cast<NodeId>(msg.b);
  if (stats_ != nullptr) stats_->add("core.migrations_requested");
  // Runnable threads are peeled off at the next dispatch; blocked threads
  // migrate once they wake and get dispatched.
}

void Node::send_migration(GuestTid tid) {
  GuestThread& t = threads_.at(tid);
  const NodeId target = t.migrate_target;
  assert(target != kInvalidNode && target != id_);

  net::Message msg;
  msg.src = id_;
  msg.dst = target;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kMigrateThread);
  msg.a = tid;
  msg.b = t.ctid;
  msg.c = static_cast<std::uint64_t>(
      static_cast<std::uint32_t>(t.hint_group));
  msg.data.resize(dbt::CpuContext::kWireBytes + kBreakdownBytes);
  t.ctx.serialize(msg.data);
  // Simulation bookkeeping (not a real wire field): carry the accumulated
  // breakdown so per-thread accounting survives the move.
  const std::uint64_t parts[5] = {t.breakdown.execute, t.breakdown.translate,
                                  t.breakdown.pagefault, t.breakdown.syscall,
                                  t.breakdown.idle};
  std::memcpy(msg.data.data() + dbt::CpuContext::kWireBytes, parts,
              kBreakdownBytes);
  // Migration is a causal arc of its own: departure here, arrival on the
  // target node (on_migrate_thread) closes it.
  if (trace::wants(tracer_, trace::Cat::kCore)) {
    msg.flow = tracer_->new_flow();
    note("core.migrate", trace::Cat::kCore, trace::Kind::kFlowBegin, tid,
         msg.flow, tid, target);
  }
  network_.send(std::move(msg));
  threads_.erase(tid);
  if (stats_ != nullptr) stats_->add("core.migrations_sent");
}

void Node::on_migrate_thread(const net::Message& msg) {
  assert(msg.data.size() >= dbt::CpuContext::kWireBytes + kBreakdownBytes);
  const dbt::CpuContext ctx = dbt::CpuContext::deserialize(msg.data);
  if (msg.flow != 0 && (msg.flow & trace::kAutoFlowBit) == 0) {
    note("core.migrate", trace::Cat::kCore, trace::Kind::kFlowEnd, ctx.tid,
         msg.flow, ctx.tid, id_);
  }
  std::uint64_t parts[5];
  std::memcpy(parts, msg.data.data() + dbt::CpuContext::kWireBytes,
              kBreakdownBytes);
  const std::size_t base = dbt::CpuContext::kWireBytes + kBreakdownBytes;
  if (msg.data.size() >= base + kPendingSyscallWireBytes) {
    // Crash re-homing (DESIGN.md §18): the thread arrives carrying a
    // syscall it must re-issue before executing a single instruction (its
    // old node died mid-call; pc is already past the SYSCALL). add_thread
    // would kick it straight into the engine, so insert it by hand and
    // drive the pending-syscall machine instead.
    std::span<const std::uint8_t> ext(msg.data.data() + base,
                                      kPendingSyscallWireBytes);
    PendingSyscall call;
    call.num = static_cast<isa::Sys>(get_u32(ext));
    for (std::uint32_t& arg : call.args) arg = get_u32(ext);
    call.block_is_idle = get_u32(ext) != 0;
    GuestThread thread;
    thread.ctx = ctx;
    thread.ctid = static_cast<GuestAddr>(msg.b);
    thread.hint_group =
        static_cast<std::int32_t>(static_cast<std::uint32_t>(msg.c));
    thread.ready_since = queue_.now();
    thread.pending_syscall = call;
    assert(!threads_.contains(ctx.tid));
    GuestThread& t = threads_.emplace(ctx.tid, std::move(thread)).first->second;
    t.breakdown.execute = parts[0];
    t.breakdown.translate = parts[1];
    t.breakdown.pagefault = parts[2];
    t.breakdown.syscall = parts[3];
    t.breakdown.idle = parts[4];
    if (stats_ != nullptr) stats_->add("core.threads_rehomed");
    note("core.thread_rehomed", trace::Cat::kCore, trace::Kind::kInstant,
         ctx.tid, 0, static_cast<std::uint64_t>(call.num), 0);
    attempt_syscall(ctx.tid);
  } else {
    add_thread(ctx, static_cast<GuestAddr>(msg.b),
               static_cast<std::int32_t>(static_cast<std::uint32_t>(msg.c)));
    GuestThread& t = threads_.at(ctx.tid);
    t.breakdown.execute = parts[0];
    t.breakdown.translate = parts[1];
    t.breakdown.pagefault = parts[2];
    t.breakdown.syscall = parts[3];
    t.breakdown.idle = parts[4];
  }

  net::Message done;
  done.src = id_;
  done.dst = kMasterNode;
  done.type = static_cast<std::uint32_t>(CoreMsg::kMigrateDone);
  done.a = ctx.tid;
  done.b = id_;
  network_.send(std::move(done));
}

void Node::finish_thread_exit(GuestTid tid) {
  GuestThread& t = threads_.at(tid);
  t.state = ThreadState::kExited;
  // Drop from the run queue if present (it should not be, but exits from
  // odd paths stay safe).
  for (auto it = run_queue_.begin(); it != run_queue_.end();) {
    it = (*it == tid) ? run_queue_.erase(it) : it + 1;
  }
  if (hooks_.thread_exited) hooks_.thread_exited(tid);
}

// ---------------------------------------------------------------------------
// Whole-node fault plane (DESIGN.md §18)
// ---------------------------------------------------------------------------

void Node::capture_thread(const GuestThread& t,
                          std::vector<std::uint8_t>& out) {
  dbt::CpuContext ctx = t.ctx;
  std::optional<PendingSyscall> pending;
  switch (t.state) {
    case ThreadState::kRunning:
      // The engine call is synchronous, so ctx already reflects the whole
      // in-flight slice; only the stop's *processing* is lost with the
      // finish_slice closure. kQuantum / kPageFault stops need nothing —
      // the thread re-faults on its new node — but an unprocessed kSyscall
      // stop left pc past the SYSCALL, so the call must be re-issued.
      if (t.inflight_stop == dbt::StopReason::kSyscall) {
        PendingSyscall call;
        call.num = static_cast<isa::Sys>(t.inflight_syscall);
        for (unsigned i = 0; i < 4; ++i) call.args[i] = ctx.arg(i);
        pending = call;
      }
      break;
    case ThreadState::kRunnable:
    case ThreadState::kBlockedPage:
    case ThreadState::kBlockedSyscall:
      // Any pending call restarts from kPreFault on the new node. For a
      // FUTEX_WAIT this is exactly the level-triggered re-check (no lost
      // wakeup: a wake that raced the crash changed the futex word, and the
      // re-check sees it). For other non-idempotent calls this is
      // at-least-once delivery — documented in DESIGN.md §18.
      if (t.pending_syscall.has_value()) pending = *t.pending_syscall;
      break;
    case ThreadState::kSleeping:
      // The crash cuts the sleep short: resume with nanosleep's success
      // return. Bounded timing skew, no correctness impact.
      ctx.set_a0(0);
      break;
    case ThreadState::kExited:
      break;  // filtered by the caller
  }

  std::size_t at = out.size();
  out.resize(at + dbt::CpuContext::kWireBytes);
  ctx.serialize({out.data() + at, dbt::CpuContext::kWireBytes});
  const std::uint64_t parts[5] = {t.breakdown.execute, t.breakdown.translate,
                                  t.breakdown.pagefault, t.breakdown.syscall,
                                  t.breakdown.idle};
  at = out.size();
  out.resize(at + kBreakdownBytes);
  std::memcpy(out.data() + at, parts, kBreakdownBytes);
  put_u32(out, t.ctid);
  put_u32(out, static_cast<std::uint32_t>(t.hint_group));
  put_u32(out, pending.has_value() ? 1u : 0u);
  if (pending.has_value()) {
    put_u32(out, static_cast<std::uint32_t>(pending->num));
    for (const std::uint32_t arg : pending->args) put_u32(out, arg);
    put_u32(out, pending->block_is_idle ? 1u : 0u);
  }
}

void Node::crash() {
  if (dead_) return;
  if (stats_ != nullptr) stats_->add("core.node_crashes");
  note("core.crash", trace::Cat::kCore, trace::Kind::kInstant, 0, 0,
       live_threads(), 0);

  // (1) Last writeback: every page held kReadWrite whose home is elsewhere
  // gets a kCrashFlush ("reliable by fiat" — a dropped flush could not be
  // retransmitted). Self-homed dirty pages need none: the shard handoff
  // below ships their (already local) bytes.
  for (std::uint32_t page = 0; page < space_.num_pages(); ++page) {
    if (space_.access(page) != mem::PageAccess::kReadWrite) continue;
    const NodeId home = homes_.home_of(page);
    if (home == id_) continue;
    net::Message flush;
    flush.src = id_;
    flush.dst = home;
    flush.type = static_cast<std::uint32_t>(CoreMsg::kCrashFlush);
    flush.a = page;
    const std::span<const std::uint8_t> bytes = space_.page_data(page);
    flush.data.assign(bytes.begin(), bytes.end());
    network_.send(std::move(flush));
    if (stats_ != nullptr) stats_->add("core.crash_flushes_sent");
  }

  // (2) Return every held lock lease, queue included; self-homed leases
  // revoke synchronously (a loopback message would arrive after the shard
  // below is serialized).
  lock_agent_.return_all(
      [this](GuestAddr addr, const std::vector<sys::FutexTable::Waiter>& q) {
        if (futex_home_svc_ != nullptr) {
          futex_home_svc_->crash_revoke_local(addr, q);
        }
      });

  // (3) Hand any hosted home shard to the master: one kHomeHandoff per
  // directory entry, one kFutexHandoff for the whole futex/lease table.
  // FIFO on the master link orders these after the flushes above.
  if (home_shard_ != nullptr) {
    for (const std::uint32_t page : home_shard_->handoff_pages()) {
      net::Message hand;
      hand.src = id_;
      hand.dst = kMasterNode;
      hand.type = static_cast<std::uint32_t>(CoreMsg::kHomeHandoff);
      hand.a = page;
      home_shard_->serialize_entry(page, hand.data);
      network_.send(std::move(hand));
    }
  }
  if (futex_home_svc_ != nullptr) {
    net::Message hand;
    hand.src = id_;
    hand.dst = kMasterNode;
    hand.type = static_cast<std::uint32_t>(CoreMsg::kFutexHandoff);
    futex_home_svc_->serialize_for_handoff(hand.data);
    network_.send(std::move(hand));
  }

  // (4) Capture live threads (std::map order: deterministic) and send the
  // report last on the master link, so the master adopts state before it
  // re-homes anyone.
  std::uint32_t captured = 0;
  std::vector<std::uint8_t> report;
  for (const auto& [tid, t] : threads_) {
    if (t.state == ThreadState::kExited) continue;
    capture_thread(t, report);
    ++captured;
  }
  net::Message rep;
  rep.src = id_;
  rep.dst = kMasterNode;
  rep.type = static_cast<std::uint32_t>(CoreMsg::kCrashReport);
  rep.a = id_;
  rep.b = captured;
  rep.data = std::move(report);
  network_.send(std::move(rep));

  // (5) Go dark: cancel every timer that could fire into freed state (the
  // DSM watchdogs are RAII — clearing the table cancels them), drop all
  // thread state, silence the links. Closures already in the event queue
  // hit the dead_ guards and fall through.
  dsm_.crash_teardown();
  if (futex_home_svc_ != nullptr) futex_home_svc_->cancel_watchdogs();
  threads_.clear();
  run_queue_.clear();
  std::fill(core_busy_.begin(), core_busy_.end(), false);
  paused_inbox_.clear();
  dead_ = true;
  network_.silence(id_);
}

void Node::pause(DurationPs pause_for) {
  if (dead_ || paused_) return;
  paused_ = true;
  if (stats_ != nullptr) stats_->add("core.node_pauses");
  note("core.pause", trace::Cat::kCore, trace::Kind::kInstant, 0, 0, pause_for,
       0);
  queue_.schedule_in(pause_for, [this] {
    if (dead_) return;
    paused_ = false;
    if (stats_ != nullptr) stats_->add("core.node_rejoins");
    note("core.rejoin", trace::Cat::kCore, trace::Kind::kInstant, 0, 0,
         paused_inbox_.size(), 0);
    // Drain in arrival order; the links stayed live below this layer, so
    // per-link FIFO is preserved end to end.
    std::vector<net::Message> inbox;
    inbox.swap(paused_inbox_);
    for (const net::Message& m : inbox) handle_message(m);
    kick();
  });
}

void Node::on_node_dead(NodeId dead) {
  homes_.invalidate_home(dead);
  lock_agent_.on_peer_dead(dead);
  if (futex_home_svc_ != nullptr) futex_home_svc_->on_node_dead(dead);
  if (home_shard_ != nullptr) home_shard_->on_node_dead(dead);
  network_.note_peer_dead(id_, dead);
}

}  // namespace dqemu::core
