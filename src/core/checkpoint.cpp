#include "core/checkpoint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace dqemu::core {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes, std::uint64_t h) {
  for (const std::uint8_t b : bytes) h = fnv1a_step(h, b);
  return h;
}

std::uint64_t fnv1a_u32(std::uint32_t v, std::uint64_t h) {
  std::uint8_t raw[4];
  std::memcpy(raw, &v, 4);
  return fnv1a(raw, h);
}

std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h) {
  std::uint8_t raw[8];
  std::memcpy(raw, &v, 8);
  return fnv1a(raw, h);
}

void CheckpointImage::add(std::string name, std::uint64_t digest) {
  digests.emplace_back(std::move(name), digest);
}

void CheckpointImage::normalize() {
  std::sort(digests.begin(), digests.end());
}

std::vector<std::string> CheckpointImage::diff(
    const CheckpointImage& other) const {
  CheckpointImage a = *this;
  CheckpointImage b = other;
  a.normalize();
  b.normalize();
  std::vector<std::string> out;
  std::size_t i = 0, j = 0;
  while (i < a.digests.size() || j < b.digests.size()) {
    if (j >= b.digests.size() ||
        (i < a.digests.size() && a.digests[i].first < b.digests[j].first)) {
      out.push_back(a.digests[i++].first);
    } else if (i >= a.digests.size() ||
               b.digests[j].first < a.digests[i].first) {
      out.push_back(b.digests[j++].first);
    } else {
      if (a.digests[i].second != b.digests[j].second) {
        out.push_back(a.digests[i].first);
      }
      ++i;
      ++j;
    }
  }
  return out;
}

bool CheckpointImage::save(const std::string& path) const {
  CheckpointImage sorted = *this;
  sorted.normalize();
  std::ofstream out(path);
  if (!out) return false;
  out << "dqemu-checkpoint v" << kVersion << "\n";
  out << "time " << virtual_time << "\n";
  char hex[32];
  for (const auto& [name, digest] : sorted.digests) {
    std::snprintf(hex, sizeof hex, "%016" PRIx64, digest);
    out << "digest " << name << " " << hex << "\n";
  }
  return static_cast<bool>(out);
}

bool CheckpointImage::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header) ||
      header != "dqemu-checkpoint v" + std::to_string(kVersion)) {
    return false;
  }
  digests.clear();
  virtual_time = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    if (key == "time") {
      fields >> virtual_time;
      if (!fields) return false;
    } else if (key == "digest") {
      std::string name, hex;
      fields >> name >> hex;
      if (!fields || hex.size() != 16) return false;
      std::uint64_t digest = 0;
      if (std::sscanf(hex.c_str(), "%" SCNx64, &digest) != 1) return false;
      digests.emplace_back(std::move(name), digest);
    } else {
      return false;  // unknown record: refuse rather than misinterpret
    }
  }
  return true;
}

}  // namespace dqemu::core
