// One DQEMU instance: a cluster node.
//
// Owns the node's copy of the guest address space, the DBT (translation
// cache + execution engine + LL/SC table), the DSM client, and the node's
// guest threads with their core scheduler. The master node additionally
// hosts the directory and the delegated-syscall engine, but those are owned
// by the Cluster and merely operate on this node's memory.
//
// Scheduling model: `cores_per_node` simulated cores multiplex the node's
// runnable TCG-threads in FIFO order; one engine call = one quantum of at
// most `quantum_insns` guest instructions. Blocking events (remote page
// faults, delegated syscalls, futex waits, sleeps) release the core.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/guest_thread.hpp"
#include "core/wire.hpp"
#include "dbt/exec.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "dsm/client.hpp"
#include "mem/address_space.hpp"
#include "mem/shadow_map.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sys/classify.hpp"
#include "sys/lock_agent.hpp"
#include "sys/master_syscalls.hpp"
#include "trace/tracer.hpp"

namespace dqemu::dsm {
class Directory;
}  // namespace dqemu::dsm
namespace dqemu::sys {
class FutexService;
}  // namespace dqemu::sys

namespace dqemu::core {

class Node {
 public:
  struct Hooks {
    /// Unrecoverable guest/protocol error: the cluster run must fail.
    std::function<void(std::string)> fatal;
    /// A guest thread on this node fully exited (after its exit syscall
    /// was forwarded); cluster-level accounting.
    std::function<void(GuestTid)> thread_exited;
  };

  Node(NodeId id, const ClusterConfig& config, sim::EventQueue& queue,
       net::Network& network, StatsRegistry* stats, Hooks hooks,
       trace::Tracer* tracer = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] mem::AddressSpace& space() { return space_; }
  [[nodiscard]] const mem::AddressSpace& space() const { return space_; }
  [[nodiscard]] mem::ShadowMap& shadow() { return shadow_; }
  [[nodiscard]] dbt::LlscTable& llsc() { return llsc_; }
  [[nodiscard]] dbt::TranslationCache& tcache() { return tcache_; }
  [[nodiscard]] const dbt::TranslationCache& tcache() const { return tcache_; }
  [[nodiscard]] dsm::DsmClient& dsm_client() { return dsm_; }
  [[nodiscard]] const std::map<GuestTid, GuestThread>& threads() const {
    return threads_;
  }
  [[nodiscard]] std::map<GuestTid, GuestThread>& threads() { return threads_; }

  /// Creates a TCG-thread on this node and makes it runnable.
  void add_thread(const dbt::CpuContext& ctx, GuestAddr ctid,
                  std::int32_t hint_group);

  /// Home sharding (DESIGN.md §17): makes this node a home — the cluster
  /// hands it the directory shard and futex service it constructed for this
  /// node's slice of the page space. Null (the default) on every node when
  /// sharding is off; then all home traffic goes to the master.
  void host_home_shard(dsm::Directory* shard, sys::FutexService* futexes) {
    home_shard_ = shard;
    futex_home_svc_ = futexes;
  }

  /// This node's placement view: home of each page (kMasterNode throughout
  /// when sharding is off).
  [[nodiscard]] const dsm::HomeView& homes() const { return homes_; }

  /// Handles node-addressed messages the cluster routes here: DSM client
  /// traffic, home-shard traffic when this node is a home, syscall
  /// responses and thread-management messages.
  void handle_message(const net::Message& msg);

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------

  /// Crash last gasp, run in this node's own execution context so both
  /// schedulers order it identically: flush dirty pages home, return held
  /// lock leases with their queues, hand any hosted home shard to the
  /// master, capture live threads into a kCrashReport (sent last, so FIFO
  /// orders it after every flush/handoff), cancel all timers, go dark.
  void crash();
  /// Pause-and-rejoin: freeze guest execution and buffer every incoming
  /// message for `pause_for` of virtual time; on rejoin, drain the buffer
  /// in arrival order. The node's reliable links stay live (acks keep
  /// flowing below this layer), so nothing is revoked — peers just wait.
  void pause(DurationPs pause_for);
  /// Survivor-side sweep on a kNodeDead notice: forget learned home routes
  /// through the dead node, drop its waiters from owned lease queues, sweep
  /// any hosted home shard, and stop retransmitting to it.
  void on_node_dead(NodeId dead);
  [[nodiscard]] bool dead() const { return dead_; }

  /// Number of threads not yet exited.
  [[nodiscard]] std::size_t live_threads() const;
  /// Number of runnable-or-running threads (diagnostics).
  [[nodiscard]] std::size_t active_threads() const;
  /// One-line description of every blocked thread (deadlock reports).
  [[nodiscard]] std::string blocked_dump() const;

  /// Guest-memory block copy honouring the shadow map (syscall payloads).
  void read_guest(GuestAddr addr, std::span<std::uint8_t> out) const;
  void write_guest(GuestAddr addr, std::span<const std::uint8_t> in);

 private:
  // ---- core scheduling --------------------------------------------------
  void enqueue(GuestTid tid);
  void kick();
  void core_run(CoreId core, GuestTid tid);
  void finish_slice(CoreId core, GuestTid tid, const dbt::ExecResult& r);
  void release_core_after(CoreId core, DurationPs delay);

  // ---- fault & syscall plumbing ------------------------------------------
  void block_on_page(GuestThread& t, GuestAddr fault_addr, bool write);
  void wake_page_waiters(std::uint32_t page);
  /// Drives a thread's PendingSyscall state machine until it completes or
  /// blocks. Returns true if the thread became runnable again.
  void attempt_syscall(GuestTid tid);
  /// Ensures local access to `ranges`; if some page is missing, blocks the
  /// thread on it (DSM request) and returns false.
  bool ensure_access(GuestThread& t, const std::vector<sys::PreAccess>& ranges);
  void run_local_syscall(GuestThread& t, PendingSyscall& call);
  void delegate_syscall(GuestThread& t, PendingSyscall& call);
  void commit_syscall(GuestTid tid);
  void on_syscall_response(const net::Message& msg);

  // ---- hierarchical locking (lock agent) ---------------------------------
  /// Completes a blocked FUTEX_WAIT/WAKE without a master response: the
  /// local-grant path of the lock agent and batched cross-node wakes.
  void complete_futex_locally(GuestTid tid, std::int64_t result);
  /// Lock-agent callback: a locally-parked waiter was granted the lock.
  void on_local_futex_wake(GuestTid tid, std::uint64_t flow);
  void on_wake_batch(const net::Message& msg);

  // ---- thread management ---------------------------------------------------
  void on_create_thread(const net::Message& msg);
  void on_migrate_req(const net::Message& msg);
  void on_migrate_thread(const net::Message& msg);
  void send_migration(GuestTid tid);
  void finish_thread_exit(GuestTid tid);

  /// Home of the futex at `addr` — the home of its containing *original*
  /// page. Deliberately not shadow-translated: every node (and the master's
  /// exit-wake resolver) must map a futex to the same home even while their
  /// shadow maps transiently diverge during a page split, or a wait and its
  /// wake could be arbitrated by different homes (DESIGN.md §17).
  [[nodiscard]] NodeId futex_home(GuestAddr addr) const {
    return homes_.home_of(addr / machine_.page_size);
  }

  /// Records a point/flow event on this node's node-level track.
  void note(const char* name, trace::Cat cat, trace::Kind kind, GuestTid tid,
            std::uint64_t flow, std::uint64_t a, std::uint64_t b);

  /// Walks [addr, addr+len) in shadow-translated chunks.
  void for_each_chunk(
      GuestAddr addr, std::uint32_t len,
      const std::function<void(GuestAddr resolved, std::uint32_t n)>& fn) const;

  NodeId id_;
  const ClusterConfig& config_;
  MachineConfig machine_;  ///< this node's hardware (heterogeneous clusters)
  sim::EventQueue& queue_;
  net::Network& network_;
  StatsRegistry* stats_;
  Hooks hooks_;
  trace::Tracer* tracer_;

  mem::AddressSpace space_;
  mem::ShadowMap shadow_;
  dbt::LlscTable llsc_;
  dbt::TranslationCache tcache_;
  dbt::ExecEngine engine_;
  /// Placement view; must precede dsm_, which captures a pointer to it.
  dsm::HomeView homes_;
  dsm::DsmClient dsm_;
  sys::LockAgent lock_agent_;
  /// Set by host_home_shard when this node is a home under sharding.
  dsm::Directory* home_shard_ = nullptr;
  sys::FutexService* futex_home_svc_ = nullptr;

  std::map<GuestTid, GuestThread> threads_;
  std::deque<GuestTid> run_queue_;
  std::vector<bool> core_busy_;

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------
  /// Serializes one captured thread into a kCrashReport record.
  void capture_thread(const GuestThread& t, std::vector<std::uint8_t>& out);
  bool dead_ = false;
  bool paused_ = false;
  /// Messages received while paused, replayed in arrival order at rejoin.
  std::vector<net::Message> paused_inbox_;
};

}  // namespace dqemu::core
