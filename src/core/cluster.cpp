#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>
#include <span>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "dsm/placement.hpp"
#include "dsm/wire.hpp"
#include "isa/syscall_abi.hpp"
#include "net/fault/node_faults.hpp"
#include "sys/futex_table.hpp"
#include "sys/wire.hpp"

namespace dqemu::core {
namespace {

using time_literals::kSec;

/// Memory layout knob (see DESIGN.md "layout"): a 1 MiB main stack sits
/// below the shadow pool, anonymous mmaps grow from the middle, and brk
/// grows from the end of the static image. The shadow-pool geometry itself
/// comes from dsm::home_layout — the one source the placement layer and
/// the memory layout share.
constexpr std::uint32_t kMainStackBytes = 1u << 20;

}  // namespace

Cluster::Cluster(ClusterConfig config, trace::Tracer* tracer)
    : config_(config),
      tracer_(tracer),
      queue_(),
      network_(queue_, config.net, config.total_nodes(), &stats_, tracer,
               config.faults),
      home_map_(config.dsm, dsm::home_layout(config)) {
  const Status valid = config_.validate();
  assert(valid.is_ok() && "invalid ClusterConfig");
  (void)valid;
  queue_.set_tracer(tracer_);

  Node::Hooks hooks;
  hooks.fatal = [this](std::string message) {
    // Node fatal hooks fire inside whichever window is executing the node,
    // so in parallel mode this races with other workers' hooks.
    const std::lock_guard<std::mutex> lock(fatal_mutex_);
    if (!fatal_.has_value()) fatal_ = std::move(message);
  };
  hooks.thread_exited = [](GuestTid) {};

  const std::uint32_t total = config_.total_nodes();

#if DQEMU_PARALLEL_SIM_ENABLED
  if (config_.sim.host_threads > 1 && total > 1) {
    // Partitioned kernel: node 0 (and with it the directory, the syscall
    // engine and the serving plane, which all captured queue_ below) stays
    // on queue_; every slave node gets a private queue. Cross-node traffic
    // becomes barrier-drained posts (Network::bind_queues).
    queues_.reserve(total);
    queues_.push_back(&queue_);
    slave_queues_.reserve(total - 1);
    for (NodeId id = 1; id < total; ++id) {
      slave_queues_.push_back(std::make_unique<sim::EventQueue>());
      slave_queues_.back()->set_tracer(tracer_);
      queues_.push_back(slave_queues_.back().get());
    }
    network_.bind_queues(queues_);
    if (tracer_ != nullptr) tracer_->configure_shards(total);
    stats_.configure_shards(total);
  }
#else
  if (config_.sim.host_threads > 1) {
    // Runtime gate on, compile-time gate off: refuse loudly rather than
    // silently fall back to the serial kernel.
    fatal_ =
        "host_threads > 1 requested but the parallel scheduler is compiled "
        "out (DQEMU_ENABLE_PARALLEL_SIM=OFF)";
  }
#endif

  nodes_.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    sim::EventQueue& node_queue = queues_.empty() ? queue_ : *queues_[id];
    nodes_.push_back(std::make_unique<Node>(id, config_, node_queue, network_,
                                            &stats_, hooks, tracer_));
  }

  // Shadow pool: top of the guest space (geometry from the placement layer).
  const dsm::HomeLayout& layout = home_map_.layout();
  const bool sharded = home_map_.sharded();

  if (!config_.single_node_baseline) {
    dsm::Directory::Params params;
    params.dsm = config_.dsm;
    params.machine = config_.machine;
    params.node_count = total;
    params.shadow_pool_first_page =
        static_cast<std::uint32_t>(layout.shadow_first_page);
    params.shadow_pool_page_count =
        sharded ? 0 : static_cast<std::uint32_t>(layout.shadow_page_count);
    params.self = kMasterNode;
    params.sharded = sharded;
    directory_.emplace(network_, queue_, nodes_[kMasterNode]->space(), params,
                       &stats_, tracer_);
    if (sharded) {
      // The sharded Directory ctor skips the single-master boot claim, but
      // the master still owns every byte at boot (it loads the image): the
      // shards' entries default to owner == master, so their first
      // transaction recalls the boot content from the master's client over
      // the ordinary wire protocol. The master's own shard gets an empty
      // shadow slice — it never splits pages — so the whole pool is split
      // among the slave homes.
      mem::AddressSpace& master_space = nodes_[kMasterNode]->space();
      master_space.set_all_access(mem::PageAccess::kReadWrite);
      for (std::uint64_t i = 0; i < layout.shadow_page_count; ++i) {
        master_space.set_access(
            static_cast<std::uint32_t>(layout.shadow_first_page + i),
            mem::PageAccess::kNone);
      }
      home_shards_.resize(total);
      futex_homes_.resize(total);
      for (NodeId id = 1; id < total; ++id) {
        sim::EventQueue& node_queue = queues_.empty() ? queue_ : *queues_[id];
        dsm::Directory::Params sp = params;
        sp.machine = config_.machine_for(id);
        sp.self = id;
        sp.shadow_pool_first_page =
            static_cast<std::uint32_t>(layout.slice_first(id));
        sp.shadow_pool_page_count =
            static_cast<std::uint32_t>(layout.slice_count(id));
        home_shards_[id] = std::make_unique<dsm::Directory>(
            network_, node_queue, nodes_[id]->space(), sp, &stats_, tracer_);
        futex_homes_[id] = std::make_unique<sys::FutexService>(
            id, network_, node_queue, config_.machine_for(id),
            config_.dbt.syscall_service_cycles, &stats_, tracer_);
        futex_homes_[id]->configure_locking(config_.sys);
        futex_homes_[id]->configure_faults(config_.faults.request_timeout);
        nodes_[id]->host_home_shard(home_shards_[id].get(),
                                    futex_homes_[id].get());
      }
    }
  } else {
    // Baseline "QEMU" mode: one node, no DSM, direct memory access.
    nodes_[kMasterNode]->space().set_all_access(mem::PageAccess::kReadWrite);
  }

  syscalls_.emplace(network_, queue_, config_.machine,
                    config_.dbt.syscall_service_cycles, &stats_, tracer_);
  syscalls_->configure_locking(config_.sys);
  syscalls_->configure_faults(config_.faults);
  if (sharded) {
    // Thread-exit ctid wakes must reach whichever home arbitrates the
    // futex. Resolved against the *original* address's page, like every
    // other futex routing decision (see Node::futex_home).
    syscalls_->set_futex_home([this](GuestAddr addr) {
      return home_map_.home_of(addr / config_.machine.page_size);
    });
  }
  sys::MasterSyscalls::Hooks sys_hooks;
  sys_hooks.on_clone = [this](const sys::SyscallRequest& req) {
    return on_clone(req);
  };
  sys_hooks.on_exit = [this](const sys::SyscallRequest& req) {
    on_thread_exit(req);
  };
  sys_hooks.on_exit_group = [this](std::uint32_t status) {
    if (!exit_code_.has_value()) exit_code_ = status;
  };
  syscalls_->set_hooks(std::move(sys_hooks));

  if (config_.serve.enabled) {
    if (!serve::compiled_in()) {
      // Runtime gate on, compile-time gate off: refuse loudly rather than
      // silently run the batch semantics of a serving config.
      fatal_ = "serving requested but compiled out (DQEMU_ENABLE_SERVING=OFF)";
    } else {
      serving_.emplace(
          queue_, config_.serve, &stats_, tracer_,
          [this](NodeId dst, GuestTid tid, std::int64_t result,
                 std::uint64_t flow) {
            // Every dispatch/EOF pays the same manager service delay as any
            // other syscall response.
            syscalls_->send_response(dst, tid, result, {}, flow);
          });
      syscalls_->set_serve_handler([this](const sys::SyscallRequest& req) {
        if (req.num == isa::Sys::kServeGet) {
          serving_->on_get_request(req.src, req.tid, req.flow);
        } else {
          serving_->on_done(req.src, req.tid, req.args[0], req.flow);
        }
      });
    }
  }

  // Message routing: master traffic splits between the directory, the
  // syscall engine, migration bookkeeping and the node itself.
  network_.attach(kMasterNode,
                  [this](net::Message msg) { master_handler(msg); });
  for (NodeId id = 1; id < total; ++id) {
    Node* node = nodes_[id].get();
    network_.attach(id,
                    [node](net::Message msg) { node->handle_message(msg); });
  }

  if (!config_.faults.node_faults.empty()) {
    if (!net::node_faults_on(config_.faults)) {
      // Runtime gate on, compile-time gate off: refuse loudly rather than
      // silently run an immortal cluster under a fault config.
      fatal_ =
          "node faults requested but compiled out "
          "(DQEMU_ENABLE_NODE_FAULTS=OFF)";
    } else {
      schedule_node_faults();
    }
  }
}

void Cluster::schedule_node_faults() {
  // Each rule draws its unresolved fields (node == 0, at == 0) from a
  // per-rule counter-based SplitMix64 stream off the fault seed — the same
  // run-is-a-pure-function-of-the-config discipline as the wire injector
  // and the load generator. The resolved values are written back into
  // config_ so config() (and the CLI summary) reports what actually fired.
  std::uint64_t rule = 0;
  for (FaultConfig::NodeFault& nf : config_.faults.node_faults) {
    if (nf.node == 0) {
      std::uint64_t state = config_.faults.seed ^ 0x6E6F64656661756CULL ^
                            (rule * 0x9E3779B97F4A7C15ULL);
      nf.node =
          static_cast<std::uint32_t>(splitmix64(state) % config_.slave_nodes) +
          1;
    }
    if (nf.at == 0) {
      std::uint64_t state = config_.faults.seed ^ 0x66617561745F6174ULL ^
                            (rule * 0xBF58476D1CE4E5B9ULL);
      const DurationPs window = config_.faults.fault_window;
      nf.at = window / 4 + splitmix64(state) % (window - window / 4);
    }
    const auto target = static_cast<NodeId>(nf.node);
    const DurationPs pause =
        nf.kind == FaultConfig::NodeFault::Kind::kPause ? nf.pause_for : 0;
    queue_.schedule_at(nf.at, [this, target, pause] {
      stats_.add(pause == 0 ? "core.crash_cmds" : "core.pause_cmds");
      net::Message cmd;
      cmd.src = kMasterNode;
      cmd.dst = target;
      cmd.type = static_cast<std::uint32_t>(CoreMsg::kCrashCmd);
      cmd.b = pause;
      network_.send(std::move(cmd));
    });
    ++rule;
  }
}

void Cluster::master_handler(const net::Message& msg) {
  if (home_map_.sharded() && relay_if_misdirected(msg)) return;
  switch (msg.type) {
    case static_cast<std::uint32_t>(dsm::DsmMsg::kReadReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kWriteReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kInvAck):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kDowngradeAck):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kInvAckDiff):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kDowngradeAckDiff):
      assert(directory_.has_value());
      directory_->handle_message(msg);
      return;
    case static_cast<std::uint32_t>(sys::SysMsg::kSyscallReq):
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReq):
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReturn):
      syscalls_->handle_message(msg);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kMigrateDone):
      thread_node_[static_cast<GuestTid>(msg.a)] =
          static_cast<NodeId>(msg.b);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kCrashFlush):
      assert(directory_.has_value());
      directory_->on_crash_flush(msg);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kHomeHandoff):
      assert(directory_.has_value());
      directory_->adopt_entry(static_cast<std::uint32_t>(msg.a), msg.data);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kFutexHandoff):
      syscalls_->futex_service().adopt_handoff(msg.data);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kCrashLeaseReturn):
      syscalls_->futex_service().on_crash_lease_return(
          msg.src, static_cast<GuestAddr>(msg.a),
          sys::FutexTable::unpack_waiters(msg.data));
      return;
    case static_cast<std::uint32_t>(CoreMsg::kCrashReport):
      on_crash_report(msg);
      return;
    default:
      nodes_[kMasterNode]->handle_message(msg);
      return;
  }
}

bool Cluster::is_dead(NodeId id) const {
  return std::find(dead_nodes_.begin(), dead_nodes_.end(), id) !=
         dead_nodes_.end();
}

NodeId Cluster::replacement_node() const {
  const auto total = static_cast<NodeId>(nodes_.size());
  for (NodeId id = 1; id < total; ++id) {
    if (!is_dead(id)) return id;
  }
  return kMasterNode;  // every slave is dead: the master soldiers on
}

void Cluster::on_crash_report(const net::Message& msg) {
  const auto dead = static_cast<NodeId>(msg.a);
  if (is_dead(dead)) return;  // duplicate report (defensive)
  dead_nodes_.push_back(dead);
  stats_.add("core.nodes_dead");

  // Placement authority: every page (and futex) homed on the dead node now
  // answers at the master, which adopted the shard state moments ago — the
  // dying node's FIFO put kHomeHandoff/kFutexHandoff ahead of this report.
  stats_.add("dsm.pages_rehomed", home_map_.repoint_dead_home(dead));

  // Master-plane sweeps, applied directly (the master does not message
  // itself): boot directory, futex table, and node 0's client-side caches.
  if (directory_.has_value()) directory_->on_node_dead(dead);
  syscalls_->futex_service().on_node_dead(dead);
  nodes_[kMasterNode]->on_node_dead(dead);

  // Tell every surviving slave. Per-link FIFO from the master orders this
  // kNodeDead ahead of the kMigrateThread re-homings below, so a surviving
  // node always sweeps its state for the dead peer before it can run one
  // of the dead peer's threads.
  const auto total = static_cast<NodeId>(nodes_.size());
  for (NodeId id = 1; id < total; ++id) {
    if (id == dead || is_dead(id)) continue;
    net::Message note;
    note.src = kMasterNode;
    note.dst = id;
    note.type = static_cast<std::uint32_t>(CoreMsg::kNodeDead);
    note.a = dead;
    network_.send(std::move(note));
  }

  // Re-home the captured threads (record format: Node::capture_thread).
  const NodeId replacement = replacement_node();
  std::vector<GuestTid> serveget_tids;
  std::span<const std::uint8_t> in(msg.data);
  const std::size_t base = dbt::CpuContext::kWireBytes + kBreakdownWireBytes;
  for (std::uint64_t i = 0; i < msg.b; ++i) {
    assert(in.size() >= base + 3 * sizeof(std::uint32_t));
    const std::span<const std::uint8_t> frame = in.subspan(0, base);
    in = in.subspan(base);
    const auto read_u32 = [&in] {
      std::uint32_t v = 0;
      std::memcpy(&v, in.data(), sizeof(v));
      in = in.subspan(sizeof(v));
      return v;
    };
    const std::uint32_t ctid = read_u32();
    const std::uint32_t hint = read_u32();
    const bool has_pending = read_u32() != 0;
    std::span<const std::uint8_t> pending;
    std::uint32_t pending_num = 0;
    if (has_pending) {
      assert(in.size() >= kPendingSyscallWireBytes);
      pending = in.subspan(0, kPendingSyscallWireBytes);
      std::memcpy(&pending_num, pending.data(), sizeof(pending_num));
      in = in.subspan(kPendingSyscallWireBytes);
    }
    const dbt::CpuContext ctx = dbt::CpuContext::deserialize(frame);
    thread_node_[ctx.tid] = replacement;
    if (has_pending &&
        static_cast<isa::Sys>(pending_num) == isa::Sys::kServeGet) {
      serveget_tids.push_back(ctx.tid);
    }
    net::Message mig;
    mig.src = kMasterNode;
    mig.dst = replacement;
    mig.type = static_cast<std::uint32_t>(CoreMsg::kMigrateThread);
    mig.a = ctx.tid;
    mig.b = ctid;
    mig.c = static_cast<std::uint64_t>(hint);
    mig.data.assign(frame.begin(), frame.end());
    if (has_pending) {
      mig.data.insert(mig.data.end(), pending.begin(), pending.end());
    }
    network_.send(std::move(mig));
    stats_.add("core.threads_rehomed_sent");
  }

  // Patch the serving plane last: its re-queue/re-key decisions depend on
  // which threads died mid-kServeGet, known only after the parse above.
  if (serving_.has_value()) {
    serving_->on_node_crash(dead, replacement, serveget_tids);
  }
}

bool Cluster::relay_if_misdirected(const net::Message& msg) {
  const std::uint32_t page_size = config_.machine.page_size;
  NodeId home = kMasterNode;
  switch (msg.type) {
    case static_cast<std::uint32_t>(dsm::DsmMsg::kReadReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kWriteReq):
      home = home_map_.home_for(msg.a, msg.src);
      break;
    case static_cast<std::uint32_t>(sys::SysMsg::kSyscallReq): {
      // Only futex delegation is home-routed; every other syscall is the
      // master's to serve. args[0] (the futex address) is the first LE
      // word of the request payload.
      if (static_cast<isa::Sys>(msg.a) != isa::Sys::kFutex) return false;
      assert(msg.data.size() >= sizeof(std::uint32_t));
      std::uint32_t addr = 0;
      std::memcpy(&addr, msg.data.data(), sizeof(addr));
      home = home_map_.home_for(addr / page_size, msg.src);
      break;
    }
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReq):
      home = home_map_.home_for(
          static_cast<GuestAddr>(msg.a) / page_size, msg.src);
      break;
    default:
      return false;
  }
  if (home == kMasterNode) return false;

  // Re-address to the true home with the original requester parked in the
  // high half of `c` (relay_mark); the low half — the tid of a page
  // request — rides along. The master becomes the wire-level sender, so
  // per-channel FIFO accounting stays sane; `seq`/`ack` are reassigned by
  // the reliable channel on send.
  net::Message relay = msg;
  relay.src = kMasterNode;
  relay.dst = home;
  relay.seq = 0;
  relay.ack = 0;
  relay.c = net::relay_mark(msg.src) | (msg.c & 0xFFFFFFFFull);
  stats_.add("dsm.home_relays");
  network_.send(std::move(relay));
  return true;
}

Status Cluster::load(const isa::Program& program) {
  if (loaded_) return Status::failed_precondition("program already loaded");

  const std::uint32_t page = config_.machine.page_size;
  const dsm::HomeLayout& layout = home_map_.layout();
  const GuestAddr pool_start =
      static_cast<GuestAddr>(layout.shadow_first_page) * page;
  const GuestAddr main_stack_top = pool_start;  // stack grows down from here
  const GuestAddr mmap_end = main_stack_top - kMainStackBytes;
  const GuestAddr mmap_start = config_.guest_mem_bytes / 2;

  if (program.brk_start >= mmap_start) {
    return Status::invalid_argument(
        "program image overlaps the mmap region; increase guest_mem_bytes");
  }
  for (const isa::Section& section : program.sections) {
    if (static_cast<std::uint64_t>(section.addr) + section.bytes.size() >
        mmap_start) {
      return Status::invalid_argument("program section outside image region");
    }
  }

  nodes_[kMasterNode]->space().load_program(program);
  syscalls_->configure_memory(program.brk_start, mmap_start, mmap_end);

  dbt::CpuContext main_ctx;
  main_ctx.tid = next_tid_++;
  main_ctx.pc = program.entry;
  main_ctx.gpr[isa::kSp] = main_stack_top - 16;
  main_ctx.gpr[isa::kTp] = main_ctx.tid;
  thread_node_[main_ctx.tid] = kMasterNode;
  alive_threads_ = 1;
  nodes_[kMasterNode]->add_thread(main_ctx, /*ctid=*/0, /*hint_group=*/-1);

  // Offered load starts at the same virtual instant the guest boots.
  if (serving_.has_value()) serving_->start();

  loaded_ = true;
  return Status::ok();
}

NodeId Cluster::pick_node(std::int32_t hint_group) {
  if (config_.single_node_baseline || config_.slave_nodes == 0) {
    return kMasterNode;
  }
  if (config_.sched.policy == SchedPolicy::kHintLocality && hint_group >= 0) {
    return static_cast<NodeId>(
        1 + static_cast<std::uint32_t>(hint_group) % config_.slave_nodes);
  }
  if (!config_.node_machines.empty()) {
    // Heterogeneous cluster: smooth weighted round-robin over the slaves,
    // weight = compute capacity, so a big node hosts proportionally more
    // guest threads while placement stays interleaved.
    if (rr_credits_.empty()) rr_credits_.assign(config_.slave_nodes, 0);
    std::int64_t total = 0;
    NodeId best = 1;
    for (NodeId n = 0; n < config_.slave_nodes; ++n) {
      const MachineConfig& m = config_.machine_for(static_cast<NodeId>(n + 1));
      // Capacity = cores x clock (x10 to keep integer math honest).
      const auto weight =
          static_cast<std::int64_t>(m.cores_per_node * m.cpu_ghz * 10.0);
      rr_credits_[n] += weight;
      total += weight;
      if (rr_credits_[n] > rr_credits_[best - 1]) {
        best = static_cast<NodeId>(n + 1);
      }
    }
    rr_credits_[best - 1] -= total;
    return best;
  }
  const NodeId target = rr_next_;
  rr_next_ = static_cast<NodeId>(rr_next_ % config_.slave_nodes + 1);
  return target;
}

std::int32_t Cluster::on_clone(const sys::SyscallRequest& req) {
  if (req.payload.size() < dbt::CpuContext::kWireBytes) {
    return -isa::kEINVAL;
  }
  dbt::CpuContext child = dbt::CpuContext::deserialize(req.payload);
  child.tid = next_tid_++;
  child.gpr[isa::kSp] = req.args[1];
  child.gpr[isa::kTp] = child.tid;
  child.set_a0(0);  // the child observes clone() returning 0
  const auto hint = static_cast<std::int32_t>(req.args[3]);
  child.hint_group = hint;

  NodeId target = pick_node(hint);
  if (is_dead(target)) target = replacement_node();
  thread_node_[child.tid] = target;
  ++alive_threads_;
  stats_.add("core.clones");

  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = target;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kCreateThread);
  msg.a = child.tid;
  msg.b = req.args[2];  // ctid
  msg.c = static_cast<std::uint64_t>(static_cast<std::uint32_t>(hint));
  msg.data.resize(dbt::CpuContext::kWireBytes);
  child.serialize(msg.data);
  network_.send(std::move(msg));
  return static_cast<std::int32_t>(child.tid);
}

void Cluster::on_thread_exit(const sys::SyscallRequest& req) {
  (void)req;
  assert(alive_threads_ > 0);
  if (--alive_threads_ == 0 && !exit_code_.has_value()) {
    exit_code_ = 0;
  }
}

NodeId Cluster::thread_node(GuestTid tid) const {
  auto it = thread_node_.find(tid);
  return it == thread_node_.end() ? kInvalidNode : it->second;
}

Status Cluster::migrate_thread(GuestTid tid, NodeId target) {
  if (target >= nodes_.size()) {
    return Status::invalid_argument("migration target out of range");
  }
  if (is_dead(target)) {
    return Status::invalid_argument("migration target is dead");
  }
  const NodeId current = thread_node(tid);
  if (current == kInvalidNode) {
    return Status::not_found("unknown thread id");
  }
  if (current == target) return Status::ok();

  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = current;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kMigrateReq);
  msg.a = tid;
  msg.b = target;
  network_.send(std::move(msg));
  return Status::ok();
}

void Cluster::snapshot_counters(TimePs at) {
  if (!trace::wants(tracer_, trace::Cat::kCounter)) return;
  trace::Record r;
  r.time = at;
  r.kind = trace::Kind::kCounter;
  r.cat = trace::Cat::kCounter;
  r.node = kMasterNode;
  r.track = trace::kTrackNode;
  for (const auto& [name, value] : stats_.counters()) {
    r.name = tracer_->intern(name);
    r.a = value;
    tracer_->record(r);
  }
  // Aggregate time breakdown as a timeline: Fig. 8's bars become curves.
  TimeBreakdown total;
  for (const auto& node : nodes_) {
    for (const auto& [tid, thread] : node->threads()) {
      total += thread.breakdown;
    }
  }
  const std::pair<const char*, DurationPs> parts[] = {
      {"time.execute", total.execute},
      {"time.translate", total.translate},
      {"time.pagefault", total.pagefault},
      {"time.syscall", total.syscall},
      {"time.idle", total.idle}};
  for (const auto& [name, value] : parts) {
    r.name = name;
    r.a = value;
    tracer_->record(r);
  }
}

bool Cluster::fatal_set() const {
  const std::lock_guard<std::mutex> lock(fatal_mutex_);
  return fatal_.has_value();
}

void Cluster::bind_execution_shard(std::size_t index) {
  if (tracer_ != nullptr) tracer_->bind_shard(index);
  stats_.bind_shard(index);
}

void Cluster::unbind_execution_shard() {
  if (tracer_ != nullptr) tracer_->unbind_shard();
  stats_.unbind_shard();
}

Result<Cluster::RunResult> Cluster::run(RunLimits limits) {
  if (!loaded_) return Status::failed_precondition("no program loaded");
  if (!queues_.empty()) return run_parallel(limits);

  const bool counters = trace::wants(tracer_, trace::Cat::kCounter);
  TimePs next_snapshot = counters ? tracer_->config().counter_interval : 0;
  while (!exit_code_.has_value() && !fatal_.has_value()) {
    // Clean cut: every event strictly before the armed time has fired,
    // none at-or-after has — exactly the state the next run_one would
    // break, so capture now.
    capture_if_due(queue_.next_time());
    if (!queue_.run_one()) break;
    if (counters && queue_.now() >= next_snapshot) {
      snapshot_counters(queue_.now());
      next_snapshot = queue_.now() + tracer_->config().counter_interval;
    }
    if (queue_.now() > limits.max_sim_time) {
      return Status::resource_exhausted("simulated time limit exceeded");
    }
    if (queue_.fired() > limits.max_events) {
      return Status::resource_exhausted("event limit exceeded");
    }
  }
  if (counters) snapshot_counters(queue_.now());  // final guest-completion sample
  return epilogue();
}

void Cluster::capture_if_due(std::optional<TimePs> horizon) {
  if (!checkpoint_at_.has_value() || checkpoint_.has_value()) return;
  // Drained (nullopt) with the cut unreached means the guest finished
  // first; leave checkpoint_ empty and let the embedding report it.
  if (!horizon.has_value() || *horizon < *checkpoint_at_) return;
  stats_.merge_shards();  // no-op in the serial kernel
  // No stats counter here: the capture is a pure observer, and an armed
  // run's counter dump must stay bit-identical to the unarmed run's.
  checkpoint_ = capture_checkpoint();
}

CheckpointImage Cluster::capture_checkpoint() {
  CheckpointImage image;
  image.virtual_time = checkpoint_at_.value_or(queue_.now());
  const auto total = static_cast<NodeId>(nodes_.size());
  for (NodeId id = 0; id < total; ++id) {
    const Node& node = *nodes_[id];
    // Address space: page content plus access rights — the DSM-visible
    // memory state of the node.
    std::uint64_t h = fnv1a_seed();
    const mem::AddressSpace& space = node.space();
    for (std::uint32_t page = 0; page < space.num_pages(); ++page) {
      h = fnv1a(space.page_data(page), h);
      h = fnv1a_u32(static_cast<std::uint32_t>(space.access(page)), h);
    }
    image.add("space." + std::to_string(id), h);
    // Threads: register file and run state, in tid order (std::map).
    h = fnv1a_seed();
    std::vector<std::uint8_t> ctx_bytes(dbt::CpuContext::kWireBytes);
    for (const auto& [tid, thread] : node.threads()) {
      thread.ctx.serialize(ctx_bytes);
      h = fnv1a_u32(tid, h);
      h = fnv1a(ctx_bytes, h);
      h = fnv1a_u32(static_cast<std::uint32_t>(thread.state), h);
    }
    image.add("threads." + std::to_string(id), h);
  }
  if (directory_.has_value()) image.add("dir.0", directory_->digest());
  for (NodeId id = 1; id < home_shards_.size(); ++id) {
    if (home_shards_[id] != nullptr) {
      image.add("dir." + std::to_string(id), home_shards_[id]->digest());
    }
  }
  {
    std::vector<std::uint8_t> bytes;
    syscalls_->futexes().serialize(bytes);
    image.add("futex.0", fnv1a(bytes));
  }
  for (NodeId id = 1; id < futex_homes_.size(); ++id) {
    if (futex_homes_[id] == nullptr) continue;
    std::vector<std::uint8_t> bytes;
    futex_homes_[id]->table().serialize(bytes);
    image.add("futex." + std::to_string(id), fnv1a(bytes));
  }
  if (serving_.has_value()) image.add("serve", serving_->digest());
  // Progress fingerprint: total retired instructions pins the cut to one
  // point on the execution, not just one shape of the state.
  image.add("insns", stats_.get("dbt.insns"));
  image.normalize();
  return image;
}

Result<Cluster::RunResult> Cluster::epilogue() {
  const std::lock_guard<std::mutex> lock(fatal_mutex_);
  if (fatal_.has_value()) {
    return Status::internal(*fatal_);
  }
  if (!exit_code_.has_value()) {
    std::string dump = "guest deadlock: " +
                       std::to_string(alive_threads_) +
                       " live threads but no pending events\n";
    for (const auto& node : nodes_) dump += node->blocked_dump();
    return Status::failed_precondition(dump);
  }

  RunResult result;
  result.exit_code = *exit_code_;
  result.sim_time = queue_.now();
  result.guest_insns = stats_.get("dbt.insns");
  for (const auto& node : nodes_) {
    for (const auto& [tid, thread] : node->threads()) {
      result.per_thread[tid] = thread.breakdown;
      result.total += thread.breakdown;
    }
  }
  result.guest_stdout = syscalls_->vfs().stdout_text();
  return result;
}

Result<Cluster::RunResult> Cluster::run_parallel(RunLimits limits) {
  // Conservative (CMB-style) synchronization, DESIGN.md §16. Every window:
  //
  //   1. Barrier (single-threaded): drain cross-queue mailboxes, find the
  //      global horizon H = earliest pending event anywhere.
  //   2. Run the master-plane queue over [H, H + L) inline — guest exit and
  //      serving decisions all happen there, and the exit time caps how far
  //      the slaves may still run.
  //   3. Run every slave queue over the same window on the thread pool.
  //
  // L is the network lookahead: no cross-node message sent inside a window
  // can be delivered inside that same window, so each queue can run its
  // slice without ever seeing an input it should have handled earlier.
  // Cross-queue sends land in the target's mailbox and become visible at
  // the next barrier, ordered by (time, sender, sender send-order) — host
  // thread count never changes what any window executes.
  const DurationPs lookahead = config_.net.lookahead();
  sim::ThreadPool pool(config_.sim.host_threads);
  const std::size_t n_queues = queues_.size();

  const bool counters = trace::wants(tracer_, trace::Cat::kCounter);
  TimePs next_snapshot = counters ? tracer_->config().counter_interval : 0;
  Status limit_hit = Status::ok();

  // The slave task and its argument buffers live across windows so the hot
  // loop allocates nothing: windows are microseconds of host work each.
  std::vector<std::size_t> active;
  active.reserve(n_queues);
  TimePs slave_end = 0;
  const std::function<void(std::size_t)> slave_task = [&](std::size_t i) {
    const std::size_t qi = active[i];
    bind_execution_shard(qi);
    (void)queues_[qi]->run_window(slave_end);
    unbind_execution_shard();
  };

  while (!exit_code_.has_value() && !fatal_set()) {
    for (sim::EventQueue* q : queues_) (void)q->drain_posted();

    std::optional<TimePs> horizon;
    for (sim::EventQueue* q : queues_) {
      const std::optional<TimePs> t = q->next_time();
      if (t.has_value() && (!horizon.has_value() || *t < *horizon)) {
        horizon = t;
      }
    }
    if (!horizon.has_value()) break;  // fully drained: exit or deadlock
    if (*horizon > limits.max_sim_time) {
      limit_hit = Status::resource_exhausted("simulated time limit exceeded");
      break;
    }

    if (counters && *horizon >= next_snapshot) {
      stats_.merge_shards();
      snapshot_counters(*horizon);
      next_snapshot = *horizon + tracer_->config().counter_interval;
    }

    // Barrier context, single-threaded, every queue quiescent: the same
    // clean cut the serial kernel sees between run_one calls.
    capture_if_due(horizon);

    TimePs window_end = *horizon + lookahead;
    if (checkpoint_at_.has_value() && !checkpoint_.has_value() &&
        window_end > *checkpoint_at_) {
      // No event at-or-after the armed cut may run before the capture
      // barrier. horizon < checkpoint_at_ here (the capture above would
      // have fired otherwise), so the clamped window still progresses;
      // run_window's end is exclusive, so the cut event itself waits.
      window_end = *checkpoint_at_;
    }

    bind_execution_shard(0);
    (void)queue_.run_window(window_end, [this] {
      return exit_code_.has_value() || fatal_set();
    });
    unbind_execution_shard();

    // On guest exit at T_e the serial kernel stops dead; slaves here still
    // owe their events up to T_e (which the serial kernel fired before the
    // exit event), and nothing after it.
    slave_end = window_end;
    if (exit_code_.has_value() || fatal_set()) {
      slave_end = std::min(window_end, queue_.now() + 1);
    }

    // Dispatch only the queues with events inside the window: a node idle
    // this window (blocked on a remote page, parked worker pool) costs no
    // pool traffic, and a master-only window skips the barrier entirely.
    active.clear();
    for (std::size_t qi = 1; qi < n_queues; ++qi) {
      const std::optional<TimePs> t = queues_[qi]->next_time();
      if (t.has_value() && *t < slave_end) active.push_back(qi);
    }
    pool.run_tasks(active.size(), slave_task);

    std::uint64_t fired = 0;
    for (sim::EventQueue* q : queues_) fired += q->fired();
    if (fired > limits.max_events) {
      limit_hit = Status::resource_exhausted("event limit exceeded");
      break;
    }
  }

  // Fold the per-queue stats shards back into the main registry before
  // anything reads it (counter snapshot, RunResult, the embedding).
  stats_.merge_shards();
  if (!limit_hit.is_ok()) return limit_hit;
  if (counters) snapshot_counters(queue_.now());
  return epilogue();
}

}  // namespace dqemu::core
