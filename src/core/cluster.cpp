#include "core/cluster.hpp"

#include <cassert>

#include "common/log.hpp"
#include "dsm/wire.hpp"
#include "sys/wire.hpp"

namespace dqemu::core {
namespace {

using time_literals::kSec;

/// Memory layout knobs (see DESIGN.md "layout"): the top of the guest
/// space is reserved for shadow pages, a 1 MiB main stack sits below it,
/// anonymous mmaps grow from the middle, and brk grows from the end of the
/// static image.
constexpr std::uint32_t kMainStackBytes = 1u << 20;
constexpr std::uint32_t kMaxShadowPoolBytes = 32u << 20;

}  // namespace

Cluster::Cluster(ClusterConfig config, trace::Tracer* tracer)
    : config_(config),
      tracer_(tracer),
      queue_(),
      network_(queue_, config.net, config.total_nodes(), &stats_, tracer,
               config.faults) {
  const Status valid = config_.validate();
  assert(valid.is_ok() && "invalid ClusterConfig");
  (void)valid;
  queue_.set_tracer(tracer_);

  Node::Hooks hooks;
  hooks.fatal = [this](std::string message) {
    if (!fatal_.has_value()) fatal_ = std::move(message);
  };
  hooks.thread_exited = [](GuestTid) {};

  const std::uint32_t total = config_.total_nodes();
  nodes_.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    nodes_.push_back(std::make_unique<Node>(id, config_, queue_, network_,
                                            &stats_, hooks, tracer_));
  }

  // Shadow pool: top of the guest space.
  const std::uint32_t page = config_.machine.page_size;
  const std::uint32_t pool_bytes =
      std::min<std::uint32_t>(kMaxShadowPoolBytes, config_.guest_mem_bytes / 8) /
      page * page;
  const std::uint32_t pool_first_page =
      (config_.guest_mem_bytes - pool_bytes) / page;

  if (!config_.single_node_baseline) {
    dsm::Directory::Params params;
    params.dsm = config_.dsm;
    params.machine = config_.machine;
    params.node_count = total;
    params.shadow_pool_first_page = pool_first_page;
    params.shadow_pool_page_count = pool_bytes / page;
    directory_.emplace(network_, queue_, nodes_[kMasterNode]->space(), params,
                       &stats_, tracer_);
  } else {
    // Baseline "QEMU" mode: one node, no DSM, direct memory access.
    nodes_[kMasterNode]->space().set_all_access(mem::PageAccess::kReadWrite);
  }

  syscalls_.emplace(network_, queue_, config_.machine,
                    config_.dbt.syscall_service_cycles, &stats_, tracer_);
  syscalls_->configure_locking(config_.sys);
  syscalls_->configure_faults(config_.faults);
  sys::MasterSyscalls::Hooks sys_hooks;
  sys_hooks.on_clone = [this](const sys::SyscallRequest& req) {
    return on_clone(req);
  };
  sys_hooks.on_exit = [this](const sys::SyscallRequest& req) {
    on_thread_exit(req);
  };
  sys_hooks.on_exit_group = [this](std::uint32_t status) {
    if (!exit_code_.has_value()) exit_code_ = status;
  };
  syscalls_->set_hooks(std::move(sys_hooks));

  if (config_.serve.enabled) {
    if (!serve::compiled_in()) {
      // Runtime gate on, compile-time gate off: refuse loudly rather than
      // silently run the batch semantics of a serving config.
      fatal_ = "serving requested but compiled out (DQEMU_ENABLE_SERVING=OFF)";
    } else {
      serving_.emplace(
          queue_, config_.serve, &stats_, tracer_,
          [this](NodeId dst, GuestTid tid, std::int64_t result,
                 std::uint64_t flow) {
            // Every dispatch/EOF pays the same manager service delay as any
            // other syscall response.
            syscalls_->send_response(dst, tid, result, {}, flow);
          });
      syscalls_->set_serve_handler([this](const sys::SyscallRequest& req) {
        if (req.num == isa::Sys::kServeGet) {
          serving_->on_get_request(req.src, req.tid, req.flow);
        } else {
          serving_->on_done(req.src, req.tid, req.args[0], req.flow);
        }
      });
    }
  }

  // Message routing: master traffic splits between the directory, the
  // syscall engine, migration bookkeeping and the node itself.
  network_.attach(kMasterNode,
                  [this](net::Message msg) { master_handler(msg); });
  for (NodeId id = 1; id < total; ++id) {
    Node* node = nodes_[id].get();
    network_.attach(id,
                    [node](net::Message msg) { node->handle_message(msg); });
  }
}

void Cluster::master_handler(const net::Message& msg) {
  switch (msg.type) {
    case static_cast<std::uint32_t>(dsm::DsmMsg::kReadReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kWriteReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kInvAck):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kDowngradeAck):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kInvAckDiff):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kDowngradeAckDiff):
      assert(directory_.has_value());
      directory_->handle_message(msg);
      return;
    case static_cast<std::uint32_t>(sys::SysMsg::kSyscallReq):
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReq):
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReturn):
      syscalls_->handle_message(msg);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kMigrateDone):
      thread_node_[static_cast<GuestTid>(msg.a)] =
          static_cast<NodeId>(msg.b);
      return;
    default:
      nodes_[kMasterNode]->handle_message(msg);
      return;
  }
}

Status Cluster::load(const isa::Program& program) {
  if (loaded_) return Status::failed_precondition("program already loaded");

  const std::uint32_t page = config_.machine.page_size;
  const std::uint32_t pool_bytes =
      std::min<std::uint32_t>(kMaxShadowPoolBytes, config_.guest_mem_bytes / 8) /
      page * page;
  const GuestAddr pool_start = config_.guest_mem_bytes - pool_bytes;
  const GuestAddr main_stack_top = pool_start;  // stack grows down from here
  const GuestAddr mmap_end = main_stack_top - kMainStackBytes;
  const GuestAddr mmap_start = config_.guest_mem_bytes / 2;

  if (program.brk_start >= mmap_start) {
    return Status::invalid_argument(
        "program image overlaps the mmap region; increase guest_mem_bytes");
  }
  for (const isa::Section& section : program.sections) {
    if (static_cast<std::uint64_t>(section.addr) + section.bytes.size() >
        mmap_start) {
      return Status::invalid_argument("program section outside image region");
    }
  }

  nodes_[kMasterNode]->space().load_program(program);
  syscalls_->configure_memory(program.brk_start, mmap_start, mmap_end);

  dbt::CpuContext main_ctx;
  main_ctx.tid = next_tid_++;
  main_ctx.pc = program.entry;
  main_ctx.gpr[isa::kSp] = main_stack_top - 16;
  main_ctx.gpr[isa::kTp] = main_ctx.tid;
  thread_node_[main_ctx.tid] = kMasterNode;
  alive_threads_ = 1;
  nodes_[kMasterNode]->add_thread(main_ctx, /*ctid=*/0, /*hint_group=*/-1);

  // Offered load starts at the same virtual instant the guest boots.
  if (serving_.has_value()) serving_->start();

  loaded_ = true;
  return Status::ok();
}

NodeId Cluster::pick_node(std::int32_t hint_group) {
  if (config_.single_node_baseline || config_.slave_nodes == 0) {
    return kMasterNode;
  }
  if (config_.sched.policy == SchedPolicy::kHintLocality && hint_group >= 0) {
    return static_cast<NodeId>(
        1 + static_cast<std::uint32_t>(hint_group) % config_.slave_nodes);
  }
  if (!config_.node_machines.empty()) {
    // Heterogeneous cluster: smooth weighted round-robin over the slaves,
    // weight = compute capacity, so a big node hosts proportionally more
    // guest threads while placement stays interleaved.
    if (rr_credits_.empty()) rr_credits_.assign(config_.slave_nodes, 0);
    std::int64_t total = 0;
    NodeId best = 1;
    for (NodeId n = 0; n < config_.slave_nodes; ++n) {
      const MachineConfig& m = config_.machine_for(static_cast<NodeId>(n + 1));
      // Capacity = cores x clock (x10 to keep integer math honest).
      const auto weight =
          static_cast<std::int64_t>(m.cores_per_node * m.cpu_ghz * 10.0);
      rr_credits_[n] += weight;
      total += weight;
      if (rr_credits_[n] > rr_credits_[best - 1]) {
        best = static_cast<NodeId>(n + 1);
      }
    }
    rr_credits_[best - 1] -= total;
    return best;
  }
  const NodeId target = rr_next_;
  rr_next_ = static_cast<NodeId>(rr_next_ % config_.slave_nodes + 1);
  return target;
}

std::int32_t Cluster::on_clone(const sys::SyscallRequest& req) {
  if (req.payload.size() < dbt::CpuContext::kWireBytes) {
    return -isa::kEINVAL;
  }
  dbt::CpuContext child = dbt::CpuContext::deserialize(req.payload);
  child.tid = next_tid_++;
  child.gpr[isa::kSp] = req.args[1];
  child.gpr[isa::kTp] = child.tid;
  child.set_a0(0);  // the child observes clone() returning 0
  const auto hint = static_cast<std::int32_t>(req.args[3]);
  child.hint_group = hint;

  const NodeId target = pick_node(hint);
  thread_node_[child.tid] = target;
  ++alive_threads_;
  stats_.add("core.clones");

  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = target;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kCreateThread);
  msg.a = child.tid;
  msg.b = req.args[2];  // ctid
  msg.c = static_cast<std::uint64_t>(static_cast<std::uint32_t>(hint));
  msg.data.resize(dbt::CpuContext::kWireBytes);
  child.serialize(msg.data);
  network_.send(std::move(msg));
  return static_cast<std::int32_t>(child.tid);
}

void Cluster::on_thread_exit(const sys::SyscallRequest& req) {
  (void)req;
  assert(alive_threads_ > 0);
  if (--alive_threads_ == 0 && !exit_code_.has_value()) {
    exit_code_ = 0;
  }
}

NodeId Cluster::thread_node(GuestTid tid) const {
  auto it = thread_node_.find(tid);
  return it == thread_node_.end() ? kInvalidNode : it->second;
}

Status Cluster::migrate_thread(GuestTid tid, NodeId target) {
  if (target >= nodes_.size()) {
    return Status::invalid_argument("migration target out of range");
  }
  const NodeId current = thread_node(tid);
  if (current == kInvalidNode) {
    return Status::not_found("unknown thread id");
  }
  if (current == target) return Status::ok();

  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = current;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kMigrateReq);
  msg.a = tid;
  msg.b = target;
  network_.send(std::move(msg));
  return Status::ok();
}

void Cluster::snapshot_counters() {
  if (!trace::wants(tracer_, trace::Cat::kCounter)) return;
  trace::Record r;
  r.time = queue_.now();
  r.kind = trace::Kind::kCounter;
  r.cat = trace::Cat::kCounter;
  r.node = kMasterNode;
  r.track = trace::kTrackNode;
  for (const auto& [name, value] : stats_.counters()) {
    r.name = tracer_->intern(name);
    r.a = value;
    tracer_->record(r);
  }
  // Aggregate time breakdown as a timeline: Fig. 8's bars become curves.
  TimeBreakdown total;
  for (const auto& node : nodes_) {
    for (const auto& [tid, thread] : node->threads()) {
      total += thread.breakdown;
    }
  }
  const std::pair<const char*, DurationPs> parts[] = {
      {"time.execute", total.execute},
      {"time.translate", total.translate},
      {"time.pagefault", total.pagefault},
      {"time.syscall", total.syscall},
      {"time.idle", total.idle}};
  for (const auto& [name, value] : parts) {
    r.name = name;
    r.a = value;
    tracer_->record(r);
  }
}

Result<Cluster::RunResult> Cluster::run(RunLimits limits) {
  if (!loaded_) return Status::failed_precondition("no program loaded");

  const bool counters = trace::wants(tracer_, trace::Cat::kCounter);
  TimePs next_snapshot = counters ? tracer_->config().counter_interval : 0;
  while (!exit_code_.has_value() && !fatal_.has_value()) {
    if (!queue_.run_one()) break;
    if (counters && queue_.now() >= next_snapshot) {
      snapshot_counters();
      next_snapshot = queue_.now() + tracer_->config().counter_interval;
    }
    if (queue_.now() > limits.max_sim_time) {
      return Status::resource_exhausted("simulated time limit exceeded");
    }
    if (queue_.fired() > limits.max_events) {
      return Status::resource_exhausted("event limit exceeded");
    }
  }
  if (counters) snapshot_counters();  // final sample at guest completion

  if (fatal_.has_value()) {
    return Status::internal(*fatal_);
  }
  if (!exit_code_.has_value()) {
    std::string dump = "guest deadlock: " +
                       std::to_string(alive_threads_) +
                       " live threads but no pending events\n";
    for (const auto& node : nodes_) dump += node->blocked_dump();
    return Status::failed_precondition(dump);
  }

  RunResult result;
  result.exit_code = *exit_code_;
  result.sim_time = queue_.now();
  result.guest_insns = stats_.get("dbt.insns");
  for (const auto& node : nodes_) {
    for (const auto& [tid, thread] : node->threads()) {
      result.per_thread[tid] = thread.breakdown;
      result.total += thread.breakdown;
    }
  }
  result.guest_stdout = syscalls_->vfs().stdout_text();
  return result;
}

}  // namespace dqemu::core
